/**
 * @file
 * Tests of the parallel primitives (common/parallel) and the sweep
 * runner (sim/runner): deterministic result placement, seed
 * derivation, exception propagation — and the invariant every
 * converted bench relies on, pinned at the byte level: the same
 * experiments produce bit-identical Outcomes, metrics dumps and trace
 * files at `jobs = 1`, 2 and 8.
 */

#include <atomic>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/parallel/parallel.hh"
#include "sim/check/test_hooks.hh"
#include "sim/runner/sweep_runner.hh"

namespace
{

using namespace hsipc;

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(Parallel, ParallelForVisitsEveryIndexOnce)
{
    for (int jobs : {1, 2, 8}) {
        constexpr std::size_t count = 1000;
        std::vector<std::atomic<int>> visits(count);
        parallel::parallelFor(jobs, count, [&](std::size_t i) {
            visits[i].fetch_add(1, std::memory_order_relaxed);
        });
        for (std::size_t i = 0; i < count; ++i)
            EXPECT_EQ(visits[i].load(), 1) << "index " << i
                                           << " jobs " << jobs;
    }
}

TEST(Parallel, RunAllPlacesResultsByInputIndex)
{
    std::vector<std::function<int()>> tasks;
    for (int i = 0; i < 64; ++i)
        tasks.push_back([i]() { return i * i; });
    for (int jobs : {1, 3, 8}) {
        const std::vector<int> out = parallel::runAll<int>(jobs, tasks);
        ASSERT_EQ(out.size(), tasks.size());
        for (int i = 0; i < 64; ++i)
            EXPECT_EQ(out[i], i * i);
    }
}

TEST(Parallel, ParallelForPropagatesExceptions)
{
    EXPECT_THROW(
        parallel::parallelFor(4, 100,
                              [](std::size_t i) {
                                  if (i == 37)
                                      throw std::runtime_error("boom");
                              }),
        std::runtime_error);
    // Serial fallback path too.
    EXPECT_THROW(
        parallel::parallelFor(1, 100,
                              [](std::size_t i) {
                                  if (i == 37)
                                      throw std::runtime_error("boom");
                              }),
        std::runtime_error);
}

TEST(Parallel, ThreadPoolRunsEverySubmittedTask)
{
    parallel::ThreadPool pool(4);
    std::atomic<int> ran{0};
    for (int i = 0; i < 200; ++i)
        pool.submit([&ran]() {
            ran.fetch_add(1, std::memory_order_relaxed);
        });
    pool.wait();
    EXPECT_EQ(ran.load(), 200);
}

TEST(Parallel, DeriveSeedIsPureAndWellDistributed)
{
    // Stable across calls (a pure function of base and index) —
    // replications must not depend on scheduling.
    EXPECT_EQ(parallel::deriveSeed(42, 0), parallel::deriveSeed(42, 0));
    EXPECT_EQ(parallel::deriveSeed(42, 7), parallel::deriveSeed(42, 7));

    // Distinct per index and per base; never the degenerate zero seed.
    std::set<std::uint64_t> seen;
    for (std::uint64_t base : {0ull, 1ull, 42ull}) {
        for (std::size_t i = 0; i < 100; ++i) {
            const std::uint64_t s = parallel::deriveSeed(base, i);
            EXPECT_NE(s, 0u);
            EXPECT_TRUE(seen.insert(s).second)
                << "collision at base " << base << " index " << i;
        }
    }
}

/** A small mixed batch covering the simulator's feature surface. */
std::vector<sim::Experiment>
mixedExperiments()
{
    std::vector<sim::Experiment> exps;

    sim::Experiment a; // plain local run
    a.arch = models::Arch::II;
    a.local = true;
    a.conversations = 2;
    a.computeUs = 1140;
    a.warmupUs = 20000;
    a.measureUs = 150000;
    exps.push_back(a);

    sim::Experiment b = a; // non-local with latency decomposition
    b.local = false;
    b.decomposeLatency = true;
    exps.push_back(b);

    sim::Experiment c = a; // lossy medium, reliability stack
    c.local = false;
    c.reliableProtocol = true;
    c.lossRate = 0.05;
    c.seed = 99;
    exps.push_back(c);

    sim::Experiment d = a; // different architecture + token ring
    d.arch = models::Arch::III;
    d.local = false;
    d.useTokenRing = true;
    exps.push_back(d);

    sim::Experiment e = a; // mixed workload
    e.mixedLocal = 1;
    e.mixedRemote = 1;
    exps.push_back(e);

    return exps;
}

std::string
sweepFingerprint(int jobs)
{
    std::string all;
    for (const sim::Outcome &o :
         sim::runSweep(mixedExperiments(), jobs)) {
        all += sim::outcomeJson(o);
        all += '\n';
    }
    return all;
}

TEST(SweepRunner, OutcomesBitIdenticalAcrossJobLevels)
{
    const std::string serial = sweepFingerprint(1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, sweepFingerprint(2));
    EXPECT_EQ(serial, sweepFingerprint(8));
}

TEST(SweepRunner, TimelineAndTraceSamplingBitIdenticalAcrossJobs)
{
    // The trace-sampling decision is a pure hash of (seed, id) and
    // the timeline is per-run state, so the windowed series, steady
    // stats and sampled decompositions must be byte-identical at any
    // job level — outcomeJson covers all three sections.
    auto sampledExps = [] {
        std::vector<sim::Experiment> exps = mixedExperiments();
        for (std::size_t i = 0; i < exps.size(); ++i) {
            exps[i].timelineIntervalUs = 5000;
            exps[i].traceSampleRate = 0.5;
            exps[i].decomposeLatency = true;
        }
        return exps;
    };
    auto fingerprint = [&](int jobs) {
        std::string all;
        for (const sim::Outcome &o : sim::runSweep(sampledExps(), jobs))
            all += sim::outcomeJson(o) + "\n";
        return all;
    };
    const std::string serial = fingerprint(1);
    EXPECT_NE(serial.find("\"timeline\""), std::string::npos);
    EXPECT_NE(serial.find("\"stats\""), std::string::npos);
    EXPECT_EQ(serial, fingerprint(2));
    EXPECT_EQ(serial, fingerprint(8));
}

TEST(SweepRunner, SinkFilesBitIdenticalAcrossJobLevels)
{
    const std::string dir = testing::TempDir();
    auto withFiles = [&dir](int jobs) {
        std::vector<sim::Experiment> exps = mixedExperiments();
        for (std::size_t i = 0; i < exps.size(); ++i) {
            const std::string tag =
                "hsipc_pr_j" + std::to_string(jobs) + "_" +
                std::to_string(i);
            exps[i].traceFile = dir + tag + ".trace.json";
            exps[i].metricsFile = dir + tag + ".metrics.json";
        }
        return exps;
    };

    const std::vector<sim::Experiment> serial = withFiles(1);
    const std::vector<sim::Experiment> parallel8 = withFiles(8);
    sim::runSweep(serial, 1);
    sim::runSweep(parallel8, 8);

    for (std::size_t i = 0; i < serial.size(); ++i) {
        const std::string st = readFile(serial[i].traceFile);
        ASSERT_FALSE(st.empty()) << serial[i].traceFile;
        EXPECT_EQ(st, readFile(parallel8[i].traceFile)) << i;
        const std::string sm = readFile(serial[i].metricsFile);
        ASSERT_FALSE(sm.empty()) << serial[i].metricsFile;
        EXPECT_EQ(sm, readFile(parallel8[i].metricsFile)) << i;
        for (const sim::Experiment &e : {serial[i], parallel8[i]}) {
            std::remove(e.traceFile.c_str());
            std::remove(e.metricsFile.c_str());
        }
    }
}

TEST(SweepRunner, InProcessSinksMatchSerialRun)
{
    std::vector<sim::Experiment> exps = mixedExperiments();
    exps.resize(2);

    auto runWith = [&exps](int jobs) {
        std::vector<trace::Tracer> tracers(exps.size());
        std::vector<metrics::Registry> regs(exps.size());
        std::vector<trace::Tracer *> tp;
        std::vector<metrics::Registry *> rp;
        for (std::size_t i = 0; i < exps.size(); ++i) {
            tracers[i].setEnabled(true);
            tp.push_back(&tracers[i]);
            rp.push_back(&regs[i]);
        }
        sim::SweepOptions opts;
        opts.jobs = jobs;
        const std::vector<sim::Outcome> outs =
            sim::SweepRunner(opts).runWithSinks(exps, &tp, &rp);
        std::string fp;
        for (std::size_t i = 0; i < exps.size(); ++i) {
            fp += sim::outcomeJson(outs[i]);
            fp += tracers[i].chromeJson();
            fp += regs[i].toJson();
        }
        return fp;
    };

    const std::string serial = runWith(1);
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, runWith(4));
}

TEST(SweepRunner, SeedBaseDerivesDistinctSeedsDeterministically)
{
    std::vector<sim::Experiment> exps(3);
    for (sim::Experiment &e : exps) {
        e.conversations = 1;
        e.computeUs = 1140;
        e.warmupUs = 20000;
        e.measureUs = 100000;
        e.reliableProtocol = true;
        e.lossRate = 0.05; // make the RNG matter
    }

    sim::SweepOptions opts;
    opts.seedBase = 2026;
    auto fingerprint = [&](int jobs) {
        opts.jobs = jobs;
        std::string fp;
        for (const sim::Outcome &o : sim::SweepRunner(opts).run(exps))
            fp += sim::outcomeJson(o) + "\n";
        return fp;
    };

    // Derived seeds are deterministic across job levels...
    const std::string serial = fingerprint(1);
    EXPECT_EQ(serial, fingerprint(8));

    // ...and actually distinct per replication: with identical
    // configs, the three outcome lines must not all collapse to one.
    std::istringstream lines(serial);
    std::set<std::string> uniq;
    std::string line;
    while (std::getline(lines, line))
        uniq.insert(line);
    EXPECT_GT(uniq.size(), 1u);
}

TEST(SweepRunner, EmptySweepReturnsEmpty)
{
    for (int jobs : {1, 4}) {
        const std::vector<sim::Outcome> out =
            sim::runSweep(std::vector<sim::Experiment>{}, jobs);
        EXPECT_TRUE(out.empty()) << "jobs " << jobs;
    }
}

TEST(SweepRunner, ThrowingTaskMidSweepPropagatesAndPoolRecovers)
{
    // A batch large enough that work is genuinely in flight on
    // several workers when one item throws (via the test hook that
    // fires at the top of runExperiment).
    std::vector<sim::Experiment> exps(16);
    for (std::size_t i = 0; i < exps.size(); ++i) {
        exps[i].conversations = 1;
        exps[i].computeUs = 1140;
        exps[i].warmupUs = 5000;
        exps[i].measureUs = 50000;
        exps[i].seed = 1000 + i;
    }

    {
        sim::check::ScopedTestHooks guard;
        sim::check::testHooks().beforeRun =
            [](const sim::Experiment &e) {
                if (e.seed == 1007)
                    throw std::runtime_error("item 7 exploded");
            };
        // The exception reaches the caller — not swallowed by a
        // worker thread, and the sweep does not deadlock waiting for
        // the failed item.  Both the serial and the pooled path.
        EXPECT_THROW(sim::runSweep(exps, 4), std::runtime_error);
        EXPECT_THROW(sim::runSweep(exps, 1), std::runtime_error);
    }

    // The pool drained and the runner is reusable: the same batch
    // (hook gone) completes and matches a fresh serial run.
    std::string serial, parallel4;
    for (const sim::Outcome &o : sim::runSweep(exps, 1))
        serial += sim::outcomeJson(o) + "\n";
    for (const sim::Outcome &o : sim::runSweep(exps, 4))
        parallel4 += sim::outcomeJson(o) + "\n";
    EXPECT_FALSE(serial.empty());
    EXPECT_EQ(serial, parallel4);
}

TEST(SweepRunner, OutcomeJsonCoversDecomposition)
{
    sim::Experiment e;
    e.conversations = 1;
    e.computeUs = 570;
    e.warmupUs = 20000;
    e.measureUs = 100000;
    e.decomposeLatency = true;
    const sim::Outcome o = sim::runExperiment(e);
    const std::string j = sim::outcomeJson(o);
    EXPECT_NE(j.find("\"decomposition\""), std::string::npos);
    EXPECT_NE(j.find("\"bottleneck\""), std::string::npos);
    EXPECT_NE(j.find("\"resourceUtilization\""), std::string::npos);
}

} // namespace
