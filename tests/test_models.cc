/**
 * @file
 * Tests for the chapter-6 architecture models: step-table consistency,
 * single-conversation round trips, architecture ordering, contention
 * model, offered loads, and the non-local fixed point.
 */

#include <gtest/gtest.h>

#include "core/gtpn/analyzer.hh"
#include "core/gtpn/simulator.hh"
#include "core/models/contention.hh"
#include "core/models/local_model.hh"
#include "core/models/nonlocal_model.hh"
#include "core/models/mva.hh"
#include "core/models/offered_load.hh"
#include "core/models/processing_times.hh"
#include "core/models/solution.hh"

namespace
{

using namespace hsipc;
using namespace hsipc::models;

TEST(StepTables, ArchILocalRoundTrip)
{
    // Table 6.4 sums to 4970 us of fixed overhead.
    EXPECT_NEAR(roundTripBest(Arch::I, true), 4970.0, 1e-9);
}

TEST(StepTables, BestEqualsProcessingPlusMemory)
{
    for (Arch a : {Arch::I, Arch::II, Arch::III, Arch::IV}) {
        for (bool local : {true, false}) {
            for (const Step &s : stepTable(a, local)) {
                EXPECT_DOUBLE_EQ(s.best(), s.processing + s.shmem());
                if (!s.workload) {
                    EXPECT_GE(s.contention, s.best() - 1e-9)
                        << archName(a) << " step " << s.number;
                }
            }
        }
    }
}

TEST(StepTables, SmartBusReducesRoundTrip)
{
    auto contention_sum = [](Arch a, bool local) {
        double total = 0.0;
        for (const Step &s : stepTable(a, local)) {
            if (!s.workload)
                total += s.contention;
        }
        return total;
    };
    for (bool local : {true, false}) {
        EXPECT_LT(roundTripBest(Arch::III, local),
                  roundTripBest(Arch::II, local));
        // Partitioning the smart bus leaves the contention-free times
        // unchanged; only the contention-inflated times improve.
        EXPECT_DOUBLE_EQ(roundTripBest(Arch::IV, local),
                         roundTripBest(Arch::III, local));
        EXPECT_LT(contention_sum(Arch::IV, local),
                  contention_sum(Arch::III, local));
    }
}

TEST(StepTables, ArchIVSplitsMemoryAccesses)
{
    bool any_kb = false;
    for (const Step &s : stepTable(Arch::IV, false))
        any_kb = any_kb || s.kbAccess > 0;
    EXPECT_TRUE(any_kb);
    for (const Step &s : stepTable(Arch::II, false))
        EXPECT_EQ(s.kbAccess, 0.0);
}

TEST(OpCosts, SmartBusIsFasterForEveryOperation)
{
    for (const OpCost &op : opCostTable()) {
        EXPECT_LT(op.processingIII + op.memoryIII,
                  op.processingII + op.memoryII)
            << op.operation;
    }
}

TEST(LocalModel, ArchISingleConversationRoundTrip)
{
    // One conversation serializes everything through the host, so the
    // mean cycle is exactly the 4970 us fixed overhead.
    const LocalSolution s = solveLocal(Arch::I, 1, 0.0);
    ASSERT_TRUE(s.converged);
    EXPECT_NEAR(1.0 / s.throughputPerUs, 4970.0, 4970.0 * 0.01);
}

TEST(LocalModel, ArchIThroughputIndependentOfConversations)
{
    // §6.9.1: "the throughput for local conversations is the same
    // irrespective of the number of conversations" for arch I.
    const double t1 = solveLocal(Arch::I, 1, 0.0).throughputPerUs;
    const double t3 = solveLocal(Arch::I, 3, 0.0).throughputPerUs;
    EXPECT_NEAR(t3, t1, t1 * 0.02);
}

TEST(LocalModel, ArchIIOneConversationSlightlySlowerThanArchI)
{
    // §6.9.1: the single-conversation loss of the coprocessor split is
    // small (~10%).
    const double t1 = solveLocal(Arch::I, 1, 0.0).throughputPerUs;
    const double t2 = solveLocal(Arch::II, 1, 0.0).throughputPerUs;
    EXPECT_LT(t2, t1);
    EXPECT_GT(t2, t1 * 0.8);
}

TEST(LocalModel, ArchIIScalesWithConversations)
{
    const double t1 = solveLocal(Arch::II, 1, 0.0).throughputPerUs;
    const double t3 = solveLocal(Arch::II, 3, 0.0).throughputPerUs;
    EXPECT_GT(t3, t1 * 1.2);
}

TEST(LocalModel, ArchIIIBeatsBothAtMaxLoad)
{
    const double t1 = solveLocal(Arch::I, 3, 0.0).throughputPerUs;
    const double t2 = solveLocal(Arch::II, 3, 0.0).throughputPerUs;
    const double t3 = solveLocal(Arch::III, 3, 0.0).throughputPerUs;
    EXPECT_GT(t3, t2);
    EXPECT_GT(t3, t1);
}

TEST(LocalModel, TimeScaleInvariance)
{
    SolveConfig fine;
    fine.timeScale = 2.0;
    SolveConfig coarse;
    coarse.timeScale = 8.0;
    const double a = solveLocal(Arch::III, 2, 0.0, fine).throughputPerUs;
    const double b =
        solveLocal(Arch::III, 2, 0.0, coarse).throughputPerUs;
    EXPECT_NEAR(a, b, a * 0.05);
}

TEST(NonlocalModel, SingleConversationMatchesHandAnalysis)
{
    // Arch I, one conversation: client busy C_d ~ 2767.3 us (Table
    // 6.6 client-node actions) and total cycle C_d + S_d.
    const NonlocalSolution s = solveNonlocal(Arch::I, 1, 0.0);
    ASSERT_TRUE(s.converged);
    const double cycle = 1.0 / s.throughputPerUs;
    // Client-node work: 1314.9 + 235.2 + 235.2 + 982 = 2767.3.
    EXPECT_NEAR(s.clientBusy, 2767.3, 2767.3 * 0.05);
    // Server side: match + reply + DMAs ~ 3823.5 (receive overlapped).
    EXPECT_NEAR(cycle, 2767.3 + 3823.5, (2767.3 + 3823.5) * 0.06);
}

TEST(NonlocalModel, FixedPointConverges)
{
    for (Arch a : {Arch::I, Arch::II}) {
        const NonlocalSolution s = solveNonlocal(a, 2, 1140.0);
        EXPECT_TRUE(s.converged) << archName(a);
        EXPECT_GT(s.throughputPerUs, 0.0);
        EXPECT_GT(s.serverDelay, 0.0);
    }
}

TEST(NonlocalModel, ArchIIIBeatsIAtMaxLoad)
{
    const double t1 = solveNonlocal(Arch::I, 3, 0.0).throughputPerUs;
    const double t3 = solveNonlocal(Arch::III, 3, 0.0).throughputPerUs;
    EXPECT_GT(t3, t1 * 1.3);
}

TEST(NonlocalModel, ValidationConfigBuilds)
{
    const NonlocalSolution s = solveNonlocalCustom(
        validationClientParams(), validationServerParams(), 2, 2850.0,
        2);
    EXPECT_TRUE(s.converged);
    EXPECT_GT(s.throughputPerUs, 0.0);
}

TEST(Contention, InflatesBusyActivities)
{
    const ContentionResult r = solveContention(archIClientActivities());
    ASSERT_EQ(r.contention.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_GT(r.contention[i], r.best[i] * 0.999);
        // Inflation stays modest (Table 6.2 reports ~2%).
        EXPECT_LT(r.contention[i], r.best[i] * 1.15);
    }
}

TEST(Contention, NoContentionForSingleActivity)
{
    const ContentionResult r =
        solveContention({{"Solo", 100, 20, 0}});
    // In isolation the completion time equals best.
    EXPECT_NEAR(r.contention[0], r.best[0], r.best[0] * 0.02);
}

TEST(Contention, PartitionedBusReducesInterference)
{
    std::vector<Activity> both = {
        {"A", 100, 60, 0},
        {"B", 100, 60, 0},
    };
    std::vector<Activity> split = {
        {"A", 100, 60, 0},
        {"B", 100, 60, 1},
    };
    const double together = solveContention(both, 1).contention[0];
    const double apart = solveContention(split, 2).contention[0];
    EXPECT_LT(apart, together);
}

TEST(OfferedLoad, MonotoneDecreasingInServerTime)
{
    SolveConfig cfg;
    double prev = 1.1;
    for (double ms : {0.0, 0.57, 5.7, 45.6}) {
        const double load = offeredLoad(Arch::I, true, ms * 1000.0, cfg);
        EXPECT_LT(load, prev);
        prev = load;
    }
    EXPECT_DOUBLE_EQ(offeredLoad(Arch::I, true, 0.0), 1.0);
}

TEST(OfferedLoad, ArchILocalMatchesPaper)
{
    // Table 6.24 row 5.7 ms: offered load 0.466 for architecture I.
    const double load = offeredLoad(Arch::I, true, 5700.0);
    EXPECT_NEAR(load, 0.466, 0.02);
}

TEST(OfferedLoad, ServerTimeInversion)
{
    const double load = 0.6;
    const double s = serverTimeForLoad(Arch::II, true, load);
    EXPECT_NEAR(offeredLoad(Arch::II, true, s), load, 1e-9);
}


// --- Mean Value Analysis cross-check -------------------------------------

TEST(Mva, SingleStationSingleCustomer)
{
    // One customer, one queueing station: X = 1/D.
    const MvaResult r = solveMva({{"S", 100.0, false}}, 1);
    EXPECT_NEAR(r.throughputPerUs, 0.01, 1e-12);
    EXPECT_NEAR(r.cycleTimeUs, 100.0, 1e-12);
}

TEST(Mva, DelayStationDoesNotQueue)
{
    // Station + think time: interactive-system formula
    // X(N) with Z: R grows only at the queueing station.
    const std::vector<Station> st = {{"CPU", 50.0, false},
                                     {"Think", 200.0, true}};
    const MvaResult r1 = solveMva(st, 1);
    EXPECT_NEAR(r1.throughputPerUs, 1.0 / 250.0, 1e-12);
    const MvaResult r8 = solveMva(st, 8);
    // Asymptotically bounded by 1/D_max = 1/50.
    EXPECT_LT(r8.throughputPerUs, 1.0 / 50.0 + 1e-12);
    EXPECT_GT(r8.throughputPerUs, r1.throughputPerUs * 2.0);
}

TEST(Mva, UtilizationLawHolds)
{
    const std::vector<Station> st = {{"A", 30.0, false},
                                     {"B", 70.0, false}};
    const MvaResult r = solveMva(st, 5);
    EXPECT_NEAR(r.utilization[0], r.throughputPerUs * 30.0, 1e-12);
    EXPECT_LE(r.utilization[1], 1.0 + 1e-9);
    // Little's law: sum of queue lengths equals the population.
    EXPECT_NEAR(r.queueLength[0] + r.queueLength[1], 5.0, 1e-9);
}

TEST(Mva, MatchesGtpnForSingleConversation)
{
    // With one customer there is no queueing anywhere, so MVA and the
    // GTPN agree up to the rendezvous overlap of the receive stage.
    const double mva = mvaLocalThroughput(Arch::II, 1, 0.0);
    const double gtpn = solveLocal(Arch::II, 1, 0.0).throughputPerUs;
    EXPECT_NEAR(mva, gtpn, gtpn * 0.10);
}

TEST(Mva, OverPredictsUnderContention)
{
    // MVA has no rendezvous barrier: at several conversations it must
    // be at least as optimistic as the GTPN.
    const double mva = mvaLocalThroughput(Arch::II, 4, 0.0);
    const double gtpn = solveLocal(Arch::II, 4, 0.0).throughputPerUs;
    EXPECT_GT(mva, gtpn * 0.99);
}

TEST(Mva, ArchIBoundedByHostDemand)
{
    // A single station: X(N) saturates at 1/D for every N.
    const double d = 4970.0;
    for (int n : {1, 2, 4}) {
        EXPECT_NEAR(mvaLocalThroughput(Arch::I, n, 0.0), 1.0 / d,
                    1e-9);
    }
}

// --- Extension features ---------------------------------------------------

TEST(Extensions, ScaleMpSpeedOnlyTouchesMpStages)
{
    const LocalParams base = localParams(Arch::II);
    const LocalParams fast = scaleMpSpeed(base, 2.0);
    EXPECT_DOUBLE_EQ(fast.sendSyscall, base.sendSyscall);
    EXPECT_DOUBLE_EQ(fast.hostReplyBase, base.hostReplyBase);
    EXPECT_DOUBLE_EQ(fast.mpSend, base.mpSend / 2.0);
    EXPECT_DOUBLE_EQ(fast.mpReply, base.mpReply / 2.0);
    // Architecture I is untouched.
    const LocalParams uni = scaleMpSpeed(localParams(Arch::I), 2.0);
    EXPECT_DOUBLE_EQ(uni.uniSend, localParams(Arch::I).uniSend);
}

TEST(Extensions, FasterMpImprovesThroughput)
{
    const double base =
        solveLocalCustom(localParams(Arch::II), 4, 0.0, 1)
            .throughputPerUs;
    const double fast =
        solveLocalCustom(scaleMpSpeed(localParams(Arch::II), 2.0), 4,
                         0.0, 1)
            .throughputPerUs;
    EXPECT_GT(fast, base * 1.4);
}

TEST(Extensions, SecondHostHelpsOnlyUntilMpSaturates)
{
    // Chapter-7 shape: going 1 -> 2 hosts helps; 2 -> 3 barely does,
    // because the single MP is the bottleneck.
    const LocalParams p = localParams(Arch::II);
    const double h1 =
        solveLocalCustom(p, 4, 1710.0, 1).throughputPerUs;
    const double h2 =
        solveLocalCustom(p, 4, 1710.0, 2).throughputPerUs;
    EXPECT_GT(h2, h1 * 1.02);
    const double h3 =
        solveLocalCustom(p, 4, 1710.0, 3).throughputPerUs;
    EXPECT_LT(h3, h2 * 1.05);
}

// Parameterized invariants over architectures and populations.
class ModelInvariants
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
};

TEST_P(ModelInvariants, ThroughputMonotoneInComputeTime)
{
    const auto [arch_i, n] = GetParam();
    const Arch a = static_cast<Arch>(arch_i);
    const double t0 = solveLocal(a, n, 0.0).throughputPerUs;
    const double t1 = solveLocal(a, n, 2850.0).throughputPerUs;
    const double t2 = solveLocal(a, n, 11400.0).throughputPerUs;
    EXPECT_GT(t0, t1);
    EXPECT_GT(t1, t2);
}

TEST_P(ModelInvariants, ThroughputMonotoneInConversations)
{
    const auto [arch_i, n] = GetParam();
    const Arch a = static_cast<Arch>(arch_i);
    if (n <= 1)
        return;
    const double fewer = solveLocal(a, n - 1, 1140.0).throughputPerUs;
    const double more = solveLocal(a, n, 1140.0).throughputPerUs;
    EXPECT_GE(more, fewer * 0.999);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ModelInvariants,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(1, 2, 3)));


TEST(Extensions, OffloadFractionOneIsArchitectureII)
{
    const double off =
        solveLocalCustom(offloadParams(1.0, 1.0), 3, 1140.0, 1)
            .throughputPerUs;
    const double a2 = solveLocal(Arch::II, 3, 1140.0).throughputPerUs;
    EXPECT_NEAR(off, a2, a2 * 0.02);
}

TEST(Extensions, OffloadMonotoneForFastFrontEnd)
{
    double prev = 0.0;
    for (double f : {0.0, 0.5, 1.0}) {
        const double thr =
            solveLocalCustom(offloadParams(f, 2.0), 3, 0.0, 1)
                .throughputPerUs;
        EXPECT_GE(thr, prev * 0.995) << "fraction " << f;
        prev = thr;
    }
}

TEST(Extensions, ZeroOffloadCarriesFullCostOnHost)
{
    // fraction 0: the host does all of architecture II's work, so the
    // result must be below architecture I (which has cheaper stages).
    const double off =
        solveLocalCustom(offloadParams(0.0, 1.0), 2, 0.0, 1)
            .throughputPerUs;
    const double a1 = solveLocal(Arch::I, 2, 0.0).throughputPerUs;
    EXPECT_LT(off, a1);
}


TEST(NonlocalModel, SmartBusArchsConvergeToo)
{
    for (Arch a : {Arch::III, Arch::IV}) {
        const NonlocalSolution s = solveNonlocal(a, 2, 570.0);
        EXPECT_TRUE(s.converged) << archName(a);
        EXPECT_GT(s.throughputPerUs, 0.0);
    }
}

TEST(NonlocalModel, ValidationTwoHostsBeatOne)
{
    const NonlocalSolution one = solveNonlocalCustom(
        validationClientParams(), validationServerParams(), 3, 1140.0,
        1);
    const NonlocalSolution two = solveNonlocalCustom(
        validationClientParams(), validationServerParams(), 3, 1140.0,
        2);
    EXPECT_GT(two.throughputPerUs, one.throughputPerUs);
}

TEST(OfferedLoad, CommunicationTimeIsCached)
{
    const double a = communicationTime(Arch::III, true);
    const double b = communicationTime(Arch::III, true);
    EXPECT_DOUBLE_EQ(a, b);
    EXPECT_GT(a, 3000.0);
    EXPECT_LT(a, 4500.0);
}

TEST(OfferedLoad, NonlocalMatchesPaperSpotRow)
{
    // Table 6.25 row 5.7 ms, architecture III: 0.474.
    EXPECT_NEAR(offeredLoad(Arch::III, false, 5700.0), 0.474, 0.02);
}


TEST(LocalModel, AnalyzerAgreesWithMonteCarloOnArchIII)
{
    // The architecture net itself, exact vs sampled token game.
    const LocalModel m =
        buildLocalModel(localParams(Arch::III), 2, 570.0, 20.0);
    const gtpn::AnalyzerResult exact = gtpn::analyze(m.net);
    gtpn::SimOptions opts;
    opts.horizon = 300000;
    opts.seed = 99;
    const gtpn::SimResult sim = gtpn::simulate(m.net, opts);
    EXPECT_NEAR(sim.usage(lambdaResource),
                exact.usage(lambdaResource),
                exact.usage(lambdaResource) * 0.05);
}

} // namespace
