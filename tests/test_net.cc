/**
 * @file
 * Tests for the unreliable-medium stack: the FaultPlan injector and
 * the sliding-window ack/timeout/retransmit channel, exercised over a
 * bare event queue with synthetic media and processors.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "sim/check/invariants.hh"
#include "sim/des/event_queue.hh"
#include "sim/kernel/ipc_sim.hh"
#include "sim/net/faults.hh"
#include "sim/net/reliable.hh"
#include "sim/node/token_ring.hh"

namespace
{

using namespace hsipc;
using namespace hsipc::sim;

// --- FaultInjector -------------------------------------------------------

TEST(FaultPlan, InactiveWhenAllRatesZero)
{
    FaultPlan p;
    EXPECT_FALSE(p.active());
    p.dropRate = 0.01;
    EXPECT_TRUE(p.active());
    p.dropRate = 0;
    p.crashes.push_back({0, 10, 20});
    EXPECT_TRUE(p.active());
}

TEST(FaultInjector, CleanPlanPassesEverythingUntouched)
{
    FaultInjector inj(FaultPlan{}, 42);
    for (int i = 0; i < 100; ++i) {
        const auto copies = inj.judge();
        ASSERT_EQ(copies.size(), 1u);
        EXPECT_FALSE(copies[0].corrupted);
        EXPECT_EQ(copies[0].extraDelay, 0);
    }
    EXPECT_EQ(inj.stats().injected, 100);
    EXPECT_EQ(inj.stats().dropped, 0);
    EXPECT_EQ(inj.stats().corrupted, 0);
}

TEST(FaultInjector, CertainFaultsAlwaysHappen)
{
    FaultPlan p;
    p.dropRate = 1.0;
    FaultInjector drop(p, 1);
    EXPECT_TRUE(drop.judge().empty());
    EXPECT_EQ(drop.stats().dropped, 1);

    p.dropRate = 0;
    p.corruptRate = 1.0;
    p.duplicateRate = 1.0;
    FaultInjector both(p, 1);
    const auto copies = both.judge();
    ASSERT_EQ(copies.size(), 2u);
    EXPECT_TRUE(copies[0].corrupted);
    // The duplicate is a faithful copy of the corrupted bits, lagging
    // the original.
    EXPECT_TRUE(copies[1].corrupted);
    EXPECT_GT(copies[1].extraDelay, copies[0].extraDelay);
    EXPECT_EQ(both.stats().corrupted, 1);
    EXPECT_EQ(both.stats().duplicated, 1);
}

TEST(FaultInjector, ReorderDelaysTheCopy)
{
    FaultPlan p;
    p.reorderRate = 1.0;
    p.reorderDelayUs = 300;
    FaultInjector inj(p, 7);
    const auto copies = inj.judge();
    ASSERT_EQ(copies.size(), 1u);
    EXPECT_EQ(copies[0].extraDelay, usToTicks(300));
    EXPECT_EQ(inj.stats().reordered, 1);
}

TEST(FaultInjector, RatesConvergeAndAreSeedDeterministic)
{
    FaultPlan p;
    p.dropRate = 0.1;
    FaultInjector a(p, 99);
    FaultInjector b(p, 99);
    long droppedA = 0;
    for (int i = 0; i < 10000; ++i) {
        const bool dropped = a.judge().empty();
        EXPECT_EQ(dropped, b.judge().empty());
        droppedA += dropped ? 1 : 0;
    }
    EXPECT_NEAR(static_cast<double>(droppedA) / 10000.0, 0.1, 0.02);
}

TEST(FaultInjector, CrashWindowsPartitionTheNode)
{
    FaultPlan p;
    p.crashes.push_back({1, 100, 200});
    p.crashes.push_back({0, 500, 600});
    FaultInjector inj(p, 1);
    EXPECT_TRUE(inj.nodeUp(1, usToTicks(50)));
    EXPECT_FALSE(inj.nodeUp(1, usToTicks(100)));
    EXPECT_FALSE(inj.nodeUp(1, usToTicks(199)));
    EXPECT_TRUE(inj.nodeUp(1, usToTicks(200))); // recovered
    EXPECT_TRUE(inj.nodeUp(0, usToTicks(150))); // other node unaffected
    EXPECT_FALSE(inj.nodeUp(0, usToTicks(550)));
}

// --- ReliableChannel -----------------------------------------------------

/** A channel over a synthetic medium and zero-cost processors. */
struct Harness
{
    explicit Harness(const FaultPlan &plan, ReliableChannel::Config cfg =
                                                ReliableChannel::Config{},
                     Tick wire = usToTicks(100))
        : faults(plan, 1234)
    {
        ReliableChannel::Hooks h;
        // Protocol steps cost 1 tick of "processing" on no processor:
        // the protocol logic is what is under test here.
        h.exec = [this](int, const char *, double, int,
                        EventQueue::Callback done) {
            eq.scheduleAfter(1, std::move(done));
        };
        h.mediumToDst = [this, wire](int, EventQueue::Callback cb,
                                     EventQueue::Batch *batch) {
            if (batch)
                batch->scheduleAfter(wire, std::move(cb));
            else
                eq.scheduleAfter(wire, std::move(cb));
        };
        h.mediumToSrc = h.mediumToDst;
        chan = std::make_unique<ReliableChannel>(eq, cfg, faults,
                                                 std::move(h));
    }

    EventQueue eq;
    FaultInjector faults;
    std::unique_ptr<ReliableChannel> chan;
};

TEST(ReliableChannel, DeliversInOrderExactlyOnceOnCleanMedium)
{
    Harness h{FaultPlan{}};
    std::vector<int> delivered;
    for (int i = 0; i < 10; ++i)
        h.chan->send([&delivered, i]() { delivered.push_back(i); });
    h.eq.runUntil(usToTicks(100000));
    EXPECT_EQ(delivered, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}));
    EXPECT_EQ(h.chan->stats().delivered, 10);
    EXPECT_EQ(h.chan->stats().retransmissions, 0);
    EXPECT_EQ(h.chan->stats().timeoutsFired, 0);
    EXPECT_EQ(h.chan->inFlight(), 0);
}

TEST(ReliableChannel, WindowLimitsInFlightPackets)
{
    ReliableChannel::Config cfg;
    cfg.windowSize = 2;
    Harness h{FaultPlan{}, cfg};
    int delivered = 0;
    for (int i = 0; i < 8; ++i)
        h.chan->send([&delivered]() { ++delivered; });
    // Before anything can be acked at most two packets are in flight.
    h.eq.runUntil(usToTicks(50));
    EXPECT_LE(h.chan->inFlight(), 2);
    h.eq.runUntil(usToTicks(100000));
    EXPECT_EQ(delivered, 8);
}

TEST(ReliableChannel, RetransmitsThroughHeavyLoss)
{
    FaultPlan p;
    p.dropRate = 0.4;
    ReliableChannel::Config cfg;
    cfg.rtoUs = 1000;
    Harness h{p, cfg};
    int delivered = 0;
    for (int i = 0; i < 20; ++i)
        h.chan->send([&delivered]() { ++delivered; });
    h.eq.runUntil(usToTicks(5000000));
    EXPECT_EQ(delivered, 20);
    EXPECT_EQ(h.chan->stats().delivered, 20);
    EXPECT_GT(h.chan->stats().retransmissions, 0);
    EXPECT_GT(h.chan->stats().timeoutsFired, 0);
    // Retransmissions inflate wire traffic above useful deliveries.
    EXPECT_GT(h.chan->stats().dataTransmissions,
              h.chan->stats().delivered);
}

TEST(ReliableChannel, SuppressesDuplicates)
{
    FaultPlan p;
    p.duplicateRate = 1.0; // every packet arrives twice
    Harness h{p};
    int delivered = 0;
    for (int i = 0; i < 5; ++i)
        h.chan->send([&delivered]() { ++delivered; });
    h.eq.runUntil(usToTicks(1000000));
    EXPECT_EQ(delivered, 5); // exactly once despite two copies each
    EXPECT_GT(h.chan->stats().duplicatesDropped, 0);
}

TEST(ReliableChannel, DiscardsCorruptCopiesAndRecovers)
{
    FaultPlan p;
    p.corruptRate = 0.5;
    ReliableChannel::Config cfg;
    cfg.rtoUs = 1000;
    Harness h{p, cfg};
    int delivered = 0;
    for (int i = 0; i < 10; ++i)
        h.chan->send([&delivered]() { ++delivered; });
    h.eq.runUntil(usToTicks(5000000));
    EXPECT_EQ(delivered, 10);
    EXPECT_GT(h.chan->stats().corruptDiscarded, 0);
}

TEST(ReliableChannel, ReorderingDeliversEachMessageExactlyOnce)
{
    FaultPlan p;
    p.reorderRate = 0.5;
    p.reorderDelayUs = 450; // several wire times: real inversions
    Harness h{p};
    std::vector<int> delivered;
    for (int i = 0; i < 30; ++i)
        h.chan->send([&delivered, i]() { delivered.push_back(i); });
    h.eq.runUntil(usToTicks(5000000));
    // Messages are independent datagrams: each arrives exactly once,
    // though delayed copies may overtake their successors.
    ASSERT_EQ(delivered.size(), 30u);
    std::sort(delivered.begin(), delivered.end());
    for (int i = 0; i < 30; ++i)
        EXPECT_EQ(delivered[static_cast<std::size_t>(i)], i);
}

TEST(ReliableChannel, SurvivesAReceiverOutage)
{
    FaultPlan p;
    p.crashes.push_back({1, 0, 3000}); // dst down for the first 3 ms
    ReliableChannel::Config cfg;
    cfg.rtoUs = 500;
    Harness h{p, cfg};
    int delivered = 0;
    h.chan->send([&delivered]() { ++delivered; });
    h.eq.runUntil(usToTicks(2000));
    EXPECT_EQ(delivered, 0); // lost at the crashed node's boundary
    h.eq.runUntil(usToTicks(100000));
    EXPECT_EQ(delivered, 1); // a retransmission got through
    EXPECT_GT(h.chan->stats().retransmissions, 0);
    EXPECT_GT(h.faults.stats().crashDrops, 0);
}

TEST(ReliableChannel, BackoffSpacesRetransmissions)
{
    FaultPlan p;
    p.dropRate = 1.0; // nothing ever arrives
    ReliableChannel::Config cfg;
    cfg.rtoUs = 1000;
    cfg.rtoMaxUs = 4000;
    Harness h{p, cfg};
    h.chan->send([]() {});
    h.eq.runUntil(usToTicks(20000));
    // Timeouts at ~1, 2, 4, 4, 4... ms: about six fire within 20 ms;
    // without backoff there would be ~20.
    EXPECT_GE(h.chan->stats().timeoutsFired, 4);
    EXPECT_LE(h.chan->stats().timeoutsFired, 8);
}

TEST(ReliableChannel, ExperimentRtoCeilingCapsTheBackoff)
{
    // The rtoMaxUs Experiment knob reaches the channel: a tight
    // ceiling fires more timeouts over the same outage than the
    // default exponential run-up allows.
    auto timeouts = [](double rtoMaxUs) {
        Experiment e;
        e.local = false;
        e.conversations = 1;
        e.lossRate = 0.4;
        e.warmupUs = 2000;
        e.measureUs = 60000;
        e.seed = 99;
        e.rtoMaxUs = rtoMaxUs;
        return runExperiment(e).netTotals.timeoutsFired;
    };
    EXPECT_GT(timeouts(600), timeouts(80000));
}

// --- ReliableChannel over a token-ring medium ----------------------------

/**
 * The protocol is medium-agnostic: run it over a token ring of any
 * station count (the topology layer's bridged segments instantiate
 * rings well beyond the legacy two stations) with data crossing the
 * whole ring and acks crossing back.
 */
class RingMediumStations : public ::testing::TestWithParam<int>
{
};

TEST_P(RingMediumStations, ChannelDeliversExactlyOnceOverALossyRing)
{
    const int stations = GetParam();
    EventQueue eq;
    FaultPlan plan;
    plan.dropRate = 0.25;
    FaultInjector faults(plan, 4321);
    TokenRing::Config rc;
    rc.stations = stations;
    TokenRing ring(eq, rc);

    ReliableChannel::Hooks h;
    h.exec = [&eq](int, const char *, double, int,
                   EventQueue::Callback done) {
        eq.scheduleAfter(1, std::move(done));
    };
    h.mediumToDst = [&ring, stations](int bytes,
                                      EventQueue::Callback cb,
                                      EventQueue::Batch *batch) {
        ring.send(0, stations - 1, bytes, std::move(cb), batch);
    };
    h.mediumToSrc = [&ring, stations](int bytes,
                                      EventQueue::Callback cb,
                                      EventQueue::Batch *batch) {
        ring.send(stations - 1, 0, bytes, std::move(cb), batch);
    };
    ReliableChannel::Config cfg;
    cfg.rtoUs = 4000;
    ReliableChannel chan(eq, cfg, faults, std::move(h));

    std::vector<int> delivered;
    for (int i = 0; i < 12; ++i)
        chan.send([&delivered, i]() { delivered.push_back(i); });
    eq.runUntil(usToTicks(5000000));

    // Messages are independent datagrams: a retransmitted packet may
    // overtake its successors, but each arrives exactly once.
    ASSERT_EQ(delivered.size(), 12u);
    std::sort(delivered.begin(), delivered.end());
    EXPECT_EQ(delivered,
              (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}));
    EXPECT_EQ(chan.stats().delivered, 12);
    EXPECT_GT(chan.stats().retransmissions, 0);
    EXPECT_EQ(chan.inFlight(), 0);
    // Every surviving data packet and ack crossed the shared medium.
    EXPECT_GT(ring.packetCount(), 24);
    EXPECT_GT(ring.utilization(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(Rings, RingMediumStations,
                         ::testing::Values(2, 3, 5, 8, 16));

TEST(RpcRobustness, ServerCrashDuringRendezvousRecoversViaRetry)
{
    // Regression for the crash-during-rendezvous window: the server
    // node dies between request delivery and reply send, the reply
    // (or the queued request) is lost at the crashed boundary, and
    // the client's timeout/retry path must carry the request through
    // to recovery rather than wedging the conversation.
    Experiment e;
    e.local = false;
    e.conversations = 2;
    e.warmupUs = 2000;
    e.measureUs = 40000;
    e.seed = 7;
    e.retryBudget = 3;
    e.retryBackoffUs = 2000;
    e.retryBackoffMaxUs = 32000;
    e.crashSchedule.push_back({1, 5000, 12000}); // server node down
    const Outcome out = runExperiment(e);

    // The crash ate traffic and the window was survived.
    EXPECT_GT(out.crashDrops, 0);
    EXPECT_EQ(out.crashWindowsRecovered, 1);
    // The client-side retry path fired and the workload kept going.
    EXPECT_GT(out.rpc.retries, 0);
    EXPECT_GT(out.rpc.completed, 0);
    EXPECT_GT(out.throughputPerSec, 0);
    // Minimum backoff (0.75 jitter on 2+4+8 ms) outlasts the window
    // remainder after any in-window loss, so no request can exhaust
    // its budget before the server returns.
    EXPECT_EQ(out.rpc.offered, out.rpc.completed + out.rpc.inFlightAtEnd);

    // The full invariant oracle (disposition conservation included)
    // stays green on the crash path.
    const auto v = sim::check::checkOutcome(e, out);
    EXPECT_TRUE(v.empty()) << sim::check::formatViolations(v);
}

} // namespace
