/**
 * @file
 * The engine self-profiler (ISSUE 8): unit coverage of the recorder's
 * ledgers and the profile-smoke contract — a real experiment run with
 * engineProfile on writes a schema-valid JSON document, and turning
 * the knob off leaves every simulated output byte-identical.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "common/json_value.hh"
#include "common/obs/engine_prof.hh"
#include "sim/des/event_queue.hh"
#include "sim/runner/sweep_runner.hh"

namespace
{

using namespace hsipc;

std::string
slurp(const std::string &path)
{
    std::ifstream in(path);
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** A small but non-trivial remote workload. */
sim::Experiment
smallExperiment()
{
    sim::Experiment e;
    e.arch = models::Arch::II;
    e.local = false;
    e.conversations = 2;
    e.computeUs = 500;
    e.warmupUs = 5000;
    e.measureUs = 50000;
    return e;
}

// --- recorder unit coverage ------------------------------------------

TEST(EngineProfiler, QueueLedgersConserve)
{
    obs::EngineProfiler prof(0); // sample every event
    prof.beginRun();
    sim::EventQueue eq;
    eq.attachProfiler(&prof);

    int fired = 0;
    for (int i = 0; i < 10; ++i)
        eq.scheduleAfter(i * 10, [&fired]() { ++fired; });
    // Two events remain beyond the run horizon.
    eq.scheduleAfter(1000, [] {});
    eq.scheduleAfter(2000, [] {});
    eq.runUntil(500);
    prof.finishRun(eq.size());

    const obs::EngineProfile &p = prof.profile();
    EXPECT_TRUE(p.enabled);
    EXPECT_EQ(p.pushes, 12u);
    EXPECT_EQ(p.pops, 10u);
    EXPECT_EQ(p.remainingAtEnd, 2u);
    EXPECT_EQ(p.pushes, p.pops + p.remainingAtEnd);
    EXPECT_EQ(fired, 10);
    EXPECT_GE(p.maxHeapSize, p.remainingAtEnd);
    // sampleShift 0 wall-samples every execution.
    EXPECT_EQ(p.sampleEvery, 1u);
    EXPECT_EQ(p.sampledEvents, 10u);
    EXPECT_EQ(p.dwellUs.count(), 12);
    EXPECT_EQ(p.heapDepth.count(), 12);
    EXPECT_GE(p.dwellUs.min(), 0.0);
    // All events unclaimed -> residual "sim" track holds them all.
    ASSERT_FALSE(p.tracks.empty());
    EXPECT_EQ(p.tracks[0].name, "sim");
    EXPECT_EQ(p.tracks[0].events, 10u);
}

TEST(EngineProfiler, SamplingMaskIsDeterministic)
{
    obs::EngineProfiler prof; // default 1-in-1024
    EXPECT_TRUE(prof.sampledSeq(0));
    EXPECT_FALSE(prof.sampledSeq(1));
    EXPECT_FALSE(prof.sampledSeq(255));
    EXPECT_FALSE(prof.sampledSeq(512));
    EXPECT_TRUE(prof.sampledSeq(1024));
    EXPECT_TRUE(prof.sampledSeq(2048));
}

TEST(EngineProfiler, ScopesAttributeAndBuildEdges)
{
    obs::EngineProfiler prof(0);
    const int busId = prof.origin("bus");
    const int cpuId = prof.origin("cpu");
    EXPECT_EQ(busId, prof.origin("bus")) << "interning is idempotent";

    prof.beginRun();
    sim::EventQueue eq;
    eq.attachProfiler(&prof);

    // cpu handles an event and schedules for bus with delta 7; the
    // bus event runs under its own scope with a zero-delta
    // self-schedule.
    eq.scheduleAfter(1, [&]() {
        obs::EngineProfiler::Scope s(&prof, cpuId);
        prof.edge(busId, 7);
        eq.scheduleAfter(7, [&]() {
            obs::EngineProfiler::Scope t(&prof, busId);
            prof.edge(busId, 0);
            eq.scheduleAfter(0, [&]() {
                obs::EngineProfiler::Scope u(&prof, busId);
            });
        });
    });
    eq.runUntil(100);
    prof.finishRun(eq.size());

    const obs::EngineProfile &p = prof.profile();
    EXPECT_EQ(p.tracks[static_cast<std::size_t>(cpuId)].events, 1u);
    EXPECT_EQ(p.tracks[static_cast<std::size_t>(busId)].events, 2u);
    EXPECT_EQ(p.tracks[0].events, 0u)
        << "claimed events leave the sim residual";

    ASSERT_EQ(p.edges.size(), 2u); // (bus->bus), (cpu->bus): sorted
    EXPECT_EQ(p.edges[0].src, "bus");
    EXPECT_EQ(p.edges[0].dst, "bus");
    EXPECT_EQ(p.edges[0].count, 1u);
    EXPECT_EQ(p.edges[0].zeroDelta, 1u);
    EXPECT_EQ(p.edges[0].minPositiveDeltaUs, 0.0)
        << "all-zero edge encodes no lookahead";
    EXPECT_EQ(p.edges[1].src, "cpu");
    EXPECT_EQ(p.edges[1].dst, "bus");
    EXPECT_EQ(p.edges[1].count, 1u);
    EXPECT_EQ(p.edges[1].zeroDelta, 0u);
    EXPECT_DOUBLE_EQ(p.edges[1].minPositiveDeltaUs,
                     hsipc::ticksToUs(7));
}

TEST(EngineProfiler, MergeAggregatesByName)
{
    auto runOnce = [](int extraEvents) {
        obs::EngineProfiler prof(0);
        const int id = prof.origin("worker");
        prof.beginRun();
        sim::EventQueue eq;
        eq.attachProfiler(&prof);
        for (int i = 0; i < extraEvents; ++i)
            eq.scheduleAfter(i + 1, [&prof, id]() {
                obs::EngineProfiler::Scope s(&prof, id);
                prof.edge(id, 3);
            });
        eq.runUntil(1000);
        prof.finishRun(eq.size());
        return prof.take();
    };

    obs::EngineProfile merged = runOnce(2);
    merged.merge(runOnce(3));
    EXPECT_EQ(merged.pushes, 5u);
    EXPECT_EQ(merged.pops, 5u);
    ASSERT_EQ(merged.tracks.size(), 2u);
    EXPECT_EQ(merged.tracks[1].name, "worker");
    EXPECT_EQ(merged.tracks[1].events, 5u);
    ASSERT_EQ(merged.edges.size(), 1u);
    EXPECT_EQ(merged.edges[0].count, 5u);
    EXPECT_DOUBLE_EQ(merged.edges[0].minPositiveDeltaUs,
                     hsipc::ticksToUs(3));
}

// --- whole-simulation contracts --------------------------------------

TEST(EngineProfileSim, PayForUseByteIdentity)
{
    sim::Experiment off = smallExperiment();
    sim::Experiment on = smallExperiment();
    on.engineProfile = true;

    const sim::Outcome a = sim::runExperiment(off);
    const sim::Outcome b = sim::runExperiment(on);
    EXPECT_EQ(sim::outcomeJson(a), sim::outcomeJson(b))
        << "enabling the engine profiler changed a simulated output";
    EXPECT_FALSE(a.engineProfile.enabled);
    EXPECT_TRUE(b.engineProfile.enabled);
    EXPECT_GT(b.engineProfile.pops, 0u);
}

TEST(EngineProfileSim, DeterministicSubsetReplicates)
{
    sim::Experiment e = smallExperiment();
    e.engineProfile = true;
    const sim::Outcome a = sim::runExperiment(e);
    const sim::Outcome b = sim::runExperiment(e);
    EXPECT_EQ(a.engineProfile.deterministicJson(),
              b.engineProfile.deterministicJson());
}

TEST(EngineProfileSim, ProfileSmokeSchema)
{
    const std::string path =
        testing::TempDir() + "engprof_smoke.json";
    sim::Experiment e = smallExperiment();
    e.engineProfile = true;
    e.engineProfileFile = path;
    const sim::Outcome out = sim::runExperiment(e);

    const std::string doc = slurp(path);
    ASSERT_FALSE(doc.empty()) << "no profile written to " << path;
    const JsonValue v = parseJson(doc);
    ASSERT_TRUE(v.isObject());

    // The schema marker and every top-level section.
    ASSERT_TRUE(v.has("engineProfile"));
    EXPECT_EQ(v.at("engineProfile").asNumber(), 1.0);
    EXPECT_TRUE(v.at("enabled").asBool());
    EXPECT_GT(v.at("sampleEvery").asNumber(), 0.0);
    for (const char *key :
         {"sampledEvents", "queue", "callbacks", "dwellUs",
          "heapDepth", "tracks", "edges"})
        EXPECT_TRUE(v.has(key)) << "missing key " << key;

    const JsonValue &q = v.at("queue");
    EXPECT_EQ(q.at("pushes").asNumber(),
              q.at("pops").asNumber() +
                  q.at("remainingAtEnd").asNumber());
    EXPECT_GT(q.at("comparisons").asNumber(), 0.0);

    // The full document carries the wall sketches and pool misses.
    EXPECT_TRUE(v.at("callbacks").has("freshPoolBlocks"));

    ASSERT_TRUE(v.at("tracks").isArray());
    const auto &tracks = v.at("tracks").asArray();
    ASSERT_FALSE(tracks.empty());
    double events = 0;
    bool sawWall = false;
    for (const JsonValue &t : tracks) {
        EXPECT_TRUE(t.has("name") && t.has("events") &&
                    t.has("sampled"));
        events += t.at("events").asNumber();
        sawWall = sawWall || t.has("wallNs");
    }
    EXPECT_EQ(events, q.at("pops").asNumber());
    EXPECT_TRUE(sawWall) << "no track carries a wall-clock sketch";

    ASSERT_TRUE(v.at("edges").isArray());
    EXPECT_FALSE(v.at("edges").asArray().empty())
        << "a two-node run must record scheduling-provenance edges";
    for (const JsonValue &edge : v.at("edges").asArray()) {
        EXPECT_TRUE(edge.has("src") && edge.has("dst"));
        EXPECT_GE(edge.at("minPositiveDeltaUs").asNumber(), 0.0);
        EXPECT_GE(edge.at("count").asNumber(),
                  edge.at("zeroDelta").asNumber());
    }

    // The wire edge is the inter-node lookahead ROADMAP item 2 needs.
    bool wireEdge = false;
    for (const JsonValue &edge : v.at("edges").asArray())
        wireEdge = wireEdge ||
                   edge.at("dst").asString() == "wire";
    EXPECT_TRUE(wireEdge) << "no (src -> wire) lookahead edge";

    EXPECT_TRUE(out.engineProfile.enabled);
    std::remove(path.c_str());
}

TEST(EngineProfileSim, FileWithoutKnobIsRejected)
{
    sim::Experiment e = smallExperiment();
    e.engineProfileFile = "/tmp/should_not_exist.json";
    EXPECT_DEATH(sim::runExperiment(e), "engineProfileFile");
}

} // namespace
