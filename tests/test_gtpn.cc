/**
 * @file
 * Unit tests for the GTPN engine: token game, exact analyzer, Monte
 * Carlo simulator, and the thesis' Figure 6.6/6.7 examples.
 */

#include <gtest/gtest.h>

#include "core/gtpn/analyzer.hh"
#include "core/gtpn/export.hh"
#include "core/gtpn/net.hh"
#include "core/gtpn/simulator.hh"
#include "core/gtpn/tokengame.hh"

namespace
{

using namespace hsipc;
using namespace hsipc::gtpn;

TEST(PetriNet, BuildAndLookup)
{
    PetriNet net;
    const PlaceId p = net.addPlace("P", 3);
    const TransId t = net.addTransition("T", 1.0, 1.0);
    net.inputArc(p, t);
    net.outputArc(t, p);

    EXPECT_EQ(net.numPlaces(), 1u);
    EXPECT_EQ(net.numTransitions(), 1u);
    EXPECT_EQ(net.findPlace("P"), p);
    EXPECT_EQ(net.findTransition("T"), t);
    EXPECT_EQ(net.initialMarking(), std::vector<int>{3});
}

TEST(TokenGame, EnablingRespectsMultiplicity)
{
    PetriNet net;
    const PlaceId p = net.addPlace("P", 1);
    const TransId t = net.addTransition("T", 1.0, 1.0);
    net.inputArc(p, t, 2);

    EXPECT_FALSE(inputsSatisfied(net, {1}, t));
    EXPECT_TRUE(inputsSatisfied(net, {2}, t));
}

TEST(TokenGame, ConflictProbabilitiesFollowFrequencies)
{
    // Two transitions compete for one token with weights 1 and 3.
    PetriNet net;
    const PlaceId p = net.addPlace("P", 1);
    const PlaceId a = net.addPlace("A");
    const PlaceId b = net.addPlace("B");
    const TransId ta = net.addTransition("Ta", 1.0, 1.0);
    const TransId tb = net.addTransition("Tb", 1.0, 3.0);
    net.inputArc(p, ta);
    net.outputArc(ta, a);
    net.inputArc(p, tb);
    net.outputArc(tb, b);

    const auto outs = enumerateFirings(net, {net.initialMarking(), {}});
    ASSERT_EQ(outs.size(), 2u);
    double pa = 0.0, pb = 0.0;
    for (const auto &o : outs) {
        ASSERT_EQ(o.state.firings.size(), 1u);
        if (o.state.firings[0].trans == ta)
            pa = o.prob;
        if (o.state.firings[0].trans == tb)
            pb = o.prob;
    }
    EXPECT_DOUBLE_EQ(pa, 0.25);
    EXPECT_DOUBLE_EQ(pb, 0.75);
}

TEST(TokenGame, IndependentTransitionsFireMaximally)
{
    PetriNet net;
    const PlaceId p1 = net.addPlace("P1", 1);
    const PlaceId p2 = net.addPlace("P2", 1);
    const TransId t1 = net.addTransition("T1", 2.0, 1.0);
    const TransId t2 = net.addTransition("T2", 3.0, 1.0);
    net.inputArc(p1, t1);
    net.outputArc(t1, p1);
    net.inputArc(p2, t2);
    net.outputArc(t2, p2);

    const auto outs = enumerateFirings(net, {net.initialMarking(), {}});
    ASSERT_EQ(outs.size(), 1u);
    ASSERT_EQ(outs[0].state.firings.size(), 2u);
    EXPECT_DOUBLE_EQ(outs[0].prob, 1.0);
    EXPECT_EQ(outs[0].state.firings[0].trans, t1);
    EXPECT_EQ(outs[0].state.firings[1].trans, t2);
}

TEST(TokenGame, ZeroDelayTransitionsCascade)
{
    // P1 -> (0) -> P2 -> (0) -> P3 resolves instantly.
    PetriNet net;
    const PlaceId p1 = net.addPlace("P1", 1);
    const PlaceId p2 = net.addPlace("P2");
    const PlaceId p3 = net.addPlace("P3");
    const TransId t1 = net.addTransition("T1", 0.0, 1.0);
    const TransId t2 = net.addTransition("T2", 0.0, 1.0);
    net.inputArc(p1, t1);
    net.outputArc(t1, p2);
    net.inputArc(p2, t2);
    net.outputArc(t2, p3);

    const auto outs = enumerateFirings(net, {net.initialMarking(), {}});
    ASSERT_EQ(outs.size(), 1u);
    EXPECT_TRUE(outs[0].state.firings.empty());
    EXPECT_EQ(outs[0].state.marking[static_cast<std::size_t>(p3)], 1);
}

TEST(TokenGame, MultiTokenBinomialSplit)
{
    // Two tokens, each independently choosing exit (p) or loop (1-p).
    PetriNet net;
    const PlaceId p = net.addPlace("P", 2);
    const PlaceId q = net.addPlace("Q");
    const TransId exit = net.addTransition("exit", 1.0, 0.25);
    const TransId loop = net.addTransition("loop", 1.0, 0.75);
    net.inputArc(p, exit);
    net.outputArc(exit, q);
    net.inputArc(p, loop);
    net.outputArc(loop, p);

    const auto outs = enumerateFirings(net, {net.initialMarking(), {}});
    // Outcomes: {2 exits}, {1 exit + 1 loop}, {2 loops}.
    ASSERT_EQ(outs.size(), 3u);
    double p_by_exits[3] = {0, 0, 0};
    for (const auto &o : outs) {
        int exits = 0;
        for (const auto &f : o.state.firings)
            exits += f.trans == exit;
        p_by_exits[exits] += o.prob;
        (void)loop;
    }
    EXPECT_NEAR(p_by_exits[0], 0.75 * 0.75, 1e-12);
    EXPECT_NEAR(p_by_exits[1], 2 * 0.25 * 0.75, 1e-12);
    EXPECT_NEAR(p_by_exits[2], 0.25 * 0.25, 1e-12);
}

TEST(TokenGame, AdvanceTimeCompletesShortestFiring)
{
    PetriNet net;
    const PlaceId p1 = net.addPlace("P1", 1);
    const PlaceId p2 = net.addPlace("P2", 1);
    const PlaceId q1 = net.addPlace("Q1");
    const PlaceId q2 = net.addPlace("Q2");
    const TransId t1 = net.addTransition("T1", 2.0, 1.0);
    const TransId t2 = net.addTransition("T2", 5.0, 1.0);
    net.inputArc(p1, t1);
    net.outputArc(t1, q1);
    net.inputArc(p2, t2);
    net.outputArc(t2, q2);

    auto outs = enumerateFirings(net, {net.initialMarking(), {}});
    ASSERT_EQ(outs.size(), 1u);
    NetState s = outs[0].state;
    EXPECT_EQ(advanceTime(net, s), 2);
    EXPECT_EQ(s.marking[static_cast<std::size_t>(q1)], 1);
    EXPECT_EQ(s.marking[static_cast<std::size_t>(q2)], 0);
    ASSERT_EQ(s.firings.size(), 1u);
    EXPECT_EQ(s.firings[0].remaining, 3);
}

TEST(TokenGame, StateDependentGateDisablesTransition)
{
    PetriNet net;
    const PlaceId p = net.addPlace("P", 1);
    const PlaceId blocker = net.addPlace("Blocker", 1);
    const PlaceId q = net.addPlace("Q");
    const TransId t = net.addTransition(
        "T", constant(1.0), gate(placeEmpty(blocker), 1.0));
    net.inputArc(p, t);
    net.outputArc(t, q);

    const auto outs = enumerateFirings(net, {net.initialMarking(), {}});
    ASSERT_EQ(outs.size(), 1u);
    EXPECT_TRUE(outs[0].state.firings.empty());
}

// --- Figure 6.6: the thesis' introductory example ----------------------
//
// A token in P1 loops back to P1 a geometric number of times, then
// moves to P2; from P2 it returns to P1.  The throughput is the usage
// of the resource on the P1 -> P2 transition.

struct Fig66
{
    PetriNet net;
    double loop_mean;
    double back_delay;

    explicit Fig66(double mean, double back)
        : loop_mean(mean), back_delay(back)
    {
        const PlaceId p1 = net.addPlace("P1", 1);
        const PlaceId p2 = net.addPlace("P2");
        const TransId t0 = net.addTransition("T0", 1.0, 1.0 / mean,
                                             "Lambda");
        net.inputArc(p1, t0);
        net.outputArc(t0, p2);
        const TransId t1 = net.addTransition("T1", 1.0,
                                             1.0 - 1.0 / mean);
        net.inputArc(p1, t1);
        net.outputArc(t1, p1);
        const TransId t2 = net.addTransition("T2", back, 1.0);
        net.inputArc(p2, t2);
        net.outputArc(t2, p1);
    }

    /** Cycle = geometric(mean) units in P1 plus the return delay. */
    double expectedThroughput() const { return 1.0 / (loop_mean + back_delay); }
};

TEST(Analyzer, Fig66ExampleThroughput)
{
    Fig66 model(20.0, 5.0);
    const AnalyzerResult r = analyze(model.net);
    EXPECT_TRUE(r.converged);
    EXPECT_FALSE(r.deadlock);
    EXPECT_NEAR(r.usage("Lambda"), model.expectedThroughput(), 1e-6);
}

TEST(Analyzer, Fig66FiringRateMatchesUsage)
{
    Fig66 model(12.0, 3.0);
    const AnalyzerResult r = analyze(model.net);
    // The Lambda transition has delay 1, so usage equals firing rate.
    const TransId t0 = model.net.findTransition("T0");
    EXPECT_NEAR(r.firingRate[static_cast<std::size_t>(t0)],
                r.usage("Lambda"), 1e-9);
}

// --- Figure 6.7: constant delay vs geometric approximation -------------

double
throughputWithStage(bool geometric, int stage_delay)
{
    PetriNet net;
    const PlaceId p1 = net.addPlace("P1", 1);
    const PlaceId p2 = net.addPlace("P2");
    const TransId t0 = net.addTransition("T0", 1.0, 1.0, "Lambda");
    net.inputArc(p1, t0);
    net.outputArc(t0, p2);
    if (geometric) {
        const double mean = stage_delay;
        const TransId exit = net.addTransition("exit", 1.0, 1.0 / mean);
        net.inputArc(p2, exit);
        net.outputArc(exit, p1);
        const TransId loop = net.addTransition("loop", 1.0,
                                               1.0 - 1.0 / mean);
        net.inputArc(p2, loop);
        net.outputArc(loop, p2);
    } else {
        const TransId t2 = net.addTransition(
            "T2", static_cast<double>(stage_delay), 1.0);
        net.inputArc(p2, t2);
        net.outputArc(t2, p1);
    }
    return analyze(net).usage("Lambda");
}

TEST(Analyzer, Fig67GeometricApproximatesConstantDelay)
{
    for (int d : {2, 7, 40}) {
        const double exact = throughputWithStage(false, d);
        const double approx = throughputWithStage(true, d);
        EXPECT_NEAR(exact, 1.0 / (1.0 + d), 1e-9);
        EXPECT_NEAR(approx, exact, 1e-6) << "delay " << d;
    }
}

TEST(Analyzer, DetectsDeadlock)
{
    PetriNet net;
    const PlaceId p = net.addPlace("P", 1);
    const PlaceId q = net.addPlace("Q");
    const TransId t = net.addTransition("T", 1.0, 1.0);
    net.inputArc(p, t);
    net.outputArc(t, q); // token ends in Q with nothing enabled
    const AnalyzerResult r = analyze(net);
    EXPECT_TRUE(r.deadlock);
}

TEST(Analyzer, GeneralIntegerDelaysPipeline)
{
    // Three-stage cycle with delays 2, 3, 5: period 10.
    PetriNet net;
    const PlaceId a = net.addPlace("A", 1);
    const PlaceId b = net.addPlace("B");
    const PlaceId c = net.addPlace("C");
    const TransId t1 = net.addTransition("T1", 2.0, 1.0, "Lambda");
    const TransId t2 = net.addTransition("T2", 3.0, 1.0);
    const TransId t3 = net.addTransition("T3", 5.0, 1.0, "Busy5");
    net.inputArc(a, t1);
    net.outputArc(t1, b);
    net.inputArc(b, t2);
    net.outputArc(t2, c);
    net.inputArc(c, t3);
    net.outputArc(t3, a);

    const AnalyzerResult r = analyze(net);
    EXPECT_NEAR(r.usage("Lambda"), 2.0 / 10.0, 1e-9);
    EXPECT_NEAR(r.usage("Busy5"), 5.0 / 10.0, 1e-9);
    EXPECT_NEAR(r.firingRate[static_cast<std::size_t>(t1)], 0.1, 1e-9);
    EXPECT_NEAR(r.firingRate[static_cast<std::size_t>(t2)], 0.1, 1e-9);
    EXPECT_NEAR(r.firingRate[static_cast<std::size_t>(t3)], 0.1, 1e-9);
}

TEST(Analyzer, PlaceOccupancyOfPipeline)
{
    // Token spends 4 of each 5 units in place B (and is in flight
    // during the single unit of T1/T2 firings).
    PetriNet net;
    const PlaceId a = net.addPlace("A", 1);
    const PlaceId b = net.addPlace("B");
    const TransId t1 = net.addTransition("T1", 1.0, 1.0);
    net.inputArc(a, t1);
    net.outputArc(t1, b);
    // B drains via a gated transition that is open 1 time in 5 on
    // average, approximated by frequency 0.25 exit/loop pair.
    const TransId exit = net.addTransition("exit", 1.0, 0.25);
    net.inputArc(b, exit);
    net.outputArc(exit, a);
    const TransId loop = net.addTransition("loop", 1.0, 0.75);
    net.inputArc(b, loop);
    net.outputArc(loop, b);

    const AnalyzerResult r = analyze(net);
    // Cycle: 1 (T1) + geometric(4) in the exit/loop stage; but the
    // token only *rests* in B never (it is always in flight in
    // exit/loop firings), so occupancy of B is 0 and occupancy of A
    // is 0 as well.
    EXPECT_NEAR(r.placeOccupancy[static_cast<std::size_t>(b)], 0.0,
                1e-9);
    EXPECT_NEAR(r.placeOccupancy[static_cast<std::size_t>(a)], 0.0,
                1e-9);
    (void)t1;
}

TEST(Analyzer, PlaceOccupancyOfRestingTokens)
{
    // A bookkeeping place whose token rests while a clock ticks.
    PetriNet net;
    const PlaceId clock = net.addPlace("Clock", 1);
    const PlaceId book = net.addPlace("Book", 1);
    const PlaceId drain = net.addPlace("Drain");
    const TransId tick = net.addTransition("tick", 1.0, 1.0);
    net.inputArc(clock, tick);
    net.outputArc(tick, clock);
    // Consume the bookkeeping token with probability 0.5 per tick;
    // replenish instantly, keeping occupancy measurable.
    const TransId take = net.addTransition("take", 1.0, 0.5);
    net.inputArc(book, take);
    net.outputArc(take, drain);
    const TransId keep = net.addTransition("keep", 1.0, 0.5);
    net.inputArc(book, keep);
    net.outputArc(keep, book);
    const TransId refill = net.addTransition("refill", 0.0, 1.0);
    net.inputArc(drain, refill);
    net.outputArc(refill, book);

    const AnalyzerResult r = analyze(net);
    // The Book token is always inside take/keep firings, never
    // resting: occupancy 0.  Clock likewise.
    EXPECT_NEAR(r.placeOccupancy[static_cast<std::size_t>(book)], 0.0,
                1e-9);
}

TEST(Simulator, MatchesAnalyzerOnFig66)
{
    Fig66 model(15.0, 4.0);
    const AnalyzerResult exact = analyze(model.net);
    SimOptions opts;
    opts.horizon = 400000;
    opts.seed = 3;
    const SimResult sim = simulate(model.net, opts);
    EXPECT_FALSE(sim.deadlock);
    EXPECT_NEAR(sim.usage("Lambda"), exact.usage("Lambda"),
                0.05 * exact.usage("Lambda"));
}

TEST(Simulator, DetectsDeadlock)
{
    PetriNet net;
    const PlaceId p = net.addPlace("P", 1);
    const PlaceId q = net.addPlace("Q");
    const TransId t = net.addTransition("T", 1.0, 1.0);
    net.inputArc(p, t);
    net.outputArc(t, q);
    const SimResult sim = simulate(net);
    EXPECT_TRUE(sim.deadlock);
}

// Property sweep: analyzer vs Monte Carlo on a family of random-ish
// two-stage queueing nets parameterized by (tokens, mean1, mean2).
class GtpnAgreement
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(GtpnAgreement, AnalyzerMatchesSimulation)
{
    const auto [tokens, m1, m2] = GetParam();

    PetriNet net;
    const PlaceId a = net.addPlace("A", tokens);
    const PlaceId b = net.addPlace("B");
    const PlaceId server = net.addPlace("Server", 1);

    // Stage 1: infinite-server geometric delay.
    const TransId e1 = net.addTransition("e1", 1.0, 1.0 / m1);
    net.inputArc(a, e1);
    net.outputArc(e1, b);
    const TransId l1 = net.addTransition("l1", 1.0, 1.0 - 1.0 / m1);
    net.inputArc(a, l1);
    net.outputArc(l1, a);

    // Stage 2: single-server geometric delay, measured.
    const TransId e2 = net.addTransition("e2", 1.0, 1.0 / m2, "Lambda");
    net.inputArc(b, e2);
    net.inputArc(server, e2);
    net.outputArc(e2, a);
    net.outputArc(e2, server);
    const TransId l2 = net.addTransition("l2", 1.0, 1.0 - 1.0 / m2);
    net.inputArc(b, l2);
    net.inputArc(server, l2);
    net.outputArc(l2, b);
    net.outputArc(l2, server);

    const AnalyzerResult exact = analyze(net);
    ASSERT_TRUE(exact.converged);
    SimOptions opts;
    opts.horizon = 300000;
    opts.seed = 1234 + static_cast<std::uint64_t>(tokens);
    const SimResult sim = simulate(net, opts);
    EXPECT_NEAR(sim.usage("Lambda"), exact.usage("Lambda"),
                0.06 * exact.usage("Lambda"))
        << "tokens=" << tokens << " m1=" << m1 << " m2=" << m2;
    (void)e1; (void)l1; (void)e2; (void)l2;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, GtpnAgreement,
    ::testing::Values(std::make_tuple(1, 5, 3),
                      std::make_tuple(2, 8, 4),
                      std::make_tuple(3, 10, 2),
                      std::make_tuple(4, 6, 6),
                      std::make_tuple(2, 20, 10),
                      std::make_tuple(3, 3, 12)));


// --- Export and validation ----------------------------------------------

TEST(Export, DotContainsPlacesAndTransitions)
{
    Fig66 model(10.0, 2.0);
    const std::string dot = toDot(model.net);
    EXPECT_NE(dot.find("digraph gtpn"), std::string::npos);
    EXPECT_NE(dot.find("P1"), std::string::npos);
    EXPECT_NE(dot.find("T0"), std::string::npos);
    EXPECT_NE(dot.find("[Lambda]"), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
}

TEST(Export, CleanNetValidates)
{
    Fig66 model(10.0, 2.0);
    EXPECT_TRUE(validateNet(model.net).empty());
}

TEST(Export, DetectsTokenSourceAndSink)
{
    PetriNet net;
    const PlaceId p = net.addPlace("P", 1);
    const TransId src = net.addTransition("source", 1.0, 1.0);
    net.outputArc(src, p);
    const TransId sink = net.addTransition("sink", 1.0, 1.0);
    net.inputArc(p, sink);
    const auto issues = validateNet(net);
    ASSERT_EQ(issues.size(), 2u);
    EXPECT_NE(issues[0].find("source"), std::string::npos);
    EXPECT_NE(issues[1].find("sink"), std::string::npos);
}

TEST(Export, DetectsVanishingLoop)
{
    PetriNet net;
    const PlaceId p = net.addPlace("P", 1);
    const TransId t = net.addTransition("spin", 0.0, 1.0);
    net.inputArc(p, t);
    net.outputArc(t, p);
    const auto issues = validateNet(net);
    ASSERT_FALSE(issues.empty());
    EXPECT_NE(issues[0].find("vanishing loop"), std::string::npos);
}

TEST(Export, DetectsDisconnectedAndAccumulatingPlaces)
{
    PetriNet net;
    net.addPlace("Orphan");
    const PlaceId a = net.addPlace("A", 1);
    const PlaceId hoard = net.addPlace("Hoard");
    const TransId t = net.addTransition("t", 1.0, 1.0);
    net.inputArc(a, t);
    net.outputArc(t, a);
    net.outputArc(t, hoard);
    const auto issues = validateNet(net);
    bool orphan = false, accum = false;
    for (const auto &i : issues) {
        orphan = orphan || i.find("Orphan") != std::string::npos;
        accum = accum || i.find("Hoard") != std::string::npos;
    }
    EXPECT_TRUE(orphan);
    EXPECT_TRUE(accum);
}


// --- Engine robustness ----------------------------------------------------

TEST(TokenGame, ArcMultiplicityConsumesAndProduces)
{
    PetriNet net;
    const PlaceId p = net.addPlace("P", 4);
    const PlaceId q = net.addPlace("Q");
    const TransId t = net.addTransition("pair", 1.0, 1.0);
    net.inputArc(p, t, 2);
    net.outputArc(t, q, 3);

    // Two firings start (4 tokens / multiplicity 2).
    auto outs = enumerateFirings(net, {net.initialMarking(), {}});
    ASSERT_EQ(outs.size(), 1u);
    EXPECT_EQ(outs[0].state.firings.size(), 2u);
    NetState st = outs[0].state;
    advanceTime(net, st);
    EXPECT_EQ(st.marking[static_cast<std::size_t>(q)], 6);
}

TEST(TokenGame, StateDependentDelay)
{
    // The transition's delay depends on the marking of a mode place.
    PetriNet net;
    const PlaceId p = net.addPlace("P", 1);
    const PlaceId mode = net.addPlace("Mode", 1);
    const PlaceId q = net.addPlace("Q");
    const TransId t = net.addTransition(
        "T",
        [mode](const EvalContext &ctx) {
            return ctx.marking(mode) > 0 ? 7.0 : 2.0;
        },
        constant(1.0));
    net.inputArc(p, t);
    net.outputArc(t, q);

    auto outs = enumerateFirings(net, {net.initialMarking(), {}});
    ASSERT_EQ(outs.size(), 1u);
    ASSERT_EQ(outs[0].state.firings.size(), 1u);
    EXPECT_EQ(outs[0].state.firings[0].remaining, 7);
}

TEST(TokenGame, VanishingLoopPanics)
{
    PetriNet net;
    const PlaceId p = net.addPlace("P", 1);
    const TransId t = net.addTransition("spin", 0.0, 1.0);
    net.inputArc(p, t);
    net.outputArc(t, p);
    EXPECT_DEATH(enumerateFirings(net, {net.initialMarking(), {}}),
                 "vanishing");
}

TEST(Analyzer, StateCapPanics)
{
    // A counter net with unbounded-ish growth vs a tiny cap.
    PetriNet net;
    const PlaceId clock = net.addPlace("Clock", 1);
    const PlaceId acc = net.addPlace("Acc");
    const TransId t = net.addTransition("tick", 1.0, 1.0);
    net.inputArc(clock, t);
    net.outputArc(t, clock);
    net.outputArc(t, acc);
    AnalyzerOptions opts;
    opts.maxStates = 16;
    EXPECT_DEATH(analyze(net, opts), "maxStates");
}

TEST(Analyzer, ZeroFrequencyTransitionNeverFires)
{
    PetriNet net;
    const PlaceId p = net.addPlace("P", 1);
    const PlaceId q = net.addPlace("Q");
    const TransId dead = net.addTransition("dead", 1.0, 0.0);
    net.inputArc(p, dead);
    net.outputArc(dead, q);
    const TransId live = net.addTransition("live", 1.0, 1.0, "L");
    net.inputArc(p, live);
    net.outputArc(live, p);

    const AnalyzerResult r = analyze(net);
    EXPECT_NEAR(r.usage("L"), 1.0, 1e-9);
    EXPECT_DOUBLE_EQ(
        r.firingRate[static_cast<std::size_t>(dead)], 0.0);
    EXPECT_DOUBLE_EQ(
        r.placeOccupancy[static_cast<std::size_t>(q)], 0.0);
}

TEST(Analyzer, CombinatorsTokensAndNoneFiring)
{
    // A gate built from tokens() arithmetic: the drain only runs
    // while the level is above 2.
    PetriNet net;
    const PlaceId level = net.addPlace("Level", 5);
    const TransId drain = net.addTransition(
        "drain", constant(1.0),
        [level](const EvalContext &ctx) {
            return ctx.marking(level) > 2 ? 1.0 : 0.0;
        });
    net.inputArc(level, drain);

    // Deadlocks once the level reaches 2 (drain disabled).
    const AnalyzerResult r = analyze(net);
    EXPECT_TRUE(r.deadlock);
    EXPECT_NEAR(r.placeOccupancy[static_cast<std::size_t>(level)],
                2.0, 1e-6);
}

TEST(Simulator, DeterministicForFixedSeed)
{
    Fig66 model(9.0, 4.0);
    SimOptions opts;
    opts.horizon = 50000;
    opts.seed = 77;
    const SimResult a = simulate(model.net, opts);
    const SimResult b = simulate(model.net, opts);
    EXPECT_DOUBLE_EQ(a.usage("Lambda"), b.usage("Lambda"));
}

TEST(Markov, SolveOptionsRespectSweepCap)
{
    MarkovChain c;
    c.addEdge(0, 1, 1.0);
    c.addEdge(1, 0, 1.0);
    SolveOptions opts;
    opts.maxSweeps = 3;
    opts.tolerance = 1e-30; // unreachable: must stop at the cap
    const SolveResult r = c.solve(opts);
    EXPECT_FALSE(r.converged);
    EXPECT_EQ(r.sweeps, 3);
}

TEST(Markov, HigherDampingStillConverges)
{
    MarkovChain c;
    c.addEdge(0, 0, 0.5);
    c.addEdge(0, 1, 0.5);
    c.addEdge(1, 0, 1.0);
    SolveOptions opts;
    opts.damping = 0.9;
    const SolveResult r = c.solve(opts);
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(r.piEmbedded[0], 2.0 / 3.0, 1e-7);
}

} // namespace
