/**
 * @file
 * Semantic tests for the chapter-4 925 IPC kernel: services,
 * offer/receive/inquire, no-wait vs remote-invocation send, kernel
 * buffering and blocking, memory-reference messages, interrupt
 * mapping, and the genuineness of the §5.1 shared-memory lists —
 * including the whole kernel running its queue operations through the
 * appendix-A microcoded controller.
 */

#include <gtest/gtest.h>

#include "k925/kernel.hh"
#include "ucode/microcode.hh"

namespace
{

using namespace hsipc;
using namespace hsipc::k925;

Message
msg(const char *text)
{
    Message m;
    for (int i = 0; text[i] && i < messageBytes; ++i)
        m.data[static_cast<std::size_t>(i)] =
            static_cast<std::uint8_t>(text[i]);
    return m;
}

std::string
text(const Message &m)
{
    std::string s;
    for (std::uint8_t c : m.data) {
        if (!c)
            break;
        s.push_back(static_cast<char>(c));
    }
    return s;
}

class K925Fixture : public ::testing::Test
{
  protected:
    K925Fixture()
    {
        client = k.createTask("editor");
        server = k.createTask("file-server");
        svc = k.createService(server);
        k.offer(server, svc);
    }

    Kernel k;
    TaskId client{}, server{};
    ServiceId svc{};
};

TEST_F(K925Fixture, RemoteInvocationRendezvous)
{
    std::string got_request, got_reply;
    Envelope saved;

    ASSERT_EQ(k.receive(server,
                        [&](const Envelope &e) {
                            got_request = text(e.msg);
                            saved = e;
                        }),
              K925Status::Ok);
    EXPECT_EQ(k.taskState(server), TaskState::Stopped);

    ASSERT_EQ(k.sendRemoteInvocation(
                  client, svc, msg("read page 7"),
                  [&](const Message &r) { got_reply = text(r); }),
              K925Status::Ok);

    // The server rendezvoused and is runnable; the client is stopped
    // until the reply.
    EXPECT_EQ(got_request, "read page 7");
    EXPECT_EQ(k.taskState(server), TaskState::Computing);
    EXPECT_EQ(k.taskState(client), TaskState::Stopped);

    ASSERT_EQ(k.reply(server, saved, msg("page data")), K925Status::Ok);
    EXPECT_EQ(got_reply, "page data");
    EXPECT_EQ(k.taskState(client), TaskState::Computing);
}

TEST_F(K925Fixture, NoWaitSendDoesNotBlockSender)
{
    ASSERT_EQ(k.sendNoWait(client, svc, msg("fyi")), K925Status::Ok);
    EXPECT_EQ(k.taskState(client), TaskState::Computing);
    EXPECT_EQ(k.pendingMessages(svc), 1);

    std::string got;
    k.receive(server, [&](const Envelope &e) { got = text(e.msg); });
    EXPECT_EQ(got, "fyi");
    EXPECT_EQ(k.pendingMessages(svc), 0);
}

TEST_F(K925Fixture, MessagesQueueUntilServerReceives)
{
    k.sendNoWait(client, svc, msg("one"));
    k.sendNoWait(client, svc, msg("two"));
    k.sendNoWait(client, svc, msg("three"));
    EXPECT_EQ(k.pendingMessages(svc), 3);

    std::vector<std::string> got;
    for (int i = 0; i < 3; ++i)
        k.receive(server,
                  [&](const Envelope &e) { got.push_back(text(e.msg)); });
    EXPECT_EQ(got, (std::vector<std::string>{"one", "two", "three"}));
}

TEST_F(K925Fixture, InquireIsNonBlocking)
{
    EXPECT_FALSE(k.inquire(server));
    k.sendNoWait(client, svc, msg("ping"));
    EXPECT_TRUE(k.inquire(server));
    EXPECT_EQ(k.taskState(server), TaskState::Computing);
}

TEST_F(K925Fixture, ReceiveWithoutOfferFails)
{
    const TaskId lurker = k.createTask("lurker");
    EXPECT_EQ(k.receive(lurker, [](const Envelope &) {}),
              K925Status::NotOffered);
}

TEST_F(K925Fixture, SendToDeadServiceFails)
{
    k.destroyService(svc);
    EXPECT_EQ(k.sendNoWait(client, svc, msg("x")),
              K925Status::NoSuchService);
}

TEST_F(K925Fixture, MultipleServersFcfsDelivery)
{
    const TaskId server2 = k.createTask("file-server-2");
    k.offer(server2, svc);

    std::vector<TaskId> served_by;
    k.receive(server, [&](const Envelope &) {
        served_by.push_back(server);
    });
    k.receive(server2, [&](const Envelope &) {
        served_by.push_back(server2);
    });

    k.sendNoWait(client, svc, msg("a"));
    k.sendNoWait(client, svc, msg("b"));
    // First message to the first waiting server, second to the next.
    EXPECT_EQ(served_by, (std::vector<TaskId>{server, server2}));
}

TEST_F(K925Fixture, ServerWaitingOnTwoServicesGetsEarliestMessage)
{
    const ServiceId svc2 = k.createService(server);
    k.offer(server, svc2);

    k.sendNoWait(client, svc2, msg("second-service-first"));
    k.sendNoWait(client, svc, msg("first-service-later"));

    std::string got;
    k.receive(server, [&](const Envelope &e) { got = text(e.msg); });
    // FCFS across services by arrival order.
    EXPECT_EQ(got, "second-service-first");
}

TEST_F(K925Fixture, BufferExhaustionBlocksSenderAndResumes)
{
    Kernel::Config cfg;
    cfg.kernelBuffers = 2;
    Kernel small(cfg);
    const TaskId c = small.createTask("c");
    const TaskId s = small.createTask("s");
    const ServiceId v = small.createService(s);
    small.offer(s, v);

    EXPECT_EQ(small.sendNoWait(c, v, msg("1")), K925Status::Ok);
    EXPECT_EQ(small.sendNoWait(c, v, msg("2")), K925Status::Ok);
    EXPECT_EQ(small.freeBufferCount(), 0);

    // Non-blocking send fails cleanly...
    EXPECT_EQ(small.sendNoWait(c, v, msg("3"), false),
              K925Status::WouldBlock);
    // ...a blocking one stops the task.
    EXPECT_EQ(small.sendNoWait(c, v, msg("3")), K925Status::Ok);
    EXPECT_EQ(small.taskState(c), TaskState::Stopped);

    // Receiving one message frees a buffer and resumes the sender.
    std::string got;
    small.receive(s, [&](const Envelope &e) { got = text(e.msg); });
    EXPECT_EQ(got, "1");
    EXPECT_EQ(small.taskState(c), TaskState::Computing);
    EXPECT_EQ(small.pendingMessages(v), 2); // "2" and the retried "3"
}

TEST_F(K925Fixture, MemoryReferenceMoveRespectsRights)
{
    // The editor passes a read/write window into its address space
    // (the Fig 4.2 scenario).
    auto &umem = k.userMemory(client);
    for (int i = 0; i < 64; ++i)
        umem[static_cast<std::size_t>(100 + i)] =
            static_cast<std::uint8_t>(i);

    Message m = msg("page request");
    m.hasRef = true;
    m.ref = MemoryRef{100, 64, true, true};

    Envelope env;
    k.receive(server, [&](const Envelope &e) { env = e; });
    k.sendRemoteInvocation(client, svc, m, [](const Message &) {});

    // Read the client's segment through the reference.
    std::uint8_t buf[16];
    ASSERT_EQ(k.moveFromUser(server, env, 8, buf, 16),
              K925Status::Ok);
    EXPECT_EQ(buf[0], 8);
    EXPECT_EQ(buf[15], 23);

    // Write back into it.
    const std::uint8_t patch[4] = {0xde, 0xad, 0xbe, 0xef};
    ASSERT_EQ(k.moveToUser(server, env, 0, patch, 4),
              K925Status::Ok);
    EXPECT_EQ(k.userMemory(client)[100], 0xde);

    // Out-of-bounds access is denied.
    EXPECT_EQ(k.moveFromUser(server, env, 60, buf, 16),
              K925Status::AccessDenied);

    // After the reply all rights are revoked (§4.2.1).
    k.reply(server, env, msg("done"));
    EXPECT_EQ(k.moveFromUser(server, env, 0, buf, 4),
              K925Status::BadEnvelope);
}

TEST_F(K925Fixture, ReadOnlyReferenceDeniesWrites)
{
    Message m = msg("ro");
    m.hasRef = true;
    m.ref = MemoryRef{0, 32, true, false};
    Envelope env;
    k.receive(server, [&](const Envelope &e) { env = e; });
    k.sendRemoteInvocation(client, svc, m, [](const Message &) {});
    const std::uint8_t b[2] = {1, 2};
    EXPECT_EQ(k.moveToUser(server, env, 0, b, 2),
              K925Status::AccessDenied);
}

TEST_F(K925Fixture, ReplyTwiceIsRejected)
{
    Envelope env;
    k.receive(server, [&](const Envelope &e) { env = e; });
    k.sendRemoteInvocation(client, svc, msg("q"),
                           [](const Message &) {});
    EXPECT_EQ(k.reply(server, env, msg("a")), K925Status::Ok);
    EXPECT_EQ(k.reply(server, env, msg("again")),
              K925Status::BadEnvelope);
}

TEST_F(K925Fixture, ReplyToNoWaitSendIsRejected)
{
    Envelope env;
    k.receive(server, [&](const Envelope &e) { env = e; });
    k.sendNoWait(client, svc, msg("datagram"));
    EXPECT_EQ(k.reply(server, env, msg("a")), K925Status::BadEnvelope);
}

TEST_F(K925Fixture, InterruptsMapOntoIpc)
{
    // The driver offers an interrupt service known to its handler
    // (§4.2.2) and posts a receive on it.
    const TaskId driver = k.createTask("disk-driver");
    const ServiceId intr_svc = k.createService(driver);
    k.offer(driver, intr_svc);

    std::string got;
    k.receive(driver, [&](const Envelope &e) { got = text(e.msg); });

    k.installHandler(driver, 5, [&]() {
        // Only activate is legal here.
        EXPECT_EQ(k.sendNoWait(driver, intr_svc, msg("nope")),
                  K925Status::HandlerRestriction);
        EXPECT_EQ(k.activate(intr_svc, msg("sector ready")),
                  K925Status::Ok);
    });
    ASSERT_EQ(k.raiseInterrupt(5), K925Status::Ok);
    EXPECT_EQ(got, "sector ready");
}

TEST_F(K925Fixture, ActivateOutsideHandlerIsRejected)
{
    EXPECT_EQ(k.activate(svc, msg("x")), K925Status::NotInHandler);
}

TEST_F(K925Fixture, UnhandledInterruptReported)
{
    EXPECT_NE(k.raiseInterrupt(42), K925Status::Ok);
}

TEST_F(K925Fixture, WorkListsLiveInSharedMemory)
{
    // Both tasks are computing: the computation list in shared memory
    // holds exactly their TCBs.
    auto comp = k.computationList();
    EXPECT_EQ(comp.size(), 2u);

    // A stopped task is on neither list.
    k.receive(server, [](const Envelope &) {});
    comp = k.computationList();
    EXPECT_EQ(comp, std::vector<TaskId>{client});
    EXPECT_TRUE(k.communicationList().empty());
}

TEST_F(K925Fixture, KillTaskDequeuesItsControlBlock)
{
    const TaskId doomed = k.createTask("doomed");
    EXPECT_EQ(k.computationList().size(), 3u);
    k.killTask(doomed);
    EXPECT_EQ(k.computationList().size(), 2u);
    EXPECT_EQ(k.taskState(doomed), TaskState::Dead);
    // Its TCB returned to the free list: a new task can reuse it.
    const TaskId reborn = k.createTask("reborn");
    EXPECT_EQ(k.taskName(reborn), "reborn");
}

TEST_F(K925Fixture, ReplyToKilledClientIsDropped)
{
    Envelope env;
    k.receive(server, [&](const Envelope &e) { env = e; });
    bool replied = false;
    k.sendRemoteInvocation(client, svc, msg("q"),
                           [&](const Message &) { replied = true; });
    k.killTask(client);
    EXPECT_EQ(k.reply(server, env, msg("a")), K925Status::Ok);
    EXPECT_FALSE(replied);
}

TEST(K925Microcoded, WholeKernelRunsOnMicrocode)
{
    // Every queue manipulation of the kernel — free lists, work
    // lists, service queues — executed by the appendix-A microcoded
    // controller against the kernel's shared memory.
    Kernel k;
    ucode::MicrocodedController ctrl(k.sharedMemory());
    k.setController(ctrl);

    const TaskId c = k.createTask("client");
    const TaskId s = k.createTask("server");
    const ServiceId v = k.createService(s);
    k.offer(s, v);

    std::string got_req, got_rep;
    Envelope env;
    k.receive(s, [&](const Envelope &e) {
        got_req = text(e.msg);
        env = e;
    });
    k.sendRemoteInvocation(c, v, msg("hello"), [&](const Message &r) {
        got_rep = text(r);
    });
    k.reply(s, env, msg("world"));

    EXPECT_EQ(got_req, "hello");
    EXPECT_EQ(got_rep, "world");
    EXPECT_GT(ctrl.sequencer().totalCycles(), 100);
}

TEST(K925Stress, ManyConversationsPreserveBuffers)
{
    Kernel::Config cfg;
    cfg.maxTasks = 32;
    cfg.kernelBuffers = 4;
    Kernel k(cfg);

    const TaskId server = k.createTask("server");
    const ServiceId svc = k.createService(server);
    k.offer(server, svc);

    std::vector<TaskId> clients;
    for (int i = 0; i < 8; ++i)
        clients.push_back(k.createTask("c" + std::to_string(i)));

    const int before = k.freeBufferCount();
    int replies = 0;

    // Server loop: CPS-style receive/reply forever.
    std::function<void()> serve = [&]() {
        k.receive(server, [&](const Envelope &e) {
            Envelope env = e;
            if (env.expectsReply)
                k.reply(server, env, msg("ok"));
            serve();
        });
    };
    serve();

    for (int round = 0; round < 10; ++round) {
        for (TaskId c : clients) {
            k.sendRemoteInvocation(c, svc, msg("work"),
                                   [&](const Message &) { ++replies; });
        }
    }
    EXPECT_EQ(replies, 80);
    EXPECT_EQ(k.freeBufferCount(), before); // no leaked buffers
}


TEST_F(K925Fixture, DestroyServiceDrainsQueuedMessagesToPool)
{
    const int before = k.freeBufferCount();
    k.sendNoWait(client, svc, msg("a"));
    k.sendNoWait(client, svc, msg("b"));
    EXPECT_EQ(k.freeBufferCount(), before - 2);
    k.destroyService(svc);
    EXPECT_EQ(k.freeBufferCount(), before);
}

TEST_F(K925Fixture, OfferIsIdempotent)
{
    k.offer(server, svc); // second offer of the same service
    k.sendNoWait(client, svc, msg("once"));
    int deliveries = 0;
    k.receive(server, [&](const Envelope &) { ++deliveries; });
    EXPECT_EQ(deliveries, 1);
}

TEST_F(K925Fixture, InterleavedConversationsKeepEnvelopesDistinct)
{
    const TaskId client2 = k.createTask("client2");
    std::vector<Envelope> envs;
    k.receive(server, [&](const Envelope &e) { envs.push_back(e); });
    k.sendRemoteInvocation(client, svc, msg("one"),
                           [](const Message &) {});
    k.receive(server, [&](const Envelope &e) { envs.push_back(e); });
    k.sendRemoteInvocation(client2, svc, msg("two"),
                           [](const Message &) {});
    ASSERT_EQ(envs.size(), 2u);
    EXPECT_NE(envs[0].seq, envs[1].seq);
    EXPECT_EQ(envs[0].sender, client);
    EXPECT_EQ(envs[1].sender, client2);
    // Replying to the second does not resume the first client.
    k.reply(server, envs[1], msg("r2"));
    EXPECT_EQ(k.taskState(client), TaskState::Stopped);
    EXPECT_EQ(k.taskState(client2), TaskState::Computing);
    k.reply(server, envs[0], msg("r1"));
    EXPECT_EQ(k.taskState(client), TaskState::Computing);
}

} // namespace
