/**
 * @file
 * Tests for the causal log and critical-path decomposition: exact
 * accounting on hand-built interval chains, window filtering and
 * aggregation, resource-class folding, and the two load-bearing
 * cross-checks against the simulator — every message's components sum
 * to its measured round trip, and the trace-derived bottleneck agrees
 * with the exact GTPN model's saturating processor on all four
 * architectures.
 */

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/trace/critical_path.hh"
#include "sim/analysis/bottleneck.hh"
#include "sim/kernel/ipc_sim.hh"

namespace
{

using namespace hsipc;
using trace::CausalLog;
using trace::Component;

// --- Hand-built causal chains ---------------------------------------

TEST(CriticalPath, DisabledLogRecordsNothing)
{
    CausalLog log;
    log.start(1, 0);
    log.interval(1, "cpu", Component::Service, 0, 10);
    log.done(1, 10);
    EXPECT_TRUE(log.records().empty());
}

TEST(CriticalPath, HandBuiltChainDecomposesExactly)
{
    CausalLog log;
    log.setEnabled(true);
    log.start(1, 0);
    log.interval(1, "n0.host0", Component::Service, usToTicks(0),
                 usToTicks(10));
    // Unrecorded gap [10, 14): the message sat in n0.mp's entry queue.
    log.interval(1, "n0.mp", Component::Service, usToTicks(14),
                 usToTicks(20));
    log.interval(1, "net", Component::Network, usToTicks(20),
                 usToTicks(30));
    log.interval(1, "n0.svc", Component::Blocked, usToTicks(30),
                 usToTicks(35));
    log.interval(1, "n0.host0", Component::Service, usToTicks(35),
                 usToTicks(40));
    log.done(1, usToTicks(40));

    const trace::MessagePath p =
        trace::reconstructPath(1, log.records().at(1));
    EXPECT_DOUBLE_EQ(p.roundTripUs, 40.0);
    EXPECT_DOUBLE_EQ(p.serviceUs, 21.0); // 10 + 6 + 5
    EXPECT_DOUBLE_EQ(p.queueUs, 4.0);    // the gap, as queueing
    EXPECT_DOUBLE_EQ(p.networkUs, 10.0);
    EXPECT_DOUBLE_EQ(p.blockedUs, 5.0);
    // The partition is gapless and exact.
    EXPECT_DOUBLE_EQ(p.serviceUs + p.queueUs + p.networkUs +
                         p.blockedUs,
                     p.roundTripUs);

    // The gap was charged as queueing on the *next* interval's
    // resource, and the medium's transit counts as its service.
    EXPECT_DOUBLE_EQ(p.queueUsByResource.at("n0.mp"), 4.0);
    EXPECT_DOUBLE_EQ(p.serviceUsByResource.at("n0.host0"), 15.0);
    EXPECT_DOUBLE_EQ(p.serviceUsByResource.at("n0.mp"), 6.0);
    EXPECT_DOUBLE_EQ(p.serviceUsByResource.at("net"), 10.0);
    ASSERT_EQ(p.segments.size(), 6u); // 5 intervals + 1 filled gap

    // Segments tile [start, end) with no holes.
    Tick cursor = p.start;
    for (const trace::PathSegment &s : p.segments) {
        EXPECT_EQ(s.begin, cursor);
        cursor = s.end;
    }
    EXPECT_EQ(cursor, p.end);
}

TEST(CriticalPath, TrailingGapStaysVisibleAsBlocked)
{
    CausalLog log;
    log.setEnabled(true);
    log.start(7, 0);
    log.interval(7, "cpu", Component::Service, 0, usToTicks(10));
    log.done(7, usToTicks(25));

    const trace::MessagePath p =
        trace::reconstructPath(7, log.records().at(7));
    EXPECT_DOUBLE_EQ(p.blockedUs, 15.0);
    ASSERT_EQ(p.segments.size(), 2u);
    EXPECT_EQ(p.segments.back().resource, "unattributed");
    EXPECT_DOUBLE_EQ(p.serviceUs + p.queueUs + p.networkUs +
                         p.blockedUs,
                     p.roundTripUs);
}

TEST(CriticalPath, ZeroLengthIntervalsCarryNoTime)
{
    CausalLog log;
    log.setEnabled(true);
    log.start(1, 0);
    log.interval(1, "cpu", Component::Service, usToTicks(5),
                 usToTicks(5)); // empty: dropped
    log.interval(1, "cpu", Component::Service, usToTicks(5),
                 usToTicks(9));
    log.done(1, usToTicks(9));
    EXPECT_EQ(log.records().at(1).intervals.size(), 1u);
}

TEST(CriticalPath, DecomposeFiltersWindowAndAggregates)
{
    CausalLog log;
    log.setEnabled(true);
    // Three identical 10-us messages completing at 10, 110, 210 us;
    // only the middle one ends inside the (100, 200] window.
    for (long m = 1; m <= 3; ++m) {
        const Tick base = usToTicks(100) * (m - 1);
        log.start(m, base);
        log.interval(m, "n0.mp", Component::Service, base,
                     base + usToTicks(6));
        log.interval(m, "net", Component::Network,
                     base + usToTicks(6), base + usToTicks(10));
        log.done(m, base + usToTicks(10));
    }
    // A fourth message never completes: skipped.
    log.start(4, usToTicks(150));

    const trace::Decomposition d =
        trace::decompose(log, usToTicks(100), usToTicks(200));
    EXPECT_EQ(d.messages, 1);
    EXPECT_DOUBLE_EQ(d.roundTrip.meanUs, 10.0);
    EXPECT_DOUBLE_EQ(d.service.meanUs, 6.0);
    EXPECT_DOUBLE_EQ(d.network.meanUs, 4.0);
    EXPECT_DOUBLE_EQ(d.queue.meanUs, 0.0);
    EXPECT_EQ(d.bottleneck, "n0.mp");
    EXPECT_DOUBLE_EQ(d.bottleneckShare, 0.6);

    // The whole run: all three messages, same means.
    const trace::Decomposition all =
        trace::decompose(log, 0, usToTicks(1000));
    EXPECT_EQ(all.messages, 3);
    EXPECT_DOUBLE_EQ(all.roundTrip.meanUs, 10.0);
    EXPECT_DOUBLE_EQ(all.serviceUsByResource.at("n0.mp"), 6.0);
}

TEST(CriticalPath, PercentilesFollowSimulatorConvention)
{
    CausalLog log;
    log.setEnabled(true);
    // 100 messages with round trips 1..100 us.
    for (long m = 1; m <= 100; ++m) {
        const Tick base = usToTicks(10 * m);
        log.start(m, base);
        log.interval(m, "cpu", Component::Service, base,
                     base + usToTicks(static_cast<double>(m)));
        log.done(m, base + usToTicks(static_cast<double>(m)));
    }
    const trace::Decomposition d =
        trace::decompose(log, 0, usToTicks(100000));
    ASSERT_EQ(d.messages, 100);
    // sorted[n/2], sorted[(n*95)/100], sorted[(n*99)/100].
    EXPECT_DOUBLE_EQ(d.roundTrip.p50Us, 51.0);
    EXPECT_DOUBLE_EQ(d.roundTrip.p95Us, 96.0);
    EXPECT_DOUBLE_EQ(d.roundTrip.p99Us, 100.0);
    EXPECT_LE(d.roundTrip.p50Us, d.roundTrip.p95Us);
    EXPECT_LE(d.roundTrip.p95Us, d.roundTrip.p99Us);
}

// --- Resource-class folding -----------------------------------------

TEST(Bottleneck, ClassifiesSimulatorResourceNames)
{
    using sim::analysis::ResourceClass;
    using sim::analysis::classifyResource;
    EXPECT_EQ(classifyResource("n0.host0"), ResourceClass::Host);
    EXPECT_EQ(classifyResource("n1.host2"), ResourceClass::Host);
    EXPECT_EQ(classifyResource("n0.mp"), ResourceClass::Mp);
    EXPECT_EQ(classifyResource("n0.busTcb"), ResourceClass::Bus);
    EXPECT_EQ(classifyResource("n1.busKb"), ResourceClass::Bus);
    EXPECT_EQ(classifyResource("n0.nicIn"), ResourceClass::Dma);
    EXPECT_EQ(classifyResource("n1.nicOut"), ResourceClass::Dma);
    EXPECT_EQ(classifyResource("net"), ResourceClass::Network);
    EXPECT_EQ(classifyResource("net.n0->n1"), ResourceClass::Network);
    EXPECT_EQ(classifyResource("n0.svc"), ResourceClass::Other);
    EXPECT_EQ(classifyResource("unattributed"), ResourceClass::Other);
}

TEST(Bottleneck, TraceBottleneckFoldsClasses)
{
    using sim::analysis::ResourceClass;
    trace::Decomposition d;
    d.serviceUsByResource["n0.host0"] = 10;
    d.serviceUsByResource["n1.host0"] = 10;
    d.serviceUsByResource["n0.mp"] = 15;
    d.queueUsByResource["n0.mp"] = 30;
    d.queueUsByResource["n0.busTcb"] = 2;
    const auto shares = sim::analysis::classShares(d);
    EXPECT_DOUBLE_EQ(shares.at(ResourceClass::Host), 20.0);
    EXPECT_DOUBLE_EQ(shares.at(ResourceClass::Mp), 45.0);
    EXPECT_DOUBLE_EQ(shares.at(ResourceClass::Bus), 2.0);
    EXPECT_EQ(sim::analysis::traceBottleneck(d), ResourceClass::Mp);
}

TEST(Bottleneck, GtpnSaturationFindsTheLoadedProcessor)
{
    using sim::analysis::ResourceClass;
    // Architecture I has only the host.
    const auto uni = sim::analysis::gtpnSaturation(models::Arch::I, 2, 0);
    EXPECT_EQ(uni.bottleneck, ResourceClass::Host);
    EXPECT_GT(uni.hostUtil, 0.5);
    EXPECT_EQ(uni.mpUtil, 0.0);

    // At maximum communication the MP's stage means dominate the
    // host syscalls under architecture II...
    const auto mp = sim::analysis::gtpnSaturation(models::Arch::II, 2, 0);
    EXPECT_EQ(mp.bottleneck, ResourceClass::Mp);
    EXPECT_GT(mp.mpUtil, mp.hostUtil);

    // ...but a long server computation shifts saturation to the host,
    // which owns the compute stage.
    const auto host =
        sim::analysis::gtpnSaturation(models::Arch::II, 2, 20000);
    EXPECT_EQ(host.bottleneck, ResourceClass::Host);
    EXPECT_GT(host.hostUtil, host.mpUtil);
}

// --- Simulator integration ------------------------------------------

TEST(SimDecomposition, ComponentsSumToMeasuredRoundTrip)
{
    sim::Experiment e;
    e.arch = models::Arch::II;
    e.local = false;
    e.conversations = 3;
    e.computeUs = 1000;
    e.wireUs = 50;
    e.warmupUs = 20000;
    e.measureUs = 200000;
    e.decomposeLatency = true;
    const sim::Outcome o = sim::runExperiment(e);
    ASSERT_GT(o.roundTrips, 0);

    const trace::Decomposition &d = o.decomposition;
    EXPECT_EQ(d.messages, o.roundTrips);
    // Each message's partition is exact, so the means partition the
    // mean round trip (acceptance bound is 1%; construction gives
    // floating-point exactness).
    const double sum = d.service.meanUs + d.queue.meanUs +
                       d.network.meanUs + d.blocked.meanUs;
    EXPECT_NEAR(sum, d.roundTrip.meanUs, 1e-6 * d.roundTrip.meanUs);
    EXPECT_NEAR(d.roundTrip.meanUs, o.meanRoundTripUs,
                1e-6 * o.meanRoundTripUs);
    EXPECT_GT(d.service.meanUs, 0);
    EXPECT_GT(d.network.meanUs, 0);
    EXPECT_FALSE(d.bottleneck.empty());
    EXPECT_GT(d.bottleneckShare, 0);
    EXPECT_LE(d.bottleneckShare, 1.0);

    // Per-resource shares re-sum to the component means.
    double svc_by_res = 0;
    for (const auto &[res, us] : d.serviceUsByResource)
        svc_by_res += us;
    EXPECT_NEAR(svc_by_res, d.service.meanUs + d.network.meanUs,
                1e-6 * svc_by_res);
    double q_by_res = 0;
    for (const auto &[res, us] : d.queueUsByResource)
        q_by_res += us;
    EXPECT_NEAR(q_by_res, d.queue.meanUs,
                1e-6 * std::max(q_by_res, 1.0));
}

TEST(SimDecomposition, RetransmissionWaitIsChargedToNetwork)
{
    sim::Experiment e;
    e.arch = models::Arch::II;
    e.local = false;
    e.conversations = 1;
    e.computeUs = 500;
    e.wireUs = 10;
    e.reliableProtocol = true;
    e.warmupUs = 20000;
    e.measureUs = 300000;
    e.seed = 5;
    e.decomposeLatency = true;
    const sim::Outcome clean = sim::runExperiment(e);
    ASSERT_GT(clean.roundTrips, 0);

    e.lossRate = 0.3;
    const sim::Outcome lossy = sim::runExperiment(e);
    ASSERT_GT(lossy.roundTrips, 0);
    ASSERT_GT(lossy.retransmissions, 0);

    // Every timeout-and-resend waits inside the message's single
    // Network interval, so recovery time lands on the network
    // component (the first RTO alone is 5000 us)...
    EXPECT_GT(lossy.decomposition.network.meanUs,
              clean.decomposition.network.meanUs + 1000);
    // ...and not on the endpoints' service, which stays in the same
    // ballpark (protocol processing runs untagged; it can only stretch
    // queueing, not service).
    EXPECT_LT(lossy.decomposition.service.meanUs,
              2.0 * clean.decomposition.service.meanUs);
}

TEST(SimDecomposition, BottleneckAgreesWithGtpnOnAllArchitectures)
{
    using sim::analysis::ResourceClass;
    for (models::Arch arch : {models::Arch::I, models::Arch::II,
                              models::Arch::III, models::Arch::IV}) {
        // The max-communication workload: local conversations, no
        // server computation.
        const int conversations = 4;
        sim::Experiment e;
        e.arch = arch;
        e.local = true;
        e.conversations = conversations;
        e.computeUs = 0;
        e.warmupUs = 20000;
        e.measureUs = 200000;
        e.decomposeLatency = true;
        const sim::Outcome o = sim::runExperiment(e);
        ASSERT_GT(o.roundTrips, 0) << "arch " << archName(arch);

        const auto model =
            sim::analysis::gtpnSaturation(arch, conversations, 0);
        const ResourceClass traced =
            sim::analysis::traceBottleneck(o.decomposition);
        EXPECT_EQ(traced, model.bottleneck)
            << "arch " << archName(arch) << ": trace says "
            << sim::analysis::resourceClassName(traced)
            << ", GTPN says "
            << sim::analysis::resourceClassName(model.bottleneck)
            << " (host " << model.hostUtil << ", mp " << model.mpUtil
            << ")";
    }
}

} // namespace
