/**
 * @file
 * Tests of the Experiment ⇄ JSON round trip (sim/check) and the
 * underlying JSON parser (common/json_value): every field survives a
 * round trip bit-exactly — including awkward doubles and a full
 * 64-bit seed — and malformed or mistyped documents fail loudly.
 */

#include <cstdint>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

#include "common/json_value.hh"
#include "sim/check/experiment_json.hh"
#include "sim/check/generator.hh"

namespace
{

using namespace hsipc;
using namespace hsipc::sim;
using namespace hsipc::sim::check;

/** An Experiment with every field moved off its default. */
Experiment
everyFieldChanged()
{
    Experiment e;
    e.arch = models::Arch::IV;
    e.local = false;
    e.conversations = 7;
    e.mixedLocal = 2;
    e.mixedRemote = 3;
    e.computeUs = 0.1 + 0.2; // 0.30000000000000004: %.17g territory
    e.hostsPerNode = 3;
    e.extraCopy = true;
    e.mpSpeedFactor = 1.0 / 3.0;
    e.kernelBuffers = 5;
    e.wireUs = 123.456789012345;
    e.useTokenRing = true;
    e.ringMbps = 9.999999999999998;
    e.packetBytes = 129;
    e.warmupUs = 777.25;
    e.measureUs = 31415.9;
    e.seed = 0xfedcba9876543210ull; // needs all 64 bits
    e.lossRate = 0.017;
    e.corruptRate = 0.003;
    e.duplicateRate = 0.25;
    e.reorderRate = 1e-9;
    e.reorderDelayUs = 450.5;
    e.retransmitTimeoutUs = 6250.125;
    e.retransmitWindow = 3;
    e.reliableProtocol = true;
    e.crashSchedule = {{0, 100.5, 200.25}, {1, 5000, 6000.75}};
    e.traceFile = "trace \"quoted\"\n.json";
    e.metricsFile = "metrics\\path.json";
    e.decomposeLatency = true;
    e.arrivalMode = 2;
    e.arrivalRatePerSec = 12345.6789;
    e.paretoAlpha = 1.0 / 0.7; // 1.4285714285714286: %.17g territory
    e.paretoBound = 987.654321;
    e.deadlineUs = 15000.125;
    e.retryBudget = 4;
    e.retryBackoffUs = 333.375;
    e.retryBackoffMaxUs = 44444.5;
    e.svcQueueCap = 17;
    e.shedPolicy = 2;
    e.rtoMaxUs = 123456.789;
    e.topo.nodes = 6;
    e.topo.kind = 2;
    e.topo.linkLatencyUs = 55.5;
    e.topo.linkMbps = 12.000000000000002;
    e.topo.switchLatencyUs = 7.25;
    e.topo.segments = 3;
    e.topo.segMbps = 4.444444444444445;
    e.topo.placement = 3;
    e.topo.zipfSkew = 1.0 / 3.0;
    e.topo.links = {{0, 1, 250.125, 2.5}, {4, 2, 1000, 0}};
    return e;
}

TEST(ExperimentJson, EveryFieldRoundTripsExactly)
{
    const Experiment original = everyFieldChanged();
    const Experiment back =
        experimentFromJsonText(experimentToJson(original));
    // Field-wise exact equality, doubles bitwise (operator== is
    // defaulted); any lossy rendering fails here.
    EXPECT_TRUE(back == original);

    // Spot-check the trickiest fields anyway, so a failure names the
    // culprit instead of just "not equal".
    EXPECT_EQ(back.seed, original.seed);
    EXPECT_EQ(back.computeUs, original.computeUs);
    EXPECT_EQ(back.traceFile, original.traceFile);
    ASSERT_EQ(back.crashSchedule.size(), 2u);
    EXPECT_EQ(back.crashSchedule[1].endUs, 6000.75);
}

TEST(ExperimentJson, DefaultsRoundTripAndEqualDefaults)
{
    const Experiment defaults;
    const Experiment back =
        experimentFromJsonText(experimentToJson(defaults));
    EXPECT_TRUE(back == defaults);
}

TEST(ExperimentJson, GeneratedExperimentsRoundTrip)
{
    const ExperimentGenerator gen(99);
    for (std::uint64_t i = 0; i < 50; ++i) {
        const Experiment e = gen.generate(i);
        EXPECT_TRUE(experimentFromJsonText(experimentToJson(e)) == e)
            << "generator index " << i;
    }
}

TEST(ExperimentJson, MissingFieldsKeepDefaults)
{
    const Experiment e =
        experimentFromJsonText("{\"conversations\": 4}");
    EXPECT_EQ(e.conversations, 4);
    Experiment expect;
    expect.conversations = 4;
    EXPECT_TRUE(e == expect);
}

TEST(ExperimentJson, RejectsUnknownAndIllTyped)
{
    // A typo must not silently run the default configuration.
    EXPECT_THROW(experimentFromJsonText("{\"lossRat\": 0.5}"),
                 std::runtime_error);
    EXPECT_THROW(experimentFromJsonText("{\"lossRate\": \"0.5\"}"),
                 std::runtime_error);
    EXPECT_THROW(experimentFromJsonText("{\"local\": 1}"),
                 std::runtime_error);
    EXPECT_THROW(experimentFromJsonText("{\"conversations\": 1.5}"),
                 std::runtime_error);
    // Seeds travel as decimal strings, not numbers.
    EXPECT_THROW(experimentFromJsonText("{\"seed\": 12}"),
                 std::runtime_error);
    EXPECT_THROW(experimentFromJsonText("{\"seed\": \"12monkeys\"}"),
                 std::runtime_error);
    EXPECT_THROW(experimentFromJsonText("{\"arch\": 5}"),
                 std::runtime_error);
    EXPECT_THROW(experimentFromJsonText("[1, 2]"),
                 std::runtime_error);
}

TEST(ExperimentJson, TopologyRoundTripsAndOmitsItselfByDefault)
{
    // Defaults carry no topology object at all: pre-topology golden
    // documents stay byte-identical.
    EXPECT_EQ(experimentToJson(Experiment{}).find("topology"),
              std::string::npos);

    Experiment e;
    e.topo.nodes = 4;
    e.topo.kind = 1;
    e.topo.switchLatencyUs = 12.5;
    e.topo.placement = 2;
    e.topo.links = {{1, 3, 99.5, 7.5}};
    const std::string text = experimentToJson(e);
    EXPECT_NE(text.find("\"topology\""), std::string::npos);
    const Experiment back = experimentFromJsonText(text);
    EXPECT_TRUE(back == e);
    ASSERT_EQ(back.topo.links.size(), 1u);
    EXPECT_EQ(back.topo.links[0].a, 1);
    EXPECT_EQ(back.topo.links[0].b, 3);
    EXPECT_EQ(back.topo.links[0].latencyUs, 99.5);
    EXPECT_EQ(back.topo.links[0].mbps, 7.5);
}

TEST(ExperimentJson, RejectsBadTopologyDocuments)
{
    // The nested object gets the same unknown-key treatment as the
    // top level: a typo must not silently run a different topology.
    EXPECT_THROW(
        experimentFromJsonText("{\"topology\": {\"nodez\": 2}}"),
        std::runtime_error);
    EXPECT_THROW(experimentFromJsonText("{\"topology\": 3}"),
                 std::runtime_error);
    EXPECT_THROW(
        experimentFromJsonText("{\"topology\": {\"nodes\": 2.5}}"),
        std::runtime_error);
    // Link entries are checked too: unknown keys, wrong types, and
    // missing endpoints all fail loudly.
    EXPECT_THROW(experimentFromJsonText(
                     "{\"topology\": {\"links\": "
                     "[{\"a\": 0, \"b\": 1, \"lat\": 5}]}}"),
                 std::runtime_error);
    EXPECT_THROW(experimentFromJsonText(
                     "{\"topology\": {\"links\": [7]}}"),
                 std::runtime_error);
    EXPECT_THROW(experimentFromJsonText(
                     "{\"topology\": {\"links\": [{\"a\": 0}]}}"),
                 std::runtime_error);
}

TEST(JsonValue, ParsesTheBasics)
{
    const JsonValue v = parseJson(
        "{\"a\": [1, -2.5e3, true, false, null], "
        "\"b\": \"u\\u00e9\\t\\\"\", \"c\": {}}");
    ASSERT_TRUE(v.isObject());
    const auto &arr = v.at("a").asArray();
    ASSERT_EQ(arr.size(), 5u);
    EXPECT_EQ(arr[0].asNumber(), 1.0);
    EXPECT_EQ(arr[1].asNumber(), -2500.0);
    EXPECT_TRUE(arr[2].asBool());
    EXPECT_FALSE(arr[3].asBool());
    EXPECT_TRUE(arr[4].isNull());
    EXPECT_EQ(v.at("b").asString(), "u\xc3\xa9\t\"");
    EXPECT_TRUE(v.at("c").isObject());
    EXPECT_FALSE(v.has("missing"));
    EXPECT_THROW(v.at("missing"), std::out_of_range);
}

TEST(JsonValue, RejectsMalformedDocuments)
{
    for (const char *bad :
         {"", "{", "[1,]", "{\"a\" 1}", "{\"a\": 1,}", "nul",
          "\"unterminated", "1 2", "{\"a\": --1}", "\"\\x\""}) {
        EXPECT_THROW(parseJson(bad), JsonParseError) << bad;
    }
}

TEST(JsonValue, ReportsTheFailureOffset)
{
    try {
        parseJson("{\"ok\": 1, \"bad\": nope}");
        FAIL() << "expected JsonParseError";
    } catch (const JsonParseError &e) {
        EXPECT_GE(e.offset, 17u);
        EXPECT_NE(std::string(e.what()).find("byte"),
                  std::string::npos);
    }
}

} // namespace
