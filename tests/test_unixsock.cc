/**
 * @file
 * Semantic tests for the Unix socket layer (§3.2's fourth system):
 * byte-stream behaviour (no message boundaries), bounded kernel
 * buffering with blocking/non-blocking backpressure, readability
 * polling, and EOF on close.
 */

#include <gtest/gtest.h>

#include "unixsock/sockets.hh"

namespace
{

using namespace hsipc::unixsock;

std::vector<std::uint8_t>
bytes(const std::string &s)
{
    return {s.begin(), s.end()};
}

std::string
text(const std::vector<std::uint8_t> &v)
{
    return {v.begin(), v.end()};
}

class SockFixture : public ::testing::Test
{
  protected:
    SockFixture() : k(16) // a tiny 16-byte kernel buffer
    {
        a = k.createProcess("client");
        b = k.createProcess("server");
        std::tie(sa, sb) = k.socketPair(a, b);
    }

    SocketKernel k;
    ProcId a{}, b{};
    SockId sa{}, sb{};
};

TEST_F(SockFixture, StreamDeliversBytesInOrder)
{
    EXPECT_EQ(k.send(a, sa, bytes("hello ")), SockStatus::Ok);
    EXPECT_EQ(k.send(a, sa, bytes("world")), SockStatus::Ok);
    std::vector<std::uint8_t> got;
    EXPECT_EQ(k.recv(b, sb, 64, got), SockStatus::Ok);
    // Byte stream: the two sends coalesced into one read.
    EXPECT_EQ(text(got), "hello world");
}

TEST_F(SockFixture, ReceivesSplitArbitrarily)
{
    k.send(a, sa, bytes("abcdefgh"));
    std::vector<std::uint8_t> got;
    EXPECT_EQ(k.recv(b, sb, 3, got), SockStatus::Ok);
    EXPECT_EQ(text(got), "abc");
    EXPECT_EQ(k.recv(b, sb, 3, got), SockStatus::Ok);
    EXPECT_EQ(text(got), "def");
    EXPECT_EQ(k.recv(b, sb, 64, got), SockStatus::Ok);
    EXPECT_EQ(text(got), "gh");
}

TEST_F(SockFixture, TwoWayChannel)
{
    k.send(b, sb, bytes("pong"));
    std::vector<std::uint8_t> got;
    EXPECT_EQ(k.recv(a, sa, 16, got), SockStatus::Ok);
    EXPECT_EQ(text(got), "pong");
}

TEST_F(SockFixture, BlockingRecvOnEmptySleeps)
{
    std::vector<std::uint8_t> got;
    EXPECT_EQ(k.recv(b, sb, 8, got), SockStatus::Blocked);
}

TEST_F(SockFixture, NonBlockingRecvReturnsWouldBlock)
{
    k.setNonBlocking(b, sb, true);
    std::vector<std::uint8_t> got;
    EXPECT_EQ(k.recv(b, sb, 8, got), SockStatus::WouldBlock);
}

TEST_F(SockFixture, FullBufferBlocksSenderAndDrains)
{
    // 20 bytes into a 16-byte buffer: the sender blocks with a
    // 4-byte backlog.
    std::size_t accepted = 0;
    EXPECT_EQ(k.send(a, sa, bytes("0123456789abcdefWXYZ"), &accepted),
              SockStatus::Blocked);
    EXPECT_EQ(accepted, 20u); // all taken, 4 queued behind the buffer
    EXPECT_TRUE(k.senderBlocked(sa));
    EXPECT_EQ(k.buffered(sb), 16u);

    // The receiver draining frees space and unblocks the sender.
    std::vector<std::uint8_t> got;
    EXPECT_EQ(k.recv(b, sb, 16, got), SockStatus::Ok);
    EXPECT_EQ(text(got), "0123456789abcdef");
    EXPECT_FALSE(k.senderBlocked(sa));
    EXPECT_EQ(k.recv(b, sb, 16, got), SockStatus::Ok);
    EXPECT_EQ(text(got), "WXYZ");
}

TEST_F(SockFixture, NonBlockingSendTakesWhatFits)
{
    k.setNonBlocking(a, sa, true);
    std::size_t accepted = 0;
    EXPECT_EQ(k.send(a, sa, bytes("0123456789abcdefWXYZ"), &accepted),
              SockStatus::Ok);
    EXPECT_EQ(accepted, 16u); // partial write, no backlog
    EXPECT_FALSE(k.senderBlocked(sa));
    EXPECT_EQ(k.send(a, sa, bytes("more"), &accepted),
              SockStatus::WouldBlock);
    EXPECT_EQ(accepted, 0u);
}

TEST_F(SockFixture, ReadableReflectsQueueAndEof)
{
    EXPECT_FALSE(k.readable(sb));
    k.send(a, sa, bytes("x"));
    EXPECT_TRUE(k.readable(sb));
    std::vector<std::uint8_t> got;
    k.recv(b, sb, 8, got);
    EXPECT_FALSE(k.readable(sb));
    k.close(a, sa);
    EXPECT_TRUE(k.readable(sb)); // EOF is a readable event
}

TEST_F(SockFixture, CloseDeliversRemainingBytesThenEof)
{
    k.send(a, sa, bytes("last words"));
    k.close(a, sa);
    std::vector<std::uint8_t> got;
    EXPECT_EQ(k.recv(b, sb, 64, got), SockStatus::Ok);
    EXPECT_EQ(text(got), "last words");
    EXPECT_EQ(k.recv(b, sb, 64, got), SockStatus::Eof);
}

TEST_F(SockFixture, SendAfterPeerCloseIsEpipe)
{
    k.close(b, sb);
    EXPECT_EQ(k.send(a, sa, bytes("anyone?")),
              SockStatus::PipeClosed);
}

TEST_F(SockFixture, ClosedDescriptorIsBad)
{
    k.close(a, sa);
    std::vector<std::uint8_t> got;
    EXPECT_EQ(k.recv(a, sa, 8, got), SockStatus::BadSocket);
    EXPECT_EQ(k.close(a, sa), SockStatus::BadSocket);
}

TEST_F(SockFixture, DescriptorsAreOwned)
{
    EXPECT_EQ(k.send(b, sa, bytes("not mine")),
              SockStatus::NotOwner);
    EXPECT_EQ(k.setNonBlocking(a, sb, true), SockStatus::NotOwner);
}

TEST_F(SockFixture, BacklogSurvivesSenderClose)
{
    // The sender overfills, then closes: the receiver still gets
    // every byte, then EOF.
    k.send(a, sa, bytes("0123456789abcdefTAIL"));
    k.close(a, sa);
    std::string all;
    std::vector<std::uint8_t> got;
    while (k.recv(b, sb, 7, got) == SockStatus::Ok)
        all += text(got);
    EXPECT_EQ(all, "0123456789abcdefTAIL");
    EXPECT_EQ(k.recv(b, sb, 7, got), SockStatus::Eof);
}

} // namespace
