/**
 * @file
 * Unit tests for the time-resolved observability primitives in
 * src/common/obs: the mergeable DDSketch-style quantile sketch
 * (fixed relative error, exact associative merge), the MSER-5
 * warmup/steady-state detector, the timeline recorder's binning and
 * integral property, and the deterministic per-message-id trace
 * sampler.
 */

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "common/obs/sketch.hh"
#include "common/obs/steady.hh"
#include "common/obs/timeline.hh"
#include "common/obs/trace_sample.hh"
#include "common/rng.hh"

namespace
{

using namespace hsipc;
using obs::QuantileSketch;
using obs::TimelineRecorder;
using obs::TraceSampler;

double
exactQuantile(std::vector<double> sorted, double q)
{
    // The sketch's rank convention: sample floor(q * (n-1)) of the
    // sorted stream.
    std::sort(sorted.begin(), sorted.end());
    const std::size_t rank = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1));
    return sorted[rank];
}

// --- QuantileSketch -------------------------------------------------

TEST(Sketch, EmptyReportsZeroes)
{
    QuantileSketch s;
    EXPECT_EQ(s.count(), 0);
    EXPECT_EQ(s.sum(), 0);
    EXPECT_EQ(s.mean(), 0);
    EXPECT_EQ(s.min(), 0);
    EXPECT_EQ(s.max(), 0);
    EXPECT_EQ(s.quantile(0.5), 0);
    EXPECT_EQ(s.buckets(), 0u);
}

TEST(Sketch, QuantilesWithinRelativeError)
{
    // Samples spanning five decades — exactly the dynamic range the
    // log2 histograms were built for, where their bucket edges are up
    // to 2x off.
    Rng rng(7);
    QuantileSketch s;
    std::vector<double> samples;
    for (int i = 0; i < 20000; ++i) {
        const double v = std::pow(10.0, rng.uniform(-1, 4));
        samples.push_back(v);
        s.observe(v);
    }
    ASSERT_EQ(s.count(), 20000);
    for (double q : {0.0, 0.01, 0.25, 0.50, 0.90, 0.95, 0.99, 1.0}) {
        const double want = exactQuantile(samples, q);
        const double got = s.quantile(q);
        EXPECT_NEAR(got, want, s.relativeAccuracy() * want)
            << "q=" << q;
    }
    // The extremes never escape the observed range.
    EXPECT_GE(s.quantile(0),
              *std::min_element(samples.begin(), samples.end()));
    EXPECT_LE(s.quantile(1),
              *std::max_element(samples.begin(), samples.end()));
}

TEST(Sketch, BoundedMemory)
{
    // 100k samples over six decades still land in a few hundred
    // buckets — the bound that makes the sketch safe at fleet scale.
    Rng rng(11);
    QuantileSketch s;
    for (int i = 0; i < 100000; ++i)
        s.observe(std::pow(10.0, rng.uniform(-2, 4)));
    EXPECT_LE(s.buckets(), 1400u);
    EXPECT_GE(s.buckets(), 100u);
}

TEST(Sketch, ZeroSamplesCollapse)
{
    QuantileSketch s;
    for (int i = 0; i < 10; ++i)
        s.observe(0);
    s.observe(5);
    EXPECT_EQ(s.count(), 11);
    EXPECT_EQ(s.min(), 0);
    EXPECT_EQ(s.max(), 5);
    EXPECT_EQ(s.quantile(0.5), 0);
    EXPECT_NEAR(s.quantile(1.0), 5, 5 * s.relativeAccuracy());
    EXPECT_EQ(s.buckets(), 2u); // one zero bucket + one positive
}

TEST(Sketch, MergeMatchesConcatenatedStream)
{
    // The load-bearing property: merged shards are bit-identical to
    // one sketch that saw the concatenated stream.
    Rng rng(23);
    QuantileSketch a, b, c, all;
    for (int i = 0; i < 3000; ++i) {
        const double v = std::pow(10.0, rng.uniform(-1, 3));
        all.observe(v);
        (i % 3 == 0 ? a : i % 3 == 1 ? b : c).observe(v);
    }

    QuantileSketch leftFold = a;
    leftFold.merge(b);
    leftFold.merge(c);

    QuantileSketch rightFold = b;
    rightFold.merge(c);
    QuantileSketch assoc = a;
    assoc.merge(rightFold);

    for (const QuantileSketch *m : {&leftFold, &assoc}) {
        EXPECT_EQ(m->count(), all.count());
        // The sum is a float accumulation, so shard order costs ULPs;
        // everything rank-based (buckets, counts, quantiles) is exact.
        EXPECT_NEAR(m->sum(), all.sum(), 1e-9 * all.sum());
        EXPECT_EQ(m->min(), all.min());
        EXPECT_EQ(m->max(), all.max());
        EXPECT_EQ(m->buckets(), all.buckets());
        for (double q : {0.01, 0.5, 0.95, 0.99})
            EXPECT_EQ(m->quantile(q), all.quantile(q)) << "q=" << q;
    }
}

TEST(Sketch, MergeEmptySketches)
{
    QuantileSketch a, b;
    a.merge(b);
    EXPECT_EQ(a.count(), 0);
    b.observe(3.5);
    a.merge(b);
    EXPECT_EQ(a.count(), 1);
    EXPECT_EQ(a.min(), 3.5);
    QuantileSketch c;
    a.merge(c); // merging an empty sketch changes nothing
    EXPECT_EQ(a.count(), 1);
    EXPECT_EQ(a.max(), 3.5);
}

// --- MSER-5 steady-state detection ----------------------------------

/** A ramp over @p rampBins climbing to @p level, then steady. */
std::vector<double>
rampThenSteady(std::size_t rampBins, std::size_t steadyBins,
               double level, double noiseSeed)
{
    Rng rng(static_cast<std::uint64_t>(noiseSeed));
    std::vector<double> v;
    for (std::size_t i = 0; i < rampBins; ++i)
        v.push_back(level * static_cast<double>(i + 1) /
                    static_cast<double>(rampBins + 1));
    for (std::size_t i = 0; i < steadyBins; ++i)
        v.push_back(level + rng.uniform(-0.02, 0.02) * level);
    return v;
}

TEST(Mser5, DetectsRampEnd)
{
    // 40 ramp bins (8 batches) then 160 steady bins: the truncation
    // point must land at the ramp/steady boundary, within MSER's
    // one-batch resolution.
    const std::vector<double> series =
        rampThenSteady(40, 160, 1000, 3);
    const std::size_t cut = obs::mser5Truncation(series);
    EXPECT_GE(cut, 35u);
    EXPECT_LE(cut, 50u);
}

TEST(Mser5, SteadyFromTheStartTruncatesNothingMuch)
{
    const std::vector<double> series = rampThenSteady(0, 200, 500, 5);
    EXPECT_LE(obs::mser5Truncation(series), 10u);
}

TEST(Mser5, TooShortReturnsEverything)
{
    // Fewer than two batches: no verdict, truncate everything.
    const std::vector<double> series(7, 1.0);
    EXPECT_EQ(obs::mser5Truncation(series), series.size());
}

TEST(SteadyState, FlagsPollutedWarmup)
{
    // Bins of 1000 us; the ramp spans 40 bins = 40 ms, but the
    // configured warmup claims 5 ms sufficed: polluted.
    const std::vector<double> trips = rampThenSteady(40, 160, 50, 9);
    std::vector<double> rtSum;
    for (double t : trips)
        rtSum.push_back(t * 800); // ~800 us mean round trip
    const obs::SteadyStats s =
        obs::analyzeSteadyState(trips, rtSum, 1000, 5000);
    EXPECT_TRUE(s.enabled);
    EXPECT_FALSE(s.insufficientData);
    EXPECT_TRUE(s.transientPolluted);
    EXPECT_GT(s.truncationUs, 5000);

    // The same series with an honest 50 ms warmup is clean.
    const obs::SteadyStats ok =
        obs::analyzeSteadyState(trips, rtSum, 1000, 50000);
    EXPECT_FALSE(ok.transientPolluted);
}

TEST(SteadyState, BatchMeansEstimates)
{
    // Pure steady state: the batch-means point estimate recovers the
    // configured rate and per-trip latency, with a tight CI.
    const std::size_t bins = 200;
    const double tripsPerBin = 50; // 1000-us bins -> 50k trips/sec
    std::vector<double> trips(bins, tripsPerBin);
    std::vector<double> rtSum(bins, tripsPerBin * 700);
    const obs::SteadyStats s =
        obs::analyzeSteadyState(trips, rtSum, 1000, 0);
    EXPECT_FALSE(s.insufficientData);
    EXPECT_FALSE(s.transientPolluted);
    EXPECT_NEAR(s.throughputPerSec, 50000, 1e-6);
    EXPECT_NEAR(s.meanRtUs, 700, 1e-9);
    EXPECT_NEAR(s.throughputCi95PerSec, 0, 1e-6);
    EXPECT_GT(s.batches, 30);
}

TEST(SteadyState, ShortRunIsInsufficient)
{
    std::vector<double> trips(12, 5.0);
    std::vector<double> rtSum(12, 5.0 * 100);
    const obs::SteadyStats s =
        obs::analyzeSteadyState(trips, rtSum, 1000, 0);
    EXPECT_TRUE(s.enabled);
    EXPECT_TRUE(s.insufficientData);
    EXPECT_FALSE(s.transientPolluted);
}

// --- TimelineRecorder -----------------------------------------------

TEST(Timeline, BinningAndIntegral)
{
    TimelineRecorder tl;
    tl.configure(100, 1000, 200); // 10 bins of 100 us
    ASSERT_TRUE(tl.enabled());
    EXPECT_EQ(tl.binCount(), 10u);

    auto &s = tl.counter("x");
    const Tick us = usToTicks(1);
    tl.add(s, 0 * us);          // bin 0
    tl.add(s, 99 * us);         // bin 0
    tl.add(s, 100 * us);        // bin 1 (half-open bins)
    tl.add(s, 950 * us, 2.5);   // bin 9
    tl.add(s, 1000 * us);       // horizon: clamps into bin 9

    const obs::Timeline t = tl.take();
    ASSERT_EQ(t.counters.at("x").size(), 10u);
    EXPECT_EQ(t.counters.at("x")[0], 2);
    EXPECT_EQ(t.counters.at("x")[1], 1);
    EXPECT_EQ(t.counters.at("x")[9], 3.5);
    EXPECT_EQ(t.total("x"), 6.5); // the integral
    EXPECT_EQ(t.total("absent"), 0);
    EXPECT_EQ(t.intervalUs, 100);
    EXPECT_EQ(t.horizonUs, 1000);
    EXPECT_EQ(t.warmupUs, 200);
}

TEST(Timeline, PartialFinalBin)
{
    TimelineRecorder tl;
    tl.configure(300, 1000, 0); // 1000/300 -> 4 bins, last partial
    EXPECT_EQ(tl.binCount(), 4u);
    auto &s = tl.counter("y");
    tl.add(s, usToTicks(999));
    const obs::Timeline t = tl.take();
    EXPECT_EQ(t.counters.at("y")[3], 1);
}

TEST(Timeline, SingleBinWhenIntervalCoversHorizon)
{
    // interval > horizon: the whole run is one bin, and every event
    // -- including one exactly on the horizon -- lands in it.
    TimelineRecorder tl;
    tl.configure(5000, 1000, 0);
    ASSERT_TRUE(tl.enabled());
    EXPECT_EQ(tl.binCount(), 1u);
    auto &s = tl.counter("z");
    tl.add(s, 0);
    tl.add(s, usToTicks(999));
    tl.add(s, usToTicks(1000)); // horizon clamps into bin 0
    tl.sample("depth", 0, 3);
    const obs::Timeline t = tl.take();
    ASSERT_EQ(t.counters.at("z").size(), 1u);
    EXPECT_EQ(t.counters.at("z")[0], 3);
    EXPECT_EQ(t.total("z"), 3);
    ASSERT_EQ(t.gauges.at("depth").size(), 1u);
    EXPECT_EQ(t.gauges.at("depth")[0], 3);
}

TEST(Timeline, SingleBinWhenIntervalEqualsHorizon)
{
    TimelineRecorder tl;
    tl.configure(1000, 1000, 0);
    EXPECT_EQ(tl.binCount(), 1u);
    auto &s = tl.counter("z");
    tl.add(s, usToTicks(500));
    EXPECT_EQ(tl.binOf(usToTicks(1000)), 0u)
        << "the horizon instant belongs to the only bin";
    const obs::Timeline t = tl.take();
    EXPECT_EQ(t.counters.at("z")[0], 1);
}

TEST(Timeline, NonMultipleHorizonClampsPastLastBin)
{
    // 1000 / 300 -> 4 bins; the partial last bin spans [900, 1000]
    // and events at or past the horizon clamp into it rather than
    // opening a phantom fifth bin.
    TimelineRecorder tl;
    tl.configure(300, 1000, 0);
    EXPECT_EQ(tl.binCount(), 4u);
    EXPECT_EQ(tl.binOf(usToTicks(899)), 2u);
    EXPECT_EQ(tl.binOf(usToTicks(900)), 3u);
    EXPECT_EQ(tl.binOf(usToTicks(1000)), 3u);
    auto &s = tl.counter("y");
    tl.add(s, usToTicks(1000));
    tl.sample("g", tl.binCount() - 1, 1.5);
    const obs::Timeline t = tl.take();
    ASSERT_EQ(t.counters.at("y").size(), 4u);
    EXPECT_EQ(t.counters.at("y")[3], 1);
    EXPECT_EQ(t.gauges.at("g")[3], 1.5);
}

TEST(Timeline, GaugesPadToBinCount)
{
    TimelineRecorder tl;
    tl.configure(100, 500, 0);
    tl.sample("depth", 1, 7);
    const obs::Timeline t = tl.take();
    ASSERT_EQ(t.gauges.at("depth").size(), 5u);
    EXPECT_EQ(t.gauges.at("depth")[1], 7);
    EXPECT_EQ(t.gauges.at("depth")[4], 0);
}

TEST(Timeline, DisabledByDefault)
{
    TimelineRecorder tl;
    EXPECT_FALSE(tl.enabled());
    obs::Timeline t;
    EXPECT_FALSE(t.enabled());
    EXPECT_EQ(t.bins(), 0u);
}

TEST(Timeline, JsonRoundStructure)
{
    TimelineRecorder tl;
    tl.configure(100, 300, 100);
    auto &s = tl.counter("a.b");
    tl.add(s, usToTicks(50));
    tl.sample("g", 0, 0.5);
    const obs::Timeline t = tl.take();
    const std::string j = t.toJson();
    EXPECT_NE(j.find("\"intervalUs\": 100"), std::string::npos);
    EXPECT_NE(j.find("\"a.b\": [1, 0, 0]"), std::string::npos);
    EXPECT_NE(j.find("\"g\": [0.5, 0, 0]"), std::string::npos);
    // Extra sections splice in before the series.
    const std::string withExtra = t.toJson("\"k\": 1");
    EXPECT_NE(withExtra.find("\"k\": 1,"), std::string::npos);
}

// --- TraceSampler ---------------------------------------------------

TEST(TraceSampler, DefaultKeepsEverything)
{
    TraceSampler s;
    EXPECT_TRUE(s.keepAll());
    for (long id = 1; id < 100; ++id)
        EXPECT_TRUE(s.sampled(id));
}

TEST(TraceSampler, RateZeroDropsEverything)
{
    TraceSampler s(0, 42);
    for (long id = 1; id < 100; ++id)
        EXPECT_FALSE(s.sampled(id));
}

TEST(TraceSampler, DeterministicPerIdAndSeed)
{
    TraceSampler a(0.3, 42), b(0.3, 42), other(0.3, 43);
    int agree = 0, differ = 0;
    for (long id = 1; id <= 2000; ++id) {
        EXPECT_EQ(a.sampled(id), b.sampled(id));
        if (a.sampled(id) == other.sampled(id))
            ++agree;
        else
            ++differ;
    }
    // A different seed picks a genuinely different subset.
    EXPECT_GT(differ, 200);
    EXPECT_GT(agree, 200);
}

TEST(TraceSampler, KeepsApproximatelyTheConfiguredFraction)
{
    for (double rate : {0.1, 0.5, 0.9}) {
        TraceSampler s(rate, 7);
        int kept = 0;
        const int n = 20000;
        for (long id = 1; id <= n; ++id)
            kept += s.sampled(id);
        EXPECT_NEAR(static_cast<double>(kept) / n, rate, 0.02)
            << "rate=" << rate;
    }
}

} // namespace
