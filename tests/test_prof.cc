/**
 * @file
 * Tests for the profiling instrumentation and the chapter-3 synthetic
 * kernels: wraparound correction, activity aggregation, and agreement
 * with the thesis' measured breakdowns.
 */

#include <gtest/gtest.h>

#include "prof/callgraph.hh"
#include "prof/kernels.hh"
#include "prof/profiler.hh"

namespace
{

using namespace hsipc;
using namespace hsipc::prof;

TEST(HardwareTimer, WrapsAtSixteenBits)
{
    SimClock clock;
    HardwareTimer timer(clock);
    clock.advance(usToTicks(65535));
    EXPECT_EQ(timer.read(), 65535);
    clock.advance(usToTicks(1));
    EXPECT_EQ(timer.read(), 0);
}

TEST(ProcedureProfiler, AccumulatesTimeAndCounts)
{
    SimClock clock;
    HardwareTimer timer(clock);
    ProcedureProfiler prof(timer);

    for (int i = 0; i < 3; ++i) {
        prof.enter("foo");
        clock.advance(usToTicks(50));
        prof.exit("foo");
    }
    const auto rep = prof.report();
    ASSERT_EQ(rep.size(), 1u);
    EXPECT_EQ(rep[0].count, 3);
    EXPECT_NEAR(rep[0].totalUs, 150.0, 1e-9);
    EXPECT_NEAR(rep[0].perVisitUs, 50.0, 1e-9);
}

TEST(ProcedureProfiler, CorrectsTimerWraparound)
{
    SimClock clock;
    HardwareTimer timer(clock);
    ProcedureProfiler prof(timer);

    // Start near the top of the timer so it wraps mid-measurement.
    clock.advance(usToTicks(65500));
    prof.enter("wrap");
    clock.advance(usToTicks(100)); // timer reads 64 after wrap
    prof.exit("wrap");
    const auto rep = prof.report();
    ASSERT_EQ(rep.size(), 1u);
    EXPECT_NEAR(rep[0].totalUs, 100.0, 1e-9);
}

TEST(ProcedureProfiler, SubtractsInstrumentationOverhead)
{
    SimClock clock;
    HardwareTimer timer(clock);
    ProcedureProfiler prof(timer, 5.0);
    prof.enter("p");
    clock.advance(usToTicks(30));
    prof.exit("p");
    EXPECT_NEAR(prof.report()[0].totalUs, 25.0, 1e-9);
}

TEST(ProcedureProfiler, NestedProceduresBothMeasured)
{
    SimClock clock;
    HardwareTimer timer(clock);
    ProcedureProfiler prof(timer);
    prof.enter("outer");
    clock.advance(usToTicks(10));
    prof.enter("inner");
    clock.advance(usToTicks(20));
    prof.exit("inner");
    clock.advance(usToTicks(10));
    prof.exit("outer");
    const auto rep = prof.report();
    ASSERT_EQ(rep.size(), 2u);
    EXPECT_EQ(rep[0].procedure, "outer"); // first-seen order
    EXPECT_NEAR(rep[0].totalUs, 40.0, 1e-9);
    EXPECT_NEAR(rep[1].totalUs, 20.0, 1e-9);
}

TEST(ProcedureProfiler, ClearResetsStatistics)
{
    SimClock clock;
    HardwareTimer timer(clock);
    ProcedureProfiler prof(timer);
    prof.enter("p");
    clock.advance(usToTicks(10));
    prof.exit("p");
    prof.clear();
    EXPECT_TRUE(prof.report().empty());
}

TEST(MessagePathProfiler, MeasuresSegments)
{
    SimClock clock;
    MessagePathProfiler mp(clock);
    for (int id = 0; id < 4; ++id) {
        mp.begin(id);
        mp.stamp(id, "queued");
        clock.advance(usToTicks(100));
        mp.stamp(id, "copied");
        clock.advance(usToTicks(50));
        mp.stamp(id, "delivered");
    }
    const auto segs = mp.segments();
    ASSERT_EQ(segs.size(), 2u);
    EXPECT_EQ(segs[0].from, "queued");
    EXPECT_NEAR(segs[0].meanUs, 100.0, 1e-9);
    EXPECT_EQ(segs[1].to, "delivered");
    EXPECT_NEAR(segs[1].meanUs, 50.0, 1e-9);
    EXPECT_EQ(segs[0].samples, 4);
}

// --- Synthetic kernels vs the thesis' tables ---------------------------

struct TableTarget
{
    const char *activity;
    double percent;
};

void
expectBreakdown(const ProfileResult &res, double round_trip_ms,
                std::vector<TableTarget> targets, double tol_pct = 1.5)
{
    EXPECT_NEAR(res.roundTripMs, round_trip_ms, round_trip_ms * 0.02)
        << res.system;
    for (const TableTarget &t : targets) {
        bool found = false;
        for (const ActivityRow &row : res.rows) {
            if (row.activity.find(t.activity) != std::string::npos) {
                EXPECT_NEAR(row.percent, t.percent, tol_pct)
                    << res.system << ": " << t.activity;
                found = true;
            }
        }
        EXPECT_TRUE(found) << res.system << " missing " << t.activity;
    }
}

TEST(SyntheticKernels, CharlotteMatchesTable31)
{
    const ProfileResult r = runKernelProfile(charlotteSpec());
    expectBreakdown(r, 20.0,
                    {{"Kernel-Process Switching", 10},
                     {"Copy Time", 3},
                     {"Entering and Exiting Kernel", 14},
                     {"Protocol Processing", 50},
                     {"Link Translation", 23}});
}

TEST(SyntheticKernels, JasminMatchesTable32)
{
    const ProfileResult r = runKernelProfile(jasminSpec());
    expectBreakdown(r, 0.72,
                    {{"Short-Term Scheduling", 40},
                     {"Copy Time", 15},
                     {"Buffer Management", 10},
                     {"Path Management", 20},
                     {"Miscellaneous", 15}});
}

TEST(SyntheticKernels, System925MatchesTable33)
{
    const ProfileResult r = runKernelProfile(spec925());
    expectBreakdown(r, 5.6,
                    {{"Short-Term Scheduling", 35},
                     {"Copy Time", 15},
                     {"Entering and Exiting Kernel", 10},
                     {"Checking, Addressing", 40}});
}

TEST(SyntheticKernels, UnixLocalMatchesTable34)
{
    const ProfileResult r = runKernelProfile(unixLocalSpec());
    expectBreakdown(r, 4.57,
                    {{"Validity Checking", 53.4},
                     {"Copy Time", 19.3},
                     {"Short-Term Scheduling", 17.1},
                     {"Buffer Management", 10.2}});
}

TEST(SyntheticKernels, UnixNonlocalMatchesTable35)
{
    const ProfileResult r = runKernelProfile(unixNonlocalSpec());
    expectBreakdown(r, 6.8,
                    {{"Socket Routines", 15},
                     {"Copy Time", 7},
                     {"Checksum", 9},
                     {"Short-Term Scheduling", 6},
                     {"Buffer Management", 4},
                     {"TCP", 19},
                     {"IP", 24},
                     {"Interrupt", 16}});
}

TEST(SyntheticKernels, PercentagesSumToHundred)
{
    for (const KernelSpec &spec :
         {charlotteSpec(), jasminSpec(), spec925(), unixLocalSpec(),
          unixNonlocalSpec()}) {
        const ProfileResult r = runKernelProfile(spec, 50);
        double total = 0;
        for (const ActivityRow &row : r.rows)
            total += row.percent;
        EXPECT_NEAR(total, 100.0, 1e-6) << spec.system;
    }
}

TEST(SyntheticKernels, FixedOverheadMatchesSection34)
{
    // §3.4: fixed overhead 19.4 ms (Charlotte), 0.612 ms (Jasmin),
    // 4.76 ms (925).
    EXPECT_NEAR(fixedOverheadUs(charlotteSpec()) / 1000.0, 19.4, 0.4);
    EXPECT_NEAR(fixedOverheadUs(jasminSpec()) / 1000.0, 0.612, 0.02);
    EXPECT_NEAR(fixedOverheadUs(spec925()) / 1000.0, 4.76, 0.1);
}

TEST(SyntheticKernels, CopyDominatesLargeCharlotteMessages)
{
    // §3.4: copy time passes 50% of a non-local round trip at about
    // 6000 bytes; locally the fixed overhead is 19.4 ms so the break
    // point of the local kernel sits over 30 KB.
    KernelSpec big = charlotteSpec();
    big.messageBytes = 40000;
    const ProfileResult r = runKernelProfile(big, 20);
    EXPECT_GT(r.copyTimeMs / r.roundTripMs, 0.5);
}

TEST(UnixServices, Table36Times)
{
    // Table 3.6 in milliseconds.
    const std::vector<double> expected = {4.35, 0.36, 18.71, 14.28,
                                          3.453, 0.2};
    const auto &services = unixServices();
    ASSERT_EQ(services.size(), expected.size());
    for (std::size_t i = 0; i < services.size(); ++i) {
        EXPECT_NEAR(serviceTimeMs(services[i]), expected[i],
                    expected[i] * 0.01)
            << services[i].service;
    }
}

TEST(UnixFileServer, Table37Shape)
{
    const FileServerModel rd = unixReadModel();
    const FileServerModel wr = unixWriteModel();
    // Monotone increasing, writes slower than reads, and the end
    // points near the measured table (128 B and 4096 B rows).
    double prev_r = 0, prev_w = 0;
    for (int bytes : unixRwBlockSizes()) {
        const double r = rd.timeMs(bytes);
        const double w = wr.timeMs(bytes);
        EXPECT_GT(r, prev_r);
        EXPECT_GT(w, prev_w);
        EXPECT_GT(w, r);
        prev_r = r;
        prev_w = w;
    }
    EXPECT_NEAR(rd.timeMs(128), 1.0092, 0.1);
    EXPECT_NEAR(wr.timeMs(128), 1.5464, 0.15);
    EXPECT_NEAR(rd.timeMs(4096), 3.2442, 0.2);
    EXPECT_NEAR(wr.timeMs(4096), 6.1082, 0.35);
}

TEST(UnixServices, ComputationComparableToCommunication)
{
    // §3.5's inference: service ("computation") times are comparable
    // to the 4.57 ms local communication time.
    double total = 0;
    for (const auto &svc : unixServices())
        total += serviceTimeMs(svc);
    const double mean = total / unixServices().size();
    EXPECT_GT(mean, 1.0);
    EXPECT_LT(mean, 10.0);
}


// --- Call-graph profiler (the §3.5 gprof counterpart) --------------------

TEST(CallGraph, SelfVsTotalAttribution)
{
    SimClock clock;
    CallGraphProfiler cg(clock);

    cg.enter("syscall");
    clock.advance(usToTicks(10));
    cg.enter("copy");
    clock.advance(usToTicks(30));
    cg.exit("copy");
    clock.advance(usToTicks(5));
    cg.exit("syscall");

    const auto nodes = cg.nodes();
    ASSERT_EQ(nodes.size(), 2u);
    // Ordered by self time: copy (30) before syscall (15).
    EXPECT_EQ(nodes[0].procedure, "copy");
    EXPECT_NEAR(nodes[0].selfUs, 30.0, 1e-9);
    EXPECT_NEAR(nodes[0].totalUs, 30.0, 1e-9);
    EXPECT_EQ(nodes[1].procedure, "syscall");
    EXPECT_NEAR(nodes[1].selfUs, 15.0, 1e-9);
    EXPECT_NEAR(nodes[1].totalUs, 45.0, 1e-9);
}

TEST(CallGraph, EdgesRecordCallersAndCounts)
{
    SimClock clock;
    CallGraphProfiler cg(clock);
    for (int i = 0; i < 3; ++i) {
        cg.enter("recv");
        cg.enter("queueOps");
        clock.advance(usToTicks(2));
        cg.exit("queueOps");
        cg.exit("recv");
    }
    cg.enter("queueOps"); // also called at top level once
    clock.advance(usToTicks(2));
    cg.exit("queueOps");

    const auto edges = cg.edges();
    long via_recv = 0, spontaneous = 0;
    for (const auto &e : edges) {
        if (e.callee == "queueOps" && e.caller == "recv")
            via_recv = e.calls;
        if (e.callee == "queueOps" && e.caller == "<spontaneous>")
            spontaneous = e.calls;
    }
    EXPECT_EQ(via_recv, 3);
    EXPECT_EQ(spontaneous, 1);
}

TEST(CallGraph, RecursionCountsTotalOnce)
{
    SimClock clock;
    CallGraphProfiler cg(clock);
    cg.enter("walk");
    clock.advance(usToTicks(1));
    cg.enter("walk");
    clock.advance(usToTicks(1));
    cg.enter("walk");
    clock.advance(usToTicks(1));
    cg.exit("walk");
    cg.exit("walk");
    cg.exit("walk");

    const auto nodes = cg.nodes();
    ASSERT_EQ(nodes.size(), 1u);
    EXPECT_EQ(nodes[0].calls, 3);
    EXPECT_NEAR(nodes[0].selfUs, 3.0, 1e-9);
    // Inclusive time is the outermost frame only, not 3+2+1.
    EXPECT_NEAR(nodes[0].totalUs, 3.0, 1e-9);
}

TEST(CallGraph, TotalSelfEqualsElapsedInsideProfiling)
{
    SimClock clock;
    CallGraphProfiler cg(clock);
    cg.enter("a");
    clock.advance(usToTicks(7));
    cg.enter("b");
    clock.advance(usToTicks(11));
    cg.exit("b");
    cg.exit("a");
    EXPECT_NEAR(cg.totalSelfUs(), 18.0, 1e-9);
    EXPECT_EQ(cg.depth(), 0);
}

TEST(CallGraph, MismatchedExitPanics)
{
    SimClock clock;
    CallGraphProfiler cg(clock);
    cg.enter("a");
    EXPECT_DEATH(cg.exit("b"), "assert");
}

} // namespace
