/**
 * @file
 * Unit tests for the sparse Markov steady-state solver.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/gtpn/markov.hh"

namespace
{

using namespace hsipc::gtpn;

TEST(Markov, TwoStateChain)
{
    // P = [[0.9, 0.1], [0.4, 0.6]]; stationary = (0.8, 0.2).
    MarkovChain c;
    c.addEdge(0, 0, 0.9);
    c.addEdge(0, 1, 0.1);
    c.addEdge(1, 0, 0.4);
    c.addEdge(1, 1, 0.6);
    c.setSojourn(0, 1.0);
    c.setSojourn(1, 1.0);

    const SolveResult r = c.solve();
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(r.piEmbedded[0], 0.8, 1e-8);
    EXPECT_NEAR(r.piEmbedded[1], 0.2, 1e-8);
    EXPECT_NEAR(r.piTime[0], 0.8, 1e-8);
}

TEST(Markov, PeriodicChainConverges)
{
    // 0 -> 1 -> 0 with period 2; damping must still converge to
    // (0.5, 0.5).
    MarkovChain c;
    c.addEdge(0, 1, 1.0);
    c.addEdge(1, 0, 1.0);

    const SolveResult r = c.solve();
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(r.piEmbedded[0], 0.5, 1e-8);
    EXPECT_NEAR(r.piEmbedded[1], 0.5, 1e-8);
}

TEST(Markov, SojournWeighting)
{
    // Symmetric embedded chain, but state 1 is held 3x as long.
    MarkovChain c;
    c.addEdge(0, 1, 1.0);
    c.addEdge(1, 0, 1.0);
    c.setSojourn(0, 1.0);
    c.setSojourn(1, 3.0);

    const SolveResult r = c.solve();
    ASSERT_TRUE(r.converged);
    EXPECT_NEAR(r.piTime[0], 0.25, 1e-8);
    EXPECT_NEAR(r.piTime[1], 0.75, 1e-8);
}

TEST(Markov, RingChainUniform)
{
    const int n = 17;
    MarkovChain c;
    for (int i = 0; i < n; ++i)
        c.addEdge(static_cast<std::size_t>(i),
                  static_cast<std::size_t>((i + 1) % n), 1.0);
    const SolveResult r = c.solve();
    ASSERT_TRUE(r.converged);
    for (int i = 0; i < n; ++i)
        EXPECT_NEAR(r.piEmbedded[static_cast<std::size_t>(i)], 1.0 / n,
                    1e-7);
}

TEST(Markov, BirthDeathChain)
{
    // Random walk on 0..3 with up-prob 0.3, down-prob 0.7 (reflecting):
    // birth-death stationary pi(i) ~ (0.3/0.7)^i.
    MarkovChain c;
    const double up = 0.3, down = 0.7;
    c.addEdge(0, 1, up);
    c.addEdge(0, 0, down);
    c.addEdge(1, 2, up);
    c.addEdge(1, 0, down);
    c.addEdge(2, 3, up);
    c.addEdge(2, 1, down);
    c.addEdge(3, 3, up);
    c.addEdge(3, 2, down);

    const SolveResult r = c.solve();
    ASSERT_TRUE(r.converged);
    const double rho = up / down;
    const double z = 1 + rho + rho * rho + rho * rho * rho;
    for (int i = 0; i < 4; ++i)
        EXPECT_NEAR(r.piEmbedded[static_cast<std::size_t>(i)],
                    std::pow(rho, i) / z, 1e-7);
}

TEST(Markov, AbsorbingStateCollectsAllMass)
{
    MarkovChain c;
    c.addEdge(0, 1, 1.0);
    c.addEdge(1, 1, 1.0);
    const SolveResult r = c.solve();
    EXPECT_NEAR(r.piEmbedded[1], 1.0, 1e-8);
}

TEST(Markov, RejectsUnnormalizedRows)
{
    MarkovChain c;
    c.addEdge(0, 1, 0.5); // row 0 sums to 0.5
    c.addEdge(1, 0, 1.0);
    EXPECT_DEATH({ c.solve(); }, "sums");
}

} // namespace
