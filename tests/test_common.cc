/**
 * @file
 * Unit tests for the common utilities.
 */

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/time.hh"

namespace
{

using namespace hsipc;

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(7);
    double sum = 0.0;
    for (int i = 0; i < 100000; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 100000.0, 0.5, 0.01);
}

TEST(Rng, UniformRange)
{
    Rng r(8);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform(3.0, 5.0);
        ASSERT_GE(u, 3.0);
        ASSERT_LT(u, 5.0);
    }
}

TEST(Rng, GeometricMeanMatches)
{
    Rng r(9);
    const double mean = 37.0;
    double total = 0.0;
    const int n = 200000;
    for (int i = 0; i < n; ++i)
        total += static_cast<double>(r.geometric(mean));
    EXPECT_NEAR(total / n, mean, 0.5);
}

TEST(Rng, GeometricDegenerateMean)
{
    Rng r(10);
    EXPECT_EQ(r.geometric(1.0), 1u);
    EXPECT_EQ(r.geometric(0.5), 1u);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(RunningStat, MeanAndVariance)
{
    RunningStat s;
    for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(v);
    EXPECT_EQ(s.count(), 8u);
    EXPECT_DOUBLE_EQ(s.mean(), 5.0);
    EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
}

TEST(RunningStat, SingleSampleHasZeroVariance)
{
    RunningStat s;
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.ci95(), 0.0);
}

TEST(TimeWeightedStat, PiecewiseConstantAverage)
{
    TimeWeightedStat s;
    s.update(0, 2.0);   // value 2 on [0, 10)
    s.update(10, 4.0);  // value 4 on [10, 30)
    EXPECT_DOUBLE_EQ(s.average(30), (2.0 * 10 + 4.0 * 20) / 30.0);
}

TEST(TimeWeightedStat, ResetRestartsWindow)
{
    TimeWeightedStat s;
    s.update(0, 100.0);
    s.reset(50);
    s.update(60, 0.0);
    // value 100 on [50, 60), 0 on [60, 70).
    EXPECT_DOUBLE_EQ(s.average(70), 50.0);
}

TEST(TimeConversions, RoundTrips)
{
    EXPECT_EQ(usToTicks(1.0), tickUs);
    EXPECT_EQ(usToTicks(0.5), tickUs / 2);
    EXPECT_DOUBLE_EQ(ticksToUs(usToTicks(123.25)), 123.25);
    EXPECT_DOUBLE_EQ(ticksToMs(tickSec), 1000.0);
}

TEST(TextTable, RendersAlignedRows)
{
    TextTable t("Demo");
    t.header({"name", "value"});
    t.row({"alpha", "1"});
    t.row({"b", "22.5"});
    const std::string out = t.render();
    EXPECT_NE(out.find("== Demo =="), std::string::npos);
    // The "value" column is padded to its header width (5).
    EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
    EXPECT_NE(out.find("| b     | 22.5  |"), std::string::npos);
}

TEST(TextTable, NumFormatting)
{
    EXPECT_EQ(TextTable::num(3.14159, 2), "3.14");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}


TEST(TextTable, CsvRendering)
{
    TextTable t("csv");
    t.header({"name", "value"});
    t.row({"plain", "1"});
    t.row({"needs,quote", "say \"hi\""});
    const std::string csv = t.renderCsv();
    EXPECT_EQ(csv,
              "name,value\n"
              "plain,1\n"
              "\"needs,quote\",\"say \"\"hi\"\"\"\n");
}

TEST(TextTable, JsonRendering)
{
    TextTable t("Demo");
    t.header({"name", "value"});
    t.row({"a \"quoted\"", "1"});
    const std::string json = t.renderJson();
    EXPECT_EQ(json,
              "{\"title\": \"Demo\", "
              "\"columns\": [\"name\", \"value\"], \"rows\": [\n"
              "    [\"a \\\"quoted\\\"\", \"1\"]\n  ]}");
}

TEST(Json, EscapeAndNumber)
{
    EXPECT_EQ(jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    EXPECT_EQ(jsonEscape(std::string(1, '\x01')), "\\u0001");
    EXPECT_EQ(jsonString("x"), "\"x\"");
    EXPECT_EQ(jsonNumber(2.0), "2");
    EXPECT_EQ(jsonNumber(0.5), "0.5");
    EXPECT_EQ(jsonNumber(std::nan("")), "null");
    EXPECT_EQ(jsonNumber(INFINITY), "null");
}

// --- Warning hook and rate-limited warnings --------------------------

/** Install a capturing warn hook for the test's scope. */
struct WarnCapture
{
    std::vector<std::string> seen;

    WarnCapture()
    {
        warnHook() = [this](const std::string &m) {
            seen.push_back(m);
        };
    }

    ~WarnCapture() { warnHook() = nullptr; }
};

TEST(Logging, WarnRoutesThroughHook)
{
    WarnCapture cap;
    hsipc_warn("something odd");
    ASSERT_EQ(cap.seen.size(), 1u);
    EXPECT_EQ(cap.seen[0], "something odd");
}

TEST(Logging, WarnOnceFiresOncePerCallSite)
{
    WarnCapture cap;
    for (int i = 0; i < 5; ++i)
        hsipc_warn_once("only once");
    ASSERT_EQ(cap.seen.size(), 1u);
    EXPECT_EQ(cap.seen[0], "only once");

    // A different call site is an independent once-latch.
    hsipc_warn_once("another site");
    EXPECT_EQ(cap.seen.size(), 2u);
}

TEST(Logging, WarnEveryRateLimits)
{
    WarnCapture cap;
    for (int i = 0; i < 7; ++i)
        hsipc_warn_every(3, "hot loop");
    // Occurrences 1, 4, and 7 are reported with the running count.
    ASSERT_EQ(cap.seen.size(), 3u);
    EXPECT_EQ(cap.seen[0], "hot loop (occurrence 1)");
    EXPECT_EQ(cap.seen[1], "hot loop (occurrence 4)");
    EXPECT_EQ(cap.seen[2], "hot loop (occurrence 7)");
}

} // namespace
