/**
 * @file
 * Semantic tests for the Charlotte link kernel (§3.2): rendezvous
 * without buffering, asynchronous completion, selective receipt,
 * cancel, unilateral destroy, and link moving — plus the §3.4
 * complexity comparison against the 925 kernel.
 */

#include <gtest/gtest.h>

#include "charlotte/links.hh"
#include "k925/kernel.hh"

namespace
{

using namespace hsipc;
using namespace hsipc::charlotte;

std::vector<std::uint8_t>
bytes(const char *s)
{
    std::vector<std::uint8_t> v;
    while (*s)
        v.push_back(static_cast<std::uint8_t>(*s++));
    return v;
}

class CharlotteFixture : public ::testing::Test
{
  protected:
    CharlotteFixture()
    {
        alice = k.createProcess("alice");
        bob = k.createProcess("bob");
        std::tie(a_end, b_end) = k.makeLink(alice, bob);
    }

    LinkKernel k;
    ProcId alice{}, bob{};
    LinkEnd a_end{}, b_end{};
};

TEST_F(CharlotteFixture, SendThenReceiveRendezvous)
{
    const OpId s = k.postSend(alice, a_end, bytes("hello"));
    EXPECT_EQ(k.poll(s), Completion::Pending); // no buffering
    const OpId r = k.postReceive(bob, b_end);
    EXPECT_EQ(k.poll(s), Completion::Done);
    EXPECT_EQ(k.poll(r), Completion::Done);
    EXPECT_EQ(k.received(r), bytes("hello"));
    EXPECT_EQ(k.completedOn(r), b_end);
}

TEST_F(CharlotteFixture, ReceiveThenSendRendezvous)
{
    const OpId r = k.postReceive(bob, b_end);
    EXPECT_EQ(k.poll(r), Completion::Pending);
    const OpId s = k.postSend(alice, a_end, bytes("late data"));
    EXPECT_EQ(k.poll(s), Completion::Done);
    EXPECT_EQ(k.received(r), bytes("late data"));
}

TEST_F(CharlotteFixture, ArbitrarySizedMessages)
{
    std::vector<std::uint8_t> big(6000);
    for (std::size_t i = 0; i < big.size(); ++i)
        big[i] = static_cast<std::uint8_t>(i * 7);
    k.postReceive(bob, b_end);
    const OpId s = k.postSend(alice, a_end, big);
    EXPECT_EQ(k.poll(s), Completion::Done);
}

TEST_F(CharlotteFixture, LinkIsTwoWay)
{
    // Bob can send to Alice over the same link.
    const OpId r = k.postReceive(alice, a_end);
    const OpId s = k.postSend(bob, b_end, bytes("reply"));
    EXPECT_EQ(k.poll(s), Completion::Done);
    EXPECT_EQ(k.received(r), bytes("reply"));
}

TEST_F(CharlotteFixture, ReceiveAnyPicksEarliestSend)
{
    const ProcId carol = k.createProcess("carol");
    auto [c_end, b_end2] = k.makeLink(carol, bob);

    // Two pending sends toward bob, carol's first.
    k.postSend(carol, c_end, bytes("from carol"));
    k.postSend(alice, a_end, bytes("from alice"));

    const OpId r1 = k.postReceiveAny(bob);
    EXPECT_EQ(k.received(r1), bytes("from carol"));
    EXPECT_EQ(k.completedOn(r1), b_end2);

    const OpId r2 = k.postReceiveAny(bob);
    EXPECT_EQ(k.received(r2), bytes("from alice"));
}

TEST_F(CharlotteFixture, PendingReceiveAnyMatchesLaterSend)
{
    const OpId r = k.postReceiveAny(bob);
    EXPECT_EQ(k.poll(r), Completion::Pending);
    k.postSend(alice, a_end, bytes("x"));
    EXPECT_EQ(k.poll(r), Completion::Done);
}

TEST_F(CharlotteFixture, CancelPendingOperation)
{
    const OpId s = k.postSend(alice, a_end, bytes("never"));
    EXPECT_EQ(k.cancel(alice, s), LinkStatus::Ok);
    EXPECT_EQ(k.poll(s), Completion::Canceled);
    // The canceled send cannot be matched any more.
    const OpId r = k.postReceive(bob, b_end);
    EXPECT_EQ(k.poll(r), Completion::Pending);
}

TEST_F(CharlotteFixture, CancelAfterCompletionFails)
{
    const OpId s = k.postSend(alice, a_end, bytes("gone"));
    k.postReceive(bob, b_end);
    EXPECT_EQ(k.cancel(alice, s), LinkStatus::BadOp);
}

TEST_F(CharlotteFixture, CancelByNonOwnerFails)
{
    const OpId s = k.postSend(alice, a_end, bytes("mine"));
    EXPECT_EQ(k.cancel(bob, s), LinkStatus::NotHolder);
}

TEST_F(CharlotteFixture, EitherEndMayDestroy)
{
    const OpId s = k.postSend(alice, a_end, bytes("doomed"));
    // Bob destroys the link by naming *alice's* end: equal rights.
    EXPECT_EQ(k.destroyLink(bob, a_end), LinkStatus::Ok);
    EXPECT_EQ(k.poll(s), Completion::Destroyed);
    EXPECT_EQ(k.holder(a_end), -1);
    EXPECT_EQ(k.holder(b_end), -1);
}

TEST_F(CharlotteFixture, StrangerMayNotDestroy)
{
    const ProcId eve = k.createProcess("eve");
    EXPECT_EQ(k.destroyLink(eve, a_end), LinkStatus::NotHolder);
}

TEST_F(CharlotteFixture, MoveTransfersTheEnd)
{
    const ProcId carol = k.createProcess("carol");
    EXPECT_EQ(k.moveEnd(bob, b_end, carol), LinkStatus::Ok);
    EXPECT_EQ(k.holder(b_end), carol);

    // Alice's sends now rendezvous with carol.
    const OpId r = k.postReceive(carol, b_end);
    k.postSend(alice, a_end, bytes("to carol"));
    EXPECT_EQ(k.received(r), bytes("to carol"));

    // Bob lost his rights.
    EXPECT_EQ(k.moveEnd(bob, b_end, bob), LinkStatus::NotHolder);
}

TEST_F(CharlotteFixture, MoveCancelsOutstandingOps)
{
    const OpId r = k.postReceive(bob, b_end);
    const ProcId carol = k.createProcess("carol");
    k.moveEnd(bob, b_end, carol);
    EXPECT_EQ(k.poll(r), Completion::Canceled);
}

TEST_F(CharlotteFixture, OperationsOnDeadLinkAreRejected)
{
    k.destroyLink(alice, a_end);
    EXPECT_EQ(k.moveEnd(alice, a_end, bob), LinkStatus::BadEnd);
    EXPECT_EQ(k.destroyLink(alice, a_end), LinkStatus::BadEnd);
}

TEST_F(CharlotteFixture, NullRpcLoopRunsForever)
{
    // The §3.4 measurement loop: "send; wait" vs "receive; reply".
    for (int i = 0; i < 100; ++i) {
        const OpId req_r = k.postReceive(bob, b_end);
        const OpId req_s = k.postSend(alice, a_end, bytes("req"));
        ASSERT_EQ(k.poll(req_s), Completion::Done);
        ASSERT_EQ(k.poll(req_r), Completion::Done);
        const OpId rep_r = k.postReceive(alice, a_end);
        const OpId rep_s = k.postSend(bob, b_end, bytes("rep"));
        ASSERT_EQ(k.poll(rep_s), Completion::Done);
        ASSERT_EQ(k.poll(rep_r), Completion::Done);
    }
}

TEST_F(CharlotteFixture, LinkProtocolIsHeavierThanServices)
{
    // §3.4: Charlotte's two-way equal-rights links demand more
    // validity checking per round trip than 925's one-way services.
    const long before = k.checksPerformed();
    for (int i = 0; i < 10; ++i) {
        const OpId r = k.postReceive(bob, b_end);
        k.postSend(alice, a_end, bytes("req"));
        const OpId r2 = k.postReceive(alice, a_end);
        k.postSend(bob, b_end, bytes("rep"));
        (void)r;
        (void)r2;
    }
    const long charlotte_checks =
        (k.checksPerformed() - before) / 10;
    // Each Charlotte round trip costs a double-digit number of
    // protocol checks (posting x4, holdership, liveness, matching).
    EXPECT_GE(charlotte_checks, 12);
}

} // namespace
