/**
 * @file
 * Tests for the microprogrammed smart-memory controller (Appendix A):
 * every micro-routine against the reference software algorithms, the
 * §A.5 error conditions, and the design-size claims of §5.5.
 */

#include <gtest/gtest.h>

#include <deque>

#include "bus/queue_ops.hh"
#include "bus/smart_bus.hh"
#include "common/rng.hh"
#include "ucode/microcode.hh"

namespace
{

using namespace hsipc;
using namespace hsipc::bus;
using namespace hsipc::ucode;

class UcodeFixture : public ::testing::Test
{
  protected:
    UcodeFixture() : mem(4096), seq(mem) {}

    static constexpr Addr list = 2;
    static constexpr Addr el(int i) { return static_cast<Addr>(64 + 16 * i); }

    SimMemory mem;
    MicroSequencer seq;
};

TEST_F(UcodeFixture, MicroStoreStaysUnderThreeThousandBits)
{
    // §5.5: "the controller ... has under 3000 bits of micro-code".
    EXPECT_LT(microProgram().sizeBits(), 3000);
    EXPECT_GT(microProgram().sizeBits(), 500); // and is not trivial
}

TEST_F(UcodeFixture, ComponentBudgetMatchesFeasibilityClaim)
{
    // §5.5: data path ~6000 active components in a single chip.
    const int total = dataPathComponentTotal();
    EXPECT_GT(total, 4000);
    EXPECT_LT(total, 8000);
}

TEST_F(UcodeFixture, EnqueueMatchesReference)
{
    auto r = seq.run(microProgram().entryEnqueue, list, el(0));
    EXPECT_EQ(r.error, UcodeError::None);
    r = seq.run(microProgram().entryEnqueue, list, el(1));
    EXPECT_EQ(r.error, UcodeError::None);
    EXPECT_EQ(QueueOps::toVector(mem, list),
              (std::vector<Addr>{el(0), el(1)}));
}

TEST_F(UcodeFixture, FirstOnEmptyReturnsNull)
{
    const auto r = seq.run(microProgram().entryFirst, list, 0);
    EXPECT_EQ(r.error, UcodeError::None);
    EXPECT_EQ(r.value, nullAddr);
}

TEST_F(UcodeFixture, FirstDequeuesHead)
{
    for (int i = 0; i < 3; ++i)
        seq.run(microProgram().entryEnqueue, list, el(i));
    EXPECT_EQ(seq.run(microProgram().entryFirst, list, 0).value, el(0));
    EXPECT_EQ(seq.run(microProgram().entryFirst, list, 0).value, el(1));
    EXPECT_EQ(seq.run(microProgram().entryFirst, list, 0).value, el(2));
    EXPECT_EQ(seq.run(microProgram().entryFirst, list, 0).value,
              nullAddr);
}

TEST_F(UcodeFixture, DequeueMiddleAndTail)
{
    for (int i = 0; i < 4; ++i)
        seq.run(microProgram().entryEnqueue, list, el(i));
    seq.run(microProgram().entryDequeue, list, el(1));
    EXPECT_EQ(QueueOps::toVector(mem, list),
              (std::vector<Addr>{el(0), el(2), el(3)}));
    seq.run(microProgram().entryDequeue, list, el(3)); // the tail
    EXPECT_EQ(QueueOps::toVector(mem, list),
              (std::vector<Addr>{el(0), el(2)}));
    EXPECT_EQ(mem.read16(list), el(2));
}

TEST_F(UcodeFixture, DequeueMissingIsNoOp)
{
    seq.run(microProgram().entryEnqueue, list, el(0));
    seq.run(microProgram().entryDequeue, list, el(7));
    EXPECT_EQ(QueueOps::toVector(mem, list), std::vector<Addr>{el(0)});
}

TEST_F(UcodeFixture, ReadAndWriteRoutines)
{
    seq.run(microProgram().entryWrite16, 200, 0xabcd);
    EXPECT_EQ(mem.read16(200), 0xabcd);
    EXPECT_EQ(seq.run(microProgram().entryRead, 200, 0).value, 0xabcd);
    seq.run(microProgram().entryWrite8, 201, 0x11);
    EXPECT_EQ(mem.read16(200), 0x11cd);
}

TEST_F(UcodeFixture, BlockTransferAllocatesTags)
{
    const auto a = seq.blockTransfer(false, 512, 40);
    const auto b = seq.blockTransfer(true, 700, 10);
    EXPECT_EQ(a.error, UcodeError::None);
    EXPECT_EQ(b.error, UcodeError::None);
    EXPECT_NE(a.value, b.value);
    EXPECT_TRUE(seq.requestTable()[a.value].valid);
    EXPECT_FALSE(seq.requestTable()[a.value].write);
    EXPECT_TRUE(seq.requestTable()[b.value].write);
}

TEST_F(UcodeFixture, BlockReadStreamsWholeBlockAndFreesEntry)
{
    for (int i = 0; i < 40; ++i)
        mem.write8(static_cast<Addr>(512 + i),
                   static_cast<std::uint8_t>(i + 1));
    const auto t = seq.blockTransfer(false, 512, 40);
    std::vector<std::uint8_t> got;
    for (int w = 0; w < 20; ++w) {
        const auto r =
            seq.run(microProgram().entryBlockReadWord, t.value, 0);
        ASSERT_EQ(r.error, UcodeError::None);
        got.push_back(static_cast<std::uint8_t>(r.value & 0xff));
        got.push_back(static_cast<std::uint8_t>(r.value >> 8));
    }
    for (int i = 0; i < 40; ++i)
        EXPECT_EQ(got[static_cast<std::size_t>(i)], i + 1);
    EXPECT_FALSE(seq.requestTable()[t.value].valid); // freed
}

TEST_F(UcodeFixture, BlockWriteHandlesOddLength)
{
    const auto t = seq.blockTransfer(true, 800, 5);
    seq.run(microProgram().entryBlockWriteWord, t.value, 0x0201);
    seq.run(microProgram().entryBlockWriteWord, t.value, 0x0403);
    seq.run(microProgram().entryBlockWriteWord, t.value, 0x0005);
    for (int i = 0; i < 5; ++i)
        EXPECT_EQ(mem.read8(static_cast<Addr>(800 + i)), i + 1);
    EXPECT_EQ(mem.read8(805), 0); // the sixth byte was not touched
    EXPECT_FALSE(seq.requestTable()[t.value].valid);
}

// --- §A.5 error conditions ----------------------------------------------

TEST_F(UcodeFixture, ZeroCountBlockRequestRaisesError)
{
    const auto r = seq.blockTransfer(false, 512, 0);
    EXPECT_EQ(r.error, UcodeError::ZeroCount);
}

TEST_F(UcodeFixture, TableFullRaisesError)
{
    for (int i = 0; i < 8; ++i)
        EXPECT_EQ(seq.blockTransfer(false, 512, 4).error,
                  UcodeError::None);
    EXPECT_EQ(seq.blockTransfer(false, 512, 4).error,
              UcodeError::TableFull);
}

TEST_F(UcodeFixture, InvalidTagRaisesError)
{
    const auto r = seq.run(microProgram().entryBlockReadWord, 5, 0);
    EXPECT_EQ(r.error, UcodeError::InvalidTag);
}

TEST_F(UcodeFixture, ErrorNamesAreDistinct)
{
    EXPECT_NE(ucodeErrorName(UcodeError::TableFull),
              ucodeErrorName(UcodeError::InvalidTag));
    EXPECT_EQ(ucodeErrorName(UcodeError::None), "none");
}

// --- Microcode vs reference property sweep ------------------------------

class UcodeProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(UcodeProperty, MatchesReferenceOnRandomSequences)
{
    SimMemory mem_ref(4096), mem_uc(4096);
    MicroSequencer seq(mem_uc);
    const Addr list = 2;
    Rng rng(GetParam());
    std::deque<Addr> model;
    std::vector<Addr> free_elems;
    for (int i = 0; i < 30; ++i)
        free_elems.push_back(static_cast<Addr>(64 + 16 * i));

    for (int step = 0; step < 400; ++step) {
        const int choice = static_cast<int>(rng.below(3));
        if (choice == 0 && !free_elems.empty()) {
            const Addr e = free_elems.back();
            free_elems.pop_back();
            QueueOps::enqueue(mem_ref, list, e);
            seq.run(microProgram().entryEnqueue, list, e);
            model.push_back(e);
        } else if (choice == 1 && !model.empty()) {
            const Addr expect = QueueOps::first(mem_ref, list);
            const Addr got =
                seq.run(microProgram().entryFirst, list, 0).value;
            ASSERT_EQ(got, expect);
            model.pop_front();
            free_elems.push_back(got);
        } else if (choice == 2 && !model.empty()) {
            const std::size_t k = rng.below(model.size());
            const Addr victim = model[k];
            QueueOps::dequeue(mem_ref, list, victim);
            seq.run(microProgram().entryDequeue, list, victim);
            model.erase(model.begin() + static_cast<long>(k));
            free_elems.push_back(victim);
        }
        ASSERT_EQ(QueueOps::toVector(mem_uc, list),
                  QueueOps::toVector(mem_ref, list));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UcodeProperty,
                         ::testing::Values(11, 12, 13, 14, 15, 16));

// --- Integration: the smart bus running on microcode --------------------

TEST(UcodeBusIntegration, SmartBusTransactionsOnMicrocode)
{
    SimMemory mem(4096);
    MicrocodedController ctrl(mem);
    SmartBus bus(mem);
    bus.setController(ctrl);
    const int mp = bus.addUnit("MP", 3);

    const auto e1 = bus.postEnqueue(mp, 2, 64);
    const auto e2 = bus.postEnqueue(mp, 2, 96);
    const auto f = bus.postFirst(mp, 2);
    const auto blk =
        bus.postBlockWrite(mp, 512, std::vector<std::uint8_t>{9, 8, 7});
    bus.run();

    EXPECT_FALSE(bus.result(e1).error);
    EXPECT_FALSE(bus.result(e2).error);
    EXPECT_EQ(bus.result(f).value, 64);
    EXPECT_FALSE(bus.result(blk).error);
    EXPECT_EQ(mem.read8(512), 9);
    EXPECT_EQ(mem.read8(514), 7);
    EXPECT_EQ(QueueOps::toVector(mem, 2), std::vector<Addr>{96});
    EXPECT_GT(ctrl.sequencer().totalCycles(), 0);
}

// --- The §A.4.1 main-loop dispatch ---------------------------------------

TEST(UcodeDispatch, MainLoopRoutesEveryCommand)
{
    SimMemory mem(4096);
    MicroSequencer seq(mem);

    seq.runCommand(BusCommand::WriteTwoBytes, 200, 0x4321);
    EXPECT_EQ(mem.read16(200), 0x4321);
    EXPECT_EQ(seq.runCommand(BusCommand::SimpleRead, 200, 0).value,
              0x4321);

    seq.runCommand(BusCommand::EnqueueControlBlock, 2, 64);
    seq.runCommand(BusCommand::EnqueueControlBlock, 2, 96);
    seq.runCommand(BusCommand::DequeueControlBlock, 2, 96);
    EXPECT_EQ(seq.runCommand(BusCommand::FirstControlBlock, 2, 0).value,
              64);

    seq.setTransferDirection(false);
    const auto t = seq.runCommand(BusCommand::BlockTransfer, 200, 2);
    ASSERT_EQ(t.error, UcodeError::None);
    EXPECT_EQ(seq.runCommand(BusCommand::BlockReadData, t.value, 0)
                  .value,
              0x4321);
}

TEST(UcodeDispatch, UnknownCommandIsNonProgrammingError)
{
    SimMemory mem(1024);
    MicroSequencer seq(mem);
    const auto r = seq.runCommand(static_cast<BusCommand>(0b1111), 0, 0);
    EXPECT_EQ(r.error, UcodeError::BadCommand);
}

TEST(UcodeDispatch, ControlStoreIncludesMappingProm)
{
    EXPECT_EQ(MicroProgram::mappingPromBits(), 112);
    EXPECT_LT(microProgram().sizeBits(), 3000);
}

} // namespace
