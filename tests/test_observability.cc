/**
 * @file
 * Tests for the observability layer: the tracer's span merging,
 * window folds, and Chrome trace_event emission (against a golden
 * document and a JSON syntax checker); the metrics registry's
 * log2-bucket histograms; and — the load-bearing property — that
 * attaching a tracer or registry to the simulators changes no
 * measured result.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/metrics/metrics.hh"
#include "common/obs/trace_sample.hh"
#include "common/trace/tracer.hh"
#include "core/gtpn/net.hh"
#include "core/gtpn/simulator.hh"
#include "sim/kernel/ipc_sim.hh"
#include "sim/runner/sweep_runner.hh"

namespace
{

using namespace hsipc;

// --- A minimal JSON syntax checker (no external deps) ---------------

struct JsonChecker
{
    const char *p;
    const char *end;

    explicit JsonChecker(const std::string &s)
        : p(s.data()), end(s.data() + s.size())
    {}

    void
    ws()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            ++p;
    }

    bool
    lit(const char *s)
    {
        const std::size_t n = std::string(s).size();
        if (static_cast<std::size_t>(end - p) < n ||
            std::string(p, n) != s)
            return false;
        p += n;
        return true;
    }

    bool
    string()
    {
        if (p >= end || *p != '"')
            return false;
        ++p;
        while (p < end && *p != '"') {
            if (*p == '\\') {
                ++p;
                if (p >= end)
                    return false;
                if (*p == 'u') {
                    for (int i = 0; i < 4; ++i) {
                        ++p;
                        if (p >= end || !std::isxdigit(
                                            static_cast<unsigned char>(
                                                *p)))
                            return false;
                    }
                }
            } else if (static_cast<unsigned char>(*p) < 0x20) {
                return false; // raw control char: invalid JSON
            }
            ++p;
        }
        if (p >= end)
            return false;
        ++p; // closing quote
        return true;
    }

    bool
    number()
    {
        const char *q = p;
        if (p < end && *p == '-')
            ++p;
        while (p < end && (std::isdigit(static_cast<unsigned char>(*p)) ||
                           *p == '.' || *p == 'e' || *p == 'E' ||
                           *p == '+' || *p == '-'))
            ++p;
        return p > q;
    }

    bool
    value()
    {
        ws();
        if (p >= end)
            return false;
        if (*p == '{') {
            ++p;
            ws();
            if (p < end && *p == '}') {
                ++p;
                return true;
            }
            while (true) {
                ws();
                if (!string())
                    return false;
                ws();
                if (p >= end || *p != ':')
                    return false;
                ++p;
                if (!value())
                    return false;
                ws();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                break;
            }
            if (p >= end || *p != '}')
                return false;
            ++p;
            return true;
        }
        if (*p == '[') {
            ++p;
            ws();
            if (p < end && *p == ']') {
                ++p;
                return true;
            }
            while (true) {
                if (!value())
                    return false;
                ws();
                if (p < end && *p == ',') {
                    ++p;
                    continue;
                }
                break;
            }
            if (p >= end || *p != ']')
                return false;
            ++p;
            return true;
        }
        if (*p == '"')
            return string();
        if (lit("true") || lit("false") || lit("null"))
            return true;
        return number();
    }

    bool
    document()
    {
        if (!value())
            return false;
        ws();
        return p == end;
    }
};

bool
validJson(const std::string &s)
{
    return JsonChecker(s).document();
}

std::string
readFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    EXPECT_NE(f, nullptr) << path;
    std::string out;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        out.append(buf, n);
    std::fclose(f);
    return out;
}

// --- Tracer ----------------------------------------------------------

TEST(Tracer, DisabledRecordsNothing)
{
    trace::Tracer tr;
    const int t = tr.track("cpu");
    tr.complete(t, "work", 0, 100);
    tr.instant(t, "tick", 50);
    tr.counter(t, "depth", 50, 3);
    EXPECT_TRUE(tr.events().empty());
    EXPECT_FALSE(tr.enabled());
    // Tracks register even while disabled, so layout stays stable.
    EXPECT_EQ(tr.trackNames().size(), 1u);
}

TEST(Tracer, MergesAbuttingSameNameSpans)
{
    trace::Tracer tr;
    tr.setEnabled(true);
    const int t = tr.track("cpu");
    tr.complete(t, "act", 0, 10);
    tr.complete(t, "act", 10, 5); // abuts, same name: merges
    ASSERT_EQ(tr.events().size(), 1u);
    EXPECT_EQ(tr.events()[0].duration, 15);
}

TEST(Tracer, GapOrDifferentNameSplitsSpans)
{
    trace::Tracer tr;
    tr.setEnabled(true);
    const int t = tr.track("cpu");
    tr.complete(t, "act", 0, 10);
    tr.complete(t, "act", 12, 5);   // gap: new span
    tr.complete(t, "other", 17, 5); // different name: new span
    EXPECT_EQ(tr.events().size(), 3u);

    // Merging is per track: an abutting same-name span on another
    // track must not fuse.
    const int u = tr.track("cpu2");
    tr.complete(u, "other", 22, 5);
    EXPECT_EQ(tr.events().size(), 4u);
}

TEST(Tracer, NeverMergesAcrossMessageIds)
{
    trace::Tracer tr;
    tr.setEnabled(true);
    const int t = tr.track("cpu");
    tr.complete(t, "act", 0, 10, "activity", 1);
    tr.complete(t, "act", 10, 5, "activity", 2); // abuts, other msg
    ASSERT_EQ(tr.events().size(), 2u);
    tr.complete(t, "act", 15, 5, "activity", 2); // same msg: merges
    ASSERT_EQ(tr.events().size(), 2u);
    EXPECT_EQ(tr.events()[1].duration, 10);
}

TEST(Tracer, FlowAndAsyncGoldenChromeJson)
{
    trace::Tracer tr;
    tr.setEnabled(true);
    const int cpu = tr.track("cpu0");
    tr.complete(cpu, "work", 0, usToTicks(1), "activity", 7);
    tr.flowStep(cpu, "msg", 0, 7);            // first step: "s"
    tr.flowStep(cpu, "msg", usToTicks(2), 7); // subsequent: "t"
    tr.flowEnd(cpu, "msg", usToTicks(3), 7);  // terminator: "f"
    tr.asyncBegin(cpu, "roundTrip", 0, 7);
    tr.asyncEnd(cpu, "roundTrip", usToTicks(3), 7);
    // Ending a flow that never started records nothing.
    tr.flowEnd(cpu, "msg", usToTicks(4), 99);
    ASSERT_EQ(tr.events().size(), 6u);

    const std::string expected =
        "{\"traceEvents\":[\n"
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"cpu0\"}},\n"
        "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0.000,"
        "\"dur\":1.000,\"name\":\"work\",\"cat\":\"activity\","
        "\"args\":{\"msg\":7}},\n"
        "{\"ph\":\"s\",\"pid\":1,\"tid\":0,\"ts\":0.000,\"id\":7,"
        "\"name\":\"msg\",\"cat\":\"flow\"},\n"
        "{\"ph\":\"t\",\"pid\":1,\"tid\":0,\"ts\":2.000,\"id\":7,"
        "\"name\":\"msg\",\"cat\":\"flow\"},\n"
        "{\"ph\":\"f\",\"pid\":1,\"tid\":0,\"ts\":3.000,\"id\":7,"
        "\"name\":\"msg\",\"cat\":\"flow\",\"bp\":\"e\"},\n"
        "{\"ph\":\"b\",\"pid\":1,\"tid\":0,\"ts\":0.000,\"id\":7,"
        "\"name\":\"roundTrip\",\"cat\":\"msg\"},\n"
        "{\"ph\":\"e\",\"pid\":1,\"tid\":0,\"ts\":3.000,\"id\":7,"
        "\"name\":\"roundTrip\",\"cat\":\"msg\"}\n"
        "],\"displayTimeUnit\":\"ms\"}\n";
    EXPECT_EQ(tr.chromeJson(), expected);
    EXPECT_TRUE(validJson(tr.chromeJson()));
}

TEST(Tracer, GoldenChromeJson)
{
    trace::Tracer tr;
    tr.setEnabled(true);
    const int cpu = tr.track("cpu0");
    const int bus = tr.track("bus");
    tr.complete(cpu, "boot", 0, usToTicks(2));
    tr.instant(bus, "drop", usToTicks(3));
    tr.counter(bus, "queued", usToTicks(3), 2);

    const std::string expected =
        "{\"traceEvents\":[\n"
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"cpu0\"}},\n"
        "{\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\","
        "\"args\":{\"name\":\"bus\"}},\n"
        "{\"ph\":\"X\",\"pid\":1,\"tid\":0,\"ts\":0.000,"
        "\"dur\":2.000,\"name\":\"boot\",\"cat\":\"activity\"},\n"
        "{\"ph\":\"i\",\"pid\":1,\"tid\":1,\"ts\":3.000,"
        "\"name\":\"drop\",\"cat\":\"event\",\"s\":\"t\"},\n"
        "{\"ph\":\"C\",\"pid\":1,\"tid\":1,\"ts\":3.000,"
        "\"name\":\"queued\",\"args\":{\"value\":2}}\n"
        "],\"displayTimeUnit\":\"ms\"}\n";
    EXPECT_EQ(tr.chromeJson(), expected);
    EXPECT_TRUE(validJson(tr.chromeJson()));
}

TEST(Tracer, ChromeJsonEscapesAwkwardNames)
{
    trace::Tracer tr;
    tr.setEnabled(true);
    const int t = tr.track("weird \"track\"\\name");
    tr.instant(t, "line\nbreak\ttab", 0);
    const std::string doc = tr.chromeJson();
    EXPECT_TRUE(validJson(doc)) << doc;
    EXPECT_NE(doc.find("\\\"track\\\""), std::string::npos);
    EXPECT_NE(doc.find("\\n"), std::string::npos);
}

TEST(Tracer, BusyFoldsClipToWindow)
{
    trace::Tracer tr;
    tr.setEnabled(true);
    const int a = tr.track("cpu0");
    const int b = tr.track("cpu1");
    tr.complete(a, "act", 0, 10);   // [0, 10)
    tr.complete(a, "act", 20, 10);  // [20, 30)
    tr.complete(b, "act", 5, 10);   // [5, 15)
    tr.instant(a, "noise", 7);      // instants never count as busy

    const auto byTrack = tr.busyByTrack(5, 25);
    EXPECT_EQ(byTrack.at("cpu0"), 10); // 5 from each span
    EXPECT_EQ(byTrack.at("cpu1"), 10);

    const auto byName = tr.busyByName(5, 25);
    EXPECT_EQ(byName.at("act"), 20);

    // A window touching nothing yields an empty fold.
    EXPECT_TRUE(tr.busyByTrack(100, 200).empty());
}

// --- Metrics ---------------------------------------------------------

TEST(Histogram, BucketEdges)
{
    using metrics::Histogram;
    // Bucket 0: everything below 1, including zero and negatives.
    EXPECT_EQ(Histogram::bucketIndex(0.0), 0);
    EXPECT_EQ(Histogram::bucketIndex(-5.0), 0);
    EXPECT_EQ(Histogram::bucketIndex(0.999), 0);
    // Bucket i >= 1 holds [2^(i-1), 2^i): exact powers of two open
    // their bucket.
    EXPECT_EQ(Histogram::bucketIndex(1.0), 1);
    EXPECT_EQ(Histogram::bucketIndex(1.999), 1);
    EXPECT_EQ(Histogram::bucketIndex(2.0), 2);
    EXPECT_EQ(Histogram::bucketIndex(3.999), 2);
    EXPECT_EQ(Histogram::bucketIndex(4.0), 3);
    EXPECT_EQ(Histogram::bucketIndex(1024.0), 11);
    EXPECT_EQ(Histogram::bucketIndex(1023.999), 10);
    // Values at or beyond 2^62 clamp into the last bucket.
    EXPECT_EQ(Histogram::bucketIndex(std::ldexp(1.0, 62)), 63);
    EXPECT_EQ(Histogram::bucketIndex(1e300), 63);

    EXPECT_EQ(Histogram::bucketLowerBound(0), 0.0);
    EXPECT_EQ(Histogram::bucketLowerBound(1), 1.0);
    EXPECT_EQ(Histogram::bucketLowerBound(2), 2.0);
    EXPECT_EQ(Histogram::bucketLowerBound(11), 1024.0);
}

TEST(Histogram, SummaryStats)
{
    metrics::Histogram h;
    EXPECT_EQ(h.count(), 0);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.min(), 0.0);
    EXPECT_EQ(h.max(), 0.0);

    for (double v : {4.0, 1.0, 7.0})
        h.observe(v);
    EXPECT_EQ(h.count(), 3);
    EXPECT_EQ(h.sum(), 12.0);
    EXPECT_EQ(h.mean(), 4.0);
    EXPECT_EQ(h.min(), 1.0);
    EXPECT_EQ(h.max(), 7.0);
    EXPECT_EQ(h.bucketCount(1), 1); // the 1.0
    EXPECT_EQ(h.bucketCount(3), 2); // 4.0 and 7.0 share [4, 8)
}

TEST(Histogram, QuantileUpperBound)
{
    metrics::Histogram h;
    EXPECT_EQ(h.quantileUpperBound(0.5), 0.0); // empty
    for (int i = 0; i < 90; ++i)
        h.observe(3.0); // bucket 2, upper edge 4
    for (int i = 0; i < 10; ++i)
        h.observe(1000.0); // bucket 10, upper edge 1024
    EXPECT_EQ(h.quantileUpperBound(0.5), 4.0);
    EXPECT_EQ(h.quantileUpperBound(0.9), 4.0);
    EXPECT_EQ(h.quantileUpperBound(0.95), 1024.0);
    EXPECT_EQ(h.quantileUpperBound(1.0), 1024.0);
}

TEST(Registry, JsonAndTableRender)
{
    metrics::Registry reg;
    EXPECT_TRUE(reg.empty());
    EXPECT_TRUE(validJson(reg.toJson())) << reg.toJson();

    reg.counter("net.drops").inc(3);
    reg.gauge("ipc.throughputPerSec").set(812.5);
    reg.histogram("ipc.roundTripUs").observe(2400);
    EXPECT_FALSE(reg.empty());

    const std::string json = reg.toJson();
    EXPECT_TRUE(validJson(json)) << json;
    EXPECT_NE(json.find("\"net.drops\": 3"), std::string::npos);
    EXPECT_NE(json.find("ipc.roundTripUs"), std::string::npos);

    const std::string table = reg.toTable();
    EXPECT_NE(table.find("net.drops"), std::string::npos);
    EXPECT_NE(table.find("ipc.throughputPerSec"), std::string::npos);
}

// --- Observability wired into the simulators -------------------------

/** A short lossy two-node run exercising the reliability stack. */
sim::Experiment
lossyExperiment()
{
    sim::Experiment e;
    e.arch = models::Arch::II;
    e.local = false;
    e.conversations = 3;
    e.computeUs = 1000;
    e.lossRate = 0.05;
    e.corruptRate = 0.01;
    e.duplicateRate = 0.02;
    e.crashSchedule.push_back({1, 60000, 80000});
    e.warmupUs = 20000;
    e.measureUs = 200000;
    e.seed = 11;
    return e;
}

void
expectSameOutcome(const sim::Outcome &a, const sim::Outcome &b,
                  bool includeDecomposition = true)
{
    // Skipped when the two runs differ in decomposeLatency itself
    // (one side deliberately has an empty decomposition).
    if (includeDecomposition) {
        EXPECT_EQ(a.decomposition, b.decomposition);
    }
    EXPECT_EQ(a.throughputPerSec, b.throughputPerSec);
    EXPECT_EQ(a.meanRoundTripUs, b.meanRoundTripUs);
    EXPECT_EQ(a.rtCi95Us, b.rtCi95Us);
    EXPECT_EQ(a.rtP50Us, b.rtP50Us);
    EXPECT_EQ(a.rtP95Us, b.rtP95Us);
    EXPECT_EQ(a.roundTrips, b.roundTrips);
    EXPECT_EQ(a.hostUtil, b.hostUtil);
    EXPECT_EQ(a.mpUtil, b.mpUtil);
    EXPECT_EQ(a.busUtil, b.busUtil);
    EXPECT_EQ(a.resourceUtilization, b.resourceUtilization);
    EXPECT_EQ(a.bufferStalls, b.bufferStalls);
    EXPECT_EQ(a.ringUtil, b.ringUtil);
    EXPECT_EQ(a.ringTokenWaitUs, b.ringTokenWaitUs);
    EXPECT_EQ(a.activityUsPerRoundTrip, b.activityUsPerRoundTrip);
    EXPECT_EQ(a.localThroughputPerSec, b.localThroughputPerSec);
    EXPECT_EQ(a.remoteThroughputPerSec, b.remoteThroughputPerSec);
    EXPECT_EQ(a.localMeanRtUs, b.localMeanRtUs);
    EXPECT_EQ(a.remoteMeanRtUs, b.remoteMeanRtUs);
    EXPECT_EQ(a.retransmissions, b.retransmissions);
    EXPECT_EQ(a.timeoutsFired, b.timeoutsFired);
    EXPECT_EQ(a.duplicatesDropped, b.duplicatesDropped);
    EXPECT_EQ(a.corruptDiscarded, b.corruptDiscarded);
    EXPECT_EQ(a.faultDrops, b.faultDrops);
    EXPECT_EQ(a.crashDrops, b.crashDrops);
    EXPECT_EQ(a.netThroughputPktsPerSec, b.netThroughputPktsPerSec);
    EXPECT_EQ(a.netGoodputPktsPerSec, b.netGoodputPktsPerSec);
    EXPECT_EQ(a.protoHostUsPerRt, b.protoHostUsPerRt);
    EXPECT_EQ(a.protoMpUsPerRt, b.protoMpUsPerRt);
    EXPECT_EQ(a.crashWindowsRecovered, b.crashWindowsRecovered);
    EXPECT_EQ(a.meanRecoveryUs, b.meanRecoveryUs);
}

TEST(Observability, TracingDoesNotPerturbOutcome)
{
    const sim::Experiment e = lossyExperiment();
    const sim::Outcome plain = sim::runExperiment(e);

    trace::Tracer tr;
    tr.setEnabled(true);
    metrics::Registry reg;
    const sim::Outcome traced = sim::runExperiment(e, &tr, &reg);

    EXPECT_FALSE(tr.events().empty());
    EXPECT_GT(reg.counter("ipc.roundTrips").value(), 0);
    expectSameOutcome(plain, traced);
}

TEST(Observability, TracingDoesNotPerturbLocalRun)
{
    sim::Experiment e;
    e.arch = models::Arch::I;
    e.local = true;
    e.conversations = 2;
    e.computeUs = 1140;
    e.warmupUs = 20000;
    e.measureUs = 150000;
    const sim::Outcome plain = sim::runExperiment(e);

    trace::Tracer tr;
    tr.setEnabled(true);
    const sim::Outcome traced = sim::runExperiment(e, &tr, nullptr);
    expectSameOutcome(plain, traced);
}

TEST(Observability, DecompositionDoesNotPerturbOutcome)
{
    // The causal log is pay-for-use: turning it on changes no other
    // measured field, lossy reliability stack included.
    sim::Experiment e = lossyExperiment();
    const sim::Outcome plain = sim::runExperiment(e);
    EXPECT_EQ(plain.decomposition.messages, 0);

    e.decomposeLatency = true;
    const sim::Outcome decomposed = sim::runExperiment(e);
    EXPECT_GT(decomposed.decomposition.messages, 0);
    expectSameOutcome(plain, decomposed,
                      /*includeDecomposition=*/false);

    // And with the tracer also attached, everything — the
    // decomposition included — is reproduced bit for bit.
    trace::Tracer tr;
    tr.setEnabled(true);
    metrics::Registry reg;
    const sim::Outcome traced = sim::runExperiment(e, &tr, &reg);
    expectSameOutcome(decomposed, traced);
    // The component latency histograms landed in the registry.
    EXPECT_GT(reg.histogram("lat.roundTripUs").count(), 0);
    EXPECT_GT(reg.histogram("lat.queueUs").count(), 0);
    EXPECT_EQ(reg.histogram("lat.serviceUs").count(),
              decomposed.decomposition.messages);
}

TEST(Observability, SimEmitsFlowAndAsyncEvents)
{
    sim::Experiment e = lossyExperiment();
    trace::Tracer tr;
    tr.setEnabled(true);
    const sim::Outcome o = sim::runExperiment(e, &tr, nullptr);
    ASSERT_GT(o.roundTrips, 0);

    long flowStarts = 0, flowSteps = 0, flowEnds = 0;
    long asyncBegins = 0, asyncEnds = 0, taggedSpans = 0;
    for (const trace::Event &ev : tr.events()) {
        switch (ev.phase) {
          case trace::Phase::FlowStart: ++flowStarts; break;
          case trace::Phase::FlowStep: ++flowSteps; break;
          case trace::Phase::FlowEnd: ++flowEnds; break;
          case trace::Phase::AsyncBegin: ++asyncBegins; break;
          case trace::Phase::AsyncEnd: ++asyncEnds; break;
          case trace::Phase::Complete:
            if (ev.id != 0)
                ++taggedSpans;
            break;
          default:
            break;
        }
    }
    // Every round trip opens a flow chain and an async span; both end
    // exactly once (in-flight messages at simulation end stay open).
    EXPECT_GT(flowStarts, 0);
    EXPECT_GT(flowSteps, flowStarts); // several hops per message
    EXPECT_GT(flowEnds, 0);
    EXPECT_LE(flowEnds, flowStarts);
    EXPECT_GE(asyncBegins, o.roundTrips);
    EXPECT_LE(asyncEnds, asyncBegins);
    EXPECT_GT(asyncEnds, 0);
    EXPECT_GT(taggedSpans, 0);
    EXPECT_TRUE(validJson(tr.chromeJson()));
}

TEST(Observability, ResourceUtilizationMatchesTrace)
{
    const sim::Experiment e = lossyExperiment();
    trace::Tracer tr;
    tr.setEnabled(true);
    const sim::Outcome o = sim::runExperiment(e, &tr, nullptr);

    const Tick warm = usToTicks(e.warmupUs);
    const Tick end = warm + usToTicks(e.measureUs);
    const auto busy = tr.busyByTrack(warm, end);
    const double window = static_cast<double>(end - warm);

    ASSERT_FALSE(o.resourceUtilization.empty());
    EXPECT_GT(o.resourceUtilization.count("n0.host0"), 0u);
    EXPECT_GT(o.resourceUtilization.count("n1.mp"), 0u);
    for (const auto &[name, util] : o.resourceUtilization) {
        Tick traced = 0;
        auto it = busy.find(name);
        if (it != busy.end())
            traced = it->second;
        // Near, not equal: a span straddling the warmup boundary is
        // charged to the snapshot at issue time but clipped by the
        // trace fold.
        EXPECT_NEAR(static_cast<double>(traced) / window, util, 1e-3)
            << name;
    }
}

TEST(Observability, TraceAndMetricsFilesWritten)
{
    sim::Experiment e = lossyExperiment();
    const std::string tracePath =
        testing::TempDir() + "hsipc_trace_test.json";
    const std::string metricsPath =
        testing::TempDir() + "hsipc_metrics_test.json";
    e.traceFile = tracePath;
    e.metricsFile = metricsPath;
    const sim::Outcome o = sim::runExperiment(e);
    EXPECT_GT(o.roundTrips, 0);

    const std::string trace = readFile(tracePath);
    EXPECT_TRUE(validJson(trace));
    // One named track per resource, plus the service queues, medium,
    // protocol channels, and run phases.
    for (const char *track :
         {"n0.host0", "n0.mp", "n0.busTcb", "n0.nicIn", "n0.nicOut",
          "n0.svc", "n1.host0", "medium", "net.n0->n1", "sim"})
        EXPECT_NE(trace.find(std::string("\"name\":\"") + track +
                             "\""),
                  std::string::npos)
            << track;
    EXPECT_NE(trace.find("measureStart"), std::string::npos);
    EXPECT_NE(trace.find("n1 crash"), std::string::npos);

    const std::string metrics = readFile(metricsPath);
    EXPECT_TRUE(validJson(metrics));
    for (const char *key :
         {"ipc.roundTrips", "net.retransmissions", "des.eventsRun",
          "util.n0.host0", "activity.sendSyscall.usPerRt",
          "ipc.roundTripUs"})
        EXPECT_NE(metrics.find(key), std::string::npos) << key;

    std::remove(tracePath.c_str());
    std::remove(metricsPath.c_str());
}

TEST(Observability, GtpnSimulatorTraces)
{
    gtpn::PetriNet net;
    const gtpn::PlaceId p = net.addPlace("P", 1);
    const gtpn::TransId t =
        net.addTransition("T", 2.0, 1.0, "server");
    net.inputArc(p, t);
    net.outputArc(t, p);

    gtpn::SimOptions opts;
    opts.warmup = 100;
    opts.horizon = 10000;
    const gtpn::SimResult plain = gtpn::simulate(net, opts);

    trace::Tracer tr;
    tr.setEnabled(true);
    gtpn::SimOptions traced = opts;
    traced.tracer = &tr;
    const gtpn::SimResult withTrace = gtpn::simulate(net, traced);

    // Tracing is observational: same seed, same measures.
    EXPECT_EQ(plain.resourceUsage, withTrace.resourceUsage);
    EXPECT_EQ(plain.firingRate, withTrace.firingRate);
    EXPECT_EQ(plain.placeOccupancy, withTrace.placeOccupancy);

    // The single always-firing transition fills its track.
    const auto busy = tr.busyByTrack(0, usToTicks(10100));
    ASSERT_GT(busy.count("server.T"), 0u);
    EXPECT_GT(busy.at("server.T"), usToTicks(10000));
    bool sawFire = false;
    for (const trace::Event &ev : tr.events())
        sawFire |= ev.phase == trace::Phase::Instant &&
                   ev.name == "fire";
    EXPECT_TRUE(sawFire);
    EXPECT_TRUE(validJson(tr.chromeJson()));
}

// --- Time-resolved timelines -----------------------------------------

/** The expected timeline file for GoldenTimelineJson's pinned run. */
std::string
goldenTimelineDoc()
{
    return "{\n"
           "  \"intervalUs\": 5000,\n"
           "  \"horizonUs\": 20000,\n"
           "  \"warmupUs\": 5000,\n"
           "  \"stats\": {\"enabled\": true, "
           "\"insufficientData\": true, "
           "\"transientPolluted\": false, \"truncationUs\": 20000, "
           "\"batches\": 0, \"throughputPerSec\": 0, "
           "\"throughputCi95PerSec\": 0, \"meanRtUs\": 0, "
           "\"rtCi95Us\": 0},\n"
           "  \"counters\": {\n"
           "   \"ipc.allTrips\": [0, 1, 1, 1],\n"
           "   \"ipc.bufferStalls\": [0, 0, 0, 0],\n"
           "   \"ipc.completedTrips\": [0, 1, 1, 1],\n"
           "   \"ipc.rtSumUs\": [0, 6041.574, 5996.523, 5616.436]\n"
           "  },\n"
           "  \"gauges\": {\n"
           "   \"n0.freeBuffers\": [63, 63, 63, 63],\n"
           "   \"n0.svc.pendingMsgs\": [0, 0, 0, 0],\n"
           "   \"n0.svc.waitingServers\": [0, 0, 0, 0],\n"
           "   \"util.n0.busTcb\": [0.1020384, 0.1279616, 0.1404, "
           "0.1354],\n"
           "   \"util.n0.host0\": [1, 1, 1, 1],\n"
           "   \"util.n0.nicIn\": [0, 0, 0, 0],\n"
           "   \"util.n0.nicOut\": [0, 0, 0, 0]\n"
           "  }\n"
           "}\n";
}

/** lossyExperiment() plus the robustness layer under open arrivals. */
sim::Experiment
robustLossyExperiment()
{
    sim::Experiment e = lossyExperiment();
    e.arrivalMode = 1;
    e.arrivalRatePerSec = 150;
    e.deadlineUs = 80000;
    e.retryBudget = 1;
    e.retryBackoffUs = 5000;
    e.svcQueueCap = 2;
    e.shedPolicy = 2;
    return e;
}

TEST(Timeline, EnablingDoesNotPerturbOutcome)
{
    sim::Experiment e = lossyExperiment();
    const sim::Outcome plain = sim::runExperiment(e);
    EXPECT_FALSE(plain.timeline.enabled());
    EXPECT_FALSE(plain.stats.enabled);

    e.timelineIntervalUs = 5000;
    const sim::Outcome timed = sim::runExperiment(e);
    EXPECT_TRUE(timed.timeline.enabled());
    EXPECT_TRUE(timed.stats.enabled);
    expectSameOutcome(plain, timed);

    // At the byte level: the timed run's outcomeJson extends the
    // plain document — every pre-timeline field renders identically.
    const std::string base = sim::outcomeJson(plain);
    const std::string timedDoc = sim::outcomeJson(timed);
    ASSERT_GT(base.size(), 4u);
    const std::string prefix = base.substr(0, base.size() - 3);
    ASSERT_GT(timedDoc.size(), prefix.size());
    EXPECT_EQ(timedDoc.compare(0, prefix.size(), prefix), 0);
}

TEST(Timeline, IntegralsReproduceOutcomeCounters)
{
    sim::Experiment e = robustLossyExperiment();
    e.timelineIntervalUs = 5000;
    const sim::Outcome o = sim::runExperiment(e);
    const obs::Timeline &t = o.timeline;
    ASSERT_TRUE(t.enabled());

    // Exact, to the counter's unit — the windowed series are bumped
    // at the very sites that bump the whole-run ledgers.
    EXPECT_EQ(std::llround(t.total("ipc.completedTrips")),
              o.roundTrips);
    EXPECT_EQ(std::llround(t.total("ipc.bufferStalls")),
              o.bufferStalls);
    EXPECT_EQ(std::llround(t.total("rpc.offered")), o.rpc.offered);
    EXPECT_EQ(std::llround(t.total("rpc.completed")),
              o.rpc.completed);
    EXPECT_EQ(std::llround(t.total("rpc.shed")), o.rpc.shed);
    EXPECT_EQ(std::llround(t.total("rpc.expired")), o.rpc.expired);
    EXPECT_EQ(std::llround(t.total("rpc.retries")), o.rpc.retries);
    EXPECT_EQ(std::llround(t.total("net.dataTransmissions")),
              o.netTotals.dataTransmissions);
    EXPECT_EQ(std::llround(t.total("net.retransmissions")),
              o.netTotals.retransmissions);
    EXPECT_EQ(std::llround(t.total("net.delivered")),
              o.netTotals.msgsDelivered);
    EXPECT_EQ(std::llround(t.total("net.acksSent")),
              o.netTotals.acksSent);

    // Every series spans the same bin count, and the knee/crash
    // dynamics are genuinely time-resolved: the crash window (60-80
    // ms) must show fewer completions than the steady bins before it.
    const std::size_t bins = t.bins();
    for (const auto &[name, s] : t.counters)
        EXPECT_EQ(s.size(), bins) << name;
    for (const auto &[name, g] : t.gauges)
        EXPECT_EQ(g.size(), bins) << name;
    const std::vector<double> &done =
        t.counters.at("ipc.completedTrips");
    double during = 0;
    for (std::size_t b = 12; b < 16; ++b)
        during += done[b]; // the 60-80 ms outage
    const double total = t.total("ipc.completedTrips");
    ASSERT_GT(total, 0);
    EXPECT_LT(during / 4,
              (total - during) / static_cast<double>(bins - 4));
}

TEST(Timeline, SingleBinAndNonMultipleHorizonRuns)
{
    // Interval at least the whole horizon: the run is one bin, the
    // integrals still hold, and the end-of-run partial-bin sampling
    // neither crashes nor double-samples.
    sim::Experiment e = lossyExperiment();
    e.timelineIntervalUs = e.warmupUs + e.measureUs; // == horizon
    const sim::Outcome exact = sim::runExperiment(e);
    ASSERT_TRUE(exact.timeline.enabled());
    EXPECT_EQ(exact.timeline.bins(), 1u);
    EXPECT_EQ(std::llround(exact.timeline.total("ipc.bufferStalls")),
              exact.bufferStalls);

    e.timelineIntervalUs = 2 * (e.warmupUs + e.measureUs); // > horizon
    const sim::Outcome over = sim::runExperiment(e);
    EXPECT_EQ(over.timeline.bins(), 1u);
    EXPECT_EQ(std::llround(over.timeline.total("ipc.bufferStalls")),
              over.bufferStalls);

    // A bin width that does not divide the horizon: 220 ms / 17 ms
    // -> 13 bins with a partial last one; integrals stay exact.
    e.timelineIntervalUs = 17000;
    const sim::Outcome ragged = sim::runExperiment(e);
    EXPECT_EQ(ragged.timeline.bins(), 13u);
    EXPECT_EQ(
        std::llround(ragged.timeline.total("ipc.completedTrips")),
        ragged.roundTrips);
    for (const auto &[name, g] : ragged.timeline.gauges)
        EXPECT_EQ(g.size(), 13u) << name;

    // None of the shapes perturbs the simulation itself.
    sim::Experiment plain = lossyExperiment();
    expectSameOutcome(sim::runExperiment(plain), exact);
    expectSameOutcome(exact, over);
    expectSameOutcome(over, ragged);
}

TEST(Timeline, GoldenTimelineJson)
{
    // A tiny pinned run: architecture I, one local conversation with
    // a fixed compute phase, four 5-ms bins.  The document below is
    // the complete expected file, so any change to the timeline
    // format or to the simulation itself shows up as a diff here.
    sim::Experiment e;
    e.arch = models::Arch::I;
    e.local = true;
    e.conversations = 1;
    e.computeUs = 900;
    e.warmupUs = 5000;
    e.measureUs = 15000;
    e.seed = 3;
    e.timelineIntervalUs = 5000;
    e.timelineFile = testing::TempDir() + "hsipc_golden_timeline.json";
    const sim::Outcome o = sim::runExperiment(e);
    const std::string doc = readFile(e.timelineFile);
    EXPECT_TRUE(validJson(doc));
    EXPECT_EQ(std::llround(o.timeline.total("ipc.completedTrips")),
              o.roundTrips);
    EXPECT_EQ(doc, goldenTimelineDoc());
    std::remove(e.timelineFile.c_str());
}

TEST(Timeline, CounterTrackInChromeTrace)
{
    sim::Experiment e = lossyExperiment();
    e.timelineIntervalUs = 10000;
    trace::Tracer tr;
    tr.setEnabled(true);
    const sim::Outcome o = sim::runExperiment(e, &tr, nullptr);
    ASSERT_TRUE(o.timeline.enabled());

    // The timeline mirrors each bin onto one Perfetto counter track
    // named "timeline", so windowed rates render beside the existing
    // span tracks.
    const auto &names = tr.trackNames();
    const auto it =
        std::find(names.begin(), names.end(), "timeline");
    ASSERT_NE(it, names.end());
    const int track = static_cast<int>(it - names.begin());
    std::set<std::string> counterNames;
    std::size_t counterEvents = 0;
    for (const trace::Event &ev : tr.events()) {
        if (ev.track != track)
            continue;
        EXPECT_EQ(ev.phase, trace::Phase::Counter);
        ++counterEvents;
        counterNames.insert(ev.name);
    }
    EXPECT_GT(counterNames.count("ipc.completedTrips"), 0u);
    EXPECT_GT(counterNames.count("net.retransmissions"), 0u);
    // One event per series per boundary, at least.
    EXPECT_GE(counterEvents,
              counterNames.size() * (o.timeline.bins() - 1));
    const std::string json = tr.chromeJson();
    EXPECT_TRUE(validJson(json));
    EXPECT_NE(json.find("\"timeline\""), std::string::npos);
    EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
}

// --- Deterministic trace sampling ------------------------------------

TEST(TraceSampling, SampledChainsStayComplete)
{
    sim::Experiment e = lossyExperiment();
    e.decomposeLatency = true;
    const sim::Outcome full = sim::runExperiment(e);

    e.traceSampleRate = 0.4;
    const sim::Outcome sampled = sim::runExperiment(e);

    // Sampling thins the analyzed population but never the simulated
    // one...
    expectSameOutcome(full, sampled,
                      /*includeDecomposition=*/false);
    ASSERT_GT(sampled.decomposition.messages, 0);
    EXPECT_LT(sampled.decomposition.messages,
              full.decomposition.messages);

    // ...and each surviving chain is still a gapless partition:
    // component means sum to the sampled round-trip mean exactly.
    const trace::Decomposition &d = sampled.decomposition;
    EXPECT_NEAR(d.service.meanUs + d.queue.meanUs + d.network.meanUs +
                    d.blocked.meanUs,
                d.roundTrip.meanUs, 1e-6 * d.roundTrip.meanUs);
}

TEST(TraceSampling, FlowAndAsyncEventsSampledAtomically)
{
    sim::Experiment e = lossyExperiment();
    e.traceSampleRate = 0.35;
    trace::Tracer tr;
    tr.setEnabled(true);
    sim::runExperiment(e, &tr, nullptr);

    // Per message id the whole arrow chain survives or none of it:
    // any flow trail starts with a FlowStart, and async lifetimes
    // stay begin/end balanced.
    std::map<long, std::vector<trace::Phase>> flows;
    std::map<long, long> asyncBalance;
    for (const trace::Event &ev : tr.events()) {
        switch (ev.phase) {
          case trace::Phase::FlowStart:
          case trace::Phase::FlowStep:
          case trace::Phase::FlowEnd:
            flows[ev.id].push_back(ev.phase);
            break;
          case trace::Phase::AsyncBegin:
            ++asyncBalance[ev.id];
            break;
          case trace::Phase::AsyncEnd:
            --asyncBalance[ev.id];
            break;
          default:
            break;
        }
    }
    ASSERT_FALSE(flows.empty());
    const obs::TraceSampler sampler(e.traceSampleRate, e.seed);
    for (const auto &[id, phases] : flows) {
        EXPECT_TRUE(sampler.sampled(id)) << "unsampled id " << id;
        EXPECT_EQ(phases.front(), trace::Phase::FlowStart)
            << "flow " << id << " missing its start";
    }
    // A lifetime still open at the horizon legitimately lacks its
    // end; an end without a begin would mean the sampler split a
    // pair, which must never happen.
    for (const auto &[id, balance] : asyncBalance)
        EXPECT_GE(balance, 0) << "async end without begin, id " << id;

    // And a full-rate run keeps strictly more chains.
    trace::Tracer trFull;
    trFull.setEnabled(true);
    sim::Experiment f = lossyExperiment();
    sim::runExperiment(f, &trFull, nullptr);
    std::set<long> fullIds, sampledIds;
    for (const trace::Event &ev : trFull.events())
        if (ev.phase == trace::Phase::FlowStart)
            fullIds.insert(ev.id);
    for (const auto &[id, phases] : flows)
        sampledIds.insert(id);
    EXPECT_LT(sampledIds.size(), fullIds.size());
    for (long id : sampledIds)
        EXPECT_GT(fullIds.count(id), 0u);
}

} // namespace
