/**
 * @file
 * Tests of the property-based fuzzing stack (sim/check): generator
 * validity and coverage, the invariant oracle staying green on the
 * shipped simulator, the three-engine differential agreement, the
 * shrinker's minimization behavior — and the end-to-end acceptance
 * case: a deliberately planted off-by-one in retransmission counting
 * is caught by the conservation oracle and shrunk to a <= 5-knob
 * minimal repro whose JSON replays.
 */

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/check/differential.hh"
#include "sim/check/experiment_json.hh"
#include "sim/check/generator.hh"
#include "sim/check/invariants.hh"
#include "sim/check/shrink.hh"
#include "sim/check/test_hooks.hh"

namespace
{

using namespace hsipc;
using namespace hsipc::sim;
using namespace hsipc::sim::check;

TEST(Generator, IsDeterministicInSeedAndIndex)
{
    const ExperimentGenerator a(7), b(7), c(8);
    for (std::uint64_t i = 0; i < 20; ++i) {
        EXPECT_TRUE(a.generate(i) == b.generate(i)) << i;
        EXPECT_FALSE(a.generate(i) == c.generate(i)) << i;
    }
}

TEST(Generator, CoversTheConfigurationSurface)
{
    const ExperimentGenerator gen(1);
    std::set<int> archs;
    int locals = 0, remotes = 0, mixeds = 0, faulty = 0, rings = 0;
    int crashes = 0, decomposed = 0, multiHost = 0;
    int poisson = 0, pareto = 0, deadlines = 0, retries = 0;
    int capped = 0, rtoCeil = 0;
    std::set<int> shedPolicies;
    std::set<int> topoKinds, topoPlacements, topoNodes;
    int topoOn = 0, topoLinks = 0, topoBig = 0;
    for (std::uint64_t i = 0; i < 300; ++i) {
        const Experiment e = gen.generate(i);
        archs.insert(static_cast<int>(e.arch));
        const bool mixed = e.mixedLocal + e.mixedRemote > 0;
        if (mixed)
            ++mixeds;
        else if (e.local)
            ++locals;
        else
            ++remotes;
        if (e.lossRate > 0 || e.corruptRate > 0 ||
            e.duplicateRate > 0 || e.reorderRate > 0)
            ++faulty;
        if (e.useTokenRing)
            ++rings;
        if (!e.crashSchedule.empty())
            ++crashes;
        if (e.decomposeLatency)
            ++decomposed;
        if (e.hostsPerNode > 1)
            ++multiHost;
        if (e.arrivalMode == 1)
            ++poisson;
        if (e.arrivalMode == 2)
            ++pareto;
        if (e.deadlineUs > 0)
            ++deadlines;
        if (e.retryBudget > 0)
            ++retries;
        if (e.svcQueueCap > 0) {
            ++capped;
            shedPolicies.insert(e.shedPolicy);
        }
        if (e.rtoMaxUs != Experiment().rtoMaxUs)
            ++rtoCeil;
        if (e.topo.enabled()) {
            ++topoOn;
            topoKinds.insert(e.topo.kind);
            topoPlacements.insert(e.topo.placement);
            topoNodes.insert(e.topo.nodes);
            if (!e.topo.links.empty())
                ++topoLinks;
            if (e.topo.nodes >= 16)
                ++topoBig;
        }
    }
    EXPECT_EQ(archs.size(), 4u); // all four architectures
    EXPECT_GT(locals, 0);
    EXPECT_GT(remotes, 0);
    EXPECT_GT(mixeds, 0);
    EXPECT_GT(faulty, 0);
    EXPECT_GT(rings, 0);
    EXPECT_GT(crashes, 0);
    EXPECT_GT(decomposed, 0);
    EXPECT_GT(multiHost, 0);
    // Robustness layer (open arrivals, deadlines, retries, admission
    // control) is sampled, including both arrival processes and all
    // three shed policies.
    EXPECT_GT(poisson, 0);
    EXPECT_GT(pareto, 0);
    EXPECT_GT(deadlines, 0);
    EXPECT_GT(retries, 0);
    EXPECT_GT(capped, 0);
    EXPECT_EQ(shedPolicies.size(), 3u);
    EXPECT_GT(rtoCeil, 0);
    // The topology surface: all three kinds, all four placement
    // policies, link overrides, and node counts up to the 16..32
    // range are all sampled.
    EXPECT_GT(topoOn, 0);
    EXPECT_EQ(topoKinds.size(), 3u);
    EXPECT_EQ(topoPlacements.size(), 4u);
    EXPECT_GT(topoNodes.size(), 4u);
    EXPECT_GT(topoLinks, 0);
    EXPECT_GT(topoBig, 0);
}

TEST(Generator, EveryDrawIsRunnableAndValid)
{
    const ExperimentGenerator gen(2);
    for (std::uint64_t i = 0; i < 100; ++i) {
        const Experiment e = gen.generate(i);
        // The constraints runExperiment() asserts on.
        EXPECT_GE(e.conversations + e.mixedLocal + e.mixedRemote, 1);
        EXPECT_GE(e.hostsPerNode, 1);
        EXPECT_GT(e.packetBytes, 0);
        EXPECT_GE(e.computeUs, 0);
        EXPECT_GE(e.kernelBuffers, 1);
        EXPECT_GT(e.mpSpeedFactor, 0);
        EXPECT_GT(e.ringMbps, 0);
        EXPECT_GT(e.measureUs, 0);
        for (double rate : {e.lossRate, e.corruptRate,
                            e.duplicateRate, e.reorderRate}) {
            EXPECT_GE(rate, 0);
            EXPECT_LE(rate, 1);
        }
        EXPECT_GT(e.retransmitTimeoutUs, 0);
        EXPECT_GE(e.retransmitWindow, 1);
        for (const CrashWindow &w : e.crashSchedule) {
            EXPECT_TRUE(w.node == 0 || w.node == 1);
            EXPECT_GE(w.startUs, 0);
            EXPECT_GT(w.endUs, w.startUs);
        }
        // Robustness-layer constraints runExperiment() asserts on.
        EXPECT_TRUE(e.arrivalMode >= 0 && e.arrivalMode <= 2);
        if (e.arrivalMode != 0) {
            EXPECT_GT(e.arrivalRatePerSec, 0);
            EXPECT_EQ(e.mixedLocal + e.mixedRemote, 0)
                << "open arrivals only drive the homogeneous workload";
        }
        if (e.arrivalMode == 2) {
            EXPECT_GT(e.paretoAlpha, 1);
            EXPECT_GT(e.paretoBound, 1);
        }
        EXPECT_GE(e.deadlineUs, 0);
        EXPECT_GE(e.retryBudget, 0);
        if (e.retryBudget > 0) {
            EXPECT_GT(e.retryBackoffUs, 0);
            EXPECT_GE(e.retryBackoffMaxUs, e.retryBackoffUs);
        }
        EXPECT_GE(e.svcQueueCap, 0);
        EXPECT_TRUE(e.shedPolicy >= 0 && e.shedPolicy <= 2);
        EXPECT_GT(e.rtoMaxUs, 0);
        // Topology constraints runExperiment() asserts on.
        EXPECT_TRUE(e.topo.nodes == 0 ||
                    (e.topo.nodes >= 2 && e.topo.nodes <= 1024));
        EXPECT_TRUE(e.topo.kind >= 0 && e.topo.kind <= 2);
        EXPECT_TRUE(e.topo.placement >= 0 && e.topo.placement <= 3);
        EXPECT_GE(e.topo.linkLatencyUs, 0);
        EXPECT_GE(e.topo.linkMbps, 0);
        EXPECT_GE(e.topo.switchLatencyUs, 0);
        EXPECT_GE(e.topo.segments, 1);
        EXPECT_GT(e.topo.segMbps, 0);
        EXPECT_GT(e.topo.zipfSkew, 0);
        for (const auto &l : e.topo.links) {
            EXPECT_GE(l.a, 0);
            EXPECT_GE(l.b, 0);
            EXPECT_NE(l.a, l.b);
            EXPECT_GE(l.latencyUs, 0);
            EXPECT_GE(l.mbps, 0);
        }
        if (e.topo.enabled()) {
            EXPECT_EQ(e.mixedLocal + e.mixedRemote, 0)
                << "a topology supersedes the mixed layout";
            EXPECT_FALSE(e.useTokenRing)
                << "a topology supersedes the legacy ring knob";
        }
    }
}

TEST(Oracle, GreenOnGeneratedExperiments)
{
    const ExperimentGenerator gen(3);
    for (std::uint64_t i = 0; i < 30; ++i) {
        OracleOptions opts;
        // Keep the test fast: full determinism re-runs on a sample.
        opts.checkTraceIdentity = (i % 3 == 0);
        opts.parallelJobs = (i % 10 == 0) ? 3 : 0;
        const CheckResult res = checkedRun(gen.generate(i), opts);
        EXPECT_TRUE(res.ok())
            << "index " << i << ":\n"
            << formatViolations(res.violations);
    }
}

TEST(Oracle, UtilizationStaysInUnitRangeAtSaturation)
{
    // Regression for the bug the fuzzer found on day one: busy time
    // booked at chunk start let a saturated host report > 1.
    Experiment e = baseExperiment();
    e.arch = models::Arch::I;
    const std::vector<Violation> v =
        checkOutcome(e, runExperiment(e));
    EXPECT_TRUE(v.empty()) << formatViolations(v);
}

TEST(Differential, EligibilityMatchesTheModeledSubset)
{
    EXPECT_TRUE(differentialEligible(baseExperiment()));
    Experiment remote = baseExperiment();
    remote.local = false;
    EXPECT_FALSE(differentialEligible(remote));
    Experiment faulty = baseExperiment();
    faulty.lossRate = 0.1;
    EXPECT_FALSE(differentialEligible(faulty));
    Experiment big = baseExperiment();
    big.conversations = 10;
    EXPECT_FALSE(differentialEligible(big));
    Experiment multi = baseExperiment();
    multi.hostsPerNode = 2;
    EXPECT_FALSE(differentialEligible(multi));
    // The closed-workload models don't cover the robustness layer.
    Experiment open = baseExperiment();
    open.arrivalMode = 1;
    EXPECT_FALSE(differentialEligible(open));
    Experiment deadline = baseExperiment();
    deadline.deadlineUs = 5000;
    EXPECT_FALSE(differentialEligible(deadline));
    Experiment capped = baseExperiment();
    capped.svcQueueCap = 4;
    EXPECT_FALSE(differentialEligible(capped));
}

TEST(Differential, ThreeEnginesAgreeOnEligibleConfigs)
{
    for (int arch : {1, 2, 3, 4}) {
        Experiment e = baseExperiment();
        e.arch = static_cast<models::Arch>(arch);
        e.conversations = 2;
        e.computeUs = 1000;
        ASSERT_TRUE(differentialEligible(e));
        const std::vector<Violation> v = differentialCheck(e);
        EXPECT_TRUE(v.empty())
            << "arch " << arch << ":\n" << formatViolations(v);
    }
}

TEST(Shrink, MinimizesToTheDecidingKnobs)
{
    // Synthetic predicate (no simulation): the "failure" needs a
    // remote workload and a loss rate above 0.1.  Start from a config
    // with a dozen irrelevant knobs turned and expect exactly the two
    // deciding knobs to survive, with the loss rate bisected down to
    // the boundary.
    const ExperimentGenerator gen(4);
    Experiment noisy = gen.generate(11);
    noisy.local = false;
    noisy.mixedLocal = noisy.mixedRemote = 0;
    noisy.lossRate = 0.29;
    ASSERT_GT(knobDelta(noisy), 2);

    int evals = 0;
    const ShrinkResult res = shrinkExperiment(
        noisy,
        [&evals](const Experiment &cand) {
            ++evals;
            return !cand.local && cand.lossRate > 0.1;
        },
        1000);
    EXPECT_LE(res.knobsChanged, 2);
    EXPECT_FALSE(res.minimal.local);
    EXPECT_GT(res.minimal.lossRate, 0.1);
    EXPECT_LT(res.minimal.lossRate, 0.11); // bisected to the boundary
    EXPECT_EQ(res.runsUsed, evals);
    // Everything irrelevant reset to the base configuration.
    Experiment expect = baseExperiment();
    expect.local = false;
    expect.lossRate = res.minimal.lossRate;
    EXPECT_TRUE(res.minimal == expect);
}

TEST(Fuzz, InjectedRetransmissionBugIsCaughtShrunkAndReplayable)
{
    // A two-node lossy config that forces retransmissions.
    Experiment failing = baseExperiment();
    failing.local = false;
    failing.lossRate = 0.2;
    failing.corruptRate = 0.05;
    failing.computeUs = 500;
    failing.decomposeLatency = true;

    // Healthy simulator: the oracle is green on this config.
    EXPECT_TRUE(checkOutcome(failing, runExperiment(failing)).empty());

    ScopedTestHooks guard;
    testHooks().retransmissionMiscount = 1;

    // The conservation oracle catches the planted off-by-one.
    const std::vector<Violation> caught =
        checkOutcome(failing, runExperiment(failing));
    ASSERT_FALSE(caught.empty());
    std::set<std::string> ids;
    for (const Violation &v : caught)
        ids.insert(v.invariant);
    EXPECT_TRUE(ids.count("conservation.firstTx"))
        << formatViolations(caught);

    // Shrinking anchored to the caught invariants reaches a minimal
    // repro of at most 5 knobs.
    const ShrinkResult shrunk = shrinkExperiment(
        failing, [&ids](const Experiment &cand) {
            for (const Violation &v :
                 checkOutcome(cand, runExperiment(cand)))
                if (ids.count(v.invariant))
                    return true;
            return false;
        });
    EXPECT_LE(shrunk.knobsChanged, 5)
        << "minimal repro still has knobs: " << [&] {
               std::string s;
               for (const std::string &k : knobDiff(shrunk.minimal))
                   s += k + " ";
               return s;
           }();

    // The repro JSON round-trips and still reproduces the violation.
    const Experiment replayed =
        experimentFromJsonText(experimentToJson(shrunk.minimal));
    EXPECT_TRUE(replayed == shrunk.minimal);
    bool stillCaught = false;
    for (const Violation &v :
         checkOutcome(replayed, runExperiment(replayed)))
        stillCaught |= ids.count(v.invariant) > 0;
    EXPECT_TRUE(stillCaught);

    // With the planted bug removed the same repro runs clean: the
    // failure was the bug, not the configuration.
    testHooks().retransmissionMiscount = 0;
    EXPECT_TRUE(
        checkOutcome(replayed, runExperiment(replayed)).empty());
}

TEST(Fuzz, PlantedLadderMisorderingIsCaughtShrunkAndReplayable)
{
    // The drill for the queue.* family: reverse the ladder's seq
    // tiebreak (simultaneous events pop LIFO instead of FIFO).
    // Timestamps are untouched, so every single-run invariant still
    // holds — only the heap-vs-ladder differential can see it.  The
    // misorder is also invisible on *symmetric* configs (LIFO ties
    // merely relabel identical conversations), so start from a
    // generator draw known to carry consequential simultaneity —
    // roughly a quarter of the generated surface does.
    const ExperimentGenerator gen(42);
    const Experiment failing = gen.generate(0);

    OracleOptions opts;
    opts.checkTraceIdentity = false; // focus on the queue family
    opts.parallelJobs = 0;

    // Healthy simulator: both policies agree on this config.
    EXPECT_TRUE(checkedRun(failing, opts).ok());

    ScopedTestHooks guard;
    testHooks().ladderMisorderTiebreak = true;

    const CheckResult caught = checkedRun(failing, opts);
    ASSERT_FALSE(caught.ok());
    std::set<std::string> ids;
    for (const Violation &v : caught.violations)
        ids.insert(v.invariant);
    EXPECT_TRUE(ids.count("queue.kindIdentity"))
        << formatViolations(caught.violations);

    // Shrinking anchored to the differential reaches a minimal repro
    // of at most 5 knobs.  Either queueKind catches it: the identity
    // check always re-runs the opposite policy, so one side of the
    // pair pops misordered whichever side the candidate names.
    const ShrinkResult shrunk = shrinkExperiment(
        failing, [&opts](const Experiment &cand) {
            for (const Violation &v :
                 checkedRun(cand, opts).violations)
                if (v.invariant.rfind("queue.", 0) == 0)
                    return true;
            return false;
        });
    EXPECT_LE(shrunk.knobsChanged, 5)
        << "minimal repro still has knobs: " << [&] {
               std::string s;
               for (const std::string &k : knobDiff(shrunk.minimal))
                   s += k + " ";
               return s;
           }();

    // The repro JSON round-trips and still reproduces the violation.
    const Experiment replayed =
        experimentFromJsonText(experimentToJson(shrunk.minimal));
    EXPECT_TRUE(replayed == shrunk.minimal);
    bool stillCaught = false;
    for (const Violation &v : checkedRun(replayed, opts).violations)
        stillCaught |= v.invariant.rfind("queue.", 0) == 0;
    EXPECT_TRUE(stillCaught);

    // Unplant: the same repro runs clean — FIFO ties restored, the
    // two policies agree again.
    testHooks().ladderMisorderTiebreak = false;
    EXPECT_TRUE(checkedRun(replayed, opts).ok());
}

TEST(Fuzz, PlantedRouterDropIsCaughtShrunkAndReplayable)
{
    // The drill for the topo.* family: a star topology whose switch
    // silently swallows one forwarded packet without booking it as
    // dropped.  Exact per-router flow conservation must notice.
    Experiment failing = baseExperiment();
    failing.local = false;
    failing.computeUs = 500;
    failing.conversations = 4;
    failing.topo.nodes = 4;
    failing.topo.kind = 1;
    failing.topo.linkLatencyUs = 50;
    failing.topo.switchLatencyUs = 20;
    failing.topo.placement = 1;

    // Healthy simulator: the oracle is green on this config.
    EXPECT_TRUE(checkOutcome(failing, runExperiment(failing)).empty());

    ScopedTestHooks guard;
    testHooks().topoRouterDrop = 1;

    const std::vector<Violation> caught =
        checkOutcome(failing, runExperiment(failing));
    ASSERT_FALSE(caught.empty());
    std::set<std::string> ids;
    for (const Violation &v : caught)
        ids.insert(v.invariant);
    EXPECT_TRUE(ids.count("topo.conservation"))
        << formatViolations(caught);

    // Shrinking anchored to the caught invariants reaches a minimal
    // repro of at most 5 knobs.  The hook is consumed per drop, so
    // the predicate re-arms it before every candidate run.
    const ShrinkResult shrunk = shrinkExperiment(
        failing, [&ids](const Experiment &cand) {
            testHooks().topoRouterDrop = 1;
            for (const Violation &v :
                 checkOutcome(cand, runExperiment(cand)))
                if (ids.count(v.invariant))
                    return true;
            return false;
        });
    EXPECT_LE(shrunk.knobsChanged, 5)
        << "minimal repro still has knobs: " << [&] {
               std::string s;
               for (const std::string &k : knobDiff(shrunk.minimal))
                   s += k + " ";
               return s;
           }();
    // The deciding knobs survive: a topology with a router.
    EXPECT_GE(shrunk.minimal.topo.nodes, 2);
    EXPECT_EQ(shrunk.minimal.topo.kind, 1);

    // The repro JSON round-trips and still reproduces the violation.
    const Experiment replayed =
        experimentFromJsonText(experimentToJson(shrunk.minimal));
    EXPECT_TRUE(replayed == shrunk.minimal);
    testHooks().topoRouterDrop = 1;
    bool stillCaught = false;
    for (const Violation &v :
         checkOutcome(replayed, runExperiment(replayed)))
        stillCaught |= ids.count(v.invariant) > 0;
    EXPECT_TRUE(stillCaught);

    // With the planted bug removed the same repro runs clean: the
    // failure was the bug, not the configuration.
    testHooks().topoRouterDrop = 0;
    EXPECT_TRUE(
        checkOutcome(replayed, runExperiment(replayed)).empty());
}

} // namespace
