/**
 * @file
 * Golden regression tests pinning the headline reproduction numbers
 * recorded in EXPERIMENTS.md.  If a refactor of the GTPN engine, the
 * models, or the simulator moves any of these, the reproduction has
 * drifted and EXPERIMENTS.md is stale.
 */

#include <gtest/gtest.h>

#include "core/models/offered_load.hh"
#include "core/models/solution.hh"
#include "sim/kernel/ipc_sim.hh"

namespace
{

using namespace hsipc;
using namespace hsipc::models;

// --- Communication times C (Tables 6.24/6.25 derivation) ---------------

TEST(Golden, LocalCommunicationTimes)
{
    // paper-implied: 4973 / 5430 / 3784 / 3690 us.
    EXPECT_NEAR(communicationTime(Arch::I, true), 4970.0, 25.0);
    EXPECT_NEAR(communicationTime(Arch::II, true), 5429.0, 30.0);
    EXPECT_NEAR(communicationTime(Arch::III, true), 3786.0, 25.0);
    EXPECT_NEAR(communicationTime(Arch::IV, true), 3702.0, 25.0);
}

TEST(Golden, NonlocalCommunicationTimes)
{
    EXPECT_NEAR(communicationTime(Arch::I, false), 6594.0, 70.0);
    EXPECT_NEAR(communicationTime(Arch::II, false), 7011.0, 70.0);
    EXPECT_NEAR(communicationTime(Arch::III, false), 5159.0, 60.0);
    EXPECT_NEAR(communicationTime(Arch::IV, false), 5043.0, 60.0);
}

TEST(Golden, OfferedLoadSpotRows)
{
    // Table 6.24/6.25 published values at 5.7 ms.
    EXPECT_NEAR(offeredLoad(Arch::I, true, 5700.0), 0.466, 0.005);
    EXPECT_NEAR(offeredLoad(Arch::II, true, 5700.0), 0.488, 0.005);
    EXPECT_NEAR(offeredLoad(Arch::III, true, 5700.0), 0.399, 0.005);
    EXPECT_NEAR(offeredLoad(Arch::IV, true, 5700.0), 0.393, 0.005);
    EXPECT_NEAR(offeredLoad(Arch::I, false, 5700.0), 0.536, 0.005);
    EXPECT_NEAR(offeredLoad(Arch::IV, false, 5700.0), 0.469, 0.005);
}

// --- Figure 6.17 maximum-load anchors ----------------------------------

TEST(Golden, MaxLoadLocalAnchors)
{
    // messages/sec at X=0 (EXPERIMENTS.md).
    EXPECT_NEAR(solveLocal(Arch::I, 1, 0).throughputPerUs * 1e6,
                201.2, 2.5);
    EXPECT_NEAR(solveLocal(Arch::II, 1, 0).throughputPerUs * 1e6,
                184.2, 2.5);
    EXPECT_NEAR(solveLocal(Arch::II, 4, 0).throughputPerUs * 1e6,
                237.1, 3.0);
    EXPECT_NEAR(solveLocal(Arch::III, 4, 0).throughputPerUs * 1e6,
                347.8, 4.0);
    EXPECT_NEAR(solveLocal(Arch::IV, 4, 0).throughputPerUs * 1e6,
                355.5, 4.0);
}

TEST(Golden, MaxLoadNonlocalAnchors)
{
    EXPECT_NEAR(solveNonlocal(Arch::I, 4, 0).throughputPerUs * 1e6,
                266.1, 4.0);
    EXPECT_NEAR(solveNonlocal(Arch::III, 4, 0).throughputPerUs * 1e6,
                421.7, 5.0);
}

// --- The thesis' summary claims (§6.10) ---------------------------------

TEST(Golden, SingleConversationLossIsSmall)
{
    const double t1 = solveLocal(Arch::I, 1, 0).throughputPerUs;
    const double t2 = solveLocal(Arch::II, 1, 0).throughputPerUs;
    const double loss = 1.0 - t2 / t1;
    EXPECT_GT(loss, 0.02);
    EXPECT_LT(loss, 0.15); // "this loss is very small (~10%)"
}

TEST(Golden, PartitionedBusGainsLittle)
{
    const double t3 = solveLocal(Arch::III, 4, 1710).throughputPerUs;
    const double t4 = solveLocal(Arch::IV, 4, 1710).throughputPerUs;
    EXPECT_GT(t4, t3);
    EXPECT_LT(t4 / t3, 1.05); // "not significantly better"
}

TEST(Golden, SmartBusGainOverUniprocessorAtModerateLoad)
{
    // EXPERIMENTS.md: up to ~1.8x architecture I at 4 conversations.
    const double t1 = solveLocal(Arch::I, 4, 1140).throughputPerUs;
    const double t3 = solveLocal(Arch::III, 4, 1140).throughputPerUs;
    EXPECT_GT(t3 / t1, 1.6);
    EXPECT_LT(t3 / t1, 2.2);
}

// --- Model-vs-simulator validation (Figure 6.15) ------------------------

TEST(Golden, ValidationAgreementWithinTenPercent)
{
    const NonlocalSolution m = solveNonlocalCustom(
        validationClientParams(), validationServerParams(), 2, 2850.0,
        2);
    sim::Experiment e;
    e.arch = Arch::II;
    e.local = false;
    e.conversations = 2;
    e.computeUs = 2850;
    e.hostsPerNode = 2;
    e.extraCopy = true;
    e.measureUs = 3000000;
    const sim::Outcome o = sim::runExperiment(e);
    const double ratio =
        m.throughputPerUs * 1e6 / o.throughputPerSec;
    EXPECT_GT(ratio, 0.88);
    EXPECT_LT(ratio, 1.12);
}

} // namespace
