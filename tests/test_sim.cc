/**
 * @file
 * Tests for the event-driven kernel simulator: the DES core, the
 * processor/bus contention machinery, cost derivation, and end-to-end
 * agreement with hand analysis and the GTPN models.
 */

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <new>
#include <thread>
#include <utility>

#include <gtest/gtest.h>

#include "core/models/solution.hh"
#include "sim/des/event_queue.hh"
#include "sim/des/resource.hh"
#include "sim/kernel/ipc_sim.hh"
#include "sim/node/costs.hh"
#include "sim/runner/sweep_runner.hh"
#include "sim/node/processor.hh"
#include "sim/node/token_ring.hh"

/**
 * Global allocation counter backing the zero-steady-state-allocation
 * guarantees of the event queue (EventCallback inline storage and the
 * spill pool).  Replacing the global allocation functions is the only
 * way to observe every heap allocation; counting is relaxed-atomic so
 * the override stays safe under any threading.
 */
static std::atomic<std::size_t> g_heapAllocs{0};

// GCC pairs the replaced operator delete's free() against operator
// new at inlined call sites and warns, even though the replaced new
// allocates with malloc — matched in fact.
#pragma GCC diagnostic push
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

void *
operator new(std::size_t n)
{
    g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
    if (void *p = std::malloc(n ? n : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t n)
{
    return ::operator new(n);
}

// The nothrow forms must be replaced alongside the throwing ones:
// libstdc++'s std::get_temporary_buffer (stable_sort's scratch) uses
// nothrow new, and pairing the runtime's nothrow new with this file's
// free()-based delete is an alloc-dealloc mismatch under ASan.
void *
operator new(std::size_t n, const std::nothrow_t &) noexcept
{
    g_heapAllocs.fetch_add(1, std::memory_order_relaxed);
    return std::malloc(n ? n : 1);
}

void *
operator new[](std::size_t n, const std::nothrow_t &t) noexcept
{
    return ::operator new(n, t);
}

void
operator delete(void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, const std::nothrow_t &) noexcept
{
    std::free(p);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

#pragma GCC diagnostic pop

namespace
{

using namespace hsipc;
using namespace hsipc::sim;
using models::Arch;

TEST(EventQueue, OrdersByTimeThenFifo)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(10, [&]() { order.push_back(2); });
    eq.schedule(5, [&]() { order.push_back(1); });
    eq.schedule(10, [&]() { order.push_back(3); }); // same time: FIFO
    while (eq.runOne()) {}
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 10);
}

TEST(EventQueue, RunUntilAdvancesClock)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(100, [&]() { ++fired; });
    eq.schedule(900, [&]() { ++fired; });
    eq.runUntil(500);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.now(), 500);
    eq.runUntil(1000);
    EXPECT_EQ(fired, 2);
}

TEST(EventQueue, NestedScheduling)
{
    EventQueue eq;
    int depth = 0;
    eq.schedule(1, [&]() {
        eq.scheduleAfter(1, [&]() {
            eq.scheduleAfter(1, [&]() { depth = 3; });
        });
    });
    eq.runUntil(10);
    EXPECT_EQ(depth, 3);
    EXPECT_EQ(eq.now(), 10);
}

TEST(Resource, SerializesHolders)
{
    EventQueue eq;
    Resource bus(eq, "bus");
    std::vector<Tick> releases;
    for (int i = 0; i < 3; ++i)
        bus.acquire(0, 10, [&]() { releases.push_back(eq.now()); });
    eq.runUntil(100);
    EXPECT_EQ(releases, (std::vector<Tick>{10, 20, 30}));
    EXPECT_NEAR(bus.utilization(), 0.3, 1e-9);
}

TEST(Resource, PriorityJumpsQueue)
{
    EventQueue eq;
    Resource bus(eq, "bus");
    std::vector<int> order;
    bus.acquire(0, 10, [&]() { order.push_back(0); });
    bus.acquire(0, 10, [&]() { order.push_back(1); });
    bus.acquire(1, 10, [&]() { order.push_back(2); }); // urgent
    eq.runUntil(100);
    // Holder 0 was already granted; the urgent request overtakes 1.
    EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(Processor, RunsActivitySerially)
{
    EventQueue eq;
    Processor p(eq, "p");
    Tick done_a = 0, done_b = 0;
    Activity a;
    a.name = "a";
    a.processing = 100;
    a.onDone = [&]() { done_a = eq.now(); };
    Activity b;
    b.name = "b";
    b.processing = 50;
    b.onDone = [&]() { done_b = eq.now(); };
    p.submit(std::move(a));
    p.submit(std::move(b));
    eq.runUntil(1000);
    EXPECT_EQ(done_a, 100);
    EXPECT_EQ(done_b, 150);
    EXPECT_TRUE(p.idle());
}

TEST(Processor, MemoryAccessesAddBusTime)
{
    EventQueue eq;
    Resource bus(eq, "bus");
    Processor p(eq, "p");
    Tick done = 0;
    Activity a;
    a.name = "a";
    a.processing = usToTicks(100);
    a.memAccesses = 20;
    a.bus = &bus;
    a.onDone = [&]() { done = eq.now(); };
    p.submit(std::move(a));
    eq.runUntil(usToTicks(1000));
    // Uncontended: 100 us CPU + 20 us of memory cycles.
    EXPECT_EQ(done, usToTicks(120));
}

TEST(Processor, ContentionStretchesActivities)
{
    EventQueue eq;
    Resource bus(eq, "bus");
    Processor p1(eq, "p1"), p2(eq, "p2");
    Tick done1 = 0, done2 = 0;
    auto mk = [&](Tick *out) {
        Activity a;
        a.name = "x";
        a.processing = usToTicks(100);
        a.memAccesses = 100;
        a.bus = &bus;
        a.onDone = [&eq, out]() { *out = eq.now(); };
        return a;
    };
    p1.submit(mk(&done1));
    p2.submit(mk(&done2));
    eq.runUntil(usToTicks(10000));
    // Alone each would take 200 us; sharing the bus stretches both.
    EXPECT_GT(done1, usToTicks(200));
    EXPECT_GT(done2, usToTicks(200));
    EXPECT_LT(done1, usToTicks(310));
}

TEST(Processor, InterruptPreemptsAtChunkBoundary)
{
    EventQueue eq;
    Resource bus(eq, "bus");
    Processor p(eq, "p");
    Tick task_done = 0, intr_done = 0;

    Activity task;
    task.name = "task";
    task.processing = usToTicks(1000);
    task.memAccesses = 99; // 100 chunks of ~10 us
    task.bus = &bus;
    task.onDone = [&]() { task_done = eq.now(); };
    p.submit(std::move(task));

    eq.runUntil(usToTicks(50));
    Activity intr;
    intr.name = "intr";
    intr.processing = usToTicks(200);
    intr.priority = prioInterrupt;
    intr.onDone = [&]() { intr_done = eq.now(); };
    p.submit(std::move(intr));

    eq.runUntil(usToTicks(10000));
    // The interrupt finished long before the task despite arriving
    // while the task was running.
    EXPECT_LT(intr_done, usToTicks(300));
    EXPECT_GT(task_done, intr_done + usToTicks(700));
}

TEST(Costs, DerivedFromStepTables)
{
    const IpcCosts c1 = ipcCosts(Arch::I, true);
    EXPECT_FALSE(c1.coproc);
    EXPECT_DOUBLE_EQ(c1.sendSyscall.procUs, 1040);
    EXPECT_EQ(c1.sendSyscall.tcb, 150);
    EXPECT_FALSE(c1.processSend.valid());

    const IpcCosts c2 = ipcCosts(Arch::II, false);
    EXPECT_TRUE(c2.coproc);
    EXPECT_DOUBLE_EQ(c2.processSend.procUs, 1000);
    EXPECT_DOUBLE_EQ(c2.match.procUs, 1650);
    EXPECT_DOUBLE_EQ(c2.dmaInReq.procUs, 200);

    const IpcCosts c4 = ipcCosts(Arch::IV, false);
    EXPECT_EQ(c4.processSend.kb, 50);
    EXPECT_EQ(c4.processSend.tcb, 21);
}

TEST(IpcSim, SingleLocalConversationMatchesHandAnalysis)
{
    // Arch I, one local conversation, X=0: the round trip is the
    // serialized 4970 us of Table 6.4.
    Experiment e;
    e.arch = Arch::I;
    e.local = true;
    e.conversations = 1;
    e.computeUs = 0;
    const Outcome o = runExperiment(e);
    EXPECT_GT(o.roundTrips, 100);
    EXPECT_NEAR(o.meanRoundTripUs, 4970.0, 4970.0 * 0.02);
    EXPECT_NEAR(o.throughputPerSec, 1e6 / 4970.0, 1e6 / 4970.0 * 0.02);
}

TEST(IpcSim, ComputeTimeSlowsThroughput)
{
    Experiment e;
    e.arch = Arch::II;
    e.local = true;
    e.conversations = 2;
    e.computeUs = 0;
    const double t0 = runExperiment(e).throughputPerSec;
    e.computeUs = 5700;
    const double t1 = runExperiment(e).throughputPerSec;
    EXPECT_LT(t1, t0 * 0.8);
}

TEST(IpcSim, CoprocessorHelpsUnderManyConversations)
{
    Experiment e;
    e.local = true;
    e.conversations = 4;
    e.computeUs = 2850;
    e.arch = Arch::I;
    const double uni = runExperiment(e).throughputPerSec;
    e.arch = Arch::II;
    const double cop = runExperiment(e).throughputPerSec;
    e.arch = Arch::III;
    const double smart = runExperiment(e).throughputPerSec;
    EXPECT_GT(cop, uni * 1.1);
    EXPECT_GT(smart, cop);
}

TEST(IpcSim, NonlocalConversationCompletes)
{
    Experiment e;
    e.arch = Arch::II;
    e.local = false;
    e.conversations = 2;
    e.computeUs = 1140;
    const Outcome o = runExperiment(e);
    EXPECT_GT(o.roundTrips, 50);
    EXPECT_GT(o.throughputPerSec, 0);
    // Round trip must exceed the sum of client-side work.
    EXPECT_GT(o.meanRoundTripUs, 3000);
}

TEST(IpcSim, AgreesWithGtpnModelLocal)
{
    // The model-vs-simulation comparison at the heart of Fig 6.15:
    // for local arch II the two should land within ~15%.
    Experiment e;
    e.arch = Arch::II;
    e.local = true;
    e.conversations = 2;
    e.computeUs = 1140;
    const Outcome o = runExperiment(e);

    const models::LocalSolution m =
        models::solveLocal(Arch::II, 2, 1140.0);
    const double model = m.throughputPerUs * 1e6;
    EXPECT_NEAR(o.throughputPerSec, model, model * 0.15);
}

TEST(IpcSim, BufferExhaustionStallsSends)
{
    Experiment e;
    e.arch = Arch::II;
    e.local = true;
    e.conversations = 4;
    e.kernelBuffers = 1; // only one in-flight send allowed
    const Outcome o = runExperiment(e);
    EXPECT_GT(o.bufferStalls, 0);
    EXPECT_GT(o.roundTrips, 10);
}

TEST(IpcSim, WireLatencyAddsToRoundTrip)
{
    Experiment e;
    e.arch = Arch::II;
    e.local = false;
    e.conversations = 1;
    e.wireUs = 0;
    const double rt0 = runExperiment(e).meanRoundTripUs;
    e.wireUs = 500;
    const double rt1 = runExperiment(e).meanRoundTripUs;
    EXPECT_NEAR(rt1 - rt0, 1000.0, 150.0); // two crossings
}

TEST(IpcSim, DeterministicForFixedSeed)
{
    Experiment e;
    e.arch = Arch::III;
    e.local = true;
    e.conversations = 3;
    e.computeUs = 1000;
    const Outcome a = runExperiment(e);
    const Outcome b = runExperiment(e);
    EXPECT_EQ(a.roundTrips, b.roundTrips);
    EXPECT_DOUBLE_EQ(a.meanRoundTripUs, b.meanRoundTripUs);
}

TEST(IpcSim, ValidationConfigurationRuns)
{
    Experiment e;
    e.arch = Arch::II;
    e.local = false;
    e.conversations = 2;
    e.hostsPerNode = 2;
    e.extraCopy = true;
    e.computeUs = 2850;
    const Outcome o = runExperiment(e);
    EXPECT_GT(o.roundTrips, 20);
}


// --- Token ring and extension features ----------------------------------

TEST(TokenRing, TransmitTimeMatchesRate)
{
    EventQueue eq;
    TokenRing::Config cfg;
    cfg.megabitsPerSec = 4.0;
    TokenRing ring(eq, cfg);
    // 48 bytes at 4 Mb/s = 96 us.
    EXPECT_EQ(ring.transmitTime(48), usToTicks(96));
}

// The ring model is station-count generic — the legacy two-node path
// uses 2 stations, the topology layer's bridged segments anything up
// to the segment size plus a router — so the medium tests run across
// the whole range instead of pinning one constant.
class TokenRingStations : public ::testing::TestWithParam<int>
{
};

TEST_P(TokenRingStations, SerializesTransmissions)
{
    const int n = GetParam();
    EventQueue eq;
    TokenRing::Config cfg;
    cfg.stations = n;
    TokenRing ring(eq, cfg);
    std::vector<Tick> deliveries;
    // One packet queued at once from every station to its neighbour.
    for (int s = 0; s < n; ++s)
        ring.send(s, (s + 1) % n, 48,
                  [&]() { deliveries.push_back(eq.now()); });
    eq.runUntil(usToTicks(100000));
    ASSERT_EQ(deliveries.size(), static_cast<std::size_t>(n));
    // One token, one transmission at a time: consecutive deliveries
    // are spaced by at least the serialization time.
    for (std::size_t i = 1; i < deliveries.size(); ++i)
        EXPECT_GE(deliveries[i] - deliveries[i - 1],
                  ring.transmitTime(48));
    EXPECT_EQ(ring.packetCount(), n);
    EXPECT_GT(ring.utilization(), 0.0);
}

TEST_P(TokenRingStations, HopsWrapAroundTheRing)
{
    const int n = GetParam();
    EventQueue eq;
    TokenRing::Config cfg;
    cfg.stations = n;
    TokenRing ring(eq, cfg);
    for (int from = 0; from < n; ++from) {
        EXPECT_EQ(ring.hops(from, from), 0);
        for (int to = 0; to < n; ++to) {
            if (to == from)
                continue;
            const int fwd = ring.hops(from, to);
            // Unidirectional ring: forward distance, and the two
            // directions together close the loop.
            EXPECT_EQ(fwd, (to - from + n) % n);
            EXPECT_GE(fwd, 1);
            EXPECT_LE(fwd, n - 1);
            EXPECT_EQ(fwd + ring.hops(to, from), n);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Rings, TokenRingStations,
                         ::testing::Values(2, 3, 4, 8, 16));

TEST(IpcSim, TokenRingCostsThroughput)
{
    Experiment e;
    e.arch = Arch::II;
    e.local = false;
    e.conversations = 4;
    e.computeUs = 0;
    const Outcome ideal = runExperiment(e);
    e.useTokenRing = true;
    e.ringMbps = 4.0;
    const Outcome ring = runExperiment(e);
    EXPECT_LT(ring.throughputPerSec, ideal.throughputPerSec);
    EXPECT_GT(ring.ringUtil, 0.0);
    // At 4 Mb/s the ring is far from saturated (§6.6.4).
    EXPECT_LT(ring.ringUtil, 0.5);
    // A very slow ring becomes the bottleneck (0.1 Mb/s carries at
    // most ~130 round trips/sec for two 48-byte packets each).
    e.ringMbps = 0.1;
    const Outcome slow = runExperiment(e);
    EXPECT_LT(slow.throughputPerSec, ring.throughputPerSec * 0.8);
}

TEST(IpcSim, FasterMpRaisesThroughput)
{
    Experiment e;
    e.arch = Arch::II;
    e.local = true;
    e.conversations = 4;
    e.computeUs = 0;
    const double base = runExperiment(e).throughputPerSec;
    e.mpSpeedFactor = 2.0;
    const double fast = runExperiment(e).throughputPerSec;
    EXPECT_GT(fast, base * 1.5);
}

TEST(IpcSim, ArchIVUsesBothBusPartitions)
{
    Experiment e;
    e.arch = Arch::IV;
    e.local = true;
    e.conversations = 3;
    e.computeUs = 570;
    const Outcome o = runExperiment(e);
    EXPECT_GT(o.roundTrips, 50);
}

// Parameterized ordering sweep: III >= II at max load for any
// conversation count, local and non-local.
class ArchOrdering
    : public ::testing::TestWithParam<std::tuple<int, bool>>
{
};

TEST_P(ArchOrdering, SmartBusNeverLoses)
{
    const auto [n, local] = GetParam();
    Experiment e;
    e.local = local;
    e.conversations = n;
    e.computeUs = 0;
    e.measureUs = 800000;
    e.arch = Arch::II;
    const double t2 = runExperiment(e).throughputPerSec;
    e.arch = Arch::III;
    const double t3 = runExperiment(e).throughputPerSec;
    EXPECT_GT(t3, t2 * 1.05) << "n=" << n << " local=" << local;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ArchOrdering,
    ::testing::Combine(::testing::Values(1, 2, 3, 4),
                       ::testing::Values(true, false)));


TEST(IpcSim, RoundTripPercentilesAreOrdered)
{
    Experiment e;
    e.arch = Arch::II;
    e.local = true;
    e.conversations = 3;
    e.computeUs = 1710; // uniform 0.5X..1.5X spreads the distribution
    const Outcome o = runExperiment(e);
    EXPECT_GT(o.rtP50Us, 0.0);
    EXPECT_GE(o.rtP95Us, o.rtP50Us);
    EXPECT_GE(o.meanRoundTripUs, o.rtP50Us * 0.5);
    EXPECT_LE(o.meanRoundTripUs, o.rtP95Us);
}


TEST(IpcSim, ActivityProfileMatchesStepTable)
{
    // At one uncontended conversation every activity's measured time
    // per round trip equals its step-table cost ("Best" column).
    Experiment e;
    e.arch = Arch::II;
    e.local = true;
    e.conversations = 1;
    e.computeUs = 0;
    const Outcome o = runExperiment(e);
    const IpcCosts c = ipcCosts(Arch::II, true);
    auto at = [&](const char *n) {
        auto it = o.activityUsPerRoundTrip.find(n);
        return it == o.activityUsPerRoundTrip.end() ? -1.0 : it->second;
    };
    EXPECT_NEAR(at("sendSyscall"),
                c.sendSyscall.procUs + c.sendSyscall.tcb, 6.0);
    EXPECT_NEAR(at("processSend"),
                c.processSend.procUs + c.processSend.tcb, 12.0);
    EXPECT_NEAR(at("match"), c.match.procUs + c.match.tcb, 14.0);
    EXPECT_NEAR(at("processReply"),
                c.processReply.procUs + c.processReply.tcb, 14.0);
}


// --- Mixed workloads (beyond the thesis' models, §6.6.3) -----------------

TEST(IpcSimMixed, AllLocalMatchesClassicLocalPerNode)
{
    // 2 local conversations on each of two nodes should roughly
    // double one node's 2-conversation throughput.
    Experiment classic;
    classic.arch = Arch::II;
    classic.local = true;
    classic.conversations = 2;
    classic.computeUs = 1710;
    const double one_node =
        runExperiment(classic).throughputPerSec;

    Experiment mixed;
    mixed.arch = Arch::II;
    mixed.mixedLocal = 4; // interleaved 2 + 2 over the two nodes
    mixed.computeUs = 1710;
    const double two_nodes = runExperiment(mixed).throughputPerSec;
    EXPECT_NEAR(two_nodes, 2.0 * one_node, 2.0 * one_node * 0.06);
}

TEST(IpcSimMixed, AllRemoteMatchesClassicNonlocalShape)
{
    // Mixed mode with only remote pairs differs from the classic
    // non-local split (clients spread over BOTH nodes instead of all
    // on one), so both directions of the wire carry requests; the
    // symmetric layout can only help.
    Experiment classic;
    classic.arch = Arch::II;
    classic.local = false;
    classic.conversations = 4;
    classic.computeUs = 1710;
    const double one_way = runExperiment(classic).throughputPerSec;

    Experiment mixed;
    mixed.arch = Arch::II;
    mixed.mixedRemote = 4;
    mixed.computeUs = 1710;
    const double two_way = runExperiment(mixed).throughputPerSec;
    EXPECT_GT(two_way, one_way * 0.95);
}

TEST(IpcSimMixed, RemoteTrafficSlowsLocalConversations)
{
    // The thesis' premise: local and non-local requests share the
    // same kernel resources.  Adding cross-node traffic must cost
    // the local conversations throughput.
    Experiment pure;
    pure.arch = Arch::II;
    pure.mixedLocal = 2;
    pure.computeUs = 1710;
    const Outcome p = runExperiment(pure);

    Experiment mixed = pure;
    mixed.mixedRemote = 2;
    const Outcome m = runExperiment(mixed);
    // More total conversations -> more total throughput...
    EXPECT_GT(m.throughputPerSec, p.throughputPerSec);
    // ...but longer round trips than the uncontended local-only run.
    EXPECT_GT(m.meanRoundTripUs, p.meanRoundTripUs);
}

TEST(IpcSimMixed, DeterministicAndCountsAllConversations)
{
    Experiment e;
    e.arch = Arch::III;
    e.mixedLocal = 2;
    e.mixedRemote = 2;
    e.computeUs = 570;
    const Outcome a = runExperiment(e);
    const Outcome b = runExperiment(e);
    EXPECT_EQ(a.roundTrips, b.roundTrips);
    EXPECT_GT(a.roundTrips, 100);
}


TEST(Processor, CountsSubmittedActivities)
{
    EventQueue eq;
    Processor p(eq, "p");
    for (int i = 0; i < 3; ++i) {
        Activity a;
        a.name = "work";
        a.processing = 10;
        p.submit(std::move(a));
    }
    eq.runUntil(1000);
    EXPECT_EQ(p.activityCounts().at("work"), 3);
}

TEST(IpcSim, BufferPoolExhaustionAndRecovery)
{
    // Eight senders against a single kernel buffer: sends must stall,
    // yet the simulation keeps making progress as each completed
    // round trip frees the buffer for a waiter.
    Experiment starved;
    starved.arch = Arch::II;
    starved.local = true;
    starved.conversations = 8;
    starved.computeUs = 570;
    starved.kernelBuffers = 1;
    const Outcome s = runExperiment(starved);
    EXPECT_GT(s.bufferStalls, 0);
    EXPECT_GT(s.roundTrips, 50);

    // With the pool restored the stalls vanish and throughput
    // recovers beyond the starved run's.
    Experiment roomy = starved;
    roomy.kernelBuffers = 64;
    const Outcome r = runExperiment(roomy);
    EXPECT_EQ(r.bufferStalls, 0);
    EXPECT_GT(r.throughputPerSec, s.throughputPerSec);
}

TEST(IpcSimValidation, RejectsImpossibleConfigurations)
{
    Experiment e;
    e.packetBytes = 0;
    EXPECT_DEATH(runExperiment(e), "packetBytes");
    e = Experiment{};
    e.computeUs = -1;
    EXPECT_DEATH(runExperiment(e), "computeUs");
    e = Experiment{};
    e.kernelBuffers = 0;
    EXPECT_DEATH(runExperiment(e), "kernel buffer");
    e = Experiment{};
    e.mpSpeedFactor = 0;
    EXPECT_DEATH(runExperiment(e), "mpSpeedFactor");
    e = Experiment{};
    e.lossRate = 1.5;
    EXPECT_DEATH(runExperiment(e), "probabilities");
    e = Experiment{};
    e.retransmitWindow = 0;
    EXPECT_DEATH(runExperiment(e), "retransmitWindow");
    e = Experiment{};
    e.crashSchedule.push_back({0, 500, 100}); // ends before it starts
    EXPECT_DEATH(runExperiment(e), "well-formed");
}


// --- Unreliable medium and the reliability stack -------------------------

TEST(IpcSimLossy, FaultFreeRunBypassesTheStack)
{
    Experiment e;
    e.arch = Arch::II;
    e.local = false;
    e.conversations = 2;
    e.computeUs = 1140;
    const Outcome o = runExperiment(e);
    EXPECT_EQ(o.retransmissions, 0);
    EXPECT_EQ(o.timeoutsFired, 0);
    EXPECT_EQ(o.faultDrops, 0);
    EXPECT_DOUBLE_EQ(o.netThroughputPktsPerSec, 0.0);
    EXPECT_DOUBLE_EQ(o.protoHostUsPerRt, 0.0);
    EXPECT_DOUBLE_EQ(o.protoMpUsPerRt, 0.0);
}

TEST(IpcSimLossy, ProtocolWithoutFaultsIsLossless)
{
    // Forcing the protocol over a clean medium costs processing but
    // never retransmits: wire throughput equals goodput.
    Experiment e;
    e.arch = Arch::II;
    e.local = false;
    e.conversations = 2;
    e.computeUs = 1140;
    const Outcome ideal = runExperiment(e);
    e.reliableProtocol = true;
    const Outcome o = runExperiment(e);
    EXPECT_EQ(o.retransmissions, 0);
    EXPECT_EQ(o.duplicatesDropped, 0);
    EXPECT_GT(o.netThroughputPktsPerSec, 0.0);
    EXPECT_DOUBLE_EQ(o.netThroughputPktsPerSec,
                     o.netGoodputPktsPerSec);
    // The protocol's processing shows up as longer round trips.
    EXPECT_GT(o.meanRoundTripUs, ideal.meanRoundTripUs);
    EXPECT_GT(o.protoMpUsPerRt, 0.0);
}

TEST(IpcSimLossy, PacketLossRetransmitsAndCompletes)
{
    // The acceptance scenario: 1% loss, fixed seed.  The run
    // completes, retransmits, and goodput trails wire throughput.
    Experiment e;
    e.arch = Arch::II;
    e.local = false;
    e.conversations = 2;
    e.computeUs = 1140;
    e.lossRate = 0.01;
    const Outcome o = runExperiment(e);
    EXPECT_GT(o.roundTrips, 100);
    EXPECT_GT(o.retransmissions, 0);
    EXPECT_GT(o.timeoutsFired, 0);
    EXPECT_GT(o.faultDrops, 0);
    EXPECT_LT(o.netGoodputPktsPerSec, o.netThroughputPktsPerSec);
}

TEST(IpcSimLossy, DeterministicForFixedSeed)
{
    Experiment e;
    e.arch = Arch::III;
    e.local = false;
    e.conversations = 3;
    e.computeUs = 1140;
    e.lossRate = 0.02;
    e.duplicateRate = 0.01;
    e.corruptRate = 0.005;
    e.reorderRate = 0.01;
    const Outcome a = runExperiment(e);
    const Outcome b = runExperiment(e);
    EXPECT_EQ(a.roundTrips, b.roundTrips);
    EXPECT_DOUBLE_EQ(a.meanRoundTripUs, b.meanRoundTripUs);
    EXPECT_EQ(a.retransmissions, b.retransmissions);
    EXPECT_EQ(a.duplicatesDropped, b.duplicatesDropped);
    EXPECT_EQ(a.corruptDiscarded, b.corruptDiscarded);
    EXPECT_EQ(a.faultDrops, b.faultDrops);
}

TEST(IpcSimLossy, WhoPaysDependsOnArchitecture)
{
    // The thesis' point made measurable: under Architecture I the
    // host pays for retransmission processing; under II-IV the MP
    // absorbs it and the host pays nothing.
    Experiment e;
    e.local = false;
    e.conversations = 2;
    e.computeUs = 1140;
    e.lossRate = 0.02;
    e.arch = Arch::I;
    const Outcome uni = runExperiment(e);
    EXPECT_GT(uni.protoHostUsPerRt, 0.0);
    EXPECT_DOUBLE_EQ(uni.protoMpUsPerRt, 0.0);
    e.arch = Arch::II;
    const Outcome cop = runExperiment(e);
    EXPECT_DOUBLE_EQ(cop.protoHostUsPerRt, 0.0);
    EXPECT_GT(cop.protoMpUsPerRt, 0.0);
}

TEST(IpcSimLossy, DuplicationAndCorruptionAreCountedAndSurvived)
{
    Experiment e;
    e.arch = Arch::II;
    e.local = false;
    e.conversations = 2;
    e.computeUs = 1140;
    e.duplicateRate = 0.05;
    e.corruptRate = 0.02;
    const Outcome o = runExperiment(e);
    EXPECT_GT(o.roundTrips, 100);
    EXPECT_GT(o.duplicatesDropped, 0);
    EXPECT_GT(o.corruptDiscarded, 0);
}

TEST(IpcSimLossy, LossyTokenRingAlsoRecovers)
{
    // The injector applies uniformly to both media: the same loss
    // rate over the explicit token ring still completes round trips.
    Experiment e;
    e.arch = Arch::II;
    e.local = false;
    e.conversations = 2;
    e.computeUs = 1140;
    e.useTokenRing = true;
    e.lossRate = 0.02;
    const Outcome o = runExperiment(e);
    EXPECT_GT(o.roundTrips, 100);
    EXPECT_GT(o.retransmissions, 0);
    EXPECT_GT(o.ringUtil, 0.0);
}

TEST(IpcSimCrash, NodeOutageIsRecoveredFrom)
{
    // Node 1 (the server node) drops off the network for 200 ms in
    // the middle of the measurement window.  The protocol's
    // retransmissions carry the workload across the outage, and the
    // time to the first completed round trip after the window closes
    // is reported as the recovery time.
    Experiment e;
    e.arch = Arch::II;
    e.local = false;
    e.conversations = 2;
    e.computeUs = 1140;
    e.crashSchedule.push_back({1, 300000, 500000});
    const Outcome o = runExperiment(e);
    EXPECT_GT(o.roundTrips, 50);
    EXPECT_GT(o.retransmissions, 0);
    EXPECT_GT(o.crashDrops, 0);
    EXPECT_EQ(o.crashWindowsRecovered, 1);
    EXPECT_GT(o.meanRecoveryUs, 0.0);
    // Recovery is bounded by the backoff ceiling plus a round trip.
    EXPECT_LT(o.meanRecoveryUs, 100000.0);

    // The same run without the outage completes strictly more work.
    Experiment clean = e;
    clean.crashSchedule.clear();
    clean.reliableProtocol = true;
    const Outcome c = runExperiment(clean);
    EXPECT_GT(c.roundTrips, o.roundTrips);
    EXPECT_EQ(c.crashWindowsRecovered, 0);
}

TEST(IpcSimLossy, MpArchitectureDegradesMoreGracefully)
{
    // The bench's headline in miniature: with servers doing realistic
    // computation, 2% loss costs the uniprocessor the most, because
    // the host that is already the bottleneck must also pay for the
    // reliability stack and every retransmission.  The more protocol
    // work an architecture keeps off the host (II: MP on the shared
    // bus; III: MP behind a smart bus), the more of its ideal-medium
    // throughput it retains.
    auto retained = [](Arch a) {
        Experiment e;
        e.arch = a;
        e.local = false;
        e.conversations = 4;
        e.computeUs = 2850;
        const double ideal = runExperiment(e).throughputPerSec;
        e.reliableProtocol = true;
        e.lossRate = 0.02;
        const double lossy = runExperiment(e).throughputPerSec;
        return lossy / ideal;
    };
    const double archI = retained(Arch::I);
    const double archII = retained(Arch::II);
    const double archIII = retained(Arch::III);
    EXPECT_GT(archII, archI + 0.03);
    EXPECT_GT(archIII, archII + 0.03);
}

TEST(IpcSimMixed, PerKindBreakdownSumsToTotal)
{
    Experiment e;
    e.arch = Arch::II;
    e.mixedLocal = 2;
    e.mixedRemote = 2;
    e.computeUs = 1140;
    const Outcome o = runExperiment(e);
    EXPECT_NEAR(o.localThroughputPerSec + o.remoteThroughputPerSec,
                o.throughputPerSec, o.throughputPerSec * 1e-6);
    // Remote round trips are longer than local ones.
    EXPECT_GT(o.remoteMeanRtUs, o.localMeanRtUs);
}

/**
 * A self-rescheduling event with a capture of `Pad` extra bytes —
 * the simulator's steady-state shape.  Runs the queue until
 * `remaining` reschedules have happened, then lets it drain.
 */
template <std::size_t Pad> struct SelfSched
{
    EventQueue *q;
    std::uint64_t *remaining;
    unsigned char pad[Pad] = {};

    void
    operator()()
    {
        if (*remaining > 0) {
            --*remaining;
            q->scheduleAfter(10, SelfSched(*this));
        }
    }
};

template <std::size_t Pad>
std::size_t
allocationsDuringSteadyState(int fanout, std::uint64_t warmup,
                             std::uint64_t measured,
                             QueueKind kind = QueueKind::Heap,
                             std::size_t reserveHint = 0)
{
    EventQueue eq(kind, reserveHint);
    std::uint64_t remaining = warmup;
    for (int i = 0; i < fanout; ++i)
        eq.scheduleAfter(i, SelfSched<Pad>{&eq, &remaining});
    // Warm up: backing vector growth, pool fills, etc.
    while (remaining > 0)
        eq.runOne();

    // Measure while the event population is steady; the final drain
    // (every conversation dying at once) parks a burst of spill
    // blocks and legitimately grows the free list.
    remaining = measured;
    const std::size_t before =
        g_heapAllocs.load(std::memory_order_relaxed);
    while (remaining > 0)
        eq.runOne();
    const std::size_t after =
        g_heapAllocs.load(std::memory_order_relaxed);
    while (eq.runOne()) {}
    return after - before;
}

TEST(EventQueue, InlineCapturesNeverAllocateInSteadyState)
{
    // 24-byte capture: inline in EventCallback's 48-byte buffer.
    static_assert(sizeof(SelfSched<8>) <=
                  EventCallback::inlineCapacity);
    EXPECT_EQ(allocationsDuringSteadyState<8>(32, 1000, 20000), 0u);
}

TEST(EventQueue, MaxInlineCapturesNeverAllocateInSteadyState)
{
    // Exactly at the 48-byte boundary.
    static_assert(sizeof(SelfSched<32>) ==
                  EventCallback::inlineCapacity);
    EXPECT_EQ(allocationsDuringSteadyState<32>(32, 1000, 20000), 0u);
}

TEST(EventQueue, SpilledCapturesReusePooledBlocksWithoutAllocating)
{
    // 88-byte capture: spills to the per-thread pool; after warmup
    // every block is recycled, so the steady state allocates nothing.
    static_assert(sizeof(SelfSched<64>) >
                  EventCallback::inlineCapacity);
    static_assert(sizeof(SelfSched<64>) <=
                  detail::SpillPool::blockSize);
    EXPECT_EQ(allocationsDuringSteadyState<64>(32, 1000, 20000), 0u);
    EXPECT_GT(detail::SpillPool::instance().freeBlocks(), 0u);
}

TEST(EventQueue, ProfilerAtDefaultsKeepsSteadyStateAllocationFree)
{
    // The engine profiler at its default 1-in-1024 sampling must not
    // reintroduce steady-state allocations: counters are plain
    // increments, and the quantile sketches only allocate when a
    // sample opens a *new* bucket.  The simulated-time sketches
    // stabilize during warmup; the wall-clock sketch can always meet
    // a scheduling outlier that opens a fresh bucket, so the pin
    // retries a few times and requires one clean measured phase.
    obs::EngineProfiler prof; // defaultSampleShift
    prof.beginRun();
    EventQueue eq;
    eq.attachProfiler(&prof);

    std::uint64_t remaining = 300000; // ~293 wall samples of warmup
    for (int i = 0; i < 32; ++i)
        eq.scheduleAfter(i, SelfSched<8>{&eq, &remaining});
    while (remaining > 0)
        eq.runOne();

    bool clean = false;
    for (int attempt = 0; attempt < 12 && !clean; ++attempt) {
        remaining = 20000;
        const std::size_t before =
            g_heapAllocs.load(std::memory_order_relaxed);
        while (remaining > 0)
            eq.runOne();
        const std::size_t after =
            g_heapAllocs.load(std::memory_order_relaxed);
        clean = after == before;
    }
    EXPECT_TRUE(clean)
        << "profiled steady state allocated on every attempt";
    while (eq.runOne()) {}
    prof.finishRun(eq.size());
    EXPECT_GT(prof.profile().sampledEvents, 0u);
    EXPECT_EQ(prof.profile().pushes,
              prof.profile().pops + prof.profile().remainingAtEnd);
}

/**
 * A callable of exactly `Bytes` bytes (alignment 1, so sizeof does
 * not round up) that counts invocations and destructions — probes the
 * storage-tier boundaries of EventCallback precisely.
 */
template <std::size_t Bytes> struct SizedCapture
{
    static_assert(Bytes >= 2 * sizeof(int *));
    // The pointers live memcpy'd into a byte array so the struct has
    // alignment 1 and sizeof is exactly Bytes — pointer members would
    // round odd sizes up to a multiple of 8 and miss the boundary.
    unsigned char raw[Bytes];

    SizedCapture(int *invoked, int *destroyed) : raw{}
    {
        std::memcpy(raw, &invoked, sizeof invoked);
        std::memcpy(raw + sizeof(int *), &destroyed,
                    sizeof destroyed);
    }
    SizedCapture(SizedCapture &&o) noexcept
    {
        std::memcpy(raw, o.raw, Bytes);
        int *none = nullptr; // moved-from shell must not count
        std::memcpy(o.raw + sizeof(int *), &none, sizeof none);
    }
    ~SizedCapture()
    {
        int *destroyed;
        std::memcpy(&destroyed, raw + sizeof(int *),
                    sizeof destroyed);
        if (destroyed)
            ++*destroyed;
    }
    void
    operator()()
    {
        int *invoked;
        std::memcpy(&invoked, raw, sizeof invoked);
        ++*invoked;
    }
};

/**
 * Construct, invoke, and destroy an EventCallback holding a
 * `Bytes`-sized capture; return the heap allocations the callback
 * itself performed (the spill block, if any).
 */
template <std::size_t Bytes>
std::size_t
allocationsForOneCallback(int &invoked, int &destroyed)
{
    const std::size_t before =
        g_heapAllocs.load(std::memory_order_relaxed);
    {
        EventCallback cb(SizedCapture<Bytes>{&invoked, &destroyed});
        cb();
    }
    return g_heapAllocs.load(std::memory_order_relaxed) - before;
}

TEST(EventCallback, InlineBoundaryIsExactlyInlineCapacity)
{
    static_assert(sizeof(SizedCapture<47>) == 47);
    static_assert(sizeof(SizedCapture<48>) == 48);
    static_assert(sizeof(SizedCapture<49>) == 49);

    int invoked = 0, destroyed = 0;
    // 47 and 48 bytes: inline, zero allocations.
    EXPECT_EQ(allocationsForOneCallback<47>(invoked, destroyed), 0u);
    EXPECT_EQ(allocationsForOneCallback<48>(invoked, destroyed), 0u);
    EXPECT_EQ(invoked, 2);
    EXPECT_EQ(destroyed, 2);

    // 49 bytes: one byte over — spills.  Warm the pool once (the
    // free-list vector itself allocates on first growth), then drain
    // it so the next spill is forced to allocate a fresh block.
    auto &pool = detail::SpillPool::instance();
    allocationsForOneCallback<49>(invoked, destroyed);
    while (pool.freeBlocks() > 0)
        ::operator delete(pool.alloc());
    EXPECT_EQ(allocationsForOneCallback<49>(invoked, destroyed), 1u);
    EXPECT_EQ(invoked, 4);
    EXPECT_EQ(destroyed, 4);
    // The block was parked on the free list, not freed: a second
    // 49-byte spill recycles it and allocates nothing.
    EXPECT_EQ(pool.freeBlocks(), 1u);
    EXPECT_EQ(allocationsForOneCallback<49>(invoked, destroyed), 0u);
    EXPECT_EQ(pool.freeBlocks(), 1u);
}

TEST(EventCallback, SpillPoolBoundaryIsExactlyBlockSize)
{
    static_assert(detail::SpillPool::blockSize == 256);
    static_assert(sizeof(SizedCapture<256>) == 256);
    static_assert(sizeof(SizedCapture<257>) == 257);

    auto &pool = detail::SpillPool::instance();
    int invoked = 0, destroyed = 0;

    // 256 bytes fills a block exactly: pooled, recycled on destroy.
    allocationsForOneCallback<256>(invoked, destroyed);
    const std::size_t parked = pool.freeBlocks();
    EXPECT_GE(parked, 1u);
    EXPECT_EQ(allocationsForOneCallback<256>(invoked, destroyed), 0u);
    EXPECT_EQ(pool.freeBlocks(), parked);

    // 257 bytes exceeds a block: plain operator new, never pooled —
    // it allocates every time and leaves the free list alone.
    EXPECT_EQ(allocationsForOneCallback<257>(invoked, destroyed), 1u);
    EXPECT_EQ(allocationsForOneCallback<257>(invoked, destroyed), 1u);
    EXPECT_EQ(pool.freeBlocks(), parked);
    EXPECT_EQ(invoked, 4);
    EXPECT_EQ(destroyed, 4);
}

TEST(EventCallback, MovedFromSpilledCallbackReleasesNothing)
{
    auto &pool = detail::SpillPool::instance();
    int invoked = 0, destroyed = 0;

    EventCallback dst;
    const std::size_t parked = pool.freeBlocks();
    {
        EventCallback src(SizedCapture<64>{&invoked, &destroyed});
        dst = std::move(src);
        // src leaves scope holding nothing: the block must not come
        // back to the pool while dst still owns the target.
    }
    EXPECT_EQ(pool.freeBlocks(),
              parked == 0 ? 0 : parked - 1); // block in use by dst
    EXPECT_EQ(destroyed, 0);
    dst();
    EXPECT_EQ(invoked, 1);
    dst = EventCallback(); // destroys the target, parks the block
    EXPECT_EQ(destroyed, 1);
    EXPECT_GE(pool.freeBlocks(), 1u);
}

TEST(EventCallback, SpilledBlockParksOnTheDestroyingThreadsPool)
{
    // The pool is thread-local: a spilled callback destroyed on
    // another thread parks its block on *that* thread's free list and
    // leaves this thread's list untouched.
    auto &pool = detail::SpillPool::instance();
    int invoked = 0, destroyed = 0;
    EventCallback cb(SizedCapture<64>{&invoked, &destroyed});
    const std::size_t parkedHere = pool.freeBlocks();

    std::size_t parkedThere = 0;
    std::thread([&] {
        EventCallback mine(std::move(cb));
        mine();
        mine = EventCallback();
        parkedThere = detail::SpillPool::instance().freeBlocks();
    }).join();

    EXPECT_EQ(invoked, 1);
    EXPECT_EQ(destroyed, 1);
    EXPECT_EQ(parkedThere, 1u);
    EXPECT_EQ(pool.freeBlocks(), parkedHere);
}

// --- Pending-event-set policies (heap vs ladder) -------------------------
//
// (when, seq) is a strict total order, so ANY correct priority queue
// pops the identical sequence.  These tests drive adversarial
// timestamp distributions through both policies and require the exact
// same pop order — plus ladder-only structural guarantees (FIFO under
// storms, allocation-free steady state, reservation hints).

/** Tiny deterministic generator for adversarial event mixes. */
struct Lcg
{
    std::uint64_t s;

    std::uint64_t
    next()
    {
        s = s * 6364136223846793005ull + 1442695040888963407ull;
        return s >> 33;
    }
};

/**
 * Run a self-sustaining chain workload: @p starters initial events,
 * each fired event recording its id and scheduling the next until
 * @p total have been spawned, with delays drawn from @p delays by a
 * deterministic LCG.  Returns the ids in pop (execution) order.
 */
struct ChainDriver
{
    EventQueue eq;
    Lcg rng;
    const std::vector<Tick> &delays;
    long total;
    long spawned = 0;
    std::vector<long> order;

    ChainDriver(QueueKind kind, std::uint64_t seed,
                const std::vector<Tick> &delays, long total)
        : eq(kind), rng{seed}, delays(delays), total(total)
    {}

    void
    fire(long id)
    {
        order.push_back(id);
        if (spawned < total) {
            const long mine = spawned++;
            const Tick d = delays[static_cast<std::size_t>(
                rng.next() % delays.size())];
            eq.scheduleAfter(d, [this, mine]() { fire(mine); });
        }
    }

    std::vector<long>
    run(int starters)
    {
        for (int i = 0; i < starters && spawned < total; ++i) {
            const long mine = spawned++;
            eq.schedule(rng.next() % 50,
                        [this, mine]() { fire(mine); });
        }
        while (eq.runOne()) {}
        EXPECT_EQ(static_cast<long>(order.size()), total);
        return order;
    }
};

std::vector<long>
chainOrder(QueueKind kind, std::uint64_t seed,
           const std::vector<Tick> &delays, long total,
           int starters = 32)
{
    ChainDriver d(kind, seed, delays, total);
    return d.run(starters);
}

TEST(LadderQueue, FifoStormPopsInArrivalOrder)
{
    // 10k simultaneous events: the ladder's Bottom fast path (a fresh
    // seq sorts last) must preserve exact FIFO order.
    EventQueue eq(QueueKind::Ladder);
    std::vector<int> order;
    for (int i = 0; i < 10000; ++i)
        eq.schedule(42, [&order, i]() { order.push_back(i); });
    while (eq.runOne()) {}
    ASSERT_EQ(order.size(), 10000u);
    for (int i = 0; i < 10000; ++i)
        ASSERT_EQ(order[static_cast<std::size_t>(i)], i);
    EXPECT_EQ(eq.now(), 42);
}

TEST(LadderQueue, StrictlyMonotoneArrivalsMatchHeap)
{
    const std::vector<Tick> delays{1, 2, 3, 5, 8};
    EXPECT_EQ(chainOrder(QueueKind::Heap, 7, delays, 20000),
              chainOrder(QueueKind::Ladder, 7, delays, 20000));
}

TEST(LadderQueue, BimodalFarNearMixMatchesHeap)
{
    // Near events land in Bottom/low rungs while far ones pile into
    // Top — the distribution that exercises Top transfers and rung
    // spawning hardest.
    const std::vector<Tick> delays{0,      1,      2,      7,
                                   100000, 250000, 999983, 1000000};
    EXPECT_EQ(chainOrder(QueueKind::Heap, 11, delays, 30000),
              chainOrder(QueueKind::Ladder, 11, delays, 30000));
}

TEST(LadderQueue, ZeroDelaySelfReschedulesMatchHeapAndStayFifo)
{
    // Heavy zero-delay traffic: events scheduled *at* the current
    // instant must run this instant, after everything already queued
    // for it (FIFO), on both policies.
    const std::vector<Tick> delays{0, 0, 0, 1, 0, 0, 3, 0};
    const auto heap = chainOrder(QueueKind::Heap, 13, delays, 20000);
    const auto ladder =
        chainOrder(QueueKind::Ladder, 13, delays, 20000);
    EXPECT_EQ(heap, ladder);
}

TEST(LadderQueue, RandomizedMixMatchesHeapPopForPop)
{
    // A broad tie-heavy mix over several seeds: the differential that
    // pins the exact pop sequence, not just final state.
    const std::vector<Tick> delays{0,   1,    1,     4,    16,
                                   64,  256,  1024,  4096, 16384,
                                   7777, 100000, 0,   1};
    for (std::uint64_t seed : {1u, 2u, 3u, 1987u}) {
        EXPECT_EQ(chainOrder(QueueKind::Heap, seed, delays, 25000),
                  chainOrder(QueueKind::Ladder, seed, delays, 25000))
            << "diverged at seed " << seed;
    }
}

TEST(LadderQueue, PlantedTiebreakReversalBreaksFifo)
{
    // The fuzz drill's plant: with the reversed tiebreak, same-time
    // events pop LIFO on the ladder — the divergence the queue.*
    // differential family exists to catch.
    EventQueue eq(QueueKind::Ladder);
    eq.plantLadderMisorderTiebreak();
    std::vector<int> order;
    for (int i = 0; i < 4; ++i)
        eq.schedule(5, [&order, i]() { order.push_back(i); });
    while (eq.runOne()) {}
    EXPECT_EQ(order, (std::vector<int>{3, 2, 1, 0}));
}

TEST(EventQueue, BatchCommitEqualsSequentialScheduling)
{
    // A committed batch must be indistinguishable — tie for tie —
    // from the same schedule() calls made directly, on both policies.
    // 21 staged events also force two overflow flushes of the 8-slot
    // staging array.
    for (QueueKind kind : {QueueKind::Heap, QueueKind::Ladder}) {
        EventQueue direct(kind);
        EventQueue batched(kind);
        std::vector<int> directOrder, batchedOrder;
        const Tick whens[21] = {9, 3, 9, 9, 1, 500000, 9,
                                3, 2, 9, 9, 9, 3,      70000,
                                9, 1, 9, 9, 2, 9,      9};
        for (int i = 0; i < 21; ++i)
            direct.schedule(whens[i], [&directOrder, i]() {
                directOrder.push_back(i);
            });
        {
            auto batch = batched.scheduleBatch();
            for (int i = 0; i < 21; ++i)
                batch.schedule(whens[i], [&batchedOrder, i]() {
                    batchedOrder.push_back(i);
                });
            // Destructor commits the remainder.
        }
        EXPECT_EQ(direct.size(), batched.size());
        while (direct.runOne()) {}
        while (batched.runOne()) {}
        EXPECT_EQ(directOrder, batchedOrder)
            << "kind " << static_cast<int>(kind);
    }
}

TEST(EventQueue, BatchInterleavesWithDirectSchedulingInStagingOrder)
{
    // An explicit commit() fences staged events before later direct
    // schedules — the order-preservation contract the simulator's
    // fan-out sites rely on.
    EventQueue eq;
    std::vector<int> order;
    auto batch = eq.scheduleBatch();
    batch.schedule(10, [&order]() { order.push_back(0); });
    batch.schedule(10, [&order]() { order.push_back(1); });
    batch.commit();
    eq.schedule(10, [&order]() { order.push_back(2); });
    batch.schedule(10, [&order]() { order.push_back(3); });
    batch.commit();
    while (eq.runOne()) {}
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

TEST(LadderQueue, SteadyStateIsAllocationFreeAtHighPendingCounts)
{
    // 4096 pending self-rescheduling events: after warmup the ladder
    // recycles rungs, Bottom, Top, and (through the spare-block
    // pool) bucket storage — zero heap allocations across 100k
    // steady-state events.  Warmup must outlast the entire first
    // sweep of the initial stagger: until the consume point passes
    // tick 4095, unfired initial events keep joining the live
    // window, so the population — and with it each marching
    // bucket's high-water block — grows for the whole sweep.  The
    // sweep ends near 4096^2/20 = 840k events (each live event
    // fires once per 10 ticks); past it the population is a fixed
    // 10-tick lockstep window and the pool circulates existing
    // blocks forever.
    EXPECT_EQ(allocationsDuringSteadyState<8>(4096, 900000, 100000,
                                              QueueKind::Ladder,
                                              8192),
              0u);
}

TEST(LadderQueue, SteadyStateIsAllocationFreeWithoutReserveHint)
{
    // Same pin with the default reservation: warmup pays the growth,
    // the measured phase must not.  The first-sweep horizon (see the
    // high-pending pin above) is 1024^2/20 = 52k events here.
    EXPECT_EQ(allocationsDuringSteadyState<8>(1024, 80000, 60000,
                                              QueueKind::Ladder, 0),
              0u);
}

TEST(EventQueue, ReserveHintMakesPrescheduleAllocationFree)
{
    // Satellite regression for the hard-coded-1024 capacity: with an
    // adequate Experiment hint, scheduling a high pending-event
    // population allocates nothing at all — on either policy — while
    // the unhinted queue must pay growth reallocations for the same
    // load.
    constexpr int n = 16384;
    for (QueueKind kind : {QueueKind::Heap, QueueKind::Ladder}) {
        EventQueue hinted(kind, n);
        std::size_t before =
            g_heapAllocs.load(std::memory_order_relaxed);
        for (int i = 0; i < n; ++i)
            hinted.schedule(i % 977, []() {});
        EXPECT_EQ(g_heapAllocs.load(std::memory_order_relaxed) -
                      before,
                  0u)
            << "hinted kind " << static_cast<int>(kind);

        EventQueue unhinted(kind);
        before = g_heapAllocs.load(std::memory_order_relaxed);
        for (int i = 0; i < n; ++i)
            unhinted.schedule(i % 977, []() {});
        EXPECT_GT(g_heapAllocs.load(std::memory_order_relaxed) -
                      before,
                  0u)
            << "unhinted kind " << static_cast<int>(kind);
        while (hinted.runOne()) {}
        while (unhinted.runOne()) {}
    }
}

TEST(IpcSim, QueueKindDoesNotChangeOutcomes)
{
    // End-to-end: a faulty, decomposed, profiled two-node run must
    // produce the identical outcome under either pending-event-set
    // policy.  (The fuzz oracle pins this across the whole knob
    // surface; this is the deterministic smoke version.)
    Experiment exp;
    exp.arch = Arch::III;
    exp.local = false;
    exp.conversations = 4;
    exp.lossRate = 0.1;
    exp.duplicateRate = 0.1;
    exp.reorderRate = 0.1;
    exp.retransmitTimeoutUs = 2000;
    exp.decomposeLatency = true;
    exp.engineProfile = true;
    exp.warmupUs = 2000;
    exp.measureUs = 20000;
    exp.queueKind = 0;
    const Outcome heap = runExperiment(exp);
    exp.queueKind = 1;
    exp.expectedPendingEvents = 2048;
    const Outcome ladder = runExperiment(exp);
    EXPECT_EQ(outcomeJson(heap), outcomeJson(ladder));
}

} // namespace
