/**
 * @file
 * Tests of the end-to-end RPC robustness layer (sim/kernel +
 * sim/check): strict pay-for-use bypass pinned bit-exactly per
 * architecture, open-arrival offered load, deadline expiry and
 * orphaned replies, retry recovery under loss with at-most-once
 * semantics, bounded-queue shedding and graceful degradation past
 * the overload knee, cost placement on the communication processor,
 * ledger conservation over fuzzed configurations — and the
 * acceptance drill: a planted completion-count off-by-one is caught
 * by the rpc conservation oracle, shrunk to a small repro, and
 * replayed from JSON.
 */

#include <cstdint>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/check/experiment_json.hh"
#include "sim/check/generator.hh"
#include "sim/check/invariants.hh"
#include "sim/check/shrink.hh"
#include "sim/check/test_hooks.hh"
#include "sim/kernel/ipc_sim.hh"

namespace
{

using namespace hsipc;
using namespace hsipc::sim;
using namespace hsipc::sim::check;

/** The classic closed-loop remote workload used for the bypass pins. */
Experiment
pinConfig(models::Arch arch)
{
    Experiment e;
    e.arch = arch;
    e.local = false;
    e.conversations = 3;
    e.computeUs = 500;
    e.warmupUs = 2000;
    e.measureUs = 40000;
    e.seed = 11;
    return e;
}

/**
 * Open-arrival overload at a two-server node: computeUs dominates so
 * the service host — not the client's send path — is the bottleneck,
 * and kernelBuffers is large so admission control, not client-side
 * buffer exhaustion, decides the outcome.
 */
Experiment
overloadConfig(models::Arch arch, double ratePerSec)
{
    Experiment e;
    e.arch = arch;
    e.local = false;
    e.conversations = 2; // server pool
    e.computeUs = 6000;
    e.kernelBuffers = 64;
    e.warmupUs = 20000;
    e.measureUs = 400000;
    e.seed = 42;
    e.arrivalMode = 1;
    e.arrivalRatePerSec = ratePerSec;
    return e;
}

void
expectClean(const Experiment &e, const Outcome &o)
{
    const std::vector<Violation> v = checkOutcome(e, o);
    EXPECT_TRUE(v.empty()) << formatViolations(v);
}

TEST(RpcRobustness, DefaultsBypassTheLayerBitExactly)
{
    EXPECT_FALSE(robustnessEnabled(Experiment{}));

    // Pinned values harvested from the pre-robustness simulator: with
    // every robustness knob at its default the layer must not perturb
    // a single tick.
    struct Pin {
        models::Arch arch;
        long roundTrips;
        double meanRtUs;
        double throughput;
    };
    const Pin pins[] = {
        {models::Arch::I, 8, 13632.526625, 200},
        {models::Arch::II, 9, 11063.785555555556, 225},
        {models::Arch::III, 14, 8352.9799999999996, 350},
        {models::Arch::IV, 14, 8310.8781428571419, 350},
    };
    for (const Pin &p : pins) {
        const Experiment e = pinConfig(p.arch);
        const Outcome o = runExperiment(e);
        EXPECT_EQ(o.roundTrips, p.roundTrips) << "arch " << int(p.arch);
        EXPECT_EQ(o.meanRoundTripUs, p.meanRtUs) << "arch " << int(p.arch);
        EXPECT_EQ(o.throughputPerSec, p.throughput) << "arch " << int(p.arch);

        // The disposition ledger stays identically zero.
        EXPECT_EQ(o.rpc.offered, 0);
        EXPECT_EQ(o.rpc.attempts, 0);
        EXPECT_EQ(o.rpc.completed, 0);
        EXPECT_EQ(o.rpc.shedAttempts, 0);
        EXPECT_EQ(o.rpc.goodputPerSec, 0.0);
        EXPECT_EQ(o.rpcHostUsPerRt, 0.0);
        EXPECT_EQ(o.rpcMpUsPerRt, 0.0);
        expectClean(e, o);
    }
}

TEST(RpcRobustness, OpenArrivalsTrackTheOfferedRate)
{
    for (int mode : {1, 2}) {
        Experiment e = overloadConfig(models::Arch::III, 100);
        e.arrivalMode = mode;
        if (mode == 2) {
            e.paretoAlpha = 1.5;
            e.paretoBound = 40;
        }
        const Outcome o = runExperiment(e);
        // ~40 post-warmup arrivals expected at 100/s over 0.4 s; both
        // processes are normalized to the same mean rate.
        EXPECT_GE(o.rpc.offered, 20) << "mode " << mode;
        EXPECT_LE(o.rpc.offered, 70) << "mode " << mode;
        EXPECT_GT(o.rpc.completed, 0) << "mode " << mode;
        EXPECT_GT(o.rpc.goodputPerSec, 0.0) << "mode " << mode;
        expectClean(e, o);
    }
}

TEST(RpcRobustness, DeadlinesExpireOverloadedRequestsAndOrphanLateReplies)
{
    // 2x the service capacity with a deadline but no admission
    // control: the queue grows without bound, served requests have
    // already expired, and their replies come back to nobody.
    Experiment e = overloadConfig(models::Arch::III, 250);
    e.deadlineUs = 40000;
    const Outcome o = runExperiment(e);
    EXPECT_GT(o.rpc.expired, 0);
    EXPECT_GT(o.rpc.orphanedReplies, 0);
    EXPECT_LT(o.rpc.completed, o.rpc.expired);
    expectClean(e, o);
}

TEST(RpcRobustness, RetriesRecoverLossWithAtMostOnceSemantics)
{
    // A lossy closed loop with a backoff longer than the round trip:
    // lost requests are retried, duplicate arrivals are suppressed,
    // lost replies are replayed from the at-most-once cache, and the
    // superseded attempts' late replies are discarded as orphans.
    Experiment e;
    e.arch = models::Arch::III;
    e.local = false;
    e.conversations = 3;
    e.computeUs = 500;
    e.kernelBuffers = 8;
    e.warmupUs = 5000;
    e.measureUs = 250000;
    e.seed = 11;
    e.lossRate = 0.25;
    e.retryBudget = 3;
    e.retryBackoffUs = 12000;
    e.retryBackoffMaxUs = 48000;
    const Outcome o = runExperiment(e);
    EXPECT_GT(o.rpc.retries, 0);
    EXPECT_GT(o.rpc.duplicatesSuppressed, 0);
    EXPECT_GT(o.rpc.replyReplays, 0);
    EXPECT_GT(o.rpc.orphanedReplies, 0);
    EXPECT_GT(o.rpc.completed, 20);
    // Nothing stalled client-side here, so every request sent at
    // least once and each retry is exactly one extra attempt.
    EXPECT_EQ(o.rpc.attempts, o.rpc.offered + o.rpc.retries);
    expectClean(e, o);
}

TEST(RpcRobustness, BoundedQueuesShedUnderOverload)
{
    // With neither deadline nor retries a shed attempt is terminal
    // for its request: the reject-new policy must produce terminally
    // shed requests while admitted ones still complete.
    Experiment reject = overloadConfig(models::Arch::III, 250);
    reject.svcQueueCap = 4;
    reject.shedPolicy = 0;
    const Outcome o = runExperiment(reject);
    EXPECT_GT(o.rpc.shed, 0);
    EXPECT_GT(o.rpc.completed, 0);
    EXPECT_EQ(o.rpc.shed, o.rpc.shedAttempts);
    expectClean(reject, o);

    // Under bursty (bounded-Pareto) overload with deadlines, every
    // policy sheds, and the deadline-aware policy keeps several
    // times the goodput of reject-new, which wastes service on
    // queue entries that expire while waiting.
    double goodput[3];
    for (int pol : {0, 1, 2}) {
        Experiment e = overloadConfig(models::Arch::III, 250);
        e.arrivalMode = 2;
        e.paretoAlpha = 1.5;
        e.paretoBound = 40;
        e.deadlineUs = 40000;
        e.svcQueueCap = 4;
        e.shedPolicy = pol;
        const Outcome po = runExperiment(e);
        EXPECT_GT(po.rpc.shedAttempts, 0) << "policy " << pol;
        goodput[pol] = po.rpc.goodputPerSec;
        expectClean(e, po);
    }
    EXPECT_GT(goodput[2], 2.0 * goodput[0]);
}

TEST(RpcRobustness, DeadlineAwareSheddingKeepsGoodputPastTheKnee)
{
    // 2x capacity, deadline 40 ms.  Without admission control the
    // goodput collapses; with a small bounded queue and deadline-
    // aware shedding it stays near the service capacity.
    Experiment naked = overloadConfig(models::Arch::III, 250);
    naked.deadlineUs = 40000;
    const Outcome on = runExperiment(naked);

    Experiment guarded = naked;
    guarded.svcQueueCap = 2;
    guarded.shedPolicy = 2;
    const Outcome og = runExperiment(guarded);

    EXPECT_GT(og.rpc.goodputPerSec, 4.0 * on.rpc.goodputPerSec);
    EXPECT_GT(og.rpc.goodputPerSec, 80.0); // near the ~120/s capacity
    expectClean(naked, on);
    expectClean(guarded, og);
}

TEST(RpcRobustness, BookkeepingIsChargedToTheCommProcessor)
{
    // Robustness bookkeeping is kernel work: the host pays on
    // Architecture I, the message processor on II-IV.
    for (models::Arch arch : {models::Arch::I, models::Arch::III}) {
        Experiment e;
        e.arch = arch;
        e.local = false;
        e.conversations = 3;
        e.computeUs = 500;
        e.kernelBuffers = 8;
        e.warmupUs = 5000;
        e.measureUs = 120000;
        e.seed = 5;
        e.deadlineUs = 60000;
        e.retryBudget = 1;
        e.retryBackoffUs = 20000;
        e.retryBackoffMaxUs = 80000;
        const Outcome o = runExperiment(e);
        ASSERT_GT(o.rpc.completed, 0) << "arch " << int(arch);
        if (arch == models::Arch::I) {
            EXPECT_GT(o.rpcHostUsPerRt, 0.0);
            EXPECT_EQ(o.rpcMpUsPerRt, 0.0);
        } else {
            EXPECT_EQ(o.rpcHostUsPerRt, 0.0);
            EXPECT_GT(o.rpcMpUsPerRt, 0.0);
        }
        expectClean(e, o);
    }
}

TEST(RpcRobustness, FuzzedRobustConfigsKeepTheLedgerBalanced)
{
    const ExperimentGenerator gen(3);
    int robustDraws = 0;
    for (std::uint64_t i = 0; i < 60 && robustDraws < 25; ++i) {
        const Experiment e = gen.generate(i);
        if (!robustnessEnabled(e))
            continue;
        ++robustDraws;
        const std::vector<Violation> v =
            checkOutcome(e, runExperiment(e));
        EXPECT_TRUE(v.empty())
            << "generator index " << i << "\n" << formatViolations(v);
    }
    EXPECT_GE(robustDraws, 10);
}

TEST(RpcRobustness, PlantedCompletionMiscountIsCaughtShrunkAndReplayable)
{
    // A small robust config with completions: healthy first.
    Experiment failing;
    failing.arch = models::Arch::III;
    failing.local = false;
    failing.conversations = 3;
    failing.computeUs = 500;
    failing.warmupUs = 5000;
    failing.measureUs = 120000;
    failing.seed = 5;
    failing.deadlineUs = 60000;
    failing.retryBudget = 1;
    failing.retryBackoffUs = 20000;
    failing.retryBackoffMaxUs = 80000;
    EXPECT_TRUE(checkOutcome(failing, runExperiment(failing)).empty());

    ScopedTestHooks guard;
    testHooks().rpcCompletionMiscount = 1;

    // The rpc conservation oracle catches the planted off-by-one.
    const std::vector<Violation> caught =
        checkOutcome(failing, runExperiment(failing));
    ASSERT_FALSE(caught.empty());
    std::set<std::string> ids;
    for (const Violation &v : caught)
        ids.insert(v.invariant);
    EXPECT_TRUE(ids.count("rpc.conservation"))
        << formatViolations(caught);

    // Shrinking anchored to the caught invariants reaches a minimal
    // repro of at most 5 knobs.
    const ShrinkResult shrunk = shrinkExperiment(
        failing, [&ids](const Experiment &cand) {
            for (const Violation &v :
                 checkOutcome(cand, runExperiment(cand)))
                if (ids.count(v.invariant))
                    return true;
            return false;
        });
    EXPECT_LE(shrunk.knobsChanged, 5)
        << "minimal repro still has knobs: " << [&] {
               std::string s;
               for (const std::string &k : knobDiff(shrunk.minimal))
                   s += k + " ";
               return s;
           }();

    // The repro JSON round-trips and still reproduces the violation.
    const Experiment replayed =
        experimentFromJsonText(experimentToJson(shrunk.minimal));
    EXPECT_TRUE(replayed == shrunk.minimal);
    bool stillCaught = false;
    for (const Violation &v :
         checkOutcome(replayed, runExperiment(replayed)))
        stillCaught |= ids.count(v.invariant) > 0;
    EXPECT_TRUE(stillCaught);

    // With the planted bug removed the same repro runs clean.
    testHooks().rpcCompletionMiscount = 0;
    EXPECT_TRUE(
        checkOutcome(replayed, runExperiment(replayed)).empty());
}

} // namespace
