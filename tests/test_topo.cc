/**
 * @file
 * Tests of the N-node topology layer (sim/topo): the degenerate
 * two-node topology is byte-identical to the legacy two-node path on
 * every architecture (with and without faults or the reliable
 * protocol), placement policies land conversations where specified,
 * every topology kind keeps the per-link/per-router flow-conservation
 * ledger balanced, and the ledger itself behaves (pay-for-use when
 * off, replicated bit-exactly across queue policies).
 */

#include <cstdint>
#include <set>
#include <string>
#include <utility>

#include <gtest/gtest.h>

#include "sim/check/invariants.hh"
#include "sim/kernel/ipc_sim.hh"
#include "sim/runner/sweep_runner.hh"
#include "sim/topo/topology.hh"

namespace
{

using namespace hsipc;
using namespace hsipc::sim;

/** The classic two-node remote workload the topology must subsume. */
Experiment
legacyRemote(int arch)
{
    Experiment e;
    e.arch = static_cast<models::Arch>(arch);
    e.local = false;
    e.conversations = 2;
    e.computeUs = 200;
    e.wireUs = 150;
    e.warmupUs = 2000;
    e.measureUs = 20000;
    e.seed = 99 + static_cast<std::uint64_t>(arch);
    return e;
}

/** The same workload expressed as a degenerate 2-node topology. */
Experiment
degenerate(const Experiment &legacy)
{
    Experiment e = legacy;
    e.topo.nodes = 2;
    e.topo.kind = 0; // point-to-point mesh
    e.topo.linkLatencyUs = legacy.wireUs;
    e.topo.placement = 0; // classic: every conversation is 0 -> 1
    return e;
}

TEST(TopoDegenerate, TwoNodeMeshMatchesLegacyBytesOnEveryArch)
{
    for (int arch = 1; arch <= 4; ++arch) {
        const Experiment legacy = legacyRemote(arch);
        const Experiment two = degenerate(legacy);
        EXPECT_EQ(outcomeJson(runExperiment(legacy)),
                  outcomeJson(runExperiment(two)))
            << "arch " << arch;
    }
}

TEST(TopoDegenerate, MatchesLegacyUnderFaults)
{
    for (int arch = 1; arch <= 4; ++arch) {
        Experiment legacy = legacyRemote(arch);
        legacy.lossRate = 0.1;
        legacy.corruptRate = 0.05;
        legacy.duplicateRate = 0.05;
        legacy.retransmitTimeoutUs = 2000;
        const Experiment two = degenerate(legacy);
        EXPECT_EQ(outcomeJson(runExperiment(legacy)),
                  outcomeJson(runExperiment(two)))
            << "arch " << arch;
    }
}

TEST(TopoDegenerate, MatchesLegacyWithTheReliableProtocol)
{
    for (int arch = 1; arch <= 4; ++arch) {
        Experiment legacy = legacyRemote(arch);
        legacy.reliableProtocol = true;
        const Experiment two = degenerate(legacy);
        EXPECT_EQ(outcomeJson(runExperiment(legacy)),
                  outcomeJson(runExperiment(two)))
            << "arch " << arch;
    }
}

TEST(TopoDegenerate, MatchesLegacyEngineProfileDeterministically)
{
    // The fabric reuses the legacy "wire" profiler origin, so even
    // the lookahead graph of the degenerate topology matches.  The
    // one line excluded is callback storage: the fabric's wrapper
    // captures link bookkeeping around the kernel's delivery
    // callback, so a handful of wire callbacks spill to the heap
    // that fit inline on the legacy path — an allocator internal,
    // not an event-stream observable.
    const auto stripCallbacks = [](std::string json) {
        const std::size_t from = json.find("\"callbacks\"");
        const std::size_t to = json.find('\n', from);
        if (from != std::string::npos && to != std::string::npos)
            json.erase(from, to - from);
        return json;
    };
    Experiment legacy = legacyRemote(2);
    legacy.engineProfile = true;
    const Experiment two = degenerate(legacy);
    const Outcome a = runExperiment(legacy);
    const Outcome b = runExperiment(two);
    EXPECT_EQ(outcomeJson(a), outcomeJson(b));
    EXPECT_EQ(stripCallbacks(a.engineProfile.deterministicJson()),
              stripCallbacks(b.engineProfile.deterministicJson()));
}

TEST(TopoLedger, IsEmptyWithoutATopology)
{
    const Experiment legacy = legacyRemote(1);
    const Outcome out = runExperiment(legacy);
    EXPECT_FALSE(out.topo.enabled);
    EXPECT_TRUE(out.topo.links.empty());
    EXPECT_TRUE(out.topo.routers.empty());
    EXPECT_NE(topoJson(out).find("\"enabled\": false"),
              std::string::npos);
}

TEST(TopoLedger, DegenerateMeshBooksEveryMessageOnItsLink)
{
    const Outcome out = runExperiment(degenerate(legacyRemote(1)));
    ASSERT_TRUE(out.topo.enabled);
    ASSERT_EQ(out.topo.links.size(), 2u); // n0->n1 and n1->n0
    EXPECT_TRUE(out.topo.routers.empty());
    EXPECT_EQ(out.topo.links[0].name, "n0->n1");
    EXPECT_EQ(out.topo.links[1].name, "n1->n0");
    for (const topo::LinkLedger &l : out.topo.links) {
        EXPECT_GT(l.msgsIn, 0) << l.name;
        EXPECT_EQ(l.msgsIn,
                  l.msgsOut + l.dropped + l.inFlightAtEnd)
            << l.name;
        EXPECT_GT(l.bytesIn, 0) << l.name;
    }
    // Requests flow 0 -> 1 and replies 1 -> 0, one for one (up to
    // whatever is in flight when the horizon closes).
    EXPECT_NEAR(static_cast<double>(out.topo.links[0].msgsIn),
                static_cast<double>(out.topo.links[1].msgsIn), 2.0);
}

TEST(TopoPlacement, PoliciesLandWhereSpecified)
{
    topo::Topology t;
    t.nodes = 8;

    t.placement = 1; // round-robin
    for (long i = 0; i < 16; ++i) {
        const auto [c, s] = topo::placeConversation(t, i, 7);
        EXPECT_EQ(c, static_cast<int>(i % 8));
        EXPECT_EQ(s, static_cast<int>((i + 1) % 8));
    }

    t.placement = 2; // locality: client and server colocated
    for (long i = 0; i < 16; ++i) {
        const auto [c, s] = topo::placeConversation(t, i, 7);
        EXPECT_EQ(c, s);
        EXPECT_EQ(c, static_cast<int>(i % 8));
    }

    t.placement = 0; // classic: everything talks to node 1
    for (long i = 0; i < 16; ++i) {
        const auto [c, s] = topo::placeConversation(t, i, 7);
        EXPECT_EQ(c, 0);
        EXPECT_EQ(s, 1);
    }
}

TEST(TopoPlacement, HotSpotSkewsTowardLowNodesDeterministically)
{
    topo::Topology t;
    t.nodes = 8;
    t.placement = 3;
    t.zipfSkew = 1.2;
    long hits[8] = {0};
    for (long i = 0; i < 4000; ++i) {
        const auto [c, s] = topo::placeConversation(t, i, 11);
        ASSERT_GE(s, 0);
        ASSERT_LT(s, 8);
        ++hits[s];
        // Same seed, same index: the draw is pure.
        const auto again = topo::placeConversation(t, i, 11);
        EXPECT_EQ(again.first, c);
        EXPECT_EQ(again.second, s);
    }
    // Zipf mass concentrates on the first server node.
    EXPECT_GT(hits[0], hits[7] * 2);
}

TEST(TopoRun, EveryKindKeepsTheOracleGreen)
{
    for (int kind : {0, 1, 2}) {
        for (int nodes : {2, 4, 8}) {
            Experiment e;
            e.warmupUs = 1000;
            e.measureUs = 8000;
            e.computeUs = 100;
            e.conversations = nodes;
            e.seed = static_cast<std::uint64_t>(97 * nodes + kind);
            e.topo.nodes = nodes;
            e.topo.kind = kind;
            e.topo.linkLatencyUs = 30;
            e.topo.switchLatencyUs = 5;
            e.topo.segments = 2;
            e.topo.placement = 1;
            const Outcome out = runExperiment(e);
            const auto v = check::checkOutcome(e, out);
            EXPECT_TRUE(v.empty())
                << "kind " << kind << " nodes " << nodes << ":\n"
                << check::formatViolations(v);
            ASSERT_TRUE(out.topo.enabled);
            EXPECT_GT(out.roundTrips, 0)
                << "kind " << kind << " nodes " << nodes;
        }
    }
}

TEST(TopoRun, StarRoutesEveryRemoteMessageThroughTheSwitch)
{
    Experiment e;
    e.warmupUs = 1000;
    e.measureUs = 8000;
    e.computeUs = 100;
    e.conversations = 4;
    e.topo.nodes = 4;
    e.topo.kind = 1;
    e.topo.linkLatencyUs = 20;
    e.topo.switchLatencyUs = 10;
    e.topo.placement = 1;
    const Outcome out = runExperiment(e);
    ASSERT_TRUE(out.topo.enabled);
    ASSERT_EQ(out.topo.routers.size(), 1u);
    const topo::RouterLedger &sw = out.topo.routers[0];
    EXPECT_EQ(sw.name, "sw");
    EXPECT_GT(sw.received, 0);
    EXPECT_EQ(sw.received,
              sw.forwarded + sw.dropped + sw.inFlightAtEnd);
    // Every ingress arrival reaches the switch.
    long ingressOut = 0;
    for (std::size_t i = 0; i < 4; ++i)
        ingressOut += out.topo.links[i].msgsOut;
    EXPECT_EQ(sw.received, ingressOut);
}

TEST(TopoRun, BridgedRingSegmentsCarryCrossTraffic)
{
    Experiment e;
    e.warmupUs = 1000;
    e.measureUs = 12000;
    e.computeUs = 100;
    e.conversations = 6;
    e.topo.nodes = 6;
    e.topo.kind = 2;
    e.topo.segments = 2;
    e.topo.segMbps = 8;
    e.topo.linkLatencyUs = 40;
    e.topo.switchLatencyUs = 5;
    e.topo.placement = 1; // node 2 -> node 3 crosses the bridge
    const Outcome out = runExperiment(e);
    ASSERT_TRUE(out.topo.enabled);
    // 2 ring links + 2 routers + 2 backbone links.
    ASSERT_EQ(out.topo.links.size(), 4u);
    ASSERT_EQ(out.topo.routers.size(), 2u);
    long backbone = 0;
    for (const topo::LinkLedger &l : out.topo.links)
        if (l.name.find("->") != std::string::npos)
            backbone += l.msgsIn;
    EXPECT_GT(backbone, 0) << "no cross-segment traffic bridged";
    for (const topo::RouterLedger &r : out.topo.routers)
        EXPECT_EQ(r.received,
                  r.forwarded + r.dropped + r.inFlightAtEnd)
            << r.name;
}

TEST(TopoRun, MeshLinkOverridesSlowNamedPairsOnly)
{
    Experiment base;
    base.warmupUs = 2000;
    // Long enough for several ~2 ms trips to finish on the slowed
    // link: a window shorter than one slow round trip would measure
    // zero completions and a meaningless mean of zero.
    base.measureUs = 80000;
    base.computeUs = 50;
    base.conversations = 2;
    base.topo.nodes = 2;
    base.topo.kind = 0;
    base.topo.linkLatencyUs = 10;
    base.topo.placement = 0;
    const Outcome fast = runExperiment(base);

    Experiment slowed = base;
    topo::TopoLink l;
    l.a = 0;
    l.b = 1;
    l.latencyUs = 2000; // request path crawls; reply path untouched
    slowed.topo.links.push_back(l);
    const Outcome slow = runExperiment(slowed);
    EXPECT_LT(slow.roundTrips, fast.roundTrips);
    EXPECT_GT(slow.meanRoundTripUs, fast.meanRoundTripUs);
}

TEST(TopoRun, NToNBitIdentityAcrossQueuePolicyAndJobs)
{
    // The jobs=1/N and heap/ladder identities extend to N-node runs,
    // ledger included (outcomeJson + topoJson both pinned).
    Experiment e;
    e.warmupUs = 1000;
    e.measureUs = 8000;
    e.computeUs = 120;
    e.conversations = 8;
    e.topo.nodes = 8;
    e.topo.kind = 1;
    e.topo.linkLatencyUs = 25;
    e.topo.switchLatencyUs = 8;
    e.topo.placement = 3;
    e.topo.zipfSkew = 1.3;
    check::OracleOptions opts;
    opts.checkTraceIdentity = true;
    opts.checkQueueKindIdentity = true;
    opts.parallelJobs = 3;
    const check::CheckResult res = check::checkedRun(e, opts);
    EXPECT_TRUE(res.ok()) << check::formatViolations(res.violations);
}

TEST(TopoRun, LocalityPlacementProducesLocalTraffic)
{
    Experiment e;
    e.warmupUs = 1000;
    e.measureUs = 8000;
    e.computeUs = 100;
    e.conversations = 4;
    e.topo.nodes = 4;
    e.topo.kind = 0;
    e.topo.linkLatencyUs = 30;
    e.topo.placement = 2; // colocated client/server on every node
    const Outcome out = runExperiment(e);
    EXPECT_GT(out.localThroughputPerSec, 0);
    EXPECT_EQ(out.remoteThroughputPerSec, 0);
    for (const topo::LinkLedger &l : out.topo.links)
        EXPECT_EQ(l.msgsIn, 0) << l.name << " used by local traffic";
}

} // namespace
