/**
 * @file
 * Tests for the smart bus: memory, queue primitives, Taub arbitration,
 * and edge-accurate transaction timing (chapter 5).
 */

#include <gtest/gtest.h>

#include <deque>

#include "bus/arbiter.hh"
#include "bus/memory.hh"
#include "bus/queue_ops.hh"
#include "bus/signals.hh"
#include "bus/smart_bus.hh"
#include "bus/timing.hh"
#include "common/rng.hh"

namespace
{

using namespace hsipc;
using namespace hsipc::bus;

TEST(SimMemory, WordAccessIsLittleEndian)
{
    SimMemory m(64);
    m.write16(10, 0xbeef);
    EXPECT_EQ(m.read8(10), 0xef);
    EXPECT_EQ(m.read8(11), 0xbe);
    EXPECT_EQ(m.read16(10), 0xbeef);
    m.write8(11, 0xde);
    EXPECT_EQ(m.read16(10), 0xdeef);
}

TEST(SimMemory, OutOfRangeAccessPanics)
{
    SimMemory m(16);
    EXPECT_DEATH(m.read16(15), "assert");
}

// --- Queue primitives ---------------------------------------------------

class QueueFixture : public ::testing::Test
{
  protected:
    QueueFixture() : mem(1024) {}

    static constexpr Addr list = 2; //!< tail-pointer word

    /** Element addresses (word 0 of each is its next pointer). */
    static constexpr Addr el(int i) { return static_cast<Addr>(16 + 16 * i); }

    SimMemory mem;
};

TEST_F(QueueFixture, EnqueueOnEmptyListSelfLinks)
{
    QueueOps::enqueue(mem, list, el(0));
    EXPECT_EQ(mem.read16(list), el(0));
    EXPECT_EQ(mem.read16(el(0)), el(0)); // circular self-link
    EXPECT_EQ(QueueOps::toVector(mem, list), std::vector<Addr>{el(0)});
}

TEST_F(QueueFixture, EnqueuePreservesFifoOrder)
{
    for (int i = 0; i < 4; ++i)
        QueueOps::enqueue(mem, list, el(i));
    EXPECT_EQ(QueueOps::toVector(mem, list),
              (std::vector<Addr>{el(0), el(1), el(2), el(3)}));
    EXPECT_EQ(mem.read16(list), el(3)); // list points at the tail
}

TEST_F(QueueFixture, FirstDequeuesInOrderUntilEmpty)
{
    for (int i = 0; i < 3; ++i)
        QueueOps::enqueue(mem, list, el(i));
    EXPECT_EQ(QueueOps::first(mem, list), el(0));
    EXPECT_EQ(QueueOps::first(mem, list), el(1));
    EXPECT_EQ(QueueOps::first(mem, list), el(2));
    EXPECT_EQ(mem.read16(list), nullAddr);
    EXPECT_EQ(QueueOps::first(mem, list), nullAddr); // stays empty
}

TEST_F(QueueFixture, DequeueHeadMiddleTail)
{
    for (int i = 0; i < 4; ++i)
        QueueOps::enqueue(mem, list, el(i));

    EXPECT_TRUE(QueueOps::dequeue(mem, list, el(2))); // middle
    EXPECT_EQ(QueueOps::toVector(mem, list),
              (std::vector<Addr>{el(0), el(1), el(3)}));

    EXPECT_TRUE(QueueOps::dequeue(mem, list, el(0))); // head
    EXPECT_EQ(QueueOps::toVector(mem, list),
              (std::vector<Addr>{el(1), el(3)}));

    EXPECT_TRUE(QueueOps::dequeue(mem, list, el(3))); // tail
    EXPECT_EQ(QueueOps::toVector(mem, list), std::vector<Addr>{el(1)});
    EXPECT_EQ(mem.read16(list), el(1)); // tail pointer updated
}

TEST_F(QueueFixture, DequeueSingletonEmptiesList)
{
    QueueOps::enqueue(mem, list, el(0));
    EXPECT_TRUE(QueueOps::dequeue(mem, list, el(0)));
    EXPECT_EQ(mem.read16(list), nullAddr);
}

TEST_F(QueueFixture, DequeueMissingElementIsNoOp)
{
    QueueOps::enqueue(mem, list, el(0));
    QueueOps::enqueue(mem, list, el(1));
    EXPECT_FALSE(QueueOps::dequeue(mem, list, el(5)));
    EXPECT_EQ(QueueOps::toVector(mem, list),
              (std::vector<Addr>{el(0), el(1)}));
    EXPECT_FALSE(QueueOps::dequeue(mem, SimMemory(16).size() ? 4 : 4,
                                   el(5))); // empty list no-op
}

/** Property sweep: random op sequences against a std::deque model. */
class QueueProperty : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(QueueProperty, MatchesDequeModel)
{
    SimMemory mem(4096);
    const Addr list = 2;
    Rng rng(GetParam());
    std::deque<Addr> model;
    std::vector<Addr> free_elems;
    for (int i = 0; i < 40; ++i)
        free_elems.push_back(static_cast<Addr>(64 + 16 * i));

    for (int step = 0; step < 600; ++step) {
        const int choice = static_cast<int>(rng.below(3));
        if (choice == 0 && !free_elems.empty()) {
            const Addr e = free_elems.back();
            free_elems.pop_back();
            QueueOps::enqueue(mem, list, e);
            model.push_back(e);
        } else if (choice == 1) {
            const Addr got = QueueOps::first(mem, list);
            if (model.empty()) {
                ASSERT_EQ(got, nullAddr);
            } else {
                ASSERT_EQ(got, model.front());
                model.pop_front();
                free_elems.push_back(got);
            }
        } else if (choice == 2 && !model.empty()) {
            const std::size_t k = rng.below(model.size());
            const Addr victim = model[k];
            ASSERT_TRUE(QueueOps::dequeue(mem, list, victim));
            model.erase(model.begin() + static_cast<long>(k));
            free_elems.push_back(victim);
        }
        ASSERT_EQ(QueueOps::toVector(mem, list),
                  std::vector<Addr>(model.begin(), model.end()));
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, QueueProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

// --- Arbitration --------------------------------------------------------

TEST(Arbiter, WinnerIsMaximumForAllPairs)
{
    for (BusPriority a = 0; a < 8; ++a) {
        for (BusPriority b = 0; b < 8; ++b) {
            if (a == b)
                continue;
            const std::size_t w = taubArbitrate({a, b});
            EXPECT_EQ(w, a > b ? 0u : 1u) << int(a) << " vs " << int(b);
        }
    }
}

TEST(Arbiter, WinnerIsMaximumForTriples)
{
    for (BusPriority a = 0; a < 8; ++a) {
        for (BusPriority b = 0; b < 8; ++b) {
            for (BusPriority c = 0; c < 8; ++c) {
                if (a == b || b == c || a == c)
                    continue;
                const std::size_t w = taubArbitrate({a, b, c});
                const BusPriority expect = std::max({a, b, c});
                EXPECT_EQ((std::vector<BusPriority>{a, b, c})[w], expect);
            }
        }
    }
}

TEST(Arbiter, SingleContenderWins)
{
    EXPECT_EQ(taubArbitrate({3}), 0u);
}

// --- Smart bus timing and behaviour -------------------------------------

TEST(SignalTable, MatchesTable51)
{
    // Table 5.1 sums to 33 physical lines.
    EXPECT_EQ(busTotalLines(), 33);
    EXPECT_EQ(busSignalTable().size(), 10u);
}

class SmartBusFixture : public ::testing::Test
{
  protected:
    SmartBusFixture() : mem(4096), bus(mem)
    {
        host = bus.addUnit("Host", 2);
        mp = bus.addUnit("MP", 3);
        nic = bus.addUnit("NIC", 7);
    }

    SimMemory mem;
    SmartBus bus;
    int host, mp, nic;
};

TEST_F(SmartBusFixture, EnqueueTakesFourEdges)
{
    const auto op = bus.postEnqueue(mp, 2, 32);
    bus.run();
    const OpResult &r = bus.result(op);
    ASSERT_TRUE(r.done);
    EXPECT_FALSE(r.error);
    EXPECT_EQ(r.endEdge - r.startEdge, 4);
    EXPECT_DOUBLE_EQ(r.durationUs(), 1.0);
    EXPECT_EQ(QueueOps::toVector(mem, 2), std::vector<Addr>{32});
}

TEST_F(SmartBusFixture, FirstTakesEightEdgesAndReturnsHead)
{
    QueueOps::enqueue(mem, 2, 32);
    QueueOps::enqueue(mem, 2, 48);
    const auto op = bus.postFirst(mp, 2);
    bus.run();
    const OpResult &r = bus.result(op);
    ASSERT_TRUE(r.done);
    EXPECT_EQ(r.endEdge - r.startEdge, 8);
    EXPECT_DOUBLE_EQ(r.durationUs(), 2.0);
    EXPECT_EQ(r.value, 32);
}

TEST_F(SmartBusFixture, SimpleReadAndWrites)
{
    const auto w = bus.postWrite16(host, 100, 0x1234);
    const auto wb = bus.postWrite8(host, 102, 0x56);
    const auto rd = bus.postRead(host, 100);
    bus.run();
    EXPECT_EQ(bus.result(w).endEdge - bus.result(w).startEdge, 4);
    EXPECT_EQ(bus.result(wb).endEdge - bus.result(wb).startEdge, 4);
    EXPECT_EQ(bus.result(rd).endEdge - bus.result(rd).startEdge, 8);
    EXPECT_EQ(bus.result(rd).value, 0x1234);
    EXPECT_EQ(mem.read8(102), 0x56);
}

TEST_F(SmartBusFixture, FortyByteBlockReadTakesElevenMicroseconds)
{
    for (Addr a = 0; a < 40; ++a)
        mem.write8(static_cast<Addr>(512 + a),
                   static_cast<std::uint8_t>(a * 3));
    const auto op = bus.postBlockRead(mp, 512, 40);
    bus.run();
    const OpResult &r = bus.result(op);
    ASSERT_TRUE(r.done);
    // Table 6.1: one four-edge handshake followed by twenty two-edge
    // transfers = 44 edges = 11 us.
    EXPECT_EQ(r.endEdge - r.startEdge, 44);
    EXPECT_DOUBLE_EQ(r.durationUs(), 11.0);
    ASSERT_EQ(r.data.size(), 40u);
    for (int i = 0; i < 40; ++i)
        EXPECT_EQ(r.data[static_cast<std::size_t>(i)], (i * 3) & 0xff);
}

TEST_F(SmartBusFixture, BlockWriteStoresDataAndMatchesTiming)
{
    std::vector<std::uint8_t> payload;
    for (int i = 0; i < 40; ++i)
        payload.push_back(static_cast<std::uint8_t>(200 - i));
    const auto op = bus.postBlockWrite(mp, 768, payload);
    bus.run();
    const OpResult &r = bus.result(op);
    ASSERT_TRUE(r.done);
    EXPECT_EQ(r.endEdge - r.startEdge, 44);
    for (int i = 0; i < 40; ++i)
        EXPECT_EQ(mem.read8(static_cast<Addr>(768 + i)), 200 - i);
}

TEST_F(SmartBusFixture, OddLengthBlockRecoversGracefully)
{
    std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
    const auto w = bus.postBlockWrite(host, 900, payload);
    bus.run();
    ASSERT_TRUE(bus.result(w).done);
    EXPECT_FALSE(bus.result(w).error);
    const auto r = bus.postBlockRead(host, 900, 5);
    bus.run();
    EXPECT_EQ(bus.result(r).data, payload);
}

TEST_F(SmartBusFixture, ZeroCountBlockRequestFails)
{
    const auto op = bus.postBlockRead(host, 0, 0);
    bus.run();
    EXPECT_TRUE(bus.result(op).error);
}

TEST_F(SmartBusFixture, HigherPriorityPreemptsBlockStream)
{
    // Start a long (200-byte) read stream for the low-priority host.
    const auto blk = bus.postBlockRead(host, 0, 200);
    ASSERT_TRUE(bus.step()); // block transfer request
    ASSERT_TRUE(bus.step()); // first two-transfer grant
    const long before = bus.nowEdges();

    // The NIC (priority 7) now needs an atomic enqueue.
    const auto enq = bus.postEnqueue(nic, 2, 32);
    bus.run();

    const OpResult &er = bus.result(enq);
    const OpResult &br = bus.result(blk);
    ASSERT_TRUE(er.done && br.done);
    // The enqueue won the very next arbitration...
    EXPECT_EQ(er.startEdge, before);
    // ...and the stream finished afterwards, lengthened by exactly the
    // stolen tenure.
    EXPECT_GT(br.endEdge, er.endEdge);
    EXPECT_EQ(br.endEdge - br.startEdge, 4 + 200 + 4);
    EXPECT_GE(bus.preemptionCount(), 1);
    EXPECT_EQ(br.data.size(), 200u);
}

TEST_F(SmartBusFixture, SameUnitOperationsAreFifo)
{
    const auto a = bus.postEnqueue(host, 2, 32);
    const auto b = bus.postEnqueue(host, 2, 48);
    const auto c = bus.postFirst(host, 2);
    bus.run();
    EXPECT_LT(bus.result(a).endEdge, bus.result(b).endEdge);
    EXPECT_LT(bus.result(b).endEdge, bus.result(c).endEdge);
    EXPECT_EQ(bus.result(c).value, 32);
}

TEST_F(SmartBusFixture, InterleavedEnqueuesStayAtomic)
{
    // All three units enqueue onto the same list concurrently; the
    // resulting list must contain all six elements exactly once.
    bus.postEnqueue(host, 2, 32);
    bus.postEnqueue(mp, 2, 64);
    bus.postEnqueue(nic, 2, 96);
    bus.postEnqueue(host, 2, 128);
    bus.postEnqueue(mp, 2, 160);
    bus.postEnqueue(nic, 2, 192);
    bus.run();
    auto v = QueueOps::toVector(mem, 2);
    std::sort(v.begin(), v.end());
    EXPECT_EQ(v, (std::vector<Addr>{32, 64, 96, 128, 160, 192}));
}

TEST_F(SmartBusFixture, RequestTableDrainsAfterUse)
{
    bus.postBlockRead(host, 0, 64);
    bus.postBlockWrite(mp, 256, std::vector<std::uint8_t>(32, 9));
    bus.run();
    EXPECT_EQ(bus.requestTableLoad(), 0);
}

TEST_F(SmartBusFixture, TraceRecordsTenures)
{
    bus.postEnqueue(host, 2, 32);
    bus.run();
    ASSERT_FALSE(bus.trace().empty());
    EXPECT_EQ(bus.trace()[0].command, BusCommand::EnqueueControlBlock);
    EXPECT_EQ(bus.trace()[0].unit, "Host");
}

} // namespace

// --- Protocol scripts and timing diagrams (Figs 5.3-5.16) ---------------

namespace
{

using hsipc::bus::handshakeScript;
using hsipc::bus::renderTimingDiagram;
using hsipc::bus::scriptEdges;
using hsipc::bus::scriptReturnsToReleased;

TEST(Timing, ScriptsMatchDeclaredEdgeCounts)
{
    using hsipc::bus::BusCommand;
    // Four-edge commands.
    for (BusCommand c : {BusCommand::BlockTransfer,
                         BusCommand::EnqueueControlBlock,
                         BusCommand::DequeueControlBlock,
                         BusCommand::WriteTwoBytes,
                         BusCommand::WriteByte}) {
        EXPECT_EQ(scriptEdges(handshakeScript(c)), 4)
            << busCommandName(c);
    }
    // Eight-edge commands.
    for (BusCommand c : {BusCommand::FirstControlBlock,
                         BusCommand::SimpleRead}) {
        EXPECT_EQ(scriptEdges(handshakeScript(c)), 8)
            << busCommandName(c);
    }
    // Streaming: two edges per word for even-length grants.
    for (int words : {2, 4, 20}) {
        EXPECT_EQ(scriptEdges(handshakeScript(
                      BusCommand::BlockReadData, words)),
                  2 * words);
        EXPECT_EQ(scriptEdges(handshakeScript(
                      BusCommand::BlockWriteData, words)),
                  2 * words);
    }
}

TEST(Timing, AllLinesReturnToReleasedState)
{
    using hsipc::bus::BusCommand;
    for (BusCommand c : {BusCommand::SimpleRead,
                         BusCommand::BlockTransfer,
                         BusCommand::EnqueueControlBlock,
                         BusCommand::FirstControlBlock,
                         BusCommand::WriteByte}) {
        EXPECT_TRUE(scriptReturnsToReleased(handshakeScript(c)))
            << busCommandName(c);
    }
    for (int words : {1, 2, 3, 8}) {
        EXPECT_TRUE(scriptReturnsToReleased(handshakeScript(
            BusCommand::BlockReadData, words)))
            << words << " words";
        EXPECT_TRUE(scriptReturnsToReleased(handshakeScript(
            BusCommand::BlockWriteData, words)))
            << words << " words";
    }
}

TEST(Timing, DiagramShowsSignalsAndPayloads)
{
    const std::string d = renderTimingDiagram(
        hsipc::bus::BusCommand::BlockTransfer);
    EXPECT_NE(d.find("BBSY"), std::string::npos);
    EXPECT_NE(d.find("<address"), std::string::npos);
    EXPECT_NE(d.find("<count"), std::string::npos);
    EXPECT_NE(d.find("<tag"), std::string::npos);
    EXPECT_NE(d.find("4 IS/IK edges"), std::string::npos);
}

TEST(Timing, StreamingDiagramShowsEveryWord)
{
    const std::string d = renderTimingDiagram(
        hsipc::bus::BusCommand::BlockReadData, 4);
    EXPECT_NE(d.find("data0"), std::string::npos);
    EXPECT_NE(d.find("data3"), std::string::npos);
    EXPECT_NE(d.find("8 IS/IK edges"), std::string::npos);
}


TEST_F(SmartBusFixture, ExtendedMasterKeepsBusWithoutPreemption)
{
    // Fig 5.19: the current master continues when it wins the next
    // arbitration too — an uncontended block write streams end to end
    // with zero preemptions.
    const auto op = bus.postBlockWrite(
        mp, 512, std::vector<std::uint8_t>(128, 7));
    bus.run();
    ASSERT_TRUE(bus.result(op).done);
    EXPECT_EQ(bus.preemptionCount(), 0);
    // Request + 64 two-edge transfers.
    EXPECT_EQ(bus.result(op).endEdge, 4 + 128);
}

TEST_F(SmartBusFixture, DelayedBusRequestStartsPromptly)
{
    // Fig 5.20: with no requests at the end of an information cycle,
    // the next request (posted after the bus went idle) begins at the
    // current clock without extra arbitration delay.
    bus.postEnqueue(mp, 2, 32);
    bus.run();
    const long idle_at = bus.nowEdges();
    const auto late = bus.postRead(host, 2);
    bus.run();
    EXPECT_EQ(bus.result(late).startEdge, idle_at);
}

} // namespace
