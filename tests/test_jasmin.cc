/**
 * @file
 * Semantic tests for the Jasmin path kernel (§3.2): unidirectional
 * paths, one-time gift of the send end, kernel-buffered fixed-size
 * datagrams, group receive, one-shot RPC-reply paths, and iomove.
 */

#include <gtest/gtest.h>

#include "jasmin/paths.hh"

namespace
{

using namespace hsipc::jasmin;

Message
msg(char c)
{
    Message m{};
    m[0] = static_cast<std::uint8_t>(c);
    return m;
}

class JasminFixture : public ::testing::Test
{
  protected:
    JasminFixture() : k(4)
    {
        server = k.createProcess("file-server");
        client = k.createProcess("client");
        // The server creates the request path and gifts its send end
        // to the client.
        req = k.createPath(server);
        EXPECT_EQ(k.giveSendEnd(server, req, client), PathStatus::Ok);
    }

    PathKernel k;
    ProcId server{}, client{};
    PathId req{};
};

TEST_F(JasminFixture, DatagramIsKernelBuffered)
{
    EXPECT_EQ(k.sendmsg(client, req, msg('a')), PathStatus::Ok);
    EXPECT_EQ(k.queued(req), 1);
    EXPECT_EQ(k.freeBuffers(), 3);

    Message got{};
    EXPECT_EQ(k.rcvmsg(server, {req}, got), PathStatus::Ok);
    EXPECT_EQ(got[0], 'a');
    EXPECT_EQ(k.freeBuffers(), 4); // buffer returned to the pool
}

TEST_F(JasminFixture, RcvmsgWithNothingQueuedWouldBlock)
{
    Message got{};
    EXPECT_EQ(k.rcvmsg(server, {req}, got), PathStatus::NoMessage);
}

TEST_F(JasminFixture, OnlySendHolderMaySend)
{
    const ProcId eve = k.createProcess("eve");
    EXPECT_EQ(k.sendmsg(eve, req, msg('x')),
              PathStatus::NotSendHolder);
    // The server gave the send end away, so it cannot send either.
    EXPECT_EQ(k.sendmsg(server, req, msg('x')),
              PathStatus::NotSendHolder);
}

TEST_F(JasminFixture, GiftMayBeGivenOnlyOnce)
{
    const ProcId other = k.createProcess("other");
    EXPECT_EQ(k.giveSendEnd(client, req, other),
              PathStatus::GiftAlreadyGiven);
}

TEST_F(JasminFixture, GroupReceiveIsFcfsByArrival)
{
    const PathId req2 = k.createPath(server);
    k.giveSendEnd(server, req2, client);

    k.sendmsg(client, req2, msg('2'));
    k.sendmsg(client, req, msg('1'));

    Message got{};
    PathId from = -1;
    EXPECT_EQ(k.rcvmsg(server, {req, req2}, got, &from),
              PathStatus::Ok);
    EXPECT_EQ(got[0], '2'); // arrived first, though listed second
    EXPECT_EQ(from, req2);
}

TEST_F(JasminFixture, BufferPoolExhaustionBlocksSender)
{
    for (int i = 0; i < 4; ++i)
        EXPECT_EQ(k.sendmsg(client, req, msg('q')), PathStatus::Ok);
    EXPECT_EQ(k.sendmsg(client, req, msg('q')),
              PathStatus::NoBuffers);
}

TEST_F(JasminFixture, OneShotGiftReplyPath)
{
    // The RPC pattern of §3.2.1: the client encloses a one-shot gift
    // path for the reply.
    const long setups_before = k.pathSetupTeardowns();
    const PathId reply = k.createPath(client, /*oneShot=*/true);
    k.giveSendEnd(client, reply, server);

    EXPECT_EQ(k.sendmsg(server, reply, msg('r')), PathStatus::Ok);
    // The gift is spent: a second reply is rejected.
    EXPECT_EQ(k.sendmsg(server, reply, msg('r')),
              PathStatus::PathExhausted);

    Message got{};
    EXPECT_EQ(k.rcvmsg(client, {reply}, got), PathStatus::Ok);
    EXPECT_EQ(got[0], 'r');
    // The kernel tore the one-shot path down; the same setup/teardown
    // expense as a persistent path was paid.
    EXPECT_EQ(k.livePathCount(), 1); // only the request path remains
    EXPECT_EQ(k.pathSetupTeardowns(), setups_before + 2);
}

TEST_F(JasminFixture, DestroyReturnsQueuedBuffers)
{
    k.sendmsg(client, req, msg('a'));
    k.sendmsg(client, req, msg('b'));
    EXPECT_EQ(k.freeBuffers(), 2);
    EXPECT_EQ(k.destroyPath(server, req), PathStatus::Ok);
    EXPECT_EQ(k.freeBuffers(), 4);
    EXPECT_EQ(k.sendmsg(client, req, msg('c')),
              PathStatus::NoSuchPath);
}

TEST_F(JasminFixture, OnlyReceiverMayDestroy)
{
    EXPECT_EQ(k.destroyPath(client, req), PathStatus::NotReceiver);
}

TEST_F(JasminFixture, IomoveMovesArbitraryBlocks)
{
    std::vector<std::uint8_t> page(4096);
    for (std::size_t i = 0; i < page.size(); ++i)
        page[i] = static_cast<std::uint8_t>(i);
    std::vector<std::uint8_t> dest;
    EXPECT_EQ(k.iomove(client, req, page, dest), PathStatus::Ok);
    EXPECT_EQ(dest, page);
    // No kernel buffering was involved (§3.2.2).
    EXPECT_EQ(k.freeBuffers(), 4);
}

TEST_F(JasminFixture, IomoveRequiresSendEnd)
{
    std::vector<std::uint8_t> dest;
    EXPECT_EQ(k.iomove(server, req, {1, 2, 3}, dest),
              PathStatus::NotSendHolder);
}

TEST_F(JasminFixture, PathValidationIsLighterThanCharlotteLinks)
{
    // §3.4 attributes 20% of Jasmin's round trip to path management
    // vs 50% protocol processing in Charlotte: one-way paths need
    // fewer checks per operation.
    const long before = k.checksPerformed();
    Message got{};
    for (int i = 0; i < 10; ++i) {
        k.sendmsg(client, req, msg('q'));
        k.rcvmsg(server, {req}, got);
    }
    const long per_rt = (k.checksPerformed() - before) / 10;
    EXPECT_LE(per_rt, 12);
    EXPECT_GE(per_rt, 4);
}

} // namespace
