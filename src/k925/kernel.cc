#include "k925/kernel.hh"

#include <algorithm>
#include <deque>

#include "bus/queue_ops.hh"
#include "common/logging.hh"

namespace hsipc::k925
{

namespace
{

// Shared-memory layout (see header comment).
constexpr Addr tcbFreeList = 2;
constexpr Addr computationListHead = 4;
constexpr Addr communicationListHead = 6;
constexpr Addr bufferFreeList = 8;
constexpr Addr serviceListBase = 0x20; //!< tail word per service
constexpr Addr tcbBase = 0x100;
constexpr int tcbBytes = 16;
constexpr Addr bufferBase = 0x400;
constexpr int bufferBytes = 48; //!< 2-byte link + 40-byte payload + pad

} // namespace

/** A queued-but-undelivered message (payload lives in shared memory). */
struct Kernel::PendingDelivery
{
    Addr buf;
    TaskId sender;
    std::uint64_t seq;
    bool expectsReply;
};

struct Kernel::Task
{
    std::string name;
    TaskState state = TaskState::Computing;
    std::vector<std::uint8_t> userMem;

    // Receive side.
    std::vector<ServiceId> offers;
    ReceiveFn pendingReceive; //!< set while blocked in receive()

    // Send side.
    struct BlockedSend
    {
        ServiceId service;
        Message msg;
        bool expectsReply;
        ReplyFn onReply;
    };
    std::unique_ptr<BlockedSend> blockedSend; //!< waiting for a buffer

    // Interrupt handling.
    std::map<int, HandlerFn> handlers;
};

struct Kernel::Service
{
    bool alive = false;
    TaskId creator = -1;
    std::deque<PendingDelivery> pending; //!< mirrors the queue in memory
    std::deque<TaskId> waiting;          //!< servers blocked in receive
};

Kernel::Kernel(Config cfg)
    : config(cfg), mem(16384), direct(mem), controller(&direct)
{
    hsipc_assert(cfg.maxTasks >= 1 && cfg.maxTasks <= 64);
    hsipc_assert(cfg.kernelBuffers >= 1 && cfg.kernelBuffers <= 64);
    hsipc_assert(cfg.maxServices >= 1 && cfg.maxServices <= 16);
    hsipc_assert(bufferBase +
                     static_cast<std::size_t>(cfg.kernelBuffers) *
                         bufferBytes <=
                 mem.size());

    // Link the free lists (§5.1): the host owns the TCB free list,
    // the MP the kernel-buffer free list.
    for (int t = 0; t < cfg.maxTasks; ++t)
        controller->enqueue(tcbFreeList,
                            static_cast<Addr>(tcbBase + t * tcbBytes));
    for (int b = 0; b < cfg.kernelBuffers; ++b)
        controller->enqueue(
            bufferFreeList,
            static_cast<Addr>(bufferBase + b * bufferBytes));
}

Kernel::~Kernel() = default;

Addr
Kernel::tcbAddr(TaskId t) const
{
    return static_cast<Addr>(tcbBase + t * tcbBytes);
}

TaskId
Kernel::taskOfTcb(Addr a) const
{
    return (a - tcbBase) / tcbBytes;
}

Kernel::Task &
Kernel::task(TaskId t)
{
    hsipc_assert(t >= 0 && static_cast<std::size_t>(t) < tasks.size());
    hsipc_assert(tasks[static_cast<std::size_t>(t)]);
    return *tasks[static_cast<std::size_t>(t)];
}

const Kernel::Task &
Kernel::task(TaskId t) const
{
    hsipc_assert(t >= 0 && static_cast<std::size_t>(t) < tasks.size());
    return *tasks[static_cast<std::size_t>(t)];
}

Kernel::Service &
Kernel::service(ServiceId s)
{
    hsipc_assert(s >= 0 &&
                 static_cast<std::size_t>(s) < services.size());
    hsipc_assert(services[static_cast<std::size_t>(s)]->alive);
    return *services[static_cast<std::size_t>(s)];
}

const Kernel::Service &
Kernel::serviceRef(ServiceId s) const
{
    hsipc_assert(s >= 0 &&
                 static_cast<std::size_t>(s) < services.size());
    return *services[static_cast<std::size_t>(s)];
}

void
Kernel::enterState(TaskId t, TaskState st)
{
    Task &tk = task(t);
    if (tk.state == st)
        return;
    // Maintain the genuine shared-memory lists of §4.4.
    if (tk.state == TaskState::Computing)
        controller->dequeue(computationListHead, tcbAddr(t));
    else if (tk.state == TaskState::Communicating)
        controller->dequeue(communicationListHead, tcbAddr(t));
    if (st == TaskState::Computing)
        controller->enqueue(computationListHead, tcbAddr(t));
    else if (st == TaskState::Communicating)
        controller->enqueue(communicationListHead, tcbAddr(t));
    tk.state = st;
}

TaskId
Kernel::createTask(std::string name)
{
    hsipc_assert(!inHandler);
    const Addr tcb = controller->first(tcbFreeList);
    hsipc_assert(tcb != bus::nullAddr); // out of TCBs is a config error
    const TaskId t = taskOfTcb(tcb);
    if (static_cast<std::size_t>(t) >= tasks.size())
        tasks.resize(static_cast<std::size_t>(t) + 1);
    tasks[static_cast<std::size_t>(t)] = std::make_unique<Task>();
    Task &tk = task(t);
    tk.name = std::move(name);
    tk.userMem.assign(static_cast<std::size_t>(config.userMemoryBytes),
                      0);
    tk.state = TaskState::Stopped; // so enterState enqueues cleanly
    enterState(t, TaskState::Computing);
    return t;
}

void
Kernel::killTask(TaskId victim)
{
    hsipc_assert(!inHandler);
    Task &tk = task(victim);
    // Remove the TCB from whichever work list holds it (the §5.1
    // Dequeue primitive exists exactly for this) and free it.
    enterState(victim, TaskState::Stopped);
    controller->enqueue(tcbFreeList, tcbAddr(victim));
    // Withdraw from any service wait queues.
    for (auto &sp : services) {
        if (!sp || !sp->alive)
            continue;
        auto &w = sp->waiting;
        w.erase(std::remove(w.begin(), w.end(), victim), w.end());
    }
    tk.state = TaskState::Dead;
    tk.pendingReceive = nullptr;
    tk.blockedSend.reset();
}

TaskState
Kernel::taskState(TaskId t) const
{
    return task(t).state;
}

const std::string &
Kernel::taskName(TaskId t) const
{
    return task(t).name;
}

std::vector<std::uint8_t> &
Kernel::userMemory(TaskId t)
{
    return task(t).userMem;
}

ServiceId
Kernel::createService(TaskId creator)
{
    hsipc_assert(!inHandler);
    hsipc_assert(task(creator).state != TaskState::Dead);
    for (std::size_t s = 0; s < services.size(); ++s) {
        if (!services[s]->alive) {
            services[s]->alive = true;
            services[s]->creator = creator;
            return static_cast<ServiceId>(s);
        }
    }
    hsipc_assert(services.size() <
                 static_cast<std::size_t>(config.maxServices));
    services.push_back(std::make_unique<Service>());
    services.back()->alive = true;
    services.back()->creator = creator;
    return static_cast<ServiceId>(services.size() - 1);
}

K925Status
Kernel::destroyService(ServiceId s)
{
    if (s < 0 || static_cast<std::size_t>(s) >= services.size() ||
        !services[static_cast<std::size_t>(s)]->alive)
        return K925Status::NoSuchService;
    Service &sv = service(s);
    // Drain queued messages back to the buffer pool.
    const Addr list = static_cast<Addr>(serviceListBase + 2 * s);
    while (!sv.pending.empty()) {
        const Addr buf = controller->first(list);
        hsipc_assert(buf == sv.pending.front().buf);
        freeBuffer(buf);
        sv.pending.pop_front();
    }
    sv.alive = false;
    sv.waiting.clear();
    // Forget any offers pointing at it.
    for (auto &tp : tasks) {
        if (!tp)
            continue;
        auto &o = tp->offers;
        o.erase(std::remove(o.begin(), o.end(), s), o.end());
    }
    return K925Status::Ok;
}

K925Status
Kernel::offer(TaskId server, ServiceId s)
{
    hsipc_assert(!inHandler);
    if (s < 0 || static_cast<std::size_t>(s) >= services.size() ||
        !services[static_cast<std::size_t>(s)]->alive)
        return K925Status::NoSuchService;
    Task &tk = task(server);
    if (std::find(tk.offers.begin(), tk.offers.end(), s) ==
        tk.offers.end())
        tk.offers.push_back(s);
    return K925Status::Ok;
}

Addr
Kernel::allocBuffer()
{
    return controller->first(bufferFreeList);
}

void
Kernel::freeBuffer(Addr buf)
{
    controller->enqueue(bufferFreeList, buf);
    retryBlockedSenders();
}

void
Kernel::storeMessage(Addr buf, const Message &m)
{
    for (int i = 0; i < messageBytes; ++i)
        mem.write8(static_cast<Addr>(buf + 2 + i),
                   m.data[static_cast<std::size_t>(i)]);
}

Message
Kernel::loadMessage(Addr buf) const
{
    Message m;
    for (int i = 0; i < messageBytes; ++i)
        m.data[static_cast<std::size_t>(i)] =
            mem.read8(static_cast<Addr>(buf + 2 + i));
    return m;
}

K925Status
Kernel::sendNoWait(TaskId client, ServiceId s, const Message &m,
                   bool blocking)
{
    if (inHandler)
        return K925Status::HandlerRestriction;
    return doSend(client, s, m, false, nullptr, blocking);
}

K925Status
Kernel::sendRemoteInvocation(TaskId client, ServiceId s,
                             const Message &m, ReplyFn onReply,
                             bool blocking)
{
    if (inHandler)
        return K925Status::HandlerRestriction;
    hsipc_assert(onReply);
    return doSend(client, s, m, true, std::move(onReply), blocking);
}

K925Status
Kernel::doSend(TaskId client, ServiceId s, const Message &m,
               bool expects_reply, ReplyFn on_reply, bool blocking)
{
    if (s < 0 || static_cast<std::size_t>(s) >= services.size() ||
        !services[static_cast<std::size_t>(s)]->alive)
        return K925Status::NoSuchService;
    Task &tk = task(client);
    hsipc_assert(tk.state == TaskState::Computing);

    const Addr buf = allocBuffer();
    if (buf == bus::nullAddr) {
        if (!blocking)
            return K925Status::WouldBlock;
        // Block the sender until a buffer frees up (§3.2.3).
        auto bs = std::make_unique<Task::BlockedSend>();
        bs->service = s;
        bs->msg = m;
        bs->expectsReply = expects_reply;
        bs->onReply = std::move(on_reply);
        tk.blockedSend = std::move(bs);
        enterState(client, TaskState::Stopped);
        return K925Status::Ok;
    }

    // Kernel-buffer the message: payload into shared memory, buffer
    // onto the service queue.
    storeMessage(buf, m);
    const Addr list = static_cast<Addr>(serviceListBase + 2 * s);
    controller->enqueue(list, buf);

    const std::uint64_t seq = nextSeq++;
    Service &sv = service(s);
    PendingDelivery pd{buf, client, seq, expects_reply};
    pd.expectsReply = expects_reply;
    sv.pending.push_back(pd);

    if (expects_reply) {
        Rendezvous rz;
        rz.client = client;
        rz.onReply = std::move(on_reply);
        rz.hasRef = m.hasRef;
        rz.rights = m.ref;
        rendezvous[seq] = std::move(rz);
        enterState(client, TaskState::Stopped);
    }
    tryDeliver(s);
    return K925Status::Ok;
}

void
Kernel::tryDeliver(ServiceId s)
{
    Service &sv = service(s);
    while (!sv.pending.empty() && !sv.waiting.empty()) {
        // Deliver to the first server (ordered by time) waiting on
        // this service.
        const TaskId server = sv.waiting.front();
        sv.waiting.pop_front();
        Task &srv = task(server);
        hsipc_assert(srv.pendingReceive);
        // A server waits on every service it offered; withdraw its
        // other wait-queue entries before delivering.
        for (auto &sp : services) {
            if (!sp || !sp->alive)
                continue;
            auto &w = sp->waiting;
            w.erase(std::remove(w.begin(), w.end(), server), w.end());
        }

        const Addr list = static_cast<Addr>(serviceListBase + 2 * s);
        const Addr buf = controller->first(list);
        const PendingDelivery pd = sv.pending.front();
        hsipc_assert(buf == pd.buf);
        sv.pending.pop_front();

        Envelope env;
        env.service = s;
        env.sender = pd.sender;
        env.seq = pd.seq;
        env.expectsReply = pd.expectsReply;
        env.msg = loadMessage(buf);
        if (pd.expectsReply) {
            const auto &rz = rendezvous.at(pd.seq);
            env.msg.hasRef = rz.hasRef;
            env.msg.ref = rz.rights;
        }
        freeBuffer(buf);

        ReceiveFn fn = std::move(srv.pendingReceive);
        srv.pendingReceive = nullptr;
        enterState(server, TaskState::Computing);
        fn(env);
    }
}

void
Kernel::retryBlockedSenders()
{
    for (std::size_t t = 0; t < tasks.size(); ++t) {
        Task *tk = tasks[t].get();
        if (!tk || !tk->blockedSend)
            continue;
        if (controller->read(bufferFreeList) == bus::nullAddr)
            return; // still no buffers
        auto bs = std::move(tk->blockedSend);
        tk->blockedSend.reset();
        enterState(static_cast<TaskId>(t), TaskState::Computing);
        const K925Status st =
            doSend(static_cast<TaskId>(t), bs->service, bs->msg,
                   bs->expectsReply, std::move(bs->onReply), true);
        hsipc_assert(st == K925Status::Ok);
    }
}

K925Status
Kernel::receive(TaskId server, ReceiveFn onMessage)
{
    if (inHandler)
        return K925Status::HandlerRestriction;
    hsipc_assert(onMessage);
    Task &tk = task(server);
    if (tk.offers.empty())
        return K925Status::NotOffered;

    // FCFS across everything this server has offered: pick the
    // pending message with the lowest global sequence number.
    ServiceId best = -1;
    std::uint64_t best_seq = 0;
    for (ServiceId s : tk.offers) {
        const Service &sv = serviceRef(s);
        if (!sv.alive || sv.pending.empty())
            continue;
        if (best < 0 || sv.pending.front().seq < best_seq) {
            best = s;
            best_seq = sv.pending.front().seq;
        }
    }

    hsipc_assert(!tk.pendingReceive);
    tk.pendingReceive = std::move(onMessage);
    enterState(server, TaskState::Stopped);
    if (best >= 0) {
        Service &sv = service(best);
        sv.waiting.push_front(server); // deliver to this call now
        tryDeliver(best);
    } else {
        for (ServiceId s : tk.offers)
            service(s).waiting.push_back(server);
    }
    return K925Status::Ok;
}

bool
Kernel::inquire(TaskId server) const
{
    const Task &tk = task(server);
    for (ServiceId s : tk.offers) {
        if (serviceRef(s).alive && !serviceRef(s).pending.empty())
            return true;
    }
    return false;
}

K925Status
Kernel::reply(TaskId server, const Envelope &env, const Message &response)
{
    if (inHandler)
        return K925Status::HandlerRestriction;
    (void)server;
    auto &table = rendezvous;
    auto it = table.find(env.seq);
    if (it == table.end() || !env.expectsReply)
        return K925Status::BadEnvelope;

    Rendezvous rz = std::move(it->second);
    table.erase(it); // rights to the memory reference are revoked
    if (task(rz.client).state != TaskState::Dead) {
        enterState(rz.client, TaskState::Computing);
        if (rz.onReply)
            rz.onReply(response);
    }
    return K925Status::Ok;
}

K925Status
Kernel::moveFromUser(TaskId server, const Envelope &env,
                     std::uint16_t at, std::uint8_t *out,
                     std::uint16_t len)
{
    (void)server;
    auto &table = rendezvous;
    auto it = table.find(env.seq);
    if (it == table.end())
        return K925Status::BadEnvelope;
    const Rendezvous &rz = it->second;
    if (!rz.hasRef || !rz.rights.read ||
        at + len > rz.rights.size)
        return K925Status::AccessDenied;
    auto &um = task(rz.client).userMem;
    hsipc_assert(rz.rights.offset + rz.rights.size <= um.size());
    for (std::uint16_t i = 0; i < len; ++i)
        out[i] = um[static_cast<std::size_t>(rz.rights.offset + at + i)];
    return K925Status::Ok;
}

K925Status
Kernel::moveToUser(TaskId server, const Envelope &env, std::uint16_t at,
                   const std::uint8_t *in, std::uint16_t len)
{
    (void)server;
    auto &table = rendezvous;
    auto it = table.find(env.seq);
    if (it == table.end())
        return K925Status::BadEnvelope;
    const Rendezvous &rz = it->second;
    if (!rz.hasRef || !rz.rights.write ||
        at + len > rz.rights.size)
        return K925Status::AccessDenied;
    auto &um = task(rz.client).userMem;
    hsipc_assert(rz.rights.offset + rz.rights.size <= um.size());
    for (std::uint16_t i = 0; i < len; ++i)
        um[static_cast<std::size_t>(rz.rights.offset + at + i)] = in[i];
    return K925Status::Ok;
}

void
Kernel::installHandler(TaskId driver, int irq, HandlerFn handler)
{
    hsipc_assert(handler);
    task(driver).handlers[irq] = std::move(handler);
}

K925Status
Kernel::raiseInterrupt(int irq)
{
    for (auto &tp : tasks) {
        if (!tp || tp->state == TaskState::Dead)
            continue;
        auto it = tp->handlers.find(irq);
        if (it != tp->handlers.end()) {
            // The handler executes in the context of the installing
            // task and may only call activate (§4.2.2).
            inHandler = true;
            it->second();
            inHandler = false;
            return K925Status::Ok;
        }
    }
    return K925Status::NoSuchService;
}

K925Status
Kernel::activate(ServiceId interruptService, const Message &m)
{
    if (!inHandler)
        return K925Status::NotInHandler;
    if (interruptService < 0 ||
        static_cast<std::size_t>(interruptService) >= services.size() ||
        !services[static_cast<std::size_t>(interruptService)]->alive)
        return K925Status::NoSuchService;
    // Activate is a kernel-internal no-wait send on behalf of the
    // device; it must not block inside a handler.
    const Addr buf = allocBuffer();
    if (buf == bus::nullAddr)
        return K925Status::NoBuffers;
    storeMessage(buf, m);
    const Addr list =
        static_cast<Addr>(serviceListBase + 2 * interruptService);
    controller->enqueue(list, buf);
    Service &sv = service(interruptService);
    sv.pending.push_back(PendingDelivery{
        buf, service(interruptService).creator, nextSeq++, false});
    // Delivery happens after the handler returns; but with the eager
    // functional semantics it is safe to match immediately.
    inHandler = false;
    tryDeliver(interruptService);
    inHandler = true;
    return K925Status::Ok;
}

int
Kernel::freeBufferCount() const
{
    return static_cast<int>(
        bus::QueueOps::toVector(mem, bufferFreeList).size());
}

int
Kernel::pendingMessages(ServiceId s) const
{
    return static_cast<int>(serviceRef(s).pending.size());
}

std::vector<TaskId>
Kernel::computationList() const
{
    std::vector<TaskId> out;
    for (Addr a : bus::QueueOps::toVector(mem, computationListHead))
        out.push_back(taskOfTcb(a));
    return out;
}

std::vector<TaskId>
Kernel::communicationList() const
{
    std::vector<TaskId> out;
    for (Addr a : bus::QueueOps::toVector(mem, communicationListHead))
        out.push_back(taskOfTcb(a));
    return out;
}

} // namespace hsipc::k925
