/**
 * @file
 * A functional (semantics-level) implementation of the 925 IPC kernel
 * of chapter 4 — the system the thesis used as its test-bed.
 *
 * What it implements (§§3.2, 4.2):
 *  - tasks with the three §4.4 states (computing / communicating /
 *    stopped) and dynamic creation/kill;
 *  - services as queueing points; servers advertise with offer() and
 *    collect messages with blocking receive() or non-blocking
 *    inquire();
 *  - fixed-size 40-byte messages, kernel-buffered; senders block (or
 *    fail, for non-blocking sends) when the buffer pool is empty;
 *  - no-wait send and remote-invocation send, the latter completing
 *    with a reply() from the server;
 *  - memory-reference messages: a message may enclose a pointer into
 *    the sender's address space with read/write access rights, which
 *    the receiver exercises via moveFromUser()/moveToUser()
 *    until it replies;
 *  - device interrupts mapped onto IPC (§4.2.2): a driver task
 *    installs a handler and offers an "interrupt service"; the
 *    handler may call only activate(), which sends to that service.
 *
 * Fidelity to chapter 5: the task control blocks and kernel buffers
 * live in a real bus::SimMemory, linked into singly-linked circular
 * free/work lists manipulated *only* through the §5.1 queue
 * primitives, via a pluggable bus::MemoryController — so the whole
 * kernel can run its queue operations through the appendix-A
 * microcoded smart-memory controller.
 *
 * This module captures the kernel's *semantics*; timing and
 * contention are the business of src/sim and src/core.
 */

#ifndef HSIPC_K925_KERNEL_HH
#define HSIPC_K925_KERNEL_HH

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bus/memory.hh"
#include "bus/smart_bus.hh"

namespace hsipc::k925
{

using bus::Addr;

using TaskId = int;
using ServiceId = int;

/** Fixed message size of the 925 (§4.2.1). */
constexpr int messageBytes = 40;

/** Access rights enclosed with a memory reference (§4.2.1). */
struct MemoryRef
{
    std::uint16_t offset = 0; //!< into the sender's address space
    std::uint16_t size = 0;
    bool read = false;
    bool write = false;
};

/** A fixed-size message, optionally enclosing a memory reference. */
struct Message
{
    std::array<std::uint8_t, messageBytes> data{};
    bool hasRef = false;
    MemoryRef ref;
};

/** A message as delivered to a server; the key for reply(). */
struct Envelope
{
    ServiceId service = -1;
    TaskId sender = -1;
    std::uint64_t seq = 0;  //!< delivery order across the kernel
    bool expectsReply = false;
    Message msg;
};

/** The §4.4 task states. */
enum class TaskState
{
    Computing,     //!< runnable or running on the host
    Communicating, //!< owned by the message coprocessor
    Stopped,       //!< waiting for a message or a reply
    Dead,
};

/** Kernel-call status codes. */
enum class K925Status
{
    Ok,
    WouldBlock,     //!< non-blocking call could not proceed
    NoSuchService,
    NotOffered,     //!< receive/inquire without any offer
    AccessDenied,   //!< memory move outside the granted rights
    BadEnvelope,    //!< reply to an unknown or completed envelope
    NoBuffers,
    InHandlerOnly,  //!< activate outside an interrupt handler
    NotInHandler = InHandlerOnly,
    HandlerRestriction, //!< non-activate call from a handler
};

/** The message-based kernel. */
class Kernel
{
  public:
    struct Config
    {
        int maxTasks = 16;
        int kernelBuffers = 8;
        int maxServices = 16;
        int userMemoryBytes = 1024; //!< per-task address space
    };

    Kernel() : Kernel(Config()) {}
    explicit Kernel(Config cfg);
    ~Kernel(); //!< out of line: Task/Service are incomplete here

    /**
     * Route every queue manipulation through @p ctrl (e.g. the
     * microcoded controller bound to sharedMemory()).
     */
    void setController(bus::MemoryController &ctrl) { controller = &ctrl; }

    /** The shared memory holding TCBs and kernel buffers. */
    bus::SimMemory &sharedMemory() { return mem; }

    // --- Tasks -------------------------------------------------------

    TaskId createTask(std::string name);
    void killTask(TaskId victim);
    TaskState taskState(TaskId t) const;
    const std::string &taskName(TaskId t) const;

    /** The task's simulated user address space. */
    std::vector<std::uint8_t> &userMemory(TaskId t);

    // --- Services ----------------------------------------------------

    ServiceId createService(TaskId creator);
    K925Status destroyService(ServiceId s);

    /** Advertise intent to receive on @p s (§4.2.1's offer). */
    K925Status offer(TaskId server, ServiceId s);

    // --- Send --------------------------------------------------------

    /** Callback invoked when a remote invocation's reply arrives. */
    using ReplyFn = std::function<void(const Message &reply)>;

    /** Fire-and-forget datagram (no-wait send). */
    K925Status sendNoWait(TaskId client, ServiceId s, const Message &m,
                          bool blocking = true);

    /**
     * Remote-invocation send: the reply is delivered through
     * @p onReply.  When @p blocking, the client stops until then;
     * otherwise the send fails with WouldBlock if no buffer is free.
     */
    K925Status sendRemoteInvocation(TaskId client, ServiceId s,
                                    const Message &m, ReplyFn onReply,
                                    bool blocking = true);

    // --- Receive -----------------------------------------------------

    using ReceiveFn = std::function<void(const Envelope &)>;

    /**
     * Blocking receive on every service the server has offered;
     * delivery is FCFS by message arrival time.
     */
    K925Status receive(TaskId server, ReceiveFn onMessage);

    /** Non-blocking poll: is a message waiting (§4.2.1's inquire)? */
    bool inquire(TaskId server) const;

    /** Complete a rendezvous; revokes any memory-reference rights. */
    K925Status reply(TaskId server, const Envelope &env,
                     const Message &response);

    // --- Memory-reference data movement ------------------------------

    /**
     * Read @p len bytes of the referenced client segment at @p at
     * into @p out (the 925's "memory move", inbound direction).
     */
    K925Status moveFromUser(TaskId server, const Envelope &env,
                            std::uint16_t at, std::uint8_t *out,
                            std::uint16_t len);

    /**
     * Write @p len bytes from @p in into the referenced client
     * segment at @p at (outbound memory move).
     */
    K925Status moveToUser(TaskId server, const Envelope &env,
                          std::uint16_t at, const std::uint8_t *in,
                          std::uint16_t len);

    // --- Interrupts (§4.2.2) ------------------------------------------

    using HandlerFn = std::function<void()>;

    /** Install @p handler for @p irq, owned by @p driver. */
    void installHandler(TaskId driver, int irq, HandlerFn handler);

    /** Raise @p irq: the installed handler runs immediately. */
    K925Status raiseInterrupt(int irq);

    /**
     * Send @p m to @p interruptService — the only call permitted from
     * inside a handler.
     */
    K925Status activate(ServiceId interruptService, const Message &m);

    // --- Introspection -------------------------------------------------

    int freeBufferCount() const;
    int pendingMessages(ServiceId s) const;
    std::vector<TaskId> computationList() const;
    std::vector<TaskId> communicationList() const;

  private:
    struct Task;
    struct Service;
    struct PendingDelivery;

    /** An in-progress remote invocation, keyed by delivery seq. */
    struct Rendezvous
    {
        TaskId client = -1;
        ReplyFn onReply;
        bool hasRef = false;
        MemoryRef rights;
    };

    Addr tcbAddr(TaskId t) const;
    TaskId taskOfTcb(Addr a) const;
    Task &task(TaskId t);
    const Task &task(TaskId t) const;
    Service &service(ServiceId s);
    const Service &serviceRef(ServiceId s) const;

    Addr allocBuffer();
    void freeBuffer(Addr buf);
    void storeMessage(Addr buf, const Message &m);
    Message loadMessage(Addr buf) const;

    K925Status doSend(TaskId client, ServiceId s, const Message &m,
                      bool expects_reply, ReplyFn on_reply,
                      bool blocking);
    void tryDeliver(ServiceId s);
    void retryBlockedSenders();
    void enterState(TaskId t, TaskState st);

    Config config;
    bus::SimMemory mem;
    bus::DirectController direct;
    bus::MemoryController *controller;

    std::vector<std::unique_ptr<Task>> tasks;
    std::vector<std::unique_ptr<Service>> services;
    std::map<std::uint64_t, Rendezvous> rendezvous;
    std::uint64_t nextSeq = 1;
    bool inHandler = false;
};

} // namespace hsipc::k925

#endif // HSIPC_K925_KERNEL_HH
