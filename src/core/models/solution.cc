#include "core/models/solution.hh"

#include <algorithm>
#include <cmath>

#include "common/logging.hh"
#include "core/models/local_model.hh"

namespace hsipc::models
{

namespace
{

/** The 40-byte copy time on the M68000 (chapter 4), microseconds. */
constexpr double extraCopyUs = 220.0;

/** Pick a time scale keeping >= @p resolution units in @p minMean. */
double
autoScale(double min_mean, double resolution = 20.0)
{
    return std::max(1.0, std::floor(min_mean / resolution));
}

double
localMinMean(const LocalParams &p, double x)
{
    if (p.arch == Arch::I)
        return std::min({p.uniSend, p.uniRecv, p.uniMatchReply + x});
    return std::min({p.sendSyscall, p.recvSyscall, p.mpSend, p.mpRecv,
                     p.mpMatch, p.hostReplyBase + x, p.mpReply});
}

double
clientMinMean(const NonlocalClientParams &p, double sd)
{
    double m = std::min({p.sendSyscall, p.dmaOut, p.dmaIn,
                         p.intrService, sd});
    if (p.arch != Arch::I)
        m = std::min(m, p.mpSend + p.dispatch);
    return m;
}

double
serverMinMean(const NonlocalServerParams &p, double cd, double x)
{
    double m = std::min({p.recvSyscall, p.match, p.replyBase + x, cd});
    if (p.arch != Arch::I)
        m = std::min({m, p.mpRecv, p.mpReply});
    return m;
}

} // namespace

LocalSolution
solveLocalCustom(const LocalParams &params, int conversations,
                 double computeTime, int hostTokens,
                 const SolveConfig &cfg)
{
    const double scale = cfg.timeScale > 0.0
        ? cfg.timeScale
        : autoScale(localMinMean(params, computeTime));

    const LocalModel m = buildLocalModel(params, conversations,
                                         computeTime, scale,
                                         hostTokens);
    const gtpn::AnalyzerResult r = gtpn::analyze(m.net, cfg.analyzer);
    hsipc_assert(!r.deadlock);

    LocalSolution out;
    out.throughputPerUs = m.throughputPerUs(r.usage(lambdaResource));
    out.states = r.numStates;
    out.converged = r.converged;
    return out;
}

LocalSolution
solveLocal(Arch arch, int conversations, double computeTime,
           const SolveConfig &cfg)
{
    return solveLocalCustom(localParams(arch), conversations,
                            computeTime, 1, cfg);
}

NonlocalSolution
solveNonlocalCustom(const NonlocalClientParams &cp,
                    const NonlocalServerParams &sp, int conversations,
                    double computeTime, int hostTokens,
                    const SolveConfig &cfg)
{
    const double x = computeTime;
    const double n = static_cast<double>(conversations);

    // Initial S_d: the server-side communication time plus the
    // computation in the conversation (§6.6.3).
    double sd = sp.receivePath() + sp.match + sp.replyBase + x +
                sp.mpReply + sp.dmaIn + sp.dmaOut;
    const double sc = sp.receivePath();

    NonlocalSolution out;
    double lambda_per_us = 0.0;
    double client_states = 0.0, server_states = 0.0;

    for (int iter = 1; iter <= cfg.maxIterations; ++iter) {
        out.iterations = iter;

        // Client node with the current surrogate S_d.
        const double cscale = cfg.timeScale > 0.0
            ? cfg.timeScale
            : autoScale(clientMinMean(cp, sd));
        const ClientModel cm =
            buildClientModel(cp, conversations, sd, hostTokens, cscale);
        const gtpn::AnalyzerResult cr = gtpn::analyze(cm.net,
                                                      cfg.analyzer);
        hsipc_assert(!cr.deadlock);
        lambda_per_us = cm.throughputPerUs(cr.usage(lambdaResource));
        client_states = static_cast<double>(cr.numStates);
        hsipc_assert(lambda_per_us > 0.0);

        // Little's law at the client node: mean cycle T = N / Lambda,
        // client busy time C_d' = T - S_d, and the wait seen by the
        // server excludes the overlapped receive processing S_c.
        const double t = n / lambda_per_us;
        out.clientBusy = t - sd;
        double cd = out.clientBusy - sc;

        // Server node with the surrogate C_d.
        const double sscale_floor = cfg.timeScale > 0.0
            ? cfg.timeScale
            : autoScale(serverMinMean(sp, std::max(cd, 1.0), x));
        cd = std::max(cd, sscale_floor);
        const ServerModel sm = buildServerModel(sp, conversations, cd, x,
                                                hostTokens, sscale_floor);
        const gtpn::AnalyzerResult sr = gtpn::analyze(sm.net,
                                                      cfg.analyzer);
        hsipc_assert(!sr.deadlock);
        server_states = static_cast<double>(sr.numStates);

        const double arrivals_per_us =
            sr.firingRate[static_cast<std::size_t>(sm.arrival)] /
            sm.timeScale;
        const double customers =
            sr.placeOccupancy[static_cast<std::size_t>(sm.queue)];
        hsipc_assert(arrivals_per_us > 0.0);

        // Little's law at the server node, plus the packet DMA times
        // accounted outside the model (§6.6.4).
        const double sd_new =
            customers / arrivals_per_us + sp.dmaIn + sp.dmaOut;

        const double rel = std::abs(sd_new - sd) / std::max(sd, 1.0);
        sd = 0.5 * (sd + sd_new);
        if (rel < cfg.tolerance) {
            out.converged = true;
            break;
        }
    }

    out.throughputPerUs = lambda_per_us;
    out.serverDelay = sd;
    out.clientStates = static_cast<std::size_t>(client_states);
    out.serverStates = static_cast<std::size_t>(server_states);
    return out;
}

NonlocalSolution
solveNonlocal(Arch arch, int conversations, double computeTime,
              const SolveConfig &cfg)
{
    return solveNonlocalCustom(nonlocalClientParams(arch),
                               nonlocalServerParams(arch), conversations,
                               computeTime, 1, cfg);
}

NonlocalClientParams
validationClientParams()
{
    NonlocalClientParams p = nonlocalClientParams(Arch::II);
    // Outgoing packets cross the memory-mapped network buffer once
    // more on the MP; inbound completion processing reads it back.
    p.mpSend += extraCopyUs;
    p.intrService += extraCopyUs;
    return p;
}

NonlocalServerParams
validationServerParams()
{
    NonlocalServerParams p = nonlocalServerParams(Arch::II);
    p.match += extraCopyUs;
    p.mpReply += extraCopyUs;
    return p;
}

} // namespace hsipc::models
