#include "core/models/local_model.hh"

#include <algorithm>
#include <vector>

#include "common/logging.hh"

namespace hsipc::models
{

using namespace gtpn;

namespace
{

/**
 * Add a geometric stage: a pair of delay-1 transitions sharing the
 * input places (Fig 6.7).  The "exit" member fires with probability
 * 1/mean per unit and moves tokens from @p from to @p to; the "loop"
 * member returns them.  Shared resource tokens (e.g. the host) listed
 * in @p held are consumed and returned each unit, which yields the
 * processor-sharing discipline the thesis adopts (§6.7.1).
 *
 * Returns the exit transition id.
 */
TransId
addStage(PetriNet &net, const std::string &name, double mean,
         const std::vector<PlaceId> &from, const std::vector<PlaceId> &to,
         const std::vector<PlaceId> &held, const std::string &resource = "")
{
    hsipc_assert(mean >= 1.0);
    const double p = 1.0 / mean;
    const TransId exit =
        net.addTransition(name + ".exit", 1.0, p, resource);
    const TransId loop = net.addTransition(name + ".loop", 1.0, 1.0 - p);
    for (PlaceId pl : from) {
        net.inputArc(pl, exit);
        net.inputArc(pl, loop);
        net.outputArc(loop, pl);
    }
    for (PlaceId pl : to)
        net.outputArc(exit, pl);
    for (PlaceId pl : held) {
        net.inputArc(pl, exit);
        net.inputArc(pl, loop);
        net.outputArc(exit, pl);
        net.outputArc(loop, pl);
    }
    return exit;
}

LocalModel
buildUniprocessor(const LocalParams &p, int n, double x, double scale,
                  int hosts)
{
    LocalModel m;
    m.timeScale = scale;
    PetriNet &net = m.net;

    const PlaceId clients = net.addPlace("Clients", n);
    const PlaceId servers = net.addPlace("Servers", n);
    const PlaceId host = net.addPlace("Host", hosts);
    const PlaceId send_wait = net.addPlace("SendWait");
    const PlaceId recv_wait = net.addPlace("RecvWait");

    // T0/T1 — syscall send plus (deferred) client restart.
    addStage(net, "send", p.uniSend / scale, {clients}, {send_wait},
             {host});
    // T2/T3 — syscall receive plus (deferred) server restart.
    addStage(net, "recv", p.uniRecv / scale, {servers}, {recv_wait},
             {host});
    // T4/T5 — match, server computation X, and reply.
    addStage(net, "matchReply", (p.uniMatchReply + x) / scale,
             {send_wait, recv_wait}, {clients, servers}, {host},
             lambdaResource);
    return m;
}

LocalModel
buildCoprocessor(const LocalParams &p, int n, double x, double scale,
                 int hosts)
{
    LocalModel m;
    m.timeScale = scale;
    PetriNet &net = m.net;

    const PlaceId clients = net.addPlace("Clients", n);
    const PlaceId servers = net.addPlace("Servers", n);
    const PlaceId host = net.addPlace("Host", hosts);
    const PlaceId mp = net.addPlace("MP", 1);
    const PlaceId send_req = net.addPlace("SendReq");
    const PlaceId recv_req = net.addPlace("RecvReq");
    const PlaceId send_done = net.addPlace("SendProcessed");
    const PlaceId recv_done = net.addPlace("RecvProcessed");
    const PlaceId server_ready = net.addPlace("ServerReady");
    const PlaceId reply_req = net.addPlace("ReplyReq");

    // Host side (Fig 6.12: T0/T1, T2/T3, T10/T11).
    addStage(net, "sendSyscall", p.sendSyscall / scale, {clients},
             {send_req}, {host});
    addStage(net, "recvSyscall", p.recvSyscall / scale, {servers},
             {recv_req}, {host});
    addStage(net, "hostReply", (p.hostReplyBase + x) / scale,
             {server_ready}, {reply_req}, {host});

    // Message-coprocessor side (T4/T5, T6/T7, T8/T9, T12/T13).
    addStage(net, "mpSend", p.mpSend / scale, {send_req}, {send_done},
             {mp});
    addStage(net, "mpRecv", p.mpRecv / scale, {recv_req}, {recv_done},
             {mp});
    addStage(net, "mpMatch", p.mpMatch / scale, {send_done, recv_done},
             {server_ready}, {mp});
    addStage(net, "mpReply", p.mpReply / scale, {reply_req},
             {clients, servers}, {mp}, lambdaResource);
    return m;
}

} // namespace

LocalModel
buildLocalModel(const LocalParams &p, int conversations, double computeTime,
                double timeScale, int hostTokens)
{
    hsipc_assert(conversations >= 1);
    hsipc_assert(computeTime >= 0.0);
    hsipc_assert(timeScale >= 1.0);
    hsipc_assert(hostTokens >= 1);
    if (p.arch == Arch::I) {
        return buildUniprocessor(p, conversations, computeTime, timeScale,
                                 hostTokens);
    }
    return buildCoprocessor(p, conversations, computeTime, timeScale,
                            hostTokens);
}

LocalParams
offloadParams(double fraction, double mpSpeed)
{
    hsipc_assert(fraction >= 0.0 && fraction <= 1.0);
    hsipc_assert(mpSpeed > 0.0);
    LocalParams p = localParams(Arch::II);

    // Each MP stage keeps `fraction` of its work (sped up by the
    // front-end's rate); the rest returns to the adjacent host stage.
    auto split = [&](double &mp_stage, double &host_stage) {
        const double keep = mp_stage * fraction / mpSpeed;
        host_stage += mp_stage * (1.0 - fraction);
        // A stage needs at least one time unit; below that, fold it
        // into the host entirely (no front-end interaction is left
        // worth dispatching).
        mp_stage = std::max(keep, 1.0);
    };
    split(p.mpSend, p.sendSyscall);
    split(p.mpRecv, p.recvSyscall);
    split(p.mpMatch, p.hostReplyBase);
    split(p.mpReply, p.hostReplyBase);
    return p;
}

LocalParams
scaleMpSpeed(LocalParams p, double factor)
{
    hsipc_assert(factor > 0.0);
    if (p.arch == Arch::I)
        return p;
    p.mpSend /= factor;
    p.mpRecv /= factor;
    p.mpMatch /= factor;
    p.mpReply /= factor;
    return p;
}

} // namespace hsipc::models
