/**
 * @file
 * GTPN models of non-local conversations (Figs 6.10/6.11/6.13/6.14).
 *
 * Non-local conversations are modeled as two coupled nets (§6.6.3):
 * a client node holding all N clients and a server node holding all N
 * servers.  The client model contains a surrogate geometric delay of
 * mean S_d for the round trip at the server node; the server model
 * contains a surrogate client-think delay of mean C_d.  The two are
 * solved alternately by solveNonlocal() in solution.hh.
 *
 * Network interrupts preempt the processor that owns the network
 * interface (the host in architecture I, the message coprocessor in
 * II-IV): all stages executing on that processor carry a frequency
 * gate "(no interrupt pending) and (interrupt service not firing)",
 * exactly as the thesis' transition tables specify.
 */

#ifndef HSIPC_MODELS_NONLOCAL_MODEL_HH
#define HSIPC_MODELS_NONLOCAL_MODEL_HH

#include "core/gtpn/net.hh"
#include "core/models/processing_times.hh"

namespace hsipc::models
{

/** A built client-node model (Figs 6.10/6.13). */
struct ClientModel
{
    gtpn::PetriNet net;
    double timeScale = 1.0;

    double
    throughputPerUs(double lambda_usage) const
    {
        return lambda_usage / timeScale;
    }
};

/** A built server-node model (Figs 6.11/6.14). */
struct ServerModel
{
    gtpn::PetriNet net;
    gtpn::TransId arrival = -1;   //!< exit of the client-wait stage
    gtpn::PlaceId queue = -1;     //!< customers-in-system bookkeeping
    double timeScale = 1.0;
};

/**
 * Build the client-node model.
 *
 * @param p           transition means
 * @param clients     number of client processes at the node
 * @param serverDelay surrogate server delay S_d, microseconds
 * @param hostTokens  host processors at the node (2 for the
 *                    validation configuration of §6.8)
 * @param timeScale   microseconds per model time unit
 */
ClientModel buildClientModel(const NonlocalClientParams &p, int clients,
                             double serverDelay, int hostTokens = 1,
                             double timeScale = 1.0);

/**
 * Build the server-node model.
 *
 * @param p           transition means
 * @param servers     number of server processes at the node
 * @param clientWait  surrogate client wait C_d, microseconds
 * @param computeTime server computation X per conversation, us
 * @param hostTokens  host processors at the node
 * @param timeScale   microseconds per model time unit
 */
ServerModel buildServerModel(const NonlocalServerParams &p, int servers,
                             double clientWait, double computeTime,
                             int hostTokens = 1, double timeScale = 1.0);

} // namespace hsipc::models

#endif // HSIPC_MODELS_NONLOCAL_MODEL_HH
