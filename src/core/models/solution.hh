/**
 * @file
 * Solutions of the chapter-6 performance models.
 *
 * solveLocal() analyzes the single-node local-conversation net.
 * solveNonlocal() runs the iterative two-node procedure of §6.6.3:
 * the client-node model is solved with the current estimate of the
 * server delay S_d; Little's law converts its throughput into the
 * client busy time C_d; the server-node model solved with C_d yields
 * (via the customers-in-system Queue place and Little's law again) a
 * new S_d; iteration continues until S_d is stationary.
 */

#ifndef HSIPC_MODELS_SOLUTION_HH
#define HSIPC_MODELS_SOLUTION_HH

#include <cstddef>

#include "core/gtpn/analyzer.hh"
#include "core/models/nonlocal_model.hh"
#include "core/models/processing_times.hh"

namespace hsipc::models
{

/** Options shared by the model solutions. */
struct SolveConfig
{
    /**
     * Microseconds per model time unit; 0 selects automatically so
     * the smallest stage keeps at least ~20 time units of resolution.
     */
    double timeScale = 0.0;

    /** Exact-analysis options. */
    gtpn::AnalyzerOptions analyzer;

    /** Fixed-point iteration limit (non-local only). */
    int maxIterations = 60;

    /** Relative S_d change declaring convergence (non-local only). */
    double tolerance = 1e-3;
};

/** Result of a local-conversation solve. */
struct LocalSolution
{
    double throughputPerUs = 0.0; //!< round trips per microsecond
    std::size_t states = 0;
    bool converged = false;
};

/** Result of the non-local fixed point. */
struct NonlocalSolution
{
    double throughputPerUs = 0.0; //!< round trips per microsecond
    double serverDelay = 0.0;     //!< converged S_d, microseconds
    double clientBusy = 0.0;      //!< converged C_d', microseconds
    int iterations = 0;
    bool converged = false;
    std::size_t clientStates = 0;
    std::size_t serverStates = 0;
};

/** Solve the local model of @p arch. */
LocalSolution solveLocal(Arch arch, int conversations, double computeTime,
                         const SolveConfig &cfg = SolveConfig());

/**
 * Local model with explicit parameters and host count — used for the
 * chapter-7 shared-memory-multiprocessor extension (several hosts per
 * node served by one MP) and for MP-speed ablations.
 */
LocalSolution solveLocalCustom(const LocalParams &params,
                               int conversations, double computeTime,
                               int hostTokens,
                               const SolveConfig &cfg = SolveConfig());

/** Solve the non-local two-node fixed point for @p arch. */
NonlocalSolution solveNonlocal(Arch arch, int conversations,
                               double computeTime,
                               const SolveConfig &cfg = SolveConfig());

/**
 * Non-local fixed point with explicit parameters, used for the
 * validation configuration of §6.8 (two host processors per node and
 * the extra network-buffer copy folded into the MP stage means).
 */
NonlocalSolution solveNonlocalCustom(const NonlocalClientParams &cp,
                                     const NonlocalServerParams &sp,
                                     int conversations, double computeTime,
                                     int hostTokens,
                                     const SolveConfig &cfg = SolveConfig());

/**
 * The validation-configuration parameters (§6.8): architecture II with
 * an additional 40-byte copy (220 us of M68000 processing) on every
 * network-buffer crossing.
 */
NonlocalClientParams validationClientParams();
NonlocalServerParams validationServerParams();

} // namespace hsipc::models

#endif // HSIPC_MODELS_SOLUTION_HH
