#include "core/models/nonlocal_model.hh"

#include <vector>

#include "common/logging.hh"
#include "core/models/local_model.hh"

namespace hsipc::models
{

using namespace gtpn;

namespace
{

/** A geometric stage with an optional frequency gate. */
struct Stage
{
    TransId exit;
    TransId loop;
};

/**
 * Add a geometric stage like local_model's, optionally gated: when
 * @p gateExpr (may be null) evaluates to zero both members freeze,
 * modeling preemption of the executing processor.
 */
Stage
addStage(PetriNet &net, const std::string &name, double mean,
         const std::vector<PlaceId> &from, const std::vector<PlaceId> &to,
         const std::vector<PlaceId> &held, Expr gateExpr = nullptr,
         const std::string &resource = "")
{
    hsipc_assert(mean >= 1.0);
    const double p = 1.0 / mean;
    Expr exit_freq = gateExpr ? gate(gateExpr, p) : constant(p);
    Expr loop_freq = gateExpr ? gate(gateExpr, 1.0 - p)
                              : constant(1.0 - p);
    Stage s;
    s.exit = net.addTransition(name + ".exit", constant(1.0),
                               std::move(exit_freq), resource);
    s.loop = net.addTransition(name + ".loop", constant(1.0),
                               std::move(loop_freq));
    for (PlaceId pl : from) {
        net.inputArc(pl, s.exit);
        net.inputArc(pl, s.loop);
        net.outputArc(s.loop, pl);
    }
    for (PlaceId pl : to)
        net.outputArc(s.exit, pl);
    for (PlaceId pl : held) {
        net.inputArc(pl, s.exit);
        net.inputArc(pl, s.loop);
        net.outputArc(s.exit, pl);
        net.outputArc(s.loop, pl);
    }
    return s;
}

/** Add an instantaneous routing transition with the given frequency. */
TransId
addRoute(PetriNet &net, const std::string &name, Expr freq,
         const std::vector<PlaceId> &from, const std::vector<PlaceId> &to)
{
    const TransId t =
        net.addTransition(name, constant(0.0), std::move(freq));
    for (PlaceId pl : from)
        net.inputArc(pl, t);
    for (PlaceId pl : to)
        net.outputArc(t, pl);
    return t;
}

ClientModel
buildClientUni(const NonlocalClientParams &p, int n, double sd, int hosts,
               double k)
{
    ClientModel m;
    m.timeScale = k;
    PetriNet &net = m.net;

    const PlaceId clients = net.addPlace("Clients", n);
    const PlaceId host = net.addPlace("Host", hosts);
    const PlaceId io_out = net.addPlace("IoOut", 1);
    const PlaceId io_in = net.addPlace("IoIn", 1);
    const PlaceId send_done = net.addPlace("SendDone");
    const PlaceId wait_serv = net.addPlace("WaitServer");
    const PlaceId resp = net.addPlace("RespArrived");
    const PlaceId dma_in_act = net.addPlace("DmaInActive");
    const PlaceId net_intr = net.addPlace("NetIntr");

    // T4/T5 — interrupt service: cleanup and restart client.  Runs at
    // interrupt priority; it does not take the host token but shuts
    // the gate of every host stage below.
    const Stage intr = addStage(net, "netIntr", p.intrService / k,
                                {net_intr}, {clients}, {});
    const Expr g = allOf({placeEmpty(net_intr),
                          noneFiring({intr.exit, intr.loop})});

    // T1/T2 — syscall send (all communication processing on the host).
    addStage(net, "send", p.sendSyscall / k, {clients}, {send_done},
             {host}, g, lambdaResource);
    // T6/T7 — DMA out (independent unit, ungated).
    addStage(net, "dmaOut", p.dmaOut / k, {send_done}, {wait_serv},
             {io_out});
    // T8/T9 — surrogate server delay S_d.
    addStage(net, "serverDelay", sd / k, {wait_serv}, {resp}, {});
    // T10 — claim the inbound interface.
    addRoute(net, "claimIoIn", constant(1.0), {resp, io_in},
             {dma_in_act});
    // T11/T12 — DMA in; gated: the single receive buffer is busy until
    // the previous interrupt has been serviced.
    addStage(net, "dmaIn", p.dmaIn / k, {dma_in_act},
             {net_intr, io_in}, {}, g);
    return m;
}

ClientModel
buildClientCoproc(const NonlocalClientParams &p, int n, double sd,
                  int hosts, double k)
{
    ClientModel m;
    m.timeScale = k;
    PetriNet &net = m.net;

    const PlaceId clients = net.addPlace("Clients", n);
    const PlaceId host = net.addPlace("Host", hosts);
    const PlaceId mp = net.addPlace("MP", 1);
    const PlaceId io_out = net.addPlace("IoOut", 1);
    const PlaceId io_in = net.addPlace("IoIn", 1);
    const PlaceId send_req = net.addPlace("SendReq");
    const PlaceId mp_send_act = net.addPlace("MpSendActive");
    const PlaceId dma_out_q = net.addPlace("DmaOutQ");
    const PlaceId wait_serv = net.addPlace("WaitServer");
    const PlaceId resp = net.addPlace("RespArrived");
    const PlaceId dma_in_act = net.addPlace("DmaInActive");
    const PlaceId net_intr = net.addPlace("NetIntr");

    // T6/T7 — interrupt service on the MP: cleanup client.
    const Stage intr = addStage(net, "netIntr", p.intrService / k,
                                {net_intr}, {clients}, {});
    const Expr g = allOf({placeEmpty(net_intr),
                          noneFiring({intr.exit, intr.loop})});

    // T0/T1 — syscall send on the host (ungated: interrupts go to MP).
    addStage(net, "sendSyscall", p.sendSyscall / k, {clients},
             {send_req}, {host}, nullptr, lambdaResource);
    // T5 — MP picks up the request (gated against interrupt service);
    // the thesis' 1-us dispatch transition T2 is folded into the MP
    // send-processing mean.
    addRoute(net, "mpGrab", gate(g, 1.0), {send_req, mp},
             {mp_send_act});
    // T3/T4 — process send on the MP.
    addStage(net, "mpSend", (p.mpSend + p.dispatch) / k, {mp_send_act},
             {dma_out_q, mp}, {}, g);
    // T8/T9 — DMA out.
    addStage(net, "dmaOut", p.dmaOut / k, {dma_out_q}, {wait_serv},
             {io_out});
    // T10/T11 — surrogate server delay S_d.
    addStage(net, "serverDelay", sd / k, {wait_serv}, {resp}, {});
    // T12 — claim the inbound interface.
    addRoute(net, "claimIoIn", constant(1.0), {resp, io_in},
             {dma_in_act});
    // T13/T14 — DMA in (gated on the receive buffer being free).
    addStage(net, "dmaIn", p.dmaIn / k, {dma_in_act},
             {net_intr, io_in}, {}, g);
    return m;
}

ServerModel
buildServerUni(const NonlocalServerParams &p, int n, double cd, double x,
               int hosts, double k)
{
    ServerModel m;
    m.timeScale = k;
    PetriNet &net = m.net;

    const PlaceId servers = net.addPlace("Servers", n);
    const PlaceId host = net.addPlace("Host", hosts);
    const PlaceId client_wait = net.addPlace("ClientWait");
    const PlaceId req_arrived = net.addPlace("ReqArrived");
    const PlaceId req_service = net.addPlace("RequestService");
    const PlaceId server_ready = net.addPlace("ServerReady");
    const PlaceId queue = net.addPlace("Queue");
    const PlaceId done = net.addPlace("Done");

    // T8/T9 — match client with server (interrupt-level processing).
    const Stage match = addStage(net, "match", p.match / k,
                                 {req_service}, {server_ready}, {});
    const Expr g = allOf({placeEmpty(req_service),
                          noneFiring({match.exit, match.loop})});

    // T1/T2 — syscall receive on the host (gated).
    addStage(net, "recv", p.recvSyscall / k, {servers}, {client_wait},
             {host}, g);
    // T3/T4 — surrogate client wait C_d; arrival marks a request
    // entering the node and joins the customers-in-system Queue.
    const Stage wait = addStage(net, "clientWait", cd / k, {client_wait},
                                {req_arrived, queue}, {});
    m.arrival = wait.exit;
    // T5 — accept the request once no other is being matched.
    addRoute(net, "accept", gate(g, 1.0), {req_arrived}, {req_service});
    // T11/T12 — compute X and syscall reply on the host (gated).
    addStage(net, "computeReply", (p.replyBase + x) / k, {server_ready},
             {servers, done}, {host}, g, lambdaResource);
    // T7 — release the Queue token when the rendezvous completes.
    addRoute(net, "release", constant(1.0), {done, queue}, {});

    m.queue = queue;
    return m;
}

ServerModel
buildServerCoproc(const NonlocalServerParams &p, int n, double cd,
                  double x, int hosts, double k)
{
    ServerModel m;
    m.timeScale = k;
    PetriNet &net = m.net;

    const PlaceId servers = net.addPlace("Servers", n);
    const PlaceId host = net.addPlace("Host", hosts);
    const PlaceId mp = net.addPlace("MP", 1);
    const PlaceId recv_req = net.addPlace("RecvReq");
    const PlaceId mp_recv_act = net.addPlace("MpRecvActive");
    const PlaceId client_wait = net.addPlace("ClientWait");
    const PlaceId req_arrived = net.addPlace("ReqArrived");
    const PlaceId req_service = net.addPlace("RequestService");
    const PlaceId server_ready = net.addPlace("ServerReady");
    const PlaceId reply_req = net.addPlace("ReplyReq");
    const PlaceId mp_reply_act = net.addPlace("MpReplyActive");
    const PlaceId queue = net.addPlace("Queue");
    const PlaceId done = net.addPlace("Done");

    // T7/T8 — match client with server (MP interrupt processing).
    const Stage match = addStage(net, "match", p.match / k,
                                 {req_service}, {server_ready}, {});
    const Expr g = allOf({placeEmpty(req_service),
                          noneFiring({match.exit, match.loop})});

    // T13/T14 — syscall receive on the host (ungated in II-IV).
    addStage(net, "recvSyscall", p.recvSyscall / k, {servers},
             {recv_req}, {host});
    // MP picks up and processes the receive (T0/T1, gated).
    addRoute(net, "mpRecvGrab", gate(g, 1.0), {recv_req, mp},
             {mp_recv_act});
    addStage(net, "mpRecv", p.mpRecv / k, {mp_recv_act},
             {client_wait, mp}, {}, g);
    // T2/T3 — surrogate client wait C_d.
    const Stage wait = addStage(net, "clientWait", cd / k, {client_wait},
                                {req_arrived, queue}, {});
    m.arrival = wait.exit;
    // T4 — accept the request when no other is in service.
    addRoute(net, "accept", gate(g, 1.0), {req_arrived}, {req_service});
    // T9/T10 — compute X and syscall reply on the host.
    addStage(net, "computeReply", (p.replyBase + x) / k, {server_ready},
             {reply_req}, {host});
    // T11/T12 — process reply on the MP (gated).
    addRoute(net, "mpReplyGrab", gate(g, 1.0), {reply_req, mp},
             {mp_reply_act});
    addStage(net, "mpReply", p.mpReply / k, {mp_reply_act},
             {servers, done, mp}, {}, g, lambdaResource);
    // Release the Queue token at rendezvous completion.
    addRoute(net, "release", constant(1.0), {done, queue}, {});

    m.queue = queue;
    return m;
}

} // namespace

ClientModel
buildClientModel(const NonlocalClientParams &p, int clients,
                 double serverDelay, int hostTokens, double timeScale)
{
    hsipc_assert(clients >= 1 && hostTokens >= 1);
    hsipc_assert(serverDelay >= timeScale);
    if (p.arch == Arch::I)
        return buildClientUni(p, clients, serverDelay, hostTokens,
                              timeScale);
    return buildClientCoproc(p, clients, serverDelay, hostTokens,
                             timeScale);
}

ServerModel
buildServerModel(const NonlocalServerParams &p, int servers,
                 double clientWait, double computeTime, int hostTokens,
                 double timeScale)
{
    hsipc_assert(servers >= 1 && hostTokens >= 1);
    hsipc_assert(clientWait >= timeScale);
    hsipc_assert(computeTime >= 0.0);
    if (p.arch == Arch::I)
        return buildServerUni(p, servers, clientWait, computeTime,
                              hostTokens, timeScale);
    return buildServerCoproc(p, servers, clientWait, computeTime,
                             hostTokens, timeScale);
}

} // namespace hsipc::models
