#include "core/models/offered_load.hh"

#include <map>
#include <mutex>

#include "common/logging.hh"

namespace hsipc::models
{

const std::vector<double> &
offeredLoadServerTimesMs()
{
    static const std::vector<double> times = {
        0, 0.57, 1.14, 1.71, 2.85, 5.7, 11.4, 17.1, 22.8, 28.5, 34.2,
        39.9, 45.6,
    };
    return times;
}

double
communicationTime(Arch arch, bool local, const SolveConfig &cfg)
{
    static std::map<std::pair<int, bool>, double> cache;
    static std::mutex mutex;

    const auto key = std::make_pair(static_cast<int>(arch), local);
    {
        std::lock_guard<std::mutex> lock(mutex);
        auto it = cache.find(key);
        if (it != cache.end())
            return it->second;
    }

    double c;
    if (local) {
        const LocalSolution s = solveLocal(arch, 1, 0.0, cfg);
        hsipc_assert(s.throughputPerUs > 0.0);
        c = 1.0 / s.throughputPerUs;
    } else {
        const NonlocalSolution s = solveNonlocal(arch, 1, 0.0, cfg);
        hsipc_assert(s.throughputPerUs > 0.0);
        c = 1.0 / s.throughputPerUs;
    }

    std::lock_guard<std::mutex> lock(mutex);
    cache.emplace(key, c);
    return c;
}

double
offeredLoad(Arch arch, bool local, double serverUs, const SolveConfig &cfg)
{
    hsipc_assert(serverUs >= 0.0);
    const double c = communicationTime(arch, local, cfg);
    return c / (c + serverUs);
}

double
serverTimeForLoad(Arch arch, bool local, double load,
                  const SolveConfig &cfg)
{
    hsipc_assert(load > 0.0 && load <= 1.0);
    const double c = communicationTime(arch, local, cfg);
    return c * (1.0 - load) / load;
}

} // namespace hsipc::models
