/**
 * @file
 * Exact Mean Value Analysis (MVA) of closed queueing networks, as an
 * independent analytical cross-check of the GTPN models.
 *
 * The §6.3 workload is a closed network: N conversations cycle
 * through the host, the message coprocessor, the DMA engines and a
 * pure delay (the computation or the remote node).  Under the
 * product-form assumptions (exponential service, FCFS queueing
 * stations, infinite-server delay stations) the exact MVA recursion
 *
 *     R_k(n) = D_k * (1 + Q_k(n-1))         (queueing station)
 *     R_k(n) = D_k                          (delay station)
 *     X(n)   = n / sum_k R_k(n)
 *     Q_k(n) = X(n) * R_k(n)
 *
 * yields throughput without any state-space construction.  The GTPN
 * models use geometric (~exponential) stage times, so MVA should
 * track them closely wherever the architecture maps onto independent
 * stations — and the comparison quantifies what the Petri net adds
 * (the rendezvous coupling and interrupt preemption that product-form
 * networks cannot express).
 */

#ifndef HSIPC_MODELS_MVA_HH
#define HSIPC_MODELS_MVA_HH

#include <string>
#include <vector>

#include "core/models/processing_times.hh"

namespace hsipc::models
{

/** One service center of a closed network. */
struct Station
{
    std::string name;
    double demand = 0;  //!< total service demand per cycle, us
    bool delay = false; //!< infinite-server (think/delay) station
};

/** Results of an exact MVA solve. */
struct MvaResult
{
    double throughputPerUs = 0; //!< cycles per microsecond
    double cycleTimeUs = 0;
    std::vector<double> residenceUs;  //!< per station
    std::vector<double> queueLength;  //!< per station
    std::vector<double> utilization;  //!< per station (X * demand)
};

/** Run the exact MVA recursion for @p customers. */
MvaResult solveMva(const std::vector<Station> &stations, int customers);

/**
 * The station mapping of an architecture's local-conversation
 * round trip (host and MP demands from the transition means).
 */
std::vector<Station> localStations(Arch arch, double computeTime);

/** MVA throughput of the local model of @p arch (cycles per us). */
double mvaLocalThroughput(Arch arch, int conversations,
                          double computeTime);

} // namespace hsipc::models

#endif // HSIPC_MODELS_MVA_HH
