/**
 * @file
 * Offered-load computation (Tables 6.24 and 6.25).
 *
 * Offered load is C / (C + S): the fraction of a conversation spent in
 * communication, where C is the round-trip communication time of one
 * conversation under the given architecture and S the server
 * computation time.  The thesis obtains C by solving the models with
 * one conversation and zero computation; communicationTime() does the
 * same (and caches the result).
 */

#ifndef HSIPC_MODELS_OFFERED_LOAD_HH
#define HSIPC_MODELS_OFFERED_LOAD_HH

#include <vector>

#include "core/models/processing_times.hh"
#include "core/models/solution.hh"

namespace hsipc::models
{

/** The server-computation times (milliseconds) of Tables 6.24/6.25. */
const std::vector<double> &offeredLoadServerTimesMs();

/**
 * Round-trip communication time C for one conversation at zero
 * computation, microseconds.  Results are cached per (arch, local).
 */
double communicationTime(Arch arch, bool local,
                         const SolveConfig &cfg = SolveConfig());

/** Offered load C / (C + S) for a server time of @p serverUs. */
double offeredLoad(Arch arch, bool local, double serverUs,
                   const SolveConfig &cfg = SolveConfig());

/**
 * The server computation time S achieving a given offered load under
 * @p arch (the inverse of offeredLoad), microseconds.
 */
double serverTimeForLoad(Arch arch, bool local, double load,
                         const SolveConfig &cfg = SolveConfig());

} // namespace hsipc::models

#endif // HSIPC_MODELS_OFFERED_LOAD_HH
