/**
 * @file
 * The low-level shared-memory contention model of §6.6.2 (Fig 6.8,
 * Tables 6.2/6.3).
 *
 * Each message-passing activity consists of processing time and
 * shared-memory access time.  Exact modeling of memory contention
 * inside the architecture nets would explode their state space, so the
 * thesis computes, in a separate small GTPN, the "contention"
 * completion time of each activity when all potentially-overlapping
 * activities run concurrently, and feeds those inflated times into the
 * higher-level models.
 *
 * Every activity loops forever: each time unit it either performs a
 * processing step or (with probability memory/total) requests one
 * shared-memory cycle, contending with all other activities for the
 * memory port; the activity completes with probability 1/total per
 * unit.  The contention completion time is the reciprocal of the
 * completion rate.
 */

#ifndef HSIPC_MODELS_CONTENTION_HH
#define HSIPC_MODELS_CONTENTION_HH

#include <string>
#include <vector>

#include "core/gtpn/analyzer.hh"

namespace hsipc::models
{

/** One activity of the contention model. */
struct Activity
{
    std::string name;
    double processing; //!< processor time per completion, microseconds
    double memory;     //!< shared-memory cycles per completion
    int bus = 0;       //!< memory partition (architecture IV uses 2)

    double total() const { return processing + memory; }
};

/** Per-activity completion times. */
struct ContentionResult
{
    std::vector<double> best;       //!< processing + memory
    std::vector<double> contention; //!< under full overlap
};

/**
 * Solve the contention model for @p activities over @p numBuses
 * independent memory partitions.
 */
ContentionResult
solveContention(const std::vector<Activity> &activities, int numBuses = 1,
                const gtpn::AnalyzerOptions &opts = gtpn::AnalyzerOptions());

/** The four activities of Table 6.2 (architecture I, client node). */
std::vector<Activity> archIClientActivities();

} // namespace hsipc::models

#endif // HSIPC_MODELS_CONTENTION_HH
