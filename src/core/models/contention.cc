#include "core/models/contention.hh"

#include "common/logging.hh"

namespace hsipc::models
{

using namespace gtpn;

ContentionResult
solveContention(const std::vector<Activity> &activities, int numBuses,
                const AnalyzerOptions &opts)
{
    hsipc_assert(!activities.empty());
    hsipc_assert(numBuses >= 1);

    PetriNet net;
    std::vector<PlaceId> mem_bus;
    for (int b = 0; b < numBuses; ++b)
        mem_bus.push_back(net.addPlace("MemBus" + std::to_string(b), 1));

    std::vector<TransId> completion;
    for (const Activity &a : activities) {
        hsipc_assert(a.total() >= 2.0);
        hsipc_assert(a.bus >= 0 && a.bus < numBuses);
        const PlaceId run = net.addPlace(a.name + ".Run", 1);
        const PlaceId sel = net.addPlace(a.name + ".Sel");
        const PlaceId need = net.addPlace(a.name + ".NeedMem");

        const double t = a.total();
        // T1 — the activity completes (its final processing step);
        // the attached resource measures the completion rate.
        const TransId t1 =
            net.addTransition(a.name + ".done", 1.0, 1.0 / t, a.name);
        net.inputArc(run, t1);
        net.outputArc(t1, run);
        completion.push_back(t1);
        // T0 — otherwise move to the step selector.
        const TransId t0 =
            net.addTransition(a.name + ".step", 0.0, 1.0 - 1.0 / t);
        net.inputArc(run, t0);
        net.outputArc(t0, sel);
        // T2 — this step needs a shared-memory cycle.
        const TransId t2 =
            net.addTransition(a.name + ".wantMem", 0.0, a.memory / t);
        net.inputArc(sel, t2);
        net.outputArc(t2, need);
        // T3 — this step is pure processing.
        const TransId t3 =
            net.addTransition(a.name + ".cpu", 1.0, 1.0 - a.memory / t);
        net.inputArc(sel, t3);
        net.outputArc(t3, run);
        // T4 — one memory cycle, contending for the memory port.
        const TransId t4 = net.addTransition(a.name + ".memCycle", 1.0,
                                             1.0);
        net.inputArc(need, t4);
        net.inputArc(mem_bus[static_cast<std::size_t>(a.bus)], t4);
        net.outputArc(t4, run);
        net.outputArc(t4,
                      mem_bus[static_cast<std::size_t>(a.bus)]);
    }

    const AnalyzerResult r = analyze(net, opts);
    hsipc_assert(!r.deadlock);

    ContentionResult out;
    for (std::size_t i = 0; i < activities.size(); ++i) {
        out.best.push_back(activities[i].total());
        const double rate =
            r.firingRate[static_cast<std::size_t>(completion[i])];
        hsipc_assert(rate > 0.0);
        out.contention.push_back(1.0 / rate);
    }
    return out;
}

std::vector<Activity>
archIClientActivities()
{
    // Table 6.2 — architecture I, non-local conversation, client node.
    return {
        {"SendProc", 1140, 150, 0},
        {"DMAout", 200, 30, 0},
        {"DMAin", 200, 30, 0},
        {"NetIntr", 830, 130, 0},
    };
}

} // namespace hsipc::models
