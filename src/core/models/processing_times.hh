/**
 * @file
 * Processing-time data for the four node architectures of chapter 6.
 *
 * The thesis drives its GTPN models with processing times measured on
 * the 925 implementation (chapter 4):
 *
 *  - Architecture I   — uniprocessor (Fig 6.1),
 *  - Architecture II  — message coprocessor (Fig 6.2),
 *  - Architecture III — message coprocessor + smart bus (Fig 6.3),
 *  - Architecture IV  — partitioned smart bus (Fig 6.4).
 *
 * This header exposes (a) the per-round-trip step tables (Tables 6.4,
 * 6.6, 6.9, 6.11, 6.14, 6.16, 6.19, 6.21), (b) the derived transition
 * means actually used by the models (Tables 6.5/6.7/6.8 etc.), and
 * (c) the operation-cost comparison of Table 6.1.
 */

#ifndef HSIPC_MODELS_PROCESSING_TIMES_HH
#define HSIPC_MODELS_PROCESSING_TIMES_HH

#include <string>
#include <vector>

namespace hsipc::models
{

/** The four node architectures compared in chapter 6. */
enum class Arch { I = 1, II = 2, III = 3, IV = 4 };

/** Human-readable architecture name. */
std::string archName(Arch a);

/** One processing step of a round-trip conversation. */
struct Step
{
    const char *processor;   //!< "Host", "MP" or "DMA"
    const char *initiator;   //!< "Client", "Server", "Network interrupt"
    const char *number;      //!< the thesis' action number, e.g. "4a"
    const char *description;
    double processing;       //!< processor time, microseconds
    double kbAccess;         //!< kernel-buffer shared-memory time
    double tcbAccess;        //!< task-control-block shared-memory time
    bool workload;           //!< true for the Compute row (parameter X)

    /** Shared-memory access time (KB + TCB partitions combined). */
    double shmem() const { return kbAccess + tcbAccess; }

    /** Completion time without contention. */
    double best() const { return processing + shmem(); }

    /** Completion time when all overlapping activities contend. */
    double contention;
};

/**
 * The step table for one architecture and conversation kind.
 * @p local selects the local-conversation table.
 */
const std::vector<Step> &stepTable(Arch a, bool local);

/** Sum of "best" completion times of all non-workload steps. */
double roundTripBest(Arch a, bool local);

// --- Transition means used by the chapter-6 models ---------------------
//
// These are the values printed in the thesis' transition tables; they
// already include shared-memory contention from the low-level model of
// §6.6.2.  All times are microseconds.

/** Parameters of the local-conversation model (Figs 6.9/6.12). */
struct LocalParams
{
    Arch arch;
    // Architecture I lumps everything onto the host:
    double uniSend = 0;          //!< T0/T1 of Fig 6.9 (actions 1,7)
    double uniRecv = 0;          //!< T2/T3 (actions 2,6)
    double uniMatchReply = 0;    //!< T4/T5 without X (actions 3,5)
    // Architectures II-IV (Fig 6.12):
    double sendSyscall = 0;      //!< host: syscall send (+ restart client)
    double recvSyscall = 0;      //!< host: syscall receive (+ restart)
    double mpSend = 0;           //!< MP: process send
    double mpRecv = 0;           //!< MP: process receive
    double mpMatch = 0;          //!< MP: match client with server
    double hostReplyBase = 0;    //!< host: restart + reply, without X
    double mpReply = 0;          //!< MP: process reply
};

/** Parameters of the non-local client-node model (Figs 6.10/6.13). */
struct NonlocalClientParams
{
    Arch arch;
    double sendSyscall = 0;   //!< host (I: all send processing on host)
    double dispatch = 0;      //!< MP dispatch (the 1 microsecond T2)
    double mpSend = 0;        //!< MP: process send (II-IV only)
    double dmaOut = 0;
    double dmaIn = 0;
    double intrService = 0;   //!< cleanup + restart client on interrupt
};

/** Parameters of the non-local server-node model (Figs 6.11/6.14). */
struct NonlocalServerParams
{
    Arch arch;
    double recvSyscall = 0;   //!< host: receive syscall (I: whole receive)
    double mpRecv = 0;        //!< MP: process receive (II-IV only)
    double match = 0;         //!< interrupt: match client with server
    double replyBase = 0;     //!< host: restart + compute + reply, w/o X
    double mpReply = 0;       //!< MP: process reply (II-IV only)
    double dmaIn = 0;         //!< added to S_d outside the model
    double dmaOut = 0;        //!< added to S_d outside the model

    /** Mean receive-path time S_c overlapping the client's busy time. */
    double receivePath() const { return recvSyscall + mpRecv; }
};

LocalParams localParams(Arch a);
NonlocalClientParams nonlocalClientParams(Arch a);
NonlocalServerParams nonlocalServerParams(Arch a);

// --- Table 6.1: operation-cost comparison ------------------------------

/** One row of Table 6.1. */
struct OpCost
{
    const char *operation;
    double processingII;  //!< software implementation on Versabus
    double memoryII;
    double processingIII; //!< smart-bus primitive
    double memoryIII;
    const char *handshake;
};

/** Table 6.1 — queue/block operation costs, Arch II vs III. */
const std::vector<OpCost> &opCostTable();

} // namespace hsipc::models

#endif // HSIPC_MODELS_PROCESSING_TIMES_HH
