/**
 * @file
 * GTPN models of local conversations (Figs 6.9 and 6.12).
 *
 * The workload of §6.3: N clients loop doing blocking remote-invocation
 * sends, N servers loop doing receive/compute/reply; a conversation is
 * one rendezvous.  Large constant processing times are approximated by
 * geometric delays (Fig 6.7): each stage is a pair of delay-1
 * transitions sharing their input places, the "exit" member firing
 * with probability 1/mean per time unit.
 *
 * A model can be built at a coarser granularity via @c timeScale: all
 * stage means are divided by it and one model time unit then
 * represents timeScale microseconds.  Because the geometric
 * approximation's coefficient of variation is essentially independent
 * of the mean, rescaling preserves mean throughput while shrinking the
 * Markov chain's mixing time.
 */

#ifndef HSIPC_MODELS_LOCAL_MODEL_HH
#define HSIPC_MODELS_LOCAL_MODEL_HH

#include "core/gtpn/net.hh"
#include "core/models/processing_times.hh"

namespace hsipc::models
{

/** Name of the round-trip throughput resource in all chapter-6 nets. */
inline const char *lambdaResource = "Lambda";

/** A built local-conversation model. */
struct LocalModel
{
    gtpn::PetriNet net;
    double timeScale = 1.0;

    /**
     * Convert the analyzer's usage of the Lambda resource into
     * round trips per microsecond.
     */
    double
    throughputPerUs(double lambda_usage) const
    {
        return lambda_usage / timeScale;
    }
};

/**
 * Build the local-conversation net for the given architecture.
 *
 * @param p             transition means (already contention adjusted)
 * @param conversations number of simultaneous client/server pairs
 * @param computeTime   server computation X per conversation, in us
 * @param timeScale     model granularity, microseconds per time unit
 * @param hostTokens    host processors in the node — the chapter-7
 *                      extension to shared-memory multiprocessor
 *                      nodes (Fig 7.1), one message coprocessor
 *                      serving a collection of hosts
 */
LocalModel buildLocalModel(const LocalParams &p, int conversations,
                           double computeTime, double timeScale = 1.0,
                           int hostTokens = 1);

/**
 * Scale the message-coprocessor stage means by 1/factor, modeling an
 * MP @p factor times faster (or slower) than the host — the
 * front-end-processor speed question of the chapter-1 related work.
 * Architecture I has no MP and is returned unchanged.
 */
LocalParams scaleMpSpeed(LocalParams p, double factor);

/**
 * The front-end-processor offload question of §1.2 (Woodside 84,
 * Vernon 86): move a fraction of the communication processing to the
 * front-end and ask what throughput results.
 *
 * Derived from architecture II's stage means: each MP stage keeps
 * @p fraction of its work on the front-end (running at @p mpSpeed
 * times the host's rate) and returns the remainder to the host
 * syscall stages.  fraction = 1 with mpSpeed = 1 reproduces
 * architecture II; fraction = 0 degenerates to a uniprocessor
 * carrying architecture II's total cost.
 */
LocalParams offloadParams(double fraction, double mpSpeed = 1.0);

} // namespace hsipc::models

#endif // HSIPC_MODELS_LOCAL_MODEL_HH
