#include "core/models/mva.hh"

#include "common/logging.hh"

namespace hsipc::models
{

MvaResult
solveMva(const std::vector<Station> &stations, int customers)
{
    hsipc_assert(!stations.empty());
    hsipc_assert(customers >= 1);

    const std::size_t k = stations.size();
    std::vector<double> q(k, 0.0); // Q_k(n-1)
    MvaResult res;
    res.residenceUs.assign(k, 0.0);
    res.queueLength.assign(k, 0.0);
    res.utilization.assign(k, 0.0);

    for (int n = 1; n <= customers; ++n) {
        double cycle = 0.0;
        for (std::size_t i = 0; i < k; ++i) {
            res.residenceUs[i] = stations[i].delay
                ? stations[i].demand
                : stations[i].demand * (1.0 + q[i]);
            cycle += res.residenceUs[i];
        }
        const double x = static_cast<double>(n) / cycle;
        for (std::size_t i = 0; i < k; ++i)
            q[i] = x * res.residenceUs[i];
        res.throughputPerUs = x;
        res.cycleTimeUs = cycle;
    }
    for (std::size_t i = 0; i < k; ++i) {
        res.queueLength[i] = q[i];
        res.utilization[i] =
            res.throughputPerUs * stations[i].demand;
    }
    return res;
}

std::vector<Station>
localStations(Arch arch, double x)
{
    const LocalParams p = localParams(arch);
    std::vector<Station> st;
    if (arch == Arch::I) {
        // Everything serializes through the host; the computation X
        // is part of the host's matchReply stage in the thesis'
        // model, so it queues rather than overlaps.
        st.push_back(Station{
            "Host", p.uniSend + p.uniRecv + p.uniMatchReply + x,
            false});
        return st;
    }
    st.push_back(Station{"Host",
                         p.sendSyscall + p.recvSyscall +
                             p.hostReplyBase + x,
                         false});
    st.push_back(Station{
        "MP", p.mpSend + p.mpRecv + p.mpMatch + p.mpReply, false});
    return st;
}

double
mvaLocalThroughput(Arch arch, int conversations, double computeTime)
{
    return solveMva(localStations(arch, computeTime), conversations)
        .throughputPerUs;
}

} // namespace hsipc::models
