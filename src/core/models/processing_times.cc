#include "core/models/processing_times.hh"

#include "common/logging.hh"

namespace hsipc::models
{

std::string
archName(Arch a)
{
    switch (a) {
      case Arch::I: return "Architecture I (uniprocessor)";
      case Arch::II: return "Architecture II (message coprocessor)";
      case Arch::III: return "Architecture III (smart bus)";
      case Arch::IV: return "Architecture IV (partitioned smart bus)";
    }
    hsipc_panic("bad Arch");
}

namespace
{

// Step{processor, initiator, number, description,
//      processing, kbAccess, tcbAccess, workload, contention}
//
// For architectures I-III the thesis reports a single shared-memory
// access column; we store it in tcbAccess (the two columns only split
// for architecture IV, whose bus is partitioned).

const std::vector<Step> archILocal = {
    {"Host", "Client", "1", "Syscall Send", 1040, 0, 150, false, 1190},
    {"Host", "Server", "2", "Syscall Receive", 650, 0, 120, false, 770},
    {"Host", "", "3", "Match client with server", 1240, 0, 140, false,
     1380},
    {"Host", "Server", "4", "Compute", 0, 0, 0, true, 0},
    {"Host", "Server", "5", "Syscall Reply", 1020, 0, 210, false, 1230},
    {"Host", "", "6", "Restart Server", 140, 0, 60, false, 200},
    {"Host", "", "7", "Restart Client", 140, 0, 60, false, 200},
};

const std::vector<Step> archINonlocal = {
    {"Host", "Client", "1", "Syscall Send", 1140, 0, 150, false, 1314.9},
    {"DMA", "Client", "2", "DMA out", 200, 0, 30, false, 235.2},
    {"Host", "Server", "3", "Syscall Receive", 650, 0, 120, false, 790.7},
    {"DMA", "Network interrupt", "4", "DMA in", 200, 0, 30, false, 235.2},
    {"Host", "Network interrupt", "4a", "Match client with server", 1790,
     0, 210, false, 2034.6},
    {"Host", "Server", "4b", "Compute", 0, 0, 0, true, 0},
    {"Host", "Server", "4c", "Syscall Reply", 1060, 0, 220, false, 1318.5},
    {"DMA", "Server", "5", "DMA out", 200, 0, 30, false, 235.2},
    {"DMA", "Network interrupt", "6", "DMA in", 200, 0, 30, false, 235.2},
    {"Host", "Network interrupt", "7", "Cleanup and Restart Client", 830,
     0, 130, false, 982},
};

const std::vector<Step> archIILocal = {
    {"Host", "Client", "1", "Syscall Send", 320, 0, 78, false, 404.9},
    {"MP", "Client", "2", "Process Send", 900, 0, 104, false, 1030.2},
    {"Host", "Server", "3", "Syscall Receive", 320, 0, 78, false, 404.9},
    {"MP", "Server", "4", "Process Receive", 510, 0, 74, false, 603},
    {"MP", "", "5", "Match client with server", 1160, 0, 84, false,
     1264.4},
    {"Host", "Server", "6", "Restart Server", 60, 0, 50, false, 115.4},
    {"Host", "Server", "6a", "Compute", 0, 0, 0, true, 0},
    {"Host", "Server", "6b", "Syscall Reply", 320, 0, 78, false, 404.9},
    {"MP", "Server", "7", "Process Reply", 1060, 0, 182, false, 1289.8},
    {"Host", "", "8", "Restart Server", 60, 0, 50, false, 115.4},
    {"Host", "", "9", "Restart Client", 60, 0, 50, false, 115.4},
};

const std::vector<Step> archIINonlocal = {
    {"Host", "Client", "1", "Syscall Send", 320, 0, 78, false, 426.8},
    {"MP", "Client", "2", "Process Send", 1000, 0, 104, false, 1145.2},
    {"DMA", "Client", "2a", "DMA out", 200, 0, 30, false, 240.9},
    {"Host", "Server", "3", "Syscall Receive", 320, 0, 78, false, 421.9},
    {"MP", "Server", "4", "Process Receive", 510, 0, 74, false, 628.2},
    {"DMA", "Network interrupt", "5", "DMA in", 200, 0, 30, false, 247.8},
    {"MP", "Network interrupt", "5", "Match client with server", 1650, 0,
     104, false, 1812.5},
    {"Host", "Server", "6", "Restart Server", 60, 0, 50, false, 128.6},
    {"Host", "Server", "6a", "Compute", 0, 0, 0, true, 0},
    {"Host", "Server", "6b", "Syscall Reply", 320, 0, 78, false, 421.9},
    {"MP", "Server", "7", "Process Reply", 920, 0, 128, false, 1124},
    {"DMA", "Server", "7a", "DMA out", 200, 0, 30, false, 247.8},
    {"Host", "", "8", "Restart Server", 60, 0, 50, false, 128.6},
    {"DMA", "Network interrupt", "9", "DMA in", 200, 0, 30, false, 240.9},
    {"MP", "Network interrupt", "9a", "Cleanup client", 750, 0, 74, false,
     853.2},
    {"Host", "", "10", "Restart Client", 60, 0, 50, false, 118.0},
};

const std::vector<Step> archIIILocal = {
    {"Host", "Client", "1", "Syscall Send", 220, 0, 52, false, 278},
    {"MP", "Client", "2", "Process Send", 612, 0, 71, false, 700.9},
    {"Host", "Server", "3", "Syscall Receive", 220, 0, 52, false, 278},
    {"MP", "Server", "4", "Process Receive", 451, 0, 61, false, 527.6},
    {"MP", "", "5", "Match client with server", 922, 0, 61, false, 997.7},
    {"Host", "Server", "6", "Restart Server", 60, 0, 50, false, 117.2},
    {"Host", "Server", "6a", "Compute", 0, 0, 0, true, 0},
    {"Host", "Server", "6b", "Syscall Reply", 220, 0, 52, false, 278},
    {"MP", "Server", "7", "Process Reply", 475, 0, 113, false, 619},
    {"Host", "", "8", "Restart Server", 60, 0, 50, false, 117.2},
    {"Host", "", "9", "Restart Client", 60, 0, 50, false, 117.2},
};

const std::vector<Step> archIIINonlocal = {
    {"Host", "Client", "1", "Syscall Send", 220, 0, 52, false, 284.5},
    {"MP", "Client", "2", "Process Send", 712, 0, 71, false, 805},
    {"DMA", "Client", "2a", "DMA out", 200, 0, 15, false, 219.4},
    {"Host", "Server", "3", "Syscall Receive", 220, 0, 52, false, 281.8},
    {"MP", "Server", "4", "Process Receive", 451, 0, 61, false, 540},
    {"DMA", "Network interrupt", "5", "DMA in", 200, 0, 15, false, 222.1},
    {"MP", "Network interrupt", "5", "Match client with server", 1362, 0,
     71, false, 1461},
    {"Host", "Server", "6", "Restart Server", 60, 0, 50, false, 121.5},
    {"Host", "Server", "6a", "Compute", 0, 0, 0, true, 0},
    {"Host", "Server", "6b", "Syscall Reply", 220, 0, 52, false, 281.8},
    {"MP", "Server", "7", "Process Reply", 573, 0, 82, false, 690},
    {"DMA", "Server", "7a", "DMA out", 200, 0, 15, false, 222.1},
    {"Host", "", "8", "Restart Server", 60, 0, 50, false, 121.5},
    {"DMA", "Network interrupt", "9", "DMA in", 200, 0, 15, false, 219.4},
    {"MP", "Network interrupt", "9a", "Cleanup client", 462, 0, 41, false,
     514},
    {"Host", "", "10", "Restart Client", 60, 0, 50, false, 115.1},
};

const std::vector<Step> archIVLocal = {
    {"Host", "Client", "1", "Syscall Send", 220, 0, 52, false, 273.7},
    {"MP", "Client", "2", "Process Send", 612, 50, 21, false, 687.9},
    {"Host", "Server", "3", "Syscall Receive", 220, 0, 52, false, 273.7},
    {"MP", "Server", "4", "Process Receive", 451, 40, 21, false, 516.9},
    {"MP", "", "5", "Match client with server", 922, 60, 1, false, 983.2},
    {"Host", "Server", "6", "Restart Server", 60, 0, 50, false, 112},
    {"Host", "Server", "6a", "Compute", 0, 0, 0, true, 0},
    {"Host", "Server", "6b", "Syscall Reply", 220, 0, 52, false, 273.7},
    {"MP", "Server", "7", "Process Reply", 475, 80, 33, false, 595.9},
    {"Host", "", "8", "Restart Server", 60, 0, 50, false, 112},
    {"Host", "", "9", "Restart Client", 60, 0, 50, false, 112},
};

const std::vector<Step> archIVNonlocal = {
    {"Host", "Client", "1", "Syscall Send", 220, 0, 52, false, 273.2},
    {"MP", "Client", "2", "Process Send", 712, 50, 21, false, 789.8},
    {"DMA", "Client", "2a", "DMA out", 200, 15, 0, false, 216.3},
    {"Host", "Server", "3", "Syscall Receive", 220, 0, 52, false, 273.5},
    {"MP", "Server", "4", "Process Receive", 451, 40, 21, false, 520.2},
    {"DMA", "Network interrupt", "5", "DMA in", 200, 15, 0, false, 216.3},
    {"MP", "Network interrupt", "5", "Match client with server", 1362, 40,
     31, false, 1443},
    {"Host", "Server", "6", "Restart Server", 60, 0, 50, false, 111.8},
    {"Host", "Server", "6a", "Compute", 0, 0, 0, true, 0},
    {"Host", "Server", "6b", "Syscall Reply", 220, 0, 52, false, 273.5},
    {"MP", "Server", "7", "Process Reply", 573, 50, 32, false, 666.6},
    {"DMA", "Server", "7a", "DMA out", 200, 15, 0, false, 216.3},
    {"Host", "", "8", "Restart Server", 60, 0, 50, false, 111.8},
    {"DMA", "Network interrupt", "9", "DMA in", 200, 15, 0, false, 216.3},
    {"MP", "Network interrupt", "9a", "Cleanup client", 462, 40, 1, false,
     506.4},
    {"Host", "", "10", "Restart Client", 60, 0, 50, false, 110.5},
};

} // namespace

const std::vector<Step> &
stepTable(Arch a, bool local)
{
    switch (a) {
      case Arch::I: return local ? archILocal : archINonlocal;
      case Arch::II: return local ? archIILocal : archIINonlocal;
      case Arch::III: return local ? archIIILocal : archIIINonlocal;
      case Arch::IV: return local ? archIVLocal : archIVNonlocal;
    }
    hsipc_panic("bad Arch");
}

double
roundTripBest(Arch a, bool local)
{
    double total = 0.0;
    for (const Step &s : stepTable(a, local)) {
        if (!s.workload)
            total += s.best();
    }
    return total;
}

LocalParams
localParams(Arch a)
{
    LocalParams p{};
    p.arch = a;
    switch (a) {
      case Arch::I:
        // Table 6.5: T0/T1 lump actions 1+7, T2/T3 actions 2+6, and
        // T4/T5 actions 3+5 (plus the workload parameter X).
        p.uniSend = 1390;
        p.uniRecv = 970;
        p.uniMatchReply = 1380 + 1230;
        return p;
      case Arch::II:
        // Table 6.10.
        p.sendSyscall = 519.9;
        p.recvSyscall = 519.9;
        p.mpSend = 1030.2;
        p.mpRecv = 603;
        p.mpMatch = 1264.4;
        p.hostReplyBase = 520.3;
        p.mpReply = 1289.8;
        return p;
      case Arch::III:
        // Table 6.15.
        p.sendSyscall = 394.6;
        p.recvSyscall = 394.6;
        p.mpSend = 700.9;
        p.mpRecv = 527.6;
        p.mpMatch = 997.7;
        p.hostReplyBase = 395.2;
        p.mpReply = 619;
        return p;
      case Arch::IV:
        // Table 6.20.
        p.sendSyscall = 385.6;
        p.recvSyscall = 385.6;
        p.mpSend = 687.9;
        p.mpRecv = 516.9;
        p.mpMatch = 983.2;
        p.hostReplyBase = 385.7;
        p.mpReply = 595.9;
        return p;
    }
    hsipc_panic("bad Arch");
}

NonlocalClientParams
nonlocalClientParams(Arch a)
{
    NonlocalClientParams p{};
    p.arch = a;
    switch (a) {
      case Arch::I:
        // Table 6.7.
        p.sendSyscall = 1314.9;
        p.dmaOut = 235.2;
        p.dmaIn = 235.2;
        p.intrService = 982;
        return p;
      case Arch::II:
        // Table 6.12.
        p.sendSyscall = 544.7;
        p.dispatch = 1;
        p.mpSend = 1145.2;
        p.dmaOut = 240.9;
        p.dmaIn = 240.9;
        p.intrService = 853.2;
        return p;
      case Arch::III:
        // Table 6.17.
        p.sendSyscall = 399.6;
        p.dispatch = 1;
        p.mpSend = 805;
        p.dmaOut = 219.4;
        p.dmaIn = 219.4;
        p.intrService = 514;
        return p;
      case Arch::IV:
        // Table 6.22.
        p.sendSyscall = 383.7;
        p.dispatch = 1;
        p.mpSend = 789.8;
        p.dmaOut = 216.3;
        p.dmaIn = 216.3;
        p.intrService = 506.4;
        return p;
    }
    hsipc_panic("bad Arch");
}

NonlocalServerParams
nonlocalServerParams(Arch a)
{
    NonlocalServerParams p{};
    p.arch = a;
    switch (a) {
      case Arch::I:
        // Table 6.8.
        p.recvSyscall = 790.7;
        p.match = 2034.6;
        p.replyBase = 1318.5;
        p.dmaIn = 235.2;
        p.dmaOut = 235.2;
        return p;
      case Arch::II:
        // Table 6.13.
        p.recvSyscall = 549;
        p.mpRecv = 628.2;
        p.match = 1812.5;
        p.replyBase = 550.5;
        p.mpReply = 1124;
        p.dmaIn = 247.8;
        p.dmaOut = 247.8;
        return p;
      case Arch::III:
        // Table 6.18.
        p.recvSyscall = 402.1;
        p.mpRecv = 540;
        p.match = 1461;
        p.replyBase = 403.3;
        p.mpReply = 690;
        p.dmaIn = 222.1;
        p.dmaOut = 222.1;
        return p;
      case Arch::IV:
        // Table 6.23.
        p.recvSyscall = 385.2;
        p.mpRecv = 520.2;
        p.match = 1443;
        p.replyBase = 385.3;
        p.mpReply = 666.6;
        p.dmaIn = 216.3;
        p.dmaOut = 216.3;
        return p;
    }
    hsipc_panic("bad Arch");
}

const std::vector<OpCost> &
opCostTable()
{
    // Table 6.1.  Times in microseconds; arch II implements queue
    // operations in software (semaphore + algorithm + release) on a
    // conventional bus, arch III issues smart-bus primitives (three
    // instructions of 3 us each to initiate; the memory-cycle column
    // follows from the handshake edge counts of chapter 5).
    static const std::vector<OpCost> table = {
        {"Enqueue", 60, 14, 9, 1, "Four-edge"},
        {"Dequeue", 60, 14, 9, 1, "Four-edge"},
        {"First", 60, 14, 9, 2, "Eight-edge"},
        {"Block Read (40 Bytes)", 180, 20, 9, 11,
         "One four-edge followed by twenty two-edge"},
        {"Block Write (40 Bytes)", 180, 20, 9, 11,
         "One four-edge followed by twenty two-edge"},
    };
    return table;
}

} // namespace hsipc::models
