#include "core/gtpn/simulator.hh"

#include "common/rng.hh"
#include "core/gtpn/tokengame.hh"

namespace hsipc::gtpn
{

SimResult
simulate(const PetriNet &net, const SimOptions &opts)
{
    SimResult res;
    res.firingRate.assign(net.numTransitions(), 0.0);

    Rng rng(opts.seed);
    NetState state{net.initialMarking(), {}};
    sampleFirings(net, state, rng);

    // Trace layout: one track per transition, registered in
    // transition order so the timeline is stable across runs.
    trace::Tracer *tr =
        (opts.tracer && opts.tracer->enabled()) ? opts.tracer
                                                : nullptr;
    std::vector<int> trTracks;
    if (tr) {
        for (std::size_t t = 0; t < net.numTransitions(); ++t) {
            const Transition &tn =
                net.transition(static_cast<TransId>(t));
            const std::string base =
                tn.resource.empty() ? std::string("gtpn")
                                    : tn.resource;
            const std::string label =
                tn.name.empty() ? "t" + std::to_string(t) : tn.name;
            trTracks.push_back(tr->track(base + "." + label));
        }
    }

    double now = 0.0;
    const double start = opts.warmup;
    const double end = opts.warmup + opts.horizon;

    std::map<std::string, double> usage_area;
    std::vector<double> completions(net.numTransitions(), 0.0);
    std::vector<double> occupancy_area(net.numPlaces(), 0.0);

    while (now < end) {
        if (state.firings.empty()) {
            res.deadlock = true;
            break;
        }

        // The in-flight set is constant until the next completion.
        NetState advanced = state;
        const int step = advanceTime(net, advanced);
        const double t0 = now;
        const double t1 = now + static_cast<double>(step);

        // Overlap of [t0, t1) with the measurement window.
        const double lo = t0 > start ? t0 : start;
        const double hi = t1 < end ? t1 : end;
        if (hi > lo) {
            for (const Firing &f : state.firings) {
                const std::string &r = net.transition(f.trans).resource;
                if (!r.empty())
                    usage_area[r] += hi - lo;
            }
            for (std::size_t p = 0; p < net.numPlaces(); ++p) {
                occupancy_area[p] +=
                    (hi - lo) * static_cast<double>(state.marking[p]);
            }
        }

        // Count completions that land inside the window.
        if (t1 > start && t1 <= end) {
            for (const Firing &f : state.firings) {
                if (f.remaining == step)
                    completions[static_cast<std::size_t>(f.trans)] += 1.0;
            }
        }

        if (tr) {
            // Tick endpoints computed per-boundary so consecutive
            // intervals abut exactly and merge into one span.
            const Tick s0 = usToTicks(t0);
            const Tick s1 = usToTicks(t1);
            for (const Firing &f : state.firings) {
                const std::size_t ti =
                    static_cast<std::size_t>(f.trans);
                tr->complete(trTracks[ti], net.transition(f.trans).name,
                             s0, s1 - s0, "gtpn");
                if (f.remaining == step)
                    tr->instant(trTracks[ti], "fire", s1, "gtpn");
            }
        }

        now = t1;
        state = std::move(advanced);
        sampleFirings(net, state, rng);
    }

    const double span = opts.horizon;
    for (auto &[name, area] : usage_area)
        res.resourceUsage[name] = area / span;
    for (std::size_t t = 0; t < completions.size(); ++t)
        res.firingRate[t] = completions[t] / span;
    res.placeOccupancy.resize(net.numPlaces());
    for (std::size_t p = 0; p < net.numPlaces(); ++p)
        res.placeOccupancy[p] = occupancy_area[p] / span;
    return res;
}

} // namespace hsipc::gtpn
