#include "core/gtpn/tokengame.hh"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>

namespace hsipc::gtpn
{

namespace
{

/**
 * Maximum depth of the selection recursion (vanishing-loop guard).
 * Must be low enough that the guard panics before the recursion in
 * enumerateRec exhausts the native stack — sanitizer builds inflate
 * each frame to several KB.  A real selection phase is bounded by the
 * zero-delay transitions firable in one instant, far below this.
 */
constexpr int maxSelectionDepth = 512;

/** An enabled transition with its evaluated frequency. */
struct Candidate
{
    TransId trans;
    double freq;
};

/** Evaluate the delay of @p t in context and validate it. */
int
evalDelay(const PetriNet &net, TransId t, const EvalContext &ctx)
{
    const double d = net.transition(t).delay(ctx);
    hsipc_assert(d >= 0.0);
    const int di = static_cast<int>(std::lround(d));
    hsipc_assert(std::abs(d - di) < 1e-9);
    return di;
}

/** All transitions enabled in @p marking with a positive frequency. */
std::vector<Candidate>
enabledCandidates(const PetriNet &net, const std::vector<int> &marking,
                  const std::vector<int> &counts)
{
    const EvalContext ctx(marking, counts);
    std::vector<Candidate> out;
    const auto n = static_cast<TransId>(net.numTransitions());
    for (TransId t = 0; t < n; ++t) {
        if (!inputsSatisfied(net, marking, t))
            continue;
        const double f = net.transition(t).frequency(ctx);
        hsipc_assert(f >= 0.0);
        if (f > 0.0)
            out.push_back(Candidate{t, f});
    }
    return out;
}

/** True when transitions @p a and @p b share an input place. */
bool
sharesInput(const PetriNet &net, TransId a, TransId b)
{
    for (const Arc &ia : net.transition(a).inputs) {
        for (const Arc &ib : net.transition(b).inputs) {
            if (ia.id == ib.id)
                return true;
        }
    }
    return false;
}

/**
 * The conflict set of the first candidate: every candidate sharing an
 * input place with it (the thesis' nets only conflict over identical
 * input sets, so direct sharing is sufficient).
 */
std::vector<Candidate>
conflictSet(const PetriNet &net, const std::vector<Candidate> &cands)
{
    std::vector<Candidate> set;
    const TransId head = cands.front().trans;
    for (const Candidate &c : cands) {
        if (c.trans == head || sharesInput(net, head, c.trans))
            set.push_back(c);
    }
    return set;
}

/** Remove the input tokens of @p t from @p marking. */
void
consumeInputs(const PetriNet &net, std::vector<int> &marking, TransId t)
{
    for (const Arc &a : net.transition(t).inputs) {
        marking[static_cast<std::size_t>(a.id)] -= a.multiplicity;
        hsipc_assert(marking[static_cast<std::size_t>(a.id)] >= 0);
    }
}

/** Deposit the output tokens of @p t into @p marking. */
void
produceOutputs(const PetriNet &net, std::vector<int> &marking, TransId t)
{
    for (const Arc &a : net.transition(t).outputs)
        marking[static_cast<std::size_t>(a.id)] += a.multiplicity;
}

/** Recursive exhaustive expansion of the selection phase. */
void
enumerateRec(const PetriNet &net, NetState state, std::vector<int> counts,
             double prob, int depth, std::vector<Outcome> &out)
{
    if (depth > maxSelectionDepth)
        hsipc_panic("GTPN selection did not terminate (vanishing loop?)");

    const auto cands = enabledCandidates(net, state.marking, counts);
    if (cands.empty()) {
        std::sort(state.firings.begin(), state.firings.end());
        out.push_back(Outcome{std::move(state), prob});
        return;
    }

    const auto set = conflictSet(net, cands);
    double total = 0.0;
    for (const Candidate &c : set)
        total += c.freq;

    for (const Candidate &c : set) {
        const double p = prob * c.freq / total;
        NetState next = state;
        std::vector<int> next_counts = counts;
        const EvalContext ctx(state.marking, counts);
        const int delay = evalDelay(net, c.trans, ctx);
        consumeInputs(net, next.marking, c.trans);
        if (delay == 0) {
            produceOutputs(net, next.marking, c.trans);
        } else {
            next.firings.push_back(Firing{c.trans, delay});
            ++next_counts[static_cast<std::size_t>(c.trans)];
        }
        enumerateRec(net, std::move(next), std::move(next_counts), p,
                     depth + 1, out);
    }
}

} // namespace

std::string
NetState::key() const
{
    std::string k;
    k.reserve(marking.size() * 2 + firings.size() * 4 + 1);
    for (int m : marking) {
        hsipc_assert(m >= 0 && m < (1 << 16));
        k.push_back(static_cast<char>(m & 0xff));
        k.push_back(static_cast<char>((m >> 8) & 0xff));
    }
    k.push_back('\x01');
    for (const Firing &f : firings) {
        k.push_back(static_cast<char>(f.trans & 0xff));
        k.push_back(static_cast<char>((f.trans >> 8) & 0xff));
        k.push_back(static_cast<char>(f.remaining & 0xff));
        k.push_back(static_cast<char>((f.remaining >> 8) & 0xff));
    }
    return k;
}

bool
inputsSatisfied(const PetriNet &net, const std::vector<int> &marking,
                TransId t)
{
    for (const Arc &a : net.transition(t).inputs) {
        if (marking[static_cast<std::size_t>(a.id)] < a.multiplicity)
            return false;
    }
    return true;
}

int
advanceTime(const PetriNet &net, NetState &state)
{
    hsipc_assert(!state.firings.empty());
    int step = std::numeric_limits<int>::max();
    for (const Firing &f : state.firings)
        step = std::min(step, f.remaining);

    std::vector<Firing> still;
    still.reserve(state.firings.size());
    for (Firing &f : state.firings) {
        f.remaining -= step;
        if (f.remaining == 0)
            produceOutputs(net, state.marking, f.trans);
        else
            still.push_back(f);
    }
    state.firings = std::move(still);
    return step;
}

std::vector<Outcome>
enumerateFirings(const PetriNet &net, const NetState &start)
{
    std::vector<Outcome> raw;
    enumerateRec(net, start, firingCounts(net, start), 1.0, 0, raw);

    // Merge outcomes that reached the same tangible state.
    std::unordered_map<std::string, std::size_t> index;
    std::vector<Outcome> merged;
    for (Outcome &o : raw) {
        const std::string k = o.state.key();
        auto [it, fresh] = index.emplace(k, merged.size());
        if (fresh)
            merged.push_back(std::move(o));
        else
            merged[it->second].prob += o.prob;
    }
    return merged;
}

void
sampleFirings(const PetriNet &net, NetState &state, Rng &rng)
{
    std::vector<int> counts = firingCounts(net, state);
    for (int depth = 0; ; ++depth) {
        if (depth > maxSelectionDepth)
            hsipc_panic("GTPN selection did not terminate (vanishing loop?)");

        const auto cands = enabledCandidates(net, state.marking, counts);
        if (cands.empty())
            break;
        const auto set = conflictSet(net, cands);
        double total = 0.0;
        for (const Candidate &c : set)
            total += c.freq;

        double pick = rng.uniform() * total;
        const Candidate *chosen = &set.back();
        for (const Candidate &c : set) {
            if (pick < c.freq) {
                chosen = &c;
                break;
            }
            pick -= c.freq;
        }

        const EvalContext ctx(state.marking, counts);
        const int delay = evalDelay(net, chosen->trans, ctx);
        consumeInputs(net, state.marking, chosen->trans);
        if (delay == 0) {
            produceOutputs(net, state.marking, chosen->trans);
        } else {
            state.firings.push_back(Firing{chosen->trans, delay});
            ++counts[static_cast<std::size_t>(chosen->trans)];
        }
    }
    std::sort(state.firings.begin(), state.firings.end());
}

std::vector<int>
firingCounts(const PetriNet &net, const NetState &state)
{
    std::vector<int> counts(net.numTransitions(), 0);
    for (const Firing &f : state.firings)
        ++counts[static_cast<std::size_t>(f.trans)];
    return counts;
}

} // namespace hsipc::gtpn
