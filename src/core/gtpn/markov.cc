#include "core/gtpn/markov.hh"

#include <cmath>

#include "common/logging.hh"

namespace hsipc::gtpn
{

void
MarkovChain::resize(std::size_t n)
{
    if (n > sojourns.size()) {
        incoming.resize(n);
        sojourns.resize(n, 1.0);
        rowSums.resize(n, 0.0);
    }
}

void
MarkovChain::addEdge(std::size_t from, std::size_t to, double prob)
{
    hsipc_assert(prob >= 0.0 && prob <= 1.0 + 1e-12);
    resize(std::max(from, to) + 1);
    incoming[to].push_back(Edge{from, prob});
    rowSums[from] += prob;
}

void
MarkovChain::setSojourn(std::size_t state, double t)
{
    hsipc_assert(t > 0.0);
    resize(state + 1);
    sojourns[state] = t;
}

SolveResult
MarkovChain::solve(const SolveOptions &opts) const
{
    const std::size_t n = numStates();
    hsipc_assert(n > 0);
    for (std::size_t i = 0; i < n; ++i) {
        if (std::abs(rowSums[i] - 1.0) > 1e-6)
            hsipc_panic("Markov row " + std::to_string(i) +
                        " sums to " + std::to_string(rowSums[i]));
    }

    SolveResult res;
    std::vector<double> pi(n, 1.0 / static_cast<double>(n));
    std::vector<double> prev(n);

    const double alpha = opts.damping;
    bool converged = false;
    int sweep = 0;
    while (sweep < opts.maxSweeps && !converged) {
        const bool check = (sweep % opts.checkInterval) == 0;
        if (check)
            prev = pi;

        // One damped Gauss-Seidel sweep: pi(j) is updated in place so
        // later states see the freshest values, which markedly speeds
        // convergence on the near-pipeline chains the GTPN produces.
        double sum = 0.0;
        for (std::size_t j = 0; j < n; ++j) {
            double acc = 0.0;
            for (const Edge &e : incoming[j])
                acc += pi[e.src] * e.prob;
            pi[j] = alpha * pi[j] + (1.0 - alpha) * acc;
            sum += pi[j];
        }
        hsipc_assert(sum > 0.0);
        const double inv = 1.0 / sum;
        for (double &v : pi)
            v *= inv;

        ++sweep;
        if (check && sweep > 1) {
            double worst = 0.0;
            for (std::size_t j = 0; j < n; ++j) {
                const double scale = std::max(pi[j], 1e-300);
                worst = std::max(worst, std::abs(pi[j] - prev[j]) / scale);
            }
            // The damped iterate moves at most (1 - alpha) of the full
            // step, and we compare across checkInterval sweeps, so the
            // raw tolerance applies directly.
            if (worst < opts.tolerance)
                converged = true;
        }
    }

    res.piEmbedded = pi;
    res.converged = converged;
    res.sweeps = sweep;

    // Time-weight by deterministic sojourns.
    res.piTime.resize(n);
    double z = 0.0;
    for (std::size_t j = 0; j < n; ++j) {
        res.piTime[j] = pi[j] * sojourns[j];
        z += res.piTime[j];
    }
    hsipc_assert(z > 0.0);
    for (double &v : res.piTime)
        v /= z;
    return res;
}

} // namespace hsipc::gtpn
