/**
 * @file
 * GTPN firing semantics (the "token game").
 *
 * A state of the game is a residual marking plus a multiset of
 * in-flight firings (transition, remaining time).  From a tangible
 * state the game proceeds in two phases:
 *
 *  1. time advance: the minimum remaining time elapses, completed
 *     firings deposit their output tokens;
 *  2. firing selection: while any transition is enabled (inputs
 *     satisfied and frequency nonzero), the conflict set of the
 *     lowest-numbered enabled transition is resolved by choosing one
 *     member with probability proportional to its frequency.  The
 *     chosen transition removes its input tokens; zero-delay firings
 *     deposit their outputs immediately (vanishing firings), timed
 *     firings join the in-flight multiset.  Selection repeats until
 *     no transition is enabled, so firing is maximal.
 *
 * enumerateFirings() expands phase 2 into the complete probability
 * distribution over successor tangible states (used by the exact
 * analyzer); sampleFirings() draws one path (used by the Monte Carlo
 * simulator).
 */

#ifndef HSIPC_GTPN_TOKENGAME_HH
#define HSIPC_GTPN_TOKENGAME_HH

#include <string>
#include <utility>
#include <vector>

#include "common/rng.hh"
#include "core/gtpn/net.hh"

namespace hsipc::gtpn
{

/** One in-flight firing of a transition. */
struct Firing
{
    TransId trans;
    int remaining;

    bool
    operator<(const Firing &other) const
    {
        return trans != other.trans ? trans < other.trans
                                    : remaining < other.remaining;
    }

    bool
    operator==(const Firing &other) const
    {
        return trans == other.trans && remaining == other.remaining;
    }
};

/** A tangible (or intermediate) state of the token game. */
struct NetState
{
    std::vector<int> marking;    //!< residual tokens per place
    std::vector<Firing> firings; //!< sorted in-flight multiset

    /** Canonical byte-string key for hashing/deduplication. */
    std::string key() const;
};

/** A successor state with the probability of reaching it. */
struct Outcome
{
    NetState state;
    double prob;
};

/** True when the residual marking satisfies all input arcs of @p t. */
bool inputsSatisfied(const PetriNet &net, const std::vector<int> &marking,
                     TransId t);

/**
 * Advance time by the minimum remaining firing time; completed firings
 * deposit their outputs.  Returns the elapsed time.  @p state must
 * have at least one in-flight firing.
 */
int advanceTime(const PetriNet &net, NetState &state);

/**
 * Run the firing-selection phase exhaustively, returning the
 * distribution of resulting tangible states.  Outcomes with identical
 * states are merged.
 */
std::vector<Outcome> enumerateFirings(const PetriNet &net,
                                      const NetState &start);

/** Run the firing-selection phase once, choosing probabilistically. */
void sampleFirings(const PetriNet &net, NetState &state, Rng &rng);

/** Per-transition in-flight counts of a state (for EvalContext). */
std::vector<int> firingCounts(const PetriNet &net, const NetState &state);

} // namespace hsipc::gtpn

#endif // HSIPC_GTPN_TOKENGAME_HH
