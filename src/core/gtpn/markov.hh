/**
 * @file
 * Steady-state solver for finite discrete Markov chains with
 * deterministic sojourn times (the chain embedded at GTPN state-change
 * instants).
 *
 * The solver runs damped Gauss-Seidel sweeps of x <- xP over a sparse
 * incoming-edge representation; damping removes periodicity (the
 * thesis' nets are strongly periodic because every timed transition
 * takes exactly one time unit).  Convergence is declared on the
 * relative change of the stationary vector.
 */

#ifndef HSIPC_GTPN_MARKOV_HH
#define HSIPC_GTPN_MARKOV_HH

#include <cstddef>
#include <vector>

namespace hsipc::gtpn
{

/** Options controlling the stationary solve. */
struct SolveOptions
{
    double tolerance = 1e-10;   //!< max relative change of pi per sweep
    int maxSweeps = 200000;     //!< hard iteration cap
    double damping = 0.5;       //!< weight of the previous iterate
    int checkInterval = 16;     //!< sweeps between convergence checks
};

/** Result of a stationary solve. */
struct SolveResult
{
    std::vector<double> piEmbedded; //!< stationary of the embedded chain
    std::vector<double> piTime;     //!< sojourn-weighted (time) stationary
    bool converged = false;
    int sweeps = 0;
};

/**
 * A sparse Markov chain under construction.  States are dense indices
 * 0..n-1; edges carry transition probabilities; every state has a
 * deterministic sojourn time.
 */
class MarkovChain
{
  public:
    /** Ensure the chain has at least @p n states. */
    void resize(std::size_t n);

    std::size_t numStates() const { return sojourns.size(); }

    /** Add probability mass @p prob to the edge from -> to. */
    void addEdge(std::size_t from, std::size_t to, double prob);

    /** Set the deterministic sojourn time of @p state. */
    void setSojourn(std::size_t state, double t);

    /**
     * Solve for the stationary distribution.  Rows must each sum to 1
     * (within numerical tolerance); the chain should have a single
     * recurrent class reachable from every state.
     */
    SolveResult solve(const SolveOptions &opts = SolveOptions()) const;

  private:
    struct Edge
    {
        std::size_t src;
        double prob;
    };

    /** Incoming edges per destination state. */
    std::vector<std::vector<Edge>> incoming;
    std::vector<double> sojourns;
    std::vector<double> rowSums;
};

} // namespace hsipc::gtpn

#endif // HSIPC_GTPN_MARKOV_HH
