/**
 * @file
 * Generalized Timed Petri Net (GTPN) representation.
 *
 * This is a re-implementation of the modeling formalism of Holliday &
 * Vernon that the thesis uses to evaluate its four node architectures
 * (chapter 6).  A net consists of places, transitions and directed
 * arcs (a multigraph: an arc may carry a multiplicity).  Each
 * transition carries an attribute vector:
 *
 *  - delay:     a deterministic firing duration in model time units
 *               (the thesis uses microseconds); may be state dependent,
 *  - frequency: a relative weight used to resolve conflicts between
 *               transitions competing for the same tokens; may be state
 *               dependent (a frequency of zero disables a transition),
 *  - resource:  an optional name; the analyzer reports the
 *               time-averaged number of simultaneous firings of all
 *               transitions bearing each resource name.
 *
 * State-dependent expressions are composed from the combinators at the
 * bottom of this header; they may inspect the current residual marking
 * and the set of in-flight (currently firing) transitions, which is
 * exactly the power the thesis' models need (e.g. "fire only when no
 * network interrupt is pending and transitions T6/T7 are not firing").
 */

#ifndef HSIPC_GTPN_NET_HH
#define HSIPC_GTPN_NET_HH

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/logging.hh"

namespace hsipc::gtpn
{

using PlaceId = int;
using TransId = int;

class PetriNet;

/**
 * Read-only view of a (possibly mid-selection) net state handed to
 * state-dependent expressions.
 */
class EvalContext
{
  public:
    EvalContext(const std::vector<int> &marking,
                const std::vector<int> &firing)
        : markingRef(marking), firingRef(firing)
    {}

    /** Number of tokens currently in place @p p (residual marking). */
    int
    marking(PlaceId p) const
    {
        return markingRef[static_cast<std::size_t>(p)];
    }

    /** Number of in-flight firings of transition @p t. */
    int
    firingCount(TransId t) const
    {
        return firingRef[static_cast<std::size_t>(t)];
    }

  private:
    const std::vector<int> &markingRef;
    const std::vector<int> &firingRef;
};

/** A state-dependent real-valued expression. */
using Expr = std::function<double(const EvalContext &)>;

/** An input or output arc with a multiplicity. */
struct Arc
{
    int id;
    int multiplicity;
};

/** A transition and its attribute vector. */
struct Transition
{
    std::string name;
    Expr delay;
    Expr frequency;
    std::string resource;
    std::vector<Arc> inputs;   //!< arcs from places
    std::vector<Arc> outputs;  //!< arcs to places
};

/** A place with its initial marking. */
struct Place
{
    std::string name;
    int initialTokens;
};

/**
 * A GTPN.  Build with addPlace/addTransition/arc; analyze with
 * Analyzer (exact) or Simulator (Monte Carlo).
 */
class PetriNet
{
  public:
    /** Add a place holding @p tokens initially; returns its id. */
    PlaceId addPlace(std::string name, int tokens = 0);

    /**
     * Add a transition.  @p delay and @p frequency may be built with
     * the expression combinators below or with constant();
     * @p resource optionally names an output measure.
     */
    TransId addTransition(std::string name, Expr delay, Expr frequency,
                          std::string resource = "");

    /** Convenience overload taking constant delay and frequency. */
    TransId addTransition(std::string name, double delay, double frequency,
                          std::string resource = "");

    /** Add an input arc place -> transition. */
    void inputArc(PlaceId p, TransId t, int multiplicity = 1);

    /** Add an output arc transition -> place. */
    void outputArc(TransId t, PlaceId p, int multiplicity = 1);

    /** Replace the frequency expression of an existing transition. */
    void setFrequency(TransId t, Expr freq);

    /** Replace the delay expression of an existing transition. */
    void setDelay(TransId t, Expr delay);

    std::size_t numPlaces() const { return places.size(); }
    std::size_t numTransitions() const { return transitions.size(); }

    const Place &place(PlaceId p) const
    {
        return places[static_cast<std::size_t>(p)];
    }

    const Transition &transition(TransId t) const
    {
        return transitions[static_cast<std::size_t>(t)];
    }

    /** The initial marking vector. */
    std::vector<int> initialMarking() const;

    /** Find a place id by name; panics if absent. */
    PlaceId findPlace(const std::string &name) const;

    /** Find a transition id by name; panics if absent. */
    TransId findTransition(const std::string &name) const;

  private:
    std::vector<Place> places;
    std::vector<Transition> transitions;
};

// --- Expression combinators -------------------------------------------

/** A constant expression. */
inline Expr
constant(double v)
{
    return [v](const EvalContext &) { return v; };
}

/** The token count of a place. */
inline Expr
tokens(PlaceId p)
{
    return [p](const EvalContext &ctx) {
        return static_cast<double>(ctx.marking(p));
    };
}

/** 1 when the place is empty, 0 otherwise. */
inline Expr
placeEmpty(PlaceId p)
{
    return [p](const EvalContext &ctx) {
        return ctx.marking(p) == 0 ? 1.0 : 0.0;
    };
}

/** 1 when none of the listed transitions is currently firing. */
inline Expr
noneFiring(std::vector<TransId> ts)
{
    return [ts = std::move(ts)](const EvalContext &ctx) {
        for (TransId t : ts) {
            if (ctx.firingCount(t) > 0)
                return 0.0;
        }
        return 1.0;
    };
}

/** Product of sub-expressions (logical AND for 0/1 predicates). */
inline Expr
allOf(std::vector<Expr> exprs)
{
    return [exprs = std::move(exprs)](const EvalContext &ctx) {
        double v = 1.0;
        for (const auto &e : exprs)
            v *= e(ctx);
        return v;
    };
}

/**
 * Conditional: value @p then when @p cond evaluates nonzero, @p els
 * otherwise.  Mirrors the thesis' "<expr> -> a, b" notation.
 */
inline Expr
gate(Expr cond, double then, double els = 0.0)
{
    return [cond = std::move(cond), then, els](const EvalContext &ctx) {
        return cond(ctx) != 0.0 ? then : els;
    };
}

} // namespace hsipc::gtpn

#endif // HSIPC_GTPN_NET_HH
