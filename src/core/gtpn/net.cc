#include "core/gtpn/net.hh"

namespace hsipc::gtpn
{

PlaceId
PetriNet::addPlace(std::string name, int tokens)
{
    hsipc_assert(tokens >= 0);
    places.push_back(Place{std::move(name), tokens});
    return static_cast<PlaceId>(places.size() - 1);
}

TransId
PetriNet::addTransition(std::string name, Expr delay, Expr frequency,
                        std::string resource)
{
    hsipc_assert(delay && frequency);
    transitions.push_back(Transition{std::move(name), std::move(delay),
                                     std::move(frequency),
                                     std::move(resource), {}, {}});
    return static_cast<TransId>(transitions.size() - 1);
}

TransId
PetriNet::addTransition(std::string name, double delay, double frequency,
                        std::string resource)
{
    return addTransition(std::move(name), constant(delay),
                         constant(frequency), std::move(resource));
}

void
PetriNet::inputArc(PlaceId p, TransId t, int multiplicity)
{
    hsipc_assert(p >= 0 && static_cast<std::size_t>(p) < places.size());
    hsipc_assert(t >= 0 && static_cast<std::size_t>(t) < transitions.size());
    hsipc_assert(multiplicity > 0);
    transitions[static_cast<std::size_t>(t)].inputs
        .push_back(Arc{p, multiplicity});
}

void
PetriNet::outputArc(TransId t, PlaceId p, int multiplicity)
{
    hsipc_assert(p >= 0 && static_cast<std::size_t>(p) < places.size());
    hsipc_assert(t >= 0 && static_cast<std::size_t>(t) < transitions.size());
    hsipc_assert(multiplicity > 0);
    transitions[static_cast<std::size_t>(t)].outputs
        .push_back(Arc{p, multiplicity});
}

void
PetriNet::setFrequency(TransId t, Expr freq)
{
    hsipc_assert(freq);
    transitions[static_cast<std::size_t>(t)].frequency = std::move(freq);
}

void
PetriNet::setDelay(TransId t, Expr delay)
{
    hsipc_assert(delay);
    transitions[static_cast<std::size_t>(t)].delay = std::move(delay);
}

std::vector<int>
PetriNet::initialMarking() const
{
    std::vector<int> m(places.size());
    for (std::size_t i = 0; i < places.size(); ++i)
        m[i] = places[i].initialTokens;
    return m;
}

PlaceId
PetriNet::findPlace(const std::string &name) const
{
    for (std::size_t i = 0; i < places.size(); ++i) {
        if (places[i].name == name)
            return static_cast<PlaceId>(i);
    }
    hsipc_panic("no such place: " + name);
}

TransId
PetriNet::findTransition(const std::string &name) const
{
    for (std::size_t i = 0; i < transitions.size(); ++i) {
        if (transitions[i].name == name)
            return static_cast<TransId>(i);
    }
    hsipc_panic("no such transition: " + name);
}

} // namespace hsipc::gtpn
