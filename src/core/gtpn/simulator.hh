/**
 * @file
 * Monte Carlo GTPN simulator.
 *
 * Plays the token game forward with sampled conflict resolution and
 * measures the same quantities the exact analyzer computes.  Used for
 * property tests (analyzer vs. simulation on random nets) and for nets
 * whose reachability graph would be too large to enumerate.
 */

#ifndef HSIPC_GTPN_SIMULATOR_HH
#define HSIPC_GTPN_SIMULATOR_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/trace/tracer.hh"
#include "core/gtpn/net.hh"

namespace hsipc::gtpn
{

/** Options for a Monte Carlo run. */
struct SimOptions
{
    double warmup = 10000.0;     //!< model time discarded before measuring
    double horizon = 1000000.0;  //!< model time measured
    std::uint64_t seed = 1;

    /**
     * When non-null and enabled, record the token game as a timeline:
     * one track per transition (named `<resource>.<transition>`, or
     * `gtpn.<transition>` for resource-free transitions) carrying a
     * busy span for every interval the transition is firing and a
     * "fire" instant at each completion.  Model time (microseconds)
     * is mapped onto ticks.  Observational only.
     */
    trace::Tracer *tracer = nullptr;
};

/** Measured results of a Monte Carlo run. */
struct SimResult
{
    std::map<std::string, double> resourceUsage;
    std::vector<double> firingRate;
    std::vector<double> placeOccupancy;
    bool deadlock = false;

    double
    usage(const std::string &name) const
    {
        auto it = resourceUsage.find(name);
        return it == resourceUsage.end() ? 0.0 : it->second;
    }
};

/** Simulate @p net and return time-averaged measures. */
SimResult simulate(const PetriNet &net,
                   const SimOptions &opts = SimOptions());

} // namespace hsipc::gtpn

#endif // HSIPC_GTPN_SIMULATOR_HH
