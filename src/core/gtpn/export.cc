#include "core/gtpn/export.hh"

#include <sstream>

namespace hsipc::gtpn
{

namespace
{

/** Escape a name for dot. */
std::string
esc(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

/** Evaluate a transition's delay in the initial marking, if possible. */
double
initialDelay(const PetriNet &net, TransId t)
{
    const std::vector<int> marking = net.initialMarking();
    const std::vector<int> firing(net.numTransitions(), 0);
    const EvalContext ctx(marking, firing);
    return net.transition(t).delay(ctx);
}

} // namespace

std::string
toDot(const PetriNet &net)
{
    std::ostringstream out;
    out << "digraph gtpn {\n  rankdir=LR;\n";
    for (std::size_t p = 0; p < net.numPlaces(); ++p) {
        const Place &pl = net.place(static_cast<PlaceId>(p));
        out << "  p" << p << " [shape=circle,label=\"" << esc(pl.name);
        if (pl.initialTokens > 0)
            out << "\\n(" << pl.initialTokens << ")";
        out << "\"];\n";
    }
    for (std::size_t t = 0; t < net.numTransitions(); ++t) {
        const Transition &tr = net.transition(static_cast<TransId>(t));
        const bool instant =
            initialDelay(net, static_cast<TransId>(t)) == 0.0;
        out << "  t" << t << " [shape=box,height="
            << (instant ? "0.1" : "0.3") << ",label=\"" << esc(tr.name);
        if (!tr.resource.empty())
            out << "\\n[" << esc(tr.resource) << "]";
        out << "\"];\n";
        for (const Arc &a : tr.inputs) {
            out << "  p" << a.id << " -> t" << t;
            if (a.multiplicity > 1)
                out << " [label=\"" << a.multiplicity << "\"]";
            out << ";\n";
        }
        for (const Arc &a : tr.outputs) {
            out << "  t" << t << " -> p" << a.id;
            if (a.multiplicity > 1)
                out << " [label=\"" << a.multiplicity << "\"]";
            out << ";\n";
        }
    }
    out << "}\n";
    return out.str();
}

std::vector<std::string>
validateNet(const PetriNet &net)
{
    std::vector<std::string> issues;

    std::vector<bool> place_feeds(net.numPlaces(), false);
    std::vector<bool> place_fed(net.numPlaces(), false);

    for (std::size_t t = 0; t < net.numTransitions(); ++t) {
        const Transition &tr = net.transition(static_cast<TransId>(t));
        if (tr.inputs.empty()) {
            issues.push_back("transition '" + tr.name +
                             "' has no input arcs (token source)");
        }
        if (tr.outputs.empty()) {
            issues.push_back("transition '" + tr.name +
                             "' has no output arcs (token sink)");
        }
        for (const Arc &a : tr.inputs)
            place_feeds[static_cast<std::size_t>(a.id)] = true;
        for (const Arc &a : tr.outputs)
            place_fed[static_cast<std::size_t>(a.id)] = true;

        // A zero-delay transition that outputs onto all of its own
        // inputs re-enables itself instantly: a vanishing loop.
        if (initialDelay(net, static_cast<TransId>(t)) == 0.0 &&
            !tr.inputs.empty()) {
            bool refills_all = true;
            for (const Arc &in : tr.inputs) {
                bool found = false;
                for (const Arc &outp : tr.outputs)
                    found = found || (outp.id == in.id &&
                                      outp.multiplicity >=
                                          in.multiplicity);
                refills_all = refills_all && found;
            }
            if (refills_all) {
                issues.push_back("zero-delay transition '" + tr.name +
                                 "' refills its own inputs "
                                 "(vanishing loop)");
            }
        }
    }

    for (std::size_t p = 0; p < net.numPlaces(); ++p) {
        const Place &pl = net.place(static_cast<PlaceId>(p));
        if (!place_feeds[p] && !place_fed[p]) {
            issues.push_back("place '" + pl.name +
                             "' is not connected to any transition");
        } else if (!place_feeds[p]) {
            issues.push_back("place '" + pl.name +
                             "' accumulates tokens (never an input)");
        }
    }
    return issues;
}

} // namespace hsipc::gtpn
