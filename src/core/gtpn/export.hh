/**
 * @file
 * Developer tooling for GTPN models: Graphviz export and structural
 * validation.
 *
 * The thesis communicates its models as net drawings (Figs 6.6-6.14);
 * toDot() recreates those drawings from a PetriNet so reconstructed
 * models can be reviewed visually.  validateNet() flags the
 * structural mistakes that bite model authors: token sources/sinks
 * where conservation was intended, zero-delay self-loops (vanishing
 * loops that hang the analyzer), and dead transitions.
 */

#ifndef HSIPC_GTPN_EXPORT_HH
#define HSIPC_GTPN_EXPORT_HH

#include <string>
#include <vector>

#include "core/gtpn/net.hh"

namespace hsipc::gtpn
{

/** Render the net in Graphviz dot syntax (places round, transitions
 *  square, zero-delay transitions thin). */
std::string toDot(const PetriNet &net);

/** Human-readable structural warnings; empty when the net is clean. */
std::vector<std::string> validateNet(const PetriNet &net);

} // namespace hsipc::gtpn

#endif // HSIPC_GTPN_EXPORT_HH
