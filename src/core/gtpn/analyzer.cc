#include "core/gtpn/analyzer.hh"

#include <limits>
#include <unordered_map>

#include "common/logging.hh"

namespace hsipc::gtpn
{

namespace
{

/** Intern @p state, returning its dense index (appending if new). */
std::size_t
intern(NetState state, std::unordered_map<std::string, std::size_t> &index,
       std::vector<NetState> &states, std::vector<std::size_t> &frontier)
{
    const std::string k = state.key();
    auto [it, fresh] = index.emplace(k, states.size());
    if (fresh) {
        states.push_back(std::move(state));
        frontier.push_back(it->second);
    }
    return it->second;
}

} // namespace

AnalyzerResult
analyze(const PetriNet &net, const AnalyzerOptions &opts)
{
    AnalyzerResult res;

    std::unordered_map<std::string, std::size_t> index;
    std::vector<NetState> states;
    std::vector<std::size_t> frontier;

    // Seed: run the selection phase on the initial marking.  The
    // stationary distribution does not depend on how the initial
    // probability splits, so each outcome simply seeds the BFS.
    NetState initial{net.initialMarking(), {}};
    for (Outcome &o : enumerateFirings(net, initial))
        intern(std::move(o.state), index, states, frontier);

    MarkovChain chain;
    std::vector<int> sojourn;

    while (!frontier.empty()) {
        const std::size_t s = frontier.back();
        frontier.pop_back();

        if (states.size() > opts.maxStates)
            hsipc_panic("GTPN reachability graph exceeds maxStates");

        if (sojourn.size() <= s)
            sojourn.resize(states.size(), 1);

        if (states[s].firings.empty()) {
            // Deadlock: treat as absorbing with unit sojourn so the
            // solver still runs; flag it for the caller.
            res.deadlock = true;
            chain.addEdge(s, s, 1.0);
            chain.setSojourn(s, 1.0);
            sojourn[s] = 1;
            continue;
        }

        NetState advanced = states[s];
        const int step = advanceTime(net, advanced);
        sojourn[s] = step;
        chain.setSojourn(s, static_cast<double>(step));

        for (Outcome &o : enumerateFirings(net, advanced)) {
            const std::size_t t =
                intern(std::move(o.state), index, states, frontier);
            if (sojourn.size() < states.size())
                sojourn.resize(states.size(), 1);
            chain.addEdge(s, t, o.prob);
        }
    }

    res.numStates = states.size();
    const SolveResult sol = chain.solve(opts.solve);
    res.converged = sol.converged;
    res.sweeps = sol.sweeps;

    // Time-averaged resource usage: every in-flight firing of a
    // tangible state is active throughout that state's sojourn.
    for (std::size_t s = 0; s < states.size(); ++s) {
        for (const Firing &f : states[s].firings) {
            const std::string &r = net.transition(f.trans).resource;
            if (!r.empty())
                res.resourceUsage[r] += sol.piTime[s];
        }
    }

    // Time-averaged marking per place.
    res.placeOccupancy.assign(net.numPlaces(), 0.0);
    for (std::size_t s = 0; s < states.size(); ++s) {
        for (std::size_t p = 0; p < net.numPlaces(); ++p) {
            res.placeOccupancy[p] +=
                sol.piTime[s] * static_cast<double>(states[s].marking[p]);
        }
    }

    // Firing rates: completions when leaving state s are the in-flight
    // firings whose remaining time equals the sojourn; the long-run
    // rate is the embedded-visit-weighted count over mean cycle time.
    res.firingRate.assign(net.numTransitions(), 0.0);
    double mean_cycle = 0.0;
    for (std::size_t s = 0; s < states.size(); ++s)
        mean_cycle += sol.piEmbedded[s] * static_cast<double>(sojourn[s]);
    if (mean_cycle > 0.0) {
        for (std::size_t s = 0; s < states.size(); ++s) {
            for (const Firing &f : states[s].firings) {
                if (f.remaining == sojourn[s]) {
                    res.firingRate[static_cast<std::size_t>(f.trans)] +=
                        sol.piEmbedded[s];
                }
            }
        }
        for (double &r : res.firingRate)
            r /= mean_cycle;
    }
    return res;
}

} // namespace hsipc::gtpn
