/**
 * @file
 * Exact GTPN analyzer: builds the reachability graph of tangible
 * states, solves the embedded Markov chain, and reports time-averaged
 * resource usages and transition firing rates.
 *
 * This mirrors the analyzer the thesis used ("takes a description of
 * the petri net, builds the reachable states for the net, solves the
 * embedded Markov process, and gives exact estimates for resource
 * usage", §6.5).
 */

#ifndef HSIPC_GTPN_ANALYZER_HH
#define HSIPC_GTPN_ANALYZER_HH

#include <map>
#include <string>
#include <vector>

#include "core/gtpn/markov.hh"
#include "core/gtpn/net.hh"
#include "core/gtpn/tokengame.hh"

namespace hsipc::gtpn
{

/** Options for the analyzer. */
struct AnalyzerOptions
{
    std::size_t maxStates = 2000000; //!< reachability-graph size cap
    SolveOptions solve;              //!< Markov solve parameters
};

/** Results of an exact GTPN analysis. */
struct AnalyzerResult
{
    std::size_t numStates = 0;
    bool converged = false;
    bool deadlock = false; //!< some reachable state had no successor
    int sweeps = 0;

    /** Time-averaged number of simultaneous firings per resource. */
    std::map<std::string, double> resourceUsage;

    /** Completions of each transition per unit model time. */
    std::vector<double> firingRate;

    /**
     * Time-averaged token count per place (residual marking only;
     * tokens held by in-flight firings are not counted, so use
     * dedicated bookkeeping places — as the thesis does with its
     * "Queue" place — when measuring customers in a subsystem).
     */
    std::vector<double> placeOccupancy;

    /** Usage of a named resource (0 when the name never appears). */
    double
    usage(const std::string &name) const
    {
        auto it = resourceUsage.find(name);
        return it == resourceUsage.end() ? 0.0 : it->second;
    }
};

/** Exact steady-state analysis of @p net. */
AnalyzerResult analyze(const PetriNet &net,
                       const AnalyzerOptions &opts = AnalyzerOptions());

} // namespace hsipc::gtpn

#endif // HSIPC_GTPN_ANALYZER_HH
