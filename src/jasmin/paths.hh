/**
 * @file
 * A functional implementation of Jasmin's path-based IPC (§3.2) —
 * the second baseline the thesis profiles (Table 3.2).
 *
 * Jasmin's distinctive semantics, implemented here:
 *  - processes communicate over *unidirectional paths*; the creator
 *    holds the receive end, and may give the send end away exactly
 *    once as a *gift*;
 *  - sendmsg carries fixed-size messages (reliable datagrams),
 *    kernel-buffered; the sender blocks only on resource shortage;
 *  - rcvmsg blocks when no message is outstanding; a process may name
 *    a *group* of paths as the source of its next message (§3.2.5);
 *  - a remote procedure call is simulated by enclosing a gift path in
 *    the request; the recipient may use the gift exactly once to send
 *    the reply, after which the kernel tears the one-shot path down —
 *    incurring the same setup/teardown expense as a persistent path
 *    (the §3.2.1 criticism);
 *  - iomove moves arbitrary-sized blocks between the send-end
 *    holder's buffer and the receive-end creator, without the other
 *    party's participation.
 */

#ifndef HSIPC_JASMIN_PATHS_HH
#define HSIPC_JASMIN_PATHS_HH

#include <array>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace hsipc::jasmin
{

using ProcId = int;
using PathId = int;

/** Jasmin messages are small fixed-size datagrams (32 bytes). */
constexpr int messageBytes = 32;

using Message = std::array<std::uint8_t, messageBytes>;

/** Status codes. */
enum class PathStatus
{
    Ok,
    NoSuchPath,
    NotSendHolder,
    NotReceiver,
    GiftAlreadyGiven,
    PathExhausted, //!< one-shot gift already used
    NoBuffers,
    NoMessage,     //!< non-blocking rcvmsg with nothing queued
};

/** The Jasmin message kernel. */
class PathKernel
{
  public:
    explicit PathKernel(int kernelBuffers = 16);
    ~PathKernel();

    ProcId createProcess(std::string name);

    // --- Paths ---------------------------------------------------------

    /**
     * Create a path; @p creator holds the receive end and initially
     * the send end too.  @p oneShot marks a gift path that the kernel
     * tears down after a single sendmsg (the RPC reply pattern).
     */
    PathId createPath(ProcId creator, bool oneShot = false);

    /** Give the send end away; allowed exactly once (§3.2.1). */
    PathStatus giveSendEnd(ProcId from, PathId path, ProcId to);

    /** Destroy the path; queued messages return to the pool. */
    PathStatus destroyPath(ProcId receiver, PathId path);

    /** Alive paths created so far minus destroyed (teardown cost). */
    int livePathCount() const;
    long pathSetupTeardowns() const;

    // --- Messages ------------------------------------------------------

    /** Send a datagram along the path (holder of the send end). */
    PathStatus sendmsg(ProcId sender, PathId path, const Message &m);

    /**
     * Receive the next message from any path in @p group whose
     * receive end belongs to @p receiver; FCFS by arrival.  Fails
     * with NoMessage when nothing is queued (the caller would block;
     * Jasmin has no polling, §3.2.5).
     */
    PathStatus rcvmsg(ProcId receiver, const std::vector<PathId> &group,
                      Message &out, PathId *from = nullptr);

    /** Messages queued on @p path. */
    int queued(PathId path) const;

    // --- iomove ---------------------------------------------------------

    /**
     * Move @p len bytes from the send-end holder's buffer into the
     * receiver's; invoked by the send-end holder (§3.2.2), no
     * participation from the other party.
     */
    PathStatus iomove(ProcId sender, PathId path,
                      const std::vector<std::uint8_t> &data,
                      std::vector<std::uint8_t> &receiverBuffer);

    // --- Accounting ------------------------------------------------------

    int freeBuffers() const;
    long checksPerformed() const;

  private:
    struct Impl;
    std::unique_ptr<Impl> impl;
};

} // namespace hsipc::jasmin

#endif // HSIPC_JASMIN_PATHS_HH
