#include "jasmin/paths.hh"

#include <deque>

#include "common/logging.hh"

namespace hsipc::jasmin
{

namespace
{

struct Process
{
    std::string name;
};

struct Path
{
    bool alive = false;
    bool oneShot = false;
    bool giftGiven = false;
    bool exhausted = false;
    ProcId receiver = -1;
    ProcId sendHolder = -1;
    std::deque<std::pair<Message, std::uint64_t>> queue;
};

} // namespace

struct PathKernel::Impl
{
    std::vector<Process> procs;
    std::vector<Path> paths;
    int buffers;
    long setups = 0;
    std::uint64_t seq = 0;
    mutable long checks = 0;

    bool
    check(bool ok) const
    {
        ++checks;
        return ok;
    }

    bool
    valid(PathId p) const
    {
        return check(p >= 0 &&
                     static_cast<std::size_t>(p) < paths.size() &&
                     paths[static_cast<std::size_t>(p)].alive);
    }

    Path &path(PathId p) { return paths[static_cast<std::size_t>(p)]; }

    void
    teardown(PathId p)
    {
        Path &pa = path(p);
        buffers += static_cast<int>(pa.queue.size());
        pa.queue.clear();
        pa.alive = false;
        ++setups; // teardown bookkeeping pairs with the setup cost
    }
};

PathKernel::PathKernel(int kernelBuffers)
    : impl(std::make_unique<Impl>())
{
    hsipc_assert(kernelBuffers >= 1);
    impl->buffers = kernelBuffers;
}

PathKernel::~PathKernel() = default;

ProcId
PathKernel::createProcess(std::string name)
{
    impl->procs.push_back(Process{std::move(name)});
    return static_cast<ProcId>(impl->procs.size() - 1);
}

PathId
PathKernel::createPath(ProcId creator, bool oneShot)
{
    Path p;
    p.alive = true;
    p.oneShot = oneShot;
    p.receiver = creator;
    p.sendHolder = creator;
    impl->paths.push_back(std::move(p));
    ++impl->setups;
    return static_cast<PathId>(impl->paths.size() - 1);
}

PathStatus
PathKernel::giveSendEnd(ProcId from, PathId path, ProcId to)
{
    if (!impl->valid(path))
        return PathStatus::NoSuchPath;
    Path &p = impl->path(path);
    if (!impl->check(p.sendHolder == from))
        return PathStatus::NotSendHolder;
    if (!impl->check(!p.giftGiven))
        return PathStatus::GiftAlreadyGiven;
    p.sendHolder = to;
    p.giftGiven = true;
    return PathStatus::Ok;
}

PathStatus
PathKernel::destroyPath(ProcId receiver, PathId path)
{
    if (!impl->valid(path))
        return PathStatus::NoSuchPath;
    if (!impl->check(impl->path(path).receiver == receiver))
        return PathStatus::NotReceiver;
    impl->teardown(path);
    return PathStatus::Ok;
}

int
PathKernel::livePathCount() const
{
    int n = 0;
    for (const Path &p : impl->paths)
        n += p.alive;
    return n;
}

long
PathKernel::pathSetupTeardowns() const
{
    return impl->setups;
}

PathStatus
PathKernel::sendmsg(ProcId sender, PathId path, const Message &m)
{
    if (!impl->valid(path))
        return PathStatus::NoSuchPath;
    Path &p = impl->path(path);
    if (!impl->check(p.sendHolder == sender))
        return PathStatus::NotSendHolder;
    if (!impl->check(!p.exhausted))
        return PathStatus::PathExhausted;
    if (!impl->check(impl->buffers > 0))
        return PathStatus::NoBuffers; // the caller would block
    --impl->buffers;
    p.queue.emplace_back(m, ++impl->seq);
    if (p.oneShot)
        p.exhausted = true; // the gift may be used only once
    return PathStatus::Ok;
}

PathStatus
PathKernel::rcvmsg(ProcId receiver, const std::vector<PathId> &group,
                   Message &out, PathId *from)
{
    // FCFS across the named group (§3.2.5).
    PathId best = -1;
    std::uint64_t best_seq = 0;
    for (PathId pid : group) {
        if (!impl->valid(pid))
            return PathStatus::NoSuchPath;
        Path &p = impl->path(pid);
        if (!impl->check(p.receiver == receiver))
            return PathStatus::NotReceiver;
        if (!p.queue.empty() &&
            (best < 0 || p.queue.front().second < best_seq)) {
            best = pid;
            best_seq = p.queue.front().second;
        }
    }
    if (best < 0)
        return PathStatus::NoMessage;

    Path &p = impl->path(best);
    out = p.queue.front().first;
    p.queue.pop_front();
    ++impl->buffers;
    if (from)
        *from = best;
    // A drained one-shot gift path is torn down by the kernel — the
    // same expense as a persistent path (§3.2.1).
    if (p.oneShot && p.exhausted && p.queue.empty())
        impl->teardown(best);
    return PathStatus::Ok;
}

int
PathKernel::queued(PathId path) const
{
    hsipc_assert(impl->valid(path));
    return static_cast<int>(
        impl->paths[static_cast<std::size_t>(path)].queue.size());
}

PathStatus
PathKernel::iomove(ProcId sender, PathId path,
                   const std::vector<std::uint8_t> &data,
                   std::vector<std::uint8_t> &receiverBuffer)
{
    if (!impl->valid(path))
        return PathStatus::NoSuchPath;
    Path &p = impl->path(path);
    if (!impl->check(p.sendHolder == sender))
        return PathStatus::NotSendHolder;
    // Arbitrary-sized, unbuffered, no participation by the receiver
    // (§3.2.2): straight into the receiver's buffer.
    receiverBuffer = data;
    return PathStatus::Ok;
}

int
PathKernel::freeBuffers() const
{
    return impl->buffers;
}

long
PathKernel::checksPerformed() const
{
    return impl->checks;
}

} // namespace hsipc::jasmin
