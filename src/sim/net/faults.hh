/**
 * @file
 * Fault injection for the simulated network medium.
 *
 * The thesis justifies the message coprocessor by the cost of
 * "low-level protocol processing" — acknowledgements, timeouts and
 * retransmissions (§3.3–§3.4) — but that work only exists when the
 * medium can fail.  A FaultPlan makes it fail on purpose: packets are
 * dropped, corrupted, duplicated or delayed (reordered) with seeded
 * pseudo-random draws, and whole nodes can be scheduled to crash and
 * recover.  A crash is modeled at the network boundary (a fail-stop
 * NIC): while a node's window is open every packet to or from it is
 * lost, its kernel protocol state survives, and recovery is driven
 * purely by the reliability layer's retransmissions.
 *
 * The same injector is applied uniformly to the fixed-delay wire and
 * to the token-ring medium, and to data and acknowledgement packets
 * alike.
 */

#ifndef HSIPC_SIM_NET_FAULTS_HH
#define HSIPC_SIM_NET_FAULTS_HH

#include <cstdint>
#include <vector>

#include "common/rng.hh"
#include "common/time.hh"
#include "common/trace/tracer.hh"
#include "sim/des/event_queue.hh"

namespace hsipc::sim
{

/** One scheduled node outage, in simulated microseconds. */
struct CrashWindow
{
    int node = 0;
    double startUs = 0;
    double endUs = 0;

    friend bool operator==(const CrashWindow &,
                           const CrashWindow &) = default;
};

/** The fault model of one experiment (all rates are per packet). */
struct FaultPlan
{
    double dropRate = 0;      //!< packet vanishes in the medium
    double corruptRate = 0;   //!< packet arrives, checksum fails
    double duplicateRate = 0; //!< a second copy trails the original
    double reorderRate = 0;   //!< packet is held back @c reorderDelayUs
    double reorderDelayUs = 200; //!< extra delay of a reordered packet
    double duplicateLagUs = 50;  //!< how far the duplicate trails
    std::vector<CrashWindow> crashes;

    /** True when any fault can occur (the stack is pay-for-use). */
    bool
    active() const
    {
        return dropRate > 0 || corruptRate > 0 || duplicateRate > 0 ||
               reorderRate > 0 || !crashes.empty();
    }
};

/** Applies a FaultPlan to individual packets, with its own RNG. */
class FaultInjector
{
  public:
    /** One surviving copy of an injected packet. */
    struct Copy
    {
        Tick extraDelay = 0; //!< added before entering the medium
        bool corrupted = false;
    };

    struct Stats
    {
        long injected = 0;   //!< packets passed through the injector
        long dropped = 0;    //!< lost in the medium
        long corrupted = 0;  //!< delivered with a failing checksum
        long duplicated = 0; //!< delivered twice
        long reordered = 0;  //!< delayed past later traffic
        long crashDrops = 0; //!< lost at a crashed node's boundary
    };

    FaultInjector(const FaultPlan &plan, std::uint64_t seed)
        : plan(plan), rng(seed)
    {}

    /**
     * Trace every injected fault as an instant on a "medium" track,
     * timestamped from @p clock.  Scheduled crash windows are
     * recorded up front (crash/recover instants).  Observational
     * only: the injector's random draws are unchanged.
     */
    void attachTracer(trace::Tracer *t, const EventQueue *clock);

    /**
     * Decide the fate of one packet entering the medium: each returned
     * copy traverses it (an empty result means the packet was
     * dropped).  Draws from the RNG only for the fault classes whose
     * rate is nonzero, so an all-zero plan consumes no randomness.
     */
    std::vector<Copy> judge();

    /** Is @p node outside all of its crash windows at @p now? */
    bool nodeUp(int node, Tick now) const;

    /** Record a packet lost at a crashed node's boundary. */
    void
    noteCrashDrop()
    {
        ++counts.crashDrops;
        note("crashDrop");
    }

    const Stats &stats() const { return counts; }
    const FaultPlan &faultPlan() const { return plan; }

  private:
    void note(const char *event);

    FaultPlan plan;
    Rng rng;
    Stats counts;
    trace::Tracer *tracer = nullptr;
    int traceTrack = -1;
    const EventQueue *clock = nullptr;
};

} // namespace hsipc::sim

#endif // HSIPC_SIM_NET_FAULTS_HH
