/**
 * @file
 * A sliding-window reliable delivery protocol over an unreliable
 * medium — the "low-level protocol processing" whose cost motivates
 * the message coprocessor (§3.3–§3.4).
 *
 * One ReliableChannel carries data packets in a single direction
 * between two nodes; acknowledgements flow back over the same (faulty)
 * medium.  The sender keeps at most windowSize packets in flight,
 * retransmits on a per-packet timeout with exponential backoff, and
 * the receiver suppresses duplicates by sequence number and delivers
 * each message exactly once.  Messages are independent datagrams (as
 * in the 925 kernel, where every request and reply stands alone), so
 * a first good copy is delivered immediately rather than held behind
 * an earlier gap; acknowledgements are cumulative over the contiguous
 * prefix, so a lost ack is repaired by any later one.
 *
 * Crucially for the thesis' argument, the channel never burns CPU
 * time itself: every protocol step (send processing, receipt
 * checking, ack generation and processing, timeout service) is issued
 * through the Hooks as a kernel activity, so its processing and
 * shared-memory cost lands on whichever processor the node's
 * architecture assigns to communication — the host under
 * Architecture I, the message coprocessor under II–IV.  "Who pays for
 * retransmission processing" is thereby a measured quantity.
 */

#ifndef HSIPC_SIM_NET_RELIABLE_HH
#define HSIPC_SIM_NET_RELIABLE_HH

#include <cstdint>
#include <deque>
#include <map>
#include <set>

#include "sim/des/event_queue.hh"
#include "sim/net/faults.hh"

namespace hsipc::sim
{

/** Reliable, exactly-once delivery of independent messages one way. */
class ReliableChannel
{
  public:
    struct Config
    {
        int srcNode = 0;
        int dstNode = 1;
        int windowSize = 8;    //!< max unacked packets in flight
        double rtoUs = 5000;   //!< initial retransmission timeout
        double rtoMaxUs = 80000; //!< backoff ceiling
        int dataBytes = 48;    //!< payload packet size on the wire
        int ackBytes = 16;     //!< acknowledgement packet size

        // Protocol processing costs, in host-speed microseconds on
        // the node's communication processor.
        double sendProcUs = 120;    //!< header build + checksum
        double recvProcUs = 120;    //!< checksum verify + seq check
        double ackProcUs = 60;      //!< generate or absorb an ack
        double timeoutProcUs = 100; //!< timer service before a resend
        int busAccesses = 6; //!< shared-memory accesses per step
    };

    /**
     * Run one protocol step as a kernel activity on the named node
     * (srcNode or dstNode), then continue.
     */
    using Exec = std::function<void(int node, const char *activity,
                                    double procUs, int priority,
                                    EventQueue::Callback done)>;

    /**
     * Put @p bytes on the raw medium in the named direction.  When
     * @p batch is non-null the arrival must be *staged* into it
     * rather than scheduled directly — the channel batches a protocol
     * step's whole fan-out (fault-injected copies, the delivery, the
     * retransmission timer) into one queue commit, and staging keeps
     * the committed sequence order identical to the unbatched code.
     */
    using RawSend = std::function<void(
        int bytes, EventQueue::Callback arrive,
        EventQueue::Batch *batch)>;

    struct Hooks
    {
        Exec exec;
        RawSend mediumToDst; //!< data packets, src -> dst
        RawSend mediumToSrc; //!< acknowledgements, dst -> src
    };

    struct Stats
    {
        long accepted = 0;  //!< messages handed to send()
        long delivered = 0; //!< exactly-once deliveries upward
        long dataTransmissions = 0; //!< incl. retransmissions
        long retransmissions = 0;
        long timeoutsFired = 0;
        long duplicatesDropped = 0; //!< suppressed by seq number
        long corruptDiscarded = 0;  //!< failed the checksum on receipt
        long acksSent = 0;
    };

    ReliableChannel(EventQueue &eq, const Config &cfg,
                    FaultInjector &faults, Hooks hooks)
        : eq(eq), cfg(cfg), faults(faults), hooks(std::move(hooks))
    {}

    /**
     * Record this channel's protocol events (send/retransmit/timeout/
     * ack/deliver/discard instants, window occupancy) as a track
     * named @p trackName in @p t.  Observational only.
     */
    void
    attachTracer(trace::Tracer *t, const std::string &trackName)
    {
        tracer = t;
        traceTrack = t ? t->track(trackName) : -1;
    }

    /**
     * Per-event observer for windowed timelines: called with a
     * stable event key ("dataTx", "retx", "deliver", "ack") and the
     * amount the matching Stats counter grew by, at the simulated
     * instant the counter moved.  Observational only — binning these
     * calls by timestamp is what makes a timeline series' integral
     * equal the whole-run ledger exactly.
     */
    using EventObserver =
        std::function<void(const char *event, double n)>;

    void setEventObserver(EventObserver cb)
    {
        observer = std::move(cb);
    }

    /**
     * Reliably deliver one message; @p deliver fires at the receiving
     * node exactly once.  @p msgId (0 = none) is the message's
     * lifetime id: every transmission of the packet — including
     * retransmissions after a timeout — carries it, so the recovery
     * chain stays attributed to the original message in the trace.
     */
    void send(EventQueue::Callback deliver, long msgId = 0);

    const Stats &stats() const { return counts; }
    long inFlight() const { return nextSeq - windowBase; }

    /** Messages transmitted at least once but not yet acknowledged. */
    long
    windowPending() const
    {
        return static_cast<long>(unacked.size());
    }

    /** Messages accepted but still waiting for a window slot. */
    long
    backlogSize() const
    {
        return static_cast<long>(backlog.size());
    }

  private:
    /** Sender-side record of an unacknowledged packet. */
    struct Pending
    {
        EventQueue::Callback deliver;
        long msgId = 0; //!< lifetime id of the carried message
        int retries = 0;
        std::uint64_t generation = 0; //!< invalidates stale timers
    };

    void pump();
    void transmit(long seq, bool retransmit);
    void onTimeout(long seq, std::uint64_t generation);
    void arriveData(long seq, bool corrupted);
    void sendAck();
    void arriveAck(long ackNum, bool corrupted);
    Tick rto(int retries) const;
    void note(const char *event, long msgId = 0);

    void
    observe(const char *event, double n)
    {
        if (observer)
            observer(event, n);
    }

    EventQueue &eq;
    Config cfg;
    FaultInjector &faults;
    Hooks hooks;
    Stats counts;
    trace::Tracer *tracer = nullptr;
    int traceTrack = -1;
    EventObserver observer; //!< null unless a timeline is recording

    // Sender state.
    long nextSeq = 0;    //!< next sequence number to assign
    long windowBase = 0; //!< lowest unacknowledged sequence number
    std::map<long, Pending> unacked;
    //! Sends beyond the window: (deliver, msgId) awaiting a slot.
    std::deque<std::pair<EventQueue::Callback, long>> backlog;

    // Receiver state: the contiguous prefix [0, nextExpected) has
    // been received; receivedAhead holds delivered packets beyond it.
    long nextExpected = 0;
    std::set<long> receivedAhead;
};

} // namespace hsipc::sim

#endif // HSIPC_SIM_NET_RELIABLE_HH
