#include "sim/net/reliable.hh"

#include <algorithm>

#include "sim/check/test_hooks.hh"
#include "sim/node/processor.hh"

namespace hsipc::sim
{

void
ReliableChannel::note(const char *event, long msgId)
{
    if (tracer && tracer->enabled())
        tracer->instant(traceTrack, event, eq.now(), "proto", msgId);
}

void
ReliableChannel::send(EventQueue::Callback deliver, long msgId)
{
    ++counts.accepted;
    backlog.emplace_back(std::move(deliver), msgId);
    pump();
}

void
ReliableChannel::pump()
{
    while (!backlog.empty() && inFlight() < cfg.windowSize) {
        const long seq = nextSeq++;
        unacked[seq].deliver = std::move(backlog.front().first);
        unacked[seq].msgId = backlog.front().second;
        backlog.pop_front();
        transmit(seq, false);
    }
    if (tracer && tracer->enabled())
        tracer->counter(traceTrack, "inFlight", eq.now(),
                        static_cast<double>(inFlight()));
}

Tick
ReliableChannel::rto(int retries) const
{
    double us = cfg.rtoUs;
    for (int i = 0; i < retries && us < cfg.rtoMaxUs; ++i)
        us *= 2;
    return usToTicks(std::min(us, cfg.rtoMaxUs));
}

void
ReliableChannel::transmit(long seq, bool retransmit)
{
    auto it = unacked.find(seq);
    if (it == unacked.end())
        return;
    ++counts.dataTransmissions;
    observe("dataTx", 1);
    if (retransmit) {
        const long by = 1 + check::testHooks().retransmissionMiscount;
        counts.retransmissions += by;
        observe("retx", static_cast<double>(by));
    }
    // Every copy of the packet carries the original message's id, so
    // a recovery chain (timeout, resend, late delivery) stays one
    // message's story in the trace.
    note(retransmit ? "retransmit" : "send", it->second.msgId);
    const std::uint64_t gen = ++it->second.generation;
    hooks.exec(
        cfg.srcNode, retransmit ? "protoResend" : "protoSend",
        cfg.sendProcUs, prioTask, [this, seq, gen]() {
            auto self = unacked.find(seq);
            // Acked or re-sent while the activity sat in the
            // processor queue.
            if (self == unacked.end() ||
                self->second.generation != gen)
                return;
            // One transmission fans out several events — the
            // injector's copies (possibly delayed), each copy's
            // medium delivery, and the retransmission timer — so
            // stage them all and commit once.  Staging order matches
            // the unbatched schedule order exactly, so batching never
            // moves a tie.
            auto batch = eq.scheduleBatch();
            if (!faults.nodeUp(cfg.srcNode, eq.now())) {
                faults.noteCrashDrop();
            } else {
                for (const FaultInjector::Copy &c : faults.judge()) {
                    auto go = [this, seq, corrupted = c.corrupted](
                                  EventQueue::Batch *b) {
                        hooks.mediumToDst(
                            cfg.dataBytes,
                            [this, seq, corrupted]() {
                                arriveData(seq, corrupted);
                            },
                            b);
                    };
                    if (c.extraDelay > 0)
                        batch.scheduleAfter(
                            c.extraDelay,
                            [go]() { go(nullptr); });
                    else
                        go(&batch);
                }
            }
            // The timer runs whether or not the packet made it out:
            // a crashed source retries once its window is over.
            batch.scheduleAfter(rto(self->second.retries),
                                [this, seq, gen]() {
                                    onTimeout(seq, gen);
                                });
        });
}

void
ReliableChannel::onTimeout(long seq, std::uint64_t gen)
{
    auto it = unacked.find(seq);
    if (it == unacked.end() || it->second.generation != gen)
        return; // acknowledged (or superseded) in time
    ++counts.timeoutsFired;
    note("timeout", it->second.msgId);
    // A packet that keeps timing out after the backoff ceiling is a
    // partition or a mis-tuned RTO, not routine loss; say so, but
    // never once per retry — a long outage fires thousands.
    if (it->second.retries >= 10)
        hsipc_warn_every(1000, "packet seq " + std::to_string(seq) +
                                   " still unacknowledged after " +
                                   std::to_string(it->second.retries) +
                                   " retries");
    hooks.exec(cfg.srcNode, "protoTimeout", cfg.timeoutProcUs,
               prioInterrupt, [this, seq, gen]() {
                   auto self = unacked.find(seq);
                   if (self == unacked.end() ||
                       self->second.generation != gen)
                       return;
                   ++self->second.retries;
                   transmit(seq, true);
               });
}

void
ReliableChannel::arriveData(long seq, bool corrupted)
{
    if (!faults.nodeUp(cfg.dstNode, eq.now())) {
        faults.noteCrashDrop();
        return;
    }
    hooks.exec(
        cfg.dstNode, "protoRecv", cfg.recvProcUs, prioInterrupt,
        [this, seq, corrupted]() {
            if (corrupted) {
                ++counts.corruptDiscarded;
                note("corruptDiscard");
                return; // no ack: the sender's timer recovers it
            }
            if (seq < nextExpected || receivedAhead.count(seq) > 0) {
                ++counts.duplicatesDropped;
                note("dupDrop");
                // Re-ack so a lost ack cannot stall the window.
                sendAck();
                return;
            }
            note("deliver", unacked.at(seq).msgId);
            // First good copy.  Messages are independent datagrams,
            // so deliver immediately instead of holding it behind an
            // earlier gap; only the ack stays cumulative.
            receivedAhead.insert(seq);
            while (receivedAhead.erase(nextExpected) > 0)
                ++nextExpected;
            ++counts.delivered;
            observe("deliver", 1);
            // First delivery of this sequence number (later copies
            // take the dupDrop path above), so the callback can be
            // moved out rather than copied.
            EventQueue::Callback cb =
                std::move(unacked.at(seq).deliver);
            sendAck();
            cb();
        });
}

void
ReliableChannel::sendAck()
{
    ++counts.acksSent;
    observe("ack", 1);
    note("ack");
    hooks.exec(
        cfg.dstNode, "protoAck", cfg.ackProcUs, prioInterrupt,
        [this]() {
            const long ackNum = nextExpected; // cumulative
            if (!faults.nodeUp(cfg.dstNode, eq.now())) {
                faults.noteCrashDrop();
                return;
            }
            // As in transmit(): stage the ack's injected copies and
            // commit them in one queue operation.
            auto batch = eq.scheduleBatch();
            for (const FaultInjector::Copy &c : faults.judge()) {
                auto go = [this, ackNum, corrupted = c.corrupted](
                              EventQueue::Batch *b) {
                    hooks.mediumToSrc(
                        cfg.ackBytes,
                        [this, ackNum, corrupted]() {
                            arriveAck(ackNum, corrupted);
                        },
                        b);
                };
                if (c.extraDelay > 0)
                    batch.scheduleAfter(c.extraDelay,
                                        [go]() { go(nullptr); });
                else
                    go(&batch);
            }
        });
}

void
ReliableChannel::arriveAck(long ackNum, bool corrupted)
{
    if (!faults.nodeUp(cfg.srcNode, eq.now())) {
        faults.noteCrashDrop();
        return;
    }
    hooks.exec(cfg.srcNode, "protoAck", cfg.ackProcUs, prioInterrupt,
               [this, ackNum, corrupted]() {
                   if (corrupted) {
                       ++counts.corruptDiscarded;
                       return;
                   }
                   if (ackNum <= windowBase)
                       return; // stale cumulative ack
                   unacked.erase(unacked.begin(),
                                 unacked.lower_bound(ackNum));
                   windowBase = ackNum;
                   pump();
               });
}

} // namespace hsipc::sim
