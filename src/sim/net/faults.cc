#include "sim/net/faults.hh"

namespace hsipc::sim
{

std::vector<FaultInjector::Copy>
FaultInjector::judge()
{
    ++counts.injected;
    std::vector<Copy> copies;
    if (plan.dropRate > 0 && rng.chance(plan.dropRate)) {
        ++counts.dropped;
        return copies;
    }

    Copy original;
    if (plan.corruptRate > 0 && rng.chance(plan.corruptRate)) {
        original.corrupted = true;
        ++counts.corrupted;
    }
    if (plan.reorderRate > 0 && rng.chance(plan.reorderRate)) {
        original.extraDelay = usToTicks(plan.reorderDelayUs);
        ++counts.reordered;
    }
    copies.push_back(original);

    if (plan.duplicateRate > 0 && rng.chance(plan.duplicateRate)) {
        // The duplicate trails the original; it is a faithful copy of
        // the bits on the wire, so it shares the original's corruption.
        Copy dup = original;
        dup.extraDelay += usToTicks(plan.duplicateLagUs);
        copies.push_back(dup);
        ++counts.duplicated;
    }
    return copies;
}

bool
FaultInjector::nodeUp(int node, Tick now) const
{
    for (const CrashWindow &w : plan.crashes) {
        if (w.node == node && now >= usToTicks(w.startUs) &&
            now < usToTicks(w.endUs))
            return false;
    }
    return true;
}

} // namespace hsipc::sim
