#include "sim/net/faults.hh"

namespace hsipc::sim
{

void
FaultInjector::attachTracer(trace::Tracer *t, const EventQueue *c)
{
    tracer = t;
    clock = c;
    traceTrack = t ? t->track("medium") : -1;
    if (!t || !t->enabled())
        return;
    // Crash windows are scheduled, not random: record their edges up
    // front so the timeline shows the outage before any packet hits it.
    for (const CrashWindow &w : plan.crashes) {
        // Append-style (not "n" + ...): the operator+ chain trips a
        // GCC 12 -Wrestrict false positive when inlined.
        std::string node = "n";
        node += std::to_string(w.node);
        t->instant(traceTrack, node + " crash", usToTicks(w.startUs),
                   "crash");
        t->instant(traceTrack, node + " recover", usToTicks(w.endUs),
                   "crash");
    }
}

void
FaultInjector::note(const char *event)
{
    if (tracer && tracer->enabled() && clock)
        tracer->instant(traceTrack, event, clock->now(), "fault");
}

std::vector<FaultInjector::Copy>
FaultInjector::judge()
{
    ++counts.injected;
    std::vector<Copy> copies;
    if (plan.dropRate > 0 && rng.chance(plan.dropRate)) {
        ++counts.dropped;
        note("drop");
        return copies;
    }

    Copy original;
    if (plan.corruptRate > 0 && rng.chance(plan.corruptRate)) {
        original.corrupted = true;
        ++counts.corrupted;
        note("corrupt");
    }
    if (plan.reorderRate > 0 && rng.chance(plan.reorderRate)) {
        original.extraDelay = usToTicks(plan.reorderDelayUs);
        ++counts.reordered;
        note("reorder");
    }
    copies.push_back(original);

    if (plan.duplicateRate > 0 && rng.chance(plan.duplicateRate)) {
        // The duplicate trails the original; it is a faithful copy of
        // the bits on the wire, so it shares the original's corruption.
        Copy dup = original;
        dup.extraDelay += usToTicks(plan.duplicateLagUs);
        copies.push_back(dup);
        ++counts.duplicated;
        note("duplicate");
    }
    return copies;
}

bool
FaultInjector::nodeUp(int node, Tick now) const
{
    for (const CrashWindow &w : plan.crashes) {
        if (w.node == node && now >= usToTicks(w.startUs) &&
            now < usToTicks(w.endUs))
            return false;
    }
    return true;
}

} // namespace hsipc::sim
