/**
 * @file
 * A move-only callable with small-buffer optimization for the event
 * queue's hot path.
 *
 * std::function heap-allocates once a capture outgrows its (library-
 * dependent, typically 16-24 byte) inline buffer — and nearly every
 * event the kernel simulator schedules captures `this` plus a few
 * ints, so the seed implementation paid one allocation per scheduled
 * event.  EventCallback stores captures up to 48 bytes inline (enough
 * for every callback on the simulator's steady-state path) and spills
 * larger ones to a per-thread free-list pool of fixed-size blocks, so
 * even spilled events stop allocating once the pool has warmed up.
 *
 * The type is move-only: events are scheduled exactly once, and a
 * copyable callable would silently forbid move-only captures (and
 * re-introduce allocation when copied).  Moves are pointer-sized for
 * spilled targets and delegate to the target's (required noexcept)
 * move constructor for inline ones.
 */

#ifndef HSIPC_SIM_CALLABLE_HH
#define HSIPC_SIM_CALLABLE_HH

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/obs/pool_counters.hh"

namespace hsipc::sim
{

namespace detail
{

/**
 * Per-thread free list of uniform blocks backing spilled callables.
 * Uniform sizing keeps release O(1) with no size bookkeeping; spills
 * larger than a block (rare, deeply nested captures) fall back to
 * plain operator new.  Thread-local because each simulation runs on
 * one thread — no locks, and ThreadSanitizer-clean when a sweep
 * runner executes many simulations concurrently.
 */
class SpillPool
{
  public:
    static constexpr std::size_t blockSize = 256;
    static constexpr std::size_t maxFreeBlocks = 1024;

    static SpillPool &
    instance()
    {
        thread_local SpillPool pool;
        return pool;
    }

    void *
    alloc()
    {
        if (!free_.empty()) {
            void *p = free_.back();
            free_.pop_back();
            return p;
        }
        ++obs::callbackPoolCounters().freshBlocks;
        return ::operator new(blockSize);
    }

    void
    release(void *p)
    {
        if (free_.size() < maxFreeBlocks)
            free_.push_back(p);
        else
            ::operator delete(p);
    }

    /** Blocks currently parked on this thread's free list (tests). */
    std::size_t freeBlocks() const { return free_.size(); }

    ~SpillPool()
    {
        for (void *p : free_)
            ::operator delete(p);
    }

  private:
    std::vector<void *> free_;
};

} // namespace detail

/** Move-only `void()` callable with 48 bytes of inline storage. */
class EventCallback
{
  public:
    /** Captures up to this size (and max_align_t-aligned) stay inline. */
    static constexpr std::size_t inlineCapacity = 48;

    EventCallback() noexcept = default;

    template <typename F, typename D = std::decay_t<F>,
              typename = std::enable_if_t<
                  !std::is_same_v<D, EventCallback> &&
                  std::is_invocable_r_v<void, D &>>>
    EventCallback(F &&f) // NOLINT: implicit like std::function
    {
        construct<D>(std::forward<F>(f));
    }

    EventCallback(EventCallback &&other) noexcept { moveFrom(other); }

    EventCallback &
    operator=(EventCallback &&other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventCallback(const EventCallback &) = delete;
    EventCallback &operator=(const EventCallback &) = delete;

    ~EventCallback() { reset(); }

    explicit operator bool() const noexcept { return ops != nullptr; }

    /** Invoke the target (const like std::function: targets may mutate). */
    void
    operator()() const
    {
        ops->invoke(const_cast<void *>(
            static_cast<const void *>(&storage)));
    }

  private:
    /**
     * Type-erased operations; one static instance per target type.
     * relocate/destroy are null when the operation reduces to a
     * memcpy/no-op: heap sifts move events constantly, and an
     * indirect call per move costs more than the move itself for the
     * pointer-plus-ints captures that dominate the simulator.
     */
    struct Ops
    {
        void (*invoke)(void *storage);
        //! Move the target from @p src storage into @p dst storage
        //! and destroy the source (noexcept by construction).  Null
        //! means the target is trivially relocatable: copy the raw
        //! storage bytes and do not touch the source again.
        void (*relocate)(void *src, void *dst) noexcept;
        //! Null means trivially destructible (nothing to do).
        void (*destroy)(void *storage);
    };

    template <typename D>
    static constexpr bool fitsInline =
        sizeof(D) <= inlineCapacity &&
        alignof(D) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<D>;

    template <typename D> struct InlineOps
    {
        static void
        invoke(void *s)
        {
            (*std::launder(reinterpret_cast<D *>(s)))();
        }
        static void
        relocate(void *src, void *dst) noexcept
        {
            D *from = std::launder(reinterpret_cast<D *>(src));
            ::new (dst) D(std::move(*from));
            from->~D();
        }
        static void
        destroy(void *s)
        {
            std::launder(reinterpret_cast<D *>(s))->~D();
        }
        static constexpr Ops ops{
            invoke,
            std::is_trivially_copyable_v<D> ? nullptr : relocate,
            std::is_trivially_destructible_v<D> ? nullptr : destroy};
    };

    //! Spilled targets store a pointer to a pool block (or a plain
    //! allocation when larger than a block) in the inline storage.
    template <typename D, bool pooled> struct SpilledOps
    {
        static D *&
        ptr(void *s)
        {
            return *static_cast<D **>(s);
        }
        static void
        invoke(void *s)
        {
            (*ptr(s))();
        }
        static void
        destroy(void *s)
        {
            D *target = ptr(s);
            target->~D();
            if constexpr (pooled)
                detail::SpillPool::instance().release(target);
            else
                ::operator delete(target);
        }
        // Relocation is a pointer copy — trivially relocatable.
        static constexpr Ops ops{invoke, nullptr, destroy};
    };

    template <typename D, typename F>
    void
    construct(F &&f)
    {
        if constexpr (fitsInline<D>) {
            ::new (static_cast<void *>(&storage)) D(std::forward<F>(f));
            ops = &InlineOps<D>::ops;
        } else if constexpr (sizeof(D) <= detail::SpillPool::blockSize &&
                             alignof(D) <=
                                 alignof(std::max_align_t)) {
            ++obs::callbackPoolCounters().pooledConstructs;
            void *block = detail::SpillPool::instance().alloc();
            *reinterpret_cast<D **>(&storage) =
                ::new (block) D(std::forward<F>(f));
            ops = &SpilledOps<D, true>::ops;
        } else {
            ++obs::callbackPoolCounters().oversizeConstructs;
            *reinterpret_cast<D **>(&storage) =
                new D(std::forward<F>(f));
            ops = &SpilledOps<D, false>::ops;
        }
    }

    void
    moveFrom(EventCallback &other) noexcept
    {
        ops = other.ops;
        if (ops) {
            if (ops->relocate)
                ops->relocate(&other.storage, &storage);
            else
                std::memcpy(&storage, &other.storage, inlineCapacity);
        }
        other.ops = nullptr;
    }

    void
    reset()
    {
        if (ops) {
            if (ops->destroy)
                ops->destroy(&storage);
            ops = nullptr;
        }
    }

    alignas(std::max_align_t) std::byte storage[inlineCapacity];
    const Ops *ops = nullptr;
};

} // namespace hsipc::sim

#endif // HSIPC_SIM_CALLABLE_HH
