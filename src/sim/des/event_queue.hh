/**
 * @file
 * Discrete-event simulation core: a time-ordered event queue with
 * stable FIFO ordering among simultaneous events.
 *
 * The pending-event set is a selectable policy (QueueKind):
 *
 *  - **Heap** (the reference): an explicit binary min-heap over
 *    (when, seq) rather than a std::priority_queue: priority_queue's
 *    top() returns a const reference, so popping a move-only event
 *    out of it needs a const_cast (mutating a container element
 *    through top() — UB-bait), and its pop() cannot be fused with the
 *    inspection the run loop just did.  The explicit heap moves the
 *    root out legitimately and lets runUntil() do exactly one heap
 *    inspection per executed event.  O(log n) per operation.
 *
 *  - **Ladder** (see ladder_queue.hh): the Tang/Goh/Thng three-tier
 *    structure — unsorted far-future Top, adaptively-split bucket
 *    rungs, sorted near-future Bottom — amortized O(1) per operation,
 *    which is what keeps tens of thousands of pending events (the
 *    thousand-node topologies ROADMAP item 2 aims at) off the heap's
 *    O(log n) sift path.
 *
 * Both policies order by the same strict total order (when, seq), so
 * they execute the *identical* event sequence — the fuzz oracle's
 * queue.* family holds every simulator outcome bit-identical across
 * the two.  Backing storage is reserved up front (sized by the
 * reserveHint, see EventQueue()) so the steady state never
 * reallocates.  Callbacks are EventCallback (see callable.hh): 48
 * bytes of inline capture storage and a pooled spill path, so
 * scheduling stops allocating per event.  Fan-out call sites can
 * stage several events in a Batch (scheduleBatch()) and commit them
 * in one queue operation.
 */

#ifndef HSIPC_SIM_EVENT_QUEUE_HH
#define HSIPC_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/obs/engine_prof.hh"
#include "common/time.hh"
#include "sim/des/callable.hh"
#include "sim/des/ladder_queue.hh"

namespace hsipc::sim
{

/** Pending-event-set policy (Experiment::queueKind selects one). */
enum class QueueKind
{
    Heap = 0,   //!< reference binary min-heap, O(log n)
    Ladder = 1, //!< Tang/Goh/Thng ladder queue, amortized O(1)
};

/** The event queue driving a simulation. */
class EventQueue
{
  public:
    using Callback = EventCallback;

    /**
     * @p reserveHint sizes the backing store for the expected peak
     * pending-event population; 0 applies the historical default
     * (1024 — the kernel simulator keeps a few dozen to a few hundred
     * events in flight, so a page of headroom removes every
     * steady-state reallocation).  Thousand-node experiments pass
     * their own hint (Experiment::expectedPendingEvents) so growth
     * reallocation never lands on the event path.
     */
    explicit EventQueue(QueueKind kind = QueueKind::Heap,
                        std::size_t reserveHint = 0)
    {
        const std::size_t cap =
            reserveHint ? reserveHint : defaultCapacity;
        if (kind == QueueKind::Ladder)
            ladder = std::make_unique<LadderQueue<Event>>(cap);
        else
            heap.reserve(cap);
    }

    Tick now() const { return current; }

    QueueKind
    kind() const
    {
        return ladder ? QueueKind::Ladder : QueueKind::Heap;
    }

    /**
     * Attach a self-profiler (see common/obs/engine_prof.hh): queue
     * telemetry, dwell/depth sampling, and wall-clock bracketing of
     * executed events.  Observational only — a profiled run executes
     * the same events in the same order; with no profiler attached
     * every hook is one predictable branch.
     */
    void
    attachProfiler(obs::EngineProfiler *p)
    {
        prof = p;
        profMask = p ? p->sampleMask() : 0;
        profSeqFlushed = nextSeq;
        profExecFlushed = executed;
        profCmps = 0;
        profMaxHeap = 0;
        profLadderFlushed = {};
        profBatchCommits = 0;
        profBatchedEvents = 0;
        if (p)
            p->noteQueueKind(static_cast<int>(kind()));
    }

    /** Schedule @p cb at absolute time @p when (>= now). */
    void
    schedule(Tick when, Callback cb)
    {
        if (prof)
            pushT<true>(when, std::move(cb));
        else
            pushT<false>(when, std::move(cb));
    }

    /** Schedule @p cb @p delay ticks from now. */
    void
    scheduleAfter(Tick delay, Callback cb)
    {
        schedule(current + delay, std::move(cb));
    }

    /**
     * A staging buffer for fan-out scheduling (retransmit bursts,
     * open-arrival generators, kickoffs): stage events with
     * schedule()/scheduleAfter(), then commit() lands them in one
     * queue operation (the destructor commits any remainder).
     *
     * Commit order is staging order, and sequence numbers are
     * assigned at commit in that order — a committed batch is
     * equivalent, event for event and tie for tie, to calling
     * EventQueue::schedule() in the same order.  Batching therefore
     * never perturbs FIFO ordering or the heap/ladder identity; what
     * it buys is one profiler/assert pass per batch and the ladder's
     * ability to classify a run of far-future events back to back.
     */
    class Batch
    {
      public:
        explicit Batch(EventQueue &q) : q_(q) {}
        ~Batch() { commit(); }
        Batch(const Batch &) = delete;
        Batch &operator=(const Batch &) = delete;

        void
        schedule(Tick when, Callback cb)
        {
            if (n_ == capacity)
                flush();
            staged_[n_].when = when;
            staged_[n_].cb = std::move(cb);
            ++n_;
        }

        void
        scheduleAfter(Tick delay, Callback cb)
        {
            schedule(q_.now() + delay, std::move(cb));
        }

        /** Land every staged event; empty commits are free. */
        void
        commit()
        {
            if (n_ > 0)
                flush();
        }

      private:
        friend class EventQueue;
        struct Staged
        {
            Tick when = 0;
            Callback cb;
        };
        //! Inline staging only: a batch never allocates, so the
        //! steady state stays allocation-free.  Overflow commits the
        //! full chunk and keeps staging — order is preserved.
        static constexpr int capacity = 8;

        void
        flush()
        {
            q_.commitBatch(staged_, n_);
            n_ = 0;
        }

        EventQueue &q_;
        Staged staged_[capacity];
        int n_ = 0;
    };

    /** Open a staging batch against this queue. */
    Batch scheduleBatch() { return Batch(*this); }

    bool
    empty() const
    {
        return ladder ? ladder->empty() : heap.empty();
    }

    std::size_t
    size() const
    {
        return ladder ? ladder->size() : heap.size();
    }

    /** Events executed since construction (for the metrics dump). */
    std::uint64_t eventsRun() const { return executed; }

    /** Pop and run the earliest event; false when none remain. */
    bool
    runOne()
    {
        if (empty())
            return false;
        if (ladder) {
            if (prof) {
                execOne<true, true>();
                flushProfile();
            } else {
                execOne<false, true>();
            }
        } else {
            if (prof) {
                execOne<true, false>();
                flushProfile();
            } else {
                execOne<false, false>();
            }
        }
        return true;
    }

    /**
     * Run until the clock passes @p end or the queue drains.  The hot
     * loop inspects the earliest pending event once per executed
     * event: the bounds check reads it in place, and the same read
     * feeds the pop.  The profiled and policy instantiations are
     * dispatched once, outside the loop.
     */
    void
    runUntil(Tick end)
    {
        if (ladder) {
            if (prof)
                runUntilT<true, true>(end);
            else
                runUntilT<false, true>(end);
        } else {
            if (prof)
                runUntilT<true, false>(end);
            else
                runUntilT<false, false>(end);
        }
    }

    /**
     * Test-only (see sim/check/test_hooks.hh, the queue-misordering
     * drill): break the ladder's FIFO tiebreak so simultaneous events
     * pop LIFO.  Planting a divergence this way proves the fuzz
     * oracle's queue.* bit-identity family actually bites.  No effect
     * on the heap policy.
     */
    void
    plantLadderMisorderTiebreak()
    {
        if (ladder)
            ladder->plantMisorderTiebreak();
    }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    /** Heap order: earlier time first, FIFO (seq) among equals. */
    static bool
    before(const Event &a, const Event &b)
    {
        return a.when != b.when ? a.when < b.when : a.seq < b.seq;
    }

    /**
     * The single insertion path (schedule() and Batch commits): the
     * profiled instantiation tracks peak population and the 1-in-N
     * dwell/depth subsample; Prof=false compiles to the bare insert.
     */
    template <bool Prof>
    void
    pushT(Tick when, Callback cb)
    {
        hsipc_assert(when >= current);
        if constexpr (Prof) {
            const std::size_t depth = size() + 1;
            if (depth > profMaxHeap)
                profMaxHeap = depth;
            // An event scheduled for `when` sits in the queue exactly
            // `when - now` simulated ticks — dwell is known at push
            // time, so events carry no extra timestamp.
            if ((nextSeq & profMask) == 0) [[unlikely]]
                prof->observePush(when - current, depth);
        }
        if (ladder) {
            ladder->push(Event{when, nextSeq++, std::move(cb)});
        } else {
            heap.push_back(Event{when, nextSeq++, std::move(cb)});
            siftUpT<Prof>(heap.size() - 1);
        }
    }

    /**
     * Land a staged batch.  Events are inserted in staging order with
     * sequence numbers assigned here, so the result is exactly a run
     * of schedule() calls; the batch counters feed the profiler's
     * fan-out ledger.
     */
    void
    commitBatch(Batch::Staged *staged, int n)
    {
        if (prof) {
            ++profBatchCommits;
            profBatchedEvents += static_cast<std::uint64_t>(n);
            for (int i = 0; i < n; ++i)
                pushT<true>(staged[i].when, std::move(staged[i].cb));
        } else {
            for (int i = 0; i < n; ++i)
                pushT<false>(staged[i].when, std::move(staged[i].cb));
        }
    }

    /**
     * Pop and execute the earliest event.  The Prof=true
     * instantiation counts the pop, and for the deterministic 1-in-N
     * subsample brackets the event body with a steady_clock pair; the
     * Prof=false heap instantiation is byte-for-byte the pre-profiler
     * hot loop body.
     */
    template <bool Prof, bool UseLadder>
    void
    execOne()
    {
        Event ev = [this]() {
            if constexpr (UseLadder)
                return ladder->pop();
            else
                return popTop<Prof>();
        }();
        current = ev.when;
        ++executed;
        if constexpr (Prof) {
            prof->notePop();
            if ((ev.seq & profMask) == 0) [[unlikely]]
                execSampled(ev);
            else
                ev.cb();
        } else {
            ev.cb();
        }
    }

    /**
     * The wall-clock-bracketed execution of a 1-in-N sampled event.
     * Outlined and cold so the chrono machinery never sits inside
     * the hot run loop's code.
     */
    __attribute__((noinline, cold)) void
    execSampled(Event &ev)
    {
        prof->beginEvent();
        ev.cb();
        prof->endEvent();
    }

    template <bool Prof, bool UseLadder>
    void
    runUntilT(Tick end)
    {
        if constexpr (UseLadder) {
            while (!ladder->empty() && ladder->front().when <= end)
                execOne<Prof, true>();
        } else {
            while (!heap.empty() && heap.front().when <= end)
                execOne<Prof, false>();
        }
        if (current < end)
            current = end;
        if constexpr (Prof)
            flushProfile();
    }

    /**
     * Hand the profiler the queue counters it deliberately does not
     * keep itself: pushes are the seq-counter delta and pops the
     * executed delta since the last flush; comparisons and peak
     * population accumulate in queue members whose cache lines every
     * event dirties anyway.  The ladder's structural ledger (rung
     * spawns, Top transfers, Bottom sorts) and the batch fan-out
     * counters ride the same flush.  Runs after every run loop, so
     * the ledgers are current whenever control returns to the caller.
     */
    void
    flushProfile()
    {
        prof->addQueueTotals(nextSeq - profSeqFlushed,
                             executed - profExecFlushed, profCmps,
                             profMaxHeap);
        profSeqFlushed = nextSeq;
        profExecFlushed = executed;
        profCmps = 0;
        if (ladder) {
            const auto &s = ladder->stats();
            prof->addLadderTotals(
                s.topTransfers - profLadderFlushed.topTransfers,
                s.rungSpawns - profLadderFlushed.rungSpawns,
                s.bottomSorts - profLadderFlushed.bottomSorts,
                s.sortedEvents - profLadderFlushed.sortedEvents,
                s.maxBucket);
            profLadderFlushed = s;
        }
        if (profBatchCommits > 0) {
            prof->addBatchTotals(profBatchCommits,
                                 profBatchedEvents);
            profBatchCommits = 0;
            profBatchedEvents = 0;
        }
    }

    /** Remove and return the root, restoring the heap invariant. */
    template <bool Prof>
    Event
    popTop()
    {
        Event top = std::move(heap.front());
        if (heap.size() > 1) {
            heap.front() = std::move(heap.back());
            heap.pop_back();
            siftDownT<Prof>(0);
        } else {
            heap.pop_back();
        }
        return top;
    }

    /**
     * Bubble the element at @p i up, hole-style (one move per level).
     * The Prof=true instantiation counts heap-order comparisons into
     * the profiler; Prof=false compiles to the original sift.
     */
    template <bool Prof>
    void
    siftUpT(std::size_t i)
    {
        std::uint64_t cmps = 0;
        Event e = std::move(heap[i]);
        while (i > 0) {
            const std::size_t parent = (i - 1) / 2;
            if constexpr (Prof)
                ++cmps;
            if (!before(e, heap[parent]))
                break;
            heap[i] = std::move(heap[parent]);
            i = parent;
        }
        heap[i] = std::move(e);
        if constexpr (Prof)
            profCmps += cmps;
    }

    /** Push the element at @p i down, hole-style. */
    template <bool Prof>
    void
    siftDownT(std::size_t i)
    {
        std::uint64_t cmps = 0;
        Event e = std::move(heap[i]);
        const std::size_t n = heap.size();
        for (;;) {
            std::size_t child = 2 * i + 1;
            if (child >= n)
                break;
            if (child + 1 < n) {
                if constexpr (Prof)
                    ++cmps;
                if (before(heap[child + 1], heap[child]))
                    ++child;
            }
            if constexpr (Prof)
                ++cmps;
            if (!before(heap[child], e))
                break;
            heap[i] = std::move(heap[child]);
            i = child;
        }
        heap[i] = std::move(e);
        if constexpr (Prof)
            profCmps += cmps;
    }

    /** The historical pre-sized backing store (reserveHint = 0). */
    static constexpr std::size_t defaultCapacity = 1024;

    std::vector<Event> heap;
    //! Non-null exactly when the policy is QueueKind::Ladder; the
    //! heap vector stays empty then.
    std::unique_ptr<LadderQueue<Event>> ladder;
    Tick current = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;
    obs::EngineProfiler *prof = nullptr;
    // Per-event profiling state lives here, not on the profiler: the
    // queue's cache lines are dirty every event regardless, so these
    // cost the hot loop almost nothing; flushProfile() batches them
    // over.  profMask is cached so the 1-in-N tests stay local too.
    std::uint64_t profMask = 0;
    std::uint64_t profCmps = 0;        //!< sift comparisons since flush
    std::size_t profMaxHeap = 0;       //!< peak population since attach
    std::uint64_t profSeqFlushed = 0;  //!< nextSeq at last flush
    std::uint64_t profExecFlushed = 0; //!< executed at last flush
    //! Ladder structural counters already handed over.
    LadderQueue<Event>::Stats profLadderFlushed;
    std::uint64_t profBatchCommits = 0;  //!< batch commits since flush
    std::uint64_t profBatchedEvents = 0; //!< events those staged
};

} // namespace hsipc::sim

#endif // HSIPC_SIM_EVENT_QUEUE_HH
