/**
 * @file
 * Discrete-event simulation core: a time-ordered event queue with
 * stable FIFO ordering among simultaneous events.
 *
 * The queue is an explicit binary min-heap over (when, seq) rather
 * than a std::priority_queue: priority_queue::top() returns a const
 * reference, so popping a move-only event out of it needs a
 * const_cast (mutating a container element through top() — UB-bait),
 * and its pop() cannot be fused with the inspection the run loop just
 * did.  The explicit heap moves the root out legitimately, lets
 * runUntil() do exactly one heap inspection per executed event, and
 * reserves its backing storage up front so the steady state never
 * reallocates.  Callbacks are EventCallback (see callable.hh): 48
 * bytes of inline capture storage and a pooled spill path, so
 * scheduling stops allocating per event.
 */

#ifndef HSIPC_SIM_EVENT_QUEUE_HH
#define HSIPC_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/obs/engine_prof.hh"
#include "common/time.hh"
#include "sim/des/callable.hh"

namespace hsipc::sim
{

/** The event queue driving a simulation. */
class EventQueue
{
  public:
    using Callback = EventCallback;

    EventQueue() { heap.reserve(initialCapacity); }

    Tick now() const { return current; }

    /**
     * Attach a self-profiler (see common/obs/engine_prof.hh): queue
     * telemetry, dwell/depth sampling, and wall-clock bracketing of
     * executed events.  Observational only — a profiled run executes
     * the same events in the same order; with no profiler attached
     * every hook is one predictable branch.
     */
    void
    attachProfiler(obs::EngineProfiler *p)
    {
        prof = p;
        profMask = p ? p->sampleMask() : 0;
        profSeqFlushed = nextSeq;
        profExecFlushed = executed;
        profCmps = 0;
        profMaxHeap = 0;
    }

    /** Schedule @p cb at absolute time @p when (>= now). */
    void
    schedule(Tick when, Callback cb)
    {
        hsipc_assert(when >= current);
        if (prof) {
            const std::size_t depth = heap.size() + 1;
            if (depth > profMaxHeap)
                profMaxHeap = depth;
            // An event scheduled for `when` sits in the queue exactly
            // `when - now` simulated ticks — dwell is known at push
            // time, so events carry no extra timestamp.
            if ((nextSeq & profMask) == 0) [[unlikely]]
                prof->observePush(when - current, depth);
            heap.push_back(Event{when, nextSeq++, std::move(cb)});
            siftUpT<true>(heap.size() - 1);
        } else {
            heap.push_back(Event{when, nextSeq++, std::move(cb)});
            siftUpT<false>(heap.size() - 1);
        }
    }

    /** Schedule @p cb @p delay ticks from now. */
    void
    scheduleAfter(Tick delay, Callback cb)
    {
        schedule(current + delay, std::move(cb));
    }

    bool empty() const { return heap.empty(); }
    std::size_t size() const { return heap.size(); }

    /** Events executed since construction (for the metrics dump). */
    std::uint64_t eventsRun() const { return executed; }

    /** Pop and run the earliest event; false when none remain. */
    bool
    runOne()
    {
        if (heap.empty())
            return false;
        if (prof) {
            execOne<true>();
            flushProfile();
        } else {
            execOne<false>();
        }
        return true;
    }

    /**
     * Run until the clock passes @p end or the queue drains.  The hot
     * loop inspects the heap root once per event: the bounds check
     * reads the root in place, and the same read feeds the pop.  The
     * profiled instantiation is dispatched once, outside the loop.
     */
    void
    runUntil(Tick end)
    {
        if (prof)
            runUntilT<true>(end);
        else
            runUntilT<false>(end);
    }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    /** Heap order: earlier time first, FIFO (seq) among equals. */
    static bool
    before(const Event &a, const Event &b)
    {
        return a.when != b.when ? a.when < b.when : a.seq < b.seq;
    }

    /**
     * Pop and execute the root.  The Prof=true instantiation counts
     * the pop, and for the deterministic 1-in-N subsample brackets
     * the event body with a steady_clock pair; the Prof=false one is
     * byte-for-byte the pre-profiler hot loop body.
     */
    template <bool Prof>
    void
    execOne()
    {
        Event ev = popTop<Prof>();
        current = ev.when;
        ++executed;
        if constexpr (Prof) {
            prof->notePop();
            if ((ev.seq & profMask) == 0) [[unlikely]]
                execSampled(ev);
            else
                ev.cb();
        } else {
            ev.cb();
        }
    }

    /**
     * The wall-clock-bracketed execution of a 1-in-N sampled event.
     * Outlined and cold so the chrono machinery never sits inside
     * the hot run loop's code.
     */
    __attribute__((noinline, cold)) void
    execSampled(Event &ev)
    {
        prof->beginEvent();
        ev.cb();
        prof->endEvent();
    }

    template <bool Prof>
    void
    runUntilT(Tick end)
    {
        while (!heap.empty() && heap.front().when <= end)
            execOne<Prof>();
        if (current < end)
            current = end;
        if constexpr (Prof)
            flushProfile();
    }

    /**
     * Hand the profiler the queue counters it deliberately does not
     * keep itself: pushes are the seq-counter delta and pops the
     * executed delta since the last flush; comparisons and peak heap
     * depth accumulate in queue members whose cache lines every
     * event dirties anyway.  Runs after every run loop, so the
     * ledgers are current whenever control returns to the caller.
     */
    void
    flushProfile()
    {
        prof->addQueueTotals(nextSeq - profSeqFlushed,
                             executed - profExecFlushed, profCmps,
                             profMaxHeap);
        profSeqFlushed = nextSeq;
        profExecFlushed = executed;
        profCmps = 0;
    }

    /** Remove and return the root, restoring the heap invariant. */
    template <bool Prof>
    Event
    popTop()
    {
        Event top = std::move(heap.front());
        if (heap.size() > 1) {
            heap.front() = std::move(heap.back());
            heap.pop_back();
            siftDownT<Prof>(0);
        } else {
            heap.pop_back();
        }
        return top;
    }

    /**
     * Bubble the element at @p i up, hole-style (one move per level).
     * The Prof=true instantiation counts heap-order comparisons into
     * the profiler; Prof=false compiles to the original sift.
     */
    template <bool Prof>
    void
    siftUpT(std::size_t i)
    {
        std::uint64_t cmps = 0;
        Event e = std::move(heap[i]);
        while (i > 0) {
            const std::size_t parent = (i - 1) / 2;
            if constexpr (Prof)
                ++cmps;
            if (!before(e, heap[parent]))
                break;
            heap[i] = std::move(heap[parent]);
            i = parent;
        }
        heap[i] = std::move(e);
        if constexpr (Prof)
            profCmps += cmps;
    }

    /** Push the element at @p i down, hole-style. */
    template <bool Prof>
    void
    siftDownT(std::size_t i)
    {
        std::uint64_t cmps = 0;
        Event e = std::move(heap[i]);
        const std::size_t n = heap.size();
        for (;;) {
            std::size_t child = 2 * i + 1;
            if (child >= n)
                break;
            if (child + 1 < n) {
                if constexpr (Prof)
                    ++cmps;
                if (before(heap[child + 1], heap[child]))
                    ++child;
            }
            if constexpr (Prof)
                ++cmps;
            if (!before(heap[child], e))
                break;
            heap[i] = std::move(heap[child]);
            i = child;
        }
        heap[i] = std::move(e);
        if constexpr (Prof)
            profCmps += cmps;
    }

    /**
     * Pre-sized backing store: the kernel simulator keeps a few dozen
     * to a few hundred events in flight, so one page of headroom
     * removes every steady-state reallocation.
     */
    static constexpr std::size_t initialCapacity = 1024;

    std::vector<Event> heap;
    Tick current = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;
    obs::EngineProfiler *prof = nullptr;
    // Per-event profiling state lives here, not on the profiler: the
    // queue's cache lines are dirty every event regardless, so these
    // cost the hot loop almost nothing; flushProfile() batches them
    // over.  profMask is cached so the 1-in-N tests stay local too.
    std::uint64_t profMask = 0;
    std::uint64_t profCmps = 0;        //!< sift comparisons since flush
    std::size_t profMaxHeap = 0;       //!< peak depth since attach
    std::uint64_t profSeqFlushed = 0;  //!< nextSeq at last flush
    std::uint64_t profExecFlushed = 0; //!< executed at last flush
};

} // namespace hsipc::sim

#endif // HSIPC_SIM_EVENT_QUEUE_HH
