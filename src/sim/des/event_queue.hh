/**
 * @file
 * Discrete-event simulation core: a time-ordered event queue with
 * stable FIFO ordering among simultaneous events.
 */

#ifndef HSIPC_SIM_EVENT_QUEUE_HH
#define HSIPC_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/logging.hh"
#include "common/time.hh"

namespace hsipc::sim
{

/** The event queue driving a simulation. */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    Tick now() const { return current; }

    /** Schedule @p cb at absolute time @p when (>= now). */
    void
    schedule(Tick when, Callback cb)
    {
        hsipc_assert(when >= current);
        events.push(Event{when, nextSeq++, std::move(cb)});
    }

    /** Schedule @p cb @p delay ticks from now. */
    void
    scheduleAfter(Tick delay, Callback cb)
    {
        schedule(current + delay, std::move(cb));
    }

    bool empty() const { return events.empty(); }
    std::size_t size() const { return events.size(); }

    /** Events executed since construction (for the metrics dump). */
    std::uint64_t eventsRun() const { return executed; }

    /** Pop and run the earliest event; false when none remain. */
    bool
    runOne()
    {
        if (events.empty())
            return false;
        // std::priority_queue::top returns const&; the callback must
        // be moved out before popping.
        Event ev = std::move(const_cast<Event &>(events.top()));
        events.pop();
        hsipc_assert(ev.when >= current);
        current = ev.when;
        ++executed;
        ev.cb();
        return true;
    }

    /** Run until the clock passes @p end or the queue drains. */
    void
    runUntil(Tick end)
    {
        while (!events.empty() && events.top().when <= end) {
            if (!runOne())
                break;
        }
        if (current < end)
            current = end;
    }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;

        bool
        operator>(const Event &other) const
        {
            return when != other.when ? when > other.when
                                      : seq > other.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>>
        events;
    Tick current = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;
};

} // namespace hsipc::sim

#endif // HSIPC_SIM_EVENT_QUEUE_HH
