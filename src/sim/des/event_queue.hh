/**
 * @file
 * Discrete-event simulation core: a time-ordered event queue with
 * stable FIFO ordering among simultaneous events.
 *
 * The queue is an explicit binary min-heap over (when, seq) rather
 * than a std::priority_queue: priority_queue::top() returns a const
 * reference, so popping a move-only event out of it needs a
 * const_cast (mutating a container element through top() — UB-bait),
 * and its pop() cannot be fused with the inspection the run loop just
 * did.  The explicit heap moves the root out legitimately, lets
 * runUntil() do exactly one heap inspection per executed event, and
 * reserves its backing storage up front so the steady state never
 * reallocates.  Callbacks are EventCallback (see callable.hh): 48
 * bytes of inline capture storage and a pooled spill path, so
 * scheduling stops allocating per event.
 */

#ifndef HSIPC_SIM_EVENT_QUEUE_HH
#define HSIPC_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/time.hh"
#include "sim/des/callable.hh"

namespace hsipc::sim
{

/** The event queue driving a simulation. */
class EventQueue
{
  public:
    using Callback = EventCallback;

    EventQueue() { heap.reserve(initialCapacity); }

    Tick now() const { return current; }

    /** Schedule @p cb at absolute time @p when (>= now). */
    void
    schedule(Tick when, Callback cb)
    {
        hsipc_assert(when >= current);
        heap.push_back(Event{when, nextSeq++, std::move(cb)});
        siftUp(heap.size() - 1);
    }

    /** Schedule @p cb @p delay ticks from now. */
    void
    scheduleAfter(Tick delay, Callback cb)
    {
        schedule(current + delay, std::move(cb));
    }

    bool empty() const { return heap.empty(); }
    std::size_t size() const { return heap.size(); }

    /** Events executed since construction (for the metrics dump). */
    std::uint64_t eventsRun() const { return executed; }

    /** Pop and run the earliest event; false when none remain. */
    bool
    runOne()
    {
        if (heap.empty())
            return false;
        Event ev = popTop();
        current = ev.when;
        ++executed;
        ev.cb();
        return true;
    }

    /**
     * Run until the clock passes @p end or the queue drains.  The hot
     * loop inspects the heap root once per event: the bounds check
     * reads the root in place, and the same read feeds the pop.
     */
    void
    runUntil(Tick end)
    {
        while (!heap.empty() && heap.front().when <= end) {
            Event ev = popTop();
            current = ev.when;
            ++executed;
            ev.cb();
        }
        if (current < end)
            current = end;
    }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    /** Heap order: earlier time first, FIFO (seq) among equals. */
    static bool
    before(const Event &a, const Event &b)
    {
        return a.when != b.when ? a.when < b.when : a.seq < b.seq;
    }

    /** Remove and return the root, restoring the heap invariant. */
    Event
    popTop()
    {
        Event top = std::move(heap.front());
        if (heap.size() > 1) {
            heap.front() = std::move(heap.back());
            heap.pop_back();
            siftDown(0);
        } else {
            heap.pop_back();
        }
        return top;
    }

    /** Bubble the element at @p i up, hole-style (one move per level). */
    void
    siftUp(std::size_t i)
    {
        Event e = std::move(heap[i]);
        while (i > 0) {
            const std::size_t parent = (i - 1) / 2;
            if (!before(e, heap[parent]))
                break;
            heap[i] = std::move(heap[parent]);
            i = parent;
        }
        heap[i] = std::move(e);
    }

    /** Push the element at @p i down, hole-style. */
    void
    siftDown(std::size_t i)
    {
        Event e = std::move(heap[i]);
        const std::size_t n = heap.size();
        for (;;) {
            std::size_t child = 2 * i + 1;
            if (child >= n)
                break;
            if (child + 1 < n && before(heap[child + 1], heap[child]))
                ++child;
            if (!before(heap[child], e))
                break;
            heap[i] = std::move(heap[child]);
            i = child;
        }
        heap[i] = std::move(e);
    }

    /**
     * Pre-sized backing store: the kernel simulator keeps a few dozen
     * to a few hundred events in flight, so one page of headroom
     * removes every steady-state reallocation.
     */
    static constexpr std::size_t initialCapacity = 1024;

    std::vector<Event> heap;
    Tick current = 0;
    std::uint64_t nextSeq = 0;
    std::uint64_t executed = 0;
};

} // namespace hsipc::sim

#endif // HSIPC_SIM_EVENT_QUEUE_HH
