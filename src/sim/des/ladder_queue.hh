/**
 * @file
 * A ladder queue (Tang, Goh, Thng, "Ladder queue: An O(1) priority
 * queue structure for large-scale discrete event simulation", TOMACS
 * 2005): the pending-event set behind EventQueue's `Ladder` policy.
 *
 * Three tiers, from far future to imminent:
 *
 *  - **Top**: an unsorted append-only array holding every event at or
 *    beyond `topStart_`.  Insertion is O(1); nothing is ordered until
 *    the simulation actually approaches these timestamps.
 *
 *  - **Ladder**: rungs of equal-width buckets.  Rung 0 is spawned by
 *    partitioning Top over [topMin, topMax]; when a bucket about to be
 *    consumed holds more than `spawnThreshold` events and its width is
 *    still splittable, it is re-partitioned into a finer child rung
 *    instead of being sorted.  Insertion into a rung is O(1) (index
 *    arithmetic); the recursion bounds the size of anything we ever
 *    sort.
 *
 *  - **Bottom**: one sorted array with a consume cursor, fed by
 *    sorting the next nonempty bucket of the finest rung.  pop() is a
 *    cursor increment; near-future events pushed after the sort are
 *    placed by binary insertion (and a FIFO storm of now-timestamped
 *    events degenerates to an O(1) append, because a fresh seq sorts
 *    after everything already there).
 *
 * Ordering is the engine's strict total order (when, seq) — no two
 * events compare equal — so plain std::sort yields the one correct
 * permutation and the pop sequence is *identical* to the reference
 * binary heap's.  That identity is what the fuzz oracle's queue.*
 * family pins across the whole configuration surface.
 *
 * Steady-state behaviour is allocation-free (pinned by tests): rungs
 * are recycled from a high-water-mark pool (`rungs_` never shrinks,
 * `active_` counts the live prefix), Bottom/Top vectors keep their
 * capacity across reuse, and spawn depth is capped by `maxRungs` (an
 * over-threshold bucket at the cap is simply sorted — correct, just a
 * bigger sort).  Bucket storage is block-recycled through a spare
 * pool: a drained bucket donates its array to `spares_`, and a bucket
 * about to grow adopts the largest banked block instead of
 * reallocating.  Without the pool a wide rung strands capacity behind
 * its consume cursor — the cursor marches forward through fresh
 * buckets, growing each from scratch while the drained ones behind it
 * hold the high-water arrays — so it would allocate at a slow constant
 * rate for the entire (possibly enormous) first sweep of the rung.
 */

#ifndef HSIPC_SIM_LADDER_QUEUE_HH
#define HSIPC_SIM_LADDER_QUEUE_HH

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/time.hh"

namespace hsipc::sim
{

/**
 * The ladder structure over an event type exposing `when` (Tick) and
 * `seq` (std::uint64_t).  Key order is (when, seq) ascending — the
 * same strict total order the binary heap uses.
 */
template <typename EventT> class LadderQueue
{
  public:
    /** Structural telemetry for the engine profiler (cumulative). */
    struct Stats
    {
        std::uint64_t topTransfers = 0; //!< Top partitioned into rung 0
        std::uint64_t rungSpawns = 0; //!< buckets split into finer rungs
        std::uint64_t bottomSorts = 0;  //!< buckets sorted into Bottom
        std::uint64_t sortedEvents = 0; //!< events those sorts ordered
        std::uint64_t maxBucket = 0;    //!< peak single-bucket population
    };

    explicit LadderQueue(std::size_t reserveHint)
    {
        top_.reserve(reserveHint);
        bottom_.reserve(spawnThreshold * 2);
        spares_.reserve(maxSpares);
    }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }
    const Stats &stats() const { return stats_; }

    /**
     * Test-only planted defect (EventQueue::plantLadderMisorderTiebreak
     * and the fuzz drill behind it): reverse the seq tiebreak, so
     * simultaneous events pop LIFO instead of FIFO.  Timestamp order
     * is untouched — exactly the subtle misordering a differential
     * oracle must catch, and nothing a single-run invariant would.
     */
    void plantMisorderTiebreak() { misorder_ = true; }

    void
    push(EventT ev)
    {
        ++size_;
        // Far future: O(1) unsorted append.
        if (ev.when >= topStart_) {
            if (top_.empty() || ev.when < topMin_)
                topMin_ = ev.when;
            if (top_.empty() || ev.when > topMax_)
                topMax_ = ev.when;
            top_.push_back(std::move(ev));
            return;
        }
        // Ladder: the first (coarsest) rung whose unconsumed span
        // still covers the timestamp.  Rung spans nest strictly, so
        // scanning coarse to fine finds the unique owner.
        for (std::size_t k = 0; k < active_; ++k) {
            Rung &r = rungs_[k];
            if (ev.when >= rungCurStart(r)) {
                appendTo(bucketOf(r, ev.when), std::move(ev));
                ++r.count;
                return;
            }
        }
        // Imminent: binary insertion into the sorted live suffix of
        // Bottom.  A fresh seq sorts last among equal timestamps, so
        // same-time storms take the push_back fast path.
        if (bottom_.empty() || less(bottom_.back(), ev)) {
            bottom_.push_back(std::move(ev));
            return;
        }
        const auto pos = std::upper_bound(
            bottom_.begin() +
                static_cast<std::ptrdiff_t>(bottomHead_),
            bottom_.end(), ev,
            [this](const EventT &a, const EventT &b) {
                return less(a, b);
            });
        bottom_.insert(pos, std::move(ev));
    }

    /** The earliest pending event; requires !empty(). */
    const EventT &
    front()
    {
        ensureBottom();
        return bottom_[bottomHead_];
    }

    /** Remove and return the earliest pending event; !empty(). */
    EventT
    pop()
    {
        ensureBottom();
        --size_;
        return std::move(bottom_[bottomHead_++]);
    }

  private:
    // Tuning from the TOMACS paper's recommendations, adapted to this
    // engine's event sizes: buckets per rung (their THRES also bounds
    // what a single sort may see) and a spawn-depth cap that bounds
    // rung recycling.  At the cap an oversized bucket is sorted as-is.
    // 128 buckets let a typical reschedule horizon (~100 ticks at the
    // engine's microsecond granularity) partition straight into
    // single-tick buckets — which skip their Bottom sort entirely —
    // instead of paying an intermediate rung redistribution.
    static constexpr std::size_t bucketCount = 128;
    static constexpr std::size_t spawnThreshold = 64;
    static constexpr std::size_t maxRungs = 8;
    // Spare-block pool bound: enough to absorb a full rung's worth of
    // drained buckets (plus a child rung in flight) before adoption
    // catches up.  Overflow donations are simply dropped.  Only
    // blocks of at least minSpareCap enter the pool — smaller ones
    // stay with their bucket, where rung recycling reuses them in
    // place without any pool traffic.
    static constexpr std::size_t maxSpares = 2 * bucketCount;
    static constexpr std::size_t minSpareCap = 4 * spawnThreshold;

    struct Rung
    {
        Tick start = 0;      //!< timestamp of bucket 0's left edge
        int widthShift = 0;  //!< bucket span is 1 << widthShift ticks
        std::size_t cur = 0; //!< first unconsumed bucket
        std::size_t count = 0; //!< events across unconsumed buckets
        std::vector<std::vector<EventT>> buckets =
            std::vector<std::vector<EventT>>(bucketCount);
    };

    bool
    less(const EventT &a, const EventT &b) const
    {
        if (a.when != b.when)
            return a.when < b.when;
        // Branchless tiebreak: XOR with the (test-only) misorder
        // plant keeps the hot comparator free of a second branch.
        return (a.seq < b.seq) != misorder_;
    }

    static Tick
    rungCurStart(const Rung &r)
    {
        return r.start +
               (static_cast<Tick>(r.cur) << r.widthShift);
    }

    std::vector<EventT> &
    bucketOf(Rung &r, Tick when)
    {
        // Widths are powers of two, so bucket placement is a shift —
        // an integer division here would dominate the O(1) push.
        // The clamp only matters for the rounding slack of the last
        // bucket; arithmetic places everything else exactly.
        const std::size_t i = std::min<std::size_t>(
            static_cast<std::size_t>((when - r.start) >>
                                     r.widthShift),
            bucketCount - 1);
        return r.buckets[i];
    }

    /**
     * Bank a drained bucket's array in the spare pool (the bucket is
     * left with zero capacity and re-adopts a block when refilled).
     * Blocks below minSpareCap keep their storage with the bucket:
     * donating every small bucket would make every refill cycle
     * through the pool — a linear adopt scan per bucket, per epoch —
     * for capacity the recycled rung would have kept anyway.
     */
    void
    donate(std::vector<EventT> &b)
    {
        b.clear();
        if (b.capacity() < minSpareCap ||
            spares_.size() == maxSpares)
            return;
        spares_.push_back(std::move(b)); // never reallocates: reserved
    }

    /**
     * Append to a bucket, adopting a banked spare block instead of
     * reallocating when the bucket is full.  Best fit — the smallest
     * block that still grows the bucket — so small buckets don't
     * hoard the large blocks the marching fill bucket needs.  The
     * content move is the same work a realloc would do, minus the
     * malloc.
     */
    void
    appendTo(std::vector<EventT> &b, EventT ev)
    {
        if (b.size() == b.capacity() && !spares_.empty()) {
            std::size_t best = spares_.size();
            std::size_t bestCap = 0;
            for (std::size_t i = 0; i < spares_.size(); ++i) {
                const std::size_t cap = spares_[i].capacity();
                if (cap > b.capacity() &&
                    (best == spares_.size() || cap < bestCap)) {
                    bestCap = cap;
                    best = i;
                }
            }
            if (best != spares_.size()) {
                std::vector<EventT> s = std::move(spares_[best]);
                if (best != spares_.size() - 1)
                    spares_[best] = std::move(spares_.back());
                spares_.pop_back();
                for (EventT &old : b)
                    s.push_back(std::move(old)); // fits: cap > b's
                b.swap(s);
                donate(s); // return the outgrown block
            }
        }
        b.push_back(std::move(ev));
    }

    /** Recycle (or grow) a rung spanning [@p start, @p start + span). */
    Rung &
    spawnRung(Tick start, Tick span)
    {
        if (active_ == rungs_.size())
            rungs_.emplace_back(); // cold: only past the high-water mark
        Rung &r = rungs_[active_++];
        r.start = start;
        // Smallest power-of-two bucket width covering the span:
        // placement stays a shift, and a child rung (one parent
        // bucket, span 2^k) splits into exact width-(2^k / 64)
        // buckets with no rounding slack.
        r.widthShift = 0;
        while ((static_cast<Tick>(bucketCount) << r.widthShift) <
               span)
            ++r.widthShift;
        r.cur = 0;
        r.count = 0;
        return r;
    }

    /** Partition Top into rung 0 and advance the Top boundary. */
    void
    transferTop()
    {
        ++stats_.topTransfers;
        Rung &r = spawnRung(topMin_, topMax_ - topMin_ + 1);
        for (EventT &ev : top_) {
            appendTo(bucketOf(r, ev.when), std::move(ev));
            ++r.count;
        }
        top_.clear();
        // Everything at or past the boundary stays O(1)-insertable
        // into Top; everything earlier now has a ladder home.
        topStart_ = topMax_ + 1;
    }

    /**
     * Refill Bottom from the finest rung (spawning finer rungs off
     * oversized buckets), or from Top once the ladder is dry.  Called
     * only from front()/pop() — never reentrantly, since the engine
     * runs callbacks outside the queue's own methods.
     */
    void
    ensureBottom()
    {
        while (bottomHead_ == bottom_.size()) {
            bottom_.clear();
            bottomHead_ = 0;
            // Retire drained rungs (their buckets keep capacity for
            // the next spawn at this depth).
            while (active_ > 0 && rungs_[active_ - 1].count == 0)
                --active_;
            if (active_ == 0) {
                hsipc_assert(!top_.empty() &&
                             "ladder pop/front on an empty queue");
                transferTop();
                continue;
            }
            Rung &r = rungs_[active_ - 1];
            while (r.buckets[r.cur].empty())
                ++r.cur;
            std::vector<EventT> &b = r.buckets[r.cur];
            // A bucket only grows until the cursor reaches it, so its
            // size at consumption is its peak population — tracking
            // the stat here keeps it out of the per-push hot path.
            if (b.size() > stats_.maxBucket)
                stats_.maxBucket = b.size();
            if (b.size() > spawnThreshold && r.widthShift > 0 &&
                active_ < maxRungs) {
                // Too coarse to sort: split this bucket's span into a
                // finer child rung and consume that instead.
                ++stats_.rungSpawns;
                const Tick start = rungCurStart(r);
                r.count -= b.size();
                ++r.cur;
                // spawnRung may grow rungs_, invalidating r — but b
                // stays valid: moving a Rung moves its buckets
                // vector's heap array wholesale, never relocating the
                // bucket objects inside it.  r is not used below.
                Rung &child =
                    spawnRung(start, Tick{1} << r.widthShift);
                for (EventT &ev : b) {
                    appendTo(bucketOf(child, ev.when),
                             std::move(ev));
                    ++child.count;
                }
                donate(b);
                continue;
            }
            // (when, seq) is a strict total order, so this sort has
            // exactly one result — the binary heap's pop order.
            // Single-tick buckets skip it: every path into a bucket
            // appends in increasing seq order (direct pushes carry
            // the globally largest seq; transferTop and rung-spawn
            // redistribution preserve relative order from an array
            // that is itself seq-ordered by induction), and with one
            // when value per bucket, seq order *is* (when, seq)
            // order.  The planted-misorder drill keeps the sort so
            // the reversed tiebreak actually bites.
            if (r.widthShift > 0 || misorder_) {
                std::sort(b.begin(), b.end(),
                          [this](const EventT &x, const EventT &y) {
                              return less(x, y);
                          });
                ++stats_.bottomSorts;
                stats_.sortedEvents += b.size();
            }
            r.count -= b.size();
            ++r.cur;
            // Move out rather than swap storage: a swap would rotate
            // capacities through the bucket ring, so one small vector
            // circulates and regrows every cycle.  Moving lets Bottom
            // converge to its own high-water capacity, and the drained
            // bucket's block goes back to the spare pool.
            bottom_.insert(bottom_.end(),
                           std::make_move_iterator(b.begin()),
                           std::make_move_iterator(b.end()));
            donate(b);
        }
    }

    std::vector<EventT> bottom_; //!< sorted; [bottomHead_, end) live
    std::size_t bottomHead_ = 0;
    std::vector<Rung> rungs_; //!< high-water pool; first active_ live
    std::size_t active_ = 0;
    std::vector<EventT> top_; //!< unsorted far future (>= topStart_)
    std::vector<std::vector<EventT>> spares_; //!< recycled bucket blocks
    Tick topStart_ = 0;
    Tick topMin_ = 0;
    Tick topMax_ = 0;
    std::size_t size_ = 0;
    bool misorder_ = false; //!< test-only reversed tiebreak plant
    Stats stats_;
};

} // namespace hsipc::sim

#endif // HSIPC_SIM_LADDER_QUEUE_HH
