/**
 * @file
 * A serially-reusable resource (the shared-memory bus): one holder at
 * a time, granted by priority then FIFO, held for a fixed duration.
 */

#ifndef HSIPC_SIM_RESOURCE_HH
#define HSIPC_SIM_RESOURCE_HH

#include <algorithm>
#include <deque>
#include <string>

#include "common/trace/critical_path.hh"
#include "common/trace/tracer.hh"
#include "sim/des/event_queue.hh"

namespace hsipc::sim
{

/** A single-server resource with prioritized FIFO queueing. */
class Resource
{
  public:
    Resource(EventQueue &eq, std::string name)
        : eq(eq), name(std::move(name))
    {}

    /**
     * Record this resource's holds (and queue depth) as a track in
     * @p t.  Purely observational: tracing never alters grant order
     * or timing.
     */
    void
    attachTracer(trace::Tracer *t)
    {
        tracer = t;
        traceTrack = t ? t->track(name) : -1;
    }

    /**
     * Report per-message queue/service intervals into @p log: a
     * request carrying a msgId contributes its wait-for-grant time as
     * Queue and its hold as Service on this resource's name.
     * Observational only.
     */
    void attachCausalLog(trace::CausalLog *log) { causal = log; }

    /**
     * Attribute release events to this resource in @p p's wall-clock
     * cost model and record a provenance edge (whoever is granting →
     * this resource, delta = the hold) per grant.  Observational only.
     */
    void
    attachProfiler(obs::EngineProfiler *p)
    {
        prof = p;
        profOrigin = p ? p->origin(name) : 0;
    }

    /**
     * Acquire the resource for @p hold ticks; @p done runs at release
     * time.  Higher @p priority requests are granted first; equal
     * priorities are FIFO.  @p msgId (0 = none) attributes the wait
     * and the hold to a message's critical path.
     */
    void
    acquire(int priority, Tick hold, EventQueue::Callback done,
            long msgId = 0)
    {
        waiting.push_back(
            Request{priority, hold, msgId, eq.now(), std::move(done)});
        if (tracer && tracer->enabled())
            tracer->counter(traceTrack, "queued", eq.now(),
                            static_cast<double>(waiting.size()));
        if (!busy)
            grantNext();
    }

    /** Fraction of time the resource has been held. */
    double
    utilization() const
    {
        const Tick span = eq.now();
        return span > 0
            ? static_cast<double>(busyTime()) /
                  static_cast<double>(span)
            : 0.0;
    }

    /**
     * Total ticks the resource has been held up to the present.  A
     * hold is booked in full when granted, so the portion of the
     * current hold that lies in the future is excluded (see
     * Processor::busyTime()).
     */
    Tick
    busyTime() const
    {
        return busyTicks - std::max<Tick>(0, heldUntil - eq.now());
    }

    std::size_t queueLength() const { return waiting.size(); }
    const std::string &resourceName() const { return name; }

  private:
    struct Request
    {
        int priority;
        Tick hold;
        long msgId;      //!< message whose path this access is on
        Tick enqueuedAt; //!< when the request joined the queue
        EventQueue::Callback done;
    };

    void
    grantNext()
    {
        if (waiting.empty())
            return;
        // Highest priority first; FIFO within a priority.
        std::size_t best = 0;
        for (std::size_t i = 1; i < waiting.size(); ++i) {
            if (waiting[i].priority > waiting[best].priority)
                best = i;
        }
        Request req = std::move(waiting[best]);
        waiting.erase(waiting.begin() + static_cast<long>(best));

        busy = true;
        busyTicks += req.hold;
        heldUntil = eq.now() + req.hold;
        if (tracer && tracer->enabled()) {
            tracer->complete(traceTrack, "access", eq.now(), req.hold,
                             "bus", req.msgId);
            tracer->counter(traceTrack, "queued", eq.now(),
                            static_cast<double>(waiting.size()));
        }
        if (causal && causal->enabled() && req.msgId != 0) {
            causal->interval(req.msgId, name, trace::Component::Queue,
                             req.enqueuedAt, eq.now());
            causal->interval(req.msgId, name,
                             trace::Component::Service, eq.now(),
                             eq.now() + req.hold);
        }
        if (prof)
            prof->edge(profOrigin, req.hold);
        eq.scheduleAfter(req.hold,
                         [this, done = std::move(req.done)]() {
                             obs::EngineProfiler::Scope s(prof,
                                                          profOrigin);
                             busy = false;
                             done();
                             if (!busy)
                                 grantNext();
                         });
    }

    EventQueue &eq;
    std::string name;
    trace::Tracer *tracer = nullptr;
    trace::CausalLog *causal = nullptr;
    obs::EngineProfiler *prof = nullptr;
    int profOrigin = 0;
    int traceTrack = -1;
    std::deque<Request> waiting;
    bool busy = false;
    Tick busyTicks = 0;
    Tick heldUntil = 0; //!< end of the latest granted hold
};

} // namespace hsipc::sim

#endif // HSIPC_SIM_RESOURCE_HH
