/**
 * @file
 * Bottleneck identification: which resource caps throughput, answered
 * two independent ways and cross-checked.
 *
 * The trace side folds a critical-path decomposition's per-resource
 * shares into coarse resource classes (host CPU, message coprocessor,
 * bus, DMA engine, network) and names the class carrying the largest
 * share.  The model side asks the exact GTPN analysis of the same
 * workload which processor saturates — utilization of a processor is
 * the summed firing rate of the delay-1 exit/loop transition pairs of
 * its stages (each in-flight firing occupies the processor for one
 * model time unit).  Agreement between the two is the validation
 * story of §6.5 restated at the level of *causes*: the simulator's
 * measured critical path and the thesis' analytic model must blame
 * the same component.
 */

#ifndef HSIPC_SIM_ANALYSIS_BOTTLENECK_HH
#define HSIPC_SIM_ANALYSIS_BOTTLENECK_HH

#include <cstddef>
#include <map>
#include <string>

#include "common/trace/critical_path.hh"
#include "core/models/processing_times.hh"

namespace hsipc::sim::analysis
{

/** Coarse classes the fine-grained resource names fold into. */
enum class ResourceClass
{
    Host,    //!< a host CPU ("nX.hostY")
    Mp,      //!< the message coprocessor ("nX.mp")
    Bus,     //!< a shared-memory bus partition ("nX.busTcb"/"nX.busKb")
    Dma,     //!< a network DMA engine ("nX.nicIn"/"nX.nicOut")
    Network, //!< the medium ("net")
    Other,   //!< anything else (e.g. the service queue "nX.svc")
};

/** Stable lower-case name of a class (for tables and JSON). */
const char *resourceClassName(ResourceClass c);

/** Fold a track-style resource name into its class. */
ResourceClass classifyResource(const std::string &name);

/**
 * Mean critical-path microseconds per message charged to each class
 * (service plus queueing; the medium's transit counts as network
 * service).  Sums to the decomposition's service + queue + network
 * means.
 */
std::map<ResourceClass, double>
classShares(const trace::Decomposition &d);

/** The class carrying the largest critical-path share. */
ResourceClass traceBottleneck(const trace::Decomposition &d);

/** What the exact GTPN analysis says saturates first. */
struct GtpnSaturation
{
    ResourceClass bottleneck = ResourceClass::Host;
    double hostUtil = 0;      //!< host-processor utilization, 0..1
    double mpUtil = 0;        //!< MP utilization (0 under Arch I)
    std::size_t states = 0;   //!< reachability-graph size analyzed
};

/**
 * Exact analysis of the local-conversation GTPN model (Figs 6.9 and
 * 6.12) for @p arch with @p conversations client/server pairs and
 * mean server computation @p computeUs, reporting which processor
 * saturates.  The local models contain no explicit bus or DMA
 * resource, so the answer is Host or Mp.
 */
GtpnSaturation gtpnSaturation(models::Arch arch, int conversations,
                              double computeUs);

} // namespace hsipc::sim::analysis

#endif // HSIPC_SIM_ANALYSIS_BOTTLENECK_HH
