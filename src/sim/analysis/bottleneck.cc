#include "sim/analysis/bottleneck.hh"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/logging.hh"
#include "core/gtpn/analyzer.hh"
#include "core/models/local_model.hh"

namespace hsipc::sim::analysis
{

const char *
resourceClassName(ResourceClass c)
{
    switch (c) {
      case ResourceClass::Host:
        return "host";
      case ResourceClass::Mp:
        return "mp";
      case ResourceClass::Bus:
        return "bus";
      case ResourceClass::Dma:
        return "dma";
      case ResourceClass::Network:
        return "network";
      case ResourceClass::Other:
        return "other";
    }
    return "?";
}

ResourceClass
classifyResource(const std::string &name)
{
    // Track names are "<node>.<resource>" ("n0.host1", "n1.busKb",
    // "n0.nicIn") except the node-less medium, "net".
    if (name.find(".host") != std::string::npos)
        return ResourceClass::Host;
    if (name.find(".mp") != std::string::npos)
        return ResourceClass::Mp;
    if (name.find(".bus") != std::string::npos)
        return ResourceClass::Bus;
    if (name.find(".nic") != std::string::npos)
        return ResourceClass::Dma;
    if (name == "net" || name.find("net.") == 0)
        return ResourceClass::Network;
    return ResourceClass::Other;
}

std::map<ResourceClass, double>
classShares(const trace::Decomposition &d)
{
    std::map<ResourceClass, double> shares;
    for (const auto &[name, us] : d.serviceUsByResource)
        shares[classifyResource(name)] += us;
    for (const auto &[name, us] : d.queueUsByResource)
        shares[classifyResource(name)] += us;
    return shares;
}

ResourceClass
traceBottleneck(const trace::Decomposition &d)
{
    ResourceClass best = ResourceClass::Other;
    double best_us = -1;
    for (const auto &[cls, us] : classShares(d)) {
        if (us > best_us) {
            best = cls;
            best_us = us;
        }
    }
    return best;
}

namespace
{

/** Smallest stage mean of the local model (mirrors solution.cc). */
double
localMinMean(const models::LocalParams &p, double x)
{
    if (p.arch == models::Arch::I)
        return std::min({p.uniSend, p.uniRecv, p.uniMatchReply + x});
    return std::min({p.sendSyscall, p.recvSyscall, p.mpSend, p.mpRecv,
                     p.mpMatch, p.hostReplyBase + x, p.mpReply});
}

/**
 * Time-averaged in-flight firings of one geometric stage — its
 * exit/loop pair are both delay-1, so occupancy is their summed
 * firing rate times one unit.
 */
double
stageOccupancy(const gtpn::PetriNet &net,
               const gtpn::AnalyzerResult &r, const std::string &stage)
{
    const auto exit_rate = static_cast<std::size_t>(
        net.findTransition(stage + ".exit"));
    const auto loop_rate = static_cast<std::size_t>(
        net.findTransition(stage + ".loop"));
    return r.firingRate[exit_rate] + r.firingRate[loop_rate];
}

} // namespace

GtpnSaturation
gtpnSaturation(models::Arch arch, int conversations, double computeUs)
{
    const models::LocalParams p = models::localParams(arch);
    // Same granularity choice as solveLocal: keep >= 20 model time
    // units in the smallest stage mean.
    const double scale =
        std::max(1.0, std::floor(localMinMean(p, computeUs) / 20.0));
    const models::LocalModel m =
        models::buildLocalModel(p, conversations, computeUs, scale);
    const gtpn::AnalyzerResult r = gtpn::analyze(m.net);
    hsipc_assert(!r.deadlock);
    hsipc_assert(r.converged);

    std::vector<std::string> host_stages;
    std::vector<std::string> mp_stages;
    if (arch == models::Arch::I) {
        host_stages = {"send", "recv", "matchReply"};
    } else {
        host_stages = {"sendSyscall", "recvSyscall", "hostReply"};
        mp_stages = {"mpSend", "mpRecv", "mpMatch", "mpReply"};
    }

    GtpnSaturation out;
    out.states = r.numStates;
    for (const std::string &s : host_stages)
        out.hostUtil += stageOccupancy(m.net, r, s);
    for (const std::string &s : mp_stages)
        out.mpUtil += stageOccupancy(m.net, r, s);
    out.bottleneck = out.mpUtil > out.hostUtil ? ResourceClass::Mp
                                               : ResourceClass::Host;
    return out;
}

} // namespace hsipc::sim::analysis
