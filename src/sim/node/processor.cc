#include "sim/node/processor.hh"

#include <memory>

namespace hsipc::sim
{

void
Processor::charge(Tick t, bool accessWait)
{
    busyTicks += t;
    chargedUntil = eq.now() + t;
    hsipc_assert(running);
    perActivity[running->act.name] += t;
    const long msg = running->act.msgId;
    if (tracer && tracer->enabled() && t > 0) {
        // The first charge of a message-serving activity is where its
        // flow arrow lands: inside the span recorded just below.
        if (msg != 0 && !running->flowed) {
            running->flowed = true;
            tracer->flowStep(traceTrack, "msg", eq.now(), msg);
        }
        tracer->complete(traceTrack, running->act.name, eq.now(), t,
                         "activity", msg);
    }
    // Access-wait charges stay off the causal log: the bus records
    // that microsecond as the message's service itself.
    if (causal && causal->enabled() && msg != 0 && !accessWait)
        causal->interval(msg, name, trace::Component::Service,
                         eq.now(), eq.now() + t);
}

void
Processor::submit(Activity act)
{
    ++perActivityCount[act.name];
    Running r;
    r.cpuLeft = act.processing;
    r.memLeft = act.bus ? act.memAccesses : 0;
    r.memLeft2 = act.bus2 ? act.memAccesses2 : 0;
    // Accesses without a bus still cost their cycle time, serially on
    // this processor.
    if (!act.bus)
        r.cpuLeft += static_cast<Tick>(act.memAccesses) * tickUs;
    if (!act.bus2)
        r.cpuLeft += static_cast<Tick>(act.memAccesses2) * tickUs;
    const int segments = r.memLeft + r.memLeft2 + 1;
    r.chunk = r.cpuLeft / segments;
    r.act = std::move(act);

    // Preempt at the next chunk boundary if this is more urgent; the
    // queue keeps FCFS order within each priority.
    queue.push_back(std::move(r));
    std::stable_sort(queue.begin(), queue.end(),
                     [](const Running &a, const Running &b) {
                         return a.act.priority > b.act.priority;
                     });
    maybeStart();
}

void
Processor::maybeStart()
{
    if (running || queue.empty())
        return;
    running = std::make_unique<Running>(std::move(queue.front()));
    queue.pop_front();
    segment();
}

void
Processor::segment()
{
    hsipc_assert(running);

    // Check for preemption by a higher-priority pending activity.
    if (!queue.empty() &&
        queue.front().act.priority > running->act.priority) {
        Running paused = std::move(*running);
        running.reset();
        // Re-insert after the urgent work but ahead of its own class.
        std::size_t pos = 0;
        while (pos < queue.size() &&
               queue[pos].act.priority > paused.act.priority)
            ++pos;
        queue.insert(queue.begin() + static_cast<long>(pos),
                     std::move(paused));
        maybeStart();
        return;
    }

    // Interleave: while accesses remain, run one CPU chunk then one
    // memory access; the final chunk absorbs the rounding remainder.
    if (running->memLeft + running->memLeft2 > 0) {
        const Tick chunk = std::min(running->chunk, running->cpuLeft);
        running->cpuLeft -= chunk;
        charge(chunk);
        if (prof)
            prof->edge(profOrigin, chunk);
        eq.scheduleAfter(chunk, [this]() {
            obs::EngineProfiler::Scope s(prof, profOrigin);
            // Alternate between the two partitions when both remain.
            Resource *bus;
            if (running->memLeft > 0 &&
                (running->memLeft >= running->memLeft2 ||
                 running->memLeft2 == 0)) {
                bus = running->act.bus;
                --running->memLeft;
            } else {
                bus = running->act.bus2;
                --running->memLeft2;
            }
            charge(tickUs, true); // the processor waits on its access
            bus->acquire(running->act.priority, tickUs,
                         [this]() {
                             obs::EngineProfiler::Scope s(prof,
                                                          profOrigin);
                             segment();
                         },
                         running->act.msgId);
        });
        return;
    }

    const Tick tail = running->cpuLeft;
    running->cpuLeft = 0;
    charge(tail);
    if (prof)
        prof->edge(profOrigin, tail);
    eq.scheduleAfter(tail, [this]() {
        obs::EngineProfiler::Scope s(prof, profOrigin);
        finish();
    });
}

void
Processor::finish()
{
    hsipc_assert(running);
    const EventQueue::Callback done = std::move(running->act.onDone);
    running.reset();
    maybeStart();
    if (done)
        done();
}

} // namespace hsipc::sim
