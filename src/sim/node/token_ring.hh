/**
 * @file
 * A token-passing ring network model (the 4 Mb/s IBM-style token ring
 * interconnecting the 925 nodes, §3.1/§4.3).
 *
 * One token circulates; a station may transmit only while holding it.
 * A packet's latency is therefore the wait for the token to rotate to
 * the source, plus serialization at the ring rate, plus propagation
 * around to the destination.  The model serializes the medium exactly
 * (one transmission at a time) without simulating individual bits.
 */

#ifndef HSIPC_SIM_TOKEN_RING_HH
#define HSIPC_SIM_TOKEN_RING_HH

#include <algorithm>
#include <deque>
#include <utility>

#include "sim/des/event_queue.hh"

namespace hsipc::sim
{

/** The shared ring medium. */
class TokenRing
{
  public:
    struct Config
    {
        int stations = 2;
        double megabitsPerSec = 4.0; //!< ring data rate
        Tick hopDelay = 2 * tickUs;  //!< per-station latency (repeater)
    };

    TokenRing(EventQueue &eq, Config cfg) : eq(eq), config(cfg)
    {
        hsipc_assert(cfg.stations >= 2);
        hsipc_assert(cfg.megabitsPerSec > 0);
    }

    /** Serialization time for @p bytes at the ring rate. */
    Tick
    transmitTime(int bytes) const
    {
        const double us =
            static_cast<double>(bytes) * 8.0 / config.megabitsPerSec;
        return usToTicks(us);
    }

    /** Hops from @p from to @p to in ring direction. */
    int
    hops(int from, int to) const
    {
        return (to - from + config.stations) % config.stations;
    }

    /**
     * Send @p bytes from @p src to @p dst; @p onDelivered fires when
     * the packet has fully arrived.  When @p batch is non-null the
     * delivery is staged into it instead of scheduled directly, so a
     * caller fanning out several rotations (the reliable channel's
     * duplicated copies) commits them in one queue operation; the
     * token/booking state still advances immediately.
     */
    void
    send(int src, int dst, int bytes, EventQueue::Callback onDelivered,
         EventQueue::Batch *batch = nullptr)
    {
        hsipc_assert(src >= 0 && src < config.stations);
        hsipc_assert(dst >= 0 && dst < config.stations && dst != src);

        // The token reaches the source once the medium is free and the
        // token has rotated from wherever it was left.
        const Tick free_at = std::max(eq.now(), tokenFreeAt);
        const Tick rotation =
            static_cast<Tick>(hops(tokenAt, src)) * config.hopDelay;
        const Tick grant = free_at + rotation;
        const Tick tx = transmitTime(bytes);
        const Tick propagation =
            static_cast<Tick>(hops(src, dst)) * config.hopDelay;

        busyTicks += tx;
        // The whole transmission is booked now even though it happens
        // at [grant, grant+tx); remember the future part so
        // utilization() can exclude what has not elapsed yet.
        while (!booked.empty() && booked.front().second <= eq.now())
            booked.pop_front();
        booked.emplace_back(grant, grant + tx);
        tokenFreeAt = grant + tx;
        tokenAt = src;
        ++packets;
        waitAcc += static_cast<double>(grant - eq.now());

        if (batch)
            batch->schedule(grant + tx + propagation,
                            std::move(onDelivered));
        else
            eq.schedule(grant + tx + propagation,
                        std::move(onDelivered));
    }

    /** Fraction of elapsed time the medium carried data. */
    double
    utilization() const
    {
        const Tick span = eq.now();
        if (span <= 0)
            return 0.0;
        // Exclude the parts of booked transmissions that have not
        // elapsed yet (a backed-up ring books several in advance).
        Tick future = 0;
        for (const auto &[begin, end] : booked) {
            if (end > span)
                future += end - std::max(begin, span);
        }
        return static_cast<double>(busyTicks - future) /
               static_cast<double>(span);
    }

    /** Mean wait for the token across packets, microseconds. */
    double
    meanTokenWaitUs() const
    {
        return packets > 0
            ? ticksToUs(static_cast<Tick>(waitAcc /
                                          static_cast<double>(packets)))
            : 0.0;
    }

    long packetCount() const { return packets; }

  private:
    EventQueue &eq;
    Config config;
    int tokenAt = 0;
    Tick tokenFreeAt = 0;
    Tick busyTicks = 0;
    std::deque<std::pair<Tick, Tick>> booked; //!< in-flight tx spans
    long packets = 0;
    double waitAcc = 0;
};

} // namespace hsipc::sim

#endif // HSIPC_SIM_TOKEN_RING_HH
