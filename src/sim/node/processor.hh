/**
 * @file
 * A simulated processor executing kernel activities.
 *
 * An activity is processing time interleaved with shared-memory
 * accesses: the processing is cut into (accesses + 1) equal CPU chunks
 * with one 1-microsecond bus access between consecutive chunks, which
 * reproduces the access pattern the thesis' low-level contention model
 * assumes (§6.6.2).  Higher-priority activities (network interrupts)
 * preempt the current one at chunk boundaries — "typically on single
 * machine instruction boundaries" (§6.6.1) — and the preempted
 * activity resumes where it left off.
 */

#ifndef HSIPC_SIM_PROCESSOR_HH
#define HSIPC_SIM_PROCESSOR_HH

#include <algorithm>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/trace/critical_path.hh"
#include "common/trace/tracer.hh"
#include "sim/des/event_queue.hh"
#include "sim/des/resource.hh"

namespace hsipc::sim
{

/** Activity priorities. */
enum : int
{
    prioTask = 0,      //!< normal kernel/task processing
    prioInterrupt = 1, //!< network interrupt service
};

/** One schedulable kernel activity. */
struct Activity
{
    std::string name;
    Tick processing = 0;      //!< CPU time, ticks
    int memAccesses = 0;      //!< 1-us accesses on @c bus
    Resource *bus = nullptr;  //!< primary shared-memory partition
    int memAccesses2 = 0;     //!< accesses on @c bus2 (architecture IV)
    Resource *bus2 = nullptr;
    int priority = prioTask;
    //! Lifetime id of the message this activity serves (0 = none):
    //! tags trace spans, chains flow arrows, and attributes the
    //! activity's time to that message's critical path.
    long msgId = 0;
    EventQueue::Callback onDone;
};

/** A processor running activities with priority preemption. */
class Processor
{
  public:
    Processor(EventQueue &eq, std::string name)
        : eq(eq), name(std::move(name))
    {}

    /** Queue an activity (FCFS within its priority). */
    void submit(Activity act);

    /**
     * Record this processor's busy time as a track in @p t: one span
     * per charged CPU chunk or memory-access wait, labelled with the
     * activity name (the tracer merges abutting same-name spans, so
     * uncontended activities appear as single spans).  Observational
     * only — tracing never changes scheduling.
     */
    void
    attachTracer(trace::Tracer *t)
    {
        tracer = t;
        traceTrack = t ? t->track(name) : -1;
    }

    /**
     * Report per-message service intervals into @p log: every CPU
     * chunk charged for an activity with a msgId becomes a Service
     * interval on this processor's name.  (The 1-us charge a
     * processor takes while waiting on a bus access is *not*
     * reported — the bus attributes that microsecond itself, so the
     * message's timeline has no double-covered instant.)
     * Observational only.
     */
    void attachCausalLog(trace::CausalLog *log) { causal = log; }

    /**
     * Attribute this processor's segment/finish events to it in
     * @p p's wall-clock cost model, and record provenance edges for
     * its self-continuations (CPU chunks, the activity tail).
     * Observational only.
     */
    void
    attachProfiler(obs::EngineProfiler *p)
    {
        prof = p;
        profOrigin = p ? p->origin(name) : 0;
    }

    /** Trace track id, -1 when no tracer is attached. */
    int traceTrackId() const { return traceTrack; }

    double
    utilization() const
    {
        const Tick span = eq.now();
        return span > 0
            ? static_cast<double>(busyTime()) /
                  static_cast<double>(span)
            : 0.0;
    }

    /** Busy ticks accumulated per activity name (CPU + memory). */
    const std::map<std::string, Tick> &
    activityTicks() const
    {
        return perActivity;
    }

    /** Number of activities submitted per name. */
    const std::map<std::string, long> &
    activityCounts() const
    {
        return perActivityCount;
    }

    const std::string &processorName() const { return name; }
    bool idle() const { return !running && queue.empty(); }

    /**
     * Total ticks this processor has been busy (CPU + memory) up to
     * the present.  Charges are booked when a chunk *starts*, so the
     * part of the current chunk that lies in the future is excluded —
     * otherwise a chunk in flight at a measurement boundary would be
     * double-attributed and utilization could exceed 1.
     */
    Tick
    busyTime() const
    {
        return busyTicks - std::max<Tick>(0, chargedUntil - eq.now());
    }

  private:
    /** Execution state of an in-progress activity. */
    struct Running
    {
        Activity act;
        Tick cpuLeft = 0;
        int memLeft = 0;  //!< remaining accesses on bus
        int memLeft2 = 0; //!< remaining accesses on bus2
        Tick chunk = 0;   //!< CPU per segment
        bool flowed = false; //!< flow step already emitted
    };

    void maybeStart();
    void segment();
    void finish();

    EventQueue &eq;
    std::string name;
    trace::Tracer *tracer = nullptr;
    trace::CausalLog *causal = nullptr;
    obs::EngineProfiler *prof = nullptr;
    int profOrigin = 0;
    int traceTrack = -1;
    void charge(Tick t, bool accessWait = false);

    std::deque<Running> queue;
    std::unique_ptr<Running> running;
    Tick busyTicks = 0;
    Tick chargedUntil = 0; //!< end of the latest booked charge
    std::map<std::string, Tick> perActivity;
    std::map<std::string, long> perActivityCount;
};

} // namespace hsipc::sim

#endif // HSIPC_SIM_PROCESSOR_HH
