#include "sim/node/costs.hh"

#include <cmath>
#include <cstring>

#include "common/logging.hh"

namespace hsipc::sim
{

using models::Arch;
using models::Step;
using models::stepTable;

namespace
{

ActCost
fromStep(const Step &s)
{
    ActCost c;
    c.procUs = s.processing;
    // For architectures I-III the single shared-memory column is
    // stored in tcbAccess; architecture IV splits the two partitions.
    c.kb = static_cast<int>(std::lround(s.kbAccess));
    c.tcb = static_cast<int>(std::lround(s.tcbAccess));
    return c;
}

/** Find the unique step with the given action number and processor. */
ActCost
step(Arch a, bool local, const char *number,
     const char *processor = nullptr)
{
    const Step *found = nullptr;
    for (const Step &s : stepTable(a, local)) {
        if (std::strcmp(s.number, number) != 0)
            continue;
        if (processor && std::strcmp(s.processor, processor) != 0)
            continue;
        hsipc_assert(!found);
        found = &s;
    }
    hsipc_assert(found);
    return fromStep(*found);
}

} // namespace

IpcCosts
ipcCosts(Arch arch, bool local)
{
    IpcCosts c;
    c.arch = arch;
    c.local = local;
    c.coproc = arch != Arch::I;

    if (arch == Arch::I && local) {
        // Table 6.4.
        c.sendSyscall = step(arch, local, "1");
        c.recvSyscall = step(arch, local, "2");
        c.match = step(arch, local, "3");
        c.reply = step(arch, local, "5");
        c.restartServer2 = step(arch, local, "6");
        c.restartClient = step(arch, local, "7");
        return c;
    }
    if (arch == Arch::I) {
        // Table 6.6: all communication processing on the host; the
        // interrupt-level cleanup includes the client restart.
        c.sendSyscall = step(arch, local, "1");
        c.dmaOutReq = step(arch, local, "2");
        c.recvSyscall = step(arch, local, "3");
        c.dmaInReq = step(arch, local, "4");
        c.match = step(arch, local, "4a");
        c.reply = step(arch, local, "4c");
        c.dmaOutReply = step(arch, local, "5");
        c.dmaInReply = step(arch, local, "6");
        c.cleanupClient = step(arch, local, "7");
        return c;
    }

    if (local) {
        // Tables 6.9 / 6.14 / 6.19.
        c.sendSyscall = step(arch, local, "1");
        c.processSend = step(arch, local, "2");
        c.recvSyscall = step(arch, local, "3");
        c.processRecv = step(arch, local, "4");
        c.match = step(arch, local, "5");
        c.restartServer = step(arch, local, "6");
        c.reply = step(arch, local, "6b");
        c.processReply = step(arch, local, "7");
        c.restartServer2 = step(arch, local, "8");
        c.restartClient = step(arch, local, "9");
        return c;
    }

    // Tables 6.11 / 6.16 / 6.21.
    c.sendSyscall = step(arch, local, "1");
    c.processSend = step(arch, local, "2");
    c.dmaOutReq = step(arch, local, "2a");
    c.recvSyscall = step(arch, local, "3");
    c.processRecv = step(arch, local, "4");
    c.dmaInReq = step(arch, local, "5", "DMA");
    c.match = step(arch, local, "5", "MP");
    c.restartServer = step(arch, local, "6");
    c.reply = step(arch, local, "6b");
    c.processReply = step(arch, local, "7");
    c.dmaOutReply = step(arch, local, "7a");
    c.restartServer2 = step(arch, local, "8");
    c.dmaInReply = step(arch, local, "9", "DMA");
    c.cleanupClient = step(arch, local, "9a");
    c.restartClient = step(arch, local, "10");
    return c;
}

} // namespace hsipc::sim
