/**
 * @file
 * Per-architecture activity costs for the kernel simulator, derived
 * from the chapter-6 step tables (contention-free "best" components:
 * the simulator models bus contention explicitly, so it consumes the
 * raw processing time and shared-memory access counts).
 */

#ifndef HSIPC_SIM_COSTS_HH
#define HSIPC_SIM_COSTS_HH

#include "core/models/processing_times.hh"

namespace hsipc::sim
{

/** Cost of one kernel activity: CPU time plus memory-access counts. */
struct ActCost
{
    double procUs = 0; //!< processor time, microseconds
    int kb = 0;        //!< kernel-buffer partition accesses (1 us each)
    int tcb = 0;       //!< task-control-block partition accesses

    bool valid() const { return procUs > 0 || kb > 0 || tcb > 0; }
};

/** The activity costs of one architecture and conversation kind. */
struct IpcCosts
{
    models::Arch arch;
    bool local = true;
    bool coproc = false; //!< architectures II-IV have a MP

    ActCost sendSyscall;
    ActCost processSend;  //!< coproc only
    ActCost recvSyscall;
    ActCost processRecv;  //!< coproc only
    ActCost match;
    ActCost restartServer;
    ActCost reply;
    ActCost processReply; //!< coproc only
    ActCost restartServer2;
    ActCost restartClient;
    // Non-local only:
    ActCost dmaOutReq;
    ActCost dmaInReq;
    ActCost dmaOutReply;
    ActCost dmaInReply;
    ActCost cleanupClient; //!< arch I: includes the client restart
};

/** Build the cost set for @p arch / @p local from the step tables. */
IpcCosts ipcCosts(models::Arch arch, bool local);

} // namespace hsipc::sim

#endif // HSIPC_SIM_COSTS_HH
