#include "sim/check/shrink.hh"

#include <cmath>

#include "sim/check/generator.hh"

namespace hsipc::sim::check
{

namespace
{

struct DoubleKnob
{
    const char *name;
    double Experiment::*field;
};

struct IntKnob
{
    const char *name;
    int Experiment::*field;
};

struct BoolKnob
{
    const char *name;
    bool Experiment::*field;
};

// Fixed shrink order: workload shape first (resetting `local` or the
// mixed counts usually removes the most machinery), then timing,
// then the fault stack.
constexpr BoolKnob boolKnobs[] = {
    {"local", &Experiment::local},
    {"extraCopy", &Experiment::extraCopy},
    {"useTokenRing", &Experiment::useTokenRing},
    {"reliableProtocol", &Experiment::reliableProtocol},
    {"decomposeLatency", &Experiment::decomposeLatency},
    {"engineProfile", &Experiment::engineProfile},
};

constexpr IntKnob intKnobs[] = {
    {"conversations", &Experiment::conversations},
    {"mixedLocal", &Experiment::mixedLocal},
    {"mixedRemote", &Experiment::mixedRemote},
    {"hostsPerNode", &Experiment::hostsPerNode},
    {"kernelBuffers", &Experiment::kernelBuffers},
    {"packetBytes", &Experiment::packetBytes},
    {"retransmitWindow", &Experiment::retransmitWindow},
    // Robustness layer: resetting arrivalMode first collapses an open
    // workload back to the closed loop; the rest then usually reset.
    {"arrivalMode", &Experiment::arrivalMode},
    {"retryBudget", &Experiment::retryBudget},
    {"svcQueueCap", &Experiment::svcQueueCap},
    {"shedPolicy", &Experiment::shedPolicy},
    // Engine knobs last: a queue-kind divergence usually keeps
    // failing with either policy selected (the differential re-run
    // tries both), so these generally reset to defaults.
    {"queueKind", &Experiment::queueKind},
    {"expectedPendingEvents", &Experiment::expectedPendingEvents},
};

constexpr DoubleKnob doubleKnobs[] = {
    {"computeUs", &Experiment::computeUs},
    {"mpSpeedFactor", &Experiment::mpSpeedFactor},
    {"wireUs", &Experiment::wireUs},
    {"ringMbps", &Experiment::ringMbps},
    {"warmupUs", &Experiment::warmupUs},
    {"measureUs", &Experiment::measureUs},
    {"lossRate", &Experiment::lossRate},
    {"corruptRate", &Experiment::corruptRate},
    {"duplicateRate", &Experiment::duplicateRate},
    {"reorderRate", &Experiment::reorderRate},
    {"reorderDelayUs", &Experiment::reorderDelayUs},
    {"retransmitTimeoutUs", &Experiment::retransmitTimeoutUs},
    {"arrivalRatePerSec", &Experiment::arrivalRatePerSec},
    {"paretoAlpha", &Experiment::paretoAlpha},
    {"paretoBound", &Experiment::paretoBound},
    {"deadlineUs", &Experiment::deadlineUs},
    {"retryBackoffUs", &Experiment::retryBackoffUs},
    {"retryBackoffMaxUs", &Experiment::retryBackoffMaxUs},
    {"rtoMaxUs", &Experiment::rtoMaxUs},
    // Time-resolved observability: resetting either knob turns the
    // timeline or trace sampling off entirely.
    {"timelineIntervalUs", &Experiment::timelineIntervalUs},
    {"traceSampleRate", &Experiment::traceSampleRate},
};

// Topology knobs are nested under Experiment::topo, so they get their
// own member-pointer tables.  `nodes` is handled separately in the
// shrink loop: its bisection floors at 2 (a 1-node topology is
// invalid) while the reset target is 0 (topology off).
struct TopoIntKnob
{
    const char *name;
    int topo::Topology::*field;
};

struct TopoDoubleKnob
{
    const char *name;
    double topo::Topology::*field;
};

constexpr TopoIntKnob topoIntKnobs[] = {
    {"topo.kind", &topo::Topology::kind},
    {"topo.segments", &topo::Topology::segments},
    {"topo.placement", &topo::Topology::placement},
};

constexpr TopoDoubleKnob topoDoubleKnobs[] = {
    {"topo.linkLatencyUs", &topo::Topology::linkLatencyUs},
    {"topo.linkMbps", &topo::Topology::linkMbps},
    {"topo.switchLatencyUs", &topo::Topology::switchLatencyUs},
    {"topo.segMbps", &topo::Topology::segMbps},
    {"topo.zipfSkew", &topo::Topology::zipfSkew},
};

} // namespace

std::vector<std::string>
knobDiff(const Experiment &exp)
{
    const Experiment base = baseExperiment();
    std::vector<std::string> diff;
    if (exp.arch != base.arch)
        diff.push_back("arch");
    for (const BoolKnob &k : boolKnobs)
        if (exp.*k.field != base.*k.field)
            diff.push_back(k.name);
    for (const IntKnob &k : intKnobs)
        if (exp.*k.field != base.*k.field)
            diff.push_back(k.name);
    for (const DoubleKnob &k : doubleKnobs)
        if (exp.*k.field != base.*k.field)
            diff.push_back(k.name);
    if (exp.topo.nodes != base.topo.nodes)
        diff.push_back("topo.nodes");
    for (const TopoIntKnob &k : topoIntKnobs)
        if (exp.topo.*k.field != base.topo.*k.field)
            diff.push_back(k.name);
    for (const TopoDoubleKnob &k : topoDoubleKnobs)
        if (exp.topo.*k.field != base.topo.*k.field)
            diff.push_back(k.name);
    if (exp.topo.links != base.topo.links)
        diff.push_back("topo.links");
    if (exp.seed != base.seed)
        diff.push_back("seed");
    if (exp.crashSchedule != base.crashSchedule)
        diff.push_back("crashSchedule");
    if (exp.traceFile != base.traceFile)
        diff.push_back("traceFile");
    if (exp.metricsFile != base.metricsFile)
        diff.push_back("metricsFile");
    if (exp.timelineFile != base.timelineFile)
        diff.push_back("timelineFile");
    if (exp.engineProfileFile != base.engineProfileFile)
        diff.push_back("engineProfileFile");
    return diff;
}

int
knobDelta(const Experiment &exp)
{
    return static_cast<int>(knobDiff(exp).size());
}

ShrinkResult
shrinkExperiment(const Experiment &failing,
                 const FailurePredicate &stillFails, int maxRuns)
{
    const Experiment base = baseExperiment();
    Experiment cur = failing;
    int runs = 0;

    // Accept candidate iff it still fails; never exceed the budget.
    auto accept = [&](const Experiment &cand) {
        if (runs >= maxRuns || cand == cur)
            return false;
        ++runs;
        if (!stillFails(cand))
            return false;
        cur = cand;
        return true;
    };

    bool progress = true;
    while (progress && runs < maxRuns) {
        progress = false;

        // Crash windows: try dropping the whole schedule, then each
        // window individually.
        if (!cur.crashSchedule.empty()) {
            Experiment cand = cur;
            cand.crashSchedule.clear();
            if (accept(cand)) {
                progress = true;
            } else {
                for (std::size_t i = 0;
                     i < cur.crashSchedule.size();) {
                    Experiment drop = cur;
                    drop.crashSchedule.erase(
                        drop.crashSchedule.begin() +
                        static_cast<long>(i));
                    if (accept(drop))
                        progress = true; // cur shrank; retry index i
                    else
                        ++i;
                }
            }
        }

        // Topology: a whole-layer reset removes the most machinery.
        // Failing that, drop the link overrides, shrink the node
        // count toward the 2-node floor (1 is invalid; 0 is the
        // separate "off" reset), then reset/bisect each shape knob.
        if (!(cur.topo == base.topo)) {
            Experiment cand = cur;
            cand.topo = base.topo;
            progress |= accept(cand);
        }
        if (!cur.topo.links.empty()) {
            Experiment cand = cur;
            cand.topo.links.clear();
            if (accept(cand)) {
                progress = true;
            } else {
                for (std::size_t i = 0; i < cur.topo.links.size();) {
                    Experiment drop = cur;
                    drop.topo.links.erase(drop.topo.links.begin() +
                                          static_cast<long>(i));
                    if (accept(drop))
                        progress = true; // cur shrank; retry index i
                    else
                        ++i;
                }
            }
        }
        if (cur.topo.nodes != base.topo.nodes) {
            Experiment cand = cur;
            cand.topo.nodes = base.topo.nodes;
            if (accept(cand)) {
                progress = true;
            } else {
                Experiment two = cur;
                two.topo.nodes = 2;
                if (accept(two)) {
                    progress = true;
                } else {
                    long lo = 2;
                    long hi = cur.topo.nodes;
                    while (runs < maxRuns) {
                        const long mid = lo + (hi - lo) / 2;
                        if (mid == lo || mid == hi)
                            break;
                        Experiment bis = cur;
                        bis.topo.nodes = static_cast<int>(mid);
                        if (accept(bis)) {
                            hi = mid;
                            progress = true;
                        } else {
                            lo = mid;
                        }
                    }
                }
            }
        }
        for (const TopoIntKnob &k : topoIntKnobs) {
            if (cur.topo.*k.field == base.topo.*k.field)
                continue;
            Experiment cand = cur;
            cand.topo.*k.field = base.topo.*k.field;
            if (accept(cand)) {
                progress = true;
                continue;
            }
            long lo = base.topo.*k.field;
            long hi = cur.topo.*k.field;
            while (runs < maxRuns) {
                const long mid = lo + (hi - lo) / 2;
                if (mid == lo || mid == hi)
                    break;
                Experiment bis = cur;
                bis.topo.*k.field = static_cast<int>(mid);
                if (accept(bis)) {
                    hi = mid;
                    progress = true;
                } else {
                    lo = mid;
                }
            }
        }
        for (const TopoDoubleKnob &k : topoDoubleKnobs) {
            if (cur.topo.*k.field == base.topo.*k.field)
                continue;
            Experiment cand = cur;
            cand.topo.*k.field = base.topo.*k.field;
            if (accept(cand)) {
                progress = true;
                continue;
            }
            double lo = base.topo.*k.field;
            double hi = cur.topo.*k.field;
            int steps = 0;
            while (runs < maxRuns && steps++ < 16) {
                double mid = (lo + hi) / 2;
                mid = std::round(mid * 1e6) / 1e6;
                if (mid == lo || mid == hi)
                    break;
                Experiment bis = cur;
                bis.topo.*k.field = mid;
                if (accept(bis)) {
                    hi = mid;
                    progress = true;
                } else {
                    lo = mid;
                }
            }
        }

        if (cur.arch != base.arch) {
            Experiment cand = cur;
            cand.arch = base.arch;
            progress |= accept(cand);
        }
        for (const BoolKnob &k : boolKnobs) {
            if (cur.*k.field == base.*k.field)
                continue;
            Experiment cand = cur;
            cand.*k.field = base.*k.field;
            progress |= accept(cand);
        }
        if (cur.seed != base.seed) {
            Experiment cand = cur;
            cand.seed = base.seed;
            progress |= accept(cand);
        }
        if (cur.traceFile != base.traceFile) {
            Experiment cand = cur;
            cand.traceFile = base.traceFile;
            progress |= accept(cand);
        }
        if (cur.metricsFile != base.metricsFile) {
            Experiment cand = cur;
            cand.metricsFile = base.metricsFile;
            progress |= accept(cand);
        }

        for (const IntKnob &k : intKnobs) {
            if (cur.*k.field == base.*k.field)
                continue;
            Experiment cand = cur;
            cand.*k.field = base.*k.field;
            if (accept(cand)) {
                progress = true;
                continue;
            }
            // Bisect for the failing value closest to the base.
            long lo = base.*k.field; // passes (reset just failed to fail)
            long hi = cur.*k.field;  // fails
            while (runs < maxRuns) {
                const long mid = lo + (hi - lo) / 2;
                if (mid == lo || mid == hi)
                    break;
                Experiment bis = cur;
                bis.*k.field = static_cast<int>(mid);
                if (accept(bis)) {
                    hi = mid;
                    progress = true;
                } else {
                    lo = mid;
                }
            }
        }

        for (const DoubleKnob &k : doubleKnobs) {
            if (cur.*k.field == base.*k.field)
                continue;
            Experiment cand = cur;
            cand.*k.field = base.*k.field;
            if (accept(cand)) {
                progress = true;
                continue;
            }
            double lo = base.*k.field;
            double hi = cur.*k.field;
            int steps = 0;
            while (runs < maxRuns && steps++ < 16) {
                // Round the midpoint so shrunk repros stay readable.
                double mid = (lo + hi) / 2;
                mid = std::round(mid * 1e6) / 1e6;
                if (mid == lo || mid == hi)
                    break;
                Experiment bis = cur;
                bis.*k.field = mid;
                if (accept(bis)) {
                    hi = mid;
                    progress = true;
                } else {
                    lo = mid;
                }
            }
        }
    }

    ShrinkResult res;
    res.minimal = cur;
    res.knobsChanged = knobDelta(cur);
    res.runsUsed = runs;
    return res;
}

} // namespace hsipc::sim::check
