#include "sim/check/shrink.hh"

#include <cmath>

#include "sim/check/generator.hh"

namespace hsipc::sim::check
{

namespace
{

struct DoubleKnob
{
    const char *name;
    double Experiment::*field;
};

struct IntKnob
{
    const char *name;
    int Experiment::*field;
};

struct BoolKnob
{
    const char *name;
    bool Experiment::*field;
};

// Fixed shrink order: workload shape first (resetting `local` or the
// mixed counts usually removes the most machinery), then timing,
// then the fault stack.
constexpr BoolKnob boolKnobs[] = {
    {"local", &Experiment::local},
    {"extraCopy", &Experiment::extraCopy},
    {"useTokenRing", &Experiment::useTokenRing},
    {"reliableProtocol", &Experiment::reliableProtocol},
    {"decomposeLatency", &Experiment::decomposeLatency},
    {"engineProfile", &Experiment::engineProfile},
};

constexpr IntKnob intKnobs[] = {
    {"conversations", &Experiment::conversations},
    {"mixedLocal", &Experiment::mixedLocal},
    {"mixedRemote", &Experiment::mixedRemote},
    {"hostsPerNode", &Experiment::hostsPerNode},
    {"kernelBuffers", &Experiment::kernelBuffers},
    {"packetBytes", &Experiment::packetBytes},
    {"retransmitWindow", &Experiment::retransmitWindow},
    // Robustness layer: resetting arrivalMode first collapses an open
    // workload back to the closed loop; the rest then usually reset.
    {"arrivalMode", &Experiment::arrivalMode},
    {"retryBudget", &Experiment::retryBudget},
    {"svcQueueCap", &Experiment::svcQueueCap},
    {"shedPolicy", &Experiment::shedPolicy},
    // Engine knobs last: a queue-kind divergence usually keeps
    // failing with either policy selected (the differential re-run
    // tries both), so these generally reset to defaults.
    {"queueKind", &Experiment::queueKind},
    {"expectedPendingEvents", &Experiment::expectedPendingEvents},
};

constexpr DoubleKnob doubleKnobs[] = {
    {"computeUs", &Experiment::computeUs},
    {"mpSpeedFactor", &Experiment::mpSpeedFactor},
    {"wireUs", &Experiment::wireUs},
    {"ringMbps", &Experiment::ringMbps},
    {"warmupUs", &Experiment::warmupUs},
    {"measureUs", &Experiment::measureUs},
    {"lossRate", &Experiment::lossRate},
    {"corruptRate", &Experiment::corruptRate},
    {"duplicateRate", &Experiment::duplicateRate},
    {"reorderRate", &Experiment::reorderRate},
    {"reorderDelayUs", &Experiment::reorderDelayUs},
    {"retransmitTimeoutUs", &Experiment::retransmitTimeoutUs},
    {"arrivalRatePerSec", &Experiment::arrivalRatePerSec},
    {"paretoAlpha", &Experiment::paretoAlpha},
    {"paretoBound", &Experiment::paretoBound},
    {"deadlineUs", &Experiment::deadlineUs},
    {"retryBackoffUs", &Experiment::retryBackoffUs},
    {"retryBackoffMaxUs", &Experiment::retryBackoffMaxUs},
    {"rtoMaxUs", &Experiment::rtoMaxUs},
    // Time-resolved observability: resetting either knob turns the
    // timeline or trace sampling off entirely.
    {"timelineIntervalUs", &Experiment::timelineIntervalUs},
    {"traceSampleRate", &Experiment::traceSampleRate},
};

} // namespace

std::vector<std::string>
knobDiff(const Experiment &exp)
{
    const Experiment base = baseExperiment();
    std::vector<std::string> diff;
    if (exp.arch != base.arch)
        diff.push_back("arch");
    for (const BoolKnob &k : boolKnobs)
        if (exp.*k.field != base.*k.field)
            diff.push_back(k.name);
    for (const IntKnob &k : intKnobs)
        if (exp.*k.field != base.*k.field)
            diff.push_back(k.name);
    for (const DoubleKnob &k : doubleKnobs)
        if (exp.*k.field != base.*k.field)
            diff.push_back(k.name);
    if (exp.seed != base.seed)
        diff.push_back("seed");
    if (exp.crashSchedule != base.crashSchedule)
        diff.push_back("crashSchedule");
    if (exp.traceFile != base.traceFile)
        diff.push_back("traceFile");
    if (exp.metricsFile != base.metricsFile)
        diff.push_back("metricsFile");
    if (exp.timelineFile != base.timelineFile)
        diff.push_back("timelineFile");
    if (exp.engineProfileFile != base.engineProfileFile)
        diff.push_back("engineProfileFile");
    return diff;
}

int
knobDelta(const Experiment &exp)
{
    return static_cast<int>(knobDiff(exp).size());
}

ShrinkResult
shrinkExperiment(const Experiment &failing,
                 const FailurePredicate &stillFails, int maxRuns)
{
    const Experiment base = baseExperiment();
    Experiment cur = failing;
    int runs = 0;

    // Accept candidate iff it still fails; never exceed the budget.
    auto accept = [&](const Experiment &cand) {
        if (runs >= maxRuns || cand == cur)
            return false;
        ++runs;
        if (!stillFails(cand))
            return false;
        cur = cand;
        return true;
    };

    bool progress = true;
    while (progress && runs < maxRuns) {
        progress = false;

        // Crash windows: try dropping the whole schedule, then each
        // window individually.
        if (!cur.crashSchedule.empty()) {
            Experiment cand = cur;
            cand.crashSchedule.clear();
            if (accept(cand)) {
                progress = true;
            } else {
                for (std::size_t i = 0;
                     i < cur.crashSchedule.size();) {
                    Experiment drop = cur;
                    drop.crashSchedule.erase(
                        drop.crashSchedule.begin() +
                        static_cast<long>(i));
                    if (accept(drop))
                        progress = true; // cur shrank; retry index i
                    else
                        ++i;
                }
            }
        }

        if (cur.arch != base.arch) {
            Experiment cand = cur;
            cand.arch = base.arch;
            progress |= accept(cand);
        }
        for (const BoolKnob &k : boolKnobs) {
            if (cur.*k.field == base.*k.field)
                continue;
            Experiment cand = cur;
            cand.*k.field = base.*k.field;
            progress |= accept(cand);
        }
        if (cur.seed != base.seed) {
            Experiment cand = cur;
            cand.seed = base.seed;
            progress |= accept(cand);
        }
        if (cur.traceFile != base.traceFile) {
            Experiment cand = cur;
            cand.traceFile = base.traceFile;
            progress |= accept(cand);
        }
        if (cur.metricsFile != base.metricsFile) {
            Experiment cand = cur;
            cand.metricsFile = base.metricsFile;
            progress |= accept(cand);
        }

        for (const IntKnob &k : intKnobs) {
            if (cur.*k.field == base.*k.field)
                continue;
            Experiment cand = cur;
            cand.*k.field = base.*k.field;
            if (accept(cand)) {
                progress = true;
                continue;
            }
            // Bisect for the failing value closest to the base.
            long lo = base.*k.field; // passes (reset just failed to fail)
            long hi = cur.*k.field;  // fails
            while (runs < maxRuns) {
                const long mid = lo + (hi - lo) / 2;
                if (mid == lo || mid == hi)
                    break;
                Experiment bis = cur;
                bis.*k.field = static_cast<int>(mid);
                if (accept(bis)) {
                    hi = mid;
                    progress = true;
                } else {
                    lo = mid;
                }
            }
        }

        for (const DoubleKnob &k : doubleKnobs) {
            if (cur.*k.field == base.*k.field)
                continue;
            Experiment cand = cur;
            cand.*k.field = base.*k.field;
            if (accept(cand)) {
                progress = true;
                continue;
            }
            double lo = base.*k.field;
            double hi = cur.*k.field;
            int steps = 0;
            while (runs < maxRuns && steps++ < 16) {
                // Round the midpoint so shrunk repros stay readable.
                double mid = (lo + hi) / 2;
                mid = std::round(mid * 1e6) / 1e6;
                if (mid == lo || mid == hi)
                    break;
                Experiment bis = cur;
                bis.*k.field = mid;
                if (accept(bis)) {
                    hi = mid;
                    progress = true;
                } else {
                    lo = mid;
                }
            }
        }
    }

    ShrinkResult res;
    res.minimal = cur;
    res.knobsChanged = knobDelta(cur);
    res.runsUsed = runs;
    return res;
}

} // namespace hsipc::sim::check
