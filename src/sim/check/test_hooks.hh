/**
 * @file
 * Test-only hooks into the simulator.
 *
 * The fuzzer's own ctest case must prove the invariant oracle can
 * catch a real bug — so it needs a way to *plant* one.  These hooks
 * are that plant: every member defaults to "off", in which state the
 * simulator behaves exactly as shipped (the guards compile to one
 * load-and-test on cold paths).  Nothing outside tests and the fuzz
 * driver may set them, and they are not thread-safe to mutate while
 * simulations run — set before a run, clear after.
 */

#ifndef HSIPC_SIM_CHECK_TEST_HOOKS_HH
#define HSIPC_SIM_CHECK_TEST_HOOKS_HH

#include <functional>

namespace hsipc::sim
{

struct Experiment;

namespace check
{

/** The set of plantable defects and interceptors. */
struct TestHooks
{
    /**
     * Added to the retransmission counter on every counted
     * retransmission — a deliberate off-by-N in ReliableChannel's
     * accounting.  Any nonzero value breaks the first-transmission
     * conservation identity the oracle checks, so the fuzzer must
     * find and shrink it.
     */
    long retransmissionMiscount = 0;

    /**
     * Added to the RPC robustness layer's completed-request counter
     * on every completion — a deliberate off-by-N in the disposition
     * ledger.  Any nonzero value breaks the rpc.conservation identity
     * (offered = completed + shed + expired + lostToCrash +
     * inFlightAtEnd), so the oracle must catch and shrink it.
     */
    long rpcCompletionMiscount = 0;

    /**
     * Drops this many forwarded packets at topology routers — each
     * drop silently discards one arriving packet *without* touching
     * the router's `dropped` ledger (see topo/network.cc), leaving
     * received > forwarded + dropped + inFlight on that router.  The
     * topo.conservation invariant must catch the imbalance and the
     * fuzzer must shrink the configuration that exposed it.
     */
    long topoRouterDrop = 0;

    /**
     * Reverses the (when, seq) tiebreak inside the ladder queue's
     * comparator — simultaneous events pop LIFO instead of FIFO, a
     * classic pending-event-set implementation bug.  The heap is
     * unaffected, so the queue.kindIdentity differential must catch
     * the divergence whenever a run schedules simultaneous events.
     */
    bool ladderMisorderTiebreak = false;

    /**
     * Invoked at the top of runExperiment() when set.  May throw —
     * the exception-propagation tests for the sweep runner use this
     * to make a specific run in a parallel sweep fail.
     */
    std::function<void(const Experiment &)> beforeRun;
};

/** The process-wide hook instance (all members off by default). */
TestHooks &testHooks();

/** RAII reset-to-default for tests that set any hook. */
class ScopedTestHooks
{
  public:
    ScopedTestHooks() : saved(testHooks()) {}
    ~ScopedTestHooks() { testHooks() = saved; }
    ScopedTestHooks(const ScopedTestHooks &) = delete;
    ScopedTestHooks &operator=(const ScopedTestHooks &) = delete;

  private:
    TestHooks saved;
};

} // namespace check
} // namespace hsipc::sim

#endif // HSIPC_SIM_CHECK_TEST_HOOKS_HH
