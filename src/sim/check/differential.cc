#include "sim/check/differential.hh"

#include <cmath>
#include <cstdio>
#include <string>

#include "core/models/mva.hh"
#include "core/models/solution.hh"
#include "sim/analysis/bottleneck.hh"

namespace hsipc::sim::check
{

namespace
{

std::string
fmt(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    return buf;
}

double
relDiff(double a, double b)
{
    const double scale = std::max(std::fabs(a), std::fabs(b));
    return scale == 0 ? 0 : std::fabs(a - b) / scale;
}

} // namespace

bool
differentialEligible(const Experiment &exp,
                     const DifferentialOptions &opts)
{
    const bool faultFree = exp.lossRate == 0 && exp.corruptRate == 0 &&
                           exp.duplicateRate == 0 &&
                           exp.reorderRate == 0 &&
                           exp.crashSchedule.empty();
    return exp.local && exp.mixedLocal + exp.mixedRemote == 0 &&
           exp.conversations >= 1 &&
           exp.conversations <= opts.maxConversations &&
           exp.computeUs <= opts.maxComputeUs &&
           exp.hostsPerNode == 1 && exp.mpSpeedFactor == 1 &&
           !exp.extraCopy && faultFree && !exp.reliableProtocol &&
           exp.kernelBuffers >= exp.conversations &&
           !robustnessEnabled(exp) &&
           // The analytic engines model the classic one/two-node
           // layout; a topology spreads conversations across N nodes.
           !exp.topo.enabled();
}

std::vector<Violation>
differentialCheck(const Experiment &exp,
                  const DifferentialOptions &opts)
{
    std::vector<Violation> v;

    // Engine 1: the DES, re-run to steady state with the latency
    // decomposition on so the trace names its own bottleneck.
    Experiment longRun = exp;
    longRun.warmupUs = opts.warmupUs;
    longRun.measureUs = opts.measureUs;
    longRun.decomposeLatency = true;
    const Outcome out = runExperiment(longRun);
    const double thrSim = out.throughputPerSec / 1e6; // per us

    const std::string configTag =
        " (arch " + std::to_string(static_cast<int>(exp.arch)) +
        ", N=" + std::to_string(exp.conversations) +
        ", X=" + fmt(exp.computeUs) + "us)";

    // Engine 2: the exact GTPN solution.
    const models::LocalSolution gtpn = models::solveLocal(
        exp.arch, exp.conversations, exp.computeUs);
    if (!gtpn.converged) {
        v.push_back({"differential.gtpn",
                     "exact GTPN solve did not converge" + configTag});
    } else if (relDiff(thrSim, gtpn.throughputPerUs) >
               opts.gtpnRelTolerance) {
        v.push_back(
            {"differential.gtpn",
             "DES throughput " + fmt(thrSim) + "/us vs exact GTPN " +
                 fmt(gtpn.throughputPerUs) + "/us, rel diff " +
                 fmt(relDiff(thrSim, gtpn.throughputPerUs)) + " > " +
                 fmt(opts.gtpnRelTolerance) + configTag});
    }

    // Engine 3: exact MVA of the product-form network.
    const double thrMva = models::mvaLocalThroughput(
        exp.arch, exp.conversations, exp.computeUs);
    if (relDiff(thrSim, thrMva) > opts.mvaRelTolerance) {
        v.push_back({"differential.mva",
                     "DES throughput " + fmt(thrSim) + "/us vs MVA " +
                         fmt(thrMva) + "/us, rel diff " +
                         fmt(relDiff(thrSim, thrMva)) + " > " +
                         fmt(opts.mvaRelTolerance) + configTag});
    }

    // Bottleneck cross-check, only when both engines are decisive.
    // Architecture I has no MP, so there is nothing to disagree on.
    if (exp.arch != models::Arch::I &&
        out.decomposition.messages > 0) {
        const analysis::GtpnSaturation gs = analysis::gtpnSaturation(
            exp.arch, exp.conversations, exp.computeUs);
        const auto shares = analysis::classShares(out.decomposition);
        auto share = [&](analysis::ResourceClass cls) {
            const auto it = shares.find(cls);
            return it == shares.end() ? 0.0 : it->second;
        };
        const double traceHost = share(analysis::ResourceClass::Host);
        const double traceMp = share(analysis::ResourceClass::Mp);
        const bool modelDecisive =
            std::max(gs.hostUtil, gs.mpUtil) >
            opts.decisiveRatio * std::min(gs.hostUtil, gs.mpUtil);
        const bool traceDecisive =
            std::max(traceHost, traceMp) >
            opts.decisiveRatio * std::min(traceHost, traceMp);
        if (modelDecisive && traceDecisive) {
            const bool modelSaysMp = gs.mpUtil > gs.hostUtil;
            const bool traceSaysMp = traceMp > traceHost;
            if (modelSaysMp != traceSaysMp) {
                v.push_back(
                    {"differential.bottleneck",
                     "exact GTPN saturates " +
                         std::string(modelSaysMp ? "mp" : "host") +
                         " (host " + fmt(gs.hostUtil) + ", mp " +
                         fmt(gs.mpUtil) +
                         ") but the measured critical path blames " +
                         std::string(traceSaysMp ? "mp" : "host") +
                         " (host " + fmt(traceHost) + "us, mp " +
                         fmt(traceMp) + "us)" + configTag});
            }
        }
    }
    return v;
}

} // namespace hsipc::sim::check
