/**
 * @file
 * The invariant oracle: properties every simulation outcome must
 * satisfy, whatever the configuration.
 *
 * The catalog (see docs/testing.md for the rationale of each):
 *
 *  measurement sanity
 *   - every per-resource utilization, and the legacy maxima, lie in
 *     [0, 1]; ring utilization too, and it is zero without the ring
 *   - throughput is exactly completed round trips over the
 *     measurement window; local + remote split sums to the total
 *   - percentiles are ordered (p50 <= p95), activity and protocol
 *     charges are non-negative, and architecture I (no MP) reports
 *     zero MP utilization and zero MP protocol charge, while II-IV
 *     charge protocol work to the MP only
 *
 *  flow conservation (whole-run ledger, Outcome::netTotals)
 *   - message conservation: accepted = delivered + still-pending,
 *     bracketed exactly: delivered <= accepted - backlog and
 *     delivered >= accepted - backlog - windowPending
 *   - first-transmission identity: dataTransmissions -
 *     retransmissions = accepted - backlog (every message not stuck
 *     in the backlog is transmitted exactly once as a first copy)
 *   - goodput <= throughput: delivered <= dataTransmissions, and the
 *     windowed packet rates obey the same with a window-edge slack
 *   - retransmissions <= timeouts fired; duplicates dropped are
 *     explained by injected duplicates plus retransmissions;
 *     checksum discards are explained by injected corruptions;
 *     windowed counters are non-negative and bounded by the ledger
 *
 *  decomposition exactness (when enabled)
 *   - service + queue + network + blocked mean = round-trip mean
 *     (the gapless-partition property of critical_path.cc)
 *   - component percentiles ordered, bottleneck named with a share
 *     in [0, 1]
 *
 *  determinism (re-run checks)
 *   - tracing on vs off: bit-identical outcomeJson
 *   - SweepRunner jobs=1 vs jobs=N: bit-identical outcomeJson
 *
 * checkOutcome() applies the single-run invariants to an existing
 * Outcome; checkedRun() runs the experiment and optionally the
 * re-run determinism checks as well.
 */

#ifndef HSIPC_SIM_CHECK_INVARIANTS_HH
#define HSIPC_SIM_CHECK_INVARIANTS_HH

#include <string>
#include <vector>

#include "sim/kernel/ipc_sim.hh"

namespace hsipc::sim::check
{

/** One violated invariant. */
struct Violation
{
    std::string invariant; //!< stable id, e.g. "conservation.firstTx"
    std::string detail;    //!< the numbers that broke it
};

/** Render violations one per line (empty string when none). */
std::string formatViolations(const std::vector<Violation> &v);

/** Which re-run (determinism) checks checkedRun() performs. */
struct OracleOptions
{
    /** Re-run with an enabled tracer+metrics sink and compare. */
    bool checkTraceIdentity = true;

    /**
     * Run a 3-replica sweep serially and with this many jobs and
     * compare every outcome (0 disables the check).
     */
    int parallelJobs = 3;
};

/** Result of a checked run. */
struct CheckResult
{
    Outcome outcome;
    std::vector<Violation> violations;

    bool ok() const { return violations.empty(); }
};

/** Apply the single-run invariant catalog to @p out. */
std::vector<Violation> checkOutcome(const Experiment &exp,
                                    const Outcome &out);

/** Run @p exp, then the invariant catalog and determinism checks. */
CheckResult checkedRun(const Experiment &exp,
                       const OracleOptions &opts = OracleOptions());

} // namespace hsipc::sim::check

#endif // HSIPC_SIM_CHECK_INVARIANTS_HH
