/**
 * @file
 * The invariant oracle: properties every simulation outcome must
 * satisfy, whatever the configuration.
 *
 * The catalog (see docs/testing.md for the rationale of each):
 *
 *  measurement sanity
 *   - every per-resource utilization, and the legacy maxima, lie in
 *     [0, 1]; ring utilization too, and it is zero without the ring
 *   - throughput is exactly completed round trips over the
 *     measurement window; local + remote split sums to the total
 *   - percentiles are ordered (p50 <= p95), activity and protocol
 *     charges are non-negative, and architecture I (no MP) reports
 *     zero MP utilization and zero MP protocol charge, while II-IV
 *     charge protocol work to the MP only
 *
 *  flow conservation (whole-run ledger, Outcome::netTotals)
 *   - message conservation: accepted = delivered + still-pending,
 *     bracketed exactly: delivered <= accepted - backlog and
 *     delivered >= accepted - backlog - windowPending
 *   - first-transmission identity: dataTransmissions -
 *     retransmissions = accepted - backlog (every message not stuck
 *     in the backlog is transmitted exactly once as a first copy)
 *   - goodput <= throughput: delivered <= dataTransmissions, and the
 *     windowed packet rates obey the same with a window-edge slack
 *   - retransmissions <= timeouts fired; duplicates dropped are
 *     explained by injected duplicates plus retransmissions;
 *     checksum discards are explained by injected corruptions;
 *     windowed counters are non-negative and bounded by the ledger
 *
 *  decomposition exactness (when enabled)
 *   - service + queue + network + blocked mean = round-trip mean
 *     (the gapless-partition property of critical_path.cc)
 *   - component percentiles ordered, bottleneck named with a share
 *     in [0, 1]; with trace sampling the decomposition covers a
 *     subset of the trips, so coverage becomes an upper bound
 *
 *  timeline integrals (when Experiment::timelineIntervalUs > 0)
 *   - every windowed counter series integrates *exactly* (to the
 *     counter's unit) to its whole-run ledger counterpart:
 *     completed trips, buffer stalls, the rpc disposition series,
 *     and the reliable-channel series
 *   - series are bin-aligned (every series spans the same bin
 *     count), utilization gauges lie in [0, 1], and the steady-state
 *     stats are filled iff the timeline is; when the knob is off the
 *     timeline and stats must be empty
 *
 *  sketch accuracy (when a registry was attached)
 *   - a quantile sketch sharing a histogram's name saw the same
 *     sample stream (equal count/sum/extremes) and each reported
 *     quantile lies inside the histogram's log2 bucket for that
 *     rank, widened by the sketch's configured relative error
 *
 *  engine profile (Experiment::engineProfile; engprof.*)
 *   - pay-for-use: with the knob off the profile is empty
 *   - queue conservation: pushes = pops + remainingAtEnd, with
 *     remainingAtEnd below the observed heap peak
 *   - sampling: sampled executions <= pops, dwell samples <= pushes,
 *     dwell and heap-depth sketches fill in lockstep, dwell >= 0
 *   - attribution: track event counts partition pops exactly (track
 *     0 "sim" holds the residual) and wall samples partition the
 *     sampled executions
 *   - lookahead graph: per-edge zeroDelta <= count, deltas
 *     non-negative, and minPositiveDeltaUs > 0 exactly when the edge
 *     saw a positive delta
 *
 *  pending-event-set policy (queue.*)
 *   - profile coherence (single-run, with the profiler on): the
 *     profile's queue kind mirrors the experiment's; ladder runs do
 *     no heap sifts (comparisons = 0) while heap runs keep the
 *     ladder ledger empty; sortedEvents <= pushes (an event is
 *     Bottom-sorted at most once) with bottomSorts <= sortedEvents;
 *     topTransfers <= pushes; maxBucket <= maxHeapSize;
 *     batchedEvents <= pushes and batchCommits <= batchedEvents
 *     (empty commits are not counted)
 *   - queue.kindIdentity (re-run): the same Experiment with the
 *     opposite queueKind produces bit-identical outcomeJson — any
 *     correct priority queue over the strict (when, seq) total order
 *     executes the identical event sequence, so every existing
 *     result doubles as a differential oracle for the ladder
 *
 *  topology ledger (Experiment::topo; topo.*)
 *   - topo.bypass: without a topology the ledger is empty — the
 *     layer is pay-for-use
 *   - topo.enabled: with one, the ledger is filled and its element
 *     counts are a pure function of the shape (mesh: N(N-1) directed
 *     links, no routers; star: 2N links and one switch; S ring
 *     segments: S ring links, plus S routers and S(S-1) backbone
 *     links when S > 1)
 *   - topo.conservation: *exact* flow conservation on every link
 *     (msgsIn = msgsOut + dropped + inFlightAtEnd) and every router
 *     (received = forwarded + dropped + inFlightAtEnd); bytes never
 *     grow in transit (bytesOut <= bytesIn) and no in-flight count
 *     exceeds its observed queue peak
 *   - topo.nonneg: every ledger entry is non-negative
 *   - topo.retransAttribution: each link's attributed
 *     retransmissions are bounded by the whole-run channel total
 *
 *  determinism (re-run checks)
 *   - tracing on vs off: bit-identical outcomeJson
 *   - engineProfile flipped: bit-identical outcomeJson
 *     (engprof.payForUse — the profile never enters the outcome)
 *   - SweepRunner jobs=1 vs jobs=N: bit-identical outcomeJson, and
 *     the profile's deterministic subset (counters, simulated-time
 *     sketches, the edge graph — never wall-clock values) replicates
 *     bit-exactly too (engprof.deterministic)
 *   - every re-run comparison pins outcomeJson *plus* topoJson, so
 *     the per-link/per-router ledger must replicate bit-exactly
 *     across tracing, queue policy, profiling, and parallelism
 *
 * checkOutcome() applies the single-run invariants to an existing
 * Outcome; checkedRun() runs the experiment and optionally the
 * re-run determinism checks as well.
 */

#ifndef HSIPC_SIM_CHECK_INVARIANTS_HH
#define HSIPC_SIM_CHECK_INVARIANTS_HH

#include <string>
#include <vector>

#include "sim/kernel/ipc_sim.hh"

namespace hsipc::sim::check
{

/** One violated invariant. */
struct Violation
{
    std::string invariant; //!< stable id, e.g. "conservation.firstTx"
    std::string detail;    //!< the numbers that broke it
};

/** Render violations one per line (empty string when none). */
std::string formatViolations(const std::vector<Violation> &v);

/** Which re-run (determinism) checks checkedRun() performs. */
struct OracleOptions
{
    /** Re-run with an enabled tracer+metrics sink and compare. */
    bool checkTraceIdentity = true;

    /**
     * Re-run with the opposite pending-event-set policy (heap vs
     * ladder) and require bit-identical outcomeJson — the queue.*
     * differential.
     */
    bool checkQueueKindIdentity = true;

    /**
     * Run a 3-replica sweep serially and with this many jobs and
     * compare every outcome (0 disables the check).
     */
    int parallelJobs = 3;
};

/** Result of a checked run. */
struct CheckResult
{
    Outcome outcome;
    std::vector<Violation> violations;

    bool ok() const { return violations.empty(); }
};

/** Apply the single-run invariant catalog to @p out. */
std::vector<Violation> checkOutcome(const Experiment &exp,
                                    const Outcome &out);

/**
 * Check every histogram/sketch pair in @p reg: a sketch sharing a
 * histogram's name must have seen the same sample stream, and each
 * reported quantile must land inside the histogram's log2 bucket for
 * that rank, widened by the sketch's relative accuracy.  Applied by
 * checkedRun() to the registry of its traced re-run.
 */
std::vector<Violation>
checkSketchAccuracy(const metrics::Registry &reg);

/** Run @p exp, then the invariant catalog and determinism checks. */
CheckResult checkedRun(const Experiment &exp,
                       const OracleOptions &opts = OracleOptions());

} // namespace hsipc::sim::check

#endif // HSIPC_SIM_CHECK_INVARIANTS_HH
