#include "sim/check/invariants.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "common/metrics/metrics.hh"
#include "common/time.hh"
#include "common/trace/tracer.hh"
#include "sim/runner/sweep_runner.hh"

namespace hsipc::sim::check
{

namespace
{

// Absolute slack for quantities that are exact up to floating-point
// evaluation order, and relative slack for recomputed ratios.
constexpr double kEps = 1e-9;

std::string
fmt(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    return buf;
}

/** Collects violations with uniform formatting. */
struct Checker
{
    const Experiment &exp;
    const Outcome &out;
    std::vector<Violation> v;

    void
    fail(const char *id, const std::string &detail)
    {
        v.push_back({id, detail});
    }

    void
    expectTrue(bool ok, const char *id, const std::string &detail)
    {
        if (!ok)
            fail(id, detail);
    }

    /** a <= b up to kEps absolute slack. */
    void
    expectLe(double a, const char *an, double b, const char *bn,
             const char *id)
    {
        if (!(a <= b + kEps))
            fail(id, std::string(an) + "=" + fmt(a) + " > " + bn +
                         "=" + fmt(b));
    }

    void
    expectUnit(double u, const char *name, const char *id)
    {
        if (!(u >= -kEps && u <= 1.0 + kEps))
            fail(id,
                 std::string(name) + "=" + fmt(u) + " outside [0,1]");
    }

    void
    expectNonNeg(double u, const char *name, const char *id)
    {
        if (!(u >= 0))
            fail(id, std::string(name) + "=" + fmt(u) + " negative");
    }

    /** Exact integer identity lhs == rhs. */
    void
    expectEq(long lhs, const char *le, long rhs, const char *re,
             const char *id)
    {
        if (lhs != rhs)
            fail(id, std::string(le) + "=" + std::to_string(lhs) +
                         " != " + re + "=" + std::to_string(rhs));
    }

    /** Relative agreement of a recomputed quantity. */
    void
    expectClose(double got, const char *gn, double want,
                const char *wn, double rel, const char *id)
    {
        const double scale = std::max({1.0, std::fabs(got),
                                       std::fabs(want)});
        if (!(std::fabs(got - want) <= rel * scale))
            fail(id, std::string(gn) + "=" + fmt(got) + " vs " + wn +
                         "=" + fmt(want));
    }
};

void
checkMeasurement(Checker &c)
{
    const Experiment &exp = c.exp;
    const Outcome &out = c.out;

    for (const auto &[name, util] : out.resourceUtilization)
        c.expectUnit(util, name.c_str(), "util.range");
    c.expectUnit(out.hostUtil, "hostUtil", "util.range");
    c.expectUnit(out.mpUtil, "mpUtil", "util.range");
    c.expectUnit(out.busUtil, "busUtil", "util.range");
    c.expectUnit(out.ringUtil, "ringUtil", "util.range");
    if (!exp.useTokenRing) {
        c.expectTrue(out.ringUtil == 0 && out.ringTokenWaitUs == 0,
                     "ring.absent",
                     "ring measurements nonzero without the ring");
    }

    c.expectTrue(out.roundTrips >= 0, "throughput.recompute",
                 "negative roundTrips");
    const double windowSec = ticksToUs(usToTicks(exp.measureUs)) / 1e6;
    c.expectClose(out.throughputPerSec,
                  "throughputPerSec",
                  static_cast<double>(out.roundTrips) / windowSec,
                  "roundTrips/window", 1e-9, "throughput.recompute");
    c.expectClose(out.localThroughputPerSec +
                      out.remoteThroughputPerSec,
                  "local+remote", out.throughputPerSec, "total", 1e-9,
                  "throughput.split");
    if (out.roundTrips > 0) {
        c.expectTrue(out.meanRoundTripUs > 0, "latency.positive",
                     "meanRoundTripUs=" + fmt(out.meanRoundTripUs) +
                         " with " + std::to_string(out.roundTrips) +
                         " round trips");
        c.expectLe(out.rtP50Us, "rtP50Us", out.rtP95Us, "rtP95Us",
                   "latency.percentileOrder");
    }
    for (const auto &[name, us] : out.activityUsPerRoundTrip)
        c.expectNonNeg(us, name.c_str(), "activity.nonneg");
    c.expectNonNeg(out.protoHostUsPerRt, "protoHostUsPerRt",
                   "proto.nonneg");
    c.expectNonNeg(out.protoMpUsPerRt, "protoMpUsPerRt",
                   "proto.nonneg");

    if (exp.arch == models::Arch::I) {
        c.expectTrue(out.mpUtil == 0, "arch1.noMp",
                     "mpUtil=" + fmt(out.mpUtil) +
                         " on the MP-less architecture I");
        c.expectTrue(out.protoMpUsPerRt == 0, "arch1.noMp",
                     "protoMpUsPerRt=" + fmt(out.protoMpUsPerRt) +
                         " on architecture I");
        for (const auto &[name, util] : out.resourceUtilization) {
            if (name.find(".mp") != std::string::npos)
                c.fail("arch1.noMp", "resource '" + name +
                                         "' on architecture I");
        }
    } else {
        // With an MP present, protocol processing runs there.
        c.expectTrue(out.protoHostUsPerRt == 0, "proto.placement",
                     "protoHostUsPerRt=" + fmt(out.protoHostUsPerRt) +
                         " charged to the host on arch " +
                         std::to_string(static_cast<int>(exp.arch)));
    }

    // Topology placement policies choose client/server nodes per
    // conversation (locality pins both to one node, hot-spot can land
    // on the client's own node), so the local/remote split is not
    // knowable from `exp.local` alone on a topology run.
    const bool mixed = exp.mixedLocal + exp.mixedRemote > 0;
    if (!mixed && !exp.topo.enabled()) {
        if (exp.local)
            c.expectTrue(out.remoteThroughputPerSec == 0,
                         "workload.split",
                         "remote throughput on a local-only run");
        else
            c.expectTrue(out.localThroughputPerSec == 0,
                         "workload.split",
                         "local throughput on a remote-only run");
    }

    c.expectTrue(out.crashWindowsRecovered >= 0 &&
                     static_cast<std::size_t>(
                         out.crashWindowsRecovered) <=
                         exp.crashSchedule.size(),
                 "crash.recoveredBound",
                 "crashWindowsRecovered=" +
                     std::to_string(out.crashWindowsRecovered) +
                     " of " +
                     std::to_string(exp.crashSchedule.size()) +
                     " scheduled");
    c.expectNonNeg(out.meanRecoveryUs, "meanRecoveryUs",
                   "crash.recoveredBound");
    c.expectTrue(out.bufferStalls >= 0, "buffers.nonneg",
                 "negative bufferStalls");
}

void
checkConservation(Checker &c)
{
    const Experiment &exp = c.exp;
    const Outcome &out = c.out;
    const Outcome::NetTotals &nt = out.netTotals;

    const long ledger[] = {nt.msgsAccepted, nt.msgsDelivered,
                           nt.windowPendingAtEnd, nt.backlogAtEnd,
                           nt.dataTransmissions, nt.retransmissions,
                           nt.timeoutsFired, nt.duplicatesDropped,
                           nt.corruptDiscarded, nt.acksSent,
                           nt.pktsInjected, nt.pktsDropped,
                           nt.pktsCorrupted, nt.pktsDuplicated,
                           nt.pktsReordered, nt.pktsCrashDropped};
    for (long v : ledger)
        c.expectTrue(v >= 0, "conservation.nonneg",
                     "negative ledger entry " + std::to_string(v));

    // Message conservation: everything accepted either reached the
    // peer exactly once, is transmitted-but-unacked, or never left
    // the backlog.
    const long settled = nt.msgsAccepted - nt.backlogAtEnd;
    c.expectTrue(nt.msgsDelivered <= settled &&
                     nt.msgsDelivered >=
                         settled - nt.windowPendingAtEnd,
                 "conservation.messages",
                 "delivered=" + std::to_string(nt.msgsDelivered) +
                     " outside [accepted-backlog-pending, "
                     "accepted-backlog] = [" +
                     std::to_string(settled - nt.windowPendingAtEnd) +
                     ", " + std::to_string(settled) + "]");

    // First-transmission identity: every message leaving the backlog
    // is transmitted exactly once as a first copy.
    c.expectEq(nt.dataTransmissions - nt.retransmissions,
               "dataTransmissions-retransmissions", settled,
               "accepted-backlog", "conservation.firstTx");

    c.expectTrue(nt.retransmissions <= nt.timeoutsFired,
                 "conservation.retransmitCause",
                 "retransmissions=" +
                     std::to_string(nt.retransmissions) +
                     " > timeoutsFired=" +
                     std::to_string(nt.timeoutsFired));

    // Goodput never exceeds throughput, and every extra arrival of a
    // sequence number is explained by a retransmission or an injected
    // duplicate.
    c.expectTrue(nt.msgsDelivered <= nt.dataTransmissions,
                 "conservation.goodput",
                 "delivered=" + std::to_string(nt.msgsDelivered) +
                     " > dataTransmissions=" +
                     std::to_string(nt.dataTransmissions));
    c.expectTrue(nt.msgsDelivered + nt.duplicatesDropped <=
                     nt.dataTransmissions + nt.pktsDuplicated,
                 "conservation.duplicates",
                 "delivered+dupDropped=" +
                     std::to_string(nt.msgsDelivered +
                                    nt.duplicatesDropped) +
                     " > dataTx+injectedDups=" +
                     std::to_string(nt.dataTransmissions +
                                    nt.pktsDuplicated));

    // A checksum discard needs an injected corruption (duplicates of
    // a corrupted packet share its corruption, hence the dup term).
    c.expectTrue(nt.corruptDiscarded <=
                     nt.pktsCorrupted + nt.pktsDuplicated,
                 "conservation.corruption",
                 "corruptDiscarded=" +
                     std::to_string(nt.corruptDiscarded) +
                     " > injected corrupted+duplicated=" +
                     std::to_string(nt.pktsCorrupted +
                                    nt.pktsDuplicated));

    // The windowed counters are sub-ranges of the whole-run ledger.
    c.expectTrue(out.retransmissions >= 0 &&
                     out.retransmissions <= nt.retransmissions,
                 "conservation.window",
                 "windowed retransmissions=" +
                     std::to_string(out.retransmissions) +
                     " outside [0, " +
                     std::to_string(nt.retransmissions) + "]");
    c.expectTrue(out.timeoutsFired >= 0 &&
                     out.timeoutsFired <= nt.timeoutsFired,
                 "conservation.window",
                 "windowed timeoutsFired=" +
                     std::to_string(out.timeoutsFired) +
                     " outside [0, " +
                     std::to_string(nt.timeoutsFired) + "]");
    c.expectTrue(out.duplicatesDropped >= 0 &&
                     out.duplicatesDropped <= nt.duplicatesDropped,
                 "conservation.window",
                 "windowed duplicatesDropped=" +
                     std::to_string(out.duplicatesDropped) +
                     " outside [0, " +
                     std::to_string(nt.duplicatesDropped) + "]");
    c.expectTrue(out.corruptDiscarded >= 0 &&
                     out.corruptDiscarded <= nt.corruptDiscarded,
                 "conservation.window",
                 "windowed corruptDiscarded=" +
                     std::to_string(out.corruptDiscarded) +
                     " outside [0, " +
                     std::to_string(nt.corruptDiscarded) + "]");
    c.expectTrue(out.faultDrops >= 0 &&
                     out.faultDrops <= nt.pktsDropped,
                 "conservation.window",
                 "windowed faultDrops=" +
                     std::to_string(out.faultDrops) + " outside [0, " +
                     std::to_string(nt.pktsDropped) + "]");
    c.expectTrue(out.crashDrops >= 0 &&
                     out.crashDrops <= nt.pktsCrashDropped,
                 "conservation.window",
                 "windowed crashDrops=" +
                     std::to_string(out.crashDrops) + " outside [0, " +
                     std::to_string(nt.pktsCrashDropped) + "]");

    // Windowed goodput <= windowed throughput, up to deliveries of
    // packets transmitted before the window opened (bounded by the
    // two channels' windows) — in packets, not rates.
    const double windowSec = ticksToUs(usToTicks(exp.measureUs)) / 1e6;
    c.expectTrue(out.netGoodputPktsPerSec * windowSec <=
                     out.netThroughputPktsPerSec * windowSec +
                         2.0 * exp.retransmitWindow + 1e-6,
                 "conservation.goodputRate",
                 "goodput=" + fmt(out.netGoodputPktsPerSec) +
                     " pkts/s vs throughput=" +
                     fmt(out.netThroughputPktsPerSec) + " pkts/s");

    // Faults that are disabled must not occur.
    if (exp.lossRate == 0)
        c.expectEq(nt.pktsDropped, "pktsDropped", 0, "disabled loss",
                   "faults.disabled");
    if (exp.corruptRate == 0)
        c.expectEq(nt.pktsCorrupted, "pktsCorrupted", 0,
                   "disabled corruption", "faults.disabled");
    if (exp.duplicateRate == 0)
        c.expectEq(nt.pktsDuplicated, "pktsDuplicated", 0,
                   "disabled duplication", "faults.disabled");
    if (exp.reorderRate == 0)
        c.expectEq(nt.pktsReordered, "pktsReordered", 0,
                   "disabled reordering", "faults.disabled");
    if (exp.crashSchedule.empty())
        c.expectEq(nt.pktsCrashDropped, "pktsCrashDropped", 0,
                   "no crash windows", "faults.disabled");

    // Pay-for-use: a run that never instantiates the reliability
    // stack (single node, or two fault-free nodes without
    // reliableProtocol) must leave the whole ledger at zero.
    const bool faultFree = exp.lossRate == 0 && exp.corruptRate == 0 &&
                           exp.duplicateRate == 0 &&
                           exp.reorderRate == 0 &&
                           exp.crashSchedule.empty();
    const bool twoNodes = !exp.local ||
                          exp.mixedLocal + exp.mixedRemote > 0 ||
                          exp.topo.enabled();
    if (!twoNodes || (faultFree && !exp.reliableProtocol)) {
        c.expectTrue(nt.pktsInjected == 0 && nt.msgsAccepted == 0 &&
                         nt.dataTransmissions == 0 &&
                         out.netThroughputPktsPerSec == 0,
                     "conservation.bypass",
                     "reliability-stack activity on a run that must "
                     "bypass the stack (injected=" +
                         std::to_string(nt.pktsInjected) +
                         ", accepted=" +
                         std::to_string(nt.msgsAccepted) + ")");
    }
}

void
checkDecomposition(Checker &c)
{
    const Outcome &out = c.out;
    const trace::Decomposition &d = out.decomposition;
    if (!c.exp.decomposeLatency) {
        c.expectTrue(d.messages == 0, "decomp.disabled",
                     "decomposition filled without decomposeLatency");
        return;
    }
    // Two ways the decomposition can legitimately cover a subset of
    // the measured trips: robust runs may complete a round trip whose
    // final attempt left no causal record, and trace sampling keeps
    // only the hash-selected message ids.  Either way coverage is an
    // upper bound and the decomposed mean is over a subset.
    const bool subset =
        robustnessEnabled(c.exp) || c.exp.traceSampleRate < 1;
    if (subset) {
        c.expectTrue(d.messages <= out.roundTrips, "decomp.coverage",
                     "decomposition.messages=" +
                         std::to_string(d.messages) + " > roundTrips=" +
                         std::to_string(out.roundTrips));
    } else {
        c.expectEq(d.messages, "decomposition.messages",
                   out.roundTrips, "roundTrips", "decomp.coverage");
    }
    if (d.messages <= 0)
        return;

    const double sum = d.service.meanUs + d.queue.meanUs +
                       d.network.meanUs + d.blocked.meanUs;
    c.expectClose(sum, "service+queue+network+blocked",
                  d.roundTrip.meanUs, "roundTrip mean", 1e-6,
                  "decomp.partition");
    if (!subset)
        c.expectClose(d.roundTrip.meanUs, "decomposed roundTrip mean",
                      out.meanRoundTripUs, "measured mean", 1e-6,
                      "decomp.partition");

    const struct
    {
        const char *name;
        const trace::ComponentStats &s;
    } comps[] = {{"roundTrip", d.roundTrip}, {"service", d.service},
                 {"queue", d.queue},         {"network", d.network},
                 {"blocked", d.blocked}};
    for (const auto &comp : comps) {
        c.expectNonNeg(comp.s.meanUs, comp.name, "decomp.nonneg");
        c.expectLe(comp.s.p50Us, "p50", comp.s.p95Us, "p95",
                   "decomp.percentileOrder");
        c.expectLe(comp.s.p95Us, "p95", comp.s.p99Us, "p99",
                   "decomp.percentileOrder");
    }
    double resourceService = 0;
    for (const auto &[name, us] : d.serviceUsByResource) {
        c.expectNonNeg(us, name.c_str(), "decomp.nonneg");
        resourceService += us;
    }
    for (const auto &[name, us] : d.queueUsByResource)
        c.expectNonNeg(us, name.c_str(), "decomp.nonneg");
    c.expectClose(resourceService, "sum of serviceUsByResource",
                  d.service.meanUs + d.network.meanUs,
                  "service+network mean", 1e-6, "decomp.byResource");
    // A covered trip can decompose to pure blocking: a robust retry
    // can complete a request whose service/queue/network spans all
    // landed on another attempt's causal record, leaving one
    // interval-free record that reconstructs as a single blocked
    // segment.  With no resource carrying any share there is no
    // bottleneck to name; otherwise one must be named.
    if (d.service.meanUs + d.queue.meanUs + d.network.meanUs > 0)
        c.expectTrue(!d.bottleneck.empty(), "decomp.bottleneck",
                     "no bottleneck named despite decomposed "
                     "resource time");
    c.expectUnit(d.bottleneckShare, "bottleneckShare",
                 "decomp.bottleneck");
}

void
checkRpc(Checker &c)
{
    const Experiment &exp = c.exp;
    const Outcome &out = c.out;
    const Outcome::Rpc &r = out.rpc;

    c.expectNonNeg(out.rpcHostUsPerRt, "rpcHostUsPerRt", "rpc.nonneg");
    c.expectNonNeg(out.rpcMpUsPerRt, "rpcMpUsPerRt", "rpc.nonneg");

    if (!robustnessEnabled(exp)) {
        // Pay-for-use: with every robustness knob at its default the
        // whole ledger (and its processing charge) must stay zero.
        const long ledger[] = {
            r.offered,     r.attempts,     r.retries,
            r.admitted,    r.completed,    r.shed,
            r.shedAttempts, r.expired,     r.lostToCrash,
            r.crashLostAttempts, r.duplicatesSuppressed,
            r.replyReplays, r.orphanedReplies, r.inFlightAtEnd};
        for (long v : ledger)
            c.expectTrue(v == 0, "rpc.bypass",
                         "robustness ledger entry " +
                             std::to_string(v) +
                             " nonzero on a non-robust run");
        c.expectTrue(r.offeredPerSec == 0 && r.goodputPerSec == 0 &&
                         r.meanSojournUs == 0 && r.p95SojournUs == 0 &&
                         out.rpcHostUsPerRt == 0 &&
                         out.rpcMpUsPerRt == 0,
                     "rpc.bypass",
                     "robustness rates nonzero on a non-robust run");
        return;
    }

    const long ledger[] = {
        r.offered,     r.attempts,     r.retries,
        r.admitted,    r.completed,    r.shed,
        r.shedAttempts, r.expired,     r.lostToCrash,
        r.crashLostAttempts, r.duplicatesSuppressed,
        r.replyReplays, r.orphanedReplies, r.inFlightAtEnd};
    for (long v : ledger)
        c.expectTrue(v >= 0, "rpc.nonneg",
                     "negative rpc ledger entry " + std::to_string(v));
    c.expectNonNeg(r.offeredPerSec, "offeredPerSec", "rpc.nonneg");
    c.expectNonNeg(r.goodputPerSec, "goodputPerSec", "rpc.nonneg");
    c.expectNonNeg(r.meanSojournUs, "meanSojournUs", "rpc.nonneg");
    c.expectNonNeg(r.p95SojournUs, "p95SojournUs", "rpc.nonneg");

    // Disposition conservation: every offered request ends in exactly
    // one of the four terminal states or is still in flight at the
    // end of the run.  Exact, on every configuration.
    c.expectEq(r.offered, "offered",
               r.completed + r.shed + r.expired + r.lostToCrash +
                   r.inFlightAtEnd,
               "completed+shed+expired+lostToCrash+inFlightAtEnd",
               "rpc.conservation");

    // Attempt accounting: each request sends once plus one per used
    // retry, and the budget caps the retries.
    c.expectTrue(r.attempts <= r.offered + r.retries,
                 "rpc.attempts",
                 "attempts=" + std::to_string(r.attempts) +
                     " > offered+retries=" +
                     std::to_string(r.offered + r.retries));
    c.expectTrue(r.retries <=
                     static_cast<long>(exp.retryBudget) * r.offered,
                 "rpc.retryBudget",
                 "retries=" + std::to_string(r.retries) +
                     " > budget*offered=" +
                     std::to_string(static_cast<long>(exp.retryBudget) *
                                    r.offered));

    // Server-side classification: every delivered attempt is admitted,
    // deduplicated, replayed at, or shed — never double-counted.
    c.expectTrue(r.admitted + r.duplicatesSuppressed + r.replyReplays <=
                     r.attempts,
                 "rpc.serverLedger",
                 "admitted+dedup+replays=" +
                     std::to_string(r.admitted + r.duplicatesSuppressed +
                                    r.replyReplays) +
                     " > attempts=" + std::to_string(r.attempts));
    c.expectTrue(r.completed <= r.admitted, "rpc.serverLedger",
                 "completed=" + std::to_string(r.completed) +
                     " > admitted=" + std::to_string(r.admitted));
    // Every reply is produced by a serviced admission or a replay.
    c.expectTrue(r.completed + r.orphanedReplies <=
                     r.admitted + r.replyReplays,
                 "rpc.serverLedger",
                 "completed+orphaned=" +
                     std::to_string(r.completed + r.orphanedReplies) +
                     " > admitted+replays=" +
                     std::to_string(r.admitted + r.replyReplays));
    c.expectTrue(r.shed <= r.shedAttempts, "rpc.shedBound",
                 "shed=" + std::to_string(r.shed) +
                     " > shedAttempts=" +
                     std::to_string(r.shedAttempts));
    c.expectTrue(r.lostToCrash <= r.crashLostAttempts, "rpc.crashBound",
                 "lostToCrash=" + std::to_string(r.lostToCrash) +
                     " > crashLostAttempts=" +
                     std::to_string(r.crashLostAttempts));

    // Disabled mechanisms must not fire.
    if (exp.svcQueueCap == 0)
        c.expectTrue(r.shedAttempts == 0 && r.shed == 0,
                     "rpc.disabled", "shedding without a queue cap");
    if (exp.retryBudget == 0)
        c.expectTrue(r.retries == 0, "rpc.disabled",
                     "retries without a retry budget");
    if (exp.deadlineUs == 0)
        c.expectTrue(r.expired == 0, "rpc.disabled",
                     "expiries without a deadline");
    if (exp.crashSchedule.empty())
        c.expectTrue(r.lostToCrash == 0 && r.crashLostAttempts == 0,
                     "rpc.disabled", "crash losses without crashes");

    // Expiry preempts late completion, so goodput is throughput.
    c.expectClose(r.goodputPerSec, "goodputPerSec",
                  out.throughputPerSec, "throughputPerSec", 1e-9,
                  "rpc.goodput");

    // No completed request outlives its deadline (the deadline event
    // is scheduled before any reply can be, so it wins tick ties).
    if (exp.deadlineUs > 0 && r.completed > 0) {
        const double bound = ticksToUs(
            std::max<Tick>(1, usToTicks(exp.deadlineUs)));
        c.expectLe(r.meanSojournUs, "meanSojournUs", bound,
                   "deadline", "rpc.sojournDeadline");
        c.expectLe(r.p95SojournUs, "p95SojournUs", bound, "deadline",
                   "rpc.sojournDeadline");
    }

    // Who pays for robustness: the host on Architecture I, the MP on
    // II-IV — mirrors the protocol-placement invariant.
    if (exp.arch == models::Arch::I)
        c.expectTrue(out.rpcMpUsPerRt == 0, "rpc.placement",
                     "rpcMpUsPerRt=" + fmt(out.rpcMpUsPerRt) +
                         " on the MP-less architecture I");
    else
        c.expectTrue(out.rpcHostUsPerRt == 0, "rpc.placement",
                     "rpcHostUsPerRt=" + fmt(out.rpcHostUsPerRt) +
                         " charged to the host on arch " +
                         std::to_string(static_cast<int>(exp.arch)));
}

void
checkTimeline(Checker &c)
{
    const Experiment &exp = c.exp;
    const Outcome &out = c.out;
    const obs::Timeline &t = out.timeline;

    if (exp.timelineIntervalUs <= 0) {
        // Pay-for-use: no knob, no timeline, no steady-state stats.
        c.expectTrue(!t.enabled() && t.counters.empty() &&
                         t.gauges.empty(),
                     "timeline.disabled",
                     "timeline filled without timelineIntervalUs");
        c.expectTrue(out.stats == obs::SteadyStats{},
                     "timeline.disabled",
                     "steady-state stats filled without a timeline");
        return;
    }

    c.expectTrue(t.enabled(), "timeline.meta",
                 "timeline empty despite timelineIntervalUs=" +
                     fmt(exp.timelineIntervalUs));
    c.expectClose(t.intervalUs, "timeline.intervalUs",
                  exp.timelineIntervalUs, "Experiment knob", 1e-12,
                  "timeline.meta");
    c.expectClose(t.horizonUs, "timeline.horizonUs",
                  exp.warmupUs + exp.measureUs, "warmup+measure",
                  1e-12, "timeline.meta");

    // Every series spans the same bin range.
    const std::size_t bins = t.bins();
    c.expectTrue(bins > 0, "timeline.bins", "timeline has no bins");
    for (const auto &[name, s] : t.counters)
        c.expectTrue(s.size() == bins, "timeline.bins",
                     "counter series '" + name + "' has " +
                         std::to_string(s.size()) + " of " +
                         std::to_string(bins) + " bins");
    for (const auto &[name, g] : t.gauges)
        c.expectTrue(g.size() == bins, "timeline.bins",
                     "gauge series '" + name + "' has " +
                         std::to_string(g.size()) + " of " +
                         std::to_string(bins) + " bins");

    // The integral property: a counter series' bins sum *exactly*
    // (the increments are integers well inside double precision) to
    // the whole-run ledger counter bumped at the very same sites.
    const auto integral = [&](const char *name) {
        return std::llround(t.total(name));
    };
    const auto has = [&](const char *name) {
        return t.counters.count(name) > 0;
    };
    c.expectTrue(has("ipc.completedTrips") && has("ipc.allTrips") &&
                     has("ipc.bufferStalls"),
                 "timeline.series",
                 "core ipc series missing from an enabled timeline");
    c.expectEq(integral("ipc.completedTrips"),
               "sum(ipc.completedTrips)", out.roundTrips,
               "roundTrips", "timeline.integral");
    c.expectEq(integral("ipc.bufferStalls"), "sum(ipc.bufferStalls)",
               out.bufferStalls, "bufferStalls", "timeline.integral");
    // allTrips includes warmup completions, so it dominates the
    // measured count.
    c.expectTrue(integral("ipc.allTrips") >= out.roundTrips,
                 "timeline.integral",
                 "sum(ipc.allTrips)=" +
                     std::to_string(integral("ipc.allTrips")) +
                     " < roundTrips=" +
                     std::to_string(out.roundTrips));

    const Outcome::Rpc &r = out.rpc;
    if (robustnessEnabled(exp)) {
        const struct
        {
            const char *series;
            long ledger;
            const char *ledgerName;
        } rpcPairs[] = {
            {"rpc.offered", r.offered, "rpc.offered"},
            {"rpc.completed", r.completed, "rpc.completed"},
            {"rpc.shed", r.shed, "rpc.shed"},
            {"rpc.shedAttempts", r.shedAttempts, "rpc.shedAttempts"},
            {"rpc.expired", r.expired, "rpc.expired"},
            {"rpc.lostToCrash", r.lostToCrash, "rpc.lostToCrash"},
            {"rpc.retries", r.retries, "rpc.retries"},
            {"rpc.orphanedReplies", r.orphanedReplies,
             "rpc.orphanedReplies"},
        };
        for (const auto &p : rpcPairs) {
            if (!has(p.series)) {
                c.fail("timeline.series",
                       std::string("missing series '") + p.series +
                           "' on a robust timeline run");
                continue;
            }
            c.expectEq(integral(p.series), p.series, p.ledger,
                       p.ledgerName, "timeline.integral");
        }
    } else {
        c.expectTrue(!has("rpc.offered"), "timeline.series",
                     "rpc series on a non-robust run");
    }

    // The reliable-channel series exist iff the channels do; absent
    // series mean the whole-run ledger is zero too (bypass).
    const Outcome::NetTotals &nt = out.netTotals;
    if (has("net.dataTransmissions")) {
        c.expectEq(integral("net.dataTransmissions"),
                   "sum(net.dataTransmissions)", nt.dataTransmissions,
                   "netTotals.dataTransmissions", "timeline.integral");
        c.expectEq(integral("net.retransmissions"),
                   "sum(net.retransmissions)", nt.retransmissions,
                   "netTotals.retransmissions", "timeline.integral");
        c.expectEq(integral("net.delivered"), "sum(net.delivered)",
                   nt.msgsDelivered, "netTotals.msgsDelivered",
                   "timeline.integral");
        c.expectEq(integral("net.acksSent"), "sum(net.acksSent)",
                   nt.acksSent, "netTotals.acksSent",
                   "timeline.integral");
    } else {
        c.expectEq(nt.dataTransmissions, "netTotals.dataTransmissions",
                   0, "bypassed channel series", "timeline.series");
    }

    // Per-bin utilization gauges are utilizations.
    for (const auto &[name, g] : t.gauges) {
        if (name.rfind("util.", 0) != 0)
            continue;
        for (double u : g)
            c.expectUnit(u, name.c_str(), "timeline.gaugeRange");
    }

    // Steady-state stats ride the timeline.
    c.expectTrue(out.stats.enabled, "timeline.stats",
                 "stats disabled despite an enabled timeline");
    // The truncation point is bin-granular, so it can overshoot the
    // horizon by the final partial bin (and a short run truncates at
    // its very end: bins * interval).
    const double binSpanUs =
        static_cast<double>(bins) * t.intervalUs;
    c.expectTrue(out.stats.truncationUs >= 0 &&
                     out.stats.truncationUs <= binSpanUs + kEps,
                 "timeline.stats",
                 "truncationUs=" + fmt(out.stats.truncationUs) +
                     " outside the binned horizon " + fmt(binSpanUs));
    c.expectTrue(out.stats.batches >= 0, "timeline.stats",
                 "negative batch count");
    c.expectNonNeg(out.stats.throughputCi95PerSec,
                   "throughputCi95PerSec", "timeline.stats");
    c.expectNonNeg(out.stats.rtCi95Us, "rtCi95Us", "timeline.stats");
}

void
checkEngineProfile(Checker &c)
{
    const Experiment &exp = c.exp;
    const obs::EngineProfile &p = c.out.engineProfile;

    if (!exp.engineProfile) {
        // Pay-for-use: no knob, no profile (and checkedRun separately
        // pins that flipping the knob leaves outcomeJson bit-equal).
        c.expectTrue(!p.enabled && p.pushes == 0 && p.pops == 0 &&
                         p.sampledEvents == 0 && p.tracks.empty() &&
                         p.edges.empty() && p.dwellUs.count() == 0,
                     "engprof.disabled",
                     "engine profile filled without the knob");
        return;
    }

    c.expectTrue(p.enabled, "engprof.meta",
                 "profile disabled despite engineProfile=true");
    c.expectTrue(p.sampleEvery > 0, "engprof.meta",
                 "sampleEvery=0 on an enabled profile");
    c.expectTrue(!p.tracks.empty() && p.tracks[0].name == "sim",
                 "engprof.meta", "track 0 is not the 'sim' residual");

    // Queue conservation: everything pushed was either executed or is
    // still in the heap at the horizon.
    c.expectEq(static_cast<long>(p.pushes), "engprof.pushes",
               static_cast<long>(p.pops + p.remainingAtEnd),
               "pops + remainingAtEnd", "engprof.conservation");
    c.expectTrue(p.maxHeapSize >= p.remainingAtEnd,
                 "engprof.conservation",
                 "remainingAtEnd=" + std::to_string(p.remainingAtEnd) +
                     " above the observed peak " +
                     std::to_string(p.maxHeapSize));
    c.expectTrue(p.pushes == 0 || p.maxHeapSize >= 1,
                 "engprof.conservation",
                 "pushes recorded but maxHeapSize=0");

    // Subsampling: samples are a subset of executions, and the dwell
    // and depth sketches fill in lockstep (both observe at sampled
    // pushes).
    c.expectTrue(p.sampledEvents <= p.pops, "engprof.sampling",
                 "sampledEvents=" + std::to_string(p.sampledEvents) +
                     " > pops=" + std::to_string(p.pops));
    c.expectTrue(
        p.dwellUs.count() <= static_cast<std::int64_t>(p.pushes),
        "engprof.sampling", "more dwell samples than pushes");
    c.expectEq(static_cast<long>(p.dwellUs.count()),
               "dwellUs.count", static_cast<long>(p.heapDepth.count()),
               "heapDepth.count", "engprof.sampling");
    c.expectTrue(p.dwellUs.count() == 0 || p.dwellUs.min() >= 0,
                 "engprof.sampling", "negative queue dwell time");

    // Attribution: every executed event lands in exactly one track,
    // and every sampled execution in exactly one wall sketch.
    std::uint64_t events = 0;
    std::int64_t wallSamples = 0;
    for (const obs::EngineProfile::Track &t : p.tracks) {
        events += t.events;
        wallSamples += t.wallNs.count();
    }
    c.expectEq(static_cast<long>(events), "sum(track.events)",
               static_cast<long>(p.pops), "pops",
               "engprof.attribution");
    c.expectEq(static_cast<long>(wallSamples),
               "sum(track.wallNs.count)",
               static_cast<long>(p.sampledEvents), "sampledEvents",
               "engprof.attribution");

    // The lookahead graph: per-edge ledgers are internally coherent
    // and deltas are never negative (minPositiveDeltaUs == 0 encodes
    // "every delta on the edge was zero").
    for (const obs::EngineProfile::Edge &e : p.edges) {
        const std::string label = e.src + " -> " + e.dst;
        c.expectTrue(e.count > 0, "engprof.edges",
                     "empty edge " + label);
        c.expectTrue(e.zeroDelta <= e.count, "engprof.edges",
                     "zeroDelta > count on " + label);
        c.expectNonNeg(e.sumDeltaUs, "edge.sumDeltaUs",
                       "engprof.edges");
        const bool anyPositive = e.count > e.zeroDelta;
        c.expectTrue((e.minPositiveDeltaUs > 0) == anyPositive,
                     "engprof.edges",
                     "minPositiveDeltaUs=" + fmt(e.minPositiveDeltaUs) +
                         " inconsistent with count=" +
                         std::to_string(e.count) + " zeroDelta=" +
                         std::to_string(e.zeroDelta) + " on " + label);
        if (anyPositive)
            c.expectLe(e.minPositiveDeltaUs, "edge.minPositiveDeltaUs",
                       e.sumDeltaUs, "edge.sumDeltaUs",
                       "engprof.edges");
    }
}

/**
 * The pending-event-set policy's structural ledger (queue.* family,
 * single-run half).  Only the profiler sees the structure, so these
 * run when it is on; the differential half (queue.kindIdentity) lives
 * in checkedRun().
 */
void
checkQueuePolicy(Checker &c)
{
    const Experiment &exp = c.exp;
    const obs::EngineProfile &p = c.out.engineProfile;
    if (!exp.engineProfile)
        return;

    c.expectEq(static_cast<long>(p.queueKind), "profile.queue.kind",
               static_cast<long>(exp.queueKind), "exp.queueKind",
               "queue.profile");
    if (exp.queueKind == 1) {
        // The ladder never sifts: its cost model is Bottom sorts and
        // rung restructuring, not heap comparisons.
        c.expectEq(static_cast<long>(p.comparisons),
                   "profile.comparisons", 0L, "0 (ladder)",
                   "queue.profile");
        // An event is Bottom-sorted at most once in its residence,
        // and only nonempty buckets are sorted.
        c.expectTrue(p.sortedEvents <= p.pushes, "queue.profile",
                     "sortedEvents=" + std::to_string(p.sortedEvents) +
                         " > pushes=" + std::to_string(p.pushes));
        c.expectTrue(p.bottomSorts <= p.sortedEvents, "queue.profile",
                     "bottomSorts=" + std::to_string(p.bottomSorts) +
                         " > sortedEvents=" +
                         std::to_string(p.sortedEvents));
        // Each Top transfer moves at least one event, and a bucket
        // never outgrows the peak pending population.
        c.expectTrue(p.topTransfers <= p.pushes, "queue.profile",
                     "topTransfers=" +
                         std::to_string(p.topTransfers) +
                         " > pushes=" + std::to_string(p.pushes));
        c.expectTrue(p.maxBucket <= p.maxHeapSize, "queue.profile",
                     "maxBucket=" + std::to_string(p.maxBucket) +
                         " > maxHeapSize=" +
                         std::to_string(p.maxHeapSize));
    } else {
        c.expectTrue(p.topTransfers == 0 && p.rungSpawns == 0 &&
                         p.bottomSorts == 0 && p.sortedEvents == 0 &&
                         p.maxBucket == 0,
                     "queue.profile",
                     "ladder ledger nonzero on a heap run");
    }
    // Batched events are a subset of pushes, and only nonempty
    // commits are counted.
    c.expectTrue(p.batchedEvents <= p.pushes, "queue.profile",
                 "batchedEvents=" + std::to_string(p.batchedEvents) +
                     " > pushes=" + std::to_string(p.pushes));
    c.expectTrue(p.batchCommits <= p.batchedEvents, "queue.profile",
                 "batchCommits=" + std::to_string(p.batchCommits) +
                     " > batchedEvents=" +
                     std::to_string(p.batchedEvents));
}

/**
 * The topology layer's structural ledger (topo.* family).  Flow
 * conservation is *exact* on every link and every router: a packet
 * the layer accepts either came out the other side, was accounted as
 * dropped, or is still in flight at the horizon — nothing vanishes.
 */
void
checkTopo(Checker &c)
{
    const Experiment &exp = c.exp;
    const topo::Ledger &t = c.out.topo;

    if (!exp.topo.enabled()) {
        // Pay-for-use: no topology, no ledger.
        c.expectTrue(!t.enabled && t.links.empty() &&
                         t.routers.empty(),
                     "topo.bypass",
                     "topology ledger filled without a topology");
        return;
    }

    c.expectTrue(t.enabled, "topo.enabled",
                 "ledger disabled despite an enabled topology");

    // Element counts are a pure function of the topology shape.
    const std::size_t n = static_cast<std::size_t>(exp.topo.nodes);
    const std::size_t segs =
        static_cast<std::size_t>(exp.topo.effectiveSegments());
    std::size_t wantLinks = 0;
    std::size_t wantRouters = 0;
    switch (exp.topo.kind) {
    case 0: // full mesh: one directed link per ordered pair
        wantLinks = n * (n - 1);
        break;
    case 1: // star: ingress + egress per node, one switch
        wantLinks = 2 * n;
        wantRouters = 1;
        break;
    default: // ring segments, bridged by routers when more than one
        wantLinks = segs + (segs > 1 ? segs * (segs - 1) : 0);
        wantRouters = segs > 1 ? segs : 0;
        break;
    }
    c.expectEq(static_cast<long>(t.links.size()), "ledger links",
               static_cast<long>(wantLinks), "topology shape",
               "topo.enabled");
    c.expectEq(static_cast<long>(t.routers.size()), "ledger routers",
               static_cast<long>(wantRouters), "topology shape",
               "topo.enabled");

    const long totalRetrans = c.out.netTotals.retransmissions;
    for (const topo::LinkLedger &l : t.links) {
        const long entries[] = {l.msgsIn,  l.msgsOut,
                                l.bytesIn, l.bytesOut,
                                l.dropped, l.inFlightAtEnd,
                                l.retransmissions, l.queuePeak};
        for (long v : entries)
            c.expectTrue(v >= 0, "topo.nonneg",
                         "negative entry " + std::to_string(v) +
                             " on link " + l.name);
        c.expectTrue(
            l.msgsIn == l.msgsOut + l.dropped + l.inFlightAtEnd,
            "topo.conservation",
            "link " + l.name + ": msgsIn=" +
                std::to_string(l.msgsIn) +
                " != msgsOut+dropped+inFlight=" +
                std::to_string(l.msgsOut + l.dropped +
                               l.inFlightAtEnd));
        c.expectTrue(l.bytesOut <= l.bytesIn, "topo.conservation",
                     "link " + l.name + ": bytesOut=" +
                         std::to_string(l.bytesOut) + " > bytesIn=" +
                         std::to_string(l.bytesIn));
        c.expectTrue(l.queuePeak >= l.inFlightAtEnd,
                     "topo.conservation",
                     "link " + l.name + ": inFlightAtEnd=" +
                         std::to_string(l.inFlightAtEnd) +
                         " above the observed peak " +
                         std::to_string(l.queuePeak));
        // Retransmission attribution never invents traffic: every
        // per-link count is a sub-ledger of the channel total.
        c.expectTrue(l.retransmissions <= totalRetrans,
                     "topo.retransAttribution",
                     "link " + l.name + ": retransmissions=" +
                         std::to_string(l.retransmissions) +
                         " > netTotals.retransmissions=" +
                         std::to_string(totalRetrans));
    }

    for (const topo::RouterLedger &r : t.routers) {
        const long entries[] = {r.received, r.forwarded, r.dropped,
                                r.inFlightAtEnd, r.queuePeak};
        for (long v : entries)
            c.expectTrue(v >= 0, "topo.nonneg",
                         "negative entry " + std::to_string(v) +
                             " on router " + r.name);
        c.expectTrue(
            r.received == r.forwarded + r.dropped + r.inFlightAtEnd,
            "topo.conservation",
            "router " + r.name + ": received=" +
                std::to_string(r.received) +
                " != forwarded+dropped+inFlight=" +
                std::to_string(r.forwarded + r.dropped +
                               r.inFlightAtEnd));
        c.expectTrue(r.queuePeak >= r.inFlightAtEnd,
                     "topo.conservation",
                     "router " + r.name + ": inFlightAtEnd=" +
                         std::to_string(r.inFlightAtEnd) +
                         " above the observed peak " +
                         std::to_string(r.queuePeak));
    }
}

} // namespace

std::string
formatViolations(const std::vector<Violation> &v)
{
    std::string s;
    for (const Violation &viol : v)
        s += viol.invariant + ": " + viol.detail + "\n";
    return s;
}

std::vector<Violation>
checkOutcome(const Experiment &exp, const Outcome &out)
{
    Checker c{exp, out, {}};
    checkMeasurement(c);
    checkConservation(c);
    checkDecomposition(c);
    checkRpc(c);
    checkTimeline(c);
    checkEngineProfile(c);
    checkQueuePolicy(c);
    checkTopo(c);
    return std::move(c.v);
}

std::vector<Violation>
checkSketchAccuracy(const metrics::Registry &reg)
{
    std::vector<Violation> v;
    for (const auto &[name, s] : reg.allSketches()) {
        const auto hit = reg.allHistograms().find(name);
        if (hit == reg.allHistograms().end())
            continue;
        const metrics::Histogram &h = hit->second;
        // Same stream: the simulator feeds each sample to both.
        if (s.count() != h.count() ||
            std::fabs(s.sum() - h.sum()) > 1e-6 *
                std::max(1.0, std::fabs(h.sum())) ||
            s.min() != h.min() || s.max() != h.max()) {
            v.push_back({"sketch.stream",
                         "sketch '" + name +
                             "' disagrees with its histogram on "
                             "count/sum/extremes"});
            continue;
        }
        if (s.count() == 0)
            continue;
        // For each quantile, locate the log2 bucket holding the
        // sketch's target rank (floor(q*(n-1)), 0-indexed) — both
        // structures saw the identical stream, so the true sample at
        // that rank lies inside the bucket, and the sketch's
        // alpha-relative estimate must land in the alpha-widened
        // bucket.
        for (double q : {0.50, 0.95, 0.99}) {
            const std::int64_t rank = static_cast<std::int64_t>(
                q * static_cast<double>(s.count() - 1));
            std::int64_t seen = 0;
            int bucket = metrics::Histogram::numBuckets - 1;
            for (int i = 0; i < metrics::Histogram::numBuckets; ++i) {
                seen += h.bucketCount(i);
                if (rank < seen) {
                    bucket = i;
                    break;
                }
            }
            const double lb =
                metrics::Histogram::bucketLowerBound(bucket);
            const double ub = bucket + 1 <
                                      metrics::Histogram::numBuckets
                                  ? metrics::Histogram::bucketLowerBound(
                                        bucket + 1)
                                  : h.max();
            const double a = s.relativeAccuracy();
            const double got = s.quantile(q);
            if (!(got >= lb * (1 - a) - 1e-9 &&
                  got <= ub * (1 + a) + 1e-9))
                v.push_back(
                    {"sketch.quantileBound",
                     "sketch '" + name + "' q=" + fmt(q) + " -> " +
                         fmt(got) + " outside alpha-widened bucket [" +
                         fmt(lb) + ", " + fmt(ub) + "]"});
        }
    }
    return v;
}

CheckResult
checkedRun(const Experiment &exp, const OracleOptions &opts)
{
    CheckResult res;
    res.outcome = runExperiment(exp);
    res.violations = checkOutcome(exp, res.outcome);

    // The topology ledger lives outside outcomeJson (so the N=2
    // degenerate document stays byte-identical to the legacy two-node
    // one); replica comparisons pin the composite so per-link and
    // per-router counters must replicate bit-exactly too.
    const auto fullJson = [](const Outcome &o) {
        return outcomeJson(o) + topoJson(o);
    };
    const std::string baseJson = fullJson(res.outcome);

    if (opts.checkTraceIdentity) {
        trace::Tracer tracer;
        tracer.setEnabled(true);
        metrics::Registry registry;
        const Outcome traced =
            runExperiment(exp, &tracer, &registry);
        if (fullJson(traced) != baseJson)
            res.violations.push_back(
                {"determinism.traceIdentity",
                 "outcomeJson differs between trace-off and trace-on "
                 "runs of the same Experiment"});
        // The traced re-run fills the registry's histogram/sketch
        // pairs; check the sketches against their histograms.
        for (Violation &viol : checkSketchAccuracy(registry))
            res.violations.push_back(std::move(viol));
    }

    if (opts.checkTraceIdentity) {
        // The profiler's pay-for-use contract over the fuzzed
        // surface: flipping engineProfile (either direction) must
        // leave every simulated output bit-identical — the profile
        // itself never enters outcomeJson.
        Experiment flipped = exp;
        flipped.engineProfile = !flipped.engineProfile;
        flipped.engineProfileFile.clear();
        if (fullJson(runExperiment(flipped)) != baseJson)
            res.violations.push_back(
                {"engprof.payForUse",
                 "outcomeJson differs between engineProfile=" +
                     std::string(exp.engineProfile ? "true"
                                                   : "false") +
                     " and its flip"});
    }

    if (opts.checkQueueKindIdentity) {
        // The pending-event-set differential: heap and ladder order
        // by the identical strict (when, seq) total order, so the
        // opposite policy must execute the identical event sequence
        // and land on a bit-identical outcome.  Running it against
        // every fuzzed configuration makes the whole corpus a free
        // oracle for the ladder structure.
        Experiment other = exp;
        other.queueKind = exp.queueKind == 1 ? 0 : 1;
        if (fullJson(runExperiment(other)) != baseJson)
            res.violations.push_back(
                {"queue.kindIdentity",
                 "outcomeJson differs between queueKind=" +
                     std::to_string(exp.queueKind) +
                     " and queueKind=" +
                     std::to_string(other.queueKind) +
                     " (heap/ladder pop sequences diverged)"});
    }

    if (opts.parallelJobs > 1) {
        // Three replicas so the parallel path genuinely runs on the
        // pool (a single-element sweep executes inline).
        const std::vector<Experiment> exps(3, exp);
        const std::vector<Outcome> serial = runSweep(exps, 1);
        const std::vector<Outcome> parallel =
            runSweep(exps, opts.parallelJobs);
        const std::string baseProf =
            res.outcome.engineProfile.deterministicJson();
        for (std::size_t i = 0; i < exps.size(); ++i) {
            const std::string s = fullJson(serial[i]);
            const std::string p = fullJson(parallel[i]);
            if (s != baseJson || p != baseJson) {
                res.violations.push_back(
                    {"determinism.parallelIdentity",
                     "outcomeJson differs across jobs=1 / jobs=" +
                         std::to_string(opts.parallelJobs) +
                         " replica " + std::to_string(i)});
                break;
            }
            // The profile's deterministic subset (counters, dwell
            // sketches of simulated quantities, the lookahead graph)
            // must replicate too; wall-clock values are excluded by
            // construction.
            if (exp.engineProfile &&
                (serial[i].engineProfile.deterministicJson() !=
                     baseProf ||
                 parallel[i].engineProfile.deterministicJson() !=
                     baseProf)) {
                res.violations.push_back(
                    {"engprof.deterministic",
                     "engine-profile deterministicJson differs "
                     "across replicas (jobs=1 / jobs=" +
                         std::to_string(opts.parallelJobs) +
                         ") replica " + std::to_string(i)});
                break;
            }
        }
    }
    return res;
}

} // namespace hsipc::sim::check
