#include "sim/check/experiment_json.hh"

#include <cstdio>
#include <cstdlib>
#include <set>
#include <stdexcept>

#include "common/json.hh"

namespace hsipc::sim::check
{

namespace
{

/**
 * Render a double with enough digits to round-trip exactly through
 * strtod (%.12g, the measurement form, is deliberately lossy).
 */
std::string
exactNumber(double v)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

double
numberField(const JsonValue &v, const char *key)
{
    const JsonValue &f = v.at(key);
    if (f.kind() != JsonValue::Kind::Number)
        throw std::runtime_error(std::string("experiment field '") +
                                 key + "' must be a number");
    return f.asNumber();
}

int
intField(const JsonValue &v, const char *key)
{
    const double d = numberField(v, key);
    const int i = static_cast<int>(d);
    if (static_cast<double>(i) != d)
        throw std::runtime_error(std::string("experiment field '") +
                                 key + "' must be an integer");
    return i;
}

bool
boolField(const JsonValue &v, const char *key)
{
    const JsonValue &f = v.at(key);
    if (f.kind() != JsonValue::Kind::Bool)
        throw std::runtime_error(std::string("experiment field '") +
                                 key + "' must be a boolean");
    return f.asBool();
}

std::string
stringField(const JsonValue &v, const char *key)
{
    const JsonValue &f = v.at(key);
    if (f.kind() != JsonValue::Kind::String)
        throw std::runtime_error(std::string("experiment field '") +
                                 key + "' must be a string");
    return f.asString();
}

} // namespace

std::string
experimentToJson(const Experiment &exp)
{
    std::string doc = "{";
    bool first = true;
    auto field = [&](const char *name, const std::string &rendered) {
        doc += std::string(first ? "" : ",") + "\n  \"" + name +
               "\": " + rendered;
        first = false;
    };
    auto num = [&](const char *name, double v) {
        field(name, exactNumber(v));
    };
    auto integer = [&](const char *name, long v) {
        field(name, std::to_string(v));
    };
    auto boolean = [&](const char *name, bool v) {
        field(name, v ? "true" : "false");
    };

    integer("arch", static_cast<long>(exp.arch));
    boolean("local", exp.local);
    integer("conversations", exp.conversations);
    integer("mixedLocal", exp.mixedLocal);
    integer("mixedRemote", exp.mixedRemote);
    num("computeUs", exp.computeUs);
    integer("hostsPerNode", exp.hostsPerNode);
    boolean("extraCopy", exp.extraCopy);
    num("mpSpeedFactor", exp.mpSpeedFactor);
    integer("kernelBuffers", exp.kernelBuffers);
    num("wireUs", exp.wireUs);
    boolean("useTokenRing", exp.useTokenRing);
    num("ringMbps", exp.ringMbps);
    integer("packetBytes", exp.packetBytes);
    num("warmupUs", exp.warmupUs);
    num("measureUs", exp.measureUs);
    // The seed is a full 64-bit value; a JSON number (double) only
    // holds 53 bits exactly, so it travels as a decimal string.
    field("seed", jsonString(std::to_string(exp.seed)));
    num("lossRate", exp.lossRate);
    num("corruptRate", exp.corruptRate);
    num("duplicateRate", exp.duplicateRate);
    num("reorderRate", exp.reorderRate);
    num("reorderDelayUs", exp.reorderDelayUs);
    num("retransmitTimeoutUs", exp.retransmitTimeoutUs);
    integer("retransmitWindow", exp.retransmitWindow);
    boolean("reliableProtocol", exp.reliableProtocol);
    std::string crashes = "[";
    for (std::size_t i = 0; i < exp.crashSchedule.size(); ++i) {
        const CrashWindow &w = exp.crashSchedule[i];
        crashes += std::string(i ? ", " : "") + "{\"node\": " +
                   std::to_string(w.node) + ", \"startUs\": " +
                   exactNumber(w.startUs) + ", \"endUs\": " +
                   exactNumber(w.endUs) + "}";
    }
    field("crashSchedule", crashes + "]");
    field("traceFile", jsonString(exp.traceFile));
    field("metricsFile", jsonString(exp.metricsFile));
    boolean("decomposeLatency", exp.decomposeLatency);
    integer("arrivalMode", exp.arrivalMode);
    num("arrivalRatePerSec", exp.arrivalRatePerSec);
    num("paretoAlpha", exp.paretoAlpha);
    num("paretoBound", exp.paretoBound);
    num("deadlineUs", exp.deadlineUs);
    integer("retryBudget", exp.retryBudget);
    num("retryBackoffUs", exp.retryBackoffUs);
    num("retryBackoffMaxUs", exp.retryBackoffMaxUs);
    integer("svcQueueCap", exp.svcQueueCap);
    integer("shedPolicy", exp.shedPolicy);
    num("rtoMaxUs", exp.rtoMaxUs);
    num("timelineIntervalUs", exp.timelineIntervalUs);
    field("timelineFile", jsonString(exp.timelineFile));
    num("traceSampleRate", exp.traceSampleRate);
    boolean("engineProfile", exp.engineProfile);
    field("engineProfileFile", jsonString(exp.engineProfileFile));
    integer("queueKind", exp.queueKind);
    integer("expectedPendingEvents", exp.expectedPendingEvents);
    // The topology object appears only when configured, so every
    // pre-topology document (and its golden bytes) is unchanged.
    if (!(exp.topo == topo::Topology{})) {
        std::string t =
            "{\"nodes\": " + std::to_string(exp.topo.nodes) +
            ", \"kind\": " + std::to_string(exp.topo.kind) +
            ", \"linkLatencyUs\": " +
            exactNumber(exp.topo.linkLatencyUs) +
            ", \"linkMbps\": " + exactNumber(exp.topo.linkMbps) +
            ", \"switchLatencyUs\": " +
            exactNumber(exp.topo.switchLatencyUs) +
            ", \"segments\": " + std::to_string(exp.topo.segments) +
            ", \"segMbps\": " + exactNumber(exp.topo.segMbps) +
            ", \"placement\": " + std::to_string(exp.topo.placement) +
            ", \"zipfSkew\": " + exactNumber(exp.topo.zipfSkew) +
            ", \"links\": [";
        for (std::size_t i = 0; i < exp.topo.links.size(); ++i) {
            const topo::TopoLink &l = exp.topo.links[i];
            t += std::string(i ? ", " : "") + "{\"a\": " +
                 std::to_string(l.a) + ", \"b\": " +
                 std::to_string(l.b) + ", \"latencyUs\": " +
                 exactNumber(l.latencyUs) + ", \"mbps\": " +
                 exactNumber(l.mbps) + "}";
        }
        field("topology", t + "]}");
    }
    return doc + "\n}\n";
}

Experiment
experimentFromJson(const JsonValue &v)
{
    if (!v.isObject())
        throw std::runtime_error(
            "experiment document must be a JSON object");

    static const std::set<std::string> known = {
        "arch", "local", "conversations", "mixedLocal", "mixedRemote",
        "computeUs", "hostsPerNode", "extraCopy", "mpSpeedFactor",
        "kernelBuffers", "wireUs", "useTokenRing", "ringMbps",
        "packetBytes", "warmupUs", "measureUs", "seed", "lossRate",
        "corruptRate", "duplicateRate", "reorderRate",
        "reorderDelayUs", "retransmitTimeoutUs", "retransmitWindow",
        "reliableProtocol", "crashSchedule", "traceFile",
        "metricsFile", "decomposeLatency", "arrivalMode",
        "arrivalRatePerSec", "paretoAlpha", "paretoBound",
        "deadlineUs", "retryBudget", "retryBackoffUs",
        "retryBackoffMaxUs", "svcQueueCap", "shedPolicy", "rtoMaxUs",
        "timelineIntervalUs", "timelineFile", "traceSampleRate",
        "engineProfile", "engineProfileFile", "queueKind",
        "expectedPendingEvents", "topology"};
    for (const auto &[key, value] : v.asObject()) {
        if (known.count(key) == 0)
            throw std::runtime_error(
                "unknown experiment field '" + key + "'");
    }

    Experiment exp;
    if (v.has("arch")) {
        const int a = intField(v, "arch");
        if (a < 1 || a > 4)
            throw std::runtime_error(
                "experiment field 'arch' must be 1..4");
        exp.arch = static_cast<models::Arch>(a);
    }
    if (v.has("local"))
        exp.local = boolField(v, "local");
    if (v.has("conversations"))
        exp.conversations = intField(v, "conversations");
    if (v.has("mixedLocal"))
        exp.mixedLocal = intField(v, "mixedLocal");
    if (v.has("mixedRemote"))
        exp.mixedRemote = intField(v, "mixedRemote");
    if (v.has("computeUs"))
        exp.computeUs = numberField(v, "computeUs");
    if (v.has("hostsPerNode"))
        exp.hostsPerNode = intField(v, "hostsPerNode");
    if (v.has("extraCopy"))
        exp.extraCopy = boolField(v, "extraCopy");
    if (v.has("mpSpeedFactor"))
        exp.mpSpeedFactor = numberField(v, "mpSpeedFactor");
    if (v.has("kernelBuffers"))
        exp.kernelBuffers = intField(v, "kernelBuffers");
    if (v.has("wireUs"))
        exp.wireUs = numberField(v, "wireUs");
    if (v.has("useTokenRing"))
        exp.useTokenRing = boolField(v, "useTokenRing");
    if (v.has("ringMbps"))
        exp.ringMbps = numberField(v, "ringMbps");
    if (v.has("packetBytes"))
        exp.packetBytes = intField(v, "packetBytes");
    if (v.has("warmupUs"))
        exp.warmupUs = numberField(v, "warmupUs");
    if (v.has("measureUs"))
        exp.measureUs = numberField(v, "measureUs");
    if (v.has("seed")) {
        const std::string s = stringField(v, "seed");
        char *end = nullptr;
        exp.seed = std::strtoull(s.c_str(), &end, 10);
        if (end == s.c_str() || *end != '\0')
            throw std::runtime_error(
                "experiment field 'seed' must be a decimal string");
    }
    if (v.has("lossRate"))
        exp.lossRate = numberField(v, "lossRate");
    if (v.has("corruptRate"))
        exp.corruptRate = numberField(v, "corruptRate");
    if (v.has("duplicateRate"))
        exp.duplicateRate = numberField(v, "duplicateRate");
    if (v.has("reorderRate"))
        exp.reorderRate = numberField(v, "reorderRate");
    if (v.has("reorderDelayUs"))
        exp.reorderDelayUs = numberField(v, "reorderDelayUs");
    if (v.has("retransmitTimeoutUs"))
        exp.retransmitTimeoutUs = numberField(v, "retransmitTimeoutUs");
    if (v.has("retransmitWindow"))
        exp.retransmitWindow = intField(v, "retransmitWindow");
    if (v.has("reliableProtocol"))
        exp.reliableProtocol = boolField(v, "reliableProtocol");
    if (v.has("crashSchedule")) {
        for (const JsonValue &wv : v.at("crashSchedule").asArray()) {
            CrashWindow w;
            w.node = intField(wv, "node");
            w.startUs = numberField(wv, "startUs");
            w.endUs = numberField(wv, "endUs");
            exp.crashSchedule.push_back(w);
        }
    }
    if (v.has("traceFile"))
        exp.traceFile = stringField(v, "traceFile");
    if (v.has("metricsFile"))
        exp.metricsFile = stringField(v, "metricsFile");
    if (v.has("decomposeLatency"))
        exp.decomposeLatency = boolField(v, "decomposeLatency");
    if (v.has("arrivalMode"))
        exp.arrivalMode = intField(v, "arrivalMode");
    if (v.has("arrivalRatePerSec"))
        exp.arrivalRatePerSec = numberField(v, "arrivalRatePerSec");
    if (v.has("paretoAlpha"))
        exp.paretoAlpha = numberField(v, "paretoAlpha");
    if (v.has("paretoBound"))
        exp.paretoBound = numberField(v, "paretoBound");
    if (v.has("deadlineUs"))
        exp.deadlineUs = numberField(v, "deadlineUs");
    if (v.has("retryBudget"))
        exp.retryBudget = intField(v, "retryBudget");
    if (v.has("retryBackoffUs"))
        exp.retryBackoffUs = numberField(v, "retryBackoffUs");
    if (v.has("retryBackoffMaxUs"))
        exp.retryBackoffMaxUs = numberField(v, "retryBackoffMaxUs");
    if (v.has("svcQueueCap"))
        exp.svcQueueCap = intField(v, "svcQueueCap");
    if (v.has("shedPolicy"))
        exp.shedPolicy = intField(v, "shedPolicy");
    if (v.has("rtoMaxUs"))
        exp.rtoMaxUs = numberField(v, "rtoMaxUs");
    if (v.has("timelineIntervalUs"))
        exp.timelineIntervalUs = numberField(v, "timelineIntervalUs");
    if (v.has("timelineFile"))
        exp.timelineFile = stringField(v, "timelineFile");
    if (v.has("traceSampleRate"))
        exp.traceSampleRate = numberField(v, "traceSampleRate");
    if (v.has("engineProfile"))
        exp.engineProfile = boolField(v, "engineProfile");
    if (v.has("engineProfileFile"))
        exp.engineProfileFile = stringField(v, "engineProfileFile");
    if (v.has("queueKind"))
        exp.queueKind = intField(v, "queueKind");
    if (v.has("expectedPendingEvents"))
        exp.expectedPendingEvents =
            intField(v, "expectedPendingEvents");
    if (v.has("topology")) {
        const JsonValue &tv = v.at("topology");
        if (!tv.isObject())
            throw std::runtime_error(
                "experiment field 'topology' must be an object");
        static const std::set<std::string> topoKnown = {
            "nodes",    "kind",    "linkLatencyUs",
            "linkMbps", "switchLatencyUs", "segments",
            "segMbps",  "placement", "zipfSkew", "links"};
        for (const auto &[key, value] : tv.asObject()) {
            if (topoKnown.count(key) == 0)
                throw std::runtime_error(
                    "unknown topology field '" + key + "'");
        }
        if (tv.has("nodes"))
            exp.topo.nodes = intField(tv, "nodes");
        if (tv.has("kind"))
            exp.topo.kind = intField(tv, "kind");
        if (tv.has("linkLatencyUs"))
            exp.topo.linkLatencyUs = numberField(tv, "linkLatencyUs");
        if (tv.has("linkMbps"))
            exp.topo.linkMbps = numberField(tv, "linkMbps");
        if (tv.has("switchLatencyUs"))
            exp.topo.switchLatencyUs =
                numberField(tv, "switchLatencyUs");
        if (tv.has("segments"))
            exp.topo.segments = intField(tv, "segments");
        if (tv.has("segMbps"))
            exp.topo.segMbps = numberField(tv, "segMbps");
        if (tv.has("placement"))
            exp.topo.placement = intField(tv, "placement");
        if (tv.has("zipfSkew"))
            exp.topo.zipfSkew = numberField(tv, "zipfSkew");
        if (tv.has("links")) {
            for (const JsonValue &lv : tv.at("links").asArray()) {
                if (!lv.isObject())
                    throw std::runtime_error(
                        "topology link entries must be objects");
                static const std::set<std::string> linkKnown = {
                    "a", "b", "latencyUs", "mbps"};
                for (const auto &[key, value] : lv.asObject()) {
                    if (linkKnown.count(key) == 0)
                        throw std::runtime_error(
                            "unknown topology link field '" + key +
                            "'");
                }
                if (!lv.has("a") || !lv.has("b"))
                    throw std::runtime_error(
                        "topology link entries need both "
                        "'a' and 'b'");
                topo::TopoLink l;
                l.a = intField(lv, "a");
                l.b = intField(lv, "b");
                if (lv.has("latencyUs"))
                    l.latencyUs = numberField(lv, "latencyUs");
                if (lv.has("mbps"))
                    l.mbps = numberField(lv, "mbps");
                exp.topo.links.push_back(l);
            }
        }
    }
    return exp;
}

Experiment
experimentFromJsonText(const std::string &text)
{
    return experimentFromJson(parseJson(text));
}

} // namespace hsipc::sim::check
