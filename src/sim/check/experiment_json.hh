/**
 * @file
 * Experiment ⇄ JSON round-trip serialization.
 *
 * The fuzzer's minimized failing configurations must be replayable
 * artifacts: a `fuzz_repro.json` checked into a bug report has to
 * reconstruct the Experiment *exactly* (bit-exact doubles, exact
 * 64-bit seed), or the repro would chase a different random sequence
 * than the failure it documents.  Doubles are therefore rendered
 * with %.17g (shortest-round-trippable precision, unlike the %.12g
 * used for human-facing measurement output) and the seed travels as
 * a decimal string.
 *
 * Parsing is strict about unknown keys — a typo in a hand-edited
 * repro fails loudly instead of silently running the default knob.
 * Missing keys keep their Experiment defaults, so old repro files
 * stay loadable as the Experiment struct grows.
 */

#ifndef HSIPC_SIM_CHECK_EXPERIMENT_JSON_HH
#define HSIPC_SIM_CHECK_EXPERIMENT_JSON_HH

#include <string>

#include "common/json_value.hh"
#include "sim/kernel/ipc_sim.hh"

namespace hsipc::sim::check
{

/** Serialize every field of @p exp as a JSON object. */
std::string experimentToJson(const Experiment &exp);

/**
 * Rebuild an Experiment from a parsed JSON object.  Throws
 * std::runtime_error on unknown keys or ill-typed values.
 */
Experiment experimentFromJson(const JsonValue &v);

/** Parse @p text and rebuild the Experiment it describes. */
Experiment experimentFromJsonText(const std::string &text);

} // namespace hsipc::sim::check

#endif // HSIPC_SIM_CHECK_EXPERIMENT_JSON_HH
