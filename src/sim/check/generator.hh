/**
 * @file
 * Seeded random Experiment generator for the property-based fuzzer.
 *
 * Each draw covers the simulator's whole configuration surface — all
 * four architectures, classic local/non-local and mixed workloads,
 * multiprocessor nodes, MP speed ablations, both media, the full
 * fault/protocol knob set, and the observational toggles (latency
 * decomposition; tracing is exercised separately by the oracle's
 * bit-identity check) — under validity constraints that make every
 * generated configuration runnable: probabilities stay in [0, 1],
 * crash windows are well-formed, lie inside the simulated horizon and
 * name an existing node, horizons are short enough that a fuzz run of
 * hundreds of experiments finishes in seconds.
 *
 * The mapping seed -> Experiment is pure: generate(i) depends only on
 * the generator's base seed and i, so a fuzz failure is reproducible
 * from two integers before the shrinker even starts.
 */

#ifndef HSIPC_SIM_CHECK_GENERATOR_HH
#define HSIPC_SIM_CHECK_GENERATOR_HH

#include <cstdint>

#include "sim/kernel/ipc_sim.hh"

namespace hsipc::sim::check
{

/**
 * The canonical small configuration the fuzzer perturbs and the
 * shrinker simplifies toward: every default Experiment knob except
 * horizons shortened (warmup 2 ms, measurement 40 ms of simulated
 * time) so a single run costs milliseconds of wall clock.  A knob
 * "counts" in a repro's size when it differs from this base.
 */
Experiment baseExperiment();

/** Draws random runnable Experiments; deterministic in the seed. */
class ExperimentGenerator
{
  public:
    explicit ExperimentGenerator(std::uint64_t baseSeed)
        : baseSeed(baseSeed)
    {}

    /**
     * The @p index-th random Experiment of this generator's stream.
     * Pure function of (baseSeed, index).
     */
    Experiment generate(std::uint64_t index) const;

  private:
    std::uint64_t baseSeed;
};

} // namespace hsipc::sim::check

#endif // HSIPC_SIM_CHECK_GENERATOR_HH
