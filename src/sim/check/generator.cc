#include "sim/check/generator.hh"

#include <cmath>

#include "common/rng.hh"

namespace hsipc::sim::check
{

Experiment
baseExperiment()
{
    Experiment exp;
    exp.warmupUs = 2000;
    exp.measureUs = 40000;
    return exp;
}

namespace
{

/**
 * Mix the generator seed with the stream index so neighbouring
 * indices produce statistically unrelated draws (a bare xoshiro
 * seeded with base+index would correlate the low bits).
 */
std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t index)
{
    std::uint64_t z = base + 0x9e3779b97f4a7c15ull * (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Round to one decimal so repros read well; validity is unaffected. */
double
coarse(double v)
{
    return std::round(v * 10.0) / 10.0;
}

} // namespace

Experiment
ExperimentGenerator::generate(std::uint64_t index) const
{
    Rng rng(deriveSeed(baseSeed, index));
    Experiment exp = baseExperiment();

    exp.arch = static_cast<models::Arch>(1 + rng.below(4));

    // Workload: classic local, classic remote, or mixed (two-node).
    const double workload = rng.uniform();
    if (workload < 0.4) {
        exp.local = true;
        exp.conversations = 1 + static_cast<int>(rng.below(6));
    } else if (workload < 0.8) {
        exp.local = false;
        exp.conversations = 1 + static_cast<int>(rng.below(6));
    } else {
        exp.mixedLocal = static_cast<int>(rng.below(4));
        exp.mixedRemote = static_cast<int>(rng.below(4));
        if (exp.mixedLocal + exp.mixedRemote == 0)
            exp.mixedRemote = 1;
    }
    const bool twoNodes =
        !exp.local || exp.mixedLocal + exp.mixedRemote > 0;

    if (rng.chance(0.5))
        exp.computeUs = coarse(rng.uniform(0, 4000));
    if (rng.chance(0.25))
        exp.hostsPerNode = 2 + static_cast<int>(rng.below(2));
    exp.extraCopy = rng.chance(0.1);
    if (rng.chance(0.25))
        exp.mpSpeedFactor = coarse(rng.uniform(0.5, 4.0));
    if (rng.chance(0.2)) // small pools exercise buffer stalls
        exp.kernelBuffers = 1 + static_cast<int>(rng.below(8));
    if (rng.chance(0.5))
        exp.wireUs = coarse(rng.uniform(0, 500));
    if (twoNodes && rng.chance(0.25)) {
        exp.useTokenRing = true;
        exp.ringMbps = coarse(rng.uniform(1.0, 10.0));
    }
    if (rng.chance(0.5))
        exp.packetBytes = 16 + static_cast<int>(rng.below(241));
    exp.warmupUs = coarse(rng.uniform(500, 4000));
    exp.measureUs = coarse(rng.uniform(10000, 80000));
    exp.seed = rng.next();

    // Fault and protocol knobs only matter on two-node runs (the
    // stack is per-channel), but generating them for local runs too
    // checks that they are genuinely inert there.
    if (rng.chance(twoNodes ? 0.5 : 0.1)) {
        auto rate = [&]() {
            return rng.chance(0.5) ? coarse(rng.uniform(0, 0.3)) : 0.0;
        };
        exp.lossRate = rate();
        exp.corruptRate = rate();
        exp.duplicateRate = rate();
        exp.reorderRate = rate();
        exp.reorderDelayUs = coarse(rng.uniform(10, 1000));
        exp.retransmitTimeoutUs = coarse(rng.uniform(500, 20000));
        exp.retransmitWindow = 1 + static_cast<int>(rng.below(16));
    }
    if (rng.chance(0.15))
        exp.reliableProtocol = true;
    if (twoNodes && rng.chance(0.15)) {
        const int windows = 1 + static_cast<int>(rng.below(2));
        const double horizon = exp.warmupUs + exp.measureUs;
        for (int i = 0; i < windows; ++i) {
            CrashWindow w;
            w.node = static_cast<int>(rng.below(2));
            w.startUs = coarse(rng.uniform(0, horizon * 0.8));
            w.endUs = w.startUs +
                      coarse(rng.uniform(500, horizon * 0.2));
            exp.crashSchedule.push_back(w);
        }
    }
    if (rng.chance(0.2))
        exp.rtoMaxUs = coarse(rng.uniform(1000, 200000));

    // Robustness layer (ISSUE 6).  Every sampled value must remain
    // valid when any other robustness knob is independently reset to
    // its default — the greedy shrinker does exactly that — so the
    // backoff ranges are chosen to stay ordered against both the
    // defaults and each other.
    const bool mixed = exp.mixedLocal + exp.mixedRemote > 0;
    if (!mixed && rng.chance(0.35)) {
        exp.arrivalMode = 1 + static_cast<int>(rng.below(2));
        exp.arrivalRatePerSec = coarse(rng.uniform(200, 20000));
        if (exp.arrivalMode == 2) {
            exp.paretoAlpha = coarse(rng.uniform(1.1, 2.5));
            exp.paretoBound = coarse(rng.uniform(10, 5000));
        }
    }
    if (rng.chance(0.35))
        exp.deadlineUs = coarse(rng.uniform(500, 30000));
    if (rng.chance(0.35)) {
        exp.retryBudget = 1 + static_cast<int>(rng.below(4));
        exp.retryBackoffUs = coarse(rng.uniform(100, 8000));
        exp.retryBackoffMaxUs = coarse(rng.uniform(8000, 64000));
    }
    if (rng.chance(0.35)) {
        exp.svcQueueCap = 1 + static_cast<int>(rng.below(32));
        exp.shedPolicy = static_cast<int>(rng.below(3));
    }

    exp.decomposeLatency = rng.chance(0.3);

    // Time-resolved observability (ISSUE 7).  Coarse intervals keep
    // bin counts small; the oracle checks every counter series
    // integrates exactly to its whole-run ledger counterpart.
    if (rng.chance(0.35))
        exp.timelineIntervalUs = coarse(rng.uniform(500, 10000));
    if (rng.chance(0.25))
        exp.traceSampleRate = coarse(rng.uniform(0.1, 1.0));

    // Engine self-profiling (ISSUE 8): the engprof.* family checks
    // the profile's internal ledgers, and checkedRun pins that
    // flipping the knob never changes outcomeJson.  The file knob
    // stays unset — fuzz runs must not write artifacts.
    exp.engineProfile = rng.chance(0.25);

    // Pending-event-set policy (ISSUE 9): half the corpus runs the
    // ladder queue, and checkedRun's queue.kindIdentity re-run pins
    // outcomeJson bit-identity against the opposite policy either
    // way.  The reservation hint is non-semantic by construction;
    // sampling it occasionally checks exactly that.
    exp.queueKind = rng.chance(0.5) ? 1 : 0;
    if (rng.chance(0.2))
        exp.expectedPendingEvents =
            256 << rng.below(6); // 256 .. 8192

    // N-node topology (ISSUE 10), sampled *last* so every earlier
    // draw keeps its historical value on existing corpus indices.
    // The layer supersedes the classic two-node layout and is
    // incompatible with mixed workloads and the legacy ring knob
    // (runExperiment validates both), so those corners stay off.
    if (!mixed && !exp.useTokenRing && rng.chance(0.3)) {
        static const int kNodeCounts[] = {2, 2, 3,  3,  4,  4, 5,
                                          6, 8, 12, 16, 24, 32};
        exp.topo.nodes = kNodeCounts[rng.below(13)];
        exp.topo.kind = static_cast<int>(rng.below(3));
        if (rng.chance(0.5))
            exp.topo.linkLatencyUs = coarse(rng.uniform(0, 500));
        if (rng.chance(0.35))
            exp.topo.linkMbps = coarse(rng.uniform(1.0, 100.0));
        if (exp.topo.kind != 0 && rng.chance(0.5))
            exp.topo.switchLatencyUs = coarse(rng.uniform(0, 200));
        if (exp.topo.kind == 2) {
            exp.topo.segments = 1 + static_cast<int>(rng.below(4));
            exp.topo.segMbps = coarse(rng.uniform(1.0, 10.0));
        }
        exp.topo.placement = static_cast<int>(rng.below(4));
        if (exp.topo.placement == 3)
            exp.topo.zipfSkew = coarse(rng.uniform(0.5, 2.0));
        // Mesh link overrides: a few directed pairs with their own
        // latency/bandwidth (the mesh ignores them on other kinds,
        // and they stay valid however the shrinker resets knobs).
        if (exp.topo.kind == 0 && rng.chance(0.25)) {
            const int overrides = 1 + static_cast<int>(rng.below(3));
            for (int i = 0; i < overrides; ++i) {
                topo::TopoLink l;
                l.a = static_cast<int>(rng.below(exp.topo.nodes));
                l.b = static_cast<int>(rng.below(exp.topo.nodes));
                if (l.b == l.a)
                    l.b = (l.a + 1) % exp.topo.nodes;
                l.latencyUs = coarse(rng.uniform(0, 1000));
                if (rng.chance(0.5))
                    l.mbps = coarse(rng.uniform(1.0, 100.0));
                exp.topo.links.push_back(l);
            }
        }
    }
    return exp;
}

} // namespace hsipc::sim::check
