#include "sim/check/test_hooks.hh"

namespace hsipc::sim::check
{

TestHooks &
testHooks()
{
    static TestHooks hooks;
    return hooks;
}

} // namespace hsipc::sim::check
