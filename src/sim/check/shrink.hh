/**
 * @file
 * Failing-configuration minimization (QuickCheck-style shrinking).
 *
 * A fuzz failure usually arrives wearing a dozen knobs it does not
 * need.  shrinkExperiment() greedily simplifies a failing Experiment
 * toward baseExperiment(): every pass tries, knob by knob in a fixed
 * order, to reset the knob to its base value outright, and for
 * numeric knobs that refuse, bisects between the base value and the
 * current one for the closest-to-base value that still fails.  Crash
 * schedules shrink by dropping windows.  A candidate is accepted only
 * when the caller's predicate confirms it still fails, so the result
 * — while not globally minimal (greedy, single-knob moves) — is a
 * locally minimal repro: resetting any single knob further makes the
 * failure vanish.
 *
 * The predicate decides what "still fails" means; passing "same
 * invariant id as the original failure" keeps the shrink anchored to
 * one bug instead of hill-climbing onto a different one.
 */

#ifndef HSIPC_SIM_CHECK_SHRINK_HH
#define HSIPC_SIM_CHECK_SHRINK_HH

#include <functional>
#include <string>
#include <vector>

#include "sim/kernel/ipc_sim.hh"

namespace hsipc::sim::check
{

/** True when the candidate still exhibits the failure of interest. */
using FailurePredicate = std::function<bool(const Experiment &)>;

/** Names of the knobs on which @p exp differs from baseExperiment(). */
std::vector<std::string> knobDiff(const Experiment &exp);

/** How many knobs differ from baseExperiment(). */
int knobDelta(const Experiment &exp);

/** Outcome of a shrink. */
struct ShrinkResult
{
    Experiment minimal;
    int knobsChanged = 0; //!< knobDelta(minimal)
    int runsUsed = 0;     //!< predicate evaluations spent
};

/**
 * Minimize @p failing (for which @p stillFails must hold) using at
 * most @p maxRuns predicate evaluations.
 */
ShrinkResult shrinkExperiment(const Experiment &failing,
                              const FailurePredicate &stillFails,
                              int maxRuns = 400);

} // namespace hsipc::sim::check

#endif // HSIPC_SIM_CHECK_SHRINK_HH
