/**
 * @file
 * Differential validation: three independent engines, one workload.
 *
 * For fault-free local-conversation configurations the repository has
 * three ways to predict steady-state throughput that share no code
 * beyond the per-architecture stage means: the discrete-event
 * simulator (sim/kernel), the exact GTPN solution (reachability graph
 * + embedded Markov chain, core/models/solution.hh), and exact Mean
 * Value Analysis of the product-form network (core/models/mva.hh).
 * Where all three are applicable they must agree within stated
 * tolerances; a fuzz draw that lands in the eligible subset is
 * cross-checked automatically.
 *
 * The tolerances are asymmetric by construction.  The GTPN and the
 * simulator model the same rendezvous semantics, but the GTPN assumes
 * processor sharing where the simulator binds tasks to hosts and
 * runs geometric stage times against the model's deterministic-ish
 * mix — the §6.5/§6.8 validation precedent accepts ~12% there.  MVA
 * additionally assumes independent product-form stations, so it gets
 * a wider band.  The bottleneck cross-check only fires when both
 * sides are decisive (shares clearly separated); near crossover the
 * engines may legitimately disagree on which processor saturates
 * first.
 */

#ifndef HSIPC_SIM_CHECK_DIFFERENTIAL_HH
#define HSIPC_SIM_CHECK_DIFFERENTIAL_HH

#include <vector>

#include "sim/check/invariants.hh"

namespace hsipc::sim::check
{

/** Eligibility bounds and agreement tolerances. */
struct DifferentialOptions
{
    /**
     * Relative DES-vs-exact-GTPN throughput tolerance.  Empirically
     * the ratio ranges over ~[0.84, 1.17] on a grid spanning the
     * eligible space (worst at N=3 with large compute, where the
     * GTPN's processor sharing beats the simulator's static task
     * binding — the §6.8 effect); 0.25 leaves headroom over that
     * structural gap while still catching anything resembling a 2x
     * accounting error.
     */
    double gtpnRelTolerance = 0.25;

    /**
     * Relative DES-vs-MVA throughput tolerance — slightly wider: MVA
     * additionally assumes independent product-form stations
     * (observed ratio range ~[0.85, 1.20]).
     */
    double mvaRelTolerance = 0.30;

    /**
     * Horizon override for the comparison run: the fuzzing horizons
     * (tens of simulated ms) are too short for steady state, so the
     * differential re-runs the config with these windows.
     */
    double warmupUs = 20000;
    double measureUs = 400000;

    /**
     * Eligible-subset bounds; beyond them the exact solvers' state
     * spaces grow or the workload leaves the models' assumptions.
     */
    int maxConversations = 3;
    double maxComputeUs = 4000;

    /**
     * The bottleneck cross-check fires only when both engines are
     * decisive: the larger share exceeds the smaller by this factor
     * on both the model and the trace side.
     */
    double decisiveRatio = 1.3;
};

/**
 * True when @p exp is in the subset all three engines can model:
 * classic local workload, one host per node at unit MP speed, no
 * extra copy, fault-free with the protocol off, and small enough for
 * the exact solvers.
 */
bool differentialEligible(const Experiment &exp,
                          const DifferentialOptions &opts =
                              DifferentialOptions());

/**
 * Run the three engines on @p exp (must be eligible) and return the
 * disagreements as violations ("differential.gtpn",
 * "differential.mva", "differential.bottleneck"), empty when all
 * agree.
 */
std::vector<Violation>
differentialCheck(const Experiment &exp,
                  const DifferentialOptions &opts =
                      DifferentialOptions());

} // namespace hsipc::sim::check

#endif // HSIPC_SIM_CHECK_DIFFERENTIAL_HH
