#include "sim/kernel/ipc_sim.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <deque>
#include <limits>
#include <utility>
#include <vector>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/obs/trace_sample.hh"
#include "common/rng.hh"
#include "sim/check/test_hooks.hh"
#include "sim/des/event_queue.hh"
#include "sim/des/resource.hh"
#include "sim/net/faults.hh"
#include "sim/net/reliable.hh"
#include "sim/node/costs.hh"
#include "sim/node/processor.hh"
#include "sim/node/token_ring.hh"
#include "sim/topo/network.hh"

namespace hsipc::sim
{

using models::Arch;

namespace
{

/** The 40-byte copy added by the validation configuration (§6.8). */
constexpr double extraCopyUs = 220.0;

// Robustness-layer kernel costs: microseconds of communication-
// processor time per event, each touching a few kernel-buffer words.
// They are deliberately small next to the §6.3 path costs —
// robustness is bookkeeping, not data movement — but they are real
// work, charged to the host on Architecture I and the MP on II-IV.
constexpr double rpcAdmitUs = 20.0;  //!< admission check per attempt
constexpr double rpcShedUs = 10.0;   //!< rejecting/evicting an attempt
constexpr double rpcDedupUs = 15.0;  //!< suppressing a duplicate
constexpr double rpcReplayUs = 40.0; //!< replaying a cached reply
constexpr double rpcRetryUs = 30.0;  //!< client-side retry dispatch
constexpr double rpcExpireUs = 15.0; //!< tearing down at the deadline
constexpr double rpcOrphanUs = 10.0; //!< discarding an orphaned reply
constexpr int rpcKbAccesses = 4;     //!< buffer accesses per rpc event

/** One request attempt waiting in a node's service queue. */
struct QueueEntry
{
    int conv;       //!< conversation whose request this is
    long rid;       //!< request id of the attempt (0 in closed runs)
    long msg;       //!< lifetime id of the admitted attempt
    Tick enqueueAt; //!< when it joined the queue
};

/** One node of the distributed system. */
struct Node
{
    Node(EventQueue &eq, const std::string &prefix, int hosts,
         bool coproc, bool split_bus, trace::Tracer *tracer,
         trace::CausalLog *causal, obs::EngineProfiler *prof)
        : busTcb(eq, prefix + ".busTcb"),
          busKb(eq, prefix + ".busKb"), nicIn(eq, prefix + ".nicIn"),
          nicOut(eq, prefix + ".nicOut"), splitBus(split_bus),
          svcName(prefix + ".svc")
    {
        for (int h = 0; h < hosts; ++h)
            this->hosts.emplace_back(
                std::make_unique<Processor>(eq, prefix + ".host" +
                                            std::to_string(h)));
        if (coproc)
            mp = std::make_unique<Processor>(eq, prefix + ".mp");

        // Track registration order fixes the trace layout: hosts,
        // MP, bus partitions, DMA engines, then the service queue.
        if (tracer) {
            for (auto &h : this->hosts)
                h->attachTracer(tracer);
            if (mp)
                mp->attachTracer(tracer);
            busTcb.attachTracer(tracer);
            if (split_bus)
                busKb.attachTracer(tracer);
            nicIn.attachTracer(tracer);
            nicOut.attachTracer(tracer);
            svcTrack = tracer->track(prefix + ".svc");
        }
        if (causal) {
            for (auto &h : this->hosts)
                h->attachCausalLog(causal);
            if (mp)
                mp->attachCausalLog(causal);
            busTcb.attachCausalLog(causal);
            if (split_bus)
                busKb.attachCausalLog(causal);
            nicIn.attachCausalLog(causal);
            nicOut.attachCausalLog(causal);
        }
        if (prof) {
            for (auto &h : this->hosts)
                h->attachProfiler(prof);
            if (mp)
                mp->attachProfiler(prof);
            busTcb.attachProfiler(prof);
            if (split_bus)
                busKb.attachProfiler(prof);
            nicIn.attachProfiler(prof);
            nicOut.attachProfiler(prof);
        }
    }

    /** The processor executing communication processing. */
    Processor &
    commProc()
    {
        return mp ? *mp : *hosts[0];
    }

    std::vector<std::unique_ptr<Processor>> hosts;
    std::unique_ptr<Processor> mp;
    Resource busTcb;
    Resource busKb;
    Processor nicIn;
    Processor nicOut;
    bool splitBus;

    // Kernel state: the node's service queue (pending request
    // attempts and waiting server ids) plus the kernel-buffer pool.
    std::deque<QueueEntry> pendingMsgs;
    std::deque<int> waitingServers;
    int freeBuffers = 0;
    std::deque<int> buffersWaiting; //!< clients stalled for a buffer
    int svcTrack = -1; //!< trace track of the service queue
    std::string svcName; //!< causal-log resource name of the queue
};

/** Build the injector's fault model from the experiment knobs. */
FaultPlan
makePlan(const Experiment &exp)
{
    FaultPlan p;
    p.dropRate = exp.lossRate;
    p.corruptRate = exp.corruptRate;
    p.duplicateRate = exp.duplicateRate;
    p.reorderRate = exp.reorderRate;
    p.reorderDelayUs = exp.reorderDelayUs;
    p.crashes = exp.crashSchedule;
    return p;
}

/** The whole simulation. */
class Sim
{
  public:
    Sim(const Experiment &exp, trace::Tracer *extTracer,
        metrics::Registry *extMetrics,
        obs::EngineProfiler *extEngProf)
        : exp(exp), rng(exp.seed),
          // The injector draws from its own stream so that enabling
          // faults never perturbs the workload's random sequence.
          injector(makePlan(exp), exp.seed ^ 0xFA017D0BEEFull),
          // Likewise the robustness layer: its arrival gaps and retry
          // jitter come from a third stream, and with every knob at
          // its default the layer draws nothing at all.
          robust(robustnessEnabled(exp)),
          robustRng(exp.seed ^ 0xB0B57EC0DEull),
          // The pending-event set: policy and reservation are
          // experiment knobs (strictly non-semantic — both policies
          // pop the identical (when, seq) order, pinned by the fuzz
          // oracle's queue.* family).
          eq(static_cast<QueueKind>(exp.queueKind),
             static_cast<std::size_t>(exp.expectedPendingEvents))
    {
        // Planted defect for the fuzzer's self-test: reverse the
        // ladder's FIFO tiebreak so the queue.* differential has a
        // real divergence to catch (see sim/check/test_hooks.hh).
        if (check::testHooks().ladderMisorderTiebreak)
            eq.plantLadderMisorderTiebreak();

        // Resolve the observability sinks before anything registers a
        // track: an external tracer (the caller enables it) or the
        // owned one when the experiment names a trace file.  Metrics
        // instruments exist only when somebody will read them.
        tracer = extTracer ? extTracer : &ownTracer;
        if (!exp.traceFile.empty())
            tracer->setEnabled(true);
        metrics = extMetrics ? extMetrics
                             : (exp.metricsFile.empty() ? nullptr
                                                        : &ownMetrics);
        if (metrics) {
            rtHist = &metrics->histogram("ipc.roundTripUs");
            pendingHist =
                &metrics->histogram("svc.pendingMsgsDepth");
            waitingHist =
                &metrics->histogram("svc.waitingServersDepth");
        }

        // The engine self-profiler: an external sink wins (the
        // caller's per-run isolation hook); otherwise the experiment
        // knob brings an owned one to life.  Attached before any
        // component exists so origin interning — which allocates —
        // all happens here, never on the event path.
        if (extEngProf)
            engProf = extEngProf;
        else if (exp.engineProfile)
            engProf = (ownEngProf =
                           std::make_unique<obs::EngineProfiler>())
                          .get();
        if (engProf) {
            engProf->beginRun();
            eq.attachProfiler(engProf);
            wireOrigin = engProf->origin("wire");
        }

        const bool mixed =
            exp.mixedLocal > 0 || exp.mixedRemote > 0;
        const bool coproc = exp.arch != Arch::I;
        const bool split = exp.arch == Arch::IV;
        const bool two_nodes = mixed || !exp.local;

        costsLocal = ipcCosts(exp.arch, true);
        costsNonlocal = ipcCosts(exp.arch, false);
        adjust(costsLocal);
        adjust(costsNonlocal);

        // The causal log powering the critical-path decomposition is
        // independent of the tracer (a decomposition needs no trace
        // file) and equally observational.
        if (exp.decomposeLatency)
            pathLog.setEnabled(true);
        trace::CausalLog *nodeCausal =
            pathLog.enabled() ? &pathLog : nullptr;
        trace::Tracer *nodeTracer =
            tracer->enabled() ? tracer : nullptr;
        // The topology layer supersedes the classic one/two-node
        // layout; with it off the loop degenerates to exactly the
        // historical "n0" (+ "n1") construction.
        const bool topoOn = exp.topo.enabled();
        nn = topoOn ? exp.topo.nodes : (two_nodes ? 2 : 1);
        for (int i = 0; i < nn; ++i)
            nodes.push_back(std::make_unique<Node>(
                eq, "n" + std::to_string(i), exp.hostsPerNode,
                coproc, split, nodeTracer, nodeCausal, engProf));
        for (auto &n : nodes)
            n->freeBuffers = exp.kernelBuffers;
        if (tracer->enabled())
            injector.attachTracer(tracer, &eq);

        if (two_nodes && exp.useTokenRing) {
            TokenRing::Config rc;
            rc.stations = 2;
            rc.megabitsPerSec = exp.ringMbps;
            ring = std::make_unique<TokenRing>(eq, rc);
        }
        // The interconnect fabric; rawWire() routes through it for
        // every node pair.  Kind 2 models its own ring segments, so
        // the legacy `ring` member stays null in topo mode (its
        // Outcome fields belong to useTokenRing alone).
        if (topoOn)
            net = std::make_unique<topo::Network>(eq, exp.topo,
                                                  tracer, engProf);

        // The reliability stack is strictly pay-for-use: it exists
        // only when the medium can fail (or when explicitly forced),
        // so fault-free runs keep the ideal-medium code path and
        // produce bit-identical results.  One channel per ordered
        // node pair, row-major — for two nodes that is exactly the
        // historical (0 -> 1, 1 -> 0) pair.
        if ((two_nodes || topoOn) &&
            (injector.faultPlan().active() || exp.reliableProtocol)) {
            ReliableChannel::Config rc;
            rc.windowSize = exp.retransmitWindow;
            rc.rtoUs = exp.retransmitTimeoutUs;
            rc.rtoMaxUs = std::max(exp.rtoMaxUs, rc.rtoUs);
            rc.dataBytes = exp.packetBytes;
            protoAccesses = rc.busAccesses;

            ReliableChannel::Hooks h;
            // Protocol steps are kernel activities on the node's
            // communication processor: the host pays under
            // Architecture I, the MP under II-IV.
            h.exec = [this](int node, const char *name, double procUs,
                            int prio, EventQueue::Callback done) {
                Node &n = *nodes[static_cast<std::size_t>(node)];
                ActCost c;
                c.procUs = procUs;
                if (n.mp && this->exp.mpSpeedFactor != 1.0)
                    c.procUs /= this->exp.mpSpeedFactor;
                c.kb = protoAccesses;
                n.commProc().submit(
                    act(name, c, n, prio, std::move(done)));
            };
            chans.resize(static_cast<std::size_t>(nn) *
                         static_cast<std::size_t>(nn - 1));
            for (int src = 0; src < nn; ++src) {
                for (int dst = 0; dst < nn; ++dst) {
                    if (dst == src)
                        continue;
                    rc.srcNode = src;
                    rc.dstNode = dst;
                    h.mediumToDst =
                        [this, src, dst](int bytes,
                                         EventQueue::Callback cb,
                                         EventQueue::Batch *b) {
                            rawWire(src, dst, bytes, std::move(cb),
                                    b);
                        };
                    h.mediumToSrc =
                        [this, src, dst](int bytes,
                                         EventQueue::Callback cb,
                                         EventQueue::Batch *b) {
                            rawWire(dst, src, bytes, std::move(cb),
                                    b);
                        };
                    chans[chanIndex(src, dst)] =
                        std::make_unique<ReliableChannel>(
                            eq, rc, injector, h);
                }
            }
            if (tracer->enabled()) {
                for (int src = 0; src < nn; ++src) {
                    for (int dst = 0; dst < nn; ++dst) {
                        if (dst != src)
                            chans[chanIndex(src, dst)]->attachTracer(
                                tracer,
                                "net.n" + std::to_string(src) +
                                    "->n" + std::to_string(dst));
                    }
                }
            }
        }
        if (tracer->enabled())
            simTrack = tracer->track("sim");
        for (const CrashWindow &w : exp.crashSchedule)
            recoveries.push_back(Recovery{w, -1});

        // Lay out the conversations: classic mode pins all clients to
        // node 0 (servers at node 1 when non-local); mixed mode
        // interleaves local pairs and cross-node pairs over both
        // nodes — the case the thesis' models could not represent
        // (§6.6.3).
        if (mixed) {
            for (int i = 0; i < exp.mixedLocal; ++i)
                addConversation(i % 2, i % 2);
            for (int i = 0; i < exp.mixedRemote; ++i)
                addConversation(i % 2, 1 - i % 2);
        } else if (topoOn) {
            // Topology placement decides where each conversation's
            // endpoints live; a pure function of (topology, index,
            // seed), so jobs=1/N replicas place identically.
            for (int i = 0; i < exp.conversations; ++i) {
                const auto [c, s] = topo::placeConversation(
                    exp.topo, i, exp.seed);
                addConversation(c, s);
            }
        } else {
            for (int i = 0; i < exp.conversations; ++i)
                addConversation(0, exp.local ? 0 : 1);
        }

        // Open-arrival mode repurposes the laid-out conversations as
        // server loops only; clients materialize per arrival.  Closed
        // mode keeps the classic fixed client/server pairs (a robust
        // closed client opens a tracked request around each trip).
        // The kickoff is the largest single fan-out in the run — two
        // events per conversation plus the first arrival and every
        // crash window — so stage it all and commit once.  Staging
        // order is exactly the previous schedule order, so the batch
        // changes no tie.
        const bool open = exp.arrivalMode != 0;
        auto kickoff = eq.scheduleBatch();
        for (std::size_t i = 0; i < convs.size(); ++i) {
            const int conv = static_cast<int>(i);
            if (!open) {
                kickoff.schedule(
                    static_cast<Tick>(i) * 7, [this, conv]() {
                        if (robust)
                            startRequest(conv);
                        else
                            clientSend(conv);
                    });
            }
            kickoff.schedule(3 + static_cast<Tick>(i) * 7,
                             [this, conv]() { serverReceive(conv); });
        }
        if (open)
            scheduleNextArrival(&kickoff);

        // A crash wipes the node's volatile kernel state, not just
        // the packets in flight: queued requests are lost (retries or
        // deadlines must recover them) and the at-most-once reply
        // cache forgets which requests completed.
        if (robust) {
            for (const CrashWindow &w : exp.crashSchedule) {
                const int node = w.node;
                kickoff.schedule(usToTicks(w.startUs),
                                 [this, node]() { crashFlush(node); });
            }
        }
        // Commit before the timeline boundary below is scheduled, so
        // the kickoff keeps its historical sequence numbers.
        kickoff.commit();

        // Deterministic trace sampling: every recorder shares one
        // pure (seed, id) decision, so a sampled message's causal
        // chain stays complete.  Only wired when actually thinning;
        // the default keeps the recorders untouched.
        if (exp.traceSampleRate < 1) {
            const obs::TraceSampler sampler(exp.traceSampleRate,
                                            exp.seed);
            pathLog.setSampler(sampler);
            tracer->setMessageSampler(sampler);
        }

        // Time-resolved observability: windowed series over the whole
        // run.  Counter handles are bumped at the same sites as the
        // whole-run ledgers (so each series integrates exactly to its
        // ledger counterpart); gauges are sampled by a read-only
        // boundary event.  Scheduled last so the kickoff events above
        // keep their sequence numbers regardless of this knob.
        if (exp.timelineIntervalUs > 0) {
            tl.configure(exp.timelineIntervalUs,
                         exp.warmupUs + exp.measureUs, exp.warmupUs);
            tlAllTrips = &tl.counter("ipc.allTrips");
            tlRtSum = &tl.counter("ipc.rtSumUs");
            tlTrips = &tl.counter("ipc.completedTrips");
            tlStalls = &tl.counter("ipc.bufferStalls");
            if (robust) {
                tlRpcOffered = &tl.counter("rpc.offered");
                tlRpcCompleted = &tl.counter("rpc.completed");
                tlRpcShed = &tl.counter("rpc.shed");
                tlRpcShedAttempts = &tl.counter("rpc.shedAttempts");
                tlRpcExpired = &tl.counter("rpc.expired");
                tlRpcLost = &tl.counter("rpc.lostToCrash");
                tlRpcRetries = &tl.counter("rpc.retries");
                tlRpcOrphans = &tl.counter("rpc.orphanedReplies");
            }
            if (!chans.empty()) {
                tlNetTx = &tl.counter("net.dataTransmissions");
                tlNetRetx = &tl.counter("net.retransmissions");
                tlNetDeliver = &tl.counter("net.delivered");
                tlNetAck = &tl.counter("net.acksSent");
                for (auto &c : chans)
                    c->setEventObserver([this](const char *event,
                                               double by) {
                        if (std::strcmp(event, "dataTx") == 0)
                            tlAdd(tlNetTx, by);
                        else if (std::strcmp(event, "retx") == 0)
                            tlAdd(tlNetRetx, by);
                        else if (std::strcmp(event, "deliver") == 0)
                            tlAdd(tlNetDeliver, by);
                        else if (std::strcmp(event, "ack") == 0)
                            tlAdd(tlNetAck, by);
                    });
            }
            if (tracer->enabled())
                tlTrack = tracer->track("timeline");
            const Tick horizon =
                usToTicks(exp.warmupUs + exp.measureUs);
            if (tl.interval() <= horizon)
                eq.schedule(tl.interval(),
                            [this]() { timelineBoundary(); });
        }
    }

    Outcome
    run()
    {
        const Tick warm = usToTicks(exp.warmupUs);
        const Tick end = warm + usToTicks(exp.measureUs);
        eq.runUntil(warm);
        const std::map<std::string, Tick> baseline =
            activitySnapshot();
        const std::map<std::string, Tick> busyBase =
            resourceBusySnapshot();
        const ReliableChannel::Stats chanBase = channelStats();
        const FaultInjector::Stats injBase = injector.stats();
        const auto [protoHostBase, protoMpBase] = protoTicks();
        const auto [rpcHostBase, rpcMpBase] = prefixTicks("rpc");
        const long rpcOfferedBase = rpcTotals.offered;
        if (simTrack >= 0)
            tracer->instant(simTrack, "measureStart", warm, "phase");
        eq.runUntil(end);
        if (simTrack >= 0)
            tracer->instant(simTrack, "measureEnd", end, "phase");

        Outcome out;
        out.roundTrips = completed;
        out.throughputPerSec = static_cast<double>(completed) /
                               (ticksToUs(end - warm) / 1e6);
        out.meanRoundTripUs = rt.mean();
        out.rtCi95Us = rt.ci95();
        if (!rtSamples.empty()) {
            std::vector<double> s = rtSamples;
            std::sort(s.begin(), s.end());
            out.rtP50Us = s[s.size() / 2];
            out.rtP95Us = s[(s.size() * 95) / 100];
        }
        for (const auto &n : nodes) {
            for (const auto &h : n->hosts)
                out.hostUtil = std::max(out.hostUtil,
                                        h->utilization());
            if (n->mp)
                out.mpUtil = std::max(out.mpUtil,
                                      n->mp->utilization());
            out.busUtil = std::max(out.busUtil,
                                   n->busTcb.utilization());
        }
        out.bufferStalls = bufferStalls;
        if (completed > 0) {
            // Only the measurement window counts, matching the
            // round-trip denominator.
            for (const auto &[name, ticks] : activitySnapshot()) {
                Tick before = 0;
                auto it = baseline.find(name);
                if (it != baseline.end())
                    before = it->second;
                out.activityUsPerRoundTrip[name] =
                    ticksToUs(ticks - before) /
                    static_cast<double>(completed);
            }
        }
        // The per-resource utilization timeline's summary: busy
        // fraction of every resource over the measurement window
        // alone (hostUtil/mpUtil/busUtil above stay whole-run maxima
        // for compatibility).
        const double window_ticks = static_cast<double>(end - warm);
        for (const auto &[name, busy] : resourceBusySnapshot()) {
            Tick before = 0;
            auto it = busyBase.find(name);
            if (it != busyBase.end())
                before = it->second;
            out.resourceUtilization[name] =
                static_cast<double>(busy - before) / window_ticks;
        }
        if (ring) {
            out.ringUtil = ring->utilization();
            out.ringTokenWaitUs = ring->meanTokenWaitUs();
        }
        const double window_sec = ticksToUs(end - warm) / 1e6;
        out.localThroughputPerSec =
            static_cast<double>(rtLocal.count()) / window_sec;
        out.remoteThroughputPerSec =
            static_cast<double>(rtRemote.count()) / window_sec;
        out.localMeanRtUs = rtLocal.mean();
        out.remoteMeanRtUs = rtRemote.mean();

        // Reliability-stack measurements over the same window.
        const ReliableChannel::Stats cs = channelStats();
        out.retransmissions =
            cs.retransmissions - chanBase.retransmissions;
        out.timeoutsFired = cs.timeoutsFired - chanBase.timeoutsFired;
        out.duplicatesDropped =
            cs.duplicatesDropped - chanBase.duplicatesDropped;
        out.corruptDiscarded =
            cs.corruptDiscarded - chanBase.corruptDiscarded;
        const FaultInjector::Stats fs = injector.stats();
        out.faultDrops = fs.dropped - injBase.dropped;
        out.crashDrops = fs.crashDrops - injBase.crashDrops;
        out.netThroughputPktsPerSec =
            static_cast<double>(cs.dataTransmissions -
                                chanBase.dataTransmissions) /
            window_sec;
        out.netGoodputPktsPerSec =
            static_cast<double>(cs.delivered - chanBase.delivered) /
            window_sec;
        if (completed > 0) {
            const auto [protoHost, protoMp] = protoTicks();
            out.protoHostUsPerRt =
                ticksToUs(protoHost - protoHostBase) /
                static_cast<double>(completed);
            out.protoMpUsPerRt = ticksToUs(protoMp - protoMpBase) /
                                 static_cast<double>(completed);
            const auto [rpcHost, rpcMp] = prefixTicks("rpc");
            out.rpcHostUsPerRt = ticksToUs(rpcHost - rpcHostBase) /
                                 static_cast<double>(completed);
            out.rpcMpUsPerRt = ticksToUs(rpcMp - rpcMpBase) /
                               static_cast<double>(completed);
        }
        for (const Recovery &r : recoveries) {
            if (r.recoveredAt >= 0) {
                ++out.crashWindowsRecovered;
                out.meanRecoveryUs +=
                    ticksToUs(r.recoveredAt - usToTicks(r.w.endUs));
            }
        }
        if (out.crashWindowsRecovered > 0)
            out.meanRecoveryUs /= out.crashWindowsRecovered;

        // Whole-run conservation ledger (the windowed counters above
        // cannot carry exact flow identities; these can).
        Outcome::NetTotals &nt = out.netTotals;
        nt.msgsAccepted = cs.accepted;
        nt.msgsDelivered = cs.delivered;
        nt.dataTransmissions = cs.dataTransmissions;
        nt.retransmissions = cs.retransmissions;
        nt.timeoutsFired = cs.timeoutsFired;
        nt.duplicatesDropped = cs.duplicatesDropped;
        nt.corruptDiscarded = cs.corruptDiscarded;
        nt.acksSent = cs.acksSent;
        for (const auto &c : chans) {
            if (!c)
                continue;
            nt.windowPendingAtEnd += c->windowPending();
            nt.backlogAtEnd += c->backlogSize();
        }
        nt.pktsInjected = fs.injected;
        nt.pktsDropped = fs.dropped;
        nt.pktsCorrupted = fs.corrupted;
        nt.pktsDuplicated = fs.duplicated;
        nt.pktsReordered = fs.reordered;
        nt.pktsCrashDropped = fs.crashDrops;

        // The topology layer's per-link conservation ledger: charge
        // each channel's retransmissions to its forward route, then
        // snapshot every link and router (structural in-flight
        // included, so the flow identities hold exactly at the
        // horizon).
        if (net) {
            if (!chans.empty()) {
                for (int src = 0; src < nn; ++src) {
                    for (int dst = 0; dst < nn; ++dst) {
                        if (dst != src)
                            net->attributeRetransmissions(
                                src, dst,
                                chans[chanIndex(src, dst)]
                                    ->stats()
                                    .retransmissions);
                    }
                }
            }
            net->fillLedger(out.topo);
        }

        // The robustness layer's whole-run disposition ledger plus
        // the windowed goodput-vs-offered-load measurement.  Goodput
        // equals the plain throughput by construction: a request that
        // missed its deadline is torn down at the deadline, so it can
        // never count as a completed round trip.
        if (robust) {
            out.rpc = rpcTotals;
            for (const Conversation &cv : convs) {
                if (cv.rid != 0 && cv.disp == Disp::None)
                    ++out.rpc.inFlightAtEnd;
            }
            out.rpc.offeredPerSec =
                static_cast<double>(rpcTotals.offered -
                                    rpcOfferedBase) /
                window_sec;
            out.rpc.goodputPerSec = out.throughputPerSec;
            // The sojourn percentile comes off the mergeable sketch:
            // within kDefaultAlpha relative error of the exact sample
            // quantile, and identical whether observed in one run or
            // merged across SweepRunner shards.
            if (sojournSketch.count() > 0) {
                out.rpc.meanSojournUs = sojournSketch.mean();
                out.rpc.p95SojournUs = sojournSketch.quantile(0.95);
            }
        }
        if (exp.decomposeLatency) {
            out.decomposition = trace::decompose(pathLog, warm, end);
            if (metrics) {
                // Component latency histograms over the same window
                // the decomposition covers, each paired with a
                // same-named quantile sketch so the registry's
                // reported p50/p95/p99 carry fixed relative error
                // instead of the log2 bucket edge.
                auto &h_rt = metrics->histogram("lat.roundTripUs");
                auto &h_svc = metrics->histogram("lat.serviceUs");
                auto &h_q = metrics->histogram("lat.queueUs");
                auto &h_net = metrics->histogram("lat.networkUs");
                auto &h_blk = metrics->histogram("lat.blockedUs");
                auto &s_rt = metrics->sketch("lat.roundTripUs");
                auto &s_svc = metrics->sketch("lat.serviceUs");
                auto &s_q = metrics->sketch("lat.queueUs");
                auto &s_net = metrics->sketch("lat.networkUs");
                auto &s_blk = metrics->sketch("lat.blockedUs");
                for (const auto &[id, rec] : pathLog.records()) {
                    if (rec.end < 0 || rec.end <= warm ||
                        rec.end > end ||
                        rec.terminal !=
                            trace::CausalLog::Terminal::Completed)
                        continue;
                    const trace::MessagePath p =
                        trace::reconstructPath(id, rec);
                    h_rt.observe(p.roundTripUs);
                    h_svc.observe(p.serviceUs);
                    h_q.observe(p.queueUs);
                    h_net.observe(p.networkUs);
                    h_blk.observe(p.blockedUs);
                    s_rt.observe(p.roundTripUs);
                    s_svc.observe(p.serviceUs);
                    s_q.observe(p.queueUs);
                    s_net.observe(p.networkUs);
                    s_blk.observe(p.blockedUs);
                }
            }
        }
        if (tl.enabled()) {
            // The final (possibly partial) bin's gauges, unless the
            // last boundary already landed exactly on the horizon.
            if (eq.now() > tlPrevBoundary)
                sampleTimelineGauges(tl.binCount() - 1);
            out.timeline = tl.take();
            out.stats = obs::analyzeSteadyState(
                out.timeline.counters.at("ipc.allTrips"),
                out.timeline.counters.at("ipc.rtSumUs"),
                exp.timelineIntervalUs, exp.warmupUs);
        }
        if (engProf) {
            engProf->finishRun(eq.size());
            out.engineProfile = engProf->profile();
        }
        finishObservability(out);
        return out;
    }

  private:
    /** Terminal disposition of a tracked request (robust runs). */
    enum class Disp : int
    {
        None,      //!< still undecided (in flight)
        Completed, //!< the reply reached the client
        Shed,      //!< admission control dropped its last hope
        Expired,   //!< its deadline fired first
        LostToCrash, //!< a crash flushed its only live attempt
    };

    /** Server-side at-most-once state of the current request id. */
    enum class SvcState : int
    {
        None,      //!< never admitted (or re-admittable)
        Queued,    //!< an attempt sits in the service queue
        InService, //!< a server is executing the request
        Done,      //!< reply sent; retries replay the cached reply
    };

    /** One client/server pair and its placement. */
    struct Conversation
    {
        int clientNode;
        int serverNode;
        int host; //!< static task-to-host binding (§6.8)
        Tick sendStart = 0;
        //! Lifetime id of the in-flight message (0 between trips).
        //! With the robustness layer, each retry is a fresh attempt
        //! with a fresh id; msgId names the newest attempt.
        long msgId = 0;

        // Robustness-layer request state; untouched (and never read)
        // in non-robust runs — see robustnessEnabled().
        long rid = 0; //!< current request id (0 = none yet)
        Disp disp = Disp::None;
        SvcState svcState = SvcState::None;
        int attempt = 0;      //!< send attempts of the current request
        int retriesLeft = 0;  //!< remaining retry budget
        Tick arrivalAt = 0;   //!< when the request was offered
        Tick deadlineAt = -1; //!< absolute deadline (-1 = none)
        bool bufferHeld = false; //!< a kernel buffer is charged to us
    };

    void
    adjust(IpcCosts &c)
    {
        if (exp.extraCopy) {
            c.processSend.procUs += extraCopyUs;
            c.match.procUs += extraCopyUs;
            c.processReply.procUs += extraCopyUs;
            c.cleanupClient.procUs += extraCopyUs;
        }
        if (c.coproc && exp.mpSpeedFactor != 1.0) {
            hsipc_assert(exp.mpSpeedFactor > 0.0);
            for (ActCost *a : {&c.processSend, &c.processRecv,
                               &c.match, &c.processReply,
                               &c.cleanupClient})
                a->procUs /= exp.mpSpeedFactor;
        }
    }

    void
    addConversation(int client_node, int server_node)
    {
        Conversation cv;
        cv.clientNode = client_node;
        cv.serverNode = server_node;
        cv.host = static_cast<int>(convs.size()) % exp.hostsPerNode;
        convs.push_back(cv);
    }

    bool
    isLocal(int conv) const
    {
        const auto &cv = convs[static_cast<std::size_t>(conv)];
        return cv.clientNode == cv.serverNode;
    }

    const IpcCosts &
    costsOf(int conv) const
    {
        return isLocal(conv) ? costsLocal : costsNonlocal;
    }

    Node &
    cNode(int conv)
    {
        return *nodes[static_cast<std::size_t>(
            convs[static_cast<std::size_t>(conv)].clientNode)];
    }

    Node &
    sNode(int conv)
    {
        return *nodes[static_cast<std::size_t>(
            convs[static_cast<std::size_t>(conv)].serverNode)];
    }

    Processor &
    clientHost(int conv)
    {
        return *cNode(conv).hosts[static_cast<std::size_t>(
            convs[static_cast<std::size_t>(conv)].host)];
    }

    Processor &
    serverHost(int conv)
    {
        return *sNode(conv).hosts[static_cast<std::size_t>(
            convs[static_cast<std::size_t>(conv)].host)];
    }

    /** The in-flight message id of @p conv (0 between trips). */
    long
    msgOf(int conv) const
    {
        return convs[static_cast<std::size_t>(conv)].msgId;
    }

    Activity
    act(const std::string &name, const ActCost &c, Node &node,
        int priority, EventQueue::Callback done, long msgId = 0)
    {
        Activity a;
        a.name = name;
        a.processing = usToTicks(c.procUs);
        a.priority = priority;
        a.msgId = msgId;
        a.onDone = std::move(done);
        if (node.splitBus) {
            a.memAccesses = c.tcb;
            a.bus = &node.busTcb;
            a.memAccesses2 = c.kb;
            a.bus2 = &node.busKb;
        } else {
            a.memAccesses = c.tcb + c.kb;
            a.bus = &node.busTcb;
        }
        return a;
    }

    /** Index of the @p from -> @p to channel (row-major pairs). */
    std::size_t
    chanIndex(int from, int to) const
    {
        return static_cast<std::size_t>(
            from * (nn - 1) + (to - (to > from ? 1 : 0)));
    }

    /** Sum every channel's protocol statistics. */
    ReliableChannel::Stats
    channelStats() const
    {
        ReliableChannel::Stats sum;
        for (const auto &c : chans) {
            if (!c)
                continue;
            const ReliableChannel::Stats &s = c->stats();
            sum.accepted += s.accepted;
            sum.delivered += s.delivered;
            sum.dataTransmissions += s.dataTransmissions;
            sum.retransmissions += s.retransmissions;
            sum.timeoutsFired += s.timeoutsFired;
            sum.duplicatesDropped += s.duplicatesDropped;
            sum.corruptDiscarded += s.corruptDiscarded;
            sum.acksSent += s.acksSent;
        }
        return sum;
    }

    /**
     * Busy time of every activity whose name starts with @p prefix,
     * split into (host, MP) shares — the "who pays" measurement for
     * the protocol ("proto") and robustness ("rpc") layers.
     */
    std::pair<Tick, Tick>
    prefixTicks(const char *prefix) const
    {
        auto prefixSum = [prefix](const Processor &p) {
            Tick t = 0;
            for (const auto &[name, ticks] : p.activityTicks()) {
                if (name.rfind(prefix, 0) == 0)
                    t += ticks;
            }
            return t;
        };
        Tick host = 0;
        Tick mp = 0;
        for (const auto &n : nodes) {
            for (const auto &h : n->hosts)
                host += prefixSum(*h);
            if (n->mp)
                mp += prefixSum(*n->mp);
        }
        return {host, mp};
    }

    /** Protocol busy time split into (host, MP) shares. */
    std::pair<Tick, Tick>
    protoTicks() const
    {
        return prefixTicks("proto");
    }

    /** Busy ticks of every processor and bus, by track name. */
    std::map<std::string, Tick>
    resourceBusySnapshot() const
    {
        std::map<std::string, Tick> snap;
        for (const auto &n : nodes) {
            for (const auto &h : n->hosts)
                snap[h->processorName()] = h->busyTime();
            if (n->mp)
                snap[n->mp->processorName()] = n->mp->busyTime();
            snap[n->busTcb.resourceName()] = n->busTcb.busyTime();
            if (n->splitBus)
                snap[n->busKb.resourceName()] = n->busKb.busyTime();
            snap[n->nicIn.processorName()] = n->nicIn.busyTime();
            snap[n->nicOut.processorName()] = n->nicOut.busyTime();
        }
        return snap;
    }

    /**
     * Record a service-queue transition: an instant naming what
     * happened plus both queue depths, mirrored into the depth
     * histograms when metrics are on.
     */
    void
    svcEvent(Node &node, const char *what)
    {
        if (tracer->enabled() && node.svcTrack >= 0) {
            tracer->instant(node.svcTrack, what, eq.now(), "queue");
            tracer->counter(
                node.svcTrack, "pendingMsgs", eq.now(),
                static_cast<double>(node.pendingMsgs.size()));
            tracer->counter(
                node.svcTrack, "waitingServers", eq.now(),
                static_cast<double>(node.waitingServers.size()));
        }
        if (metrics) {
            pendingHist->observe(
                static_cast<double>(node.pendingMsgs.size()));
            waitingHist->observe(
                static_cast<double>(node.waitingServers.size()));
        }
    }

    /**
     * Bump a timeline counter series by @p n at the current simulated
     * time.  Null handle (timeline off, or the series' subsystem is
     * not instantiated) costs one branch.
     */
    void
    tlAdd(obs::TimelineRecorder::Series *s, double n = 1)
    {
        if (s)
            tl.add(*s, eq.now(), n);
    }

    /**
     * An interval boundary: sample every gauge for the bin that just
     * closed, then re-arm.  Strictly read-only with respect to the
     * simulation — it touches no kernel or protocol state, so the
     * timeline knob cannot perturb any other Outcome field.
     */
    void
    timelineBoundary()
    {
        // The boundary at (k+1)·interval closes bin k.
        sampleTimelineGauges(tl.binOf(eq.now() - 1));
        const Tick next = eq.now() + tl.interval();
        if (next <= usToTicks(exp.warmupUs + exp.measureUs))
            eq.schedule(next, [this]() { timelineBoundary(); });
    }

    /** Read the instantaneous state into bin @p bin's gauges. */
    void
    sampleTimelineGauges(std::size_t bin)
    {
        const Tick now = eq.now();
        const double elapsed =
            static_cast<double>(now - tlPrevBoundary);
        // Per-resource utilization over this bin alone, from busy-time
        // deltas against the previous boundary's snapshot.
        const std::map<std::string, Tick> busy =
            resourceBusySnapshot();
        for (const auto &[name, b] : busy) {
            Tick before = 0;
            auto it = tlBusyPrev.find(name);
            if (it != tlBusyPrev.end())
                before = it->second;
            tl.sample("util." + name, bin,
                      elapsed > 0
                          ? static_cast<double>(b - before) / elapsed
                          : 0.0);
        }
        tlBusyPrev = busy;
        tlPrevBoundary = now;
        for (std::size_t i = 0; i < nodes.size(); ++i) {
            const Node &n = *nodes[i];
            tl.sample(n.svcName + ".pendingMsgs", bin,
                      static_cast<double>(n.pendingMsgs.size()));
            tl.sample(n.svcName + ".waitingServers", bin,
                      static_cast<double>(n.waitingServers.size()));
            tl.sample("n" + std::to_string(i) + ".freeBuffers", bin,
                      static_cast<double>(n.freeBuffers));
        }
        if (!chans.empty()) {
            double pending = 0;
            double backlog = 0;
            for (const auto &c : chans) {
                pending += static_cast<double>(c->windowPending());
                backlog += static_cast<double>(c->backlogSize());
            }
            tl.sample("net.windowPending", bin, pending);
            tl.sample("net.backlog", bin, backlog);
        }
        if (net) {
            tl.sample("topo.routerDepth", bin,
                      net->routerDepthSum());
            tl.sample("topo.linkInFlight", bin,
                      net->linkInFlightSum());
        }
        if (robust) {
            double inFlight = 0;
            for (const Conversation &cv : convs) {
                if (cv.rid != 0 && cv.disp == Disp::None)
                    ++inFlight;
            }
            tl.sample("rpc.inFlight", bin, inFlight);
        }
        // Mirror the bin into Perfetto counter tracks: one "timeline"
        // track carrying every series, so the dashboard's knee and
        // recovery ramp are visible in the trace viewer too.
        if (tlTrack >= 0) {
            for (const auto &[name, g] : tl.gaugeSeries()) {
                if (bin < g.size())
                    tracer->counter(tlTrack, name, now, g[bin]);
            }
            for (const auto &[name, s] : tl.counterSeries())
                tracer->counter(tlTrack, name, now,
                                bin < s.bins.size() ? s.bins[bin]
                                                    : 0.0);
        }
    }

    /** The timeline document: series plus stats (and decomposition). */
    void
    writeTimelineFile(const Outcome &out) const
    {
        std::string extra =
            "\"stats\": {\"enabled\": " +
            std::string(out.stats.enabled ? "true" : "false") +
            ", \"insufficientData\": " +
            (out.stats.insufficientData ? "true" : "false") +
            ", \"transientPolluted\": " +
            (out.stats.transientPolluted ? "true" : "false") +
            ", \"truncationUs\": " + jsonNumber(out.stats.truncationUs) +
            ", \"batches\": " + std::to_string(out.stats.batches) +
            ", \"throughputPerSec\": " +
            jsonNumber(out.stats.throughputPerSec) +
            ", \"throughputCi95PerSec\": " +
            jsonNumber(out.stats.throughputCi95PerSec) +
            ", \"meanRtUs\": " + jsonNumber(out.stats.meanRtUs) +
            ", \"rtCi95Us\": " + jsonNumber(out.stats.rtCi95Us) + "}";
        if (exp.decomposeLatency) {
            const trace::Decomposition &d = out.decomposition;
            extra += ",\n  \"decomposition\": {\"messages\": " +
                     std::to_string(d.messages) +
                     ", \"meanRoundTripUs\": " +
                     jsonNumber(d.roundTrip.meanUs) +
                     ", \"bottleneck\": " +
                     jsonString(d.bottleneck) + "}";
        }
        const std::string doc = out.timeline.toJson(extra);
        std::FILE *f = std::fopen(exp.timelineFile.c_str(), "w");
        if (!f)
            hsipc_fatal("cannot open timeline file " +
                        exp.timelineFile);
        std::fwrite(doc.data(), 1, doc.size(), f);
        std::fclose(f);
    }

    /** End of run: fill the registry and write any requested files. */
    void
    finishObservability(const Outcome &out)
    {
        if (metrics) {
            metrics->counter("des.eventsRun")
                .inc(static_cast<std::int64_t>(eq.eventsRun()));
            metrics->counter("ipc.roundTrips").inc(out.roundTrips);
            metrics->counter("ipc.bufferStalls")
                .inc(out.bufferStalls);
            metrics->counter("net.retransmissions")
                .inc(out.retransmissions);
            metrics->counter("net.timeoutsFired")
                .inc(out.timeoutsFired);
            metrics->counter("net.duplicatesDropped")
                .inc(out.duplicatesDropped);
            metrics->counter("net.corruptDiscarded")
                .inc(out.corruptDiscarded);
            metrics->counter("net.faultDrops").inc(out.faultDrops);
            metrics->counter("net.crashDrops").inc(out.crashDrops);
            metrics->gauge("ipc.throughputPerSec")
                .set(out.throughputPerSec);
            metrics->gauge("ipc.meanRoundTripUs")
                .set(out.meanRoundTripUs);
            for (const auto &[name, util] : out.resourceUtilization)
                metrics->gauge("util." + name).set(util);
            // The Table 3-style breakdown: microseconds each kernel
            // activity charges per completed round trip.
            for (const auto &[name, us] : out.activityUsPerRoundTrip)
                metrics->gauge("activity." + name + ".usPerRt")
                    .set(us);
        }
        if (!exp.metricsFile.empty())
            metrics->writeJson(exp.metricsFile);
        if (!exp.traceFile.empty())
            tracer->writeChromeJson(exp.traceFile);
        if (!exp.timelineFile.empty())
            writeTimelineFile(out);
        if (!exp.engineProfileFile.empty())
            out.engineProfile.writeFile(exp.engineProfileFile);
    }

    /** Sum per-activity busy time over every processor. */
    std::map<std::string, Tick>
    activitySnapshot() const
    {
        std::map<std::string, Tick> snap;
        for (const auto &n : nodes) {
            auto collect = [&](const Processor &p) {
                for (const auto &[name, ticks] : p.activityTicks())
                    snap[name] += ticks;
            };
            for (const auto &h : n->hosts)
                collect(*h);
            if (n->mp)
                collect(*n->mp);
            collect(n->nicIn);
            collect(n->nicOut);
        }
        return snap;
    }

    /**
     * The raw medium between two nodes: the topology fabric when one
     * is instantiated, the token ring when enabled, a fixed wire
     * delay otherwise.
     */
    void
    rawWire(int from, int to, int bytes, EventQueue::Callback deliver,
            EventQueue::Batch *batch = nullptr)
    {
        if (net) {
            net->send(from, to, bytes, std::move(deliver), batch);
        } else if (ring) {
            ring->send(from, to, bytes, std::move(deliver), batch);
        } else if (engProf) {
            // The inter-node lookahead edge: whoever is transmitting
            // now schedules a delivery wireUs in the future — the
            // minimum positive delta on (src -> wire) edges is the
            // lookahead a sharded engine could exploit between nodes.
            const Tick delay = usToTicks(exp.wireUs);
            engProf->edge(wireOrigin, delay);
            auto wrapped = [this, inner = std::move(deliver)]() {
                obs::EngineProfiler::Scope s(engProf, wireOrigin);
                inner();
            };
            if (batch)
                batch->scheduleAfter(delay, std::move(wrapped));
            else
                eq.scheduleAfter(delay, std::move(wrapped));
        } else if (batch) {
            batch->scheduleAfter(usToTicks(exp.wireUs),
                                 std::move(deliver));
        } else {
            eq.scheduleAfter(usToTicks(exp.wireUs),
                             std::move(deliver));
        }
    }

    /**
     * Ship one message from @p from to @p to: through the reliability
     * stack when the medium is faulty, directly otherwise.  The whole
     * traversal — from handing the packet to the medium until its
     * exactly-once delivery, timeouts and retransmissions included —
     * is one Network interval on @p msg's critical path, so protocol
     * recovery time is attributed to the network, not the endpoints.
     */
    void
    wire(int from, int to, long msg, EventQueue::Callback deliver)
    {
        EventQueue::Callback arrive = std::move(deliver);
        if (pathLog.enabled() && msg != 0) {
            const Tick sent = eq.now();
            arrive = [this, msg, sent,
                      inner = std::move(arrive)]() {
                pathLog.interval(msg, "net",
                                 trace::Component::Network, sent,
                                 eq.now());
                inner();
            };
        }
        if (!chans.empty())
            chans[chanIndex(from, to)]->send(std::move(arrive), msg);
        else
            rawWire(from, to, exp.packetBytes, std::move(arrive));
    }

    // --- Client side -----------------------------------------------

    /**
     * @p batch, when non-null, is startRequest()'s staging batch
     * (holding the deadline timer): the retry timer is staged into it
     * and it is committed before the attempt is handed to the host,
     * preserving the exact unbatched sequence order.
     */
    void
    clientSend(int conv, EventQueue::Batch *batch = nullptr)
    {
        Conversation &cv = convs[static_cast<std::size_t>(conv)];
        // No new attempt once the request resolved — or while an
        // attempt is already out holding the buffer (a conversation
        // that stalled, expired, and re-stalled sits in the waiter
        // queue twice; only one wakeup may send).
        if (robust && (cv.disp != Disp::None || cv.bufferHeld))
            return;
        cv.sendStart = eq.now();
        Node &cn = cNode(conv);
        // A send needs a kernel buffer; stall if the pool is empty.
        if (cn.freeBuffers == 0) {
            ++bufferStalls;
            tlAdd(tlStalls);
            hsipc_warn_once("kernel buffer pool exhausted; sends now "
                            "stall until a reply frees a buffer "
                            "(counted in Outcome.bufferStalls)");
            if (tracer->enabled() && cn.svcTrack >= 0)
                tracer->instant(cn.svcTrack, "bufferStall", eq.now(),
                                "queue");
            cn.buffersWaiting.push_back(conv);
            return;
        }
        --cn.freeBuffers;
        // The round trip begins here, where the measured sendStart is
        // taken: a fresh lifetime id for the message, threaded
        // through every activity, bus access, and wire hop it causes.
        cv.msgId = ++lastMsgId;
        if (robust) {
            cv.bufferHeld = true;
            ++cv.attempt;
            ++rpcTotals.attempts;
            if (cv.retriesLeft > 0)
                armAttemptTimer(conv, batch);
        }
        if (pathLog.enabled())
            pathLog.start(cv.msgId, eq.now());
        if (tracer->enabled() && cn.svcTrack >= 0)
            tracer->asyncBegin(cn.svcTrack, "roundTrip", eq.now(),
                               cv.msgId);
        // Every step of the attempt's chain carries the (msg, rid)
        // pair captured here: when a retry supersedes this attempt,
        // the chain keeps reporting against its own message id rather
        // than hijacking the newer attempt's causal record.
        const long m = cv.msgId;
        const long rid = cv.rid;
        if (batch)
            batch->commit();
        clientHost(conv).submit(
            act("sendSyscall", costsOf(conv).sendSyscall, cn, prioTask,
                [this, conv, m, rid]() {
                    afterSendSyscall(conv, m, rid);
                },
                m));
    }

    void
    afterSendSyscall(int conv, long m, long rid)
    {
        const IpcCosts &c = costsOf(conv);
        if (!c.coproc) {
            sendProcessed(conv, m, rid);
            return;
        }
        cNode(conv).commProc().submit(
            act("processSend", c.processSend, cNode(conv), prioTask,
                [this, conv, m, rid]() {
                    sendProcessed(conv, m, rid);
                },
                m));
    }

    void
    sendProcessed(int conv, long m, long rid)
    {
        if (isLocal(conv)) {
            deliverToService(conv, m, rid);
            return;
        }
        const auto cv = convs[static_cast<std::size_t>(conv)];
        cNode(conv).nicOut.submit(
            act("dmaOut", costsOf(conv).dmaOutReq, cNode(conv),
                prioTask, [this, conv, cv, m, rid]() {
                    wire(cv.clientNode, cv.serverNode, m,
                         [this, conv, m, rid]() {
                             requestArrives(conv, m, rid);
                         });
                },
                m));
    }

    // --- Robustness layer: the client's view of a request ----------

    /**
     * Open a tracked request on @p conv: a fresh request id, a clean
     * disposition, the full retry budget, an armed deadline, and the
     * first send attempt.
     */
    void
    startRequest(int conv)
    {
        Conversation &cv = convs[static_cast<std::size_t>(conv)];
        cv.rid = ++lastRid;
        cv.disp = Disp::None;
        cv.svcState = SvcState::None;
        cv.attempt = 0;
        cv.retriesLeft = exp.retryBudget;
        cv.arrivalAt = eq.now();
        // Floor at one tick: a sub-tick deadline would expire at
        // `now` and the closed-loop respawn would never advance time.
        cv.deadlineAt = exp.deadlineUs > 0
                            ? eq.now() +
                                  std::max<Tick>(
                                      1, usToTicks(exp.deadlineUs))
                            : -1;
        ++rpcTotals.offered;
        tlAdd(tlRpcOffered);
        // The request's control events — deadline timer and first
        // retry timer — land in one batch; clientSend() commits it
        // before handing the attempt to the host, so the staged pair
        // keeps the exact sequence order of unbatched scheduling.
        auto batch = eq.scheduleBatch();
        if (cv.deadlineAt >= 0) {
            const long rid = cv.rid;
            batch.schedule(cv.deadlineAt, [this, conv, rid]() {
                onDeadline(conv, rid);
            });
        }
        clientSend(conv, &batch);
    }

    /**
     * Arm the retry timer for the attempt just sent: exponential
     * backoff doubling per attempt up to the ceiling, with ±25%
     * jitter so synchronized clients do not retry in lockstep.
     */
    void
    armAttemptTimer(int conv, EventQueue::Batch *batch = nullptr)
    {
        Conversation &cv = convs[static_cast<std::size_t>(conv)];
        double wait = exp.retryBackoffUs;
        for (int i = 1; i < cv.attempt && wait < exp.retryBackoffMaxUs;
             ++i)
            wait *= 2;
        wait = std::min(wait, exp.retryBackoffMaxUs);
        wait *= robustRng.uniform(0.75, 1.25);
        const long rid = cv.rid;
        const int attempt = cv.attempt;
        const Tick delay = std::max<Tick>(1, usToTicks(wait));
        auto fire = [this, conv, rid, attempt]() {
            onAttemptTimeout(conv, rid, attempt);
        };
        if (batch)
            batch->scheduleAfter(delay, std::move(fire));
        else
            eq.scheduleAfter(delay, std::move(fire));
    }

    /**
     * The retry timer of attempt @p attempt of request @p rid fired.
     * Stale firings — the request resolved, a newer attempt already
     * exists, or the budget ran out — are ignored.
     */
    void
    onAttemptTimeout(int conv, long rid, int attempt)
    {
        Conversation &cv = convs[static_cast<std::size_t>(conv)];
        if (cv.rid != rid || cv.disp != Disp::None ||
            cv.attempt != attempt || cv.retriesLeft <= 0)
            return;
        // Retry dispatch is kernel work on the client's communication
        // processor; the guards re-run afterwards because the reply
        // may have arrived while the dispatch was queued.
        chargeRpc(cNode(conv), "rpcRetry", rpcRetryUs,
                  [this, conv, rid, attempt]() {
                      Conversation &c =
                          convs[static_cast<std::size_t>(conv)];
                      if (c.rid != rid || c.disp != Disp::None ||
                          c.attempt != attempt || c.retriesLeft <= 0)
                          return;
                      closeAttempt(
                          conv,
                          trace::CausalLog::Terminal::Superseded,
                          "rpcRetry");
                      releaseBuffer(conv);
                      --c.retriesLeft;
                      ++rpcTotals.retries;
                      tlAdd(tlRpcRetries);
                      clientSend(conv);
                  });
    }

    /** The deadline of request @p rid fired. */
    void
    onDeadline(int conv, long rid)
    {
        Conversation &cv = convs[static_cast<std::size_t>(conv)];
        if (cv.rid != rid || cv.disp != Disp::None)
            return;
        chargeRpc(cNode(conv), "rpcExpire", rpcExpireUs);
        terminate(conv, Disp::Expired,
                  trace::CausalLog::Terminal::Expired, "rpcExpire");
    }

    /**
     * Close the newest attempt's trace and causal records with the
     * terminal state @p why (never Completed) and drop its id.
     */
    void
    closeAttempt(int conv, trace::CausalLog::Terminal why,
                 const char *event)
    {
        Conversation &cv = convs[static_cast<std::size_t>(conv)];
        if (cv.msgId == 0)
            return;
        Node &cn = cNode(conv);
        if (pathLog.enabled())
            pathLog.abort(cv.msgId, eq.now(), why);
        if (tracer->enabled() && cn.svcTrack >= 0) {
            tracer->asyncEnd(cn.svcTrack, "roundTrip", eq.now(),
                             cv.msgId);
            tracer->instant(cn.svcTrack, event, eq.now(), "rpc");
        }
        cv.msgId = 0;
    }

    /**
     * Resolve @p conv's request without a completed round trip.  In
     * closed mode the client immediately offers its next request:
     * the conversation loop never stops, whatever became of any one
     * request.
     */
    void
    terminate(int conv, Disp disp, trace::CausalLog::Terminal why,
              const char *event)
    {
        Conversation &cv = convs[static_cast<std::size_t>(conv)];
        hsipc_assert(cv.disp == Disp::None &&
                     "terminating an already-resolved request");
        cv.disp = disp;
        switch (disp) {
          case Disp::Shed:
            ++rpcTotals.shed;
            tlAdd(tlRpcShed);
            break;
          case Disp::Expired:
            ++rpcTotals.expired;
            tlAdd(tlRpcExpired);
            break;
          case Disp::LostToCrash:
            ++rpcTotals.lostToCrash;
            tlAdd(tlRpcLost);
            break;
          default:
            hsipc_panic("terminate with a non-terminal disposition");
        }
        closeAttempt(conv, why, event);
        releaseBuffer(conv);
        if (exp.arrivalMode == 0)
            startRequest(conv);
    }

    /** Return @p conv's kernel buffer (if it holds one) to the pool. */
    void
    releaseBuffer(int conv)
    {
        Conversation &cv = convs[static_cast<std::size_t>(conv)];
        if (!cv.bufferHeld)
            return;
        cv.bufferHeld = false;
        Node &cn = cNode(conv);
        ++cn.freeBuffers;
        wakeBufferWaiter(cn);
    }

    /** Hand a freed buffer to the first still-live stalled sender. */
    void
    wakeBufferWaiter(Node &cn)
    {
        while (!cn.buffersWaiting.empty()) {
            const int waiter = cn.buffersWaiting.front();
            cn.buffersWaiting.pop_front();
            const Conversation &wc =
                convs[static_cast<std::size_t>(waiter)];
            // Skip entries whose request resolved while stalled, and
            // duplicate entries for a conversation that already sent
            // (stall → expire → restart can enqueue a conv twice).
            if (robust && (wc.disp != Disp::None || wc.bufferHeld))
                continue;
            clientSend(waiter);
            break;
        }
    }

    /**
     * Robustness bookkeeping is kernel work on a node's communication
     * processor — the host pays on Architecture I, the MP on II-IV —
     * touching a few kernel-buffer words.  The "rpc" name prefix lets
     * run() split the bill the same way it does for "proto".
     */
    void
    chargeRpc(Node &n, const char *name, double procUs,
              EventQueue::Callback done = EventQueue::Callback())
    {
        ActCost c;
        c.procUs = procUs;
        if (n.mp && exp.mpSpeedFactor != 1.0)
            c.procUs /= exp.mpSpeedFactor;
        c.kb = rpcKbAccesses;
        if (!done)
            done = []() {};
        n.commProc().submit(act(name, c, n, prioTask,
                                std::move(done)));
    }

    // --- Open arrivals ---------------------------------------------

    /**
     * Draw the next interarrival gap and schedule the arrival —
     * staged into @p batch when the caller (the kickoff) is already
     * batching a fan-out.
     */
    void
    scheduleNextArrival(EventQueue::Batch *batch = nullptr)
    {
        const double mean_us = 1e6 / exp.arrivalRatePerSec;
        double dt_us;
        if (exp.arrivalMode == 1) {
            // Poisson process: exponential interarrival gaps.
            dt_us = -std::log(1.0 - robustRng.uniform()) * mean_us;
        } else {
            // Bounded Pareto on [1, paretoBound], inverse-CDF
            // sampled, then normalized so the gap mean is mean_us —
            // the same offered load as Poisson, far burstier.
            const double a = exp.paretoAlpha;
            const double hb = std::pow(exp.paretoBound, -a);
            const double x =
                std::pow(1.0 - robustRng.uniform() * (1.0 - hb),
                         -1.0 / a);
            const double norm =
                a / (a - 1.0) *
                (1.0 - std::pow(exp.paretoBound, 1.0 - a)) /
                (1.0 - hb);
            dt_us = x / norm * mean_us;
        }
        const Tick gap = std::max<Tick>(1, usToTicks(dt_us));
        if (batch)
            batch->scheduleAfter(gap, [this]() { onArrival(); });
        else
            eq.scheduleAfter(gap, [this]() { onArrival(); });
    }

    /** An open-mode client materializes and offers one request. */
    void
    onArrival()
    {
        const int conv = static_cast<int>(convs.size());
        if (exp.topo.enabled()) {
            const auto [c, s] =
                topo::placeConversation(exp.topo, conv, exp.seed);
            addConversation(c, s);
        } else {
            addConversation(0, exp.local ? 0 : 1);
        }
        startRequest(conv);
        scheduleNextArrival();
    }

    /**
     * A node crash wipes its volatile kernel state: every queued
     * request attempt is lost (retries and deadlines must recover
     * the requests) and the at-most-once reply cache forgets which
     * requests completed, so a post-crash retry re-executes.
     */
    void
    crashFlush(int nodeIdx)
    {
        if (nodeIdx < 0 ||
            static_cast<std::size_t>(nodeIdx) >= nodes.size())
            return; // single-node run; nothing to flush
        Node &n = *nodes[static_cast<std::size_t>(nodeIdx)];
        std::deque<QueueEntry> flushed;
        flushed.swap(n.pendingMsgs);
        svcEvent(n, "crashFlush");
        for (const QueueEntry &e : flushed) {
            Conversation &cv =
                convs[static_cast<std::size_t>(e.conv)];
            if (cv.rid != e.rid)
                continue;
            ++rpcTotals.crashLostAttempts;
            cv.svcState = SvcState::None;
            if (cv.disp == Disp::None && cv.retriesLeft <= 0 &&
                cv.deadlineAt < 0 && cv.msgId == e.msg)
                terminate(e.conv, Disp::LostToCrash,
                          trace::CausalLog::Terminal::LostToCrash,
                          "rpcCrashLost");
        }
        for (Conversation &cv : convs) {
            if (cv.serverNode == nodeIdx &&
                cv.svcState == SvcState::Done)
                cv.svcState = SvcState::None;
        }
    }

    // --- Server side -------------------------------------------------

    void
    requestArrives(int conv, long m, long rid)
    {
        Node &sn = sNode(conv);
        sn.nicIn.submit(act(
            "dmaIn", costsOf(conv).dmaInReq, sn, prioInterrupt,
            [this, conv, m, rid, &sn]() {
                sn.commProc().submit(
                    act("match", costsOf(conv).match, sn,
                        prioInterrupt,
                        [this, conv, m, rid]() {
                            deliverToService(conv, m, rid);
                        },
                        m));
            },
            m));
    }

    void
    deliverToService(int conv, long m, long rid)
    {
        if (robust) {
            // Admission, duplicate suppression, and reply replay are
            // kernel decisions at the receiving node, paid for before
            // the attempt may join the service queue.
            chargeRpc(sNode(conv), "rpcAdmit", rpcAdmitUs,
                      [this, conv, m, rid]() { admit(conv, m, rid); });
            return;
        }
        sNode(conv).pendingMsgs.push_back(
            QueueEntry{conv, rid, m, eq.now()});
        svcEvent(sNode(conv), "enqueueMsg");
        tryMatch(sNode(conv));
    }

    /** The admission decision for attempt @p m of request @p rid. */
    void
    admit(int conv, long m, long rid)
    {
        Conversation &cv = convs[static_cast<std::size_t>(conv)];
        Node &sn = sNode(conv);
        if (cv.rid != rid)
            return; // an attempt of a long-gone request; drop it
        // At-most-once: a request already queued or in service
        // absorbs duplicate attempts, and a completed one replays
        // the cached reply instead of re-executing.
        if (cv.svcState == SvcState::Queued ||
            cv.svcState == SvcState::InService) {
            ++rpcTotals.duplicatesSuppressed;
            chargeRpc(sn, "rpcDedup", rpcDedupUs);
            return;
        }
        if (cv.svcState == SvcState::Done) {
            ++rpcTotals.replyReplays;
            chargeRpc(sn, "rpcReplay", rpcReplayUs,
                      [this, conv, m, rid]() {
                          replyDeparts(conv, m, rid);
                      });
            return;
        }
        // Bounded service queue: over the cap, the shed policy picks
        // a victim.
        if (exp.svcQueueCap > 0 &&
            static_cast<int>(sn.pendingMsgs.size()) >=
                exp.svcQueueCap) {
            if (exp.shedPolicy == 0) { // reject-new
                shedAttempt(conv, m);
                return;
            }
            std::size_t victim = 0; // drop-oldest: the queue head
            if (exp.shedPolicy == 2) {
                // Deadline-aware: evict the least-slack attempt (the
                // one most likely already doomed), newcomer included.
                Tick best = cv.deadlineAt >= 0
                                ? cv.deadlineAt
                                : std::numeric_limits<Tick>::max();
                bool shedNewcomer = true;
                for (std::size_t i = 0; i < sn.pendingMsgs.size();
                     ++i) {
                    const Conversation &qc =
                        convs[static_cast<std::size_t>(
                            sn.pendingMsgs[i].conv)];
                    const Tick d =
                        qc.deadlineAt >= 0
                            ? qc.deadlineAt
                            : std::numeric_limits<Tick>::max();
                    if (d < best) {
                        best = d;
                        victim = i;
                        shedNewcomer = false;
                    }
                }
                if (shedNewcomer) {
                    shedAttempt(conv, m);
                    return;
                }
            }
            const QueueEntry e = sn.pendingMsgs[victim];
            sn.pendingMsgs.erase(
                sn.pendingMsgs.begin() +
                static_cast<std::ptrdiff_t>(victim));
            svcEvent(sn, "shedEvict");
            shedAttempt(e.conv, e.msg);
        }
        cv.svcState = SvcState::Queued;
        ++rpcTotals.admitted;
        sn.pendingMsgs.push_back(QueueEntry{conv, rid, m, eq.now()});
        svcEvent(sn, "enqueueMsg");
        tryMatch(sn);
    }

    /**
     * Drop attempt @p m of @p conv's request at admission control.
     * When no recovery path remains — no retry timer armed, no
     * deadline to fire, and the dropped attempt was the request's
     * newest — the request itself is terminally shed.
     */
    void
    shedAttempt(int conv, long m)
    {
        Conversation &cv = convs[static_cast<std::size_t>(conv)];
        ++rpcTotals.shedAttempts;
        tlAdd(tlRpcShedAttempts);
        chargeRpc(sNode(conv), "rpcShed", rpcShedUs);
        cv.svcState = SvcState::None;
        if (cv.disp == Disp::None && cv.retriesLeft <= 0 &&
            cv.deadlineAt < 0 && cv.msgId == m)
            terminate(conv, Disp::Shed,
                      trace::CausalLog::Terminal::Shed, "rpcShed");
    }

    void
    serverReceive(int conv)
    {
        Node &sn = sNode(conv);
        serverHost(conv).submit(
            act("recvSyscall", costsOf(conv).recvSyscall, sn, prioTask,
                [this, conv]() { afterRecvSyscall(conv); }));
    }

    void
    afterRecvSyscall(int conv)
    {
        const IpcCosts &c = costsOf(conv);
        if (!c.coproc) {
            serverWaiting(conv);
            return;
        }
        sNode(conv).commProc().submit(
            act("processRecv", c.processRecv, sNode(conv), prioTask,
                [this, conv]() { serverWaiting(conv); }));
    }

    void
    serverWaiting(int conv)
    {
        sNode(conv).waitingServers.push_back(conv);
        svcEvent(sNode(conv), "enqueueServer");
        tryMatch(sNode(conv));
    }

    void
    tryMatch(Node &node)
    {
        while (!node.pendingMsgs.empty() &&
               !node.waitingServers.empty()) {
            const QueueEntry entry = node.pendingMsgs.front();
            if (robust) {
                Conversation &cv =
                    convs[static_cast<std::size_t>(entry.conv)];
                if (cv.rid != entry.rid) {
                    // The request this attempt belonged to is gone.
                    node.pendingMsgs.pop_front();
                    continue;
                }
                // Deadline-aware shedding spends a little at dequeue
                // to skip attempts that already expired instead of
                // serving them to no one — the difference between a
                // goodput collapse and a plateau past the knee.
                if (exp.shedPolicy == 2 && exp.svcQueueCap > 0 &&
                    cv.deadlineAt >= 0 && eq.now() >= cv.deadlineAt) {
                    node.pendingMsgs.pop_front();
                    svcEvent(node, "shedExpired");
                    shedAttempt(entry.conv, entry.msg);
                    continue;
                }
            }
            const int server = node.waitingServers.front();
            node.pendingMsgs.pop_front();
            node.waitingServers.pop_front();
            svcEvent(node, "match");

            // The request's stay in the service queue is time blocked
            // on the rendezvous: nobody was working on the message,
            // it was waiting for a server to become available.
            if (pathLog.enabled() && entry.msg != 0)
                pathLog.interval(entry.msg, node.svcName,
                                 trace::Component::Blocked,
                                 entry.enqueueAt, eq.now());
            if (robust)
                convs[static_cast<std::size_t>(entry.conv)].svcState =
                    SvcState::InService;

            if (isLocal(entry.conv)) {
                // Local rendezvous pays the match on the
                // communication processor; non-local ones already
                // paid it at interrupt level in requestArrives().
                node.commProc().submit(
                    act("match", costsLocal.match, node, prioTask,
                        [this, entry, server]() {
                            rendezvous(entry.conv, server, entry.msg,
                                       entry.rid);
                        },
                        entry.msg));
            } else {
                rendezvous(entry.conv, server, entry.msg, entry.rid);
            }
            return;
        }
    }

    /**
     * @p conv identifies the client whose request is being served and
     * thereby the reply path; @p server the serving task (and its
     * host binding).  Any server at a node may serve any request
     * arriving there.
     */
    void
    rendezvous(int conv, int server, long m, long rid)
    {
        const IpcCosts &c = costsOf(conv);
        auto compute = [this, conv, server, m, rid]() {
            Activity a;
            a.name = "compute";
            a.processing =
                usToTicks(rng.uniform(0.5, 1.5) * exp.computeUs);
            a.msgId = m;
            a.onDone = [this, conv, server, m, rid]() {
                serverHost(server).submit(
                    act("replySyscall", costsOf(conv).reply,
                        sNode(conv), prioTask,
                        [this, conv, server, m, rid]() {
                            afterReplySyscall(conv, server, m, rid);
                        },
                        m));
            };
            serverHost(server).submit(std::move(a));
        };

        if (c.restartServer.valid()) {
            serverHost(server).submit(act("restartServer",
                                          c.restartServer,
                                          sNode(conv), prioTask,
                                          compute, m));
        } else {
            compute();
        }
    }

    void
    afterReplySyscall(int conv, int server, long m, long rid)
    {
        const IpcCosts &c = costsOf(conv);
        auto after_comm = [this, conv, server, m, rid]() {
            // The server resumes its loop...
            const IpcCosts &sc = costsOf(server);
            if (sc.restartServer2.valid()) {
                serverHost(server).submit(
                    act("restartServer2", sc.restartServer2,
                        sNode(server), prioTask, [this, server]() {
                            serverReceive(server);
                        }));
            } else {
                serverReceive(server);
            }
            // ...while the reply travels back to the client.
            replyDeparts(conv, m, rid);
        };

        if (c.coproc) {
            sNode(conv).commProc().submit(
                act("processReply", c.processReply, sNode(conv),
                    prioTask, after_comm, m));
        } else {
            after_comm();
        }
    }

    void
    replyDeparts(int conv, long m, long rid)
    {
        if (robust) {
            Conversation &cv = convs[static_cast<std::size_t>(conv)];
            // The reply is on its way: from here, retries of this
            // request id replay it instead of re-executing.
            if (cv.rid == rid && cv.svcState == SvcState::InService)
                cv.svcState = SvcState::Done;
        }
        if (isLocal(conv)) {
            clientRestart(conv, m, rid);
            return;
        }
        const auto cv = convs[static_cast<std::size_t>(conv)];
        sNode(conv).nicOut.submit(
            act("dmaOut", costsOf(conv).dmaOutReply, sNode(conv),
                prioTask, [this, conv, cv, m, rid]() {
                    wire(cv.serverNode, cv.clientNode, m,
                         [this, conv, m, rid]() {
                             replyArrives(conv, m, rid);
                         });
                },
                m));
    }

    void
    replyArrives(int conv, long m, long rid)
    {
        Node &cn = cNode(conv);
        cn.nicIn.submit(act(
            "dmaIn", costsOf(conv).dmaInReply, cn, prioInterrupt,
            [this, conv, m, rid, &cn]() {
                cn.commProc().submit(
                    act("cleanup", costsOf(conv).cleanupClient, cn,
                        prioInterrupt,
                        [this, conv, m, rid]() {
                            clientRestart(conv, m, rid);
                        },
                        m));
            },
            m));
    }

    void
    clientRestart(int conv, long m, long rid)
    {
        const IpcCosts &c = costsOf(conv);
        auto loop = [this, conv, m, rid]() {
            roundTripDone(conv, m, rid);
        };
        if (c.restartClient.valid()) {
            clientHost(conv).submit(act("restartClient",
                                        c.restartClient, cNode(conv),
                                        prioTask, loop, m));
        } else {
            loop();
        }
    }

    void
    roundTripDone(int conv, long m, long rid)
    {
        Node &cn = cNode(conv);
        Conversation &cv0 = convs[static_cast<std::size_t>(conv)];
        if (robust &&
            (cv0.rid != rid || cv0.disp != Disp::None)) {
            // An orphaned reply: it answers a request that expired,
            // was shed, or already completed through another attempt.
            // The client kernel spends a little to discard it.
            ++rpcTotals.orphanedReplies;
            tlAdd(tlRpcOrphans);
            chargeRpc(cn, "rpcOrphan", rpcOrphanUs);
            if (tracer->enabled() && cn.svcTrack >= 0)
                tracer->instant(cn.svcTrack, "rpcOrphan", eq.now(),
                                "rpc");
            return;
        }
        // Without the robustness layer exactly one attempt exists per
        // trip, so the arriving reply's id is the conversation's.
        hsipc_assert(robust || cv0.msgId == m);
        // The message's life ends here, before the tail send below
        // issues a fresh id for the next trip.  Note the id closed is
        // the *newest* attempt's — when an older attempt's reply
        // completes the request, the newest attempt is the one whose
        // record spans the measured sendStart.
        if (cv0.msgId != 0) {
            if (pathLog.enabled())
                pathLog.done(cv0.msgId, eq.now());
            if (tracer->enabled() && cn.svcTrack >= 0)
                tracer->asyncEnd(cn.svcTrack, "roundTrip", eq.now(),
                                 cv0.msgId);
            if (tracer->enabled())
                tracer->flowEnd(clientHost(conv).traceTrackId(),
                                "msg", eq.now(), cv0.msgId);
            cv0.msgId = 0;
        }

        if (robust) {
            cv0.disp = Disp::Completed;
            const long by =
                1 + check::testHooks().rpcCompletionMiscount;
            rpcTotals.completed += by;
            tlAdd(tlRpcCompleted, static_cast<double>(by));
            releaseBuffer(conv);
        } else {
            // Release the kernel buffer; wake a stalled sender.
            ++cn.freeBuffers;
            wakeBufferWaiter(cn);
        }

        // A completed round trip involving a crashed node marks the
        // end of its recovery.
        for (Recovery &r : recoveries) {
            if (r.recoveredAt < 0 && eq.now() >= usToTicks(r.w.endUs) &&
                (cv0.clientNode == r.w.node ||
                 cv0.serverNode == r.w.node))
                r.recoveredAt = eq.now();
        }

        const Tick start = cv0.sendStart;
        // Whole-run trip series (warmup included): the raw material
        // of the MSER-5 steady-state detection, which must see the
        // initial transient to find its end.
        if (tlAllTrips) {
            tlAdd(tlAllTrips);
            tlAdd(tlRtSum, ticksToUs(eq.now() - start));
        }
        if (eq.now() > usToTicks(exp.warmupUs)) {
            ++completed;
            tlAdd(tlTrips);
            const double rt_us = ticksToUs(eq.now() - start);
            rt.add(rt_us);
            rtSamples.push_back(rt_us);
            if (rtHist)
                rtHist->observe(rt_us);
            if (isLocal(conv))
                rtLocal.add(rt_us);
            else
                rtRemote.add(rt_us);
            if (robust)
                sojournSketch.observe(
                    ticksToUs(eq.now() - cv0.arrivalAt));
        }
        if (!robust)
            clientSend(conv);
        else if (exp.arrivalMode == 0)
            startRequest(conv);
    }

    /** One crash window and when its node first completed work again. */
    struct Recovery
    {
        CrashWindow w;
        Tick recoveredAt = -1;
    };

    Experiment exp;
    IpcCosts costsLocal;
    IpcCosts costsNonlocal;
    Rng rng;
    FaultInjector injector;
    //! Robustness layer (open arrivals, deadlines, retries, admission
    //! control): active only when a robustness knob is set, so the
    //! default configuration never touches — or pays for — any of it.
    const bool robust;
    //! Dedicated stream: robustness draws (arrival gaps, retry
    //! jitter) never perturb the workload's or injector's sequences.
    Rng robustRng;
    EventQueue eq;

    // Observability sinks: caller-supplied or owned.  `tracer` is
    // never null (a disabled owned tracer records nothing); `metrics`
    // is null when metrics are off, and the histogram pointers are
    // the hot-path handles into it.
    trace::Tracer ownTracer;
    metrics::Registry ownMetrics;
    trace::Tracer *tracer = nullptr;
    metrics::Registry *metrics = nullptr;
    metrics::Histogram *rtHist = nullptr;
    metrics::Histogram *pendingHist = nullptr;
    metrics::Histogram *waitingHist = nullptr;
    int simTrack = -1;

    //! Per-message causal intervals backing Outcome::decomposition;
    //! enabled only when exp.decomposeLatency is set.
    trace::CausalLog pathLog;
    long lastMsgId = 0; //!< last lifetime id issued (0 = untagged)
    long lastRid = 0;   //!< last request id issued (0 = untracked)
    Outcome::Rpc rpcTotals; //!< whole-run disposition ledger
    //! Windowed arrival→reply sojourns; mergeable, fixed relative
    //! error, and the source of Outcome::rpc's sojourn percentiles.
    obs::QuantileSketch sojournSketch;

    // Time-resolved observability: the recorder plus one handle per
    // counter series.  All handles stay null (each bump site one
    // branch) unless exp.timelineIntervalUs is positive.
    obs::TimelineRecorder tl;
    obs::TimelineRecorder::Series *tlAllTrips = nullptr;
    obs::TimelineRecorder::Series *tlRtSum = nullptr;
    obs::TimelineRecorder::Series *tlTrips = nullptr;
    obs::TimelineRecorder::Series *tlStalls = nullptr;
    obs::TimelineRecorder::Series *tlRpcOffered = nullptr;
    obs::TimelineRecorder::Series *tlRpcCompleted = nullptr;
    obs::TimelineRecorder::Series *tlRpcShed = nullptr;
    obs::TimelineRecorder::Series *tlRpcShedAttempts = nullptr;
    obs::TimelineRecorder::Series *tlRpcExpired = nullptr;
    obs::TimelineRecorder::Series *tlRpcLost = nullptr;
    obs::TimelineRecorder::Series *tlRpcRetries = nullptr;
    obs::TimelineRecorder::Series *tlRpcOrphans = nullptr;
    obs::TimelineRecorder::Series *tlNetTx = nullptr;
    obs::TimelineRecorder::Series *tlNetRetx = nullptr;
    obs::TimelineRecorder::Series *tlNetDeliver = nullptr;
    obs::TimelineRecorder::Series *tlNetAck = nullptr;
    std::map<std::string, Tick> tlBusyPrev; //!< last busy snapshot
    Tick tlPrevBoundary = 0; //!< when that snapshot was taken
    int tlTrack = -1; //!< Perfetto counter track for the timeline

    //! Engine self-profiler (null when off): external one wins,
    //! otherwise owned when exp.engineProfile is set.
    obs::EngineProfiler *engProf = nullptr;
    std::unique_ptr<obs::EngineProfiler> ownEngProf;
    int wireOrigin = 0; //!< profiler origin id for wire deliveries

    std::vector<std::unique_ptr<Node>> nodes;
    std::unique_ptr<TokenRing> ring;
    //! The instantiated interconnect (null unless exp.topo enables
    //! the topology layer).
    std::unique_ptr<topo::Network> net;
    int nn = 1; //!< node count (1, 2, or exp.topo.nodes)
    //! Reliable channels, one per ordered node pair in row-major
    //! order (empty when the medium is ideal); for two nodes that is
    //! the historical [0 -> 1, 1 -> 0] pair.
    std::vector<std::unique_ptr<ReliableChannel>> chans;
    int protoAccesses = 0;
    std::vector<Recovery> recoveries;

    std::vector<Conversation> convs;
    long completed = 0;
    long bufferStalls = 0;
    RunningStat rt;
    RunningStat rtLocal;
    RunningStat rtRemote;
    std::vector<double> rtSamples;
};

} // namespace

Outcome
runExperiment(const Experiment &exp)
{
    return runExperiment(exp, nullptr, nullptr);
}

Outcome
runExperiment(const Experiment &exp, trace::Tracer *tracer,
              metrics::Registry *metrics)
{
    return runExperiment(exp, tracer, metrics, nullptr);
}

Outcome
runExperiment(const Experiment &exp, trace::Tracer *tracer,
              metrics::Registry *metrics,
              obs::EngineProfiler *engineProf)
{
    // Test-only interception point (off in production; see
    // sim/check/test_hooks.hh).
    if (check::testHooks().beforeRun)
        check::testHooks().beforeRun(exp);

    // Reject impossible configurations up front, with the offending
    // condition in the message, instead of producing silent nonsense
    // downstream.
    hsipc_assert(exp.conversations >= 1 || exp.mixedLocal > 0 ||
                 exp.mixedRemote > 0);
    hsipc_assert(exp.mixedLocal >= 0 && exp.mixedRemote >= 0);
    hsipc_assert(exp.hostsPerNode >= 1);
    hsipc_assert(exp.packetBytes > 0 && "packetBytes must be positive");
    hsipc_assert(exp.computeUs >= 0 && "computeUs cannot be negative");
    hsipc_assert(exp.wireUs >= 0 && "wireUs cannot be negative");
    hsipc_assert(exp.kernelBuffers >= 1 &&
                 "need at least one kernel buffer per node");
    hsipc_assert(exp.mpSpeedFactor > 0 &&
                 "mpSpeedFactor must be positive");
    hsipc_assert(exp.ringMbps > 0 && "ringMbps must be positive");
    hsipc_assert(exp.warmupUs >= 0 && exp.measureUs > 0);
    for (double rate : {exp.lossRate, exp.corruptRate,
                        exp.duplicateRate, exp.reorderRate})
        hsipc_assert(rate >= 0 && rate <= 1 &&
                     "fault rates are probabilities");
    hsipc_assert(exp.reorderDelayUs >= 0);
    hsipc_assert(exp.retransmitTimeoutUs > 0 &&
                 "retransmitTimeoutUs must be positive");
    hsipc_assert(exp.retransmitWindow >= 1 &&
                 "retransmitWindow must be at least 1");
    const int crashNodes = std::max(2, exp.topo.nodes);
    for (const CrashWindow &w : exp.crashSchedule) {
        hsipc_assert(w.node >= 0 && w.node < crashNodes &&
                     "crash node must name an existing node");
        hsipc_assert(w.startUs >= 0 && w.endUs > w.startUs &&
                     "crash window must be well-formed");
    }
    hsipc_assert(exp.arrivalMode >= 0 && exp.arrivalMode <= 2 &&
                 "arrivalMode is 0 (closed), 1 (Poisson), or 2 "
                 "(bounded Pareto)");
    if (exp.arrivalMode != 0) {
        hsipc_assert(exp.arrivalRatePerSec > 0 &&
                     "open arrivals need a positive rate");
        hsipc_assert(exp.mixedLocal == 0 && exp.mixedRemote == 0 &&
                     "open arrivals are incompatible with the mixed "
                     "workload");
    }
    if (exp.arrivalMode == 2) {
        hsipc_assert(exp.paretoAlpha > 0 && exp.paretoAlpha != 1.0 &&
                     "bounded Pareto needs alpha > 0, alpha != 1");
        hsipc_assert(exp.paretoBound > 1 &&
                     "bounded Pareto needs an upper bound > 1");
    }
    hsipc_assert(exp.deadlineUs >= 0 &&
                 "deadlineUs cannot be negative");
    hsipc_assert(exp.retryBudget >= 0 &&
                 "retryBudget cannot be negative");
    if (exp.retryBudget > 0)
        hsipc_assert(exp.retryBackoffUs > 0 &&
                     exp.retryBackoffMaxUs >= exp.retryBackoffUs &&
                     "retry backoff needs 0 < base <= ceiling");
    hsipc_assert(exp.svcQueueCap >= 0 &&
                 "svcQueueCap cannot be negative");
    hsipc_assert(exp.shedPolicy >= 0 && exp.shedPolicy <= 2 &&
                 "shedPolicy is 0 (reject-new), 1 (drop-oldest), or "
                 "2 (deadline-aware)");
    hsipc_assert(exp.rtoMaxUs > 0 && "rtoMaxUs must be positive");
    hsipc_assert(exp.timelineIntervalUs >= 0 &&
                 "timelineIntervalUs cannot be negative");
    if (exp.timelineIntervalUs > 0)
        hsipc_assert((exp.warmupUs + exp.measureUs) /
                             exp.timelineIntervalUs <=
                         4e6 &&
                     "timeline bin count is unreasonably large");
    hsipc_assert((exp.timelineFile.empty() ||
                  exp.timelineIntervalUs > 0) &&
                 "timelineFile needs a positive timelineIntervalUs");
    hsipc_assert(exp.traceSampleRate >= 0 &&
                 exp.traceSampleRate <= 1 &&
                 "traceSampleRate is a probability");
    hsipc_assert((exp.engineProfileFile.empty() ||
                  exp.engineProfile) &&
                 "engineProfileFile needs engineProfile");
    hsipc_assert(exp.queueKind >= 0 && exp.queueKind <= 1 &&
                 "queueKind is 0 (binary heap) or 1 (ladder queue)");
    hsipc_assert(exp.expectedPendingEvents >= 0 &&
                 "expectedPendingEvents cannot be negative");
    hsipc_assert((exp.topo.nodes == 0 ||
                  (exp.topo.nodes >= 2 && exp.topo.nodes <= 1024)) &&
                 "topology nodes is 0 (off) or in [2, 1024]");
    if (exp.topo.enabled()) {
        hsipc_assert(exp.topo.kind >= 0 && exp.topo.kind <= 2 &&
                     "topology kind is 0 (mesh), 1 (switch), or 2 "
                     "(ring segments)");
        hsipc_assert(exp.topo.placement >= 0 &&
                     exp.topo.placement <= 3 &&
                     "placement is 0 (classic), 1 (round-robin), 2 "
                     "(locality), or 3 (hot-spot)");
        hsipc_assert(exp.topo.linkLatencyUs >= 0 &&
                     exp.topo.switchLatencyUs >= 0 &&
                     exp.topo.linkMbps >= 0 &&
                     "link parameters cannot be negative");
        hsipc_assert(exp.topo.segments >= 1 &&
                     "topology needs at least one ring segment");
        hsipc_assert(exp.topo.segMbps > 0 &&
                     "segment ring rate must be positive");
        hsipc_assert(exp.topo.zipfSkew > 0 &&
                     "hot-spot skew must be positive");
        for (const topo::TopoLink &l : exp.topo.links)
            hsipc_assert(l.a >= 0 && l.b >= 0 && l.a != l.b &&
                         l.latencyUs >= 0 && l.mbps >= 0 &&
                         "link override must be well-formed");
        hsipc_assert(exp.mixedLocal == 0 && exp.mixedRemote == 0 &&
                     "the topology layer is incompatible with the "
                     "mixed workload");
        hsipc_assert(!exp.useTokenRing &&
                     "topology kind 2 models ring segments; "
                     "useTokenRing is the legacy two-node ring");
    }
    Sim sim(exp, tracer, metrics, engineProf);
    return sim.run();
}

} // namespace hsipc::sim
