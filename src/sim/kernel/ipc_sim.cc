#include "sim/kernel/ipc_sim.hh"

#include <algorithm>
#include <deque>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "common/rng.hh"
#include "sim/check/test_hooks.hh"
#include "sim/des/event_queue.hh"
#include "sim/des/resource.hh"
#include "sim/net/faults.hh"
#include "sim/net/reliable.hh"
#include "sim/node/costs.hh"
#include "sim/node/processor.hh"
#include "sim/node/token_ring.hh"

namespace hsipc::sim
{

using models::Arch;

namespace
{

/** The 40-byte copy added by the validation configuration (§6.8). */
constexpr double extraCopyUs = 220.0;

/** One node of the distributed system. */
struct Node
{
    Node(EventQueue &eq, const std::string &prefix, int hosts,
         bool coproc, bool split_bus, trace::Tracer *tracer,
         trace::CausalLog *causal)
        : busTcb(eq, prefix + ".busTcb"),
          busKb(eq, prefix + ".busKb"), nicIn(eq, prefix + ".nicIn"),
          nicOut(eq, prefix + ".nicOut"), splitBus(split_bus),
          svcName(prefix + ".svc")
    {
        for (int h = 0; h < hosts; ++h)
            this->hosts.emplace_back(
                std::make_unique<Processor>(eq, prefix + ".host" +
                                            std::to_string(h)));
        if (coproc)
            mp = std::make_unique<Processor>(eq, prefix + ".mp");

        // Track registration order fixes the trace layout: hosts,
        // MP, bus partitions, DMA engines, then the service queue.
        if (tracer) {
            for (auto &h : this->hosts)
                h->attachTracer(tracer);
            if (mp)
                mp->attachTracer(tracer);
            busTcb.attachTracer(tracer);
            if (split_bus)
                busKb.attachTracer(tracer);
            nicIn.attachTracer(tracer);
            nicOut.attachTracer(tracer);
            svcTrack = tracer->track(prefix + ".svc");
        }
        if (causal) {
            for (auto &h : this->hosts)
                h->attachCausalLog(causal);
            if (mp)
                mp->attachCausalLog(causal);
            busTcb.attachCausalLog(causal);
            if (split_bus)
                busKb.attachCausalLog(causal);
            nicIn.attachCausalLog(causal);
            nicOut.attachCausalLog(causal);
        }
    }

    /** The processor executing communication processing. */
    Processor &
    commProc()
    {
        return mp ? *mp : *hosts[0];
    }

    std::vector<std::unique_ptr<Processor>> hosts;
    std::unique_ptr<Processor> mp;
    Resource busTcb;
    Resource busKb;
    Processor nicIn;
    Processor nicOut;
    bool splitBus;

    // Kernel state: the node's service queue (pending client ids and
    // waiting server ids) plus the kernel-buffer free pool.
    std::deque<int> pendingMsgs;
    std::deque<int> waitingServers;
    int freeBuffers = 0;
    std::deque<int> buffersWaiting; //!< clients stalled for a buffer
    int svcTrack = -1; //!< trace track of the service queue
    std::string svcName; //!< causal-log resource name of the queue
};

/** Build the injector's fault model from the experiment knobs. */
FaultPlan
makePlan(const Experiment &exp)
{
    FaultPlan p;
    p.dropRate = exp.lossRate;
    p.corruptRate = exp.corruptRate;
    p.duplicateRate = exp.duplicateRate;
    p.reorderRate = exp.reorderRate;
    p.reorderDelayUs = exp.reorderDelayUs;
    p.crashes = exp.crashSchedule;
    return p;
}

/** The whole simulation. */
class Sim
{
  public:
    Sim(const Experiment &exp, trace::Tracer *extTracer,
        metrics::Registry *extMetrics)
        : exp(exp), rng(exp.seed),
          // The injector draws from its own stream so that enabling
          // faults never perturbs the workload's random sequence.
          injector(makePlan(exp), exp.seed ^ 0xFA017D0BEEFull)
    {
        // Resolve the observability sinks before anything registers a
        // track: an external tracer (the caller enables it) or the
        // owned one when the experiment names a trace file.  Metrics
        // instruments exist only when somebody will read them.
        tracer = extTracer ? extTracer : &ownTracer;
        if (!exp.traceFile.empty())
            tracer->setEnabled(true);
        metrics = extMetrics ? extMetrics
                             : (exp.metricsFile.empty() ? nullptr
                                                        : &ownMetrics);
        if (metrics) {
            rtHist = &metrics->histogram("ipc.roundTripUs");
            pendingHist =
                &metrics->histogram("svc.pendingMsgsDepth");
            waitingHist =
                &metrics->histogram("svc.waitingServersDepth");
        }

        const bool mixed =
            exp.mixedLocal > 0 || exp.mixedRemote > 0;
        const bool coproc = exp.arch != Arch::I;
        const bool split = exp.arch == Arch::IV;
        const bool two_nodes = mixed || !exp.local;

        costsLocal = ipcCosts(exp.arch, true);
        costsNonlocal = ipcCosts(exp.arch, false);
        adjust(costsLocal);
        adjust(costsNonlocal);

        // The causal log powering the critical-path decomposition is
        // independent of the tracer (a decomposition needs no trace
        // file) and equally observational.
        if (exp.decomposeLatency)
            pathLog.setEnabled(true);
        trace::CausalLog *nodeCausal =
            pathLog.enabled() ? &pathLog : nullptr;
        trace::Tracer *nodeTracer =
            tracer->enabled() ? tracer : nullptr;
        nodes.push_back(std::make_unique<Node>(eq, "n0",
                                               exp.hostsPerNode,
                                               coproc, split,
                                               nodeTracer,
                                               nodeCausal));
        if (two_nodes)
            nodes.push_back(std::make_unique<Node>(eq, "n1",
                                                   exp.hostsPerNode,
                                                   coproc, split,
                                                   nodeTracer,
                                                   nodeCausal));
        for (auto &n : nodes)
            n->freeBuffers = exp.kernelBuffers;
        if (tracer->enabled())
            injector.attachTracer(tracer, &eq);

        if (two_nodes && exp.useTokenRing) {
            TokenRing::Config rc;
            rc.stations = 2;
            rc.megabitsPerSec = exp.ringMbps;
            ring = std::make_unique<TokenRing>(eq, rc);
        }

        // The reliability stack is strictly pay-for-use: it exists
        // only when the medium can fail (or when explicitly forced),
        // so fault-free runs keep the ideal-medium code path and
        // produce bit-identical results.
        if (two_nodes && (injector.faultPlan().active() ||
                          exp.reliableProtocol)) {
            ReliableChannel::Config rc;
            rc.windowSize = exp.retransmitWindow;
            rc.rtoUs = exp.retransmitTimeoutUs;
            rc.rtoMaxUs = std::max(rc.rtoMaxUs, rc.rtoUs);
            rc.dataBytes = exp.packetBytes;
            protoAccesses = rc.busAccesses;

            ReliableChannel::Hooks h;
            // Protocol steps are kernel activities on the node's
            // communication processor: the host pays under
            // Architecture I, the MP under II-IV.
            h.exec = [this](int node, const char *name, double procUs,
                            int prio, EventQueue::Callback done) {
                Node &n = *nodes[static_cast<std::size_t>(node)];
                ActCost c;
                c.procUs = procUs;
                if (n.mp && this->exp.mpSpeedFactor != 1.0)
                    c.procUs /= this->exp.mpSpeedFactor;
                c.kb = protoAccesses;
                n.commProc().submit(
                    act(name, c, n, prio, std::move(done)));
            };
            for (int src : {0, 1}) {
                rc.srcNode = src;
                rc.dstNode = 1 - src;
                h.mediumToDst = [this, src](int bytes,
                                            EventQueue::Callback cb) {
                    rawWire(src, 1 - src, bytes, std::move(cb));
                };
                h.mediumToSrc = [this, src](int bytes,
                                            EventQueue::Callback cb) {
                    rawWire(1 - src, src, bytes, std::move(cb));
                };
                chans[static_cast<std::size_t>(src)] =
                    std::make_unique<ReliableChannel>(eq, rc, injector,
                                                      h);
            }
            if (tracer->enabled()) {
                chans[0]->attachTracer(tracer, "net.n0->n1");
                chans[1]->attachTracer(tracer, "net.n1->n0");
            }
        }
        if (tracer->enabled())
            simTrack = tracer->track("sim");
        for (const CrashWindow &w : exp.crashSchedule)
            recoveries.push_back(Recovery{w, -1});

        // Lay out the conversations: classic mode pins all clients to
        // node 0 (servers at node 1 when non-local); mixed mode
        // interleaves local pairs and cross-node pairs over both
        // nodes — the case the thesis' models could not represent
        // (§6.6.3).
        if (mixed) {
            for (int i = 0; i < exp.mixedLocal; ++i)
                addConversation(i % 2, i % 2);
            for (int i = 0; i < exp.mixedRemote; ++i)
                addConversation(i % 2, 1 - i % 2);
        } else {
            for (int i = 0; i < exp.conversations; ++i)
                addConversation(0, exp.local ? 0 : 1);
        }

        for (std::size_t i = 0; i < convs.size(); ++i) {
            const int conv = static_cast<int>(i);
            eq.schedule(static_cast<Tick>(i) * 7,
                        [this, conv]() { clientSend(conv); });
            eq.schedule(3 + static_cast<Tick>(i) * 7,
                        [this, conv]() { serverReceive(conv); });
        }
    }

    Outcome
    run()
    {
        const Tick warm = usToTicks(exp.warmupUs);
        const Tick end = warm + usToTicks(exp.measureUs);
        eq.runUntil(warm);
        const std::map<std::string, Tick> baseline =
            activitySnapshot();
        const std::map<std::string, Tick> busyBase =
            resourceBusySnapshot();
        const ReliableChannel::Stats chanBase = channelStats();
        const FaultInjector::Stats injBase = injector.stats();
        const auto [protoHostBase, protoMpBase] = protoTicks();
        if (simTrack >= 0)
            tracer->instant(simTrack, "measureStart", warm, "phase");
        eq.runUntil(end);
        if (simTrack >= 0)
            tracer->instant(simTrack, "measureEnd", end, "phase");

        Outcome out;
        out.roundTrips = completed;
        out.throughputPerSec = static_cast<double>(completed) /
                               (ticksToUs(end - warm) / 1e6);
        out.meanRoundTripUs = rt.mean();
        out.rtCi95Us = rt.ci95();
        if (!rtSamples.empty()) {
            std::vector<double> s = rtSamples;
            std::sort(s.begin(), s.end());
            out.rtP50Us = s[s.size() / 2];
            out.rtP95Us = s[(s.size() * 95) / 100];
        }
        for (const auto &n : nodes) {
            for (const auto &h : n->hosts)
                out.hostUtil = std::max(out.hostUtil,
                                        h->utilization());
            if (n->mp)
                out.mpUtil = std::max(out.mpUtil,
                                      n->mp->utilization());
            out.busUtil = std::max(out.busUtil,
                                   n->busTcb.utilization());
        }
        out.bufferStalls = bufferStalls;
        if (completed > 0) {
            // Only the measurement window counts, matching the
            // round-trip denominator.
            for (const auto &[name, ticks] : activitySnapshot()) {
                Tick before = 0;
                auto it = baseline.find(name);
                if (it != baseline.end())
                    before = it->second;
                out.activityUsPerRoundTrip[name] =
                    ticksToUs(ticks - before) /
                    static_cast<double>(completed);
            }
        }
        // The per-resource utilization timeline's summary: busy
        // fraction of every resource over the measurement window
        // alone (hostUtil/mpUtil/busUtil above stay whole-run maxima
        // for compatibility).
        const double window_ticks = static_cast<double>(end - warm);
        for (const auto &[name, busy] : resourceBusySnapshot()) {
            Tick before = 0;
            auto it = busyBase.find(name);
            if (it != busyBase.end())
                before = it->second;
            out.resourceUtilization[name] =
                static_cast<double>(busy - before) / window_ticks;
        }
        if (ring) {
            out.ringUtil = ring->utilization();
            out.ringTokenWaitUs = ring->meanTokenWaitUs();
        }
        const double window_sec = ticksToUs(end - warm) / 1e6;
        out.localThroughputPerSec =
            static_cast<double>(rtLocal.count()) / window_sec;
        out.remoteThroughputPerSec =
            static_cast<double>(rtRemote.count()) / window_sec;
        out.localMeanRtUs = rtLocal.mean();
        out.remoteMeanRtUs = rtRemote.mean();

        // Reliability-stack measurements over the same window.
        const ReliableChannel::Stats cs = channelStats();
        out.retransmissions =
            cs.retransmissions - chanBase.retransmissions;
        out.timeoutsFired = cs.timeoutsFired - chanBase.timeoutsFired;
        out.duplicatesDropped =
            cs.duplicatesDropped - chanBase.duplicatesDropped;
        out.corruptDiscarded =
            cs.corruptDiscarded - chanBase.corruptDiscarded;
        const FaultInjector::Stats fs = injector.stats();
        out.faultDrops = fs.dropped - injBase.dropped;
        out.crashDrops = fs.crashDrops - injBase.crashDrops;
        out.netThroughputPktsPerSec =
            static_cast<double>(cs.dataTransmissions -
                                chanBase.dataTransmissions) /
            window_sec;
        out.netGoodputPktsPerSec =
            static_cast<double>(cs.delivered - chanBase.delivered) /
            window_sec;
        if (completed > 0) {
            const auto [protoHost, protoMp] = protoTicks();
            out.protoHostUsPerRt =
                ticksToUs(protoHost - protoHostBase) /
                static_cast<double>(completed);
            out.protoMpUsPerRt = ticksToUs(protoMp - protoMpBase) /
                                 static_cast<double>(completed);
        }
        for (const Recovery &r : recoveries) {
            if (r.recoveredAt >= 0) {
                ++out.crashWindowsRecovered;
                out.meanRecoveryUs +=
                    ticksToUs(r.recoveredAt - usToTicks(r.w.endUs));
            }
        }
        if (out.crashWindowsRecovered > 0)
            out.meanRecoveryUs /= out.crashWindowsRecovered;

        // Whole-run conservation ledger (the windowed counters above
        // cannot carry exact flow identities; these can).
        Outcome::NetTotals &nt = out.netTotals;
        nt.msgsAccepted = cs.accepted;
        nt.msgsDelivered = cs.delivered;
        nt.dataTransmissions = cs.dataTransmissions;
        nt.retransmissions = cs.retransmissions;
        nt.timeoutsFired = cs.timeoutsFired;
        nt.duplicatesDropped = cs.duplicatesDropped;
        nt.corruptDiscarded = cs.corruptDiscarded;
        nt.acksSent = cs.acksSent;
        for (const auto &c : chans) {
            if (!c)
                continue;
            nt.windowPendingAtEnd += c->windowPending();
            nt.backlogAtEnd += c->backlogSize();
        }
        nt.pktsInjected = fs.injected;
        nt.pktsDropped = fs.dropped;
        nt.pktsCorrupted = fs.corrupted;
        nt.pktsDuplicated = fs.duplicated;
        nt.pktsReordered = fs.reordered;
        nt.pktsCrashDropped = fs.crashDrops;
        if (exp.decomposeLatency) {
            out.decomposition = trace::decompose(pathLog, warm, end);
            if (metrics) {
                // Component latency histograms over the same window
                // the decomposition covers.
                auto &h_rt = metrics->histogram("lat.roundTripUs");
                auto &h_svc = metrics->histogram("lat.serviceUs");
                auto &h_q = metrics->histogram("lat.queueUs");
                auto &h_net = metrics->histogram("lat.networkUs");
                auto &h_blk = metrics->histogram("lat.blockedUs");
                for (const auto &[id, rec] : pathLog.records()) {
                    if (rec.end < 0 || rec.end <= warm ||
                        rec.end > end)
                        continue;
                    const trace::MessagePath p =
                        trace::reconstructPath(id, rec);
                    h_rt.observe(p.roundTripUs);
                    h_svc.observe(p.serviceUs);
                    h_q.observe(p.queueUs);
                    h_net.observe(p.networkUs);
                    h_blk.observe(p.blockedUs);
                }
            }
        }
        finishObservability(out);
        return out;
    }

  private:
    /** One client/server pair and its placement. */
    struct Conversation
    {
        int clientNode;
        int serverNode;
        int host; //!< static task-to-host binding (§6.8)
        Tick sendStart = 0;
        //! Lifetime id of the in-flight message (0 between trips).
        long msgId = 0;
        //! When the request joined the server's service queue.
        Tick svcEnqueueAt = 0;
    };

    void
    adjust(IpcCosts &c)
    {
        if (exp.extraCopy) {
            c.processSend.procUs += extraCopyUs;
            c.match.procUs += extraCopyUs;
            c.processReply.procUs += extraCopyUs;
            c.cleanupClient.procUs += extraCopyUs;
        }
        if (c.coproc && exp.mpSpeedFactor != 1.0) {
            hsipc_assert(exp.mpSpeedFactor > 0.0);
            for (ActCost *a : {&c.processSend, &c.processRecv,
                               &c.match, &c.processReply,
                               &c.cleanupClient})
                a->procUs /= exp.mpSpeedFactor;
        }
    }

    void
    addConversation(int client_node, int server_node)
    {
        Conversation cv;
        cv.clientNode = client_node;
        cv.serverNode = server_node;
        cv.host = static_cast<int>(convs.size()) % exp.hostsPerNode;
        convs.push_back(cv);
    }

    bool
    isLocal(int conv) const
    {
        const auto &cv = convs[static_cast<std::size_t>(conv)];
        return cv.clientNode == cv.serverNode;
    }

    const IpcCosts &
    costsOf(int conv) const
    {
        return isLocal(conv) ? costsLocal : costsNonlocal;
    }

    Node &
    cNode(int conv)
    {
        return *nodes[static_cast<std::size_t>(
            convs[static_cast<std::size_t>(conv)].clientNode)];
    }

    Node &
    sNode(int conv)
    {
        return *nodes[static_cast<std::size_t>(
            convs[static_cast<std::size_t>(conv)].serverNode)];
    }

    Processor &
    clientHost(int conv)
    {
        return *cNode(conv).hosts[static_cast<std::size_t>(
            convs[static_cast<std::size_t>(conv)].host)];
    }

    Processor &
    serverHost(int conv)
    {
        return *sNode(conv).hosts[static_cast<std::size_t>(
            convs[static_cast<std::size_t>(conv)].host)];
    }

    /** The in-flight message id of @p conv (0 between trips). */
    long
    msgOf(int conv) const
    {
        return convs[static_cast<std::size_t>(conv)].msgId;
    }

    Activity
    act(const std::string &name, const ActCost &c, Node &node,
        int priority, EventQueue::Callback done, long msgId = 0)
    {
        Activity a;
        a.name = name;
        a.processing = usToTicks(c.procUs);
        a.priority = priority;
        a.msgId = msgId;
        a.onDone = std::move(done);
        if (node.splitBus) {
            a.memAccesses = c.tcb;
            a.bus = &node.busTcb;
            a.memAccesses2 = c.kb;
            a.bus2 = &node.busKb;
        } else {
            a.memAccesses = c.tcb + c.kb;
            a.bus = &node.busTcb;
        }
        return a;
    }

    /** Sum the two channels' protocol statistics. */
    ReliableChannel::Stats
    channelStats() const
    {
        ReliableChannel::Stats sum;
        for (const auto &c : chans) {
            if (!c)
                continue;
            const ReliableChannel::Stats &s = c->stats();
            sum.accepted += s.accepted;
            sum.delivered += s.delivered;
            sum.dataTransmissions += s.dataTransmissions;
            sum.retransmissions += s.retransmissions;
            sum.timeoutsFired += s.timeoutsFired;
            sum.duplicatesDropped += s.duplicatesDropped;
            sum.corruptDiscarded += s.corruptDiscarded;
            sum.acksSent += s.acksSent;
        }
        return sum;
    }

    /** Protocol busy time split into (host, MP) shares. */
    std::pair<Tick, Tick>
    protoTicks() const
    {
        auto protoSum = [](const Processor &p) {
            Tick t = 0;
            for (const auto &[name, ticks] : p.activityTicks()) {
                if (name.rfind("proto", 0) == 0)
                    t += ticks;
            }
            return t;
        };
        Tick host = 0;
        Tick mp = 0;
        for (const auto &n : nodes) {
            for (const auto &h : n->hosts)
                host += protoSum(*h);
            if (n->mp)
                mp += protoSum(*n->mp);
        }
        return {host, mp};
    }

    /** Busy ticks of every processor and bus, by track name. */
    std::map<std::string, Tick>
    resourceBusySnapshot() const
    {
        std::map<std::string, Tick> snap;
        for (const auto &n : nodes) {
            for (const auto &h : n->hosts)
                snap[h->processorName()] = h->busyTime();
            if (n->mp)
                snap[n->mp->processorName()] = n->mp->busyTime();
            snap[n->busTcb.resourceName()] = n->busTcb.busyTime();
            if (n->splitBus)
                snap[n->busKb.resourceName()] = n->busKb.busyTime();
            snap[n->nicIn.processorName()] = n->nicIn.busyTime();
            snap[n->nicOut.processorName()] = n->nicOut.busyTime();
        }
        return snap;
    }

    /**
     * Record a service-queue transition: an instant naming what
     * happened plus both queue depths, mirrored into the depth
     * histograms when metrics are on.
     */
    void
    svcEvent(Node &node, const char *what)
    {
        if (tracer->enabled() && node.svcTrack >= 0) {
            tracer->instant(node.svcTrack, what, eq.now(), "queue");
            tracer->counter(
                node.svcTrack, "pendingMsgs", eq.now(),
                static_cast<double>(node.pendingMsgs.size()));
            tracer->counter(
                node.svcTrack, "waitingServers", eq.now(),
                static_cast<double>(node.waitingServers.size()));
        }
        if (metrics) {
            pendingHist->observe(
                static_cast<double>(node.pendingMsgs.size()));
            waitingHist->observe(
                static_cast<double>(node.waitingServers.size()));
        }
    }

    /** End of run: fill the registry and write any requested files. */
    void
    finishObservability(const Outcome &out)
    {
        if (metrics) {
            metrics->counter("des.eventsRun")
                .inc(static_cast<std::int64_t>(eq.eventsRun()));
            metrics->counter("ipc.roundTrips").inc(out.roundTrips);
            metrics->counter("ipc.bufferStalls")
                .inc(out.bufferStalls);
            metrics->counter("net.retransmissions")
                .inc(out.retransmissions);
            metrics->counter("net.timeoutsFired")
                .inc(out.timeoutsFired);
            metrics->counter("net.duplicatesDropped")
                .inc(out.duplicatesDropped);
            metrics->counter("net.corruptDiscarded")
                .inc(out.corruptDiscarded);
            metrics->counter("net.faultDrops").inc(out.faultDrops);
            metrics->counter("net.crashDrops").inc(out.crashDrops);
            metrics->gauge("ipc.throughputPerSec")
                .set(out.throughputPerSec);
            metrics->gauge("ipc.meanRoundTripUs")
                .set(out.meanRoundTripUs);
            for (const auto &[name, util] : out.resourceUtilization)
                metrics->gauge("util." + name).set(util);
            // The Table 3-style breakdown: microseconds each kernel
            // activity charges per completed round trip.
            for (const auto &[name, us] : out.activityUsPerRoundTrip)
                metrics->gauge("activity." + name + ".usPerRt")
                    .set(us);
        }
        if (!exp.metricsFile.empty())
            metrics->writeJson(exp.metricsFile);
        if (!exp.traceFile.empty())
            tracer->writeChromeJson(exp.traceFile);
    }

    /** Sum per-activity busy time over every processor. */
    std::map<std::string, Tick>
    activitySnapshot() const
    {
        std::map<std::string, Tick> snap;
        for (const auto &n : nodes) {
            auto collect = [&](const Processor &p) {
                for (const auto &[name, ticks] : p.activityTicks())
                    snap[name] += ticks;
            };
            for (const auto &h : n->hosts)
                collect(*h);
            if (n->mp)
                collect(*n->mp);
            collect(n->nicIn);
            collect(n->nicOut);
        }
        return snap;
    }

    /**
     * The raw medium between the two nodes: the token ring when
     * enabled, a fixed wire delay otherwise.
     */
    void
    rawWire(int from, int to, int bytes, EventQueue::Callback deliver)
    {
        if (ring)
            ring->send(from, to, bytes, std::move(deliver));
        else
            eq.scheduleAfter(usToTicks(exp.wireUs),
                             std::move(deliver));
    }

    /**
     * Ship one message from @p from to @p to: through the reliability
     * stack when the medium is faulty, directly otherwise.  The whole
     * traversal — from handing the packet to the medium until its
     * exactly-once delivery, timeouts and retransmissions included —
     * is one Network interval on @p msg's critical path, so protocol
     * recovery time is attributed to the network, not the endpoints.
     */
    void
    wire(int from, int to, long msg, EventQueue::Callback deliver)
    {
        EventQueue::Callback arrive = std::move(deliver);
        if (pathLog.enabled() && msg != 0) {
            const Tick sent = eq.now();
            arrive = [this, msg, sent,
                      inner = std::move(arrive)]() {
                pathLog.interval(msg, "net",
                                 trace::Component::Network, sent,
                                 eq.now());
                inner();
            };
        }
        if (chans[0])
            chans[static_cast<std::size_t>(from)]->send(
                std::move(arrive), msg);
        else
            rawWire(from, to, exp.packetBytes, std::move(arrive));
    }

    // --- Client side -----------------------------------------------

    void
    clientSend(int conv)
    {
        convs[static_cast<std::size_t>(conv)].sendStart = eq.now();
        Node &cn = cNode(conv);
        // A send needs a kernel buffer; stall if the pool is empty.
        if (cn.freeBuffers == 0) {
            ++bufferStalls;
            hsipc_warn_once("kernel buffer pool exhausted; sends now "
                            "stall until a reply frees a buffer "
                            "(counted in Outcome.bufferStalls)");
            if (tracer->enabled() && cn.svcTrack >= 0)
                tracer->instant(cn.svcTrack, "bufferStall", eq.now(),
                                "queue");
            cn.buffersWaiting.push_back(conv);
            return;
        }
        --cn.freeBuffers;
        // The round trip begins here, where the measured sendStart is
        // taken: a fresh lifetime id for the message, threaded
        // through every activity, bus access, and wire hop it causes.
        Conversation &cv = convs[static_cast<std::size_t>(conv)];
        cv.msgId = ++lastMsgId;
        if (pathLog.enabled())
            pathLog.start(cv.msgId, eq.now());
        if (tracer->enabled() && cn.svcTrack >= 0)
            tracer->asyncBegin(cn.svcTrack, "roundTrip", eq.now(),
                               cv.msgId);
        clientHost(conv).submit(
            act("sendSyscall", costsOf(conv).sendSyscall, cn, prioTask,
                [this, conv]() { afterSendSyscall(conv); },
                cv.msgId));
    }

    void
    afterSendSyscall(int conv)
    {
        const IpcCosts &c = costsOf(conv);
        if (!c.coproc) {
            sendProcessed(conv);
            return;
        }
        cNode(conv).commProc().submit(
            act("processSend", c.processSend, cNode(conv), prioTask,
                [this, conv]() { sendProcessed(conv); },
                msgOf(conv)));
    }

    void
    sendProcessed(int conv)
    {
        if (isLocal(conv)) {
            deliverToService(conv);
            return;
        }
        const auto cv = convs[static_cast<std::size_t>(conv)];
        cNode(conv).nicOut.submit(
            act("dmaOut", costsOf(conv).dmaOutReq, cNode(conv),
                prioTask, [this, conv, cv]() {
                    wire(cv.clientNode, cv.serverNode, msgOf(conv),
                         [this, conv]() { requestArrives(conv); });
                },
                cv.msgId));
    }

    // --- Server side -------------------------------------------------

    void
    requestArrives(int conv)
    {
        Node &sn = sNode(conv);
        sn.nicIn.submit(act(
            "dmaIn", costsOf(conv).dmaInReq, sn, prioInterrupt,
            [this, conv, &sn]() {
                sn.commProc().submit(
                    act("match", costsOf(conv).match, sn,
                        prioInterrupt,
                        [this, conv]() { deliverToService(conv); },
                        msgOf(conv)));
            },
            msgOf(conv)));
    }

    void
    deliverToService(int conv)
    {
        convs[static_cast<std::size_t>(conv)].svcEnqueueAt = eq.now();
        sNode(conv).pendingMsgs.push_back(conv);
        svcEvent(sNode(conv), "enqueueMsg");
        tryMatch(sNode(conv));
    }

    void
    serverReceive(int conv)
    {
        Node &sn = sNode(conv);
        serverHost(conv).submit(
            act("recvSyscall", costsOf(conv).recvSyscall, sn, prioTask,
                [this, conv]() { afterRecvSyscall(conv); }));
    }

    void
    afterRecvSyscall(int conv)
    {
        const IpcCosts &c = costsOf(conv);
        if (!c.coproc) {
            serverWaiting(conv);
            return;
        }
        sNode(conv).commProc().submit(
            act("processRecv", c.processRecv, sNode(conv), prioTask,
                [this, conv]() { serverWaiting(conv); }));
    }

    void
    serverWaiting(int conv)
    {
        sNode(conv).waitingServers.push_back(conv);
        svcEvent(sNode(conv), "enqueueServer");
        tryMatch(sNode(conv));
    }

    void
    tryMatch(Node &node)
    {
        if (node.pendingMsgs.empty() || node.waitingServers.empty())
            return;
        const int msg_conv = node.pendingMsgs.front();
        const int server = node.waitingServers.front();
        node.pendingMsgs.pop_front();
        node.waitingServers.pop_front();
        svcEvent(node, "match");

        // The request's stay in the service queue is time blocked on
        // the rendezvous: nobody was working on the message, it was
        // waiting for a server to become available.
        if (pathLog.enabled() && msgOf(msg_conv) != 0)
            pathLog.interval(
                msgOf(msg_conv), node.svcName,
                trace::Component::Blocked,
                convs[static_cast<std::size_t>(msg_conv)].svcEnqueueAt,
                eq.now());

        if (isLocal(msg_conv)) {
            // Local rendezvous pays the match on the communication
            // processor; non-local ones already paid it at interrupt
            // level in requestArrives().
            node.commProc().submit(
                act("match", costsLocal.match, node, prioTask,
                    [this, msg_conv, server]() {
                        rendezvous(msg_conv, server);
                    },
                    msgOf(msg_conv)));
        } else {
            rendezvous(msg_conv, server);
        }
    }

    /**
     * @p conv identifies the client whose request is being served and
     * thereby the reply path; @p server the serving task (and its
     * host binding).  Any server at a node may serve any request
     * arriving there.
     */
    void
    rendezvous(int conv, int server)
    {
        const IpcCosts &c = costsOf(conv);
        auto compute = [this, conv, server]() {
            Activity a;
            a.name = "compute";
            a.processing =
                usToTicks(rng.uniform(0.5, 1.5) * exp.computeUs);
            a.msgId = msgOf(conv);
            a.onDone = [this, conv, server]() {
                serverHost(server).submit(
                    act("replySyscall", costsOf(conv).reply,
                        sNode(conv), prioTask,
                        [this, conv, server]() {
                            afterReplySyscall(conv, server);
                        },
                        msgOf(conv)));
            };
            serverHost(server).submit(std::move(a));
        };

        if (c.restartServer.valid()) {
            serverHost(server).submit(act("restartServer",
                                          c.restartServer,
                                          sNode(conv), prioTask,
                                          compute, msgOf(conv)));
        } else {
            compute();
        }
    }

    void
    afterReplySyscall(int conv, int server)
    {
        const IpcCosts &c = costsOf(conv);
        auto after_comm = [this, conv, server]() {
            // The server resumes its loop...
            const IpcCosts &sc = costsOf(server);
            if (sc.restartServer2.valid()) {
                serverHost(server).submit(
                    act("restartServer2", sc.restartServer2,
                        sNode(server), prioTask, [this, server]() {
                            serverReceive(server);
                        }));
            } else {
                serverReceive(server);
            }
            // ...while the reply travels back to the client.
            replyDeparts(conv);
        };

        if (c.coproc) {
            sNode(conv).commProc().submit(
                act("processReply", c.processReply, sNode(conv),
                    prioTask, after_comm, msgOf(conv)));
        } else {
            after_comm();
        }
    }

    void
    replyDeparts(int conv)
    {
        if (isLocal(conv)) {
            clientRestart(conv);
            return;
        }
        const auto cv = convs[static_cast<std::size_t>(conv)];
        sNode(conv).nicOut.submit(
            act("dmaOut", costsOf(conv).dmaOutReply, sNode(conv),
                prioTask, [this, conv, cv]() {
                    wire(cv.serverNode, cv.clientNode, msgOf(conv),
                         [this, conv]() { replyArrives(conv); });
                },
                cv.msgId));
    }

    void
    replyArrives(int conv)
    {
        Node &cn = cNode(conv);
        cn.nicIn.submit(act(
            "dmaIn", costsOf(conv).dmaInReply, cn, prioInterrupt,
            [this, conv, &cn]() {
                cn.commProc().submit(
                    act("cleanup", costsOf(conv).cleanupClient, cn,
                        prioInterrupt,
                        [this, conv]() { clientRestart(conv); },
                        msgOf(conv)));
            },
            msgOf(conv)));
    }

    void
    clientRestart(int conv)
    {
        const IpcCosts &c = costsOf(conv);
        auto loop = [this, conv]() { roundTripDone(conv); };
        if (c.restartClient.valid()) {
            clientHost(conv).submit(act("restartClient",
                                        c.restartClient, cNode(conv),
                                        prioTask, loop,
                                        msgOf(conv)));
        } else {
            loop();
        }
    }

    void
    roundTripDone(int conv)
    {
        // The message's life ends here, before the tail clientSend()
        // below issues a fresh id for the next trip.
        Node &cn = cNode(conv);
        Conversation &cv0 = convs[static_cast<std::size_t>(conv)];
        if (cv0.msgId != 0) {
            if (pathLog.enabled())
                pathLog.done(cv0.msgId, eq.now());
            if (tracer->enabled() && cn.svcTrack >= 0)
                tracer->asyncEnd(cn.svcTrack, "roundTrip", eq.now(),
                                 cv0.msgId);
            if (tracer->enabled())
                tracer->flowEnd(clientHost(conv).traceTrackId(),
                                "msg", eq.now(), cv0.msgId);
            cv0.msgId = 0;
        }

        // Release the kernel buffer; wake a stalled sender if any.
        ++cn.freeBuffers;
        if (!cn.buffersWaiting.empty()) {
            const int waiter = cn.buffersWaiting.front();
            cn.buffersWaiting.pop_front();
            clientSend(waiter);
        }

        // A completed round trip involving a crashed node marks the
        // end of its recovery.
        const auto &cv = convs[static_cast<std::size_t>(conv)];
        for (Recovery &r : recoveries) {
            if (r.recoveredAt < 0 && eq.now() >= usToTicks(r.w.endUs) &&
                (cv.clientNode == r.w.node || cv.serverNode == r.w.node))
                r.recoveredAt = eq.now();
        }

        const Tick start =
            convs[static_cast<std::size_t>(conv)].sendStart;
        if (eq.now() > usToTicks(exp.warmupUs)) {
            ++completed;
            const double rt_us = ticksToUs(eq.now() - start);
            rt.add(rt_us);
            rtSamples.push_back(rt_us);
            if (rtHist)
                rtHist->observe(rt_us);
            if (isLocal(conv))
                rtLocal.add(rt_us);
            else
                rtRemote.add(rt_us);
        }
        clientSend(conv);
    }

    /** One crash window and when its node first completed work again. */
    struct Recovery
    {
        CrashWindow w;
        Tick recoveredAt = -1;
    };

    Experiment exp;
    IpcCosts costsLocal;
    IpcCosts costsNonlocal;
    Rng rng;
    FaultInjector injector;
    EventQueue eq;

    // Observability sinks: caller-supplied or owned.  `tracer` is
    // never null (a disabled owned tracer records nothing); `metrics`
    // is null when metrics are off, and the histogram pointers are
    // the hot-path handles into it.
    trace::Tracer ownTracer;
    metrics::Registry ownMetrics;
    trace::Tracer *tracer = nullptr;
    metrics::Registry *metrics = nullptr;
    metrics::Histogram *rtHist = nullptr;
    metrics::Histogram *pendingHist = nullptr;
    metrics::Histogram *waitingHist = nullptr;
    int simTrack = -1;

    //! Per-message causal intervals backing Outcome::decomposition;
    //! enabled only when exp.decomposeLatency is set.
    trace::CausalLog pathLog;
    long lastMsgId = 0; //!< last lifetime id issued (0 = untagged)

    std::vector<std::unique_ptr<Node>> nodes;
    std::unique_ptr<TokenRing> ring;
    //! Reliable channels by source node (0 -> 1 and 1 -> 0).
    std::unique_ptr<ReliableChannel> chans[2];
    int protoAccesses = 0;
    std::vector<Recovery> recoveries;

    std::vector<Conversation> convs;
    long completed = 0;
    long bufferStalls = 0;
    RunningStat rt;
    RunningStat rtLocal;
    RunningStat rtRemote;
    std::vector<double> rtSamples;
};

} // namespace

Outcome
runExperiment(const Experiment &exp)
{
    return runExperiment(exp, nullptr, nullptr);
}

Outcome
runExperiment(const Experiment &exp, trace::Tracer *tracer,
              metrics::Registry *metrics)
{
    // Test-only interception point (off in production; see
    // sim/check/test_hooks.hh).
    if (check::testHooks().beforeRun)
        check::testHooks().beforeRun(exp);

    // Reject impossible configurations up front, with the offending
    // condition in the message, instead of producing silent nonsense
    // downstream.
    hsipc_assert(exp.conversations >= 1 || exp.mixedLocal > 0 ||
                 exp.mixedRemote > 0);
    hsipc_assert(exp.mixedLocal >= 0 && exp.mixedRemote >= 0);
    hsipc_assert(exp.hostsPerNode >= 1);
    hsipc_assert(exp.packetBytes > 0 && "packetBytes must be positive");
    hsipc_assert(exp.computeUs >= 0 && "computeUs cannot be negative");
    hsipc_assert(exp.wireUs >= 0 && "wireUs cannot be negative");
    hsipc_assert(exp.kernelBuffers >= 1 &&
                 "need at least one kernel buffer per node");
    hsipc_assert(exp.mpSpeedFactor > 0 &&
                 "mpSpeedFactor must be positive");
    hsipc_assert(exp.ringMbps > 0 && "ringMbps must be positive");
    hsipc_assert(exp.warmupUs >= 0 && exp.measureUs > 0);
    for (double rate : {exp.lossRate, exp.corruptRate,
                        exp.duplicateRate, exp.reorderRate})
        hsipc_assert(rate >= 0 && rate <= 1 &&
                     "fault rates are probabilities");
    hsipc_assert(exp.reorderDelayUs >= 0);
    hsipc_assert(exp.retransmitTimeoutUs > 0 &&
                 "retransmitTimeoutUs must be positive");
    hsipc_assert(exp.retransmitWindow >= 1 &&
                 "retransmitWindow must be at least 1");
    for (const CrashWindow &w : exp.crashSchedule) {
        hsipc_assert((w.node == 0 || w.node == 1) &&
                     "crash node must be 0 or 1");
        hsipc_assert(w.startUs >= 0 && w.endUs > w.startUs &&
                     "crash window must be well-formed");
    }
    Sim sim(exp, tracer, metrics);
    return sim.run();
}

} // namespace hsipc::sim
