/**
 * @file
 * Event-driven simulation of the §6.3 client/server workload on the
 * four node architectures — the executable stand-in for the thesis'
 * 925 implementation (chapter 4).
 *
 * Clients loop issuing blocking remote-invocation sends; servers loop
 * posting receives, computing for a uniformly-distributed time, and
 * replying.  Kernel activities run on simulated processors (host,
 * message coprocessor, DMA engines) whose shared-memory accesses
 * contend on explicit bus resources; network interrupts run at
 * interrupt priority and preempt.  Rendezvous matching uses real
 * service queues and a finite kernel-buffer pool, so the simulator
 * exercises genuine IPC kernel logic rather than replaying fixed
 * delays.
 *
 * Unlike the GTPN models (which assume processor sharing and let any
 * host serve any task), tasks here are statically bound to a host —
 * exactly the difference §6.8 cites to explain the model's optimism at
 * low offered loads.
 */

#ifndef HSIPC_SIM_IPC_SIM_HH
#define HSIPC_SIM_IPC_SIM_HH

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/metrics/metrics.hh"
#include "common/obs/engine_prof.hh"
#include "common/obs/steady.hh"
#include "common/obs/timeline.hh"
#include "common/stats.hh"
#include "common/trace/critical_path.hh"
#include "common/trace/tracer.hh"
#include "core/models/processing_times.hh"
#include "sim/net/faults.hh"
#include "sim/topo/topology.hh"

namespace hsipc::sim
{

/** Configuration of one simulated experiment. */
struct Experiment
{
    models::Arch arch = models::Arch::II;
    bool local = true;
    int conversations = 1;

    /**
     * Mixed-workload mode (a capability the thesis' models lack,
     * §6.6.3): when either count is nonzero, two nodes carry
     * mixedLocal same-node conversations plus mixedRemote cross-node
     * conversations, interleaved over both nodes; `local` and
     * `conversations` are ignored.
     */
    int mixedLocal = 0;
    int mixedRemote = 0;
    double computeUs = 0;     //!< mean server computation X
    int hostsPerNode = 1;
    bool extraCopy = false;   //!< §6.8 validation configuration
    double mpSpeedFactor = 1; //!< MP speed relative to the host
    int kernelBuffers = 64;   //!< finite buffer pool per node
    double wireUs = 0;        //!< fixed network delay (ideal medium)
    bool useTokenRing = false; //!< model the 4 Mb/s token ring instead
    double ringMbps = 4.0;    //!< token-ring data rate
    int packetBytes = 48;     //!< message + header on the wire
    double warmupUs = 100000;
    double measureUs = 1500000;
    std::uint64_t seed = 1;

    /**
     * Unreliable-medium reliability stack (pay-for-use: with every
     * rate zero, no crash windows and reliableProtocol false, the
     * stack is bypassed entirely and results are bit-identical to an
     * ideal-medium run).  Any nonzero fault rate or crash window
     * enables the sliding-window ack/timeout/retransmit protocol,
     * whose processing runs on the host (Architecture I) or the MP
     * (II–IV) — see src/sim/net/reliable.hh.
     */
    double lossRate = 0;      //!< per-packet drop probability
    double corruptRate = 0;   //!< per-packet corruption probability
    double duplicateRate = 0; //!< per-packet duplication probability
    double reorderRate = 0;   //!< per-packet reorder probability
    double reorderDelayUs = 200;    //!< hold-back of a reordered packet
    double retransmitTimeoutUs = 5000; //!< initial RTO (doubles, capped)
    int retransmitWindow = 8;       //!< sliding-window size
    bool reliableProtocol = false;  //!< run the protocol even fault-free
    std::vector<CrashWindow> crashSchedule; //!< scheduled node outages

    /**
     * Observability (see docs/observability.md).  A nonempty
     * traceFile enables the tracer and writes a Chrome trace_event
     * JSON timeline (one track per simulated resource) at end of run;
     * a nonempty metricsFile enables the metrics registry and writes
     * its JSON dump.  Both are strictly observational: enabling them
     * leaves every Outcome field bit-identical (pinned by
     * Observability.TracingDoesNotPerturbOutcome).
     */
    std::string traceFile;
    std::string metricsFile;

    /**
     * Record every message's causal intervals and fill
     * Outcome::decomposition with the critical-path latency
     * decomposition (see common/trace/critical_path.hh).  Independent
     * of the tracer, and — like it — strictly observational: all
     * other Outcome fields stay bit-identical.
     */
    bool decomposeLatency = false;

    /**
     * Time-resolved observability (see docs/observability.md).
     * A positive timelineIntervalUs records windowed series over the
     * whole run (counter deltas binned by event timestamp, gauges
     * sampled at bin boundaries) into Outcome::timeline, runs the
     * MSER-5 steady-state analysis into Outcome::stats, and — when
     * timelineFile names a path — writes the timeline document
     * there.  Strictly observational: the sampler events only read
     * state, so every other Outcome field stays bit-identical.
     */
    double timelineIntervalUs = 0; //!< bin width; 0 = no timeline
    std::string timelineFile;      //!< optional timeline JSON path

    /**
     * Deterministic trace sampling: record causal chains (and the
     * tracer's per-message flow/async events) only for this fraction
     * of message ids, chosen by a pure hash of (seed, id) — see
     * common/obs/trace_sample.hh.  1 keeps everything; sampled
     * messages keep *complete* chains, and jobs=1/N runs agree
     * bit-identically.  Affects only trace-derived artifacts (the
     * decomposition covers the sampled subset).
     */
    double traceSampleRate = 1;

    /**
     * End-to-end RPC robustness layer (pay-for-use: with every knob
     * at its default the layer is bypassed entirely, the Rpc ledger
     * stays zero, and results are bit-identical to a pre-robustness
     * run).  Any of open arrivals, a deadline, a retry budget, or a
     * service-queue cap enables it; all robustness randomness (draws
     * for interarrival times and backoff jitter) comes from a
     * dedicated RNG stream, so the workload's own sequence is never
     * perturbed.  See DESIGN.md "Robustness".
     */
    //! 0 = closed loop (the thesis' workload), 1 = Poisson open
    //! arrivals, 2 = bounded-Pareto open arrivals.  Open modes are
    //! incompatible with the mixed workload.
    int arrivalMode = 0;
    //! Offered request rate, used only by the open arrival modes.
    //! The default is positive (not 0) so every robustness knob can
    //! be reset to its default independently of the others and still
    //! name a runnable configuration — the greedy shrinker relies on
    //! that.
    double arrivalRatePerSec = 1000;
    double paretoAlpha = 1.5;     //!< bounded-Pareto shape (> 0, != 1)
    double paretoBound = 1000;    //!< bounded-Pareto H/L truncation ratio
    //! Request deadline measured from arrival; 0 = none.  An expired
    //! request terminates at its deadline; a reply arriving later is
    //! an orphan and is discarded (at-most-once semantics).
    double deadlineUs = 0;
    //! Client-side retries per request after the initial attempt,
    //! paced by exponential backoff with +/-25% jitter.
    int retryBudget = 0;
    double retryBackoffUs = 2000;    //!< first attempt timeout
    double retryBackoffMaxUs = 32000; //!< backoff ceiling
    //! Bound on a node's service queue; 0 = unbounded.  Overflow is
    //! resolved by shedPolicy: 0 rejects the newcomer, 1 evicts the
    //! oldest queued request, 2 evicts the least-slack request and
    //! additionally sheds already-expired entries at dequeue time.
    int svcQueueCap = 0;
    int shedPolicy = 0;
    //! Reliable-channel retransmission backoff ceiling (satellite of
    //! the robustness layer; previously hard-coded in
    //! sim/net/reliable.hh).  Effective ceiling is
    //! max(rtoMaxUs, retransmitTimeoutUs).
    double rtoMaxUs = 80000;

    /**
     * Engine self-profiling (see common/obs/engine_prof.hh and
     * docs/performance.md "Profiling the engine").  When set, the run
     * fills Outcome::engineProfile with the simulator's own cost
     * model: event-queue telemetry, dwell/heap-depth distributions,
     * per-component wall-clock sketches, and the scheduling-provenance
     * lookahead graph; engineProfileFile (requires engineProfile)
     * additionally writes the profile document there.  Strictly
     * observational: every other Outcome field — and every trace,
     * metrics, and timeline artifact — stays byte-identical, and the
     * profile itself never enters outcomeJson().
     */
    bool engineProfile = false;
    std::string engineProfileFile;

    /**
     * Pending-event-set policy of the DES core (see
     * src/sim/des/event_queue.hh and docs/performance.md "Pending-
     * event-set policies"): 0 = the reference binary heap, 1 = the
     * ladder queue (amortized O(1), built for tens of thousands of
     * pending events).  Both order by the identical (when, seq) total
     * order, so every Outcome field is bit-identical across the two —
     * the fuzz oracle's queue.* family enforces exactly that.
     */
    int queueKind = 0;

    /**
     * Expected peak pending-event population — sizes the queue's
     * backing storage up front so large (thousand-node scale) runs
     * never pay growth reallocation on the event path.  0 keeps the
     * historical one-page default (1024 events); the value is a
     * reservation hint only and never affects results.
     */
    int expectedPendingEvents = 0;

    /**
     * N-node interconnect topology (see sim/topo/topology.hh).
     * Strictly pay-for-use: with nodes == 0 (the default) the layer
     * is off and the simulator keeps its historical one/two-node
     * path bit-for-bit; nodes >= 2 instantiates the described fabric
     * and the placement policy decides where conversations live
     * (`local` and the classic two-node layout are superseded).
     * Incompatible with the mixed workload and with useTokenRing
     * (kind 2 models rings of its own).
     */
    topo::Topology topo;

    /**
     * Field-wise exact equality (doubles compare bitwise) — what the
     * JSON round-trip (sim/check/experiment_json.hh) preserves and
     * the shrinker uses to detect a no-op simplification.
     */
    friend bool operator==(const Experiment &,
                           const Experiment &) = default;
};

/**
 * True when any robustness knob is active — the single gate the
 * simulator, the invariant oracle, and the differential harness share
 * (the differential models cover only the classic closed workload).
 */
inline bool
robustnessEnabled(const Experiment &exp)
{
    return exp.arrivalMode != 0 || exp.deadlineUs > 0 ||
           exp.retryBudget > 0 || exp.svcQueueCap > 0;
}

/** Measured outcome of a run. */
struct Outcome
{
    double throughputPerSec = 0; //!< completed round trips per second
    double meanRoundTripUs = 0;
    double rtCi95Us = 0;
    double rtP50Us = 0;  //!< median round trip
    double rtP95Us = 0;  //!< 95th-percentile round trip
    long roundTrips = 0;
    double hostUtil = 0;        //!< max over hosts, client+server nodes
    double mpUtil = 0;
    double busUtil = 0;

    /**
     * Busy fraction of every simulated resource (each host CPU, MP,
     * bus partition, and DMA engine, keyed by its track name, e.g.
     * "n0.mp") over the measurement window — the per-resource
     * utilization timeline's end-of-run summary, answering "which
     * resource saturates first" directly.  Unlike hostUtil/mpUtil/
     * busUtil above (whole-run maxima kept for compatibility), these
     * exclude warmup.
     */
    std::map<std::string, double> resourceUtilization;
    long bufferStalls = 0;      //!< sends delayed by buffer exhaustion
    double ringUtil = 0;        //!< token-ring medium utilization
    double ringTokenWaitUs = 0; //!< mean wait for the token

    /**
     * Measured processing time per kernel activity, microseconds per
     * completed round trip — the simulator's counterpart of the
     * chapter-4 measurements that fed Tables 6.4-6.23.
     */
    std::map<std::string, double> activityUsPerRoundTrip;

    // Mixed-workload breakdown (zero when not in mixed mode):
    double localThroughputPerSec = 0;
    double remoteThroughputPerSec = 0;
    double localMeanRtUs = 0;
    double remoteMeanRtUs = 0;

    // Reliability-stack measurements (all zero when the stack is
    // bypassed; counted over the measurement window only):
    long retransmissions = 0;   //!< data packets sent again on timeout
    long timeoutsFired = 0;     //!< retransmission timers that expired
    long duplicatesDropped = 0; //!< suppressed by sequence number
    long corruptDiscarded = 0;  //!< packets failing the checksum
    long faultDrops = 0;        //!< packets the medium lost outright
    long crashDrops = 0;        //!< packets lost at a crashed node
    double netThroughputPktsPerSec = 0; //!< data pkts offered the wire
    double netGoodputPktsPerSec = 0; //!< first-copy in-order deliveries
    //! Protocol processing charged per round trip, split by who paid.
    double protoHostUsPerRt = 0;
    double protoMpUsPerRt = 0;
    //! Crash recovery: windows recovered from, and the mean time from
    //! the end of an outage to the first completed round trip
    //! involving the crashed node.
    int crashWindowsRecovered = 0;
    double meanRecoveryUs = 0;

    /**
     * Whole-run conservation ledger of the reliability stack and the
     * fault injector (unlike the windowed counters above, these cover
     * warmup too, so exact flow-conservation identities hold — the
     * raw material of the fuzzer's invariant oracle, see
     * src/sim/check/invariants.hh).  All zero when the run never
     * instantiates the reliability stack.
     */
    struct NetTotals
    {
        // Reliable-channel ledger, summed over both directions.
        long msgsAccepted = 0;   //!< messages handed to send()
        long msgsDelivered = 0;  //!< exactly-once deliveries upward
        long windowPendingAtEnd = 0; //!< transmitted, unacked at end
        long backlogAtEnd = 0;   //!< accepted, never transmitted
        long dataTransmissions = 0; //!< incl. retransmissions
        long retransmissions = 0;
        long timeoutsFired = 0;
        long duplicatesDropped = 0;
        long corruptDiscarded = 0; //!< data and ack checksum discards
        long acksSent = 0;
        // Fault-injector ledger (data and ack packets alike).
        long pktsInjected = 0;   //!< packets offered to the injector
        long pktsDropped = 0;    //!< lost in the medium
        long pktsCorrupted = 0;  //!< delivered with a failing checksum
        long pktsDuplicated = 0; //!< extra trailing copies created
        long pktsReordered = 0;  //!< held back past later traffic
        long pktsCrashDropped = 0; //!< lost at a crashed node
    };
    NetTotals netTotals;

    /**
     * Whole-run disposition ledger of the RPC robustness layer (all
     * zero when the layer is off — the analogue of NetTotals for the
     * request level).  Every offered request reaches exactly one
     * terminal disposition or is still in flight at end of run:
     *
     *   offered = completed + shed + expired + lostToCrash
     *           + inFlightAtEnd
     *
     * holds exactly; the fuzzer's rpc.* invariants are built on it.
     */
    struct Rpc
    {
        long offered = 0;   //!< requests started (arrivals + retries' parents counted once)
        long attempts = 0;  //!< request transmissions incl. retries
        long retries = 0;   //!< re-sends after a client timeout
        long admitted = 0;  //!< attempts accepted into a service queue
        long completed = 0; //!< requests finishing with a live reply
        long shed = 0;          //!< requests terminated by shedding
        long shedAttempts = 0;  //!< attempts shed (incl. recovered ones)
        long expired = 0;       //!< requests terminated at their deadline
        long lostToCrash = 0;   //!< requests terminated by a crash flush
        long crashLostAttempts = 0; //!< attempts flushed at a crash
        long duplicatesSuppressed = 0; //!< retry copies deduped at the server
        long replyReplays = 0;  //!< reply-cache replays to a retry
        long orphanedReplies = 0; //!< replies discarded at a dead request
        long inFlightAtEnd = 0; //!< requests with no disposition at end
        //! Windowed rates: requests offered and goodput (completions
        //! within deadline) per second over the measurement window.
        double offeredPerSec = 0;
        double goodputPerSec = 0;
        //! Mean and p95 request sojourn (arrival to completion) over
        //! completed requests in the window.
        double meanSojournUs = 0;
        double p95SojournUs = 0;
    };
    Rpc rpc;
    //! Robustness processing (admission, shedding, dedup, replay,
    //! retry, expiry handling) charged per completed round trip,
    //! split by who paid — the host on Architecture I, the MP on
    //! II-IV ("who pays for robustness").
    double rpcHostUsPerRt = 0;
    double rpcMpUsPerRt = 0;

    /**
     * Critical-path latency decomposition over the measurement
     * window, filled only when Experiment::decomposeLatency is set:
     * per-component mean/p50/p95/p99, per-resource service and
     * queueing shares, and the bottleneck resource.  Each message's
     * components partition its round trip exactly, so
     * service + queue + network + blocked = roundTrip for the means.
     */
    trace::Decomposition decomposition;

    /**
     * Windowed series over the run, filled only when
     * Experiment::timelineIntervalUs is positive.  Every counter
     * series integrates exactly to its whole-run ledger counterpart
     * (the fuzz oracle's timeline.* invariants).
     */
    obs::Timeline timeline;

    /**
     * MSER-5 steady-state analysis of the timeline (enabled with
     * it): detected truncation point, batch-means CIs on throughput
     * and round-trip latency, and the transientPolluted flag when
     * the configured warmup did not cover the detected transient.
     */
    obs::SteadyStats stats;

    /**
     * The engine's self-profile, filled only when
     * Experiment::engineProfile is set (or an external profiler sink
     * was supplied).  Wall-clock values inside are nondeterministic
     * by nature, so this field is deliberately excluded from
     * outcomeJson(); its deterministicJson() subset is what the fuzz
     * oracle compares across replicas.
     */
    obs::EngineProfile engineProfile;

    /**
     * Per-link / per-router flow-conservation ledger of the topology
     * layer, filled only when Experiment::topo is enabled (the
     * topo.* invariant family audits it).  Like engineProfile it is
     * deliberately excluded from outcomeJson() — the degenerate
     * two-node topology must stay byte-identical to the legacy path
     * — and rendered separately by topoJson().
     */
    topo::Ledger topo;
};

/** Run the experiment to completion and return the measurements. */
Outcome runExperiment(const Experiment &exp);

/**
 * As above, but record into caller-supplied sinks: @p tracer (enable
 * it first) receives the event timeline for in-process inspection —
 * busyByTrack()/busyByName() turn it into utilization and activity
 * breakdowns — and @p metrics receives the counters/gauges/histograms.
 * Either may be null.  `traceFile`/`metricsFile` still write files
 * when set.
 */
Outcome runExperiment(const Experiment &exp, trace::Tracer *tracer,
                      metrics::Registry *metrics);

/**
 * As above with an engine-profiler sink: a non-null @p engineProf
 * profiles the run (whether or not exp.engineProfile is set) and can
 * be inspected by the caller afterwards — the per-run isolation hook
 * SweepRunner::runWithSinks uses.  Outcome::engineProfile receives a
 * copy either way.
 */
Outcome runExperiment(const Experiment &exp, trace::Tracer *tracer,
                      metrics::Registry *metrics,
                      obs::EngineProfiler *engineProf);

} // namespace hsipc::sim

#endif // HSIPC_SIM_IPC_SIM_HH
