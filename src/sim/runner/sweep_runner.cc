#include "sim/runner/sweep_runner.hh"

#include <utility>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/parallel/parallel.hh"

namespace hsipc::sim
{

namespace
{

std::string
mapJson(const std::map<std::string, double> &m)
{
    std::string out = "{";
    bool first = true;
    for (const auto &[key, value] : m) {
        out += (first ? "" : ", ") + jsonString(key) + ": " +
               jsonNumber(value);
        first = false;
    }
    return out + "}";
}

std::string
statsJson(const trace::ComponentStats &s)
{
    return "{\"meanUs\": " + jsonNumber(s.meanUs) +
           ", \"p50Us\": " + jsonNumber(s.p50Us) +
           ", \"p95Us\": " + jsonNumber(s.p95Us) +
           ", \"p99Us\": " + jsonNumber(s.p99Us) + "}";
}

} // namespace

std::vector<Outcome>
SweepRunner::run(std::vector<Experiment> exps) const
{
    return runWithSinks(std::move(exps), nullptr, nullptr);
}

std::vector<Outcome>
SweepRunner::runWithSinks(
    std::vector<Experiment> exps,
    const std::vector<trace::Tracer *> *tracers,
    const std::vector<metrics::Registry *> *metrics) const
{
    return runWithSinks(std::move(exps), tracers, metrics, nullptr);
}

std::vector<Outcome>
SweepRunner::runWithSinks(
    std::vector<Experiment> exps,
    const std::vector<trace::Tracer *> *tracers,
    const std::vector<metrics::Registry *> *metrics,
    const std::vector<obs::EngineProfiler *> *profilers) const
{
    if (tracers)
        hsipc_assert(tracers->size() == exps.size());
    if (metrics)
        hsipc_assert(metrics->size() == exps.size());
    if (profilers)
        hsipc_assert(profilers->size() == exps.size());

    if (opts.seedBase != 0) {
        for (std::size_t i = 0; i < exps.size(); ++i)
            exps[i].seed = parallel::deriveSeed(
                opts.seedBase, static_cast<std::uint64_t>(i));
    }

    std::vector<Outcome> outcomes(exps.size());
    parallel::parallelFor(opts.jobs, exps.size(), [&](std::size_t i) {
        trace::Tracer *tracer = tracers ? (*tracers)[i] : nullptr;
        metrics::Registry *reg = metrics ? (*metrics)[i] : nullptr;
        obs::EngineProfiler *prof =
            profilers ? (*profilers)[i] : nullptr;
        outcomes[i] = runExperiment(exps[i], tracer, reg, prof);
    });
    return outcomes;
}

std::vector<Outcome>
runSweep(std::vector<Experiment> exps, int jobs)
{
    SweepOptions opts;
    opts.jobs = jobs;
    return SweepRunner(opts).run(std::move(exps));
}

std::string
outcomeJson(const Outcome &out)
{
    std::string doc = "{";
    auto num = [&](const char *name, double v, bool comma = true) {
        doc += std::string("\"") + name + "\": " + jsonNumber(v) +
               (comma ? ",\n " : "");
    };
    num("throughputPerSec", out.throughputPerSec);
    num("meanRoundTripUs", out.meanRoundTripUs);
    num("rtCi95Us", out.rtCi95Us);
    num("rtP50Us", out.rtP50Us);
    num("rtP95Us", out.rtP95Us);
    num("roundTrips", static_cast<double>(out.roundTrips));
    num("hostUtil", out.hostUtil);
    num("mpUtil", out.mpUtil);
    num("busUtil", out.busUtil);
    doc += "\"resourceUtilization\": " +
           mapJson(out.resourceUtilization) + ",\n ";
    num("bufferStalls", static_cast<double>(out.bufferStalls));
    num("ringUtil", out.ringUtil);
    num("ringTokenWaitUs", out.ringTokenWaitUs);
    doc += "\"activityUsPerRoundTrip\": " +
           mapJson(out.activityUsPerRoundTrip) + ",\n ";
    num("localThroughputPerSec", out.localThroughputPerSec);
    num("remoteThroughputPerSec", out.remoteThroughputPerSec);
    num("localMeanRtUs", out.localMeanRtUs);
    num("remoteMeanRtUs", out.remoteMeanRtUs);
    num("retransmissions", static_cast<double>(out.retransmissions));
    num("timeoutsFired", static_cast<double>(out.timeoutsFired));
    num("duplicatesDropped",
        static_cast<double>(out.duplicatesDropped));
    num("corruptDiscarded", static_cast<double>(out.corruptDiscarded));
    num("faultDrops", static_cast<double>(out.faultDrops));
    num("crashDrops", static_cast<double>(out.crashDrops));
    num("netThroughputPktsPerSec", out.netThroughputPktsPerSec);
    num("netGoodputPktsPerSec", out.netGoodputPktsPerSec);
    num("protoHostUsPerRt", out.protoHostUsPerRt);
    num("protoMpUsPerRt", out.protoMpUsPerRt);
    num("crashWindowsRecovered",
        static_cast<double>(out.crashWindowsRecovered));
    num("meanRecoveryUs", out.meanRecoveryUs);
    const Outcome::NetTotals &nt = out.netTotals;
    doc += "\"netTotals\": {";
    bool firstTot = true;
    auto tot = [&](const char *name, long v) {
        doc += std::string(firstTot ? "" : ", ") + "\"" + name +
               "\": " + jsonNumber(static_cast<double>(v));
        firstTot = false;
    };
    tot("msgsAccepted", nt.msgsAccepted);
    tot("msgsDelivered", nt.msgsDelivered);
    tot("windowPendingAtEnd", nt.windowPendingAtEnd);
    tot("backlogAtEnd", nt.backlogAtEnd);
    tot("dataTransmissions", nt.dataTransmissions);
    tot("retransmissions", nt.retransmissions);
    tot("timeoutsFired", nt.timeoutsFired);
    tot("duplicatesDropped", nt.duplicatesDropped);
    tot("corruptDiscarded", nt.corruptDiscarded);
    tot("acksSent", nt.acksSent);
    tot("pktsInjected", nt.pktsInjected);
    tot("pktsDropped", nt.pktsDropped);
    tot("pktsCorrupted", nt.pktsCorrupted);
    tot("pktsDuplicated", nt.pktsDuplicated);
    tot("pktsReordered", nt.pktsReordered);
    tot("pktsCrashDropped", nt.pktsCrashDropped);
    doc += "},\n ";
    const Outcome::Rpc &r = out.rpc;
    doc += "\"rpc\": {";
    bool firstRpc = true;
    auto rpcNum = [&](const char *name, double v) {
        doc += std::string(firstRpc ? "" : ", ") + "\"" + name +
               "\": " + jsonNumber(v);
        firstRpc = false;
    };
    rpcNum("offered", static_cast<double>(r.offered));
    rpcNum("attempts", static_cast<double>(r.attempts));
    rpcNum("retries", static_cast<double>(r.retries));
    rpcNum("admitted", static_cast<double>(r.admitted));
    rpcNum("completed", static_cast<double>(r.completed));
    rpcNum("shed", static_cast<double>(r.shed));
    rpcNum("shedAttempts", static_cast<double>(r.shedAttempts));
    rpcNum("expired", static_cast<double>(r.expired));
    rpcNum("lostToCrash", static_cast<double>(r.lostToCrash));
    rpcNum("crashLostAttempts",
           static_cast<double>(r.crashLostAttempts));
    rpcNum("duplicatesSuppressed",
           static_cast<double>(r.duplicatesSuppressed));
    rpcNum("replyReplays", static_cast<double>(r.replyReplays));
    rpcNum("orphanedReplies", static_cast<double>(r.orphanedReplies));
    rpcNum("inFlightAtEnd", static_cast<double>(r.inFlightAtEnd));
    rpcNum("offeredPerSec", r.offeredPerSec);
    rpcNum("goodputPerSec", r.goodputPerSec);
    rpcNum("meanSojournUs", r.meanSojournUs);
    rpcNum("p95SojournUs", r.p95SojournUs);
    doc += "},\n ";
    num("rpcHostUsPerRt", out.rpcHostUsPerRt);
    num("rpcMpUsPerRt", out.rpcMpUsPerRt);
    const trace::Decomposition &d = out.decomposition;
    doc += "\"decomposition\": {\"messages\": " +
           jsonNumber(static_cast<double>(d.messages)) +
           ",\n  \"roundTrip\": " + statsJson(d.roundTrip) +
           ",\n  \"service\": " + statsJson(d.service) +
           ",\n  \"queue\": " + statsJson(d.queue) +
           ",\n  \"network\": " + statsJson(d.network) +
           ",\n  \"blocked\": " + statsJson(d.blocked) +
           ",\n  \"serviceUsByResource\": " +
           mapJson(d.serviceUsByResource) +
           ",\n  \"queueUsByResource\": " +
           mapJson(d.queueUsByResource) +
           ",\n  \"bottleneck\": " + jsonString(d.bottleneck) +
           ",\n  \"bottleneckShare\": " +
           jsonNumber(d.bottleneckShare) + "}";
    // Time-resolved sections appear only when the run recorded a
    // timeline, so every pre-timeline document stays byte-identical.
    if (out.timeline.enabled()) {
        const obs::SteadyStats &st = out.stats;
        doc += ",\n \"stats\": {\"enabled\": " +
               std::string(st.enabled ? "true" : "false") +
               ", \"insufficientData\": " +
               (st.insufficientData ? "true" : "false") +
               ", \"transientPolluted\": " +
               (st.transientPolluted ? "true" : "false") +
               ", \"truncationUs\": " + jsonNumber(st.truncationUs) +
               ", \"batches\": " +
               jsonNumber(static_cast<double>(st.batches)) +
               ", \"throughputPerSec\": " +
               jsonNumber(st.throughputPerSec) +
               ", \"throughputCi95PerSec\": " +
               jsonNumber(st.throughputCi95PerSec) +
               ", \"meanRtUs\": " + jsonNumber(st.meanRtUs) +
               ", \"rtCi95Us\": " + jsonNumber(st.rtCi95Us) + "}";
        doc += ",\n \"timeline\": ";
        std::string tj = out.timeline.toJson();
        if (!tj.empty() && tj.back() == '\n')
            tj.pop_back();
        doc += tj;
    }
    doc += "\n}\n";
    return doc;
}

std::string
topoJson(const Outcome &out)
{
    const topo::Ledger &t = out.topo;
    std::string doc = "{\"enabled\": ";
    doc += t.enabled ? "true" : "false";
    doc += ",\n \"links\": [";
    bool first = true;
    for (const topo::LinkLedger &l : t.links) {
        doc += first ? "" : ",\n  ";
        doc += "{\"name\": " + jsonString(l.name) +
               ", \"msgsIn\": " + std::to_string(l.msgsIn) +
               ", \"msgsOut\": " + std::to_string(l.msgsOut) +
               ", \"bytesIn\": " + std::to_string(l.bytesIn) +
               ", \"bytesOut\": " + std::to_string(l.bytesOut) +
               ", \"dropped\": " + std::to_string(l.dropped) +
               ", \"inFlightAtEnd\": " +
               std::to_string(l.inFlightAtEnd) +
               ", \"retransmissions\": " +
               std::to_string(l.retransmissions) +
               ", \"queuePeak\": " + std::to_string(l.queuePeak) +
               "}";
        first = false;
    }
    doc += "],\n \"routers\": [";
    first = true;
    for (const topo::RouterLedger &r : t.routers) {
        doc += first ? "" : ",\n  ";
        doc += "{\"name\": " + jsonString(r.name) +
               ", \"received\": " + std::to_string(r.received) +
               ", \"forwarded\": " + std::to_string(r.forwarded) +
               ", \"dropped\": " + std::to_string(r.dropped) +
               ", \"inFlightAtEnd\": " +
               std::to_string(r.inFlightAtEnd) +
               ", \"queuePeak\": " + std::to_string(r.queuePeak) +
               "}";
        first = false;
    }
    doc += "]\n}\n";
    return doc;
}

} // namespace hsipc::sim
