/**
 * @file
 * Deterministic parallel execution of experiment sweeps.
 *
 * Every bench that reproduces a figure or table evaluates a vector of
 * independent Experiment configurations.  SweepRunner runs them on a
 * fixed-size thread pool with the guarantee that makes the
 * parallelism safe to adopt everywhere: the Outcome vector is
 * BIT-IDENTICAL between `jobs = 1` (a true serial fallback that runs
 * inline, creating no threads) and any `jobs = N`.  That holds
 * because each simulation is self-contained — its own event queue,
 * RNG (seeded from the Experiment alone), fault injector, tracer and
 * metrics registry — and results land by input index, never by
 * completion order.
 *
 * Observability isolation: a run that names traceFile/metricsFile
 * writes its own files exactly as it would serially; runs never share
 * a Tracer or Registry.  For in-process sinks, runWithSinks() gives
 * every run its own caller-constructed Tracer/Registry pair.
 */

#ifndef HSIPC_SIM_SWEEP_RUNNER_HH
#define HSIPC_SIM_SWEEP_RUNNER_HH

#include <cstdint>
#include <string>
#include <vector>

#include "sim/kernel/ipc_sim.hh"

namespace hsipc::sim
{

/** How a sweep executes. */
struct SweepOptions
{
    /**
     * Worker threads; 1 = serial inline execution (the default, and
     * the reference behavior every parallel run must reproduce
     * bit-identically).
     */
    int jobs = 1;

    /**
     * When nonzero, overwrite each Experiment's seed with
     * parallel::deriveSeed(seedBase, index) before running — the
     * per-task seed-derivation scheme for replication studies.  Zero
     * (default) leaves the seeds the caller set.
     */
    std::uint64_t seedBase = 0;
};

/** Runs vectors of Experiments to Outcomes, serially or in parallel. */
class SweepRunner
{
  public:
    explicit SweepRunner(SweepOptions opts = SweepOptions())
        : opts(opts)
    {}

    /** Run every experiment; outcome i belongs to experiment i. */
    std::vector<Outcome> run(std::vector<Experiment> exps) const;

    /**
     * As run(), but give run i the caller-supplied sinks
     * (*tracers)[i] / (*metrics)[i] — per-run isolation the caller
     * can inspect afterwards.  Either vector pointer may be null;
     * non-null vectors must match exps in length (entries may be
     * null to skip a run).
     */
    std::vector<Outcome>
    runWithSinks(std::vector<Experiment> exps,
                 const std::vector<trace::Tracer *> *tracers,
                 const std::vector<metrics::Registry *> *metrics) const;

    /**
     * As runWithSinks(), additionally giving run i the engine
     * profiler (*profilers)[i] — its own instance, never shared, so
     * parallel sweeps profile without cross-run interference.  A
     * non-null profiler is attached whether or not the Experiment
     * sets engineProfile (it is the caller's isolation hook); null
     * entries fall back to the knob.  The resulting per-run profiles
     * land in each Outcome and merge associatively via
     * obs::EngineProfile::merge().
     */
    std::vector<Outcome>
    runWithSinks(
        std::vector<Experiment> exps,
        const std::vector<trace::Tracer *> *tracers,
        const std::vector<metrics::Registry *> *metrics,
        const std::vector<obs::EngineProfiler *> *profilers) const;

    const SweepOptions &options() const { return opts; }

  private:
    SweepOptions opts;
};

/** One-shot convenience: run @p exps with @p jobs workers. */
std::vector<Outcome> runSweep(std::vector<Experiment> exps, int jobs);

/**
 * Deterministic JSON rendering of every Outcome field (maps are
 * ordered, doubles use the shared %.12g form) — the byte-comparable
 * artifact the serial-vs-parallel determinism tests and tools pin.
 */
std::string outcomeJson(const Outcome &out);

/**
 * Deterministic JSON rendering of the topology layer's per-link /
 * per-router conservation ledger (ledger order is construction
 * order, so the document is byte-comparable across replicas).  Kept
 * out of outcomeJson() deliberately: the N=2 degenerate topology
 * must stay byte-identical to the legacy two-node document.
 */
std::string topoJson(const Outcome &out);

} // namespace hsipc::sim

#endif // HSIPC_SIM_SWEEP_RUNNER_HH
