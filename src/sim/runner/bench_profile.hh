/**
 * @file
 * Two-line `--profile` support for the bench binaries.
 *
 * Every bench parses `--profile` through bench::init(); a sweep bench
 * opts its experiments in with applyBenchProfile() before running and
 * publishes the merged engine profile with writeBenchProfile() after.
 * With the flag absent both helpers are no-ops, preserving the
 * pay-for-use contract: an unprofiled bench run stays byte-identical.
 */

#ifndef HSIPC_SIM_BENCH_PROFILE_HH
#define HSIPC_SIM_BENCH_PROFILE_HH

#include <cstdio>
#include <vector>

#include "common/bench_main.hh"
#include "sim/kernel/ipc_sim.hh"

namespace hsipc::sim
{

/** Turn the engine profiler on for every Experiment when --profile. */
inline void
applyBenchProfile(std::vector<Experiment> &exps)
{
    if (!bench::profile())
        return;
    for (Experiment &e : exps)
        e.engineProfile = true;
}

/**
 * Merge the per-run profiles of @p outcomes and write the combined
 * document to bench::profilePath().  Merging is exact (counters add,
 * sketches merge associatively), so the aggregate cost model reflects
 * the whole sweep regardless of --jobs.
 */
inline void
writeBenchProfile(const std::vector<Outcome> &outcomes)
{
    if (!bench::profile())
        return;
    obs::EngineProfile merged;
    for (const Outcome &o : outcomes)
        merged.merge(o.engineProfile);
    merged.writeFile(bench::profilePath());
    std::printf("engine profile: %s\n", bench::profilePath().c_str());
}

} // namespace hsipc::sim

#endif // HSIPC_SIM_BENCH_PROFILE_HH
