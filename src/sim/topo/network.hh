/**
 * @file
 * The instantiated interconnect: routes packets between N kernel
 * nodes according to a Topology, and keeps the exact per-link /
 * per-router conservation ledger the topo.* invariants audit.
 *
 * Three fabrics (Topology::kind):
 *
 *  - **mesh** (0): a dedicated directed link per ordered node pair,
 *    each with its own propagation latency and optional serialization
 *    rate (overridable per pair).  One scheduled event per packet —
 *    with the defaults this is event-for-event the legacy fixed-delay
 *    wire, which is what makes the N=2 degenerate topology
 *    byte-identical to the historical two-node path.
 *
 *  - **star** (1): every node hangs off one store-and-forward switch.
 *    Ingress link (latency + serialization), a single-server FIFO
 *    switch (per-packet processing + serialization onto the output
 *    port), egress link (latency).  The switch queue is where
 *    fan-in traffic — several clients aimed at one hot server —
 *    actually contends.
 *
 *  - **ring segments** (2): contiguous token-ring segments (the
 *    thesis' 4 Mb/s ring, one TokenRing instance per segment); with
 *    more than one segment each ring gains a router station, and the
 *    routers bridge segments over a full mesh of point-to-point
 *    backbone links.  A cross-segment packet takes source ring →
 *    source router → backbone → destination router → destination
 *    ring.
 *
 * Accounting discipline: every hand-off increments the receiving
 * element's ledger *before* any event is scheduled, and completion
 * counts are bumped by the delivery event itself, so at any instant
 * (and in particular at the measurement horizon) the structural
 * population of every queue equals its ledger imbalance.  The
 * topo.conservation invariant asserts exactly that; a packet that
 * vanishes without being counted (see TestHooks::topoRouterDrop)
 * breaks it.
 *
 * Observational hooks mirror the rest of the simulator: a Tracer
 * gets a "topo" counter track of router depths, an EngineProfiler
 * gets the same "wire" origin and lookahead edges the legacy wire
 * recorded.  Neither perturbs the event sequence.
 */

#ifndef HSIPC_SIM_TOPO_NETWORK_HH
#define HSIPC_SIM_TOPO_NETWORK_HH

#include <deque>
#include <vector>

#include "common/obs/engine_prof.hh"
#include "common/trace/tracer.hh"
#include "sim/des/event_queue.hh"
#include "sim/node/token_ring.hh"
#include "sim/topo/topology.hh"

namespace hsipc::sim::topo
{

/** The routing fabric instantiated from a Topology. */
class Network
{
  public:
    /**
     * @p tracer may be null (or disabled); @p prof may be null.
     * Every element the topology implies is built here — links,
     * routers, rings — so construction is the only allocation site.
     */
    Network(EventQueue &eq, const Topology &t, trace::Tracer *tracer,
            obs::EngineProfiler *prof);

    /**
     * Route @p bytes from node @p src to node @p dst (src != dst);
     * @p deliver fires when the packet fully arrives.  When @p batch
     * is non-null the *first* hop is staged into it (matching the
     * legacy wire's batching contract); later hops of multi-hop
     * fabrics schedule directly — they run from events, after the
     * batch committed.
     */
    void send(int src, int dst, int bytes,
              EventQueue::Callback deliver,
              EventQueue::Batch *batch = nullptr);

    /**
     * Charge @p count retransmissions to every link on the forward
     * route src -> dst (the reliable channel counts them; the fabric
     * only learns the total after the run).
     */
    void attributeRetransmissions(int src, int dst, long count);

    /** Snapshot every ledger (structural in-flight included). */
    void fillLedger(Ledger &out) const;

    /** Total structural router population (timeline gauge). */
    double routerDepthSum() const;

    /** Total packets currently traversing links (timeline gauge). */
    double linkInFlightSum() const;

  private:
    /** A point-to-point link (or a ring booked as one ledger). */
    struct Link
    {
        LinkLedger led;
        Tick latency = 0;
        double mbps = 0;    //!< 0 = no serialization
        long inFlight = 0;
    };

    /** One queued packet awaiting switch service. */
    struct Item
    {
        Tick service;
        EventQueue::Callback next;
    };

    /** A single-server FIFO store-and-forward element. */
    struct Router
    {
        RouterLedger led;
        std::deque<Item> q;
        bool busy = false;

        // Move-only: the queued callbacks cannot be copied, and an
        // explicitly deleted copy makes vector relocation pick the
        // (potentially throwing) move instead of a hard error.
        Router() = default;
        Router(const Router &) = delete;
        Router &operator=(const Router &) = delete;
        Router(Router &&) = default;
        Router &operator=(Router &&) = default;

        long
        depth() const
        {
            return static_cast<long>(q.size()) + (busy ? 1 : 0);
        }
    };

    Tick serTicks(int bytes, double mbps) const;

    /** Schedule @p cb after @p delay with profiler attribution. */
    void dispatch(Tick delay, EventQueue::Callback cb,
                  EventQueue::Batch *batch);

    /** Put a packet on link @p li; delivery runs @p then. */
    void traverse(std::size_t li, int bytes,
                  EventQueue::Callback then,
                  EventQueue::Batch *batch);

    /** A ring delivery completes against ring link @p li. */
    void ringDelivered(std::size_t li, int bytes);

    /** Hand a packet to router @p ri (drop hook lives here). */
    void routerArrive(std::size_t ri, Tick service,
                      EventQueue::Callback next);

    void startService(std::size_t ri);

    /** Sample router @p ri's depth onto the trace, if tracing. */
    void traceDepth(std::size_t ri);

    std::size_t meshIndex(int src, int dst) const;

    // Ring-segment geometry (kind 2).
    int segmentStart(int seg) const;
    int localStation(int node) const;

    EventQueue &eq;
    const Topology topo;
    trace::Tracer *tracer = nullptr; //!< non-null only when enabled
    obs::EngineProfiler *prof = nullptr;
    int wireOrigin = 0;
    int topoTrack = -1;

    std::vector<Link> links;
    std::vector<Router> routers;
    //! One ring per segment (kind 2); rings[s] is booked on the
    //! ledger of links[s].
    std::vector<std::unique_ptr<TokenRing>> rings;
    //! Backbone link index for ordered router pair (a, b), kind 2
    //! with more than one segment: rings first, then row-major pairs.
    std::size_t backboneIndex(int a, int b) const;
};

} // namespace hsipc::sim::topo

#endif // HSIPC_SIM_TOPO_NETWORK_HH
