#include "sim/topo/topology.hh"

#include <cmath>

namespace hsipc::sim::topo
{

namespace
{

/**
 * SplitMix64 of (seed, index) — same finalizer family as the fuzz
 * generator's stream derivation, kept local so placement stays a
 * pure hash regardless of how many draws other subsystems make.
 */
std::uint64_t
mix(std::uint64_t seed, std::uint64_t index)
{
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ull * (index + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

/** Uniform double in [0, 1) from the top 53 bits of the hash. */
double
unit(std::uint64_t seed, std::uint64_t index)
{
    return static_cast<double>(mix(seed, index) >> 11) * 0x1.0p-53;
}

/**
 * Zipf(s) draw over node ids [0, n) with node 0 hottest, by inverse
 * CDF over the explicit mass table.  n is at most a few dozen, so
 * the linear scan costs nothing and keeps the draw exactly
 * reproducible across libm versions (std::pow on integer-over-small-
 * range arguments is correctly rounded on every platform we build).
 */
int
zipfDraw(int n, double skew, double u)
{
    double total = 0;
    for (int i = 0; i < n; ++i)
        total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    double target = u * total;
    for (int i = 0; i < n; ++i) {
        target -= 1.0 / std::pow(static_cast<double>(i + 1), skew);
        if (target < 0)
            return i;
    }
    return n - 1;
}

} // namespace

std::pair<int, int>
placeConversation(const Topology &t, long index, std::uint64_t seed)
{
    const int n = t.nodes;
    const int i = static_cast<int>(index % n);
    switch (t.placement) {
      case 1: // round-robin: neighbours around the node ring
        return {i, (i + 1) % n};
      case 2: // locality: client and server co-resident
        return {i, i};
      case 3: { // hot-spot: Zipf-skewed server, node 0 hottest
        const int srv = zipfDraw(n, t.zipfSkew,
                                 unit(seed, static_cast<std::uint64_t>(index)));
        return {i, srv};
      }
      default: // classic degenerate layout: clients n0, servers n1
        return {0, 1 % n};
    }
}

} // namespace hsipc::sim::topo
