/**
 * @file
 * N-node interconnect topologies for the multi-node simulation — the
 * fleet half of ROADMAP item 1 (the thesis models exactly two nodes;
 * a 925 installation was a machine-room full of them).
 *
 * A Topology describes the interconnect at the Experiment level:
 * point-to-point links with latency and bandwidth (kind 0), a
 * store-and-forward switch (kind 1), or token-ring segments bridged
 * by routers over a full-mesh backbone (kind 2).  Placement policies
 * decide which nodes carry a conversation's client and server.
 *
 * Strictly pay-for-use: nodes == 0 disables the layer entirely and
 * the simulator keeps its historical one/two-node path bit-for-bit.
 * With nodes == 2, kind 0, linkMbps == 0 and linkLatencyUs == wireUs,
 * the topology reproduces the legacy two-node run byte-identically
 * (pinned by tests/test_topo.cc).
 *
 * The Ledger types carry the exact per-link / per-router flow-
 * conservation counts the topo.* invariant family asserts (see
 * src/sim/check/invariants.cc): on every link
 * msgsIn == msgsOut + dropped + inFlightAtEnd, and at every router
 * received == forwarded + dropped + inFlightAtEnd, where the
 * in-flight terms are read structurally from the queues at end of
 * run — a silently vanished packet cannot balance the books.
 */

#ifndef HSIPC_SIM_TOPO_TOPOLOGY_HH
#define HSIPC_SIM_TOPO_TOPOLOGY_HH

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace hsipc::sim::topo
{

/**
 * A directed per-pair override of the mesh link defaults (kind 0
 * only).  Entries whose endpoints fall outside [0, nodes) are
 * ignored rather than rejected, so shrinking `nodes` downward never
 * invalidates a configuration.
 */
struct TopoLink
{
    int a = 0;          //!< source node
    int b = 1;          //!< destination node
    double latencyUs = 0;
    double mbps = 0;    //!< 0 = no serialization delay
    friend bool operator==(const TopoLink &,
                           const TopoLink &) = default;
};

/** The Experiment-level interconnect description. */
struct Topology
{
    //! Node count; 0 disables the whole layer (the legacy path),
    //! any value >= 2 enables it.
    int nodes = 0;

    //! 0 = point-to-point full mesh, 1 = store-and-forward switch
    //! (star), 2 = token-ring segments bridged by routers.
    int kind = 0;

    double linkLatencyUs = 0; //!< propagation delay per link
    double linkMbps = 0;      //!< link rate; 0 = infinite (no ser.)
    double switchLatencyUs = 0; //!< per-packet router processing

    //! Ring-segment topology (kind 2): contiguous segments of
    //! roughly nodes/segments stations each, every segment its own
    //! token ring at segMbps; with more than one segment each ring
    //! gains a router station and routers bridge segments over a
    //! full-mesh backbone of point-to-point links.
    int segments = 1;
    double segMbps = 4.0;

    //! Client/server placement: 0 = classic (all clients node 0,
    //! all servers node 1 — the degenerate two-node layout),
    //! 1 = round-robin (client i%N, server (i+1)%N), 2 = locality
    //! (client and server co-resident at i%N), 3 = hot-spot (client
    //! i%N, server Zipf-distributed with node 0 hottest).
    int placement = 0;
    double zipfSkew = 1.0; //!< Zipf exponent of the hot-spot draw

    //! Per-pair mesh overrides; see TopoLink.
    std::vector<TopoLink> links;

    bool enabled() const { return nodes > 0; }

    /** Segments actually instantiated: clamped into [1, nodes]. */
    int
    effectiveSegments() const
    {
        const int s = segments < 1 ? 1 : segments;
        return s > nodes ? nodes : s;
    }

    /** Contiguous balanced segment of @p node (kind 2). */
    int
    segmentOf(int node) const
    {
        return static_cast<int>(
            (static_cast<long>(node) * effectiveSegments()) / nodes);
    }

    friend bool operator==(const Topology &,
                           const Topology &) = default;
};

/**
 * Client and server node of conversation @p index under the
 * topology's placement policy — a pure function of (topology, index,
 * seed), so open arrivals and jobs=1/N sweeps place identically.
 */
std::pair<int, int> placeConversation(const Topology &t, long index,
                                      std::uint64_t seed);

/** One link's whole-run conservation ledger. */
struct LinkLedger
{
    std::string name;   //!< e.g. "n0->n1", "n3->sw", "ring1", "r0->r2"
    long msgsIn = 0;    //!< packets handed to the link
    long msgsOut = 0;   //!< packets delivered off the link
    long bytesIn = 0;
    long bytesOut = 0;
    long dropped = 0;   //!< always 0 today (drops happen upstream)
    long inFlightAtEnd = 0; //!< scheduled, undelivered at the horizon
    long retransmissions = 0; //!< channel retx routed over this link
    long queuePeak = 0; //!< peak simultaneous in-flight packets
};

/** One router's whole-run conservation ledger. */
struct RouterLedger
{
    std::string name;   //!< "sw" (kind 1) or "r<segment>" (kind 2)
    long received = 0;  //!< packets that arrived at the router
    long forwarded = 0; //!< packets sent onward
    long dropped = 0;   //!< accounted drops (none today)
    long inFlightAtEnd = 0; //!< queued or in service at the horizon
    long queuePeak = 0; //!< peak queued + in-service population
};

/** The Outcome's per-link ledger; empty when the layer is off. */
struct Ledger
{
    bool enabled = false;
    std::vector<LinkLedger> links;
    std::vector<RouterLedger> routers;
};

} // namespace hsipc::sim::topo

#endif // HSIPC_SIM_TOPO_TOPOLOGY_HH
