#include "sim/topo/network.hh"

#include <string>
#include <utility>

#include "common/logging.hh"
#include "sim/check/test_hooks.hh"

namespace hsipc::sim::topo
{

Network::Network(EventQueue &eq, const Topology &t,
                 trace::Tracer *tr, obs::EngineProfiler *p)
    : eq(eq), topo(t),
      tracer(tr && tr->enabled() ? tr : nullptr), prof(p)
{
    hsipc_assert(topo.enabled());
    // Same attribution origin as the legacy wire: the degenerate
    // two-node mesh profiles identically to the path it replaces.
    if (prof)
        wireOrigin = prof->origin("wire");

    const int n = topo.nodes;
    const Tick lat = usToTicks(topo.linkLatencyUs);
    auto node = [](int i) { return "n" + std::to_string(i); };
    auto addLink = [this](std::string name, Tick latency,
                          double mbps) {
        Link l;
        l.led.name = std::move(name);
        l.latency = latency;
        l.mbps = mbps;
        links.push_back(std::move(l));
    };

    switch (topo.kind) {
      case 0: // point-to-point mesh, one directed link per pair
        for (int i = 0; i < n; ++i) {
            for (int j = 0; j < n; ++j) {
                if (j != i)
                    addLink(node(i) + "->" + node(j), lat,
                            topo.linkMbps);
            }
        }
        // Per-pair overrides, in declaration order (last wins);
        // out-of-range endpoints are ignored so shrinking the node
        // count never invalidates the override list.
        for (const TopoLink &o : topo.links) {
            if (o.a < 0 || o.a >= n || o.b < 0 || o.b >= n ||
                o.a == o.b)
                continue;
            Link &l = links[meshIndex(o.a, o.b)];
            l.latency = usToTicks(o.latencyUs);
            l.mbps = o.mbps;
        }
        break;

      case 1: // store-and-forward switch: ingress links, then egress
        for (int i = 0; i < n; ++i)
            addLink(node(i) + "->sw", lat, topo.linkMbps);
        // Serialization is charged once, at the switch's output
        // port (part of its service time); egress is pure latency.
        for (int i = 0; i < n; ++i)
            addLink("sw->" + node(i), lat, 0);
        routers.emplace_back();
        routers.back().led.name = "sw";
        break;

      default: { // token-ring segments bridged by routers
        const int s_count = topo.effectiveSegments();
        for (int s = 0; s < s_count; ++s) {
            // The ring is booked as one ledger entry: a send enters
            // the link, the delivery leaves it.
            addLink("ring" + std::to_string(s), 0, 0);
            TokenRing::Config rc;
            const int size =
                segmentStart(s + 1) - segmentStart(s);
            // With multiple segments the ring carries one extra
            // station: the segment's router.
            rc.stations = size + (s_count > 1 ? 1 : 0);
            rc.megabitsPerSec = topo.segMbps;
            rings.push_back(std::make_unique<TokenRing>(eq, rc));
        }
        if (s_count > 1) {
            for (int s = 0; s < s_count; ++s) {
                routers.emplace_back();
                routers.back().led.name = "r" + std::to_string(s);
            }
            for (int a = 0; a < s_count; ++a) {
                for (int b = 0; b < s_count; ++b) {
                    if (b != a)
                        addLink("r" + std::to_string(a) + "->r" +
                                    std::to_string(b),
                                lat, topo.linkMbps);
                }
            }
        }
        break;
      }
    }
    if (tracer)
        topoTrack = tracer->track("topo");
}

Tick
Network::serTicks(int bytes, double mbps) const
{
    if (mbps <= 0)
        return 0;
    return usToTicks(static_cast<double>(bytes) * 8.0 / mbps);
}

std::size_t
Network::meshIndex(int src, int dst) const
{
    return static_cast<std::size_t>(src * (topo.nodes - 1) +
                                    (dst - (dst > src ? 1 : 0)));
}

std::size_t
Network::backboneIndex(int a, int b) const
{
    const int s_count = topo.effectiveSegments();
    return static_cast<std::size_t>(s_count + a * (s_count - 1) +
                                    (b - (b > a ? 1 : 0)));
}

int
Network::segmentStart(int seg) const
{
    const int s_count = topo.effectiveSegments();
    return (seg * topo.nodes + s_count - 1) / s_count;
}

int
Network::localStation(int n) const
{
    return n - segmentStart(topo.segmentOf(n));
}

void
Network::dispatch(Tick delay, EventQueue::Callback cb,
                  EventQueue::Batch *batch)
{
    if (prof) {
        // The inter-node lookahead edge, exactly as the legacy wire
        // records it (see Sim::rawWire).
        prof->edge(wireOrigin, delay);
        auto wrapped = [this, inner = std::move(cb)]() {
            obs::EngineProfiler::Scope s(prof, wireOrigin);
            inner();
        };
        if (batch)
            batch->scheduleAfter(delay, std::move(wrapped));
        else
            eq.scheduleAfter(delay, std::move(wrapped));
    } else if (batch) {
        batch->scheduleAfter(delay, std::move(cb));
    } else {
        eq.scheduleAfter(delay, std::move(cb));
    }
}

void
Network::traverse(std::size_t li, int bytes,
                  EventQueue::Callback then,
                  EventQueue::Batch *batch)
{
    Link &l = links[li];
    ++l.led.msgsIn;
    l.led.bytesIn += bytes;
    ++l.inFlight;
    if (l.inFlight > l.led.queuePeak)
        l.led.queuePeak = l.inFlight;
    const Tick delay = l.latency + serTicks(bytes, l.mbps);
    dispatch(delay,
             [this, li, bytes, inner = std::move(then)]() {
                 Link &dl = links[li];
                 --dl.inFlight;
                 ++dl.led.msgsOut;
                 dl.led.bytesOut += bytes;
                 inner();
             },
             batch);
}

void
Network::ringDelivered(std::size_t li, int bytes)
{
    Link &l = links[li];
    --l.inFlight;
    ++l.led.msgsOut;
    l.led.bytesOut += bytes;
}

void
Network::traceDepth(std::size_t ri)
{
    if (!tracer)
        return;
    const Router &r = routers[ri];
    tracer->counter(topoTrack, r.led.name + ".depth", eq.now(),
                    static_cast<double>(r.depth()));
}

void
Network::routerArrive(std::size_t ri, Tick service,
                      EventQueue::Callback next)
{
    Router &r = routers[ri];
    ++r.led.received;
    // Planted defect for the fuzzer's drill (see test_hooks.hh):
    // the packet vanishes here without touching `dropped`, leaving
    // received > forwarded + dropped + inFlight — exactly what
    // topo.conservation must catch.
    if (check::testHooks().topoRouterDrop > 0) {
        --check::testHooks().topoRouterDrop;
        return;
    }
    r.q.push_back(Item{service, std::move(next)});
    if (r.depth() > r.led.queuePeak)
        r.led.queuePeak = r.depth();
    traceDepth(ri);
    if (!r.busy)
        startService(ri);
}

void
Network::startService(std::size_t ri)
{
    Router &r = routers[ri];
    Item it = std::move(r.q.front());
    r.q.pop_front();
    r.busy = true;
    dispatch(it.service,
             [this, ri, next = std::move(it.next)]() mutable {
                 Router &dr = routers[ri];
                 ++dr.led.forwarded;
                 next();
                 if (!dr.q.empty())
                     startService(ri);
                 else
                     dr.busy = false;
                 traceDepth(ri);
             },
             nullptr);
}

void
Network::send(int src, int dst, int bytes,
              EventQueue::Callback deliver, EventQueue::Batch *batch)
{
    hsipc_assert(src >= 0 && src < topo.nodes);
    hsipc_assert(dst >= 0 && dst < topo.nodes && dst != src);

    switch (topo.kind) {
      case 0:
        traverse(meshIndex(src, dst), bytes, std::move(deliver),
                 batch);
        return;

      case 1: {
        const Tick service = usToTicks(topo.switchLatencyUs) +
                             serTicks(bytes, topo.linkMbps);
        const std::size_t egress =
            static_cast<std::size_t>(topo.nodes + dst);
        traverse(
            static_cast<std::size_t>(src), bytes,
            [this, service, egress, bytes,
             inner = std::move(deliver)]() mutable {
                routerArrive(0, service,
                             [this, egress, bytes,
                              cb = std::move(inner)]() mutable {
                                 traverse(egress, bytes,
                                          std::move(cb), nullptr);
                             });
            },
            batch);
        return;
      }

      default: {
        const int ss = topo.segmentOf(src);
        const int ds = topo.segmentOf(dst);
        Link &rl = links[static_cast<std::size_t>(ss)];
        ++rl.led.msgsIn;
        rl.led.bytesIn += bytes;
        ++rl.inFlight;
        if (rl.inFlight > rl.led.queuePeak)
            rl.led.queuePeak = rl.inFlight;
        if (ss == ds) {
            rings[static_cast<std::size_t>(ss)]->send(
                localStation(src), localStation(dst), bytes,
                [this, ss, bytes, inner = std::move(deliver)]() {
                    ringDelivered(static_cast<std::size_t>(ss),
                                  bytes);
                    inner();
                },
                batch);
            return;
        }
        // Cross-segment: source ring to its router, switch service
        // (with serialization onto the backbone), a backbone link,
        // the destination router, and the destination ring.
        const int routerStation =
            segmentStart(ss + 1) - segmentStart(ss);
        const Tick srcService = usToTicks(topo.switchLatencyUs) +
                                serTicks(bytes, topo.linkMbps);
        const Tick dstService = usToTicks(topo.switchLatencyUs);
        auto atDstRouter = [this, ds, dst, bytes, dstService,
                            inner =
                                std::move(deliver)]() mutable {
            routerArrive(
                static_cast<std::size_t>(ds), dstService,
                [this, ds, dst, bytes,
                 cb = std::move(inner)]() mutable {
                    Link &dl = links[static_cast<std::size_t>(ds)];
                    ++dl.led.msgsIn;
                    dl.led.bytesIn += bytes;
                    ++dl.inFlight;
                    if (dl.inFlight > dl.led.queuePeak)
                        dl.led.queuePeak = dl.inFlight;
                    rings[static_cast<std::size_t>(ds)]->send(
                        segmentStart(ds + 1) - segmentStart(ds),
                        localStation(dst), bytes,
                        [this, ds, bytes,
                         done = std::move(cb)]() {
                            ringDelivered(
                                static_cast<std::size_t>(ds),
                                bytes);
                            done();
                        });
                });
        };
        rings[static_cast<std::size_t>(ss)]->send(
            localStation(src), routerStation, bytes,
            [this, ss, ds, bytes, srcService,
             hop = std::move(atDstRouter)]() mutable {
                ringDelivered(static_cast<std::size_t>(ss), bytes);
                routerArrive(
                    static_cast<std::size_t>(ss), srcService,
                    [this, ss, ds, bytes,
                     fwd = std::move(hop)]() mutable {
                        traverse(backboneIndex(ss, ds), bytes,
                                 std::move(fwd), nullptr);
                    });
            },
            batch);
        return;
      }
    }
}

void
Network::attributeRetransmissions(int src, int dst, long count)
{
    if (count <= 0)
        return;
    switch (topo.kind) {
      case 0:
        links[meshIndex(src, dst)].led.retransmissions += count;
        return;
      case 1:
        links[static_cast<std::size_t>(src)].led.retransmissions +=
            count;
        links[static_cast<std::size_t>(topo.nodes + dst)]
            .led.retransmissions += count;
        return;
      default: {
        const int ss = topo.segmentOf(src);
        const int ds = topo.segmentOf(dst);
        links[static_cast<std::size_t>(ss)].led.retransmissions +=
            count;
        if (ss != ds) {
            links[backboneIndex(ss, ds)].led.retransmissions +=
                count;
            links[static_cast<std::size_t>(ds)]
                .led.retransmissions += count;
        }
        return;
      }
    }
}

void
Network::fillLedger(Ledger &out) const
{
    out.enabled = true;
    out.links.clear();
    out.routers.clear();
    for (const Link &l : links) {
        LinkLedger led = l.led;
        led.inFlightAtEnd = l.inFlight;
        out.links.push_back(std::move(led));
    }
    for (const Router &r : routers) {
        RouterLedger led = r.led;
        led.inFlightAtEnd = r.depth();
        out.routers.push_back(std::move(led));
    }
}

double
Network::routerDepthSum() const
{
    double sum = 0;
    for (const Router &r : routers)
        sum += static_cast<double>(r.depth());
    return sum;
}

double
Network::linkInFlightSum() const
{
    double sum = 0;
    for (const Link &l : links)
        sum += static_cast<double>(l.inFlight);
    return sum;
}

} // namespace hsipc::sim::topo
