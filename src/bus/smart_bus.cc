#include "bus/smart_bus.hh"

#include <algorithm>

namespace hsipc::bus
{

SmartBus::SmartBus(SimMemory &mem, Config cfg)
    : mem(mem), config(cfg), directController(mem),
      controller(&directController),
      table(static_cast<std::size_t>(cfg.requestTableSize))
{
    hsipc_assert(cfg.requestTableSize >= 1 &&
                 cfg.requestTableSize <= 16);
    hsipc_assert(cfg.memoryPriority <= 7);
}

int
SmartBus::addUnit(std::string name, BusPriority br)
{
    hsipc_assert(br <= 7);
    hsipc_assert(br != config.memoryPriority);
    for (const Unit &u : units)
        hsipc_assert(u.br != br);
    units.push_back(Unit{std::move(name), br, {}});
    return static_cast<int>(units.size() - 1);
}

SmartBus::OpId
SmartBus::post(int unit, PendingOp op)
{
    hsipc_assert(unit >= 0 &&
                 static_cast<std::size_t>(unit) < units.size());
    op.id = static_cast<OpId>(results.size());
    results.emplace_back();
    units[static_cast<std::size_t>(unit)].queue.push_back(std::move(op));
    return static_cast<OpId>(results.size() - 1);
}

SmartBus::OpId
SmartBus::postEnqueue(int unit, Addr list, Addr element)
{
    PendingOp op;
    op.command = BusCommand::EnqueueControlBlock;
    op.addr = list;
    op.addr2 = element;
    return post(unit, op);
}

SmartBus::OpId
SmartBus::postDequeue(int unit, Addr list, Addr element)
{
    PendingOp op;
    op.command = BusCommand::DequeueControlBlock;
    op.addr = list;
    op.addr2 = element;
    return post(unit, op);
}

SmartBus::OpId
SmartBus::postFirst(int unit, Addr list)
{
    PendingOp op;
    op.command = BusCommand::FirstControlBlock;
    op.addr = list;
    return post(unit, op);
}

SmartBus::OpId
SmartBus::postRead(int unit, Addr a)
{
    PendingOp op;
    op.command = BusCommand::SimpleRead;
    op.addr = a;
    return post(unit, op);
}

SmartBus::OpId
SmartBus::postWrite16(int unit, Addr a, std::uint16_t v)
{
    PendingOp op;
    op.command = BusCommand::WriteTwoBytes;
    op.addr = a;
    op.wvalue = v;
    return post(unit, op);
}

SmartBus::OpId
SmartBus::postWrite8(int unit, Addr a, std::uint8_t v)
{
    PendingOp op;
    op.command = BusCommand::WriteByte;
    op.addr = a;
    op.wvalue = v;
    return post(unit, op);
}

SmartBus::OpId
SmartBus::postBlockRead(int unit, Addr a, std::uint16_t bytes)
{
    PendingOp op;
    op.command = BusCommand::BlockReadData;
    op.addr = a;
    op.byteCount = bytes;
    return post(unit, op);
}

SmartBus::OpId
SmartBus::postBlockWrite(int unit, Addr a, std::vector<std::uint8_t> data)
{
    PendingOp op;
    op.command = BusCommand::BlockWriteData;
    op.addr = a;
    op.byteCount = static_cast<std::uint16_t>(data.size());
    op.payload = std::move(data);
    return post(unit, op);
}

const OpResult &
SmartBus::result(OpId op) const
{
    hsipc_assert(op >= 0 &&
                 static_cast<std::size_t>(op) < results.size());
    return results[static_cast<std::size_t>(op)];
}

int
SmartBus::requestTableLoad() const
{
    int n = 0;
    for (const TableEntry &e : table)
        n += e.valid;
    return n;
}

void
SmartBus::logTenure(long start, int edges, const std::string &unit,
                    BusCommand cmd, std::string detail)
{
    log.push_back(BusTraceEntry{start, edges, unit, cmd,
                                std::move(detail)});
}

void
SmartBus::completeFront(Unit &u)
{
    OpResult &r = results[static_cast<std::size_t>(u.queue.front().id)];
    r.done = true;
    r.endEdge = clockEdges;
    u.queue.pop_front();
}

void
SmartBus::fail(Unit &u, PendingOp &op, const std::string &msg)
{
    OpResult &r = results[static_cast<std::size_t>(op.id)];
    r.error = true;
    r.errorMsg = msg;
    completeFront(u);
}

int
SmartBus::allocTableEntry(const TableEntry &e)
{
    for (std::size_t i = 0; i < table.size(); ++i) {
        if (!table[i].valid) {
            table[i] = e;
            table[i].valid = true;
            return static_cast<int>(i);
        }
    }
    return -1;
}

void
SmartBus::tenureSimpleOp(Unit &u, PendingOp &op)
{
    const long start = clockEdges;
    const int edges = handshakeEdges(op.command);
    OpResult &r = results[static_cast<std::size_t>(op.id)];
    if (r.startEdge < 0)
        r.startEdge = start;

    switch (op.command) {
      case BusCommand::EnqueueControlBlock:
        controller->enqueue(op.addr, op.addr2);
        break;
      case BusCommand::DequeueControlBlock:
        controller->dequeue(op.addr, op.addr2);
        break;
      case BusCommand::FirstControlBlock:
        r.value = controller->first(op.addr);
        break;
      case BusCommand::SimpleRead:
        r.value = controller->read(op.addr);
        break;
      case BusCommand::WriteTwoBytes:
        controller->write16(op.addr, op.wvalue);
        break;
      case BusCommand::WriteByte:
        controller->write8(op.addr,
                           static_cast<std::uint8_t>(op.wvalue));
        break;
      default:
        hsipc_panic("not a simple op");
    }

    clockEdges += edges;
    logTenure(start, edges, u.name, op.command, "");
    completeFront(u);
}

void
SmartBus::tenureBlockRequest(Unit &u, PendingOp &op)
{
    const long start = clockEdges;
    OpResult &r = results[static_cast<std::size_t>(op.id)];
    if (r.startEdge < 0)
        r.startEdge = start;

    if (op.byteCount == 0) {
        // §A.5.1: zero-length block requests are rejected.
        fail(u, op, "block transfer with zero count");
        return;
    }

    TableEntry e;
    e.write = op.command == BusCommand::BlockWriteData;
    e.addr = op.addr;
    e.count = op.byteCount;
    e.unit = static_cast<int>(&u - units.data());
    e.op = op.id;
    const int tag = allocTableEntry(e);
    if (tag < 0) {
        // §A.5.1: the request table is full.
        fail(u, op, "request table full");
        return;
    }

    op.requested = true;
    op.tag = static_cast<std::uint16_t>(tag);
    r.value = op.tag;
    clockEdges += handshakeEdges(BusCommand::BlockTransfer);
    logTenure(start, 4, u.name, BusCommand::BlockTransfer,
              (e.write ? "write " : "read ") +
                  std::to_string(op.byteCount) + "B tag " +
                  std::to_string(tag));
}

void
SmartBus::tenureWriteStream(Unit &u, PendingOp &op)
{
    // Streaming mode: the bus is granted for two transfers at a time
    // (an even number of edges returns IS/IK to the released state).
    const long start = clockEdges;
    TableEntry &e = table[op.tag];
    hsipc_assert(e.valid && e.write);

    int words = 0;
    while (words < 2 && op.offset < op.byteCount) {
        const Addr dst = static_cast<Addr>(e.addr + op.offset);
        if (op.byteCount - op.offset >= 2) {
            const std::uint16_t v = static_cast<std::uint16_t>(
                op.payload[op.offset] |
                (op.payload[op.offset + 1u] << 8));
            controller->write16(dst, v);
            op.offset = static_cast<std::uint16_t>(op.offset + 2);
        } else {
            // Odd-length tail: both sides know the count (§5.3.1).
            controller->write8(dst, op.payload[op.offset]);
            op.offset = static_cast<std::uint16_t>(op.offset + 1);
        }
        e.offset = op.offset;
        ++words;
    }
    clockEdges += 2 * words;
    logTenure(start, 2 * words, u.name, BusCommand::BlockWriteData,
              "tag " + std::to_string(op.tag) + " " +
                  std::to_string(op.offset) + "/" +
                  std::to_string(op.byteCount) + "B");

    if (op.offset >= op.byteCount) {
        e.valid = false;
        completeFront(u);
    }
}

void
SmartBus::tenureReadStream(int ti)
{
    const long start = clockEdges;
    TableEntry &e = table[static_cast<std::size_t>(ti)];
    hsipc_assert(e.valid && !e.write);
    Unit &u = units[static_cast<std::size_t>(e.unit)];
    PendingOp &op = u.queue.front();
    OpResult &r = results[static_cast<std::size_t>(e.op)];

    int words = 0;
    while (words < 2 && e.offset < e.count) {
        const Addr src = static_cast<Addr>(e.addr + e.offset);
        if (e.count - e.offset >= 2) {
            const std::uint16_t v = controller->read(src);
            r.data.push_back(static_cast<std::uint8_t>(v & 0xff));
            r.data.push_back(static_cast<std::uint8_t>(v >> 8));
            e.offset = static_cast<std::uint16_t>(e.offset + 2);
        } else {
            r.data.push_back(static_cast<std::uint8_t>(
                controller->read(src) & 0xff));
            e.offset = static_cast<std::uint16_t>(e.offset + 1);
        }
        ++words;
    }
    clockEdges += 2 * words;
    logTenure(start, 2 * words, "Memory", BusCommand::BlockReadData,
              "tag " + std::to_string(ti) + " for " + u.name + " " +
                  std::to_string(e.offset) + "/" +
                  std::to_string(e.count) + "B");

    if (e.offset >= e.count) {
        e.valid = false;
        hsipc_assert(op.id == e.op);
        completeFront(u);
    }
}

bool
SmartBus::step()
{
    // Gather contenders: units whose front operation needs the bus,
    // and the memory when it has pending read streams.
    std::vector<BusPriority> brs;
    std::vector<int> who; // unit id, or -1 for the memory
    for (std::size_t i = 0; i < units.size(); ++i) {
        if (!units[i].queue.empty()) {
            // A unit whose block-read is in flight waits for the
            // memory to stream; it does not contend.
            const PendingOp &op = units[i].queue.front();
            if (op.command == BusCommand::BlockReadData && op.requested)
                continue;
            brs.push_back(units[i].br);
            who.push_back(static_cast<int>(i));
        }
    }
    bool memory_wants = false;
    for (const TableEntry &e : table)
        memory_wants = memory_wants || (e.valid && !e.write);
    if (memory_wants) {
        brs.push_back(config.memoryPriority);
        who.push_back(-1);
    }
    if (brs.empty())
        return false;

    ++arbitrations;
    const std::size_t w = taubArbitrate(brs);
    const int owner = who[w];

    // A change of master while another stream is still live counts as
    // a preemption of that stream.
    bool stream_live = false;
    for (const TableEntry &e : table)
        stream_live = stream_live || (e.valid && e.offset > 0);
    if (stream_live && owner != lastOwner && lastOwner != -2)
        ++preemptions;
    lastOwner = owner;

    if (owner < 0) {
        // The memory streams the highest-priority pending read: the
        // one whose requesting unit has the highest br.
        int best = -1;
        BusPriority best_br = 0;
        for (std::size_t i = 0; i < table.size(); ++i) {
            const TableEntry &e = table[i];
            if (e.valid && !e.write) {
                const BusPriority br =
                    units[static_cast<std::size_t>(e.unit)].br;
                if (best < 0 || br > best_br) {
                    best = static_cast<int>(i);
                    best_br = br;
                }
            }
        }
        hsipc_assert(best >= 0);
        tenureReadStream(best);
        return true;
    }

    Unit &u = units[static_cast<std::size_t>(owner)];
    PendingOp &op = u.queue.front();
    switch (op.command) {
      case BusCommand::BlockReadData:
        hsipc_assert(!op.requested);
        tenureBlockRequest(u, op);
        break;
      case BusCommand::BlockWriteData:
        if (!op.requested)
            tenureBlockRequest(u, op);
        else
            tenureWriteStream(u, op);
        break;
      default:
        tenureSimpleOp(u, op);
        break;
    }
    return true;
}

void
SmartBus::run()
{
    long guard = 0;
    while (step()) {
        if (++guard > 100000000)
            hsipc_panic("smart bus did not drain");
    }
}

} // namespace hsipc::bus
