#include "bus/timing.hh"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/logging.hh"

namespace hsipc::bus
{

namespace
{

/** Script builder with an advancing step counter. */
class Script
{
  public:
    /** Emit events at the current step, then advance. */
    Script &
    at(std::initializer_list<ProtocolEvent> evs)
    {
        for (ProtocolEvent e : evs) {
            e.step = step;
            events.push_back(std::move(e));
        }
        ++step;
        return *this;
    }

    std::vector<ProtocolEvent> take() { return std::move(events); }

  private:
    std::vector<ProtocolEvent> events;
    int step = 0;
};

constexpr const char *proc = "Processor";
constexpr const char *memo = "Memory";

ProtocolEvent
ev(Line l, bool assert, const char *label, const char *actor)
{
    return ProtocolEvent{0, l, assert, label, actor};
}

/** Two-operand four-edge handshake (block transfer, enqueue, writes). */
std::vector<ProtocolEvent>
fourEdge(const char *first, const char *second, bool tagged)
{
    Script s;
    s.at({ev(Line::BBSY, true, "", proc),
          ev(Line::AD, true, first, proc), ev(Line::IS, true, "", proc)});
    if (tagged) {
        s.at({ev(Line::TG, true, "tag", memo),
              ev(Line::IK, true, "", memo)});
    } else {
        s.at({ev(Line::IK, true, "", memo)});
    }
    s.at({ev(Line::AD, false, first, proc),
          ev(Line::AD, true, second, proc),
          ev(Line::IS, false, "", proc)});
    if (tagged) {
        s.at({ev(Line::TG, false, "tag", memo),
              ev(Line::IK, false, "", memo)});
    } else {
        s.at({ev(Line::IK, false, "", memo)});
    }
    s.at({ev(Line::AD, false, second, proc),
          ev(Line::BBSY, false, "", proc)});
    return s.take();
}

/** Address-out, value-back eight-edge handshake (first, simple read). */
std::vector<ProtocolEvent>
eightEdge(const char *request, const char *response)
{
    Script s;
    s.at({ev(Line::BBSY, true, "", proc),
          ev(Line::AD, true, request, proc),
          ev(Line::IS, true, "", proc)});
    s.at({ev(Line::IK, true, "", memo)});
    s.at({ev(Line::AD, false, request, proc),
          ev(Line::IS, false, "", proc)});
    s.at({ev(Line::IK, false, "", memo)});
    s.at({ev(Line::AD, true, response, memo),
          ev(Line::IK, true, "", memo)});
    s.at({ev(Line::IS, true, "", proc)});
    s.at({ev(Line::AD, false, response, memo),
          ev(Line::IK, false, "", memo)});
    s.at({ev(Line::IS, false, "", proc),
          ev(Line::BBSY, false, "", proc)});
    return s.take();
}

/** Streaming data transfer, two edges per word (Figs 5.5-5.8). */
std::vector<ProtocolEvent>
streaming(int words, bool memory_drives)
{
    hsipc_assert(words >= 1);
    const char *driver = memory_drives ? memo : proc;
    const char *acker = memory_drives ? proc : memo;
    // The driver strobes with IK when it is the memory (block read
    // data) and with IS when it is the processor (block write data).
    const Line strobe = memory_drives ? Line::IK : Line::IS;
    const Line ack = memory_drives ? Line::IS : Line::IK;

    Script s;
    s.at({ev(Line::BBSY, true, "", driver),
          ev(Line::TG, true, "tag", driver),
          ev(Line::AD, true, "data0", driver),
          ev(strobe, true, "", driver)});
    for (int w = 1; w < words; ++w) {
        const std::string prev = "data" + std::to_string(w - 1);
        const std::string next = "data" + std::to_string(w);
        s.at({ev(ack, w % 2 == 1, "", acker)});
        ProtocolEvent swap_out = ev(Line::AD, false, "", driver);
        swap_out.label = prev;
        ProtocolEvent swap_in = ev(Line::AD, true, "", driver);
        swap_in.label = next;
        s.at({swap_out, swap_in, ev(strobe, w % 2 == 0, "", driver)});
    }
    s.at({ev(ack, words % 2 == 1, "", acker)});
    // Recover to released state (an even transfer count leaves the
    // lines released already; §5.3.1 grants two at a time for this).
    ProtocolEvent last_data = ev(Line::AD, false, "", driver);
    last_data.label = "data" + std::to_string(words - 1);
    if (words % 2 == 1) {
        s.at({last_data, ev(strobe, false, "", driver)});
        s.at({ev(ack, false, "", acker)});
        s.at({ev(Line::TG, false, "tag", driver),
              ev(Line::BBSY, false, "", driver)});
    } else {
        s.at({last_data, ev(Line::TG, false, "tag", driver),
              ev(Line::BBSY, false, "", driver)});
    }
    return s.take();
}

} // namespace

std::vector<ProtocolEvent>
handshakeScript(BusCommand c, int words)
{
    switch (c) {
      case BusCommand::BlockTransfer:
        return fourEdge("address", "count", true);
      case BusCommand::EnqueueControlBlock:
        return fourEdge("list addr", "element", false);
      case BusCommand::DequeueControlBlock:
        return fourEdge("list addr", "element", false);
      case BusCommand::WriteTwoBytes:
      case BusCommand::WriteByte:
        return fourEdge("address", "data", false);
      case BusCommand::FirstControlBlock:
        return eightEdge("list addr", "first elem");
      case BusCommand::SimpleRead:
        return eightEdge("address", "data");
      case BusCommand::BlockReadData:
        return streaming(words, true);
      case BusCommand::BlockWriteData:
        return streaming(words, false);
    }
    hsipc_panic("bad BusCommand");
}

int
scriptEdges(const std::vector<ProtocolEvent> &script)
{
    int edges = 0;
    for (const ProtocolEvent &e : script) {
        if (e.line == Line::IS || e.line == Line::IK)
            ++edges;
    }
    return edges;
}

bool
scriptReturnsToReleased(const std::vector<ProtocolEvent> &script)
{
    std::map<Line, bool> asserted;
    for (const ProtocolEvent &e : script)
        asserted[e.line] = e.assert;
    for (const auto &[line, on] : asserted) {
        if (on)
            return false;
    }
    return true;
}

std::string
renderTimingDiagram(BusCommand c, int words)
{
    const auto script = handshakeScript(c, words);
    int steps = 0;
    for (const ProtocolEvent &e : script)
        steps = std::max(steps, e.step + 1);

    const int cell = 8; //!< characters per step
    auto wave_row = [&](Line line, const char *name) {
        std::string row(static_cast<std::size_t>(steps * cell), ' ');
        bool level = false; // released
        int cursor = 0;
        for (int st = 0; st < steps; ++st) {
            bool change = false, newlevel = level;
            for (const ProtocolEvent &e : script) {
                if (e.step == st && e.line == line) {
                    change = true;
                    newlevel = e.assert;
                }
            }
            const char body = level || (change && newlevel) ? '_' : '-';
            for (int i = 0; i < cell; ++i)
                row[static_cast<std::size_t>(cursor + i)] = body;
            if (change && newlevel != level)
                row[static_cast<std::size_t>(cursor)] =
                    newlevel ? '\\' : '/';
            level = newlevel;
            cursor += cell;
        }
        char head[16];
        std::snprintf(head, sizeof(head), "%-6s", name);
        return std::string(head) + row + "\n";
    };

    auto data_row = [&](Line line, const char *name) {
        std::string row(static_cast<std::size_t>(steps * cell), '-');
        for (const ProtocolEvent &e : script) {
            if (e.line != line || !e.assert)
                continue;
            // Find where this payload is removed again.
            int end = steps;
            for (const ProtocolEvent &f : script) {
                if (f.line == line && !f.assert && f.label == e.label &&
                    f.step >= e.step) {
                    end = f.step;
                    break;
                }
            }
            const int from = e.step * cell;
            const int to = std::min(end * cell + 1, steps * cell);
            std::string label = "<" + e.label;
            for (int i = from; i < to; ++i) {
                const std::size_t li = static_cast<std::size_t>(i - from);
                char ch = li < label.size() ? label[li] : '=';
                if (i == to - 1)
                    ch = '>';
                row[static_cast<std::size_t>(i)] = ch;
            }
        }
        char head[16];
        std::snprintf(head, sizeof(head), "%-6s", name);
        return std::string(head) + row + "\n";
    };

    std::ostringstream out;
    out << busCommandName(c);
    if (c == BusCommand::BlockReadData || c == BusCommand::BlockWriteData)
        out << " (" << words << " words, streaming mode)";
    out << " — " << scriptEdges(script) << " IS/IK edges\n";
    out << wave_row(Line::BBSY, "BBSY");
    out << wave_row(Line::IS, "IS");
    out << wave_row(Line::IK, "IK");
    out << data_row(Line::AD, "A/D");
    bool has_tag = false;
    for (const ProtocolEvent &e : script)
        has_tag = has_tag || e.line == Line::TG;
    if (has_tag)
        out << data_row(Line::TG, "TG");
    return out.str();
}

} // namespace hsipc::bus
