/**
 * @file
 * Distributed bus arbitration after Taub (§5.4, Figs 5.17/5.18).
 *
 * Each contender drives its unique three-bit bus-request number onto
 * the wired-or BR lines through the recurrence
 *
 *     OK_0 = 1
 *     OK_i = (!BR_{i-1} | br_{i-1}) & OK_{i-1}     (i > 0)
 *     BR_i = OK_i & br_i
 *
 * (br_0 is the most significant bit).  The unit whose number matches
 * the settled BR value wins.  The recurrence implements a bitwise
 * maximum: this module evaluates it faithfully, iterating until the
 * wired-or lines settle, so tests can check it against std::max.
 */

#ifndef HSIPC_BUS_ARBITER_HH
#define HSIPC_BUS_ARBITER_HH

#include <cstdint>
#include <vector>

namespace hsipc::bus
{

/** A three-bit bus-request priority (0..7, higher wins). */
using BusPriority = std::uint8_t;

/**
 * Evaluate Taub's arbitration among @p contenders (unique three-bit
 * numbers); returns the index into @p contenders of the winner.
 */
std::size_t taubArbitrate(const std::vector<BusPriority> &contenders);

} // namespace hsipc::bus

#endif // HSIPC_BUS_ARBITER_HH
