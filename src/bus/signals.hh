/**
 * @file
 * Smart-bus signal and command definitions (Tables 5.1 and 5.2).
 */

#ifndef HSIPC_BUS_SIGNALS_HH
#define HSIPC_BUS_SIGNALS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace hsipc::bus
{

/** Table 5.2 — coding of the four command lines CM0-3. */
enum class BusCommand : std::uint8_t
{
    SimpleRead = 0b0000,
    BlockTransfer = 0b0001,
    BlockReadData = 0b0010,
    BlockWriteData = 0b0011,
    EnqueueControlBlock = 0b0100,
    DequeueControlBlock = 0b0101,
    FirstControlBlock = 0b0110,
    WriteTwoBytes = 0b1000,
    WriteByte = 0b1001,
};

/** Human-readable command name. */
std::string busCommandName(BusCommand c);

/** One physical signal group of the bus (Table 5.1). */
struct BusSignal
{
    const char *name;
    int lines;
    const char *description;
};

/** Table 5.1 — the smart bus' signal groups. */
const std::vector<BusSignal> &busSignalTable();

/** Total physical lines on the bus. */
int busTotalLines();

/**
 * Handshake edge count of each command's information cycle
 * (Figs 5.3-5.16):
 *  - BlockTransfer, EnqueueControlBlock, DequeueControlBlock, and the
 *    writes complete in four edges;
 *  - FirstControlBlock and SimpleRead return a value and take eight;
 *  - BlockReadData/BlockWriteData stream one word per two edges.
 */
int handshakeEdges(BusCommand c);

/** Duration of one edge, microseconds (§6.4: four edges = 1 us). */
constexpr double edgeUs = 0.25;

} // namespace hsipc::bus

#endif // HSIPC_BUS_SIGNALS_HH
