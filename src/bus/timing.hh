/**
 * @file
 * Handshake scripts and ASCII timing diagrams for the smart-bus
 * transactions (Figures 5.3-5.16).
 *
 * Every transaction is described as a sequence of protocol events —
 * who asserts or releases which line, and what travels on the
 * multiplexed A/D and TG buses at each step.  The scripts are the
 * single source of truth for the handshake structure: the edge counts
 * that the rest of the library uses (signals.hh) are *checked against
 * them* by the test suite, and renderTimingDiagram() turns them into
 * the waveform figures of chapter 5.
 *
 * Conventions follow §5.2: a one-to-zero transition is an "assert",
 * zero-to-one a "release"; all protocol lines are released between
 * transactions; transaction duration is quantified by the number of
 * IS/IK transitions.
 */

#ifndef HSIPC_BUS_TIMING_HH
#define HSIPC_BUS_TIMING_HH

#include <string>
#include <vector>

#include "bus/signals.hh"

namespace hsipc::bus
{

/** The signal lines that appear in a timing diagram. */
enum class Line
{
    BBSY,
    IS,
    IK,
    AD, //!< multiplexed address/data (annotated, not a level)
    TG, //!< tag bus (annotated)
};

/** One protocol event within a handshake. */
struct ProtocolEvent
{
    int step;          //!< time position (half-cycles from start)
    Line line;
    bool assert;       //!< assert (drive/valid) vs release (remove)
    std::string label; //!< payload name for AD/TG ("address", ...)
    std::string actor; //!< "Processor" or "Memory"
};

/**
 * The event script of one transaction.  For the streaming commands
 * @p words sets the number of 16-bit transfers shown.
 */
std::vector<ProtocolEvent> handshakeScript(BusCommand c, int words = 2);

/** Number of IS/IK transitions in the script (the §5.2 edge count). */
int scriptEdges(const std::vector<ProtocolEvent> &script);

/** True when every protocol line returns to released at the end. */
bool scriptReturnsToReleased(const std::vector<ProtocolEvent> &script);

/** Render the script as an ASCII waveform (cf. Figs 5.4-5.16). */
std::string renderTimingDiagram(BusCommand c, int words = 2);

} // namespace hsipc::bus

#endif // HSIPC_BUS_TIMING_HH
