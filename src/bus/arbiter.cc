#include "bus/arbiter.hh"

#include "common/logging.hh"

namespace hsipc::bus
{

namespace
{

/** One contender's contribution to the wired-or BR lines. */
std::uint8_t
driveLines(BusPriority br, std::uint8_t bus_lines)
{
    // Bit 2 is br_0 (most significant) down to bit 0 (br_2).
    std::uint8_t out = 0;
    bool ok = true; // OK_0
    for (int i = 2; i >= 0; --i) {
        const bool br_i = (br >> i) & 1;
        if (i < 2) {
            const bool bus_prev = (bus_lines >> (i + 1)) & 1;
            const bool br_prev = (br >> (i + 1)) & 1;
            ok = ok && (!bus_prev || br_prev);
        }
        if (ok && br_i)
            out |= static_cast<std::uint8_t>(1u << i);
    }
    return out;
}

} // namespace

std::size_t
taubArbitrate(const std::vector<BusPriority> &contenders)
{
    hsipc_assert(!contenders.empty());
    for (BusPriority p : contenders)
        hsipc_assert(p <= 7);

    // Iterate the wired-or until the lines settle (the hardware's
    // combinational ripple; three bits settle in at most three
    // rounds).
    std::uint8_t lines = 0;
    for (int round = 0; round < 4; ++round) {
        std::uint8_t next = 0;
        for (BusPriority p : contenders)
            next |= driveLines(p, lines);
        if (next == lines)
            break;
        lines = next;
    }

    for (std::size_t i = 0; i < contenders.size(); ++i) {
        if (contenders[i] == lines)
            return i;
    }
    hsipc_panic("arbitration settled on a value no contender holds "
                "(duplicate bus-request numbers?)");
}

} // namespace hsipc::bus
