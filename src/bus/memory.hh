/**
 * @file
 * The simulated shared memory of the smart-bus environment.
 *
 * The thesis' shared memory holds only protected kernel data
 * structures (task control blocks and kernel buffers) and is under
 * 64 KBytes (§5.5); addresses and data travel over sixteen multiplexed
 * A/D lines, so the natural word is 16 bits (little-endian here).
 */

#ifndef HSIPC_BUS_MEMORY_HH
#define HSIPC_BUS_MEMORY_HH

#include <cstdint>
#include <vector>

#include "common/logging.hh"

namespace hsipc::bus
{

/** A 16-bit shared-memory address. */
using Addr = std::uint16_t;

/** The distinguished empty-list value (§5.1's NULL). */
constexpr Addr nullAddr = 0;

/** Byte-addressable simulated memory with 16-bit word access. */
class SimMemory
{
  public:
    /** Construct @p bytes of zeroed memory (max 64 KB). */
    explicit SimMemory(std::size_t bytes = 65536) : data(bytes, 0)
    {
        hsipc_assert(bytes >= 2 && bytes <= 65536);
    }

    std::size_t size() const { return data.size(); }

    std::uint8_t
    read8(Addr a) const
    {
        check(a, 1);
        return data[a];
    }

    void
    write8(Addr a, std::uint8_t v)
    {
        check(a, 1);
        data[a] = v;
    }

    std::uint16_t
    read16(Addr a) const
    {
        check(a, 2);
        return static_cast<std::uint16_t>(data[a] |
                                          (data[a + 1] << 8));
    }

    void
    write16(Addr a, std::uint16_t v)
    {
        check(a, 2);
        data[a] = static_cast<std::uint8_t>(v & 0xff);
        data[a + 1] = static_cast<std::uint8_t>(v >> 8);
    }

  private:
    void
    check(Addr a, std::size_t width) const
    {
        hsipc_assert(static_cast<std::size_t>(a) + width <= data.size());
    }

    std::vector<std::uint8_t> data;
};

} // namespace hsipc::bus

#endif // HSIPC_BUS_MEMORY_HH
