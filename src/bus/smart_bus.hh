/**
 * @file
 * Edge-accurate simulator of the smart bus (chapter 5).
 *
 * Units (the host, the message coprocessor, and the network
 * interfaces) post transactions; the simulator plays them out in bus
 * tenures, counting IS/IK handshake edges exactly as Figures 5.3-5.16
 * specify:
 *
 *  - block transfer request, enqueue/dequeue control block, and the
 *    writes: four edges;
 *  - first control block and simple read: eight edges;
 *  - block read/write data: two edges per 16-bit word in streaming
 *    mode, granted two transfers at a time so the strobe lines return
 *    to the released state between grants (§5.3.1).
 *
 * Arbitration (Taub's distributed scheme, §5.4) runs concurrently with
 * each information cycle; a higher-priority request therefore preempts
 * a block stream between two-transfer grants, and the shared memory's
 * internal request table lets the interrupted stream resume afterwards
 * — the bus is never locked for arbitrary time (§2.6.6's conditions).
 *
 * The memory side executes queue manipulation atomically through a
 * MemoryController; the default controller runs the reference
 * algorithms of queue_ops.hh, and src/ucode provides the
 * microprogrammed implementation of Appendix A.
 */

#ifndef HSIPC_BUS_SMART_BUS_HH
#define HSIPC_BUS_SMART_BUS_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <vector>

#include "bus/arbiter.hh"
#include "bus/memory.hh"
#include "bus/queue_ops.hh"
#include "bus/signals.hh"

namespace hsipc::bus
{

/** The smart shared memory's command-execution interface. */
class MemoryController
{
  public:
    virtual ~MemoryController() = default;
    virtual void enqueue(Addr list, Addr element) = 0;
    virtual Addr first(Addr list) = 0;
    virtual void dequeue(Addr list, Addr element) = 0;
    virtual std::uint16_t read(Addr a) = 0;
    virtual void write16(Addr a, std::uint16_t v) = 0;
    virtual void write8(Addr a, std::uint8_t v) = 0;
};

/** Controller executing the reference software algorithms directly. */
class DirectController : public MemoryController
{
  public:
    explicit DirectController(SimMemory &mem) : mem(mem) {}

    void
    enqueue(Addr list, Addr element) override
    {
        QueueOps::enqueue(mem, list, element);
    }

    Addr first(Addr list) override { return QueueOps::first(mem, list); }

    void
    dequeue(Addr list, Addr element) override
    {
        QueueOps::dequeue(mem, list, element);
    }

    std::uint16_t read(Addr a) override { return mem.read16(a); }
    void write16(Addr a, std::uint16_t v) override { mem.write16(a, v); }
    void write8(Addr a, std::uint8_t v) override { mem.write8(a, v); }

  private:
    SimMemory &mem;
};

/** One line of the bus activity trace. */
struct BusTraceEntry
{
    long startEdge;
    int edges;
    std::string unit;
    BusCommand command;
    std::string detail;
};

/** Completion record of a posted operation. */
struct OpResult
{
    bool done = false;
    bool error = false;
    std::string errorMsg;
    long startEdge = -1; //!< first edge of its first tenure
    long endEdge = -1;   //!< edge at which the unit saw completion
    std::uint16_t value = 0;        //!< read/first result, or tag
    std::vector<std::uint8_t> data; //!< block-read payload

    double durationUs() const { return (endEdge - startEdge) * edgeUs; }
};

/** The smart bus with its attached shared memory. */
class SmartBus
{
  public:
    struct Config
    {
        int requestTableSize = 8; //!< memory's block-request table
        BusPriority memoryPriority = 6; //!< br used for read streams
    };

    explicit SmartBus(SimMemory &mem) : SmartBus(mem, Config()) {}
    SmartBus(SimMemory &mem, Config cfg);

    /** Plug a different memory controller (e.g. the microcoded one). */
    void setController(MemoryController &ctrl) { controller = &ctrl; }

    /**
     * Register a unit with a unique three-bit bus-request number
     * (0..7, higher wins; must not collide with memoryPriority).
     * Returns the unit id.
     */
    int addUnit(std::string name, BusPriority br);

    using OpId = int;

    OpId postEnqueue(int unit, Addr list, Addr element);
    OpId postDequeue(int unit, Addr list, Addr element);
    OpId postFirst(int unit, Addr list);
    OpId postRead(int unit, Addr a);
    OpId postWrite16(int unit, Addr a, std::uint16_t v);
    OpId postWrite8(int unit, Addr a, std::uint8_t v);
    OpId postBlockRead(int unit, Addr a, std::uint16_t bytes);
    OpId postBlockWrite(int unit, Addr a,
                        std::vector<std::uint8_t> data);

    /** Execute one bus tenure; false when the bus is idle. */
    bool step();

    /** Run until every posted operation completes. */
    void run();

    const OpResult &result(OpId op) const;

    long nowEdges() const { return clockEdges; }
    double nowUs() const { return clockEdges * edgeUs; }

    long arbitrationCount() const { return arbitrations; }
    long preemptionCount() const { return preemptions; }
    const std::vector<BusTraceEntry> &trace() const { return log; }

    /** Entries currently live in the memory's request table. */
    int requestTableLoad() const;

  private:
    /** A pending operation of one unit. */
    struct PendingOp
    {
        OpId id = -1;
        BusCommand command;
        Addr addr = 0;
        Addr addr2 = 0;
        std::uint16_t wvalue = 0;
        std::uint16_t byteCount = 0;
        std::vector<std::uint8_t> payload; //!< block-write data
        bool requested = false; //!< block transfer already issued
        std::uint16_t tag = 0;
        std::uint16_t offset = 0; //!< bytes streamed so far
    };

    /** The memory's internal table of block-transfer requests. */
    struct TableEntry
    {
        bool valid = false;
        bool write = false;
        Addr addr = 0;
        std::uint16_t count = 0;   //!< total bytes
        std::uint16_t offset = 0;  //!< bytes done
        int unit = -1;
        OpId op = -1;
    };

    struct Unit
    {
        std::string name;
        BusPriority br;
        std::deque<PendingOp> queue; //!< front is the outstanding op
    };

    OpId post(int unit, PendingOp op);
    void tenureSimpleOp(Unit &u, PendingOp &op);
    void tenureBlockRequest(Unit &u, PendingOp &op);
    void tenureWriteStream(Unit &u, PendingOp &op);
    void tenureReadStream(int table_index);
    int allocTableEntry(const TableEntry &e);
    void completeFront(Unit &u);
    void fail(Unit &u, PendingOp &op, const std::string &msg);
    void logTenure(long start, int edges, const std::string &unit,
                   BusCommand cmd, std::string detail);

    SimMemory &mem;
    Config config;
    DirectController directController;
    MemoryController *controller;

    std::vector<Unit> units;
    std::vector<TableEntry> table;
    std::vector<OpResult> results;
    std::vector<BusTraceEntry> log;

    long clockEdges = 0;
    long arbitrations = 0;
    long preemptions = 0;
    int lastOwner = -2; //!< unit id of the previous tenure, -1 = memory
};

} // namespace hsipc::bus

#endif // HSIPC_BUS_SMART_BUS_HH
