/**
 * @file
 * The singly-linked circular list primitives of §5.1.
 *
 * Task control blocks and kernel buffers live on singly-linked
 * circular free/work lists.  A "list" is the address of a memory word
 * pointing at the *tail* (last element); each element's word 0 is its
 * "next" pointer; the tail's next is the head.  The distinguished
 * value nullAddr marks an empty list.
 *
 * These are the reference software implementations (what architecture
 * II's message coprocessor executes); the smart shared memory performs
 * the same algorithms atomically in microcode (src/ucode) in response
 * to single bus transactions.
 */

#ifndef HSIPC_BUS_QUEUE_OPS_HH
#define HSIPC_BUS_QUEUE_OPS_HH

#include <cstddef>
#include <vector>

#include "bus/memory.hh"

namespace hsipc::bus
{

/** Queue primitives over a SimMemory (§5.1 pseudo-code, verbatim). */
class QueueOps
{
  public:
    /** Enqueue @p element at the tail of @p list. */
    static void enqueue(SimMemory &mem, Addr list, Addr element);

    /**
     * Dequeue and return the first (head) element; returns nullAddr
     * and leaves the list untouched when it is empty.
     */
    static Addr first(SimMemory &mem, Addr list);

    /**
     * Dequeue an arbitrary @p element.  A no-operation returning
     * false when the element is not on the list.
     */
    static bool dequeue(SimMemory &mem, Addr list, Addr element);

    /** The elements head-to-tail (test/debug helper). */
    static std::vector<Addr> toVector(const SimMemory &mem, Addr list);
};

} // namespace hsipc::bus

#endif // HSIPC_BUS_QUEUE_OPS_HH
