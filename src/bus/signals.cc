#include "bus/signals.hh"

#include "common/logging.hh"

namespace hsipc::bus
{

std::string
busCommandName(BusCommand c)
{
    switch (c) {
      case BusCommand::SimpleRead: return "Simple Read";
      case BusCommand::BlockTransfer: return "Block transfer";
      case BusCommand::BlockReadData: return "Block read data";
      case BusCommand::BlockWriteData: return "Block write data";
      case BusCommand::EnqueueControlBlock: return "Enqueue control block";
      case BusCommand::DequeueControlBlock: return "Dequeue control block";
      case BusCommand::FirstControlBlock: return "First control block";
      case BusCommand::WriteTwoBytes: return "Write two bytes";
      case BusCommand::WriteByte: return "Write byte";
    }
    hsipc_panic("bad BusCommand");
}

const std::vector<BusSignal> &
busSignalTable()
{
    static const std::vector<BusSignal> table = {
        {"A/D", 16, "Multiplexed address/data"},
        {"TG", 4, "Tag"},
        {"CM", 4, "Command"},
        {"IS", 1, "Information strobe"},
        {"IK", 1, "Information acknowledge"},
        {"BBSY", 1, "Bus busy"},
        {"BR", 3, "Bus request"},
        {"AR", 1, "Arbitration start"},
        {"ANC", 1, "Arbitration not complete"},
        {"CLR", 1, "System Reset"},
    };
    return table;
}

int
busTotalLines()
{
    int total = 0;
    for (const BusSignal &s : busSignalTable())
        total += s.lines;
    return total;
}

int
handshakeEdges(BusCommand c)
{
    switch (c) {
      case BusCommand::BlockTransfer:
      case BusCommand::EnqueueControlBlock:
      case BusCommand::DequeueControlBlock:
      case BusCommand::WriteTwoBytes:
      case BusCommand::WriteByte:
        return 4;
      case BusCommand::SimpleRead:
      case BusCommand::FirstControlBlock:
        return 8;
      case BusCommand::BlockReadData:
      case BusCommand::BlockWriteData:
        return 2; // per 16-bit word, in streaming mode
    }
    hsipc_panic("bad BusCommand");
}

} // namespace hsipc::bus
