#include "bus/queue_ops.hh"

namespace hsipc::bus
{

void
QueueOps::enqueue(SimMemory &mem, Addr list, Addr element)
{
    hsipc_assert(element != nullAddr);
    const Addr tail = mem.read16(list);
    if (tail != nullAddr) {
        const Addr head = mem.read16(tail);     // first entry
        mem.write16(element, head);             // element -> next := head
        mem.write16(tail, element);             // old tail -> element
    } else {
        mem.write16(element, element);          // only member: self loop
    }
    mem.write16(list, element);                 // element is the new tail
}

Addr
QueueOps::first(SimMemory &mem, Addr list)
{
    const Addr tail = mem.read16(list);
    if (tail == nullAddr)
        return nullAddr;
    const Addr head = mem.read16(tail);
    if (tail == head) {
        mem.write16(list, nullAddr);            // last element removed
    } else {
        mem.write16(tail, mem.read16(head));    // tail -> next := head.next
    }
    return head;
}

bool
QueueOps::dequeue(SimMemory &mem, Addr list, Addr element)
{
    const Addr tail = mem.read16(list);
    if (tail == nullAddr)
        return false;
    Addr curr = tail;
    do {
        const Addr prev = curr;
        curr = mem.read16(prev);
        if (curr == element) {
            if (curr == prev) {
                mem.write16(list, nullAddr);    // singleton element
            } else {
                mem.write16(prev, mem.read16(element));
                if (tail == element)
                    mem.write16(list, prev);    // removed the tail
            }
            return true;
        }
    } while (curr != tail);
    return false;                               // unsuccessful: no-op
}

std::vector<Addr>
QueueOps::toVector(const SimMemory &mem, Addr list)
{
    std::vector<Addr> out;
    const Addr tail = mem.read16(list);
    if (tail == nullAddr)
        return out;
    Addr curr = mem.read16(tail); // head
    for (;;) {
        out.push_back(curr);
        if (curr == tail)
            break;
        curr = mem.read16(curr);
        hsipc_assert(out.size() <= mem.size() / 2);
    }
    return out;
}

} // namespace hsipc::bus
