#include "prof/profiler.hh"

#include <algorithm>

namespace hsipc::prof
{

void
ProcedureProfiler::enter(const std::string &procedure)
{
    Entry &e = stats[procedure];
    if (e.count == 0 && e.elapsedUs == 0 && !e.open)
        e.order = nextOrder++;
    hsipc_assert(!e.open);
    e.open = true;
    e.timerAtEntry = timer.read();
}

void
ProcedureProfiler::exit(const std::string &procedure)
{
    auto it = stats.find(procedure);
    hsipc_assert(it != stats.end() && it->second.open);
    Entry &e = it->second;
    e.open = false;

    const std::uint16_t now = timer.read();
    // Wraparound correction: the timer is modulo 2^16 microseconds.
    long delta = static_cast<long>(now) -
                 static_cast<long>(e.timerAtEntry);
    if (delta < 0)
        delta += HardwareTimer::periodUs;

    ++e.count;
    e.elapsedUs += std::max(0.0, static_cast<double>(delta) -
                                     overheadUs);
}

void
ProcedureProfiler::clear()
{
    stats.clear();
    nextOrder = 0;
}

std::vector<ProcedureProfiler::Report>
ProcedureProfiler::report() const
{
    std::vector<Report> out;
    for (const auto &[name, e] : stats) {
        Report r;
        r.procedure = name;
        r.count = e.count;
        r.totalUs = e.elapsedUs;
        r.perVisitUs = e.count > 0
            ? e.elapsedUs / static_cast<double>(e.count)
            : 0.0;
        out.push_back(std::move(r));
    }
    // First-seen order, like the thesis' statically indexed array.
    std::sort(out.begin(), out.end(),
              [this](const Report &a, const Report &b) {
                  return stats.at(a.procedure).order <
                         stats.at(b.procedure).order;
              });
    return out;
}

double
ProcedureProfiler::totalUs() const
{
    double total = 0;
    for (const auto &[name, e] : stats)
        total += e.elapsedUs;
    return total;
}

void
MessagePathProfiler::begin(int id)
{
    paths[id].clear();
}

void
MessagePathProfiler::stamp(int id, const std::string &point)
{
    paths[id].emplace_back(point, clock.now());
}

std::vector<MessagePathProfiler::Segment>
MessagePathProfiler::segments() const
{
    // Aggregate by (from, to) pairs in visit order.
    std::map<std::pair<std::string, std::string>,
             std::pair<double, long>>
        acc;
    std::vector<std::pair<std::string, std::string>> order;
    for (const auto &[id, stamps] : paths) {
        for (std::size_t i = 1; i < stamps.size(); ++i) {
            const auto key = std::make_pair(stamps[i - 1].first,
                                            stamps[i].first);
            auto [it, fresh] = acc.emplace(key, std::make_pair(0.0, 0L));
            if (fresh)
                order.push_back(key);
            it->second.first +=
                ticksToUs(stamps[i].second - stamps[i - 1].second);
            ++it->second.second;
        }
    }
    std::vector<Segment> out;
    for (const auto &key : order) {
        const auto &[total, n] = acc.at(key);
        Segment s;
        s.from = key.first;
        s.to = key.second;
        s.samples = n;
        s.meanUs = n > 0 ? total / static_cast<double>(n) : 0.0;
        out.push_back(std::move(s));
    }
    return out;
}

} // namespace hsipc::prof
