#include "prof/callgraph.hh"

#include <algorithm>

#include "common/logging.hh"

namespace hsipc::prof
{

void
CallGraphProfiler::enter(const std::string &procedure)
{
    stack.push_back(Frame{procedure, clock.now(), 0});
    Node &n = nodeStats[procedure];
    ++n.calls;
    ++n.recursionDepth;

    const std::string caller =
        stack.size() > 1 ? stack[stack.size() - 2].procedure
                         : "<spontaneous>";
    ++edgeStats[{caller, procedure}].calls;
}

void
CallGraphProfiler::exit(const std::string &procedure)
{
    hsipc_assert(!stack.empty());
    hsipc_assert(stack.back().procedure == procedure);
    const Frame frame = stack.back();
    stack.pop_back();

    const Tick elapsed = clock.now() - frame.enteredAt;
    hsipc_assert(elapsed >= frame.childTicks);

    Node &n = nodeStats[procedure];
    n.selfTicks += elapsed - frame.childTicks;
    --n.recursionDepth;
    // Total (inclusive) time counts a recursive frame only once.
    if (n.recursionDepth == 0)
        n.totalTicks += elapsed;

    const std::string caller =
        stack.empty() ? "<spontaneous>" : stack.back().procedure;
    edgeStats[{caller, procedure}].childTicks += elapsed;

    if (!stack.empty())
        stack.back().childTicks += elapsed;
}

std::vector<CallGraphProfiler::NodeReport>
CallGraphProfiler::nodes() const
{
    std::vector<NodeReport> out;
    for (const auto &[name, n] : nodeStats) {
        NodeReport r;
        r.procedure = name;
        r.calls = n.calls;
        r.selfUs = ticksToUs(n.selfTicks);
        r.totalUs = ticksToUs(n.totalTicks);
        out.push_back(std::move(r));
    }
    std::sort(out.begin(), out.end(),
              [](const NodeReport &a, const NodeReport &b) {
                  return a.selfUs > b.selfUs;
              });
    return out;
}

std::vector<CallGraphProfiler::EdgeReport>
CallGraphProfiler::edges() const
{
    std::vector<EdgeReport> out;
    for (const auto &[key, e] : edgeStats) {
        EdgeReport r;
        r.caller = key.first;
        r.callee = key.second;
        r.calls = e.calls;
        r.childTotalUs = ticksToUs(e.childTicks);
        out.push_back(std::move(r));
    }
    return out;
}

double
CallGraphProfiler::totalSelfUs() const
{
    double total = 0;
    for (const auto &[name, n] : nodeStats)
        total += ticksToUs(n.selfTicks);
    return total;
}

} // namespace hsipc::prof
