/**
 * @file
 * A gprof-style call-graph profiler over the simulated clock.
 *
 * The thesis used gprof on an instrumented kernel for the §3.5
 * "computation" measurements (Table 3.6).  This profiler adds what
 * the flat §3.3 statistics array cannot express: the caller→callee
 * edges, per-procedure *self* time (excluding children) versus
 * *total* time (inclusive), and call counts per edge.
 */

#ifndef HSIPC_PROF_CALLGRAPH_HH
#define HSIPC_PROF_CALLGRAPH_HH

#include <map>
#include <string>
#include <vector>

#include "prof/profiler.hh"

namespace hsipc::prof
{

/** Hierarchical profiler with self/total attribution. */
class CallGraphProfiler
{
  public:
    explicit CallGraphProfiler(const SimClock &clock) : clock(clock) {}

    /** Enter a procedure (pushes onto the simulated call stack). */
    void enter(const std::string &procedure);

    /** Exit the procedure on top of the stack (must match). */
    void exit(const std::string &procedure);

    /** Current call-stack depth. */
    int depth() const { return static_cast<int>(stack.size()); }

    struct NodeReport
    {
        std::string procedure;
        long calls = 0;
        double selfUs = 0;  //!< time excluding callees
        double totalUs = 0; //!< time including callees
    };

    struct EdgeReport
    {
        std::string caller; //!< "<spontaneous>" for top level
        std::string callee;
        long calls = 0;
        double childTotalUs = 0; //!< callee total attributed here
    };

    /** Flat profile, ordered by decreasing self time. */
    std::vector<NodeReport> nodes() const;

    /** Call-graph edges, ordered by caller then callee. */
    std::vector<EdgeReport> edges() const;

    /** Sum of self times (== total simulated time inside enters). */
    double totalSelfUs() const;

  private:
    struct Frame
    {
        std::string procedure;
        Tick enteredAt;
        Tick childTicks = 0; //!< accumulated callee time
    };

    struct Node
    {
        long calls = 0;
        Tick selfTicks = 0;
        Tick totalTicks = 0;
        int recursionDepth = 0;
    };

    struct Edge
    {
        long calls = 0;
        Tick childTicks = 0;
    };

    const SimClock &clock;
    std::vector<Frame> stack;
    std::map<std::string, Node> nodeStats;
    std::map<std::pair<std::string, std::string>, Edge> edgeStats;
};

} // namespace hsipc::prof

#endif // HSIPC_PROF_CALLGRAPH_HH
