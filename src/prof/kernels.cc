#include "prof/kernels.hh"

#include <map>

#include "common/logging.hh"

namespace hsipc::prof
{

namespace
{

const MachineModel vax750{"VAX 11/750", 0.5};
const MachineModel m68k{"Motorola 68000", 0.3};
const MachineModel microvax{"MicroVAX II", 0.8};

} // namespace

KernelSpec
charlotteSpec()
{
    // Targets from Table 3.1 (20 ms round trip, percentages of it):
    // switching 2 ms, entering/exiting 2.8 ms, protocol 10 ms, link
    // translation + request selection 4.6 ms, copy 0.6 ms.  At 0.5
    // MIPS one instruction is 2 us.
    KernelSpec k;
    k.system = "Charlotte";
    k.machine = vax750;
    k.messageBytes = 1000;
    // No kernel buffering in Charlotte: one copy per direction.
    k.copiesPerRoundTrip = 2;
    k.usPerByteCopy = 0.3;
    k.procedures = {
        // The kernel is a collection of Modula processes; switching
        // between them costs ~2 ms per round trip.
        {"ModulaProcessSwitch", "Kernel-Process Switching Time", 100,
         10},
        {"KernelEntryExit", "Entering and Exiting Kernel", 350, 4},
        // The two-way link protocol finite-state machine (one send
        // FSM and one receive FSM execution per direction).
        {"LinkFsmSend", "Protocol Processing for Sender and Receiver",
         1250, 2},
        {"LinkFsmReceive", "Protocol Processing for Sender and Receiver",
         1250, 2},
        {"LinkTranslation", "Link Translation and Request Selection",
         575, 2},
        {"RequestSelection", "Link Translation and Request Selection",
         575, 2},
    };
    return k;
}

KernelSpec
jasminSpec()
{
    // Table 3.2: 0.72 ms round trip on a 0.3 MIPS M68000, 32-byte
    // messages copied four times (kernel buffering both ways).
    KernelSpec k;
    k.system = "Jasmin";
    k.machine = m68k;
    k.messageBytes = 32;
    k.copiesPerRoundTrip = 4;
    k.usPerByteCopy = 0.84375;
    k.procedures = {
        {"EventDispatch",
         "Actions Leading to Short-Term Scheduling Decisions", 22, 2},
        {"PathQueueWakeup",
         "Actions Leading to Short-Term Scheduling Decisions", 21, 2},
        {"BufferAllocRelease", "Buffer Management", 11, 2},
        {"PathValidation", "Path Management", 22, 2},
        {"CommTaskPoll",
         "Miscellaneous (Checking Network Channels, etc.)", 16, 2},
    };
    return k;
}

KernelSpec
spec925()
{
    // Table 3.3: 5.6 ms round trip, 40-byte messages copied four
    // times at ~5.25 us/byte (220 us per 40-byte copy, chapter 4).
    KernelSpec k;
    k.system = "925";
    k.machine = m68k;
    k.messageBytes = 40;
    k.copiesPerRoundTrip = 4;
    k.usPerByteCopy = 5.25;
    k.procedures = {
        {"EventProcessing",
         "Short-Term Scheduling (Including event processing)", 147, 2},
        {"Dispatch",
         "Short-Term Scheduling (Including event processing)", 147, 2},
        {"KernelEntryExit", "Entering and Exiting Kernel", 42, 4},
        {"ValidityCheck",
         "Checking, Addressing, and Control Block Manipulation", 112,
         2},
        {"ControlBlockOps",
         "Checking, Addressing, and Control Block Manipulation", 112,
         4},
    };
    return k;
}

KernelSpec
unixLocalSpec()
{
    // Table 3.4: 4.57 ms round trip on a 0.8 MIPS MicroVAX II,
    // 128-byte messages copied four times through socket buffers.
    KernelSpec k;
    k.system = "Unix (local)";
    k.machine = microvax;
    k.messageBytes = 128;
    k.copiesPerRoundTrip = 4;
    k.usPerByteCopy = 1.71875;
    k.procedures = {
        {"SocketValidate",
         "Validity Checking and Control Block Manipulation", 488, 2},
        {"ControlBlockOps",
         "Validity Checking and Control Block Manipulation", 488, 2},
        {"Scheduler", "Short-Term Scheduling", 312, 2},
        {"MbufAllocFree", "Buffer Management", 92, 4},
    };
    return k;
}

KernelSpec
unixNonlocalSpec()
{
    // Table 3.5: 6.8 ms round trip; TCP/IP with checksums and device
    // interrupts.
    KernelSpec k;
    k.system = "Unix (non-local)";
    k.machine = microvax;
    k.messageBytes = 128;
    k.copiesPerRoundTrip = 4;
    k.usPerByteCopy = 0.9765625;
    k.procedures = {
        {"SocketRoutines", "Socket Routines", 408, 2},
        {"Checksum", "Checksum Calculation", 240, 2},
        {"Scheduler", "Short-Term Scheduling", 160, 2},
        {"MbufAllocFree", "Buffer Management", 60, 4},
        {"TcpInputOutput", "TCP processing", 520, 2},
        {"IpInputOutput", "IP processing", 320, 4},
        {"DeviceInterrupt", "Interrupt Processing", 220, 4},
    };
    return k;
}

ProfileResult
runKernelProfile(const KernelSpec &spec, int roundTrips)
{
    hsipc_assert(roundTrips > 0);

    SimClock clock;
    HardwareTimer timer(clock);
    ProcedureProfiler profiler(timer);
    MessagePathProfiler path(clock);

    const double copy_us =
        spec.usPerByteCopy * static_cast<double>(spec.messageBytes);

    for (int rt = 0; rt < roundTrips; ++rt) {
        // One null-RPC round trip: "send; wait" against "receive;
        // reply".  The procedure list is executed in specification
        // order; copies are interleaved so the message-path profiler
        // sees queue/copy/deliver stamps.
        path.begin(rt);
        path.stamp(rt, "send-posted");
        for (const ProcedureSpec &p : spec.procedures) {
            for (int c = 0; c < p.callsPerRoundTrip; ++c) {
                profiler.enter(p.name);
                clock.advance(usToTicks(
                    spec.machine.instrUs(
                        static_cast<double>(p.instructions))));
                profiler.exit(p.name);
            }
        }
        path.stamp(rt, "kernel-processed");
        for (int c = 0; c < spec.copiesPerRoundTrip; ++c) {
            profiler.enter("CopyMessage");
            clock.advance(usToTicks(copy_us));
            profiler.exit("CopyMessage");
        }
        path.stamp(rt, "delivered");
    }

    ProfileResult res;
    res.system = spec.system;
    res.procedures = profiler.report();

    // Aggregate procedure times into activity rows.
    std::map<std::string, double> activity_us;
    std::vector<std::string> order;
    for (const ProcedureSpec &p : spec.procedures) {
        if (!activity_us.count(p.activity))
            order.push_back(p.activity);
        activity_us[p.activity] = 0;
    }
    if (!activity_us.count(spec.copyActivity))
        order.push_back(spec.copyActivity);
    activity_us[spec.copyActivity] = 0;

    for (const auto &r : res.procedures) {
        if (r.procedure == "CopyMessage") {
            activity_us[spec.copyActivity] += r.totalUs;
            continue;
        }
        for (const ProcedureSpec &p : spec.procedures) {
            if (p.name == r.procedure) {
                activity_us[p.activity] += r.totalUs;
                break;
            }
        }
    }

    double total_us = 0;
    for (const auto &[name, us] : activity_us)
        total_us += us;
    res.roundTripMs = total_us / roundTrips / 1000.0;
    res.copyTimeMs =
        activity_us[spec.copyActivity] / roundTrips / 1000.0;
    for (const std::string &name : order) {
        ActivityRow row;
        row.activity = name;
        row.timeMs = activity_us[name] / roundTrips / 1000.0;
        row.percent = 100.0 * activity_us[name] / total_us;
        res.rows.push_back(std::move(row));
    }
    return res;
}

double
fixedOverheadUs(const KernelSpec &spec)
{
    double us = 0;
    for (const ProcedureSpec &p : spec.procedures) {
        us += spec.machine.instrUs(static_cast<double>(
                  p.instructions)) *
              p.callsPerRoundTrip;
    }
    return us;
}

const std::vector<ServiceSpec> &
unixServices()
{
    // Table 3.6 targets at 0.8 MIPS.
    static const std::vector<ServiceSpec> services = {
        {"Open File", 3480},
        {"Close File", 288},
        {"Make Directory", 14968},
        {"Remove Directory", 11424},
        {"Timer Service (Sleep)", 2762},
        {"GetTimeofDay", 160},
    };
    return services;
}

double
serviceTimeMs(const ServiceSpec &svc)
{
    return microvax.instrUs(static_cast<double>(svc.instructions)) /
           1000.0;
}

FileServerModel
unixReadModel()
{
    return FileServerModel{880.0, 65.0, 0.52};
}

FileServerModel
unixWriteModel()
{
    return FileServerModel{1280.0, 80.0, 1.1};
}

const std::vector<int> &
unixRwBlockSizes()
{
    static const std::vector<int> sizes = {128, 256, 512, 1024,
                                           2048, 3072, 4096};
    return sizes;
}

} // namespace hsipc::prof
