/**
 * @file
 * Kernel profiling instrumentation (§3.3).
 *
 * The thesis instruments each kernel with a "statistics" array indexed
 * by procedure name: on entry the hardware timer is latched, on exit
 * the difference (corrected for timer wraparound and for the cost of
 * the timing code itself) is accumulated along with a visit count.
 * This module reproduces that machinery over a simulated clock:
 *
 *  - HardwareTimer — a free-running 16-bit timer read from a simulated
 *    clock (wraparound included);
 *  - ProcedureProfiler — the statistics array with per-visit
 *    enter/exit bracketing, wraparound correction and timing-overhead
 *    subtraction;
 *  - MessagePathProfiler — the third technique of §3.3: time-stamping
 *    a message at interesting points (queueing, dequeueing, copying)
 *    along its route.
 */

#ifndef HSIPC_PROF_PROFILER_HH
#define HSIPC_PROF_PROFILER_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/logging.hh"
#include "common/time.hh"

namespace hsipc::prof
{

/** A simulated CPU clock advanced by executing kernel code. */
class SimClock
{
  public:
    Tick now() const { return current; }

    void
    advance(Tick t)
    {
        hsipc_assert(t >= 0);
        current += t;
    }

  private:
    Tick current = 0;
};

/** A free-running 16-bit hardware timer with 1-microsecond period. */
class HardwareTimer
{
  public:
    explicit HardwareTimer(const SimClock &clock) : clock(clock) {}

    /** The timer register: microseconds modulo 2^16. */
    std::uint16_t
    read() const
    {
        return static_cast<std::uint16_t>(
            (clock.now() / tickUs) & 0xffff);
    }

    /** Full period of the timer in microseconds. */
    static constexpr long periodUs = 1 << 16;

  private:
    const SimClock &clock;
};

/** The §3.3 procedure-call profiler. */
class ProcedureProfiler
{
  public:
    /**
     * @param timer      the hardware timer read at entry/exit
     * @param overheadUs cost of the timing code per visit, subtracted
     *                   from every measurement (the thesis' "suitable
     *                   corrections")
     */
    explicit ProcedureProfiler(const HardwareTimer &timer,
                               double overheadUs = 0.0)
        : timer(timer), overheadUs(overheadUs)
    {}

    /** Record entry into @p procedure. */
    void enter(const std::string &procedure);

    /** Record exit from @p procedure (must match the open enter). */
    void exit(const std::string &procedure);

    /** Clear the statistics array (start of a kernel run). */
    void clear();

    struct Report
    {
        std::string procedure;
        long count = 0;
        double totalUs = 0;
        double perVisitUs = 0;
    };

    /** One report row per procedure, in first-seen order. */
    std::vector<Report> report() const;

    /** Total accumulated time across procedures, microseconds. */
    double totalUs() const;

  private:
    struct Entry
    {
        long count = 0;
        std::uint16_t timerAtEntry = 0;
        bool open = false;
        double elapsedUs = 0;
        int order = 0;
    };

    const HardwareTimer &timer;
    double overheadUs;
    std::map<std::string, Entry> stats;
    int nextOrder = 0;
};

/** The message-path time-stamping profiler of §3.3. */
class MessagePathProfiler
{
  public:
    explicit MessagePathProfiler(const SimClock &clock) : clock(clock) {}

    /** Start tracking message @p id. */
    void begin(int id);

    /** Stamp message @p id at the named point. */
    void stamp(int id, const std::string &point);

    struct Segment
    {
        std::string from;
        std::string to;
        double meanUs = 0;
        long samples = 0;
    };

    /**
     * Mean time between consecutive stamped points, aggregated over
     * all messages that visited the same point sequence.
     */
    std::vector<Segment> segments() const;

  private:
    const SimClock &clock;
    std::map<int, std::vector<std::pair<std::string, Tick>>> paths;
};

} // namespace hsipc::prof

#endif // HSIPC_PROF_PROFILER_HH
