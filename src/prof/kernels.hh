/**
 * @file
 * Synthetic kernels reproducing the chapter-3 profiling studies.
 *
 * The thesis profiled four real systems (Charlotte, Jasmin, 925 and
 * 4.2bsd Unix) on their original hardware.  Those kernels and machines
 * are not available, so each system is modeled as a *synthetic kernel*:
 * an ordered set of kernel procedures with per-call instruction counts
 * (calibrated to the thesis' measured activity times and machine MIPS
 * ratings) plus a message-copy cost proportional to message size.  A
 * "kernel run" executes the §3.3 producer/consumer null-RPC loop
 * through the instrumented profiler, and the activity breakdown tables
 * (3.1-3.5) fall out of the measurements.
 *
 * Unix "computation" services (Tables 3.6/3.7) are modeled the same
 * way: instruction budgets for each service, and a file-server cost
 * model (fixed + per-block + per-byte) for read/write.
 */

#ifndef HSIPC_PROF_KERNELS_HH
#define HSIPC_PROF_KERNELS_HH

#include <string>
#include <vector>

#include "prof/profiler.hh"

namespace hsipc::prof
{

/** A 1980s processor model. */
struct MachineModel
{
    std::string name;
    double mips; //!< instruction rate, millions per second

    /** Time to execute @p instructions, microseconds. */
    double
    instrUs(double instructions) const
    {
        return instructions / mips;
    }
};

/** One instrumented kernel procedure. */
struct ProcedureSpec
{
    std::string name;
    std::string activity; //!< the table row this procedure belongs to
    long instructions;    //!< per call
    int callsPerRoundTrip;
};

/** A synthetic message-passing kernel. */
struct KernelSpec
{
    std::string system;
    MachineModel machine;
    int messageBytes;
    double usPerByteCopy;
    int copiesPerRoundTrip;
    std::string copyActivity = "Copy Time";
    std::vector<ProcedureSpec> procedures;
};

KernelSpec charlotteSpec();    //!< Table 3.1 (VAX 11/750, 1000 B)
KernelSpec jasminSpec();       //!< Table 3.2 (M68000, 32 B)
KernelSpec spec925();          //!< Table 3.3 (M68000, 40 B)
KernelSpec unixLocalSpec();    //!< Table 3.4 (MicroVAX II, 128 B)
KernelSpec unixNonlocalSpec(); //!< Table 3.5 (MicroVAX II, 128 B)

/** One activity row of a profiling table. */
struct ActivityRow
{
    std::string activity;
    double timeMs = 0;
    double percent = 0;
};

/** Results of a profiled kernel run. */
struct ProfileResult
{
    std::string system;
    double roundTripMs = 0;
    double copyTimeMs = 0;
    std::vector<ActivityRow> rows;
    std::vector<ProcedureProfiler::Report> procedures;
};

/**
 * Run @p roundTrips of the producer/consumer loop through the
 * instrumented profiler and aggregate per-activity times.
 */
ProfileResult runKernelProfile(const KernelSpec &spec,
                               int roundTrips = 200);

/**
 * The fixed (message-size independent) overhead of the kernel,
 * microseconds — everything except copies.
 */
double fixedOverheadUs(const KernelSpec &spec);

// --- Unix computation services (Tables 3.6 / 3.7) ----------------------

/** One Unix system service and its instruction budget. */
struct ServiceSpec
{
    std::string service;
    long instructions;
};

/** The Table 3.6 services on the MicroVAX II model. */
const std::vector<ServiceSpec> &unixServices();

/** Time for one service call, milliseconds. */
double serviceTimeMs(const ServiceSpec &svc);

/** File-server cost model behind Table 3.7. */
struct FileServerModel
{
    double fixedUs;    //!< syscall + inode + bookkeeping
    double perBlockUs; //!< buffer-cache handling per 1K block
    double perByteUs;  //!< data movement

    /** System time to read/write @p bytes, milliseconds. */
    double
    timeMs(int bytes) const
    {
        const int blocks = (bytes + 1023) / 1024;
        return (fixedUs + perBlockUs * blocks + perByteUs * bytes) /
               1000.0;
    }
};

FileServerModel unixReadModel();
FileServerModel unixWriteModel();

/** The block sizes of Table 3.7. */
const std::vector<int> &unixRwBlockSizes();

} // namespace hsipc::prof

#endif // HSIPC_PROF_KERNELS_HH
