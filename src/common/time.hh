/**
 * @file
 * Simulation time base.
 *
 * All simulators in this library use integer nanosecond ticks.  The
 * thesis' unit of modeling is the microsecond (one Versabus memory
 * cycle); the smart bus' two-edge streaming handshake takes half a
 * memory cycle (§6.4), so a nanosecond tick base keeps every quantity
 * integral while leaving headroom for faster hypothetical hardware.
 */

#ifndef HSIPC_COMMON_TIME_HH
#define HSIPC_COMMON_TIME_HH

#include <cstdint>

namespace hsipc
{

/** Simulation time in integer nanoseconds. */
using Tick = std::int64_t;

/** One microsecond worth of ticks. */
constexpr Tick tickUs = 1000;

/** One millisecond worth of ticks. */
constexpr Tick tickMs = 1000 * tickUs;

/** One second worth of ticks. */
constexpr Tick tickSec = 1000 * tickMs;

/** Convert a (possibly fractional) microsecond count to ticks. */
constexpr Tick
usToTicks(double us)
{
    return static_cast<Tick>(us * static_cast<double>(tickUs) + 0.5);
}

/** Convert ticks to fractional microseconds. */
constexpr double
ticksToUs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickUs);
}

/** Convert ticks to fractional milliseconds. */
constexpr double
ticksToMs(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(tickMs);
}

} // namespace hsipc

#endif // HSIPC_COMMON_TIME_HH
