/**
 * @file
 * A registry of named counters, gauges, and log2-bucket histograms.
 *
 * Any component can register an instrument by name and update it at
 * simulation speed; at end of run the registry renders every
 * instrument as JSON (machine-readable) or a formatted table
 * (human-readable).  Names are dotted paths —
 * `<node>.<resource>.<quantity>` for per-resource series,
 * `<subsystem>.<quantity>` otherwise — so the dump sorts into
 * readable groups (std::map keeps it deterministic).
 *
 * Updates are a map lookup amortized to a held reference: callers
 * fetch `Counter &` once and bump it in the hot loop.  A Registry
 * that is never dumped costs nothing beyond those updates, and the
 * simulator only instantiates instruments when a metrics file was
 * requested, keeping the disabled path free.
 */

#ifndef HSIPC_COMMON_METRICS_METRICS_HH
#define HSIPC_COMMON_METRICS_METRICS_HH

#include <cstdint>
#include <map>
#include <string>

#include "common/obs/sketch.hh"

namespace hsipc::metrics
{

/** A monotonically increasing count. */
class Counter
{
  public:
    void inc(std::int64_t by = 1) { total += by; }
    std::int64_t value() const { return total; }

  private:
    std::int64_t total = 0;
};

/** A point-in-time value, overwritten on every set. */
class Gauge
{
  public:
    void set(double v) { val = v; }
    double value() const { return val; }

  private:
    double val = 0;
};

/**
 * A histogram over power-of-two buckets.
 *
 * Bucket 0 holds values below 1 (including zero and negatives);
 * bucket i >= 1 holds the half-open range [2^(i-1), 2^i), so an exact
 * power of two lands in the bucket it opens.  Values at or beyond
 * 2^(numBuckets-1) clamp into the last bucket.  Log2 buckets span the
 * microsecond-to-second dynamic range of simulated latencies in 64
 * slots with uniform relative resolution.
 */
class Histogram
{
  public:
    static constexpr int numBuckets = 64;

    /** Bucket index for @p v under the scheme above. */
    static int bucketIndex(double v);

    /** Inclusive lower bound of bucket @p i (0 for bucket 0). */
    static double bucketLowerBound(int i);

    void observe(double v);

    std::int64_t count() const { return n; }
    double sum() const { return total; }
    double mean() const { return n > 0 ? total / double(n) : 0.0; }
    double min() const { return n > 0 ? lo : 0.0; }
    double max() const { return n > 0 ? hi : 0.0; }
    std::int64_t bucketCount(int i) const;

    /**
     * Smallest bucket lower bound at or above the @p q quantile
     * (0..1) — an upper estimate with one-bucket resolution.
     */
    double quantileUpperBound(double q) const;

  private:
    std::int64_t buckets[numBuckets] = {};
    std::int64_t n = 0;
    double total = 0;
    double lo = 0;
    double hi = 0;
};

/** Named instruments, created on first use. */
class Registry
{
  public:
    Counter &counter(const std::string &name) { return counters[name]; }
    Gauge &gauge(const std::string &name) { return gauges[name]; }

    Histogram &
    histogram(const std::string &name)
    {
        return histograms[name];
    }

    /**
     * A mergeable quantile sketch (default relative accuracy).  A
     * sketch sharing a histogram's name takes over that histogram's
     * reported p50/p95/p99: the sketch's fixed relative error beats
     * the log2 bucket edge (up to 2x off), and being mergeable it
     * reports the same answer whether the samples were observed in
     * one run or combined across shards.
     */
    obs::QuantileSketch &
    sketch(const std::string &name)
    {
        return sketches.try_emplace(name).first->second;
    }

    bool
    empty() const
    {
        return counters.empty() && gauges.empty() &&
               histograms.empty() && sketches.empty();
    }

    const std::map<std::string, Histogram> &
    allHistograms() const
    {
        return histograms;
    }

    const std::map<std::string, obs::QuantileSketch> &
    allSketches() const
    {
        return sketches;
    }

    /**
     * The quantile reported for histogram @p name: the same-named
     * sketch's value when one observed the same sample stream, else
     * the histogram's own bucket upper bound.
     */
    double histogramQuantile(const std::string &name,
                             const Histogram &h, double q) const;

    /** One JSON object: {"counters":{...},"gauges":{...},...}. */
    std::string toJson() const;

    /** Human-readable tables (one per instrument kind). */
    std::string toTable() const;

    /** Write toJson() to @p path (fatal on I/O failure). */
    void writeJson(const std::string &path) const;

  private:
    std::map<std::string, Counter> counters;
    std::map<std::string, Gauge> gauges;
    std::map<std::string, Histogram> histograms;
    std::map<std::string, obs::QuantileSketch> sketches;
};

} // namespace hsipc::metrics

#endif // HSIPC_COMMON_METRICS_METRICS_HH
