#include "common/metrics/metrics.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/json.hh"
#include "common/logging.hh"
#include "common/table.hh"

namespace hsipc::metrics
{

int
Histogram::bucketIndex(double v)
{
    hsipc_assert(!std::isnan(v) && "histograms reject NaN");
    if (v < 1.0)
        return 0;
    // ilogb is exact at powers of two, where floor(log2(v)) computed
    // through a double logarithm could round either way.
    const int exp = std::ilogb(v);
    return exp + 1 >= numBuckets ? numBuckets - 1 : exp + 1;
}

double
Histogram::bucketLowerBound(int i)
{
    hsipc_assert(i >= 0 && i < numBuckets);
    return i == 0 ? 0.0 : std::ldexp(1.0, i - 1);
}

void
Histogram::observe(double v)
{
    ++buckets[bucketIndex(v)];
    if (n == 0) {
        lo = v;
        hi = v;
    } else {
        lo = std::min(lo, v);
        hi = std::max(hi, v);
    }
    ++n;
    total += v;
}

std::int64_t
Histogram::bucketCount(int i) const
{
    hsipc_assert(i >= 0 && i < numBuckets);
    return buckets[i];
}

double
Histogram::quantileUpperBound(double q) const
{
    hsipc_assert(q >= 0.0 && q <= 1.0);
    if (n == 0)
        return 0.0;
    const double target = q * static_cast<double>(n);
    std::int64_t seen = 0;
    for (int i = 0; i < numBuckets; ++i) {
        seen += buckets[i];
        if (static_cast<double>(seen) >= target)
            return std::ldexp(1.0, i); // upper edge of bucket i
    }
    return std::ldexp(1.0, numBuckets - 1);
}

double
Registry::histogramQuantile(const std::string &name,
                            const Histogram &h, double q) const
{
    // A same-named sketch holds the very samples the histogram saw;
    // its fixed-relative-error quantile supersedes the log2 bucket
    // edge.
    auto it = sketches.find(name);
    if (it != sketches.end() && it->second.count() == h.count() &&
        it->second.count() > 0)
        return it->second.quantile(q);
    return h.quantileUpperBound(q);
}

std::string
Registry::toJson() const
{
    std::ostringstream out;
    out << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : counters) {
        out << (first ? "" : ",") << "\n    " << jsonString(name)
            << ": " << c.value();
        first = false;
    }
    out << (counters.empty() ? "" : "\n  ") << "},\n  \"gauges\": {";
    first = true;
    for (const auto &[name, g] : gauges) {
        out << (first ? "" : ",") << "\n    " << jsonString(name)
            << ": " << jsonNumber(g.value());
        first = false;
    }
    out << (gauges.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : histograms) {
        out << (first ? "" : ",") << "\n    " << jsonString(name)
            << ": {\"count\": " << h.count()
            << ", \"sum\": " << jsonNumber(h.sum())
            << ", \"min\": " << jsonNumber(h.min())
            << ", \"max\": " << jsonNumber(h.max())
            << ", \"p50\": "
            << jsonNumber(histogramQuantile(name, h, 0.50))
            << ", \"p95\": "
            << jsonNumber(histogramQuantile(name, h, 0.95))
            << ", \"p99\": "
            << jsonNumber(histogramQuantile(name, h, 0.99))
            << ", \"buckets\": {";
        bool bfirst = true;
        for (int i = 0; i < Histogram::numBuckets; ++i) {
            if (h.bucketCount(i) == 0)
                continue;
            out << (bfirst ? "" : ", ") << "\""
                << jsonNumber(Histogram::bucketLowerBound(i))
                << "\": " << h.bucketCount(i);
            bfirst = false;
        }
        out << "}}";
        first = false;
    }
    out << (histograms.empty() ? "" : "\n  ") << "}";
    // Only runs that requested sketches grow this section, so every
    // pre-sketch consumer sees a byte-identical document.
    if (!sketches.empty()) {
        out << ",\n  \"sketches\": {";
        first = true;
        for (const auto &[name, s] : sketches) {
            out << (first ? "" : ",") << "\n    " << jsonString(name)
                << ": " << s.summaryJson();
            first = false;
        }
        out << "\n  }";
    }
    out << "\n}\n";
    return out.str();
}

std::string
Registry::toTable() const
{
    std::ostringstream out;
    if (!counters.empty()) {
        TextTable t("Counters");
        t.header({"name", "value"});
        for (const auto &[name, c] : counters)
            t.row({name, std::to_string(c.value())});
        out << t.render();
    }
    if (!gauges.empty()) {
        TextTable t("Gauges");
        t.header({"name", "value"});
        for (const auto &[name, g] : gauges)
            t.row({name, TextTable::num(g.value(), 4)});
        out << t.render();
    }
    if (!histograms.empty()) {
        TextTable t("Histograms");
        t.header({"name", "count", "mean", "min", "max", "~p50",
                  "~p95", "~p99"});
        for (const auto &[name, h] : histograms)
            t.row({name, std::to_string(h.count()),
                   TextTable::num(h.mean(), 2),
                   TextTable::num(h.min(), 2),
                   TextTable::num(h.max(), 2),
                   TextTable::num(histogramQuantile(name, h, 0.50), 2),
                   TextTable::num(histogramQuantile(name, h, 0.95), 2),
                   TextTable::num(histogramQuantile(name, h, 0.99), 2)});
        out << t.render();
    }
    return out.str();
}

void
Registry::writeJson(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        hsipc_fatal("cannot open metrics file " + path);
    const std::string doc = toJson();
    std::fwrite(doc.data(), 1, doc.size(), f);
    std::fclose(f);
}

} // namespace hsipc::metrics
