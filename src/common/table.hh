/**
 * @file
 * Plain-text table rendering for the bench harnesses.
 *
 * Every bench binary regenerates one of the thesis' tables or figures;
 * TextTable renders the rows in a stable, diff-friendly layout so that
 * EXPERIMENTS.md can record paper-vs-measured values directly.
 */

#ifndef HSIPC_COMMON_TABLE_HH
#define HSIPC_COMMON_TABLE_HH

#include <string>
#include <vector>

namespace hsipc
{

/** A simple left/right aligned text table with a title and a header. */
class TextTable
{
  public:
    explicit TextTable(std::string title) : title(std::move(title)) {}

    /** Set the column headers; defines the column count. */
    void
    header(std::vector<std::string> cells)
    {
        headerRow = std::move(cells);
    }

    /** Append a row; must match the header width. */
    void
    row(std::vector<std::string> cells)
    {
        rows.push_back(std::move(cells));
    }

    /** Render to a multi-line string. */
    std::string render() const;

    /** Render as RFC-4180-ish CSV (header row first). */
    std::string renderCsv() const;

    /**
     * Render as one JSON object:
     * {"title": ..., "columns": [...], "rows": [[...], ...]}.
     * Cells stay strings — they are already formatted for display and
     * mixing numbers with "-" placeholders would force consumers to
     * type-switch.
     */
    std::string renderJson() const;

    /** Format a double with the given number of decimals. */
    static std::string num(double v, int decimals = 2);

    const std::string &tableTitle() const { return title; }
    const std::vector<std::string> &columns() const { return headerRow; }

    const std::vector<std::vector<std::string>> &
    tableRows() const
    {
        return rows;
    }

  private:
    std::string title;
    std::vector<std::string> headerRow;
    std::vector<std::vector<std::string>> rows;
};

} // namespace hsipc

#endif // HSIPC_COMMON_TABLE_HH
