/**
 * @file
 * A minimal JSON document model and recursive-descent parser.
 *
 * json.hh only writes JSON; the fuzzer's replayable repro format
 * (tools/fuzz) must also *read* it back, so this header adds the
 * smallest tree representation that round-trips the documents this
 * library emits: objects, arrays, strings, finite numbers, booleans
 * and null.  Numbers are stored as doubles — every measured quantity
 * the library serializes fits; values needing full 64-bit integer
 * fidelity (RNG seeds) travel as decimal strings instead (see
 * sim/check/experiment_json.cc).  Parsing failures throw
 * JsonParseError with the byte offset of the problem.
 */

#ifndef HSIPC_COMMON_JSON_VALUE_HH
#define HSIPC_COMMON_JSON_VALUE_HH

#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

namespace hsipc
{

/** Thrown when a document is not valid JSON. */
class JsonParseError : public std::runtime_error
{
  public:
    JsonParseError(const std::string &what, std::size_t offset)
        : std::runtime_error(what + " at byte " +
                             std::to_string(offset)),
          offset(offset)
    {}

    std::size_t offset; //!< position in the input where parsing failed
};

/** One JSON value: object, array, string, number, bool or null. */
class JsonValue
{
  public:
    enum class Kind { Null, Bool, Number, String, Array, Object };

    JsonValue() = default;

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isObject() const { return kind_ == Kind::Object; }
    bool isArray() const { return kind_ == Kind::Array; }

    /** The boolean payload; throws unless kind() == Bool. */
    bool asBool() const;

    /** The numeric payload; throws unless kind() == Number. */
    double asNumber() const;

    /** The string payload; throws unless kind() == String. */
    const std::string &asString() const;

    /** The elements; throws unless kind() == Array. */
    const std::vector<JsonValue> &asArray() const;

    /** The members (sorted by key); throws unless kind() == Object. */
    const std::map<std::string, JsonValue> &asObject() const;

    /** True when this is an object with member @p key. */
    bool has(const std::string &key) const;

    /**
     * Member access; throws std::out_of_range when the key is absent
     * (missing optional fields should be tested with has() first).
     */
    const JsonValue &at(const std::string &key) const;

    static JsonValue makeNull();
    static JsonValue makeBool(bool b);
    static JsonValue makeNumber(double v);
    static JsonValue makeString(std::string s);
    static JsonValue makeArray(std::vector<JsonValue> elems);
    static JsonValue makeObject(std::map<std::string, JsonValue> m);

  private:
    Kind kind_ = Kind::Null;
    bool bool_ = false;
    double num_ = 0;
    std::string str_;
    std::vector<JsonValue> arr_;
    std::map<std::string, JsonValue> obj_;
};

/**
 * Parse @p text as one JSON document.  Trailing whitespace is
 * allowed; trailing non-whitespace is an error.  Throws
 * JsonParseError on malformed input.
 */
JsonValue parseJson(const std::string &text);

} // namespace hsipc

#endif // HSIPC_COMMON_JSON_VALUE_HH
