#include "common/parallel/parallel.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <utility>

#include "common/logging.hh"

namespace hsipc::parallel
{

std::uint64_t
deriveSeed(std::uint64_t base, std::uint64_t index)
{
    // SplitMix64 finalizer over base + index * golden gamma.
    std::uint64_t z = base + (index + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

int
defaultJobs()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? static_cast<int>(hw) : 1;
}

ThreadPool::ThreadPool(int threads)
{
    hsipc_assert(threads >= 1);
    workers.reserve(static_cast<std::size_t>(threads));
    for (int i = 0; i < threads; ++i)
        workers.emplace_back([this]() { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex);
        stopping = true;
    }
    taskReady.notify_all();
    for (std::thread &w : workers)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mutex);
        queue.push_back(std::move(task));
    }
    taskReady.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex);
    allIdle.wait(lock,
                 [this]() { return queue.empty() && active == 0; });
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex);
            taskReady.wait(lock, [this]() {
                return stopping || !queue.empty();
            });
            if (queue.empty())
                return; // stopping and drained
            task = std::move(queue.front());
            queue.pop_front();
            ++active;
        }
        task();
        {
            std::unique_lock<std::mutex> lock(mutex);
            --active;
            if (queue.empty() && active == 0)
                allIdle.notify_all();
        }
    }
}

void
parallelFor(int jobs, std::size_t count,
            const std::function<void(std::size_t)> &body)
{
    if (jobs <= 1 || count <= 1) {
        // Serial fallback: inline on the caller's thread, exactly the
        // pre-parallel execution.
        for (std::size_t i = 0; i < count; ++i)
            body(i);
        return;
    }

    const int width =
        static_cast<int>(std::min<std::size_t>(
            static_cast<std::size_t>(jobs), count));
    std::atomic<std::size_t> next{0};
    std::atomic<bool> failed{false};
    std::exception_ptr firstError;
    std::mutex errorMutex;

    {
        ThreadPool pool(width);
        for (int w = 0; w < width; ++w) {
            pool.submit([&]() {
                for (;;) {
                    const std::size_t i =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (i >= count ||
                        failed.load(std::memory_order_relaxed))
                        return;
                    try {
                        body(i);
                    } catch (...) {
                        std::unique_lock<std::mutex> lock(errorMutex);
                        if (!firstError)
                            firstError = std::current_exception();
                        failed.store(true,
                                     std::memory_order_relaxed);
                        return;
                    }
                }
            });
        }
        pool.wait();
    }
    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace hsipc::parallel
